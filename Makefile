GO ?= go

.PHONY: all build vet test race check bench-reuse bench-backtrans bench-batch bench-pipeline bench-tridiag bench-stage1 bench-kernels bench-sbr tune

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full pre-merge gate: build, vet, and the race-enabled test suite.
check:
	./scripts/check.sh

# The reusable-Solver experiment (steady-state allocations vs one-shot).
bench-reuse:
	$(GO) run ./cmd/eigbench -exp reuse
	$(GO) test -run '^$$' -bench 'BenchmarkSolverReuse|BenchmarkEigOneShot' -benchmem .

# The fused-vs-legacy back-transformation comparison; records the measured
# points in BENCH_backtrans.json alongside the printed table.
bench-backtrans:
	$(GO) run ./cmd/eigbench -exp backtrans -out BENCH_backtrans.json

# Concurrent batch solving vs a sequential loop over the same Solver; records
# the measured points (with machine context) in BENCH_batch.json.
bench-batch:
	$(GO) run ./cmd/eigbench -exp batch -out BENCH_batch.json

# The phase-pipelined batch executor vs whole-solve batch mode, with the
# bitwise-identity check between the two modes run in-bench; records the
# measured points (with machine context) in BENCH_pipeline.json.
bench-pipeline:
	$(GO) run ./cmd/eigbench -exp pipeline -out BENCH_pipeline.json

# The parallel tridiagonal stage vs its sequential form (D&C and BI), with
# the bitwise-identity check and trace-attributed sub-phase splits; records
# the measured points (with machine context) in BENCH_tridiag.json.
bench-tridiag:
	$(GO) run ./cmd/eigbench -exp tridiag -out BENCH_tridiag.json
	$(GO) test -run '^$$' -bench 'BenchmarkStebz' ./internal/tridiag

# The stage-1 look-ahead reduction vs the sequenced (flat-priority) scheme,
# with the bitwise-identity check and the trace-attributed panel/update/stall
# split; records the measured points (with machine context) in
# BENCH_stage1.json.
bench-stage1:
	$(GO) run -tags blasasm ./cmd/eigbench -exp stage1 -out BENCH_stage1.json

# The GEMM kernel rework: per-kernel Dgemm Gflop/s (seed baseline vs the
# packed kernels, assembly included via the build tag) and end-to-end Eig
# wall time, with bitwise gates; records BENCH_kernels.json.
bench-kernels:
	$(GO) run -tags blasasm ./cmd/eigbench -exp kernels -out BENCH_kernels.json

# The multi-sweep SBR stage 1 vs the direct single-sweep reduction:
# end-to-end Eig wall-clock per plan (direct, 64->8, 128->32->8) with the
# eigenvalue-drift gate; records the measured points (with machine context)
# in BENCH_sbr.json.
bench-sbr:
	$(GO) run -tags blasasm ./cmd/eigbench -exp sbr -out BENCH_sbr.json

# Tune this machine and persist the profile eigen.Solver loads at
# construction ($EIGEN_TUNE_PROFILE or the user cache dir).
tune:
	$(GO) run -tags blasasm ./cmd/eigtune -save
