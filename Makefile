GO ?= go

.PHONY: all build vet test race check bench-reuse bench-backtrans

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full pre-merge gate: build, vet, and the race-enabled test suite.
check:
	./scripts/check.sh

# The reusable-Solver experiment (steady-state allocations vs one-shot).
bench-reuse:
	$(GO) run ./cmd/eigbench -exp reuse
	$(GO) test -run '^$$' -bench 'BenchmarkSolverReuse|BenchmarkEigOneShot' -benchmem .

# The fused-vs-legacy back-transformation comparison; records the measured
# points in BENCH_backtrans.json alongside the printed table.
bench-backtrans:
	$(GO) run ./cmd/eigbench -exp backtrans -out BENCH_backtrans.json
