GO ?= go

.PHONY: all build vet test race check bench-reuse

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full pre-merge gate: build, vet, and the race-enabled test suite.
check:
	./scripts/check.sh

# The reusable-Solver experiment (steady-state allocations vs one-shot).
bench-reuse:
	$(GO) run ./cmd/eigbench -exp reuse
	$(GO) test -run '^$$' -bench 'BenchmarkSolverReuse|BenchmarkEigOneShot' -benchmem .
