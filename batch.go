package eigen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/trace"
)

// DefaultBatchFanout is the matrix order at or above which a batch item is
// decomposed into per-tile tasks on the shared scheduler. Below it the whole
// solve runs as a single scheduler task: for small problems the per-tile DAG
// has too little work per task to amortize dependence tracking, and running
// several whole solves concurrently on different workers parallelizes
// better.
const DefaultBatchFanout = 512

// BatchItem describes one independent eigenproblem in a SolveBatch call.
// The zero value of the optional fields requests a full eigendecomposition
// with solver-allocated vectors, matching Solver.Eig.
type BatchItem struct {
	// A is the symmetric input matrix.
	A *Matrix
	// Dst, when non-nil, receives the eigenvectors in place (as in EigTo).
	// It must be n×k where k is the number of requested pairs (n for the
	// full spectrum), and must not be combined with ValuesOnly.
	Dst *Matrix
	// ValuesOnly skips the eigenvector computation.
	ValuesOnly bool
	// IL, IU select eigenpairs il..iu (1-based, ascending, inclusive) as in
	// EigRange; both zero means the full spectrum.
	IL, IU int
}

// BatchResult is the outcome of one BatchItem. Exactly one of Err or the
// value fields is meaningful: on error Values and Vectors are nil.
type BatchResult struct {
	// Values are the computed eigenvalues in ascending order.
	Values []float64
	// Vectors holds the matching eigenvectors (nil for ValuesOnly items; the
	// Dst matrix when one was supplied).
	Vectors *Matrix
	// Err is the item's error: validation errors (*NotFiniteError,
	// *RangeError, shape errors), ErrNoConvergence, the context error, or
	// ErrClosed. An item's failure never affects the other items.
	Err error
	// Trace holds the item's own phase timings and flop counts when the
	// Solver was built with a Collector (which also receives the merged
	// totals); nil otherwise.
	Trace *trace.Collector
}

// SolveBatch solves many independent eigenproblems concurrently over the
// Solver's shared scheduler and workspace pool, returning one BatchResult
// per item (index-aligned with items). Results are bitwise identical to
// solving each item alone on the same Solver.
//
// Admission control bounds the resource footprint: at most
// Options.BatchConcurrency items (default: the scheduler width) are in
// flight, and when Options.MemoryBudget is set, items wait until their
// estimated workspace footprint fits under it. The gate is per-Solver, not
// per-call: concurrent SolveBatch calls (for example one per network job in
// a serving layer) share the same slots and budget, so the Solver's
// footprint is bounded no matter how many callers feed it. Small problems
// are submitted
// as one whole-solve task each on a per-item labeled job (so traces
// attribute work per item); items with order ≥ Options.BatchFanout fan out
// into the usual per-tile task DAG. On a sequential Solver (Workers ≤ 1)
// items run one at a time on the callers' goroutines.
//
// SolveBatch never fails as a whole: per-item errors (invalid shapes,
// non-finite entries, non-convergence, cancellation) land in the matching
// BatchResult.Err and leave the Solver and every other item untouched.
// Calling SolveBatch from inside one of this Solver's own scheduler tasks
// (e.g. from code running under another solve on the same Solver) is
// detected and refused with ErrReentrantBatch per item — the work it would
// submit could only run on workers the caller already occupies.
//
// On a parallel Solver the batch runs through the pipelined executor: each
// item advances phase by phase through the two-stage plan (see
// internal/core's SolveState), so the compute-bound stage 1 of the next
// item overlaps the memory-bound bulge chase / tridiagonal stage of the
// current one — the paper's core restriction applied between solves.
// Options.PipelineDepth bounds the overlap window and
// Options.DisablePipeline restores the opaque whole-solve behavior; results
// are bitwise identical in every mode.
func (s *Solver) SolveBatch(ctx context.Context, items []BatchItem) []BatchResult {
	out := make([]BatchResult, len(items))
	if len(items) == 0 {
		return out
	}
	s.mu.Lock()
	closed, scheduler := s.closed, s.sched
	s.mu.Unlock()
	if closed {
		for i := range out {
			out[i].Err = ErrClosed
		}
		return out
	}
	if scheduler != nil && scheduler.OnWorkerGoroutine() {
		// Re-entrant call from inside a task of this very scheduler: the
		// batch would block waiting for workers that are occupied by the
		// caller — deadlock on a saturated pool. Refuse every item with a
		// typed error instead.
		for i := range out {
			out[i].Err = ErrReentrantBatch
		}
		return out
	}

	// Admission runs against the Solver's persistent gate (BatchConcurrency
	// slots + MemoryBudget bytes, shared by every concurrent SolveBatch
	// call). The pipeline window is per-call: it bounds how many of *this*
	// call's items may hold a SolveState (and its workspace reservation) at
	// once. It narrows the effective admission, never widens it.
	gate := s.gate
	pipelined := scheduler != nil && !s.opts.DisablePipeline && s.opts.Algorithm != OneStage
	var window *batchGate
	if pipelined {
		depth := s.opts.PipelineDepth
		if depth <= 0 || depth > scheduler.Workers() {
			depth = scheduler.Workers()
		}
		window = newBatchGate(depth, 0)
	}
	if ctx != nil {
		// Wake gate waiters when the context dies so they can return its
		// error instead of blocking on slots that canceled items still hold.
		stop := context.AfterFunc(ctx, func() {
			gate.broadcast()
			if window != nil {
				window.broadcast()
			}
		})
		defer stop()
	}
	fanout := s.opts.BatchFanout
	if fanout <= 0 {
		fanout = DefaultBatchFanout
	}

	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = s.batchSolve(ctx, i, &items[i], scheduler, gate, window, fanout, pipelined)
		}(i)
	}
	wg.Wait()
	return out
}

// batchSolve validates, admits, and runs one batch item.
func (s *Solver) batchSolve(ctx context.Context, idx int, it *BatchItem, scheduler *sched.Scheduler, gate, window *batchGate, fanout int, pipelined bool) BatchResult {
	if err := validateBatchItem(it); err != nil {
		return BatchResult{Err: err}
	}
	n := it.A.r
	vectors := !it.ValuesOnly

	// Per-item collector: the item's own trace is reported in the result and
	// merged into the Solver-level collector, so concurrent items do not
	// interleave their phase timings.
	var tc *trace.Collector
	if s.opts.Collector != nil {
		tc = trace.New()
	}

	cost := core.EstimateWorkspaceBytes(n, s.opts.NB, vectors)
	waitStart := time.Now()
	if window != nil {
		// The per-call pipeline window is taken before the shared gate so an
		// item never pins a Solver-wide slot while waiting on its own call's
		// window.
		if err := window.acquire(ctx, 0); err != nil {
			return BatchResult{Err: err}
		}
		defer window.release(0)
	}
	if err := gate.acquire(ctx, cost); err != nil {
		return BatchResult{Err: err}
	}
	tc.AddPhase(trace.PhaseBatchWait, time.Since(waitStart))
	defer gate.release(cost)

	var res *Result
	var err error
	switch {
	case pipelined:
		res, err = s.pipedSolve(ctx, idx, it, scheduler, tc, fanout)
	case scheduler != nil && n < fanout:
		// Whole-solve-as-one-task: one labeled job, one task, inline solve
		// inside the task body. Distinct items occupy distinct workers.
		job := scheduler.NewJobNamed(ctx, fmt.Sprintf("batch[%d] n=%d", idx, n))
		job.Submit(sched.Task{
			Name: fmt.Sprintf("SOLVE[%d]", idx),
			Run: func(int) {
				res, err = s.runSolve(ctx, nil, tc, it.A, it.Dst, vectors, it.IL, it.IU)
			},
		})
		werr := job.Wait() // also orders the closure writes before our reads
		if res == nil && err == nil {
			// The task body never ran: the job was canceled or the
			// scheduler shut down before execution.
			err = werr
			if errors.Is(err, sched.ErrStopped) {
				err = ErrClosed
			}
			if err == nil {
				err = context.Canceled
			}
		}
	default:
		// Large problems fan out into the per-tile DAG (scheduler non-nil),
		// or the Solver is sequential and the solve runs inline here.
		res, err = s.runSolve(ctx, scheduler, tc, it.A, it.Dst, vectors, it.IL, it.IU)
	}

	r := BatchResult{Err: err}
	if err == nil {
		r.Values = res.Values
		r.Vectors = res.Vectors
	}
	if tc != nil {
		s.opts.Collector.Merge(tc)
		r.Trace = tc
	}
	return r
}

// pipelinePhasePriority is the per-phase step of the pipeline's drain bias:
// a task of phase k carries k·pipelinePhasePriority on top of its intrinsic
// priority, so the late phases of in-flight items outrank the stage-1 tasks
// of freshly admitted ones and items drain — releasing their workspace
// reservation — before new items grab workers. The step must dominate every
// intrinsic priority; the largest is stage 1's look-ahead panel priority at
// 2^13 (see internal/band), comfortably below this 2^16 step.
const pipelinePhasePriority = 1 << 16

// pipelineMemMask is the core-restriction mask the pipeline puts on
// memory-bound whole-phase tasks: Options.Stage2Workers when set, else half
// the pool (rounded up). Zero (no restriction) on pools too narrow to split
// — with every phase pinned to the same single worker there would be no
// cross-item overlap left to steer.
func pipelineMemMask(workers, stage2Workers int) uint64 {
	if workers <= 1 {
		return 0
	}
	w := stage2Workers
	if w <= 0 {
		w = (workers + 1) / 2
	}
	if w >= workers {
		return 0
	}
	return sched.AffinityMask(w)
}

// pipedSolve runs one batch item through the phase plan, phase by phase, on
// the shared scheduler. Two shapes, mirroring the whole-solve/fan-out split:
//
//   - Below the fan-out threshold each phase runs as one scheduler task
//     (inline phase body) on the item's labeled job. Memory-bound phases
//     (bulge chase, eig_t) carry the stage-2 core-restriction mask, so the
//     compute-bound stage-1 tasks of other in-flight items saturate the
//     remaining workers; later phases carry a higher priority so items near
//     completion drain first.
//   - At or above the threshold the phases fan out into their per-tile task
//     DAGs; a JobFactory labels each phase's job per item and applies the
//     same drain bias, and the memory-bound stages fall back to a half-pool
//     core restriction when the caller didn't set one.
//
// Either way the kernels execute in the exact sequential-equivalent order
// the plan defines, so results are bitwise identical to a solo solve.
func (s *Solver) pipedSolve(ctx context.Context, idx int, it *BatchItem, scheduler *sched.Scheduler, tc *trace.Collector, fanout int) (*Result, error) {
	n := it.A.r
	vectors := !it.ValuesOnly
	fanned := n >= fanout

	var sub *sched.Scheduler // scheduler the phase *bodies* run on
	if fanned {
		sub = scheduler
	}
	prep, err := s.prepare(sub, tc, it.A, it.Dst, vectors, it.IL, it.IU)
	if err != nil {
		return nil, err
	}
	defer s.pool.Put(prep.ws)
	if fanned {
		// Steer the memory-bound stages off the full pool unless the caller
		// chose a restriction; affinity moves tasks between workers, never
		// changes results.
		workers := scheduler.Workers()
		if prep.co.Stage2Workers <= 0 && workers > 1 {
			prep.co.Stage2Workers = (workers + 1) / 2
		}
		if prep.co.TridiagWorkers <= 0 && workers > 1 {
			prep.co.TridiagWorkers = (workers + 1) / 2
		}
	}

	st, plan, err := core.NewSolveState(ctx, prep.ad, prep.co)
	if err != nil {
		return nil, err
	}
	defer st.Close()

	var cres *core.Result
	if fanned {
		// Per-phase labeled jobs with the drain bias; phase bodies fan out
		// into their per-tile DAGs on the shared scheduler.
		bias := make(map[string]int, len(plan))
		for i, ph := range plan {
			bias[ph.Name()] = i * pipelinePhasePriority
		}
		st.JobFactory = func(ph core.Phase, jctx context.Context) *sched.Job {
			return scheduler.NewJobNamed(jctx, fmt.Sprintf("batch[%d] %s", idx, ph.Name())).
				SetBias(bias[ph.Name()])
		}
		for _, ph := range plan {
			if err := ph.Run(ctx, st); err != nil {
				return s.finish(prep, it.Dst, nil, err)
			}
		}
		cres = st.Result()
		return s.finish(prep, it.Dst, cres, nil)
	}

	// Phase-as-one-task: the item's phases run inline inside one scheduler
	// task each, on a single labeled job. The job orders them (each Wait
	// precedes the next Submit), the per-phase Affinity/Priority do the
	// steering, and the SolveState carries the artifacts across tasks.
	job := scheduler.NewJobNamed(ctx, fmt.Sprintf("batch[%d] n=%d", idx, n))
	memMask := pipelineMemMask(scheduler.Workers(), s.opts.Stage2Workers)
	for pi, ph := range plan {
		var perr error
		ran := false
		var aff uint64
		if ph.Class() == core.MemoryBound {
			aff = memMask
		}
		ph := ph
		job.Submit(sched.Task{
			Name:     fmt.Sprintf("%s[%d]", ph.Name(), idx),
			Priority: pi * pipelinePhasePriority,
			Affinity: aff,
			Run: func(int) {
				ran = true
				perr = ph.Run(ctx, st)
			},
		})
		werr := job.Wait() // also orders the closure writes before our reads
		if !ran && perr == nil {
			// The task body never ran: the job was canceled or the
			// scheduler shut down before execution.
			perr = werr
			if perr == nil {
				perr = context.Canceled
			}
		}
		if perr != nil {
			return s.finish(prep, it.Dst, nil, perr)
		}
	}
	cres = st.Result()
	return s.finish(prep, it.Dst, cres, nil)
}

// validateBatchItem rejects malformed items before any work is admitted.
func validateBatchItem(it *BatchItem) error {
	if it.A == nil {
		return fmt.Errorf("eigen: batch item has a nil matrix")
	}
	if it.A.r != it.A.c {
		return fmt.Errorf("eigen: matrix must be square, got %d×%d", it.A.r, it.A.c)
	}
	// The range check is independent of how results are returned: it used to
	// live inside the Dst branch, so a values-only or nil-Dst item with an
	// invalid range passed validation, burned an admission slot, and only
	// failed later inside the pipeline. Every item fails fast here instead.
	n := it.A.r
	k := n
	if it.IL != 0 || it.IU != 0 {
		if it.IL < 1 || it.IU > n || it.IL > it.IU {
			return &RangeError{IL: it.IL, IU: it.IU, N: n}
		}
		k = it.IU - it.IL + 1
	}
	if it.Dst != nil {
		if it.ValuesOnly {
			return fmt.Errorf("eigen: batch item sets both Dst and ValuesOnly")
		}
		if it.Dst.r != n || it.Dst.c != k {
			return fmt.Errorf("eigen: batch destination is %d×%d, want %d×%d", it.Dst.r, it.Dst.c, n, k)
		}
	}
	return nil
}

// batchGate is the admission controller for SolveBatch: a counted slot pool
// plus an optional byte budget. A solve needs one slot and (when a budget is
// set) its estimated workspace bytes; costs above the budget are clamped to
// it, so oversized problems run alone rather than deadlocking. One instance
// lives on each Solver (shared by every SolveBatch call, see NewSolver);
// SolveBatch additionally builds slot-only instances as per-call pipeline
// windows.
type batchGate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	slots  int
	budget int64 // 0 = unlimited
	avail  int64 // remaining bytes under the budget
}

func newBatchGate(slots int, budget int64) *batchGate {
	g := &batchGate{slots: slots, budget: budget, avail: budget}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// acquire blocks until a slot (and budget headroom) is available or ctx is
// done.
func (g *batchGate) acquire(ctx context.Context, cost int64) error {
	if g.budget > 0 && cost > g.budget {
		cost = g.budget
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if g.slots > 0 && (g.budget == 0 || g.avail >= cost) {
			g.slots--
			if g.budget > 0 {
				g.avail -= cost
			}
			return nil
		}
		g.cond.Wait()
	}
}

// release returns a slot and budget bytes taken by acquire.
func (g *batchGate) release(cost int64) {
	if g.budget > 0 && cost > g.budget {
		cost = g.budget
	}
	g.mu.Lock()
	g.slots++
	if g.budget > 0 {
		g.avail += cost
	}
	g.mu.Unlock()
	g.cond.Broadcast()
}

// broadcast wakes all acquire waiters (used on context cancellation).
func (g *batchGate) broadcast() {
	g.mu.Lock()
	g.mu.Unlock() //nolint:staticcheck // empty critical section orders the wakeup
	g.cond.Broadcast()
}
