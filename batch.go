package eigen

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/trace"
)

// DefaultBatchFanout is the matrix order at or above which a batch item is
// decomposed into per-tile tasks on the shared scheduler. Below it the whole
// solve runs as a single scheduler task: for small problems the per-tile DAG
// has too little work per task to amortize dependence tracking, and running
// several whole solves concurrently on different workers parallelizes
// better.
const DefaultBatchFanout = 512

// BatchItem describes one independent eigenproblem in a SolveBatch call.
// The zero value of the optional fields requests a full eigendecomposition
// with solver-allocated vectors, matching Solver.Eig.
type BatchItem struct {
	// A is the symmetric input matrix.
	A *Matrix
	// Dst, when non-nil, receives the eigenvectors in place (as in EigTo).
	// It must be n×k where k is the number of requested pairs (n for the
	// full spectrum), and must not be combined with ValuesOnly.
	Dst *Matrix
	// ValuesOnly skips the eigenvector computation.
	ValuesOnly bool
	// IL, IU select eigenpairs il..iu (1-based, ascending, inclusive) as in
	// EigRange; both zero means the full spectrum.
	IL, IU int
}

// BatchResult is the outcome of one BatchItem. Exactly one of Err or the
// value fields is meaningful: on error Values and Vectors are nil.
type BatchResult struct {
	// Values are the computed eigenvalues in ascending order.
	Values []float64
	// Vectors holds the matching eigenvectors (nil for ValuesOnly items; the
	// Dst matrix when one was supplied).
	Vectors *Matrix
	// Err is the item's error: validation errors (*NotFiniteError,
	// *RangeError, shape errors), ErrNoConvergence, the context error, or
	// ErrClosed. An item's failure never affects the other items.
	Err error
	// Trace holds the item's own phase timings and flop counts when the
	// Solver was built with a Collector (which also receives the merged
	// totals); nil otherwise.
	Trace *trace.Collector
}

// SolveBatch solves many independent eigenproblems concurrently over the
// Solver's shared scheduler and workspace pool, returning one BatchResult
// per item (index-aligned with items). Results are bitwise identical to
// solving each item alone on the same Solver.
//
// Admission control bounds the resource footprint: at most
// Options.BatchConcurrency items (default: the scheduler width) are in
// flight, and when Options.MemoryBudget is set, items wait until their
// estimated workspace footprint fits under it. Small problems are submitted
// as one whole-solve task each on a per-item labeled job (so traces
// attribute work per item); items with order ≥ Options.BatchFanout fan out
// into the usual per-tile task DAG. On a sequential Solver (Workers ≤ 1)
// items run one at a time on the callers' goroutines.
//
// SolveBatch never fails as a whole: per-item errors (invalid shapes,
// non-finite entries, non-convergence, cancellation) land in the matching
// BatchResult.Err and leave the Solver and every other item untouched.
// Do not call SolveBatch from inside a scheduler task (e.g. from another
// solve's Collector callback): the whole-solve tasks it submits would wait
// on the workers that are already occupied by the caller.
func (s *Solver) SolveBatch(ctx context.Context, items []BatchItem) []BatchResult {
	out := make([]BatchResult, len(items))
	if len(items) == 0 {
		return out
	}
	s.mu.Lock()
	closed, scheduler := s.closed, s.sched
	s.mu.Unlock()
	if closed {
		for i := range out {
			out[i].Err = ErrClosed
		}
		return out
	}

	slots := 1
	if scheduler != nil {
		slots = scheduler.Workers()
	}
	if s.opts.BatchConcurrency > 0 {
		slots = s.opts.BatchConcurrency
	}
	if slots > len(items) {
		slots = len(items)
	}
	gate := newBatchGate(slots, s.opts.MemoryBudget)
	if ctx != nil {
		// Wake gate waiters when the context dies so they can return its
		// error instead of blocking on slots that canceled items still hold.
		stop := context.AfterFunc(ctx, gate.broadcast)
		defer stop()
	}
	fanout := s.opts.BatchFanout
	if fanout <= 0 {
		fanout = DefaultBatchFanout
	}

	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = s.batchSolve(ctx, i, &items[i], scheduler, gate, fanout)
		}(i)
	}
	wg.Wait()
	return out
}

// batchSolve validates, admits, and runs one batch item.
func (s *Solver) batchSolve(ctx context.Context, idx int, it *BatchItem, scheduler *sched.Scheduler, gate *batchGate, fanout int) BatchResult {
	if err := validateBatchItem(it); err != nil {
		return BatchResult{Err: err}
	}
	n := it.A.r
	vectors := !it.ValuesOnly

	cost := core.EstimateWorkspaceBytes(n, s.opts.NB, vectors)
	if err := gate.acquire(ctx, cost); err != nil {
		return BatchResult{Err: err}
	}
	defer gate.release(cost)

	// Per-item collector: the item's own trace is reported in the result and
	// merged into the Solver-level collector, so concurrent items do not
	// interleave their phase timings.
	var tc *trace.Collector
	if s.opts.Collector != nil {
		tc = trace.New()
	}

	var res *Result
	var err error
	if scheduler != nil && n < fanout {
		// Whole-solve-as-one-task: one labeled job, one task, inline solve
		// inside the task body. Distinct items occupy distinct workers.
		job := scheduler.NewJobNamed(ctx, fmt.Sprintf("batch[%d] n=%d", idx, n))
		job.Submit(sched.Task{
			Name: fmt.Sprintf("SOLVE[%d]", idx),
			Run: func(int) {
				res, err = s.runSolve(ctx, nil, tc, it.A, it.Dst, vectors, it.IL, it.IU)
			},
		})
		werr := job.Wait() // also orders the closure writes before our reads
		if res == nil && err == nil {
			// The task body never ran: the job was canceled or the
			// scheduler shut down before execution.
			err = werr
			if errors.Is(err, sched.ErrStopped) {
				err = ErrClosed
			}
			if err == nil {
				err = context.Canceled
			}
		}
	} else {
		// Large problems fan out into the per-tile DAG (scheduler non-nil),
		// or the Solver is sequential and the solve runs inline here.
		res, err = s.runSolve(ctx, scheduler, tc, it.A, it.Dst, vectors, it.IL, it.IU)
	}

	r := BatchResult{Err: err}
	if err == nil {
		r.Values = res.Values
		r.Vectors = res.Vectors
	}
	if tc != nil {
		s.opts.Collector.Merge(tc)
		r.Trace = tc
	}
	return r
}

// validateBatchItem rejects malformed items before any work is admitted.
func validateBatchItem(it *BatchItem) error {
	if it.A == nil {
		return fmt.Errorf("eigen: batch item has a nil matrix")
	}
	if it.A.r != it.A.c {
		return fmt.Errorf("eigen: matrix must be square, got %d×%d", it.A.r, it.A.c)
	}
	if it.Dst != nil {
		if it.ValuesOnly {
			return fmt.Errorf("eigen: batch item sets both Dst and ValuesOnly")
		}
		n := it.A.r
		k := n
		if it.IL != 0 || it.IU != 0 {
			if it.IL < 1 || it.IU > n || it.IL > it.IU {
				return &RangeError{IL: it.IL, IU: it.IU, N: n}
			}
			k = it.IU - it.IL + 1
		}
		if it.Dst.r != n || it.Dst.c != k {
			return fmt.Errorf("eigen: batch destination is %d×%d, want %d×%d", it.Dst.r, it.Dst.c, n, k)
		}
	}
	return nil
}

// batchGate is the admission controller for SolveBatch: a counted slot pool
// plus an optional byte budget. A solve needs one slot and (when a budget is
// set) its estimated workspace bytes; costs above the budget are clamped to
// it, so oversized problems run alone rather than deadlocking.
type batchGate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	slots  int
	budget int64 // 0 = unlimited
	avail  int64 // remaining bytes under the budget
}

func newBatchGate(slots int, budget int64) *batchGate {
	g := &batchGate{slots: slots, budget: budget, avail: budget}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// acquire blocks until a slot (and budget headroom) is available or ctx is
// done.
func (g *batchGate) acquire(ctx context.Context, cost int64) error {
	if g.budget > 0 && cost > g.budget {
		cost = g.budget
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if g.slots > 0 && (g.budget == 0 || g.avail >= cost) {
			g.slots--
			if g.budget > 0 {
				g.avail -= cost
			}
			return nil
		}
		g.cond.Wait()
	}
}

// release returns a slot and budget bytes taken by acquire.
func (g *batchGate) release(cost int64) {
	if g.budget > 0 && cost > g.budget {
		cost = g.budget
	}
	g.mu.Lock()
	g.slots++
	if g.budget > 0 {
		g.avail += cost
	}
	g.mu.Unlock()
	g.cond.Broadcast()
}

// broadcast wakes all acquire waiters (used on context cancellation).
func (g *batchGate) broadcast() {
	g.mu.Lock()
	g.mu.Unlock() //nolint:staticcheck // empty critical section orders the wakeup
	g.cond.Broadcast()
}
