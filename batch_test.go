package eigen

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/tridiag"
)

// diagMatrix builds a diagonal matrix from vals. Its spectrum is vals sorted
// ascending, and — crucially for the convergence-seam tests — the implicit
// QL/QR solvers converge on it with a zero iteration budget (every
// off-diagonal is already negligible).
func diagMatrix(vals []float64) *Matrix {
	m := NewMatrix(len(vals))
	for i, v := range vals {
		m.Set(i, i, v)
	}
	return m
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

// requireBitwise fails unless the batch result exactly matches a solo solve.
func requireBitwise(t *testing.T, label string, got BatchResult, wantVals []float64, wantVecs *Matrix) {
	t.Helper()
	if got.Err != nil {
		t.Fatalf("%s: unexpected error %v", label, got.Err)
	}
	if !sameFloats(got.Values, wantVals) {
		t.Fatalf("%s: values differ from solo solve", label)
	}
	if (got.Vectors == nil) != (wantVecs == nil) {
		t.Fatalf("%s: vectors presence mismatch", label)
	}
	if wantVecs != nil && !sameFloats(got.Vectors.data, wantVecs.data) {
		t.Fatalf("%s: vectors differ from solo solve", label)
	}
}

// TestSolveBatchMatchesSolo checks the core batch guarantee: a mixed batch
// solved concurrently is bitwise identical to solving each item alone on the
// same Solver, across item flavors (full, values-only, range, in-place Dst).
func TestSolveBatchMatchesSolo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSolver(&Options{Workers: 4})
	defer s.Close()

	a32 := randSymMatrix(rng, 32)
	a64 := randSymMatrix(rng, 64)
	a96 := randSymMatrix(rng, 96)
	aRange := randSymMatrix(rng, 48)
	aDst := randSymMatrix(rng, 40)
	dst := NewMatrix(40)

	items := []BatchItem{
		{A: a32},
		{A: a64},
		{A: a96},
		{A: a64, ValuesOnly: true},
		{A: aRange, IL: 3, IU: 10},
		{A: aDst, Dst: dst},
	}
	results := s.SolveBatch(context.Background(), items)
	if len(results) != len(items) {
		t.Fatalf("got %d results for %d items", len(results), len(items))
	}

	r32, err := s.Eig(a32)
	if err != nil {
		t.Fatal(err)
	}
	requireBitwise(t, "n=32", results[0], r32.Values, r32.Vectors)

	r64, err := s.Eig(a64)
	if err != nil {
		t.Fatal(err)
	}
	requireBitwise(t, "n=64", results[1], r64.Values, r64.Vectors)

	r96, err := s.Eig(a96)
	if err != nil {
		t.Fatal(err)
	}
	requireBitwise(t, "n=96", results[2], r96.Values, r96.Vectors)

	vals64, err := s.EigValues(a64)
	if err != nil {
		t.Fatal(err)
	}
	requireBitwise(t, "values-only", results[3], vals64, nil)

	rr, err := s.EigRange(aRange, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	requireBitwise(t, "range", results[4], rr.Values, rr.Vectors)

	if results[5].Vectors != dst {
		t.Fatal("Dst item did not return the caller's matrix")
	}
	soloDst := NewMatrix(40)
	soloVals, err := s.EigTo(context.Background(), aDst, soloDst)
	if err != nil {
		t.Fatal(err)
	}
	requireBitwise(t, "dst", results[5], soloVals, soloDst)
}

// TestSolveBatchSequentialSolver runs a batch on a schedulerless Solver:
// items execute one at a time but the results contract is unchanged.
func TestSolveBatchSequentialSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := NewSolver(nil)
	defer s.Close()
	a1 := randSymMatrix(rng, 24)
	a2 := randSymMatrix(rng, 40)
	results := s.SolveBatch(context.Background(), []BatchItem{{A: a1}, {A: a2}})
	want1, err := s.Eig(a1)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := s.Eig(a2)
	if err != nil {
		t.Fatal(err)
	}
	requireBitwise(t, "seq item 1", results[0], want1.Values, want1.Vectors)
	requireBitwise(t, "seq item 2", results[1], want2.Values, want2.Vectors)
}

// TestSolveBatchFanout forces the per-tile fan-out path (BatchFanout below
// the problem sizes) and checks it against solo solves too.
func TestSolveBatchFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewSolver(&Options{Workers: 3, BatchFanout: 1})
	defer s.Close()
	a1 := randSymMatrix(rng, 48)
	a2 := randSymMatrix(rng, 32)
	results := s.SolveBatch(context.Background(), []BatchItem{{A: a1}, {A: a2}})
	want1, err := s.Eig(a1)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := s.Eig(a2)
	if err != nil {
		t.Fatal(err)
	}
	requireBitwise(t, "fanout item 1", results[0], want1.Values, want1.Vectors)
	requireBitwise(t, "fanout item 2", results[1], want2.Values, want2.Vectors)
}

// TestSolveBatchMemoryBudget runs a batch under a tight byte budget: items
// serialize through the admission gate but all still complete.
func TestSolveBatchMemoryBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := NewSolver(&Options{Workers: 4, MemoryBudget: 1 << 20})
	defer s.Close()
	items := make([]BatchItem, 6)
	for i := range items {
		items[i].A = randSymMatrix(rng, 64)
	}
	for i, r := range s.SolveBatch(context.Background(), items) {
		if r.Err != nil {
			t.Fatalf("item %d under budget: %v", i, r.Err)
		}
		if len(r.Values) != 64 {
			t.Fatalf("item %d: %d values", i, len(r.Values))
		}
	}
}

// TestSolveBatchEdgeCases covers the empty batch, the closed solver, and a
// pre-canceled context.
func TestSolveBatchEdgeCases(t *testing.T) {
	if got := NewSolver(nil).SolveBatch(context.Background(), nil); len(got) != 0 {
		t.Fatal("empty batch must return an empty slice")
	}

	s := NewSolver(&Options{Workers: 2})
	s.Close()
	a := diagMatrix([]float64{1, 2})
	for i, r := range s.SolveBatch(context.Background(), []BatchItem{{A: a}, {A: a}}) {
		if !errors.Is(r.Err, ErrClosed) {
			t.Fatalf("closed solver item %d: err=%v, want ErrClosed", i, r.Err)
		}
	}

	s2 := NewSolver(&Options{Workers: 2})
	defer s2.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, r := range s2.SolveBatch(ctx, []BatchItem{{A: a}, {A: a}, {A: a}}) {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("canceled item %d: err=%v, want context.Canceled", i, r.Err)
		}
	}
	// The solver survives a canceled batch.
	if _, err := s2.Eig(a); err != nil {
		t.Fatalf("solver poisoned by canceled batch: %v", err)
	}
}

// TestBatchIsolationMixed is the concurrency gate (run under -race by
// scripts/check.sh): a mixed-size batch where one item carries a NaN, one is
// forced to fail convergence, one is nil, and one has a bad range. Every
// failure must be a typed, item-local error; the healthy items and every
// subsequent solve on the same Solver must be untouched.
func TestBatchIsolationMixed(t *testing.T) {
	// Zero iteration budget: diagonal inputs still converge (no off-diagonal
	// to annihilate), dense inputs fail — per-item failure injection via the
	// global seam.
	oldQL := tridiag.MaxIterQL
	tridiag.MaxIterQL = 0
	defer func() { tridiag.MaxIterQL = oldQL }()

	rng := rand.New(rand.NewSource(11))
	s := NewSolver(&Options{Workers: 4, Method: QRIteration})
	defer s.Close()

	healthySizes := []int{8, 16, 24, 32, 48}
	items := make([]BatchItem, 0, len(healthySizes)+4)
	wantDiags := make([][]float64, len(healthySizes))
	for i, n := range healthySizes {
		d := make([]float64, n)
		for j := range d {
			d[j] = rng.NormFloat64()
		}
		wantDiags[i] = d
		items = append(items, BatchItem{A: diagMatrix(d)})
	}
	nanItem := diagMatrix([]float64{1, 2, 3, 4})
	nanItem.Set(2, 1, math.NaN())
	nanItem.Set(1, 2, math.NaN())
	dense := randSymMatrix(rng, 20)
	items = append(items,
		BatchItem{A: nanItem},
		BatchItem{A: dense}, // fails convergence under the zero budget
		BatchItem{},         // nil matrix
		BatchItem{A: diagMatrix([]float64{1, 2}), IL: 5, IU: 9, Dst: NewMatrix(2)},
	)

	results := s.SolveBatch(context.Background(), items)

	for i := range healthySizes {
		r := results[i]
		if r.Err != nil {
			t.Fatalf("healthy item %d failed: %v", i, r.Err)
		}
		want := append([]float64(nil), wantDiags[i]...)
		for a := range want { // insertion sort; the spectrum is the sorted diagonal
			for b := a; b > 0 && want[b] < want[b-1]; b-- {
				want[b], want[b-1] = want[b-1], want[b]
			}
		}
		for j := range want {
			if math.Abs(r.Values[j]-want[j]) > 1e-12 {
				t.Fatalf("healthy item %d value %d: got %g want %g", i, j, r.Values[j], want[j])
			}
		}
	}

	base := len(healthySizes)
	var nfe *NotFiniteError
	if !errors.As(results[base].Err, &nfe) || !errors.Is(results[base].Err, ErrNotFinite) {
		t.Fatalf("NaN item: err=%v, want *NotFiniteError", results[base].Err)
	}
	if results[base+1].Err != ErrNoConvergence {
		t.Fatalf("forced item: err=%v, want ErrNoConvergence (unwrapped)", results[base+1].Err)
	}
	if results[base+2].Err == nil {
		t.Fatal("nil-matrix item did not error")
	}
	if !errors.Is(results[base+3].Err, ErrInvalidRange) {
		t.Fatalf("bad-range item: err=%v, want ErrInvalidRange", results[base+3].Err)
	}

	// The failed items must not have poisoned the Solver: the dense problem
	// solves fine once the iteration budget is restored.
	tridiag.MaxIterQL = oldQL
	res, err := s.Eig(dense)
	if err != nil {
		t.Fatalf("solver poisoned by failed batch items: %v", err)
	}
	if len(res.Values) != 20 {
		t.Fatalf("post-batch solve: %d values", len(res.Values))
	}
}

// TestNotFiniteError places NaN, +Inf and -Inf at assorted positions and
// checks the typed error (and the skip switch) for both algorithms.
func TestNotFiniteError(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, alg := range []Algorithm{TwoStage, OneStage} {
		for _, tc := range []struct {
			name string
			v    float64
			i, j int
		}{
			{"NaN-offdiag", math.NaN(), 3, 1},
			{"+Inf-diag", math.Inf(1), 2, 2},
			{"-Inf-corner", math.Inf(-1), 7, 7},
			{"NaN-first", math.NaN(), 0, 0},
		} {
			a := randSymMatrix(rng, 8)
			a.SetSym(tc.i, tc.j, tc.v)
			_, err := Eig(a, &Options{Algorithm: alg})
			var nfe *NotFiniteError
			if !errors.As(err, &nfe) {
				t.Fatalf("alg=%v %s: err=%v, want *NotFiniteError", alg, tc.name, err)
			}
			if !errors.Is(err, ErrNotFinite) {
				t.Fatalf("alg=%v %s: errors.Is(ErrNotFinite) false", alg, tc.name)
			}
			// The scan is column-major, so the first hit is the smallest
			// (col, row) position among the two symmetric entries.
			if nfe.Row < 0 || nfe.Row >= 8 || nfe.Col < 0 || nfe.Col >= 8 {
				t.Fatalf("alg=%v %s: reported position (%d,%d) out of matrix", alg, tc.name, nfe.Row, nfe.Col)
			}
			if got := a.At(nfe.Row, nfe.Col); got != tc.v && !(math.IsNaN(got) && math.IsNaN(tc.v)) {
				t.Fatalf("alg=%v %s: reported position (%d,%d) holds %v, not the bad value", alg, tc.name, nfe.Row, nfe.Col, got)
			}
		}
	}

	// SkipFiniteCheck suppresses the scan; with the symmetry check also off,
	// the solve proceeds into the pipeline (garbage in, garbage out).
	a := diagMatrix([]float64{1, 2, 3})
	a.Set(1, 1, math.NaN())
	vals, err := EigValues(a, &Options{SkipFiniteCheck: true, SkipSymmetryCheck: true})
	if errors.Is(err, ErrNotFinite) {
		t.Fatal("SkipFiniteCheck did not suppress the scan")
	}
	if err == nil {
		hasNaN := false
		for _, v := range vals {
			hasNaN = hasNaN || math.IsNaN(v)
		}
		if !hasNaN {
			t.Fatal("NaN input with checks skipped produced a finite spectrum")
		}
	}
}

// TestOptionsClamp feeds out-of-range option values into every knob that
// used to reach a panic in internal layers (the scheduler rejects widths
// over 64; negative sizes corrupted block-size selection) and expects a
// correct solve instead.
func TestOptionsClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randSymMatrix(rng, 24)
	want, err := Eig(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []*Options{
		{Workers: 1000},
		{Workers: -5},
		{NB: -3},
		{Workers: 2, Stage2Workers: 1 << 20, Stage2Static: true},
		{Group: -2},
		{MemoryBudget: -1, BatchConcurrency: -4, BatchFanout: -1},
		{PipelineDepth: -7},
		{Workers: 2, PipelineDepth: 1 << 30},
	} {
		res, err := Eig(a, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", *opts, err)
		}
		for i := range want.Values {
			if math.Abs(res.Values[i]-want.Values[i]) > 1e-10 {
				t.Fatalf("opts %+v: eigenvalue %d drifted", *opts, i)
			}
		}
	}
}

// TestNoConvergencePropagation forces the QL/QR iteration to fail and checks
// that tridiag.ErrNoConvergence comes back through Solver.EigTo unwrapped
// (err == sentinel), for both the vectors (steqr) and values-only (sterf)
// paths, and that the Solver with its pooled workspaces survives.
func TestNoConvergencePropagation(t *testing.T) {
	oldQL := tridiag.MaxIterQL
	tridiag.MaxIterQL = 0
	restore := func() { tridiag.MaxIterQL = oldQL }
	defer restore()

	rng := rand.New(rand.NewSource(14))
	a := randSymMatrix(rng, 24)
	s := NewSolver(&Options{Method: QRIteration})
	defer s.Close()

	dst := NewMatrix(24)
	_, err := s.EigTo(context.Background(), a, dst)
	if err != ErrNoConvergence {
		t.Fatalf("EigTo: err=%v, want ErrNoConvergence unwrapped", err)
	}
	if !errors.Is(err, tridiag.ErrNoConvergence) {
		t.Fatal("sentinel identity lost")
	}

	if _, err := s.EigValues(a); err != ErrNoConvergence {
		t.Fatalf("EigValues (sterf path): err=%v, want ErrNoConvergence", err)
	}

	// Same solver, same pooled arena: a clean solve right after the failures.
	restore()
	vals, err := s.EigTo(context.Background(), a, dst)
	if err != nil {
		t.Fatalf("solve after no-convergence failure: %v", err)
	}
	if len(vals) != 24 {
		t.Fatalf("got %d values", len(vals))
	}
}

// TestDegenerateShapes pins the n=0 and n=1 behavior and the typed range
// errors, consistently across both algorithms.
func TestDegenerateShapes(t *testing.T) {
	for _, alg := range []Algorithm{TwoStage, OneStage} {
		opts := &Options{Algorithm: alg}

		res, err := Eig(NewMatrix(0), opts)
		if err != nil {
			t.Fatalf("alg=%v n=0: %v", alg, err)
		}
		if len(res.Values) != 0 || res.Vectors != nil {
			t.Fatalf("alg=%v n=0: values=%v vectors=%v, want empty/nil", alg, res.Values, res.Vectors)
		}

		res, err = Eig(NewMatrixFrom(1, []float64{5}), opts)
		if err != nil {
			t.Fatalf("alg=%v n=1: %v", alg, err)
		}
		if len(res.Values) != 1 || res.Values[0] != 5 {
			t.Fatalf("alg=%v n=1: values=%v", alg, res.Values)
		}
		if res.Vectors == nil || math.Abs(math.Abs(res.Vectors.At(0, 0))-1) > 1e-15 {
			t.Fatalf("alg=%v n=1: bad eigenvector", alg)
		}

		a := diagMatrix([]float64{1, 2, 3})
		for _, rg := range [][2]int{{0, 2}, {-1, 2}, {2, 1}, {1, 4}, {4, 4}} {
			if _, err := EigRange(a, rg[0], rg[1], opts); !errors.Is(err, ErrInvalidRange) {
				t.Fatalf("alg=%v range %v: err=%v, want ErrInvalidRange", alg, rg, err)
			}
			if _, err := EigValuesRange(a, rg[0], rg[1], opts); !errors.Is(err, ErrInvalidRange) {
				t.Fatalf("alg=%v values range %v: err=%v, want ErrInvalidRange", alg, rg, err)
			}
		}
		// Any range against an empty matrix is invalid.
		if _, err := EigRange(NewMatrix(0), 1, 1, opts); !errors.Is(err, ErrInvalidRange) {
			t.Fatalf("alg=%v range on n=0: err=%v, want ErrInvalidRange", alg, err)
		}
		var re *RangeError
		_, err = EigRange(a, 1, 7, opts)
		if !errors.As(err, &re) || re.IL != 1 || re.IU != 7 || re.N != 3 {
			t.Fatalf("alg=%v: RangeError fields %+v from %v", alg, re, err)
		}
	}
}

// TestBatchRangeValidatedWithoutDst is the regression test for the
// validation hole where validateBatchItem only checked IL/IU when a caller
// supplied a destination matrix: items without a Dst (including values-only
// ones) sailed past validation and only failed deep in the pipeline. Every
// bad range must fail fast with a typed *RangeError, Dst or no Dst.
func TestBatchRangeValidatedWithoutDst(t *testing.T) {
	s := NewSolver(&Options{Workers: 2})
	defer s.Close()
	a := diagMatrix([]float64{1, 2, 3})
	items := []BatchItem{
		{A: a, IL: 2, IU: 1},                   // inverted, no Dst
		{A: a, IL: 1, IU: 9, ValuesOnly: true}, // beyond n, values-only
		{A: a, IL: 0, IU: 2},                   // half-set range
		{A: a, IL: 4, IU: 4},                   // both beyond n
		{A: a},                                 // healthy control
	}
	results := s.SolveBatch(context.Background(), items)
	for i := 0; i < 4; i++ {
		var re *RangeError
		if !errors.As(results[i].Err, &re) {
			t.Fatalf("item %d (IL=%d IU=%d, no Dst): err=%v, want *RangeError",
				i, items[i].IL, items[i].IU, results[i].Err)
		}
		if re.N != 3 {
			t.Fatalf("item %d: RangeError.N=%d, want 3", i, re.N)
		}
		if !errors.Is(results[i].Err, ErrInvalidRange) {
			t.Fatalf("item %d: error does not match ErrInvalidRange sentinel", i)
		}
	}
	if results[4].Err != nil || len(results[4].Values) != 3 {
		t.Fatalf("healthy item harmed by neighbours: %+v", results[4])
	}
}

// TestBatchGateOverBudgetClamp pins the gate's clamp rule: a cost larger
// than the whole budget is clamped to the budget, so the oversized acquire
// succeeds but holds every byte (forcing it to run alone), and its release
// restores exactly the clamped amount instead of overflowing the budget.
func TestBatchGateOverBudgetClamp(t *testing.T) {
	g := newBatchGate(2, 100)
	ctx := context.Background()
	if err := g.acquire(ctx, 1000); err != nil {
		t.Fatalf("over-budget acquire must clamp and succeed: %v", err)
	}
	// The clamped acquire holds the full budget: a small follow-up blocks
	// even though a slot is free.
	acquired := make(chan error, 1)
	go func() { acquired <- g.acquire(ctx, 10) }()
	select {
	case <-acquired:
		t.Fatal("acquire got budget while a clamped oversized hold was live")
	case <-time.After(50 * time.Millisecond):
	}
	g.release(1000) // release clamps symmetrically
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("release of a clamped hold did not free the budget")
	}
	g.release(10)
	g.mu.Lock()
	slots, avail := g.slots, g.avail
	g.mu.Unlock()
	if slots != 2 || avail != 100 {
		t.Fatalf("after all releases: slots=%d avail=%d, want 2/100", slots, avail)
	}
}

// TestSolveBatchOversizedItemsRunAlone is the end-to-end face of the clamp:
// items whose workspace estimate exceeds the entire MemoryBudget still
// complete (serialized, not deadlocked and not refused).
func TestSolveBatchOversizedItemsRunAlone(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := NewSolver(&Options{Workers: 2, MemoryBudget: 1024})
	defer s.Close()
	if est := s.EstimateWorkspaceBytes(32, true); est <= 1024 {
		t.Fatalf("test premise broken: n=32 estimate %d fits the 1KiB budget", est)
	}
	items := make([]BatchItem, 3)
	for i := range items {
		items[i].A = randSymMatrix(rng, 32)
	}
	for i, r := range s.SolveBatch(context.Background(), items) {
		if r.Err != nil {
			t.Fatalf("oversized item %d: %v", i, r.Err)
		}
		if len(r.Values) != 32 {
			t.Fatalf("oversized item %d: %d values", i, len(r.Values))
		}
	}
}

// TestSolverGateSharedAcrossBatchCalls pins the persistent-gate contract
// introduced for the service: concurrent SolveBatch calls on one Solver
// draw from the same BatchConcurrency slots, and a single shared slot
// serializes them without deadlock or lost results.
func TestSolverGateSharedAcrossBatchCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := NewSolver(&Options{Workers: 2, BatchConcurrency: 1})
	defer s.Close()
	mats := make([]*Matrix, 4)
	for i := range mats {
		mats[i] = randSymMatrix(rng, 24)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(mats))
	for _, a := range mats {
		wg.Add(1)
		go func(a *Matrix) {
			defer wg.Done()
			res := s.SolveBatch(context.Background(), []BatchItem{{A: a}})
			errs <- res[0].Err
		}(a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent single-item batch: %v", err)
		}
	}
}
