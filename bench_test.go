package eigen

// One benchmark per table and figure of the paper's evaluation. Each bench
// delegates to the shared harness in internal/bench and logs the resulting
// table; `go test -bench=. -benchmem` therefore regenerates the entire
// evaluation (at laptop-scale sizes — see EXPERIMENTS.md for the recorded
// runs and the paper-vs-measured comparison). cmd/eigbench runs the same
// experiments standalone with configurable sizes.

import (
	"testing"

	"repro/internal/bench"
)

// benchSizes keeps the in-test sweeps quick; cmd/eigbench uses larger ones.
var benchSizes = []int{128, 256}

func BenchmarkTable1_MethodComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Table1(192)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable2_ReductionKernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Table2()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable3_MachineParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Table3()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure1a_OneStageBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure1('a', benchSizes, 0)
		if i == 0 {
			b.Log("\n" + t.String())
			b.Log("\n" + bench.Figure1ValuesOnly(benchSizes).String())
		}
	}
}

func BenchmarkFigure1b_TwoStageBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure1('b', benchSizes, 0)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure2_BulgeKernelStructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure2(96, 8)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure3_BacktransformStructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure3(192, 16, 16, 4)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure4a_SpeedupDC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure4('a', benchSizes, 0)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure4b_SpeedupBI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure4('b', benchSizes, 0)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure4c_SpeedupTRD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure4('c', benchSizes, 0)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure4d_Speedup20pct(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure4('d', benchSizes, 0)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure5_TileSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure5(256, []int{4, 8, 16, 32, 64}, 0)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkModel_Eqs4to10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.ModelTable([]int{256, 512, 1024, 2048, 4096, 24000})
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkSection41_EVDvsSVDModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.SVDComparison([]int{512, 1024, 4096, 24000})
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFraction_PartialSpectrum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Fraction(256, 0)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkAblationGroupWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.AblationGroup(256, 16, []int{1, 2, 4, 8, 16, 32})
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkAblationStage2Scheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.AblationStage2Cores(256, 16, []int{1, 2, 4})
		if i == 0 {
			b.Log("\n" + t.String())
			b.Log("\n" + bench.Stage2ParallelCheck(128, 8, []int{1, 2, 4}).String())
		}
	}
}

func BenchmarkAblationStage1Scheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.AblationStage1Sched(256, 32, []int{1, 2, 4})
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkVerification_MatrixFamilies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.VerifyTable(128, 0)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkEig_* are conventional per-op benchmarks of the public API for
// profiling (ns/op, allocs/op) rather than paper reproduction.
func BenchmarkEig_TwoStage256(b *testing.B) { benchEig(b, TwoStage, 256) }
func BenchmarkEig_OneStage256(b *testing.B) { benchEig(b, OneStage, 256) }

func benchEig(b *testing.B, alg Algorithm, n int) {
	a := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			a.SetSym(i, j, float64((i*37+j*17)%100)/100)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eig(a, &Options{Algorithm: alg}); err != nil {
			b.Fatal(err)
		}
	}
}
