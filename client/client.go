// Package client is the Go client for the eigensolver service (cmd/eigserve
// / internal/service): submit a symmetric matrix, poll or long-poll the job,
// fetch the result as eigen types. Matrix payloads travel as base64 IEEE
// float64 bits, so a round trip through the service is bit-exact — the
// values and vectors fetched back equal a direct Solver.Eig call on the same
// machine bit for bit.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	eigen "repro"
	"repro/internal/service"
)

// APIError is every non-2xx response: the HTTP status plus the service's
// stable machine-readable code (see the Code* constants in internal/service)
// and human-readable message.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("eigserve: %d %s: %s", e.StatusCode, e.Code, e.Message)
}

// Job is the client view of a job record.
type Job struct {
	ID         string
	Status     string
	N          int
	ValuesOnly bool
	IL, IU     int
	Created    time.Time
	Started    time.Time
	Finished   time.Time
	// ErrCode/ErrMsg describe a failed or canceled job.
	ErrCode string
	ErrMsg  string
}

// Terminal reports whether the job has reached a final state.
func (j *Job) Terminal() bool {
	return service.Status(j.Status).Terminal()
}

// Result is a fetched eigensolve result.
type Result struct {
	// Values are the eigenvalues in ascending order.
	Values []float64
	// Vectors holds the matching eigenvectors in its columns (nil for
	// values-only jobs).
	Vectors *eigen.Matrix
}

// SubmitOptions mirror the per-item solve options of eigen.BatchItem.
type SubmitOptions struct {
	// ValuesOnly skips the eigenvector computation.
	ValuesOnly bool
	// IL, IU select eigenpairs il..iu (1-based, ascending, inclusive); both
	// zero means the full spectrum.
	IL, IU int
}

// Client talks to one eigensolver server. The zero value is not usable; use
// New. A Client is safe for concurrent use.
type Client struct {
	baseURL string
	apiKey  string
	hc      *http.Client
	// waitQuantum is the per-request long-poll window Wait uses; the server
	// clamps it to its own MaxWait. Shortened in tests.
	waitQuantum time.Duration
}

// New builds a client for the server at baseURL (e.g. "http://10.0.0.5:8080")
// authenticating with apiKey (empty for a server with auth disabled).
func New(baseURL, apiKey string) *Client {
	return &Client{
		baseURL:     strings.TrimRight(baseURL, "/"),
		apiKey:      apiKey,
		hc:          &http.Client{},
		waitQuantum: 10 * time.Second,
	}
}

// SetHTTPClient replaces the underlying http.Client (custom transports,
// TLS config). Do not set a global Timeout shorter than the long-poll
// quantum — use request contexts for per-call deadlines instead.
func (c *Client) SetHTTPClient(hc *http.Client) { c.hc = hc }

// Submit sends the symmetric matrix a for solving and returns the accepted
// job (status queued). The matrix is transported bit-exactly.
func (c *Client) Submit(ctx context.Context, a *eigen.Matrix, opts *SubmitOptions) (*Job, error) {
	rows, cols := a.Dims()
	if rows != cols {
		return nil, fmt.Errorf("client: matrix must be square, got %d×%d", rows, cols)
	}
	data := make([]float64, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			data[i*cols+j] = a.At(i, j)
		}
	}
	req := service.SubmitRequest{N: rows, DataB64: service.EncodeFloats(data)}
	if opts != nil {
		req.ValuesOnly = opts.ValuesOnly
		req.IL, req.IU = opts.IL, opts.IU
	}
	var j service.Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", &req, &j); err != nil {
		return nil, err
	}
	return fromWire(&j), nil
}

// Job fetches the current state of a job.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var j service.Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return fromWire(&j), nil
}

// Wait long-polls until the job reaches a terminal state or ctx is done.
// A terminal job is returned, not an error — inspect Status/ErrCode, or just
// call Result, which maps failures to typed errors.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	for {
		var j service.Job
		path := fmt.Sprintf("/v1/jobs/%s?wait=%s", id, c.waitQuantum)
		if err := c.do(ctx, http.MethodGet, path, nil, &j); err != nil {
			return nil, err
		}
		if service.Status(j.Status).Terminal() {
			return fromWire(&j), nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
}

// Result fetches the result of a done job. A job that failed (or was
// canceled) yields an *APIError carrying the service's stable code — e.g.
// "not_finite" with status 400 for a NaN input, "canceled" for a canceled
// job; a job still in flight yields code "pending" (409).
func (c *Client) Result(ctx context.Context, id string) (*Result, error) {
	var rr service.ResultResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &rr); err != nil {
		return nil, err
	}
	res := &Result{Values: rr.Values}
	if rr.VectorsB64 != "" {
		flat, err := service.DecodeFloats(rr.VectorsB64)
		if err != nil {
			return nil, err
		}
		if len(flat) != rr.Rows*rr.Cols {
			return nil, fmt.Errorf("client: vector payload has %d entries, want %d×%d", len(flat), rr.Rows, rr.Cols)
		}
		m := eigen.NewMatrixRect(rr.Rows, rr.Cols)
		for col := 0; col < rr.Cols; col++ {
			for row := 0; row < rr.Rows; row++ {
				m.Set(row, col, flat[col*rr.Rows+row])
			}
		}
		res.Vectors = m
	}
	return res, nil
}

// Cancel requests cancellation of a queued or running job. Cancellation is
// asynchronous: the call returns the record as it stands; Wait observes the
// transition to "canceled" once the solver has unwound.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var j service.Job
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return fromWire(&j), nil
}

// Solve is the synchronous convenience wrapper: submit, wait, fetch. The
// job is canceled server-side if ctx dies while waiting.
func (c *Client) Solve(ctx context.Context, a *eigen.Matrix, opts *SubmitOptions) (*Result, error) {
	j, err := c.Submit(ctx, a, opts)
	if err != nil {
		return nil, err
	}
	if _, err := c.Wait(ctx, j.ID); err != nil {
		if ctx.Err() != nil {
			// Best-effort server-side cancel so the abandoned job does not
			// hold an admission slot; a background context since ours died.
			cctx, stop := context.WithTimeout(context.Background(), 5*time.Second)
			defer stop()
			c.Cancel(cctx, j.ID) //nolint:errcheck // best-effort
		}
		return nil, err
	}
	return c.Result(ctx, j.ID)
}

// Health checks the server's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

func fromWire(j *service.Job) *Job {
	return &Job{
		ID:         j.ID,
		Status:     string(j.Status),
		N:          j.N,
		ValuesOnly: j.ValuesOnly,
		IL:         j.IL,
		IU:         j.IU,
		Created:    j.Created,
		Started:    j.Started,
		Finished:   j.Finished,
		ErrCode:    j.ErrCode,
		ErrMsg:     j.ErrMsg,
	}
}

// do performs one JSON round trip. Non-2xx responses decode into *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck // drain for keep-alive
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{StatusCode: resp.StatusCode}
		var eb service.ErrorBody
		if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&eb); derr == nil {
			apiErr.Code = eb.Error.Code
			apiErr.Message = eb.Error.Message
		} else {
			apiErr.Code = "unknown"
			apiErr.Message = resp.Status
		}
		return apiErr
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// AsAPIError unwraps err into an *APIError when it is one.
func AsAPIError(err error) (*APIError, bool) {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae, true
	}
	return nil, false
}
