// Integration tests: every test starts a real server on a loopback listener
// (httptest wraps net.Listen("tcp", "127.0.0.1:0")) backed by a real
// eigen.Solver, and drives it through the public client only — submit, poll,
// long-poll, result, cancel — under -race via scripts/check.sh.
package client

import (
	"context"
	"math"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	eigen "repro"
	"repro/internal/service"
)

// testOpts are the solver options shared by the served and the reference
// solvers, so the bitwise comparison compares like with like. Tuning is
// disabled to keep the tests hermetic against on-disk profiles.
func testOpts() *eigen.Options {
	return &eigen.Options{Workers: 2, DisableTuning: true}
}

// startServer launches a service over a fresh solver and returns a client
// for it. Extra solver options are merged via mutate.
func startServer(t *testing.T, mutate func(*eigen.Options), cfg service.Config) (*Client, *eigen.Solver) {
	t.Helper()
	opts := testOpts()
	if mutate != nil {
		mutate(opts)
	}
	solver := eigen.NewSolver(opts)
	t.Cleanup(func() { solver.Close() })
	cfg.Solver = solver
	if cfg.Store == nil {
		store := service.NewMemStore(0)
		t.Cleanup(func() { store.Close() })
		cfg.Store = store
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	key := ""
	if len(cfg.APIKeys) > 0 {
		key = cfg.APIKeys[0]
	}
	c := New(ts.URL, key)
	c.waitQuantum = 250 * time.Millisecond
	return c, solver
}

func randSym(rng *rand.Rand, n int) *eigen.Matrix {
	a := eigen.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			a.SetSym(i, j, rng.NormFloat64())
		}
	}
	return a
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// matrixEqual compares two matrices bit for bit through the public API.
func matrixEqual(a, b *eigen.Matrix) bool {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		return false
	}
	for j := 0; j < ac; j++ {
		if !sameFloats(a.Col(j), b.Col(j)) {
			return false
		}
	}
	return true
}

// TestRoundTripBitwise is the core service guarantee: submit → long-poll →
// result through a real loopback HTTP server returns values and vectors
// bitwise equal to calling Solver.Eig directly with the same options. Full
// spectrum, values-only, and range jobs all round-trip.
func TestRoundTripBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c, _ := startServer(t, nil, service.Config{APIKeys: []string{"k"}})
	ref := eigen.NewSolver(testOpts())
	defer ref.Close()
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	// Full spectrum with vectors.
	aFull := randSym(rng, 96)
	got, err := c.Solve(ctx, aFull, nil)
	if err != nil {
		t.Fatalf("full solve via service: %v", err)
	}
	want, err := ref.Eig(aFull)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloats(got.Values, want.Values) {
		t.Fatal("full: values differ from direct Solver.Eig")
	}
	if got.Vectors == nil || !matrixEqual(got.Vectors, want.Vectors) {
		t.Fatal("full: vectors differ from direct Solver.Eig")
	}

	// Values-only: no vector payload at all.
	aVals := randSym(rng, 64)
	got, err = c.Solve(ctx, aVals, &SubmitOptions{ValuesOnly: true})
	if err != nil {
		t.Fatalf("values-only via service: %v", err)
	}
	wantVals, err := ref.EigValues(aVals)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloats(got.Values, wantVals) {
		t.Fatal("values-only: values differ")
	}
	if got.Vectors != nil {
		t.Fatal("values-only job returned vectors")
	}

	// Partial spectrum.
	aRange := randSym(rng, 48)
	got, err = c.Solve(ctx, aRange, &SubmitOptions{IL: 3, IU: 20})
	if err != nil {
		t.Fatalf("range via service: %v", err)
	}
	wantR, err := ref.EigRange(aRange, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloats(got.Values, wantR.Values) || !matrixEqual(got.Vectors, wantR.Vectors) {
		t.Fatal("range: result differs from direct EigRange")
	}
}

// TestCancelMidSolveFreesSlot submits a large job to a BatchConcurrency=1
// server, cancels it mid-solve, and requires (a) the job reaches the
// canceled state well within the deadline, and (b) the admission slot it
// held is released — proven by a second job that can only run in that slot.
func TestCancelMidSolveFreesSlot(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c, _ := startServer(t, func(o *eigen.Options) { o.BatchConcurrency = 1 }, service.Config{})
	ctx := context.Background()

	big, err := c.Submit(ctx, randSym(rng, 512), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Catch it mid-solve: wait for the running transition plus a beat.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := c.Job(ctx, big.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status == string(service.StatusRunning) {
			break
		}
		if j.Terminal() {
			t.Fatalf("n=512 job terminal (%s) before it could be canceled", j.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)

	cancelAt := time.Now()
	if _, err := c.Cancel(ctx, big.ID); err != nil {
		t.Fatal(err)
	}
	wctx, stop := context.WithTimeout(ctx, 5*time.Second)
	defer stop()
	j, err := c.Wait(wctx, big.ID)
	if err != nil {
		t.Fatalf("canceled job did not reach a terminal state in time: %v", err)
	}
	if j.Status != string(service.StatusCanceled) || j.ErrCode != service.CodeCanceled {
		t.Fatalf("after cancel: status=%s code=%s, want canceled/canceled", j.Status, j.ErrCode)
	}
	if took := time.Since(cancelAt); took > 5*time.Second {
		t.Fatalf("cancel took %v, want well under the 5s deadline", took)
	}

	// The result of a canceled job is the stable 499/canceled mapping.
	if _, err := c.Result(ctx, big.ID); err == nil {
		t.Fatal("result of a canceled job must error")
	} else if ae, ok := AsAPIError(err); !ok || ae.StatusCode != service.StatusClientClosedRequest || ae.Code != service.CodeCanceled {
		t.Fatalf("canceled result error = %v, want 499/canceled", err)
	}

	// Slot release: with BatchConcurrency=1 this job needs the canceled
	// job's slot. A short deadline makes a leaked slot a loud failure.
	sctx, stop2 := context.WithTimeout(ctx, 30*time.Second)
	defer stop2()
	if _, err := c.Solve(sctx, randSym(rng, 32), nil); err != nil {
		t.Fatalf("job after cancel did not run — admission slot leaked? %v", err)
	}
}

// TestAuthRejected pins the client-visible auth failure: a wrong key is a
// typed 401 APIError on every endpoint, and no job is created.
func TestAuthRejected(t *testing.T) {
	c, _ := startServer(t, nil, service.Config{APIKeys: []string{"right"}})
	bad := New(c.baseURL, "wrong")
	ctx := context.Background()

	if _, err := bad.Submit(ctx, eigen.NewMatrixFrom(2, []float64{2, 1, 1, 2}), nil); err == nil {
		t.Fatal("submit with wrong key must fail")
	} else if ae, ok := AsAPIError(err); !ok || ae.StatusCode != 401 || ae.Code != service.CodeUnauthorized {
		t.Fatalf("submit error = %v, want 401/unauthorized", err)
	}
	if _, err := bad.Job(ctx, "any"); err == nil {
		t.Fatal("poll with wrong key must fail")
	} else if ae, ok := AsAPIError(err); !ok || ae.StatusCode != 401 {
		t.Fatalf("poll error = %v, want 401", err)
	}
	// The right key still works on the same server.
	if _, err := c.Solve(ctx, eigen.NewMatrixFrom(2, []float64{2, 1, 1, 2}), nil); err != nil {
		t.Fatalf("correct key rejected: %v", err)
	}
}

// TestOverBudgetRefused pins the admission-pricing refusal: a problem whose
// workspace estimate exceeds the solver's entire MemoryBudget is refused at
// submit with a typed 413/over_budget — it never becomes a job — while
// problems under the budget sail through on the same server.
func TestOverBudgetRefused(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	c, solver := startServer(t, func(o *eigen.Options) { o.MemoryBudget = 1 << 20 }, service.Config{})
	ctx := context.Background()

	if est := solver.EstimateWorkspaceBytes(256, true); est <= solver.MemoryBudget() {
		t.Fatalf("test premise broken: n=256 estimate %d fits budget %d", est, solver.MemoryBudget())
	}
	_, err := c.Submit(ctx, randSym(rng, 256), nil)
	if err == nil {
		t.Fatal("over-budget submit must be refused")
	}
	ae, ok := AsAPIError(err)
	if !ok || ae.StatusCode != 413 || ae.Code != service.CodeOverBudget {
		t.Fatalf("over-budget error = %v, want 413/over_budget", err)
	}

	if est := solver.EstimateWorkspaceBytes(64, true); est > solver.MemoryBudget() {
		t.Fatalf("test premise broken: n=64 estimate %d over budget %d", est, solver.MemoryBudget())
	}
	if _, err := c.Solve(ctx, randSym(rng, 64), nil); err != nil {
		t.Fatalf("under-budget job refused: %v", err)
	}
}

// TestNotFiniteRejected drives the typed error mapping end to end over the
// wire: NaN reaches the solver via the binary encoding, the job fails with
// the solver's own *NotFiniteError, and the client sees a stable
// 400/not_finite APIError — never a 500.
func TestNotFiniteRejected(t *testing.T) {
	c, _ := startServer(t, nil, service.Config{})
	ctx := context.Background()

	a := eigen.NewMatrix(2)
	a.SetSym(0, 0, 1)
	a.SetSym(1, 1, math.NaN())
	_, err := c.Solve(ctx, a, nil)
	if err == nil {
		t.Fatal("NaN input must fail")
	}
	ae, ok := AsAPIError(err)
	if !ok || ae.StatusCode != 400 || ae.Code != service.CodeNotFinite {
		t.Fatalf("NaN error = %v, want 400/not_finite", err)
	}
}

// TestConcurrentClients hammers one server from many goroutines (run under
// -race by scripts/check.sh): every job must complete and match its direct
// reference solve bitwise, with all clients sharing one solver, one
// admission gate, and one store.
func TestConcurrentClients(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	c, _ := startServer(t, func(o *eigen.Options) { o.BatchConcurrency = 3 }, service.Config{APIKeys: []string{"k"}})
	ref := eigen.NewSolver(testOpts())
	defer ref.Close()

	sizes := []int{24, 33, 40, 51}
	mats := make([]*eigen.Matrix, len(sizes))
	wantVals := make([][]float64, len(sizes))
	wantVecs := make([]*eigen.Matrix, len(sizes))
	for i, n := range sizes {
		mats[i] = randSym(rng, n)
		res, err := ref.Eig(mats[i])
		if err != nil {
			t.Fatal(err)
		}
		wantVals[i], wantVecs[i] = res.Values, res.Vectors
	}

	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*len(sizes))
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := range sizes {
				idx := (g + i) % len(sizes)
				res, err := c.Solve(ctx, mats[idx], nil)
				if err != nil {
					errs <- err
					continue
				}
				if !sameFloats(res.Values, wantVals[idx]) || !matrixEqual(res.Vectors, wantVecs[idx]) {
					errs <- &APIError{Code: "mismatch", Message: "result diverged from reference"}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent client: %v", err)
	}
}

// TestDiskStoreRestartSurvival proves the restart story end to end: results
// served from a disk-journal store survive a full server teardown and are
// still fetchable — bit for bit — through a brand-new server over the same
// journal.
func TestDiskStoreRestartSurvival(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	path := t.TempDir() + "/jobs.jsonl"
	store, err := service.NewDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}

	solver := eigen.NewSolver(testOpts())
	defer solver.Close()
	svc, err := service.New(service.Config{Solver: solver, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	c := New(ts.URL, "")
	c.waitQuantum = 250 * time.Millisecond
	ctx := context.Background()

	a := randSym(rng, 32)
	job, err := c.Submit(ctx, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	first, err := c.Result(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Full teardown: HTTP server, service, store.
	ts.Close()
	svc.Close()
	store.Close()

	store2, err := service.NewDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	svc2, err := service.New(service.Config{Solver: solver, Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	ts2 := httptest.NewServer(svc2)
	defer ts2.Close()
	c2 := New(ts2.URL, "")

	j, err := c2.Job(ctx, job.ID)
	if err != nil {
		t.Fatalf("job lost across restart: %v", err)
	}
	if j.Status != string(service.StatusDone) {
		t.Fatalf("restarted job status %s, want done", j.Status)
	}
	second, err := c2.Result(ctx, job.ID)
	if err != nil {
		t.Fatalf("result lost across restart: %v", err)
	}
	if !sameFloats(first.Values, second.Values) || !matrixEqual(first.Vectors, second.Vectors) {
		t.Fatal("result changed across restart")
	}
}
