package main

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	eigen "repro"
	"repro/internal/bench"
)

// BatchPoint is one recorded batch-throughput measurement, written to
// BENCH_batch.json. NumCPU/Gomaxprocs are recorded because concurrent batch
// solving can only beat the sequential loop when hardware parallelism exists;
// on a single-core machine the two modes measure scheduling overhead only.
type BatchPoint struct {
	N           int     `json:"n"`
	Batch       int     `json:"batch"`
	Workers     int     `json:"workers"`
	SeqSec      float64 `json:"sequential_sec"`
	BatchSec    float64 `json:"batch_sec"`
	SeqRate     float64 `json:"sequential_solves_per_sec"`
	BatchRate   float64 `json:"batch_solves_per_sec"`
	Speedup     float64 `json:"speedup"`
	Identical   bool    `json:"bitwise_identical"`
	NumCPU      int     `json:"num_cpu"`
	Gomaxprocs  int     `json:"gomaxprocs"`
	BatchFanout int     `json:"batch_fanout"`
}

// batchThroughput compares, per matrix size, a sequential EigTo loop against
// SolveBatch over the same Solver, and checks the bitwise-identity contract
// on every eigenvalue and eigenvector.
func batchThroughput(sizes []int, batch, workers int) (*bench.Table, []BatchPoint) {
	if batch <= 0 {
		batch = 32
	}
	if workers <= 0 {
		workers = 8
	}
	rng := rand.New(rand.NewSource(1234))

	table := &bench.Table{
		Name:    fmt.Sprintf("Concurrent batch vs sequential loop (batch=%d, workers=%d, NumCPU=%d)", batch, workers, runtime.NumCPU()),
		Headers: []string{"n", "seq solves/s", "batch solves/s", "speedup", "bitwise"},
	}
	var points []BatchPoint

	for _, n := range sizes {
		problems := make([]*eigen.Matrix, batch)
		for p := range problems {
			m := eigen.NewMatrix(n)
			for i := 0; i < n; i++ {
				for j := i; j < n; j++ {
					m.SetSym(i, j, rng.NormFloat64())
				}
			}
			problems[p] = m
		}

		s := eigen.NewSolver(&eigen.Options{Workers: workers, SkipSymmetryCheck: true})
		ctx := context.Background()

		// Sequential baseline: one solve at a time on the same Solver.
		seqDst := make([]*eigen.Matrix, batch)
		seqVals := make([][]float64, batch)
		for p := range problems {
			seqDst[p] = eigen.NewMatrix(n)
		}
		if _, err := s.EigTo(ctx, problems[0], eigen.NewMatrix(n)); err != nil { // warm the arena pool
			panic(err)
		}
		seqStart := time.Now()
		for p, a := range problems {
			vals, err := s.EigTo(ctx, a, seqDst[p])
			if err != nil {
				panic(err)
			}
			seqVals[p] = vals
		}
		seqSec := time.Since(seqStart).Seconds()

		// Concurrent batch over the same Solver.
		items := make([]eigen.BatchItem, batch)
		batchDst := make([]*eigen.Matrix, batch)
		for p := range items {
			batchDst[p] = eigen.NewMatrix(n)
			items[p] = eigen.BatchItem{A: problems[p], Dst: batchDst[p]}
		}
		batchStart := time.Now()
		results := s.SolveBatch(ctx, items)
		batchSec := time.Since(batchStart).Seconds()
		s.Close()

		identical := true
		for p, r := range results {
			if r.Err != nil {
				panic(fmt.Sprintf("batch item %d: %v", p, r.Err))
			}
			for i, v := range r.Values {
				if v != seqVals[p][i] {
					identical = false
				}
			}
			for i := 0; i < n && identical; i++ {
				for j := 0; j < n; j++ {
					if batchDst[p].At(i, j) != seqDst[p].At(i, j) {
						identical = false
						break
					}
				}
			}
		}

		pt := BatchPoint{
			N:           n,
			Batch:       batch,
			Workers:     workers,
			SeqSec:      seqSec,
			BatchSec:    batchSec,
			SeqRate:     float64(batch) / seqSec,
			BatchRate:   float64(batch) / batchSec,
			Speedup:     seqSec / batchSec,
			Identical:   identical,
			NumCPU:      runtime.NumCPU(),
			Gomaxprocs:  runtime.GOMAXPROCS(0),
			BatchFanout: eigen.DefaultBatchFanout,
		}
		points = append(points, pt)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", pt.SeqRate),
			fmt.Sprintf("%.2f", pt.BatchRate),
			fmt.Sprintf("%.2f×", pt.Speedup),
			fmt.Sprintf("%v", identical),
		})
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("GOMAXPROCS=%d; batch speedup requires hardware parallelism — on one core it measures admission/scheduling overhead", runtime.GOMAXPROCS(0)))
	return table, points
}
