package main

import (
	"fmt"

	"repro/internal/bench"
)

// kernelsExperiment runs the GEMM-kernel before/after comparison (-exp
// kernels): per-kernel Dgemm Gflop/s at the acceptance order 512 (plus 256
// for shape), end-to-end Eig wall time at 256/512/1024 under the seed and
// reworked kernels, bitwise gates on everything, serialized to
// BENCH_kernels.json. Build with -tags blasasm to include the assembly
// kernel (recorded in the asm_active field either way).
func kernelsExperiment(out string, reps int) (*bench.Table, error) {
	table, report := bench.KernelsExperiment([]int{256, 512}, []int{256, 512, 1024}, reps)
	if err := writeJSON(out, report); err != nil {
		return table, fmt.Errorf("writing %s: %w", out, err)
	}
	fmt.Printf("wrote %s (Dgemm 512 speedup vs seed: %.2fx)\n", out, report.SpeedupVsSeed(512))
	return table, nil
}
