// Command eigbench regenerates the paper's tables and figures on this
// machine using the shared harness in internal/bench. Each experiment is
// selected by -exp; -sizes, -n, -nb and -workers scale it up or down.
//
//	eigbench -exp all                       # everything at default sizes
//	eigbench -exp fig4c -sizes 256,512,1024 # the TRD speedup sweep
//	eigbench -exp fig5 -n 768               # the tile-size sweep
//	eigbench -exp model                     # Eqs. 4-6/9-10 with measured α, β
//
// See EXPERIMENTS.md for recorded outputs and the paper-vs-measured notes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

// writeJSON persists one experiment's record as {"host": …, "points": …} so
// every BENCH_*.json carries the machine identity (CPU model, core count,
// GOMAXPROCS, profile schema) it was measured on — recorded rates are
// meaningless without it.
func writeJSON(path string, points any) error {
	data, err := json.MarshalIndent(struct {
		Host   bench.HostInfo `json:"host"`
		Points any            `json:"points"`
	}{bench.Host(), points}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|table2|table3|fig1a|fig1b|fig2|fig3|fig4a|fig4b|fig4c|fig4d|fig5|model|svdcmp|fraction|verify|ablate-group|ablate-sched|ablate-colblock|backtrans|reuse|batch|pipeline|tridiag|stage1|kernels|sbr|all")
		sizes   = flag.String("sizes", "", "comma-separated matrix sizes for sweeps (default 128,256,384,512)")
		n       = flag.Int("n", 512, "matrix size for single-size experiments")
		nb      = flag.Int("nb", 32, "tile size where applicable")
		workers = flag.Int("workers", 0, "scheduler workers (0 = sequential)")
		reuse   = flag.Bool("reuse", false, "also run the reusable-Solver experiment (same as -exp reuse)")
		out     = flag.String("out", "BENCH_backtrans.json", "output path for the backtrans/batch experiments' JSON record (batch defaults to BENCH_batch.json)")
	)
	flag.Parse()

	sz := bench.DefaultSizes
	if *sizes != "" {
		sz = nil
		for _, tok := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "eigbench: bad size %q\n", tok)
				os.Exit(2)
			}
			sz = append(sz, v)
		}
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	any := false
	show := func(t *bench.Table) {
		fmt.Println(t.String())
		any = true
	}

	if run("table1") {
		show(bench.Table1(*n))
	}
	if run("table2") {
		show(bench.Table2())
	}
	if run("table3") {
		show(bench.Table3())
	}
	if run("fig1a") {
		show(bench.Figure1('a', sz, *workers))
		show(bench.Figure1ValuesOnly(sz))
	}
	if run("fig1b") {
		show(bench.Figure1('b', sz, *workers))
	}
	if run("fig2") {
		show(bench.Figure2(min(*n, 128), *nb))
	}
	if run("fig3") {
		show(bench.Figure3(*n, *nb, *nb, 4))
	}
	for _, v := range []byte{'a', 'b', 'c', 'd'} {
		if run("fig4" + string(v)) {
			show(bench.Figure4(v, sz, *workers))
		}
	}
	if run("fig5") {
		show(bench.Figure5(*n, []int{8, 16, 24, 32, 48, 64, 96, 128}, *workers))
	}
	if run("model") {
		show(bench.ModelTable([]int{256, 512, 1024, 2048, 4096, 8192, 24000}))
	}
	if run("svdcmp") {
		show(bench.SVDComparison([]int{512, 1024, 4096, 24000}))
	}
	if run("fraction") {
		show(bench.Fraction(*n, *workers))
	}
	if run("verify") {
		show(bench.VerifyTable(min(*n, 256), *workers))
		show(bench.Stage2ParallelCheck(min(*n, 256), *nb, []int{1, 2, 4}))
	}
	if run("ablate-group") {
		show(bench.AblationGroup(*n, *nb, []int{1, 2, 4, 8, *nb, 2 * *nb}))
	}
	if run("ablate-sched") {
		show(bench.AblationStage2Cores(*n, *nb, []int{1, 2, 4}))
		show(bench.AblationStage1Sched(*n, *nb, []int{1, 2, 4}))
	}
	if run("ablate-colblock") {
		show(bench.AblationColBlock(*n, *nb, *workers, []int{16, 32, 64, 128, 256}))
	}
	if *exp == "backtrans" { // not part of "all": the large sweep stands alone
		bsz := sz
		if *sizes == "" {
			bsz = []int{512, 1024, 2048}
		}
		table, points := bench.BacktransCompare(bsz, *nb, []int{1, 4}, 5)
		show(table)
		if err := writeJSON(*out, points); err != nil {
			fmt.Fprintf(os.Stderr, "eigbench: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d points)\n", *out, len(points))
	}
	if *reuse || run("reuse") {
		show(reuseTable(min(*n, 512), *nb, *workers, 4))
	}
	if *exp == "batch" { // not part of "all": the batch sweep stands alone
		bsz := sz
		if *sizes == "" {
			bsz = []int{64, 256, 1024}
		}
		w := *workers
		if w == 0 {
			w = 8
		}
		table, points := batchThroughput(bsz, 32, w)
		show(table)
		path := *out
		if path == "BENCH_backtrans.json" { // flag default belongs to -exp backtrans
			path = "BENCH_batch.json"
		}
		if err := writeJSON(path, points); err != nil {
			fmt.Fprintf(os.Stderr, "eigbench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d points)\n", path, len(points))
	}
	if *exp == "pipeline" { // not part of "all": the pipelined-batch sweep stands alone
		psz := sz
		if *sizes == "" {
			psz = []int{256, 512, 1024}
		}
		w := *workers
		if w == 0 {
			w = 8
		}
		table, points := pipelineThroughput(psz, 16, w)
		show(table)
		path := *out
		if path == "BENCH_backtrans.json" { // flag default belongs to -exp backtrans
			path = "BENCH_pipeline.json"
		}
		if err := writeJSON(path, points); err != nil {
			fmt.Fprintf(os.Stderr, "eigbench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d points)\n", path, len(points))
	}
	if *exp == "stage1" { // not part of "all": the look-ahead sweep stands alone
		ssz := sz
		if *sizes == "" {
			ssz = []int{256, 512, 1024}
		}
		w := *workers
		if w == 0 {
			w = 4
		}
		table, points := bench.Stage1Compare(ssz, *nb, w, 0, 3)
		show(table)
		path := *out
		if path == "BENCH_backtrans.json" { // flag default belongs to -exp backtrans
			path = "BENCH_stage1.json"
		}
		if err := writeJSON(path, points); err != nil {
			fmt.Fprintf(os.Stderr, "eigbench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d points)\n", path, len(points))
	}
	if *exp == "kernels" { // not part of "all": the kernel sweep stands alone
		path := *out
		if path == "BENCH_backtrans.json" { // flag default belongs to -exp backtrans
			path = "BENCH_kernels.json"
		}
		table, err := kernelsExperiment(path, 3)
		show(table)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eigbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *exp == "sbr" { // not part of "all": the multi-sweep sweep stands alone
		ssz := sz
		if *sizes == "" {
			ssz = []int{512, 1024, 2048}
		}
		w := *workers
		if w == 0 {
			w = 4
		}
		plans := []bench.SBRConfig{
			{}, // direct — the speedup/drift reference, must stay first
			{WideBand: 64, Sweeps: []int{8}},
			{WideBand: 128, Sweeps: []int{32, 8}},
		}
		table, points := sbrCompare(ssz, plans, w, 2)
		show(table)
		path := *out
		if path == "BENCH_backtrans.json" { // flag default belongs to -exp backtrans
			path = "BENCH_sbr.json"
		}
		if err := writeJSON(path, points); err != nil {
			fmt.Fprintf(os.Stderr, "eigbench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d points)\n", path, len(points))
	}
	if *exp == "tridiag" { // not part of "all": the eig_t sweep stands alone
		tsz := sz
		if *sizes == "" {
			tsz = []int{512, 1024, 2048}
		}
		w := *workers
		if w == 0 {
			w = 4
		}
		table, points := tridiagStage(tsz, w, 3)
		show(table)
		path := *out
		if path == "BENCH_backtrans.json" { // flag default belongs to -exp backtrans
			path = "BENCH_tridiag.json"
		}
		if err := writeJSON(path, points); err != nil {
			fmt.Fprintf(os.Stderr, "eigbench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d points)\n", path, len(points))
	}
	if !any {
		fmt.Fprintf(os.Stderr, "eigbench: unknown experiment %q (see -h)\n", *exp)
		os.Exit(2)
	}
}
