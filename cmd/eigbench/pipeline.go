package main

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	eigen "repro"
	"repro/internal/bench"
)

// PipelinePoint is one recorded pipelined-batch measurement, written to
// BENCH_pipeline.json. It compares the phase-pipelined batch executor
// (stage 1 of the next item overlapping the memory-bound stages of the
// current one) against the whole-solve batch mode (DisablePipeline) on the
// same Solver configuration, and records the bitwise-identity check between
// the two modes — the pipeline's correctness contract measured in the same
// run as its throughput.
type PipelinePoint struct {
	N             int     `json:"n"`
	Batch         int     `json:"batch"`
	Workers       int     `json:"workers"`
	PipelineDepth int     `json:"pipeline_depth"`
	WholeSec      float64 `json:"whole_solve_sec"`
	PipedSec      float64 `json:"pipelined_sec"`
	WholeRate     float64 `json:"whole_solve_solves_per_sec"`
	PipedRate     float64 `json:"pipelined_solves_per_sec"`
	Speedup       float64 `json:"speedup"`
	Identical     bool    `json:"bitwise_identical"`
	NumCPU        int     `json:"num_cpu"`
	Gomaxprocs    int     `json:"gomaxprocs"`
	BatchFanout   int     `json:"batch_fanout"`
}

// runBatchMode solves the items on a fresh Solver built from opts and returns
// the wall time plus every item's values and vectors.
func runBatchMode(opts eigen.Options, items []eigen.BatchItem, n int) (float64, [][]float64, []*eigen.Matrix) {
	s := eigen.NewSolver(&opts)
	defer s.Close()
	ctx := context.Background()

	// Warm the arena pool so neither mode pays first-use allocation.
	if _, err := s.EigTo(ctx, items[0].A, eigen.NewMatrix(n)); err != nil {
		panic(err)
	}
	start := time.Now()
	results := s.SolveBatch(ctx, items)
	sec := time.Since(start).Seconds()

	vals := make([][]float64, len(results))
	vecs := make([]*eigen.Matrix, len(results))
	for i, r := range results {
		if r.Err != nil {
			panic(fmt.Sprintf("batch item %d: %v", i, r.Err))
		}
		vals[i] = r.Values
		vecs[i] = r.Vectors
	}
	return sec, vals, vecs
}

// pipelineThroughput compares, per matrix size, the whole-solve batch mode
// against the phase-pipelined executor over identical problems, and checks
// the two modes produce bitwise-identical spectra and eigenvectors.
func pipelineThroughput(sizes []int, batch, workers int) (*bench.Table, []PipelinePoint) {
	if batch <= 0 {
		batch = 16
	}
	if workers <= 0 {
		workers = 8
	}
	rng := rand.New(rand.NewSource(4321))

	table := &bench.Table{
		Name:    fmt.Sprintf("Pipelined vs whole-solve batch (batch=%d, workers=%d, NumCPU=%d)", batch, workers, runtime.NumCPU()),
		Headers: []string{"n", "whole solves/s", "pipelined solves/s", "speedup", "bitwise"},
	}
	var points []PipelinePoint

	for _, n := range sizes {
		items := make([]eigen.BatchItem, batch)
		for p := range items {
			m := eigen.NewMatrix(n)
			for i := 0; i < n; i++ {
				for j := i; j < n; j++ {
					m.SetSym(i, j, rng.NormFloat64())
				}
			}
			items[p] = eigen.BatchItem{A: m}
		}

		base := eigen.Options{Workers: workers, SkipSymmetryCheck: true}

		whole := base
		whole.DisablePipeline = true
		wholeSec, wholeVals, wholeVecs := runBatchMode(whole, items, n)

		pipedSec, pipedVals, pipedVecs := runBatchMode(base, items, n)

		identical := true
		for p := range items {
			for i, v := range pipedVals[p] {
				if v != wholeVals[p][i] {
					identical = false
				}
			}
			for i := 0; i < n && identical; i++ {
				for j := 0; j < n; j++ {
					if pipedVecs[p].At(i, j) != wholeVecs[p].At(i, j) {
						identical = false
						break
					}
				}
			}
		}

		pt := PipelinePoint{
			N:             n,
			Batch:         batch,
			Workers:       workers,
			PipelineDepth: 0, // 0 = auto (scheduler width)
			WholeSec:      wholeSec,
			PipedSec:      pipedSec,
			WholeRate:     float64(batch) / wholeSec,
			PipedRate:     float64(batch) / pipedSec,
			Speedup:       wholeSec / pipedSec,
			Identical:     identical,
			NumCPU:        runtime.NumCPU(),
			Gomaxprocs:    runtime.GOMAXPROCS(0),
			BatchFanout:   eigen.DefaultBatchFanout,
		}
		points = append(points, pt)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", pt.WholeRate),
			fmt.Sprintf("%.2f", pt.PipedRate),
			fmt.Sprintf("%.2f×", pt.Speedup),
			fmt.Sprintf("%v", identical),
		})
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("GOMAXPROCS=%d; the pipeline overlaps compute-bound stage 1 with the memory-bound stage 2/eig_t of other items — gains require hardware parallelism and shrink when one phase dominates", runtime.GOMAXPROCS(0)))
	return table, points
}
