package main

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	eigen "repro"
	"repro/internal/bench"
)

// ReuseTable measures the payoff of the reusable Solver: per-solve wall time
// and heap allocations for (a) one-shot eigen.Eig calls, which build and
// tear down a transient Solver each time, and (b) a warmed Solver writing
// into a caller-supplied destination via EigTo, which reuses the pooled
// workspace arena and persistent scheduler across solves.
func reuseTable(n, nb, workers, iters int) *bench.Table {
	if iters <= 0 {
		iters = 4
	}
	rng := rand.New(rand.NewSource(99))
	a := eigen.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			a.SetSym(i, j, rng.NormFloat64())
		}
	}
	opts := &eigen.Options{NB: nb, Workers: workers, SkipSymmetryCheck: true}

	measure := func(solve func() error) (time.Duration, float64, float64) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := solve(); err != nil {
				panic(err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		per := float64(iters)
		return elapsed / time.Duration(iters),
			float64(after.Mallocs-before.Mallocs) / per,
			float64(after.TotalAlloc-before.TotalAlloc) / per
	}

	oneTime, oneAllocs, oneBytes := measure(func() error {
		_, err := eigen.Eig(a, opts)
		return err
	})

	s := eigen.NewSolver(opts)
	defer s.Close()
	dst := eigen.NewMatrix(n)
	ctx := context.Background()
	for i := 0; i < 2; i++ { // reach workspace steady state
		if _, err := s.EigTo(ctx, a, dst); err != nil {
			panic(err)
		}
	}
	reuseTime, reuseAllocs, reuseBytes := measure(func() error {
		_, err := s.EigTo(ctx, a, dst)
		return err
	})

	t := &bench.Table{
		Name:    fmt.Sprintf("Solver reuse vs one-shot (n=%d, nb=%d, workers=%d, %d solves)", n, nb, workers, iters),
		Headers: []string{"mode", "ms/solve", "allocs/solve", "KiB/solve"},
		Rows: [][]string{
			{"one-shot Eig", fmt.Sprintf("%.2f", oneTime.Seconds()*1e3), fmt.Sprintf("%.0f", oneAllocs), fmt.Sprintf("%.1f", oneBytes/1024)},
			{"Solver.EigTo (warmed)", fmt.Sprintf("%.2f", reuseTime.Seconds()*1e3), fmt.Sprintf("%.0f", reuseAllocs), fmt.Sprintf("%.1f", reuseBytes/1024)},
		},
	}
	if reuseAllocs > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("allocation reduction %.0f×; the pooled arena retains every workspace between solves", oneAllocs/reuseAllocs))
	}
	return t
}
