package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	eigen "repro"
	"repro/internal/bench"
)

// SBRPoint is one recorded multi-sweep stage-1 measurement, written to
// BENCH_sbr.json: the end-to-end Eig wall-clock (vectors included, so every
// plan pays its own back-transformation) of one SBR plan at one size, with
// its speedup over the direct single-sweep reduction on the same matrix.
// The plans factor through different band sequences, so instead of a bitwise
// gate the record carries the eigenvalue drift against the direct plan —
// residual-scale drift is expected, anything larger is a bug.
type SBRPoint struct {
	N          int     `json:"n"`
	Plan       string  `json:"plan"`
	WideBand   int     `json:"wide_band,omitempty"`
	BandSweeps []int   `json:"band_sweeps,omitempty"`
	Workers    int     `json:"workers"`
	Secs       float64 `json:"secs"`
	Speedup    float64 `json:"speedup_vs_direct"`
	ValueDrift float64 `json:"max_value_drift_vs_direct"`
}

// sbrCompare times the full eigensolve under each SBR plan per matrix size
// (best of reps after an untimed warm-up on a reused Solver, so the arena is
// hot and allocation noise stays out of the timing). plans[0] must be the
// direct plan — it is the speedup and drift reference.
func sbrCompare(sizes []int, plans []bench.SBRConfig, workers, reps int) (*bench.Table, []SBRPoint) {
	if workers < 1 {
		workers = 1
	}
	if reps < 1 {
		reps = 1
	}
	table := &bench.Table{
		Name:    fmt.Sprintf("Multi-sweep SBR stage 1 vs direct reduction (workers=%d, end-to-end Eig)", workers),
		Headers: []string{"n", "plan", "secs", "speedup", "value drift"},
	}
	var points []SBRPoint
	rng := rand.New(rand.NewSource(42))
	for _, n := range sizes {
		a := eigen.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				a.SetSym(i, j, rng.NormFloat64())
			}
		}
		var directSecs float64
		var directVals []float64
		for pi, plan := range plans {
			opts := &eigen.Options{
				Workers:           workers,
				SkipSymmetryCheck: true,
				DisableTuning:     true, // pin the plan: no profile injection
				WideBand:          plan.WideBand,
				BandSweeps:        append([]int(nil), plan.Sweeps...),
				DisableMultiSweep: plan.WideBand == 0 || len(plan.Sweeps) == 0,
			}
			s := eigen.NewSolver(opts)
			best := math.Inf(1)
			var vals []float64
			for r := 0; r <= reps; r++ {
				start := time.Now()
				res, err := s.Eig(a)
				if err != nil {
					panic(fmt.Sprintf("sbr plan %s n=%d: %v", plan.Label(), n, err))
				}
				if el := time.Since(start).Seconds(); r > 0 && el < best {
					best = el
				}
				vals = res.Values
			}
			s.Close()
			drift := 0.0
			if pi == 0 {
				directSecs, directVals = best, vals
			} else {
				for i, v := range vals {
					if d := math.Abs(v - directVals[i]); d > drift {
						drift = d
					}
				}
			}
			pt := SBRPoint{
				N: n, Plan: plan.Label(), WideBand: plan.WideBand,
				BandSweeps: plan.Sweeps, Workers: workers,
				Secs: best, Speedup: directSecs / best, ValueDrift: drift,
			}
			points = append(points, pt)
			table.Rows = append(table.Rows, []string{
				fmt.Sprint(n), pt.Plan, fmt.Sprintf("%.3f", pt.Secs),
				fmt.Sprintf("%.2f×", pt.Speedup), fmt.Sprintf("%.2e", pt.ValueDrift),
			})
		}
	}
	table.Notes = append(table.Notes,
		"each plan is a different — equally valid — factorization of the same matrix, so the gate is eigenvalue drift (residual-scale), not bitwise identity.",
		"speedup requires hardware parallelism and n large enough that the stage-2 Level-2 bulge chase dominates; at small n the extra Q-factor applications win instead.",
	)
	return table, points
}
