package main

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/tridiag"
)

// TridiagPoint is one recorded eig_t-stage measurement, written to
// BENCH_tridiag.json: the sequential (inline) tridiagonal eigensolver
// against the scheduler-parallel one on the same problem, with the bitwise
// identity checked and the stage's work split attributed per sub-phase.
// NumCPU/Gomaxprocs are recorded because on a single-core host the parallel
// path can only measure scheduling overhead, never speedup.
type TridiagPoint struct {
	N            int     `json:"n"`
	Method       string  `json:"method"`
	Workers      int     `json:"workers"`
	SeqSec       float64 `json:"sequential_sec"`
	ParSec       float64 `json:"parallel_sec"`
	Speedup      float64 `json:"speedup"`
	Identical    bool    `json:"bitwise_identical"`
	RecurseFlops int64   `json:"recurse_flops"`
	MergeFlops   int64   `json:"merge_flops"`
	BisectFlops  int64   `json:"bisect_flops"`
	SteinFlops   int64   `json:"stein_flops"`
	NumCPU       int     `json:"num_cpu"`
	Gomaxprocs   int     `json:"gomaxprocs"`
}

// tridiagStage times the tridiagonal eigensolvers (D&C and bisection +
// inverse iteration) sequentially and over a scheduler of the given width,
// on random tridiagonal matrices of each size. QR is not measured: it
// accumulates rotations through one matrix and has no parallel path.
func tridiagStage(sizes []int, workers, reps int) (*bench.Table, []TridiagPoint) {
	if workers <= 0 {
		workers = 4
	}
	if reps <= 0 {
		reps = 3
	}
	rng := rand.New(rand.NewSource(99))
	table := &bench.Table{
		Name:    fmt.Sprintf("Parallel eig_t vs sequential (workers=%d, NumCPU=%d)", workers, runtime.NumCPU()),
		Headers: []string{"n", "method", "seq ms", "par ms", "speedup", "bitwise"},
	}
	var points []TridiagPoint

	s := sched.New(workers)
	defer s.Shutdown()
	for _, n := range sizes {
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		for i := range e {
			e[i] = rng.NormFloat64()
		}
		for _, method := range []string{"DC", "BI"} {
			pt := measureTridiag(s, method, d, e, workers, reps)
			points = append(points, pt)
			table.Rows = append(table.Rows, []string{
				fmt.Sprint(n), method,
				fmt.Sprintf("%.2f", pt.SeqSec*1e3),
				fmt.Sprintf("%.2f", pt.ParSec*1e3),
				fmt.Sprintf("%.2f", pt.Speedup),
				fmt.Sprint(pt.Identical),
			})
		}
	}
	return table, points
}

func measureTridiag(s *sched.Scheduler, method string, d, e []float64, workers, reps int) TridiagPoint {
	n := len(d)
	seqSet := tridiag.NewWorkSet(1)
	parSet := tridiag.NewWorkSet(workers)
	tc := trace.New()

	// solve runs one full vector solve for the method and returns the
	// results flattened for the bitwise comparison (pool buffers are
	// returned before the next repetition).
	solve := func(set *tridiag.WorkSet, job *sched.Job, tc *trace.Collector) ([]float64, []float64) {
		switch method {
		case "DC":
			vals, q, err := tridiag.StedcSched(d, e, set, job, 0, tc)
			if err != nil {
				panic(err)
			}
			flatQ := append([]float64(nil), q.Data[:n*n]...)
			flatV := append([]float64(nil), vals...)
			set.PutVec(vals)
			set.PutMat(q)
			return flatV, flatQ
		case "BI":
			w := tridiag.StebzSched(d, e, 1, n, set, job, 0, tc)
			z, err := tridiag.SteinSched(d, e, w, set, job, 0, tc)
			if err != nil {
				panic(err)
			}
			flatZ := append([]float64(nil), z.Data[:n*n]...)
			set.PutMat(z)
			return w, flatZ
		}
		panic("unknown method " + method)
	}

	time1 := func(set *tridiag.WorkSet, newJob func() *sched.Job, tc *trace.Collector) (float64, []float64, []float64) {
		solve(set, newJob(), nil) // warm the pools
		best := math.Inf(1)
		var vals, vecs []float64
		for r := 0; r < reps; r++ {
			start := time.Now()
			vals, vecs = solve(set, newJob(), tc)
			if sec := time.Since(start).Seconds(); sec < best {
				best = sec
			}
		}
		return best, vals, vecs
	}

	seqSec, seqVals, seqVecs := time1(seqSet, func() *sched.Job { return nil }, nil)
	parSec, parVals, parVecs := time1(parSet, func() *sched.Job { return s.NewJob(nil) }, tc)

	identical := len(seqVals) == len(parVals) && len(seqVecs) == len(parVecs)
	for i := 0; identical && i < len(seqVals); i++ {
		identical = math.Float64bits(seqVals[i]) == math.Float64bits(parVals[i])
	}
	for i := 0; identical && i < len(seqVecs); i++ {
		identical = math.Float64bits(seqVecs[i]) == math.Float64bits(parVecs[i])
	}

	return TridiagPoint{
		N:            n,
		Method:       method,
		Workers:      workers,
		SeqSec:       seqSec,
		ParSec:       parSec,
		Speedup:      seqSec / parSec,
		Identical:    identical,
		RecurseFlops: tc.AttributedFlops(trace.PhaseEigTRecurse),
		MergeFlops:   tc.AttributedFlops(trace.PhaseEigTMerge),
		BisectFlops:  tc.AttributedFlops(trace.PhaseEigTBisect),
		SteinFlops:   tc.AttributedFlops(trace.PhaseEigTStein),
		NumCPU:       runtime.NumCPU(),
		Gomaxprocs:   runtime.GOMAXPROCS(0),
	}
}
