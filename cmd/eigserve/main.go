// Command eigserve runs the eigensolver as a long-lived HTTP service: a
// JSON job API (submit / poll / long-poll / result / cancel) over one shared
// eigen.Solver, with static API-key auth and a pluggable job store.
//
// Examples:
//
//	eigserve -addr :8080 -api-key s3cret
//	eigserve -addr :8080 -api-key s3cret -workers 8 \
//	         -memory-budget 1073741824 -batch-concurrency 4
//	eigserve -addr :8080 -api-key s3cret -store disk -store-path /var/lib/eigserve/jobs.jsonl
//
// Jobs are admitted through the Solver's own gate (BatchConcurrency slots +
// MemoryBudget byte reservations); requests whose workspace estimate exceeds
// the entire budget are refused with HTTP 413 rather than queued. The API
// key may also be supplied via $EIGSERVE_API_KEY (comma-separated for
// several); -insecure runs without authentication for trusted networks.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	eigen "repro"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "eigserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", runtime.NumCPU(), "solver worker count (1 = sequential)")
		memBudget   = flag.Int64("memory-budget", 0, "workspace byte budget for concurrent jobs (0 = unlimited; over-budget requests are refused with 413)")
		batchConc   = flag.Int("batch-concurrency", 0, "max jobs in flight (0 = worker count)")
		nb          = flag.Int("nb", 0, "tile size/bandwidth override (0 = tuned/default)")
		apiKey      = flag.String("api-key", "", "static API key (comma-separated for several; also $EIGSERVE_API_KEY)")
		insecure    = flag.Bool("insecure", false, "serve without authentication (trusted networks only)")
		storeKind   = flag.String("store", "mem", "job store backend: mem | disk")
		storePath   = flag.String("store-path", "", "journal path for -store disk (default: eigserve-jobs.jsonl in the working directory)")
		ttl         = flag.Duration("ttl", service.DefaultTTL, "how long the mem store keeps finished jobs")
		maxWait     = flag.Duration("max-wait", service.DefaultMaxWait, "long-poll cap for ?wait=")
		maxBody     = flag.Int64("max-body", service.DefaultMaxBodyBytes, "request body byte cap")
		quiet       = flag.Bool("quiet", false, "suppress per-job logging")
		gracePeriod = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight HTTP requests")
	)
	flag.Parse()

	keys := splitKeys(*apiKey)
	if len(keys) == 0 {
		keys = splitKeys(os.Getenv("EIGSERVE_API_KEY"))
	}
	if len(keys) == 0 && !*insecure {
		return errors.New("no API key configured; set -api-key / $EIGSERVE_API_KEY or pass -insecure explicitly")
	}

	var store service.Store
	switch *storeKind {
	case "mem":
		store = service.NewMemStore(*ttl)
	case "disk":
		path := *storePath
		if path == "" {
			path = "eigserve-jobs.jsonl"
		}
		var err error
		if store, err = service.NewDiskStore(path); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -store %q (want mem or disk)", *storeKind)
	}
	defer store.Close()

	solver := eigen.NewSolver(&eigen.Options{
		Workers:          *workers,
		NB:               *nb,
		MemoryBudget:     *memBudget,
		BatchConcurrency: *batchConc,
	})
	defer solver.Close()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	svc, err := service.New(service.Config{
		Solver:       solver,
		Store:        store,
		APIKeys:      keys,
		MaxWait:      *maxWait,
		MaxBodyBytes: *maxBody,
		Logf:         logf,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("eigserve: listening on %s (workers=%d, store=%s, auth=%v)",
			*addr, *workers, *storeKind, len(keys) > 0)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("eigserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), *gracePeriod)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("eigserve: forced shutdown: %v", err)
	}
	// Cancel in-flight jobs and wait for their terminal records to persist.
	return svc.Close()
}

func splitKeys(s string) []string {
	var keys []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" {
			keys = append(keys, k)
		}
	}
	return keys
}
