// Command eigsolve solves a dense symmetric eigenvalue problem from the
// command line. The matrix is either generated (-gen) or read from a
// whitespace-separated text file (-in) containing n and then n² row-major
// entries. It prints the requested eigenvalues and, optionally, residual
// diagnostics.
//
// Examples:
//
//	eigsolve -gen random -n 512                 # eigenvalues of a random matrix
//	eigsolve -gen laplacian -n 300 -vectors     # with eigenvectors + residual check
//	eigsolve -in matrix.txt -range 1:20         # 20 smallest eigenpairs
//	eigsolve -gen random -n 800 -alg onestage   # baseline algorithm
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/trace"
)

func main() {
	var (
		gen      = flag.String("gen", "", "generate a matrix: random | laplacian | clustered")
		in       = flag.String("in", "", "read matrix from file (n, then n*n row-major values)")
		n        = flag.Int("n", 256, "matrix size for -gen")
		alg      = flag.String("alg", "twostage", "algorithm: twostage | onestage")
		method   = flag.String("method", "dc", "tridiagonal eigensolver: dc | bi | qr")
		vectors  = flag.Bool("vectors", false, "compute eigenvectors and report residual")
		rng      = flag.String("range", "", "eigenvalue index range il:iu (1-based)")
		nb       = flag.Int("nb", 0, "tile size / bandwidth (0 = default)")
		workers  = flag.Int("workers", 0, "scheduler workers (0 = sequential)")
		seed     = flag.Int64("seed", 1, "random seed for -gen")
		phases   = flag.Bool("phases", false, "print per-phase timing breakdown")
		maxPrint = flag.Int("print", 10, "print at most this many eigenvalues (0 = all)")
	)
	flag.Parse()

	a, err := loadMatrix(*gen, *in, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eigsolve:", err)
		os.Exit(1)
	}
	rows, _ := a.Dims()

	opts := &eigen.Options{NB: *nb, Workers: *workers}
	switch *alg {
	case "twostage":
		opts.Algorithm = eigen.TwoStage
	case "onestage":
		opts.Algorithm = eigen.OneStage
	default:
		fmt.Fprintln(os.Stderr, "eigsolve: unknown -alg", *alg)
		os.Exit(2)
	}
	switch *method {
	case "dc":
		opts.Method = eigen.DivideAndConquer
	case "bi":
		opts.Method = eigen.BisectionInverseIteration
	case "qr":
		opts.Method = eigen.QRIteration
	default:
		fmt.Fprintln(os.Stderr, "eigsolve: unknown -method", *method)
		os.Exit(2)
	}
	tc := trace.New()
	if *phases {
		opts.Collector = tc
	}

	il, iu := 0, 0
	if *rng != "" {
		if _, err := fmt.Sscanf(*rng, "%d:%d", &il, &iu); err != nil {
			fmt.Fprintln(os.Stderr, "eigsolve: bad -range, want il:iu")
			os.Exit(2)
		}
	}

	start := time.Now()
	var res *eigen.Result
	switch {
	case il > 0 && *vectors:
		res, err = eigen.EigRange(a, il, iu, opts)
	case il > 0:
		var vals []float64
		vals, err = eigen.EigValuesRange(a, il, iu, opts)
		res = &eigen.Result{Values: vals}
	case *vectors:
		res, err = eigen.Eig(a, opts)
	default:
		var vals []float64
		vals, err = eigen.EigValues(a, opts)
		res = &eigen.Result{Values: vals}
	}
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eigsolve:", err)
		os.Exit(1)
	}

	fmt.Printf("n=%d alg=%s method=%s: %d eigenvalue(s) in %v\n",
		rows, *alg, *method, len(res.Values), elapsed.Round(time.Millisecond))
	limit := len(res.Values)
	if *maxPrint > 0 && *maxPrint < limit {
		limit = *maxPrint
	}
	for i := 0; i < limit; i++ {
		fmt.Printf("  lambda[%d] = %.12g\n", i+1, res.Values[i])
	}
	if limit < len(res.Values) {
		fmt.Printf("  ... (%d more)\n", len(res.Values)-limit)
	}
	if *vectors && res.Vectors != nil {
		fmt.Printf("max residual |A z - lambda z|: %.3g\n", maxResidual(a, res))
	}
	if *phases {
		for ph, d := range tc.Phases() {
			fmt.Printf("  phase %-12s %v\n", ph, d.Round(time.Microsecond))
		}
	}
}

func loadMatrix(gen, in string, n int, seed int64) (*eigen.Matrix, error) {
	if in != "" {
		return readMatrix(in)
	}
	r := rand.New(rand.NewSource(seed))
	a := eigen.NewMatrix(n)
	switch gen {
	case "random", "":
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				a.SetSym(i, j, r.NormFloat64())
			}
		}
	case "laplacian":
		// Path-graph Laplacian: analytic eigenvalues 2−2cos(kπ/n).
		for i := 0; i < n; i++ {
			d := 2.0
			if i == 0 || i == n-1 {
				d = 1
			}
			a.Set(i, i, d)
			if i+1 < n {
				a.SetSym(i, i+1, -1)
			}
		}
	case "clustered":
		// Diagonal clusters plus a small random symmetric perturbation.
		for i := 0; i < n; i++ {
			a.Set(i, i, float64(i%5))
			for j := i + 1; j < n; j++ {
				a.SetSym(i, j, 1e-6*r.NormFloat64())
			}
		}
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
	return a, nil
}

func readMatrix(path string) (*eigen.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	sc.Split(bufio.ScanWords)
	read := func() (string, error) {
		if !sc.Scan() {
			if sc.Err() != nil {
				return "", sc.Err()
			}
			return "", fmt.Errorf("unexpected end of file")
		}
		return sc.Text(), nil
	}
	tok, err := read()
	if err != nil {
		return nil, err
	}
	var n int
	if _, err := fmt.Sscan(tok, &n); err != nil {
		return nil, fmt.Errorf("bad size token %q", tok)
	}
	vals := make([]float64, 0, n*n)
	for len(vals) < n*n {
		tok, err := read()
		if err != nil {
			return nil, fmt.Errorf("after %d values: %w", len(vals), err)
		}
		tok = strings.TrimSpace(tok)
		var v float64
		if _, err := fmt.Sscan(tok, &v); err != nil {
			return nil, fmt.Errorf("bad value %q", tok)
		}
		vals = append(vals, v)
	}
	return eigen.NewMatrixFrom(n, vals), nil
}

func maxResidual(a *eigen.Matrix, res *eigen.Result) float64 {
	n, _ := a.Dims()
	var worst float64
	for k := 0; k < len(res.Values); k++ {
		v := res.Vectors.Col(k)
		for i := 0; i < n; i++ {
			var sum float64
			for j := 0; j < n; j++ {
				sum += a.At(i, j) * v[j]
			}
			if d := sum - res.Values[k]*v[i]; d > worst || -d > worst {
				if d < 0 {
					d = -d
				}
				worst = d
			}
		}
	}
	return worst
}
