package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro"
)

func TestLoadMatrixGenerators(t *testing.T) {
	for _, gen := range []string{"random", "laplacian", "clustered", ""} {
		a, err := loadMatrix(gen, "", 12, 3)
		if err != nil {
			t.Fatalf("%q: %v", gen, err)
		}
		r, c := a.Dims()
		if r != 12 || c != 12 {
			t.Fatalf("%q: got %dx%d", gen, r, c)
		}
		// Must be symmetric (the solver would reject it otherwise).
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if a.At(i, j) != a.At(j, i) {
					t.Fatalf("%q: asymmetric at (%d,%d)", gen, i, j)
				}
			}
		}
	}
	if _, err := loadMatrix("nope", "", 4, 1); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

func TestReadMatrixRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.txt")
	content := "3\n2 1 0\n1 2 1\n0 1 2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := readMatrix(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 2 || a.At(1, 0) != 1 || a.At(2, 0) != 0 || a.At(2, 1) != 1 {
		t.Fatal("matrix contents wrong")
	}
	// Solve it end to end: eigenvalues of tridiag(1,2,1) of order 3 are
	// 2−√2, 2, 2+√2.
	vals, err := eigen.EigValues(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2 - math.Sqrt2, 2, 2 + math.Sqrt2}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("eigenvalue %d = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestReadMatrixErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"truncated.txt": "3\n1 2 3 4",
		"badsize.txt":   "x\n",
		"badval.txt":    "2\n1 2 3 zz",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readMatrix(path); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := readMatrix(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file: expected error")
	}
}

func TestMaxResidualSmall(t *testing.T) {
	a, err := loadMatrix("laplacian", "", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eigen.Eig(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := maxResidual(a, res); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
}
