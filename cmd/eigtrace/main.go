// Command eigtrace runs the two-stage reduction under the tracing scheduler
// and prints an execution profile: per-kernel task counts and times, plus an
// ASCII Gantt chart of the workers — a terminal rendition of the DAG
// execution the paper's runtime produces.
//
//	eigtrace -n 256 -nb 32 -workers 4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/band"
	"repro/internal/bulge"
	"repro/internal/matrix"
	"repro/internal/sched"
)

func main() {
	var (
		n       = flag.Int("n", 256, "matrix size")
		nb      = flag.Int("nb", 32, "tile size / bandwidth")
		workers = flag.Int("workers", 4, "scheduler workers")
		width   = flag.Int("width", 100, "Gantt chart width in characters")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(1))
	a := matrix.NewDense(*n, *n)
	for j := 0; j < *n; j++ {
		for i := j; i < *n; i++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}

	s := sched.New(*workers, sched.WithTrace())
	start := time.Now()
	f := band.Reduce(a, *nb, s.NewJob(nil), nil, nil)
	stage1 := time.Since(start)
	bulge.Chase(f.Band, s.NewJob(nil), 0, true, nil, nil)
	total := time.Since(start)
	events := s.Trace()
	s.Shutdown()

	fmt.Printf("n=%d nb=%d workers=%d: stage1 %v, stage1+2 %v, %d tasks\n\n",
		*n, *nb, *workers, stage1.Round(time.Millisecond), total.Round(time.Millisecond), len(events))

	// Aggregate by kernel class (task-name prefix).
	type agg struct {
		count int
		total time.Duration
	}
	byClass := map[string]*agg{}
	for _, ev := range events {
		cls := className(ev.Name)
		if byClass[cls] == nil {
			byClass[cls] = &agg{}
		}
		byClass[cls].count++
		byClass[cls].total += ev.End - ev.Start
	}
	var classes []string
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return byClass[classes[i]].total > byClass[classes[j]].total })
	fmt.Println("kernel class     tasks      busy time")
	for _, c := range classes {
		fmt.Printf("%-15s %6d %14v\n", c, byClass[c].count, byClass[c].total.Round(time.Microsecond))
	}

	// Gantt: one row per worker, one glyph per time bin (the class that was
	// running at the bin's midpoint; '.' = idle).
	var horizon time.Duration
	for _, ev := range events {
		if ev.End > horizon {
			horizon = ev.End
		}
	}
	if horizon == 0 {
		return
	}
	glyphs := map[string]byte{}
	avail := []byte("GTQLMCSHBR123456789")
	for i, c := range classes {
		if i < len(avail) {
			glyphs[c] = avail[i]
		} else {
			glyphs[c] = '?'
		}
	}
	fmt.Println("\nGantt (one row per worker; legend below):")
	perWorker := map[int][]sched.TraceEvent{}
	maxW := 0
	for _, ev := range events {
		perWorker[ev.Worker] = append(perWorker[ev.Worker], ev)
		if ev.Worker > maxW {
			maxW = ev.Worker
		}
	}
	bin := horizon / time.Duration(*width)
	if bin == 0 {
		bin = 1
	}
	for w := 0; w <= maxW; w++ {
		row := make([]byte, *width)
		for i := range row {
			row[i] = '.'
		}
		for _, ev := range perWorker[w] {
			lo := int(ev.Start / bin)
			hi := int(ev.End / bin)
			for b := lo; b <= hi && b < *width; b++ {
				row[b] = glyphs[className(ev.Name)]
			}
		}
		fmt.Printf("w%d |%s|\n", w, row)
	}
	fmt.Println("\nlegend:")
	for _, c := range classes {
		fmt.Printf("  %c = %s\n", glyphs[c], c)
	}
}

// className strips the task-instance suffix: "TSMQR-L(3,2)" → "TSMQR-L",
// "HBCEU#4.0" → "HBCEU".
func className(name string) string {
	if i := strings.IndexAny(name, "(#"); i >= 0 {
		return name[:i]
	}
	return name
}
