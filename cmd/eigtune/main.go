// Command eigtune tunes this machine the way §7.1 of the paper tunes its
// implementation, then persists the result: it measures the machine
// parameters (α, β), sweeps the GEMM blocking and kernel family, the stage-1
// tile size n_b (cross-checked against the Eqs. 9–10 analytic optimum), the
// stage-1 look-ahead depth, the back-transformation column block, and the
// multi-sweep SBR plan (-sbr: direct vs wide-band→narrow-band sweep
// sequences, timed end-to-end), and writes the winners to the
// versioned JSON profile that eigen.Solver loads at construction
// ($EIGEN_TUNE_PROFILE or ~/.cache/eigen/tune.json).
//
//	eigtune -save                 # full sweep, write the profile
//	eigtune -save=false           # report only, write nothing
//	eigtune -o /tmp/tune.json     # write somewhere else
//
// Any measurement failure — a solve that errors, a kernel that is not bitwise
// identical to the seed baseline, a non-finite rate — aborts with a non-zero
// exit and no profile is written: a tuner must never persist settings it
// could not validate.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/blas"
	"repro/internal/model"
	"repro/internal/tune"
)

func die(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "eigtune: "+format+"\n", args...)
	os.Exit(1)
}

func parseInts(flagName, s string) []int {
	var list []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "eigtune: bad %s value %q\n", flagName, tok)
			os.Exit(2)
		}
		list = append(list, v)
	}
	return list
}

// parseSBRConfigs parses the -sbr spec: comma-separated plans, each either
// "direct" or "b1:b2[:b3...]" with strictly decreasing bandwidths ("64:8"
// reduces to bandwidth 64 then narrows to 8 before the chase). The direct
// plan is always swept first — it is the eigenvalue cross-check reference —
// and is prepended when the spec omits it.
func parseSBRConfigs(s string) []bench.SBRConfig {
	var list []bench.SBRConfig
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "direct" {
			list = append(list, bench.SBRConfig{})
			continue
		}
		parts := strings.Split(tok, ":")
		cfg := bench.SBRConfig{}
		prev := 0
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 1 || (i > 0 && v >= prev) || len(parts) < 2 {
				fmt.Fprintf(os.Stderr, "eigtune: bad -sbr plan %q (want \"direct\" or strictly decreasing \"b1:b2[:b3...]\")\n", tok)
				os.Exit(2)
			}
			if i == 0 {
				cfg.WideBand = v
			} else {
				cfg.Sweeps = append(cfg.Sweeps, v)
			}
			prev = v
		}
		list = append(list, cfg)
	}
	if len(list) == 0 || list[0].Label() != "direct" {
		list = append([]bench.SBRConfig{{}}, list...)
	}
	return list
}

func main() {
	var (
		n          = flag.Int("n", 512, "matrix size for the stage-1 nb sweep")
		nbs        = flag.String("nbs", "8,16,24,32,48,64,96", "comma-separated tile sizes to sweep")
		gemmN      = flag.Int("gemm-n", 384, "matrix order for the GEMM blocking sweep")
		colblocks  = flag.String("colblocks", "32,48,64,96,128", "comma-separated column-block widths to sweep")
		lookaheads = flag.String("lookaheads", "1,2,4", "comma-separated stage-1 look-ahead depths to sweep")
		sbr        = flag.String("sbr", "direct,64:8,96:16,128:32:8", "comma-separated SBR plans to sweep (direct or b1:b2[:b3...])")
		reps       = flag.Int("reps", 2, "repetitions per measurement (best-of; raise on noisy hosts)")
		workers    = flag.Int("workers", 0, "scheduler workers for the nb/colblock sweeps (0 = sequential)")
		save       = flag.Bool("save", true, "persist the winning profile to disk")
		out        = flag.String("o", "", "profile path (default $EIGEN_TUNE_PROFILE or the user cache dir)")
	)
	flag.Parse()
	nbList := parseInts("nb", *nbs)
	cbList := parseInts("colblock", *colblocks)
	laList := parseInts("lookahead", *lookaheads)
	sbrList := parseSBRConfigs(*sbr)

	// ---- Machine parameters (§7.1: α from gemm, β from symv) ----
	fmt.Println("Measuring machine parameters...")
	params := model.MeasureParams(runtime.NumCPU())
	if !(params.Alpha > 0) || !(params.Beta > 0) ||
		math.IsInf(params.Alpha, 0) || math.IsInf(params.Beta, 0) {
		die("machine parameter measurement failed: alpha=%g beta=%g", params.Alpha, params.Beta)
	}
	modelNB := model.OptimalNB(params)
	fmt.Printf("  alpha (gemm) = %.2f Gflop/s\n", params.Alpha/1e9)
	fmt.Printf("  beta  (symv) = %.2f Gflop/s\n", params.Beta/1e9)
	fmt.Printf("  model-optimal nb (Eqs. 9-10): %.0f\n\n", modelNB)

	// ---- GEMM kernel and cache-blocking sweep ----
	// First the kernel family at stock blocking (seed included as the
	// baseline and the bitwise reference), then a block-size grid around the
	// winner. KC is pinned by the profile schema: it is the one parameter
	// that changes rounding.
	fmt.Printf("Sweeping GEMM kernels and blocking at n=%d (asm=%v)...\n", *gemmN, blas.AsmActive())
	kernels := []blas.Kernel{blas.KernelSeed, blas.Kernel2x4, blas.Kernel4x4, blas.Kernel8x4, blas.KernelAuto}
	var configs []blas.Blocking
	for _, k := range kernels {
		configs = append(configs, blas.Blocking{Kernel: k})
	}
	pts := bench.GemmSweep(*gemmN, configs, *reps)
	bestKernel := blas.KernelAuto
	bestRate := 0.0
	for i, p := range pts {
		fmt.Printf("  kernel %-4s  %7.2f Gflop/s  bitwise=%v\n", p.Kernel, p.GFlops, p.BitwiseVsSeed)
		if !p.BitwiseVsSeed {
			die("kernel %s is not bitwise identical to the seed kernel — refusing to tune on a broken kernel", p.Kernel)
		}
		if !(p.GFlops > 0) {
			die("kernel %s measured a non-positive rate", p.Kernel)
		}
		if p.Kernel != "seed" && p.GFlops > bestRate {
			bestRate, bestKernel = p.GFlops, kernels[i]
		}
	}
	var grid []blas.Blocking
	for _, mc := range []int{128, 256, 384} {
		for _, nc := range []int{256, 512, 1024} {
			grid = append(grid, blas.Blocking{MC: mc, KC: tune.RequiredKC, NC: nc, Kernel: bestKernel})
		}
	}
	gridPts := bench.GemmSweep(*gemmN, grid, *reps)
	bestBlock := blas.Blocking{MC: blas.DefaultMC, KC: tune.RequiredKC, NC: blas.DefaultNC, Kernel: bestKernel}
	bestBlockRate := 0.0
	for i, p := range gridPts {
		fmt.Printf("  %s mc=%-4d nc=%-5d %7.2f Gflop/s  bitwise=%v\n", p.Kernel, p.MC, p.NC, p.GFlops, p.BitwiseVsSeed)
		if !p.BitwiseVsSeed {
			die("blocking mc=%d nc=%d broke bitwise equality with the seed kernel", p.MC, p.NC)
		}
		if p.GFlops > bestBlockRate {
			bestBlockRate, bestBlock = p.GFlops, grid[i]
		}
	}
	fmt.Printf("  best: kernel=%s mc=%d nc=%d (%.2f Gflop/s)\n\n", bestBlock.Kernel, bestBlock.MC, bestBlock.NC, bestBlockRate)

	// ---- Stage-1 tile size sweep, cross-checked against the model ----
	fmt.Printf("Sweeping stage-1 nb at n=%d...\n", *n)
	nbPts, err := bench.NBSweep(*n, nbList, *workers)
	if err != nil {
		die("nb sweep failed: %v", err)
	}
	bestNB, bestNBSecs := 0, 0.0
	for _, p := range nbPts {
		fmt.Printf("  nb=%-4d stage1 %.3fs  stage2 %.3fs  total %.3fs\n", p.NB, p.Stage1Secs, p.Stage2Secs, p.TotalSecs)
		if bestNB == 0 || p.TotalSecs < bestNBSecs {
			bestNB, bestNBSecs = p.NB, p.TotalSecs
		}
	}
	fmt.Printf("  empirical best nb: %d (model predicts %.0f", bestNB, modelNB)
	if ratio := float64(bestNB) / modelNB; ratio > 2 || ratio < 0.5 {
		fmt.Printf(" — disagreement >2x; trust the measurement, see EXPERIMENTS.md")
	}
	fmt.Printf(")\n\n")

	// ---- Stage-1 look-ahead depth sweep ----
	// Every depth is bitwise identical (the knob only steers the ready
	// queue), so only time discriminates. With one worker the depths are
	// indistinguishable; the sweep still runs so the profile records an
	// explicit winner for this machine.
	laWorkers := *workers
	if laWorkers < 2 {
		laWorkers = 2
	}
	fmt.Printf("Sweeping stage-1 look-ahead depth at n=%d, nb=%d, workers=%d...\n", *n, bestNB, laWorkers)
	laPts := bench.LookaheadSweep(*n, bestNB, laWorkers, laList, *reps)
	bestLA, bestLASecs := 0, 0.0
	for _, p := range laPts {
		fmt.Printf("  lookahead=%-3d %.3fs\n", p.Depth, p.Secs)
		if !(p.Secs > 0) {
			die("lookahead=%d measured a non-positive time", p.Depth)
		}
		if bestLA == 0 || p.Secs < bestLASecs {
			bestLA, bestLASecs = p.Depth, p.Secs
		}
	}
	fmt.Printf("  empirical best look-ahead depth: %d\n\n", bestLA)

	// ---- Back-transformation column-block sweep ----
	fmt.Printf("Sweeping back-transformation column block at n=%d, nb=%d...\n", *n, bestNB)
	cbPts := bench.ColBlockSweep(*n, bestNB, *workers, cbList, *reps)
	bestCB, bestCBSecs := 0, 0.0
	for _, p := range cbPts {
		fmt.Printf("  colBlock=%-4d %.3fs\n", p.ColBlock, p.Secs)
		if !(p.Secs > 0) {
			die("colBlock=%d measured a non-positive time", p.ColBlock)
		}
		if bestCB == 0 || p.Secs < bestCBSecs {
			bestCB, bestCBSecs = p.ColBlock, p.Secs
		}
	}
	fmt.Printf("  empirical best colBlock: %d\n\n", bestCB)

	// ---- Multi-sweep SBR plan sweep ----
	// Timed end-to-end (both stages, tridiagonal solve, back-transformation):
	// a narrowing sweep trades Level-2 bulge-chase work for extra Q-factor
	// applications, so only the whole solve can rank plans. The sweep itself
	// cross-checks each plan's spectrum against the direct reduction and
	// fails on drift, so a broken plan can never be persisted as a winner.
	sbrWorkers := *workers
	if sbrWorkers < 2 {
		sbrWorkers = 2
	}
	fmt.Printf("Sweeping SBR plans at n=%d, workers=%d...\n", *n, sbrWorkers)
	sbrPts, err := bench.SBRSweep(*n, sbrList, sbrWorkers, *reps)
	if err != nil {
		die("sbr sweep failed: %v", err)
	}
	bestSBR, bestSBRSecs := bench.SBRConfig{}, 0.0
	for i, p := range sbrPts {
		fmt.Printf("  %-14s %.3fs\n", p.Label, p.Secs)
		if !(p.Secs > 0) {
			die("sbr plan %s measured a non-positive time", p.Label)
		}
		if i == 0 || p.Secs < bestSBRSecs {
			bestSBR, bestSBRSecs = p.Config, p.Secs
		}
	}
	fmt.Printf("  empirical best SBR plan: %s\n\n", bestSBR.Label())

	// ---- Persist ----
	p := tune.NewProfile()
	p.Created = time.Now().UTC().Format(time.RFC3339)
	p.Gemm = tune.GemmConfig{MC: bestBlock.MC, KC: tune.RequiredKC, NC: bestBlock.NC, Kernel: bestBlock.Kernel.String()}
	p.NB = bestNB
	p.ColBlock = bestCB
	p.Lookahead = bestLA
	p.WideBand = bestSBR.WideBand
	p.BandSweeps = append([]int(nil), bestSBR.Sweeps...)
	p.AlphaFlops = params.Alpha
	p.BetaFlops = params.Beta
	p.ModelNB = int(modelNB + 0.5)
	if err := p.Validate(); err != nil {
		die("assembled profile is invalid: %v", err)
	}
	if !*save {
		fmt.Println("(-save=false: profile not written)")
		return
	}
	path := *out
	if path == "" {
		path, err = tune.DefaultPath()
		if err != nil {
			die("%v", err)
		}
	}
	if err := p.Save(path); err != nil {
		die("writing profile: %v", err)
	}
	tune.InvalidateCache()
	fmt.Printf("wrote %s\n", path)
}
