// Command eigtune picks the tile size n_b for this machine, the way §7.1 of
// the paper tunes its implementation: it measures the machine parameters
// (α, β), evaluates the bulge-chasing model (Eqs. 9–10) for its analytic
// optimum, then runs an empirical sweep of the full reduction and reports
// both, flagging where they disagree.
//
//	eigtune -n 768 -nbs 16,32,48,64,96
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/model"
)

func main() {
	var (
		n   = flag.Int("n", 512, "matrix size for the empirical sweep")
		nbs = flag.String("nbs", "8,16,24,32,48,64,96", "comma-separated tile sizes to sweep")
	)
	flag.Parse()

	var list []int
	for _, tok := range strings.Split(*nbs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "eigtune: bad nb %q\n", tok)
			os.Exit(2)
		}
		list = append(list, v)
	}

	fmt.Println("Measuring machine parameters...")
	p := model.MeasureParams(runtime.NumCPU())
	fmt.Printf("  alpha (gemm) = %.2f Gflop/s\n", p.Alpha/1e9)
	fmt.Printf("  beta  (symv) = %.2f Gflop/s\n", p.Beta/1e9)
	fmt.Printf("  model-optimal nb (Eqs. 9-10): %.0f\n\n", model.OptimalNB(p))

	t := bench.Figure5(*n, list, 0)
	fmt.Println(t.String())

	// Pick the empirical winner by total reduction time (last column).
	bestIdx, bestSec := -1, 0.0
	for i, row := range t.Rows {
		var cur float64
		if _, err := fmt.Sscanf(row[5], "%fs", &cur); err != nil {
			continue
		}
		if bestIdx < 0 || cur < bestSec {
			bestIdx, bestSec = i, cur
		}
	}
	if bestIdx >= 0 {
		fmt.Printf("empirical best nb at n=%d: %s (total reduction %s)\n", *n, t.Rows[bestIdx][0], t.Rows[bestIdx][5])
	}
}
