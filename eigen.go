// Package eigen is a pure-Go solver for the dense symmetric eigenvalue
// problem built around the two-stage tridiagonalization algorithm of
// Haidar, Luszczek and Dongarra ("New Algorithm for Computing Eigenvectors
// of the Symmetric Eigenvalue Problem", IPPS 2014): reduction to band form
// with DAG-scheduled tile kernels, cache-aware bulge chasing to tridiagonal
// form, a choice of tridiagonal eigensolvers, and the blocked two-factor
// back-transformation Z = Q₁·Q₂·E that makes eigenvectors affordable in the
// two-stage setting.
//
// # Quick start
//
//	a := eigen.NewMatrix(n)
//	// fill the matrix: a.SetSym(i, j, v) sets both (i,j) and (j,i)
//	res, err := eigen.Eig(a, nil)
//	// res.Values — ascending eigenvalues; res.Vectors.Col(k) — eigenvector k
//
// The classic one-stage algorithm (LAPACK DSYEVD-style) is available as a
// baseline via Options.Algorithm; the benchmark harness in this repository
// uses it to regenerate the paper's comparison figures.
package eigen

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Method selects the tridiagonal eigensolver used in phase 2, mirroring the
// three LAPACK drivers compared in the paper.
type Method int

const (
	// DivideAndConquer is Cuppen's method with deflation (DSYEVD); the
	// default and usually the fastest for the full spectrum.
	DivideAndConquer Method = iota
	// BisectionInverseIteration computes eigenvalues by bisection and
	// vectors by inverse iteration; it is O(n²) in the tridiagonal phase
	// and the only method that computes strictly a subset (the stand-in
	// for MRRR/DSYEVR — see DESIGN.md).
	BisectionInverseIteration
	// QRIteration is implicit QL/QR with accumulated rotations (DSYEV).
	QRIteration
)

// Algorithm selects the reduction pipeline.
type Algorithm int

const (
	// TwoStage is the paper's algorithm: tile reduction to band, bulge
	// chasing, two-factor back-transformation.
	TwoStage Algorithm = iota
	// OneStage is the classic direct tridiagonalization (memory-bound);
	// provided as the comparison baseline.
	OneStage
)

// Options tune the solver. The zero value (or a nil *Options) requests the
// two-stage algorithm, divide & conquer, default block sizes, sequential
// execution.
type Options struct {
	// Algorithm selects the reduction pipeline (default TwoStage).
	Algorithm Algorithm
	// Method selects the tridiagonal eigensolver (default DivideAndConquer).
	Method Method
	// NB is the tile size/bandwidth (two-stage) or panel width (one-stage);
	// 0 picks a default — the machine's tune profile when one is installed
	// (see Tuning), else the built-in constant. See the tuning discussion in
	// EXPERIMENTS.md. Note that unlike every other tuning knob, NB selects a
	// different (equally valid) factorization, so changing it changes the
	// computed eigenvector basis in the last bits.
	NB int
	// ColBlock is the eigenvector column-block width shared by the Q₂/Q₁
	// appliers and the fused back-transformation; 0 picks a default (the
	// tune profile when installed, else the internal/tune heuristic).
	// Results are bitwise identical at any width — the knob only partitions
	// independent columns.
	ColBlock int
	// Workers sets the task-scheduler width; 0 or 1 runs sequentially.
	// Values above sched.MaxWorkers (64, the width of the scheduler's
	// affinity masks) are clamped to 64; negative values run sequentially.
	Workers int
	// LookaheadDepth is the stage-1 look-ahead depth d ≥ 1: when the
	// reduction runs on a scheduler, trailing-update tasks that feed one of
	// the next d panels get priority boosts graded by proximity, so panel
	// k+1's factorization overlaps panel k's trailing update. 0 picks a
	// default — the machine's tune profile when one records a swept depth,
	// else the built-in band.DefaultLookahead; absurd depths are clamped
	// internally. The depth only steers the ready queue: results are bitwise
	// identical at every depth and worker count.
	LookaheadDepth int
	// DisableLookahead is the kill-switch for stage-1 look-ahead: when set,
	// the scheduled reduction uses the flat pre-look-ahead priority scheme
	// exactly. The results are bitwise identical either way; the switch
	// exists for benchmarking and as an escape hatch, mirroring
	// DisableFusedBacktrans and DisableParallelTridiag.
	DisableLookahead bool
	// WideBand is the stage-1 bandwidth b₁ of the multi-sweep successive
	// band reduction: when BandSweeps selects at least one narrowing sweep,
	// stage 1 stops at this wider, cache-friendlier band and the SBR sweeps
	// narrow it before the bulge chase. 0 (or an inactive BandSweeps) leaves
	// stage 1 at NB. Like NB, an active WideBand selects a different —
	// equally valid — factorization, so results differ from the single-sweep
	// path in the last bits; each configuration is still deterministic at
	// every worker count.
	WideBand int
	// BandSweeps are the intermediate bandwidths of the multi-sweep stage 1,
	// e.g. {8} for 64→8→tridiagonal or {32, 8} for 128→32→8→tridiagonal
	// (with WideBand 64 and 128 respectively). Entries that do not strictly
	// narrow the band are ignored; the last effective entry is the bandwidth
	// the bulge chase consumes. Empty (the default) keeps the classic
	// single-sweep pipeline. A default may come from the machine's tune
	// profile (see Tuning); DisableMultiSweep suppresses both.
	BandSweeps []int
	// DisableMultiSweep is the kill-switch for the multi-sweep stage 1: when
	// set, WideBand and BandSweeps — explicit or from the tune profile — are
	// ignored entirely and the solve is bitwise identical to one that never
	// configured them.
	DisableMultiSweep bool
	// Stage2Workers restricts the memory-bound bulge-chasing stage to fewer
	// cores for locality (the paper's hybrid scheduling); 0 = no limit.
	Stage2Workers int
	// Stage2Static runs the bulge chasing under the static progress-table
	// runtime instead of the dynamic scheduler; results are identical, the
	// choice only affects scheduling overhead.
	Stage2Static bool
	// TridiagWorkers restricts the tridiagonal eigensolver stage (eig_t) to
	// this many workers; 0 inherits the full scheduler width. The stage is
	// mixed compute/memory-bound — for small matrices the task overhead can
	// outweigh the parallelism, and a narrower allotment keeps the remaining
	// cores free for co-scheduled solves. Results are identical at any
	// setting.
	TridiagWorkers int
	// DisableParallelTridiag is the kill-switch for the parallel
	// tridiagonal stage (on by default when Workers > 1): when set, the D&C
	// recursion, bisection, and inverse iteration run sequentially on the
	// calling goroutine. The results are bitwise identical either way; the
	// switch exists for benchmarking and as an escape hatch, mirroring
	// DisableFusedBacktrans.
	DisableParallelTridiag bool
	// Group is the number of bulge-chasing sweeps aggregated into one
	// diamond block when applying Q₂; 0 picks the bandwidth.
	Group int
	// DisableFusedBacktrans is the kill-switch for the fused single-pass
	// back-transformation (on by default): when set, Q₂ and Q₁ are applied
	// in two barrier-separated sweeps over the eigenvector matrix instead
	// of one fused cache-hot pass per column block. The results are bitwise
	// identical either way; the switch exists for benchmarking and as an
	// escape hatch.
	DisableFusedBacktrans bool
	// SkipSymmetryCheck disables the O(n²) input-symmetry validation. The
	// solver then trusts the caller: a non-symmetric input yields the
	// spectrum of an unspecified nearby matrix rather than an error. Use it
	// when matrices are constructed symmetric by design and the solve is
	// latency-critical.
	SkipSymmetryCheck bool
	// SkipFiniteCheck disables the O(n²) scan that rejects NaN/±Inf inputs
	// with a *NotFiniteError before any factorization work. With the check
	// skipped, a non-finite input produces unspecified results (typically a
	// NaN-filled spectrum or a symmetry-check failure).
	SkipFiniteCheck bool
	// Collector, when non-nil, receives per-phase timings and per-kernel
	// flop counts. Batch solves attribute work per item into child
	// collectors and merge them here (see BatchResult.Trace).
	Collector *trace.Collector
	// MemoryBudget caps the bytes of workspace the Solver's arena pool
	// retains across solves, and — during SolveBatch — the estimated
	// footprint of concurrently admitted solves. 0 means unlimited.
	MemoryBudget int64
	// BatchConcurrency caps how many batch items SolveBatch runs at once;
	// 0 picks the scheduler width (Workers, or 1 for a sequential Solver).
	BatchConcurrency int
	// BatchFanout is the matrix order at or above which a batch item fans
	// out into per-tile tasks on the shared scheduler instead of running as
	// a single whole-solve task; 0 picks DefaultBatchFanout.
	BatchFanout int
	// PipelineDepth bounds how many SolveBatch items may be mid-plan at
	// once in the pipelined executor — the window over which the
	// compute-bound stage 1 of one item overlaps the memory-bound stage
	// 2/tridiagonal phases of its predecessors. 0 picks the scheduler
	// width; values are clamped like Workers (negatives → 0, capped at
	// sched.MaxWorkers and, at batch time, at the scheduler width). It
	// composes with BatchConcurrency: the effective in-flight cap is the
	// smaller of the two.
	PipelineDepth int
	// Tuning overrides the machine's persisted tune profile for this Solver:
	// when non-nil (and valid for this machine) it is applied instead of the
	// on-disk profile from eigtune. Explicitly set Options fields (NB,
	// ColBlock) still win over the profile's values. See cmd/eigtune and the
	// README's "tuning your machine" section.
	Tuning *TuneProfile
	// DisableTuning is the kill-switch for profile application: when set,
	// NewSolver ignores both Tuning and the on-disk profile and leaves the
	// process-wide GEMM blocking untouched — the zero-configuration behavior
	// from before the autotuner existed.
	DisableTuning bool
	// DisablePipeline is the kill-switch for the pipelined batch executor:
	// when set, SolveBatch runs each item as an opaque whole-solve task (or
	// per-tile fan-out above BatchFanout) exactly as before the phase
	// pipeline existed. Results are bitwise identical either way; the
	// switch exists for benchmarking and fault isolation, mirroring
	// DisableFusedBacktrans and DisableParallelTridiag.
	DisablePipeline bool
}

// normalize clamps out-of-range option values in place so that invalid
// settings degrade to the nearest sane configuration instead of panicking in
// internal layers (the scheduler's affinity masks hard-cap worker counts at
// sched.MaxWorkers).
func (o *Options) normalize() {
	if o.Workers < 0 {
		o.Workers = 0
	}
	if o.Workers > sched.MaxWorkers {
		o.Workers = sched.MaxWorkers
	}
	if o.NB < 0 {
		o.NB = 0
	}
	if o.ColBlock < 0 {
		o.ColBlock = 0
	}
	if o.Stage2Workers < 0 {
		o.Stage2Workers = 0
	}
	if o.Stage2Workers > sched.MaxWorkers {
		// The static stage-2 runtime sizes per-worker state from this value.
		o.Stage2Workers = sched.MaxWorkers
	}
	if o.TridiagWorkers < 0 {
		o.TridiagWorkers = 0
	}
	if o.LookaheadDepth < 0 {
		o.LookaheadDepth = 0
	}
	if o.WideBand < 0 {
		o.WideBand = 0
	}
	for i, b := range o.BandSweeps {
		if b < 0 {
			o.BandSweeps[i] = 0 // non-narrowing entries are ignored downstream
		}
	}
	if o.TridiagWorkers > sched.MaxWorkers {
		o.TridiagWorkers = sched.MaxWorkers
	}
	if o.Group < 0 {
		o.Group = 0
	}
	if o.MemoryBudget < 0 {
		o.MemoryBudget = 0
	}
	if o.BatchConcurrency < 0 {
		o.BatchConcurrency = 0
	}
	if o.BatchFanout < 0 {
		o.BatchFanout = 0
	}
	if o.PipelineDepth < 0 {
		o.PipelineDepth = 0
	}
	if o.PipelineDepth > sched.MaxWorkers {
		o.PipelineDepth = sched.MaxWorkers
	}
}

func (o *Options) toCore(vectors bool, il, iu int) core.Options {
	var c core.Options
	if o != nil {
		c.NB = o.NB
		c.ColBlock = o.ColBlock
		c.Workers = o.Workers
		c.Stage2Workers = o.Stage2Workers
		c.Stage2Static = o.Stage2Static
		c.TridiagWorkers = o.TridiagWorkers
		c.DisableParallelTridiag = o.DisableParallelTridiag
		c.LookaheadDepth = o.LookaheadDepth
		c.DisableLookahead = o.DisableLookahead
		c.WideBand = o.WideBand
		c.BandSweeps = append([]int(nil), o.BandSweeps...)
		c.DisableMultiSweep = o.DisableMultiSweep
		c.Group = o.Group
		c.Collector = o.Collector
		if o.DisableFusedBacktrans {
			c.FusedBacktrans = core.FuseOff
		}
		switch o.Method {
		case BisectionInverseIteration:
			c.Method = core.MethodBI
		case QRIteration:
			c.Method = core.MethodQR
		default:
			c.Method = core.MethodDC
		}
	}
	c.Vectors = vectors
	c.IL, c.IU = il, iu
	return c
}

func (o *Options) algorithm() Algorithm {
	if o == nil {
		return TwoStage
	}
	return o.Algorithm
}

// Result holds the output of an eigensolve.
type Result struct {
	// Values are the computed eigenvalues in ascending order.
	Values []float64
	// Vectors holds the matching eigenvectors in its columns (nil when only
	// values were requested). Column k pairs with Values[k].
	Vectors *Matrix
}

// Eig computes all eigenvalues and eigenvectors of the symmetric matrix a.
// Each call is one-shot: it builds a transient Solver, solves, and tears it
// down. Code that solves repeatedly should hold a Solver instead to reuse
// its workers and workspace.
func Eig(a *Matrix, opts *Options) (*Result, error) {
	s := NewSolver(opts)
	defer s.Close()
	return s.Eig(a)
}

// EigValues computes all eigenvalues of a (no vectors).
func EigValues(a *Matrix, opts *Options) ([]float64, error) {
	s := NewSolver(opts)
	defer s.Close()
	return s.EigValues(a)
}

// EigRange computes eigenpairs il through iu (1-based, ascending,
// inclusive) — the paper's partial-spectrum scenario (fraction f = k/n).
// With Method BisectionInverseIteration only the requested pairs are
// computed; the other methods compute the full decomposition and return the
// slice.
func EigRange(a *Matrix, il, iu int, opts *Options) (*Result, error) {
	s := NewSolver(opts)
	defer s.Close()
	return s.EigRange(a, il, iu)
}

// EigValuesRange computes eigenvalues il through iu only.
func EigValuesRange(a *Matrix, il, iu int, opts *Options) ([]float64, error) {
	s := NewSolver(opts)
	defer s.Close()
	return s.EigValuesRange(a, il, iu)
}

// symTol is the relative asymmetry allowed in the input before Eig refuses
// it (guards against accidentally passing a non-symmetric matrix; only the
// average of a_ij and a_ji would be solved otherwise).
const symTol = 1e-10

// Matrix is a column-major, dense matrix. For eigensolves it must be square
// and symmetric; eigenvector results are returned as n×k matrices.
type Matrix struct {
	r, c int
	data []float64
}

// NewMatrix allocates a zero n×n matrix.
func NewMatrix(n int) *Matrix {
	if n < 0 {
		panic("eigen: negative size")
	}
	return &Matrix{r: n, c: n, data: make([]float64, n*n)}
}

// NewMatrixRect allocates a zero rows×cols matrix. Rectangular matrices are
// not valid eigensolve inputs (those must be square and symmetric); the
// constructor exists for eigenvector blocks — an n×k destination for a range
// solve, or a client-side reconstruction of an n×k result received over the
// wire (see the client package).
func NewMatrixRect(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("eigen: negative size")
	}
	return &Matrix{r: rows, c: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds an n×n matrix from row-major data (convenient for
// literals in examples and tests).
func NewMatrixFrom(n int, rowMajor []float64) *Matrix {
	if len(rowMajor) != n*n {
		panic("eigen: data length mismatch")
	}
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rowMajor[i*n+j])
		}
	}
	return m
}

// fromDense wraps a solver-owned result matrix as a Matrix. A contiguous
// column-major matrix (stride == rows) is adopted without copying — the
// solvers hand over freshly allocated, caller-owned storage, so the extra
// copy the old code made here was pure waste. Strided views still copy.
func fromDense(d *matrix.Dense) *Matrix {
	if d.Stride == d.Rows || d.Rows == 0 || d.Cols <= 1 {
		n := d.Rows * d.Cols
		return &Matrix{r: d.Rows, c: d.Cols, data: d.Data[:n:n]}
	}
	m := &Matrix{r: d.Rows, c: d.Cols, data: make([]float64, d.Rows*d.Cols)}
	for j := 0; j < d.Cols; j++ {
		copy(m.data[j*m.r:j*m.r+m.r], d.Data[j*d.Stride:j*d.Stride+d.Rows])
	}
	return m
}

func (m *Matrix) dense() *matrix.Dense {
	return matrix.NewDenseFrom(m.r, m.c, max(1, m.r), m.data)
}

// Dims returns the matrix dimensions.
func (m *Matrix) Dims() (rows, cols int) { return m.r, m.c }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i+j*m.r]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i+j*m.r] = v
}

// SetSym assigns both (i, j) and (j, i), keeping the matrix symmetric.
func (m *Matrix) SetSym(i, j int, v float64) {
	m.Set(i, j, v)
	if i != j {
		m.Set(j, i, v)
	}
}

// Col returns a copy of column j (for eigenvector results, the j-th
// eigenvector).
func (m *Matrix) Col(j int) []float64 {
	m.check(0, j)
	out := make([]float64, m.r)
	copy(out, m.data[j*m.r:j*m.r+m.r])
	return out
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.r || j < 0 || j >= m.c {
		panic(fmt.Sprintf("eigen: index (%d,%d) out of %d×%d", i, j, m.r, m.c))
	}
}
