package eigen

import (
	"math"
	"math/rand"
	"testing"
)

func randSymMatrix(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			m.SetSym(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestEigSmallKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewMatrixFrom(2, []float64{2, 1, 1, 2})
	res, err := Eig(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[0]-1) > 1e-12 || math.Abs(res.Values[1]-3) > 1e-12 {
		t.Fatalf("eigenvalues %v, want [1 3]", res.Values)
	}
	// Eigenvector for λ=1 is ±(1,-1)/√2.
	v := res.Vectors.Col(0)
	if math.Abs(math.Abs(v[0])-1/math.Sqrt2) > 1e-12 || math.Abs(v[0]+v[1]) > 1e-12 {
		t.Fatalf("eigenvector %v", v)
	}
}

func TestEigResidualAllOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 40
	a := randSymMatrix(rng, n)
	for _, alg := range []Algorithm{TwoStage, OneStage} {
		for _, m := range []Method{DivideAndConquer, BisectionInverseIteration, QRIteration} {
			res, err := Eig(a, &Options{Algorithm: alg, Method: m, NB: 8})
			if err != nil {
				t.Fatalf("alg=%d method=%d: %v", alg, m, err)
			}
			checkResidual(t, a, res)
		}
	}
}

func checkResidual(t *testing.T, a *Matrix, res *Result) {
	t.Helper()
	n, _ := a.Dims()
	for k := 0; k < len(res.Values); k++ {
		v := res.Vectors.Col(k)
		var worst float64
		for i := 0; i < n; i++ {
			var sum float64
			for j := 0; j < n; j++ {
				sum += a.At(i, j) * v[j]
			}
			if d := math.Abs(sum - res.Values[k]*v[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-10*float64(n) {
			t.Fatalf("eigenpair %d residual %g", k, worst)
		}
	}
}

func TestEigValuesMatchesEig(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randSymMatrix(rng, 30)
	vals, err := EigValues(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eig(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Abs(vals[i]-res.Values[i]) > 1e-10 {
			t.Fatalf("values-only mismatch at %d", i)
		}
	}
}

func TestEigRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 50
	a := randSymMatrix(rng, n)
	full, err := Eig(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := EigRange(a, 6, 15, &Options{Method: BisectionInverseIteration})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Values) != 10 {
		t.Fatalf("range returned %d values", len(sub.Values))
	}
	for i := range sub.Values {
		if math.Abs(sub.Values[i]-full.Values[5+i]) > 1e-9 {
			t.Fatalf("range value %d: %g vs %g", i, sub.Values[i], full.Values[5+i])
		}
	}
	checkResidual(t, a, sub)
	if _, err := EigRange(a, 0, 5, nil); err == nil {
		t.Fatal("invalid range accepted")
	}
	if vals, err := EigValuesRange(a, 1, 5, nil); err != nil || len(vals) != 5 {
		t.Fatalf("EigValuesRange: %v, %d values", err, len(vals))
	}
}

func TestEigRejectsNonSymmetric(t *testing.T) {
	a := NewMatrix(3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	if _, err := Eig(a, nil); err == nil {
		t.Fatal("non-symmetric matrix accepted")
	}
}

func TestEigRejectsBadInput(t *testing.T) {
	if _, err := Eig(nil, nil); err == nil {
		t.Fatal("nil matrix accepted")
	}
}

func TestEigParallelOption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randSymMatrix(rng, 36)
	seq, err := Eig(a, &Options{NB: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Eig(a, &Options{NB: 8, Workers: 3, Stage2Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Values {
		if seq.Values[i] != par.Values[i] {
			t.Fatal("parallel results differ from sequential")
		}
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(3)
	m.SetSym(0, 2, 5)
	if m.At(2, 0) != 5 || m.At(0, 2) != 5 {
		t.Fatal("SetSym failed")
	}
	r, c := m.Dims()
	if r != 3 || c != 3 {
		t.Fatal("Dims wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	m.At(3, 0)
}
