package eigen

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/tridiag"
)

// ErrNotFinite is the sentinel matched (via errors.Is) by every
// *NotFiniteError: the input matrix contains a NaN or ±Inf entry. Without
// this check a NaN input used to surface as a baffling symmetry-check
// failure (NaN ≠ NaN) or as a garbage spectrum.
var ErrNotFinite = errors.New("eigen: input contains a non-finite value")

// NotFiniteError reports the first non-finite entry found in an input
// matrix. It matches ErrNotFinite under errors.Is. The scan runs on every
// solve unless Options.SkipFiniteCheck is set.
type NotFiniteError struct {
	// Row, Col locate the offending entry.
	Row, Col int
	// Value is the entry itself (NaN, +Inf or -Inf).
	Value float64
}

func (e *NotFiniteError) Error() string {
	return fmt.Sprintf("eigen: input is not finite: a[%d,%d] = %v", e.Row, e.Col, e.Value)
}

// Is reports whether target is ErrNotFinite, so callers can test the error
// class without destructuring.
func (e *NotFiniteError) Is(target error) bool { return target == ErrNotFinite }

// ErrInvalidRange is the sentinel matched (via errors.Is) by every
// *RangeError: an EigRange/EigValuesRange index pair that does not describe
// a non-empty 1-based ascending subrange of the spectrum.
var ErrInvalidRange = errors.New("eigen: invalid eigenpair index range")

// RangeError reports an invalid [IL, IU] eigenpair request against an
// order-N problem. Valid requests satisfy 1 ≤ IL ≤ IU ≤ N; in particular
// every range request against an empty (n = 0) matrix is invalid. It
// matches ErrInvalidRange under errors.Is.
type RangeError struct {
	IL, IU int
	// N is the matrix order the range was checked against, or -1 when the
	// range was rejected before the matrix was seen.
	N int
}

func (e *RangeError) Error() string {
	if e.N < 0 {
		return fmt.Sprintf("eigen: invalid eigenpair range [%d, %d] (want 1 ≤ il ≤ iu ≤ n)", e.IL, e.IU)
	}
	return fmt.Sprintf("eigen: invalid eigenpair range [%d, %d] for n=%d (want 1 ≤ il ≤ iu ≤ n)", e.IL, e.IU, e.N)
}

// Is reports whether target is ErrInvalidRange.
func (e *RangeError) Is(target error) bool { return target == ErrInvalidRange }

// ErrReentrantBatch is returned in every BatchResult when SolveBatch is
// called from inside one of the Solver's own scheduler tasks (for example
// from code running under another solve on the same Solver). Such a call
// would submit work and then block waiting for workers that are already
// occupied by the caller — a guaranteed deadlock on a saturated pool — so it
// is detected up front and refused per item. Calling SolveBatch from an
// ordinary goroutine, or on a *different* Solver, is always fine.
var ErrReentrantBatch = errors.New("eigen: SolveBatch called from inside a scheduler task")

// ErrNoConvergence is returned (unwrapped, so == comparison also works) when
// an iterative tridiagonal eigensolver exceeds its iteration budget. For
// these algorithms that indicates a pathological matrix or a logic error
// rather than an expected runtime condition; a Solver that returned it stays
// fully usable — pooled workspaces make no assumption about the contents a
// failed solve left behind.
var ErrNoConvergence = tridiag.ErrNoConvergence

// checkFinite scans column-major data for the first NaN/±Inf entry and
// returns the typed error describing it, or nil. rows is the matrix row
// count (for locating the entry).
func checkFinite(data []float64, rows int) error {
	for idx, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &NotFiniteError{Row: idx % rows, Col: idx / rows, Value: v}
		}
	}
	return nil
}
