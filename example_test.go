package eigen_test

import (
	"fmt"

	"repro"
)

// ExampleEig computes the spectrum of a small symmetric matrix.
func ExampleEig() {
	// The 3×3 path-graph Laplacian-like matrix tridiag(1, 2, 1).
	a := eigen.NewMatrixFrom(3, []float64{
		2, 1, 0,
		1, 2, 1,
		0, 1, 2,
	})
	res, err := eigen.Eig(a, nil)
	if err != nil {
		panic(err)
	}
	for i, v := range res.Values {
		fmt.Printf("λ%d = %.6f\n", i+1, v)
	}
	// Output:
	// λ1 = 0.585786
	// λ2 = 2.000000
	// λ3 = 3.414214
}

// ExampleEigRange computes only the two smallest eigenpairs with the
// subset-capable bisection + inverse-iteration solver.
func ExampleEigRange() {
	n := 8
	a := eigen.NewMatrix(n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 2)
		if i+1 < n {
			a.SetSym(i, i+1, 1)
		}
	}
	res, err := eigen.EigRange(a, 1, 2, &eigen.Options{
		Method: eigen.BisectionInverseIteration,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("smallest: %.6f, next: %.6f, vectors: %d columns\n",
		res.Values[0], res.Values[1], len(res.Values))
	// Output:
	// smallest: 0.120615, next: 0.467911, vectors: 2 columns
}

// ExampleEig_oneStage runs the classic one-stage baseline for comparison.
func ExampleEig_oneStage() {
	a := eigen.NewMatrixFrom(2, []float64{
		0, 1,
		1, 0,
	})
	res, err := eigen.Eig(a, &eigen.Options{Algorithm: eigen.OneStage})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f %.0f\n", res.Values[0], res.Values[1])
	// Output:
	// -1 1
}
