// Partial spectrum: a tight-binding "electronic structure" Hamiltonian where
// only the occupied states — the lowest 20 % of the spectrum — are needed.
// This is the exact scenario of the paper's Figure 4d and its closing §7
// measurement (150 s for f = 0.2 versus 400 s for f = 1 at n = 20 000): the
// fraction f shrinks both the tridiagonal solve and the back-transformation,
// so the partial solve should cost well under half of the full one.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro"
)

const (
	n        = 400
	fraction = 0.2
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Dense tight-binding Hamiltonian: on-site energies on the diagonal,
	// exponentially decaying random hopping off it.
	h := eigen.NewMatrix(n)
	for i := 0; i < n; i++ {
		h.Set(i, i, rng.NormFloat64())
		for j := i + 1; j < n; j++ {
			t := math.Exp(-0.25*float64(j-i)) * rng.NormFloat64() * 0.5
			h.SetSym(i, j, t)
		}
	}

	k := int(fraction * n)
	opts := &eigen.Options{Method: eigen.BisectionInverseIteration}

	start := time.Now()
	occ, err := eigen.EigRange(h, 1, k, opts)
	if err != nil {
		panic(err)
	}
	tPartial := time.Since(start)

	start = time.Now()
	full, err := eigen.Eig(h, &eigen.Options{Method: eigen.DivideAndConquer})
	if err != nil {
		panic(err)
	}
	tFull := time.Since(start)

	// Ground-state energy: sum of occupied eigenvalues.
	var e0 float64
	for _, v := range occ.Values {
		e0 += v
	}
	fmt.Printf("n=%d, occupied states k=%d (f=%.0f%%)\n", n, k, 100*fraction)
	fmt.Printf("  ground-state energy Σλ_occ = %.6f\n", e0)
	fmt.Printf("  HOMO-LUMO gap: λ[%d]−λ[%d] = %.6f\n", k+1, k, full.Values[k]-full.Values[k-1])

	// Cross-check the partial solve against the full one.
	var worst float64
	for i := 0; i < k; i++ {
		worst = math.Max(worst, math.Abs(occ.Values[i]-full.Values[i]))
	}
	fmt.Printf("  partial vs full eigenvalue agreement: %.2e\n", worst)

	fmt.Printf("  time, partial (f=%.1f): %v\n", fraction, tPartial.Round(time.Millisecond))
	fmt.Printf("  time, full:             %v\n", tFull.Round(time.Millisecond))
	fmt.Printf("  ratio: %.2f (paper's §7 analogue: 150s/400s ≈ 0.38 at n=20000)\n",
		tPartial.Seconds()/tFull.Seconds())
}
