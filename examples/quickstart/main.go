// Quickstart: build a small symmetric matrix, compute its full eigensystem
// with the two-stage solver, and verify A·z = λ·z for every pair.
package main

import (
	"fmt"
	"math"

	"repro"
)

func main() {
	// A 6×6 symmetric matrix: a ring of masses with one heavy bond.
	n := 6
	a := eigen.NewMatrix(n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 2)
		a.SetSym(i, (i+1)%n, -1)
	}
	a.SetSym(0, 1, -3) // the heavy bond

	res, err := eigen.Eig(a, nil)
	if err != nil {
		panic(err)
	}

	fmt.Println("eigenvalues (ascending):")
	for i, v := range res.Values {
		fmt.Printf("  λ%d = %+.6f\n", i+1, v)
	}

	// Verify the decomposition.
	var worst float64
	for k := 0; k < n; k++ {
		z := res.Vectors.Col(k)
		for i := 0; i < n; i++ {
			var az float64
			for j := 0; j < n; j++ {
				az += a.At(i, j) * z[j]
			}
			worst = math.Max(worst, math.Abs(az-res.Values[k]*z[i]))
		}
	}
	fmt.Printf("max |A·z − λ·z| over all pairs: %.2e\n", worst)

	// Only the three smallest eigenpairs, using the subset-capable solver.
	sub, err := eigen.EigRange(a, 1, 3, &eigen.Options{Method: eigen.BisectionInverseIteration})
	if err != nil {
		panic(err)
	}
	fmt.Printf("three smallest again via bisection+inverse iteration: %.6f %.6f %.6f\n",
		sub.Values[0], sub.Values[1], sub.Values[2])
}
