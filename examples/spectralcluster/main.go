// Spectral clustering: recover planted communities in a random graph from
// the bottom eigenvectors of its Laplacian. This is the classic workload
// for a *partial* symmetric eigensolve — only k ≪ n eigenpairs are needed,
// the scenario the paper's fraction-f analysis (Eq. 4–5) and Figure 4d are
// about.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro"
)

const (
	nNodes   = 240
	clusters = 3
	pIn      = 0.30 // edge probability inside a community
	pOut     = 0.02 // across communities
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Planted-partition graph: nodes i belong to community i % clusters.
	lap := eigen.NewMatrix(nNodes)
	deg := make([]float64, nNodes)
	for i := 0; i < nNodes; i++ {
		for j := i + 1; j < nNodes; j++ {
			p := pOut
			if i%clusters == j%clusters {
				p = pIn
			}
			if rng.Float64() < p {
				lap.SetSym(i, j, -1)
				deg[i]++
				deg[j]++
			}
		}
	}
	for i := 0; i < nNodes; i++ {
		lap.Set(i, i, deg[i])
	}

	// The number of near-zero Laplacian eigenvalues counts the connected
	// components; the next eigenvectors separate the communities. Compute
	// only the bottom `clusters` pairs.
	res, err := eigen.EigRange(lap, 1, clusters, &eigen.Options{
		Method: eigen.BisectionInverseIteration,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("bottom eigenvalues: %.4f %.4f %.4f (spectral gap to λ%d tells the cluster count)\n",
		res.Values[0], res.Values[1], res.Values[2], clusters+1)

	// Embed each node by its entries in eigenvectors 2..k and cluster with
	// a tiny k-means.
	embed := make([][]float64, nNodes)
	for i := range embed {
		embed[i] = make([]float64, clusters-1)
		for d := 1; d < clusters; d++ {
			embed[i][d-1] = res.Vectors.At(i, d)
		}
	}
	assign := kmeansBest(rng, embed, clusters, 10)

	// Score against the planted partition (best label permutation).
	best := 0
	perms := permutations(clusters)
	for _, p := range perms {
		correct := 0
		for i, c := range assign {
			if p[c] == i%clusters {
				correct++
			}
		}
		if correct > best {
			best = correct
		}
	}
	fmt.Printf("recovered %d/%d node labels (%.1f%%)\n", best, nNodes, 100*float64(best)/float64(nNodes))
	if float64(best)/float64(nNodes) < 0.9 {
		fmt.Println("WARNING: clustering quality below 90% — unexpected for this gap")
	}
}

// kmeansBest runs Lloyd's algorithm from several random starts and keeps
// the assignment with the lowest within-cluster inertia (single random
// starts collapse easily even on a clean embedding).
func kmeansBest(rng *rand.Rand, pts [][]float64, k, restarts int) []int {
	var best []int
	bestInertia := math.Inf(1)
	for r := 0; r < restarts; r++ {
		assign := kmeans(rng, pts, k)
		// Inertia of this solution.
		dim := len(pts[0])
		cent := make([][]float64, k)
		cnt := make([]int, k)
		for c := range cent {
			cent[c] = make([]float64, dim)
		}
		for i, p := range pts {
			cnt[assign[i]]++
			for t, v := range p {
				cent[assign[i]][t] += v
			}
		}
		for c := range cent {
			if cnt[c] > 0 {
				for t := range cent[c] {
					cent[c][t] /= float64(cnt[c])
				}
			}
		}
		var inertia float64
		for i, p := range pts {
			for t, v := range p {
				d := v - cent[assign[i]][t]
				inertia += d * d
			}
		}
		if inertia < bestInertia {
			bestInertia, best = inertia, assign
		}
	}
	return best
}

// kmeans is a minimal Lloyd iteration, sufficient for a well-separated
// spectral embedding.
func kmeans(rng *rand.Rand, pts [][]float64, k int) []int {
	dim := len(pts[0])
	cent := make([][]float64, k)
	for c := range cent {
		cent[c] = append([]float64(nil), pts[rng.Intn(len(pts))]...)
	}
	assign := make([]int, len(pts))
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, p := range pts {
			bc, bd := 0, math.Inf(1)
			for c := range cent {
				var d float64
				for t := 0; t < dim; t++ {
					d += (p[t] - cent[c][t]) * (p[t] - cent[c][t])
				}
				if d < bd {
					bc, bd = c, d
				}
			}
			if assign[i] != bc {
				assign[i] = bc
				changed = true
			}
		}
		if !changed {
			break
		}
		for c := range cent {
			cnt := 0
			for t := range cent[c] {
				cent[c][t] = 0
			}
			for i, p := range pts {
				if assign[i] == c {
					cnt++
					for t := range p {
						cent[c][t] += p[t]
					}
				}
			}
			if cnt > 0 {
				for t := range cent[c] {
					cent[c][t] /= float64(cnt)
				}
			}
		}
	}
	return assign
}

func permutations(k int) [][]int {
	if k == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range permutations(k - 1) {
		for pos := 0; pos <= len(sub); pos++ {
			p := make([]int, 0, k)
			p = append(p, sub[:pos]...)
			p = append(p, k-1)
			p = append(p, sub[pos:]...)
			out = append(out, p)
		}
	}
	return out
}
