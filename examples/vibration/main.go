// Vibrational modes of a square membrane: eigenmodes of the 2-D discrete
// Laplacian on a g×g grid (a drumhead clamped at the border). The matrix is
// dense-stored n×n with n = g², a realistic "full dense symmetric
// eigenproblem" workload whose exact spectrum is known:
//
//	λ(p,q) = 4 − 2cos(pπ/(g+1)) − 2cos(qπ/(g+1)),  p,q = 1..g,
//
// so the example double-checks the solver against the analytic frequencies
// and sketches the lowest mode shapes.
package main

import (
	"fmt"
	"math"
	"sort"

	"repro"
)

const g = 16 // grid side; n = 256

func main() {
	n := g * g
	a := eigen.NewMatrix(n)
	idx := func(x, y int) int { return x + y*g }
	for y := 0; y < g; y++ {
		for x := 0; x < g; x++ {
			i := idx(x, y)
			a.Set(i, i, 4)
			if x+1 < g {
				a.SetSym(i, idx(x+1, y), -1)
			}
			if y+1 < g {
				a.SetSym(i, idx(x, y+1), -1)
			}
		}
	}

	res, err := eigen.Eig(a, &eigen.Options{Method: eigen.DivideAndConquer})
	if err != nil {
		panic(err)
	}

	// Analytic spectrum for comparison.
	var want []float64
	for p := 1; p <= g; p++ {
		for q := 1; q <= g; q++ {
			want = append(want, 4-2*math.Cos(float64(p)*math.Pi/float64(g+1))-2*math.Cos(float64(q)*math.Pi/float64(g+1)))
		}
	}
	sort.Float64s(want)
	var worst float64
	for i := range want {
		worst = math.Max(worst, math.Abs(res.Values[i]-want[i]))
	}
	fmt.Printf("membrane %dx%d (n=%d): max |λ_computed − λ_analytic| = %.2e\n", g, g, n, worst)

	fmt.Println("\nlowest six vibration frequencies (ω = √λ):")
	for k := 0; k < 6; k++ {
		fmt.Printf("  mode %d: ω = %.6f (λ = %.6f)\n", k+1, math.Sqrt(res.Values[k]), res.Values[k])
	}

	// ASCII sketch of the fundamental and the first excited mode.
	for _, k := range []int{0, 1} {
		fmt.Printf("\nmode %d shape (sign and magnitude):\n", k+1)
		v := res.Vectors.Col(k)
		var vmax float64
		for _, x := range v {
			vmax = math.Max(vmax, math.Abs(x))
		}
		for y := 0; y < g; y += 2 { // coarsen for the terminal
			line := "  "
			for x := 0; x < g; x += 1 {
				val := v[idx(x, y)] / vmax
				line += shade(val)
			}
			fmt.Println(line)
		}
	}
}

// shade maps [−1, 1] to a coarse character ramp (negative lobes lowercase).
func shade(v float64) string {
	ramp := []string{" ", ".", ":", "+", "#"}
	i := int(math.Abs(v) * float64(len(ramp)))
	if i >= len(ramp) {
		i = len(ramp) - 1
	}
	if v < -0.05 {
		return "-"
	}
	return ramp[i]
}
