package backtransform

import (
	"repro/internal/band"
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/tune"
	"repro/internal/work"
)

// ApplyFused computes E := Q₁·(Q₂·E) in a single pass over E. The paper's
// Figure 3c partitioning makes each column block of E independent through
// *both* back-transformation factors, so instead of streaming the whole
// matrix through memory twice with a global barrier in between (the legacy
// PhaseUpdateQ2/PhaseUpdateQ1 sequence), one task per block applies every
// Q₂ diamond and then the full Q₁ tile-reflector sequence while the block is
// cache-hot. f must be the stage-1 factor of the same reduction the plan's
// chase consumed (f.N == n).
//
// colBlock ≤ 0 picks the shared tune.ColBlock default. With a
// scheduler-backed job each block runs on its own worker with a retained
// worker-owned slab (no per-task allocation); a nil or inline job runs the
// blocks sequentially on one shared workspace, stopping at a block boundary
// on cancellation (the caller must check job.Err and discard E). The result
// is bitwise identical to the two-phase path at equal colBlock. tc may be
// nil; Q₂/Q₁ flop shares are attributed to the legacy phase names via
// AttributeFlops.
func (p *Plan) ApplyFused(f *band.Factor, e *matrix.Dense, job *sched.Job, colBlock int, tc *trace.Collector) {
	p.ApplyFusedWith(f, nil, e, job, colBlock, tc)
}

// ApplyFusedWith is ApplyFused with the multi-sweep SBR factors composed in:
// it computes E := Q₁·S₁⋯S_k·(Q₂·E) in the same single pass per column
// block. sweeps holds the diamond plans of the narrowing sweeps in
// application order — innermost factor first, i.e. the last (narrowest)
// sweep's plan at index 0 — each built over the full matrix order n. A nil
// or empty sweeps slice degenerates to ApplyFused. The sweep flop shares are
// attributed to PhaseUpdateQ2 together with the chase's (both are band
// Q-factors; the per-sweep reduction cost has its own wall-clock phases in
// the driver).
func (p *Plan) ApplyFusedWith(f *band.Factor, sweeps []*Plan, e *matrix.Dense, job *sched.Job, colBlock int, tc *trace.Collector) {
	if e.Rows != p.n {
		panic("backtransform: E row count mismatch")
	}
	if f.N != p.n {
		panic("backtransform: stage-1 factor order mismatch")
	}
	for _, sp := range sweeps {
		if sp.n != p.n {
			panic("backtransform: sweep plan order mismatch")
		}
	}
	if e.Cols == 0 {
		return
	}
	if colBlock <= 0 {
		colBlock = tune.ColBlock(e.Cols, f.NB, job.Workers())
	}
	// One workspace serves every factor of a task: each Q₂/sweep plan needs
	// its maxK·cols, Q₁ needs NB·cols.
	wkK := max(p.maxK, f.NB)
	var sweepPerCol int64
	for _, sp := range sweeps {
		wkK = max(wkK, sp.maxK)
		sweepPerCol += sp.FlopsPerCol()
	}
	wkLen := wkK * min(colBlock, e.Cols)
	q2PerCol, q1PerCol := p.FlopsPerCol()+sweepPerCol, f.Q1FlopsPerCol()
	runBlock := func(view *matrix.Dense, wk []float64) {
		p.applyBlock(view, wk, tc)
		for _, sp := range sweeps {
			sp.applyBlock(view, wk, tc)
		}
		f.ApplyQ1Block(blas.NoTrans, view, wk, tc)
		tc.AttributeFlops(trace.PhaseUpdateQ2, q2PerCol*int64(view.Cols))
		tc.AttributeFlops(trace.PhaseUpdateQ1, q1PerCol*int64(view.Cols))
	}
	if !job.Parallel() {
		wk := p.ws.Floats(work.FusedApply, wkLen, false)
		for j0 := 0; j0 < e.Cols; j0 += colBlock {
			if job.Canceled() {
				return
			}
			jb := min(colBlock, e.Cols-j0)
			runBlock(e.View(0, j0, p.n, jb), wk)
		}
		return
	}
	slabs := p.ws.WorkerSlabs(work.FusedApply, job.Workers(), wkLen)
	for j0 := 0; j0 < e.Cols; j0 += colBlock {
		jb := min(colBlock, e.Cols-j0)
		view := e.View(0, j0, p.n, jb)
		job.Submit(sched.Task{
			Name: "BACKTRANS",
			Run: func(w int) {
				runBlock(view, slabs.For(w))
			},
		})
	}
	job.Wait()
}
