package backtransform

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/band"
	"repro/internal/blas"
	"repro/internal/bulge"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/testmat"
	"repro/internal/trace"
	"repro/internal/work"
)

// fusedFixture builds the two back-transformation operators of one reduction:
// the stage-1 factor and the Q₂ plan of its bulge chase.
func fusedFixture(rng *rand.Rand, n, nb int, ws *work.Arena) (*band.Factor, *Plan) {
	a := testmat.RandomSym(rng, n)
	f := band.Reduce(a, nb, nil, ws, nil)
	res := bulge.Chase(f.Band, nil, 0, true, ws, nil)
	return f, NewPlan(res, 0, ws)
}

func TestApplyFusedMatchesTwoPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct{ n, nb, cols, colBlock int }{
		{30, 6, 30, 7},
		{40, 8, 40, 0},
		{33, 8, 12, 5}, // thin E
		{24, 24, 24, 6},
	} {
		f, p := fusedFixture(rng, tc.n, tc.nb, nil)
		e := matrix.NewDense(tc.n, tc.cols)
		for i := range e.Data {
			e.Data[i] = rng.NormFloat64()
		}
		want := e.Clone()
		p.Apply(want, nil, tc.colBlock, nil)
		f.ApplyQ1(blas.NoTrans, want, nil, tc.colBlock, nil)

		// Inline job.
		got := e.Clone()
		p.ApplyFused(f, got, nil, tc.colBlock, nil)
		if !got.Equalish(want, 0) {
			t.Fatalf("n=%d nb=%d cols=%d colBlock=%d: inline fused differs from two-phase",
				tc.n, tc.nb, tc.cols, tc.colBlock)
		}

		// Dynamic scheduler job.
		s := sched.New(3)
		got2 := e.Clone()
		job := s.NewJob(nil)
		p.ApplyFused(f, got2, job, tc.colBlock, nil)
		if err := job.Err(); err != nil {
			t.Fatal(err)
		}
		s.Shutdown()
		if !got2.Equalish(want, 0) {
			t.Fatalf("n=%d nb=%d cols=%d colBlock=%d: scheduled fused differs from two-phase",
				tc.n, tc.nb, tc.cols, tc.colBlock)
		}
	}
}

func TestApplyFusedArenaReuse(t *testing.T) {
	// Two fused applies through one arena (worker slabs and scratch
	// retained) must match fresh-allocation results.
	rng := rand.New(rand.NewSource(22))
	ws := work.NewArena()
	n, nb := 28, 7
	for iter := 0; iter < 2; iter++ {
		f, p := fusedFixture(rng, n, nb, ws)
		e := matrix.NewDense(n, n)
		for i := range e.Data {
			e.Data[i] = rng.NormFloat64()
		}
		want := e.Clone()
		p.Apply(want, nil, 9, nil)
		f.ApplyQ1(blas.NoTrans, want, nil, 9, nil)
		got := e.Clone()
		s := sched.New(2)
		job := s.NewJob(nil)
		p.ApplyFused(f, got, job, 9, nil)
		if err := job.Err(); err != nil {
			t.Fatal(err)
		}
		s.Shutdown()
		if !got.Equalish(want, 0) {
			t.Fatalf("iteration %d: arena-backed fused apply differs", iter)
		}
	}
}

func TestApplyFusedCancellation(t *testing.T) {
	// A pre-canceled inline job must stop at the first block boundary and
	// leave the scheduler/job machinery consistent (E's contents are
	// documented as discarded by the caller).
	rng := rand.New(rand.NewSource(23))
	f, p := fusedFixture(rng, 24, 6, nil)
	e := matrix.NewDense(24, 24)
	for i := range e.Data {
		e.Data[i] = rng.NormFloat64()
	}
	orig := e.Clone()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := sched.Inline(ctx)
	p.ApplyFused(f, e, job, 8, nil)
	if err := job.Err(); err == nil {
		t.Fatal("canceled fused apply reported no error")
	}
	if !e.Equalish(orig, 0) {
		t.Fatal("pre-canceled fused apply modified E")
	}
}

func TestApplyFusedAttributesFlops(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	f, p := fusedFixture(rng, 30, 6, nil)
	e := matrix.NewDense(30, 30)
	for i := range e.Data {
		e.Data[i] = rng.NormFloat64()
	}
	tc := trace.New()
	p.ApplyFused(f, e, nil, 10, tc)
	q2 := tc.AttributedFlops(trace.PhaseUpdateQ2)
	q1 := tc.AttributedFlops(trace.PhaseUpdateQ1)
	if q2 != p.FlopsPerCol()*int64(e.Cols) {
		t.Fatalf("Q2 attribution %d, want %d", q2, p.FlopsPerCol()*int64(e.Cols))
	}
	if q1 != f.Q1FlopsPerCol()*int64(e.Cols) {
		t.Fatalf("Q1 attribution %d, want %d", q1, f.Q1FlopsPerCol()*int64(e.Cols))
	}
	if q1 <= 0 || q2 <= 0 {
		t.Fatal("attribution not recorded")
	}
}
