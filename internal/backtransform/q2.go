// Package backtransform implements the eigenvector back-transformation of
// the two-stage algorithm — the paper's core new contribution (§6). Given
// the eigenvectors E of the tridiagonal matrix it computes
//
//	Z = Q₁ · (Q₂ · E)
//
// where Q₂ is the awkward one: its reflectors are length-b slivers arranged
// on a shifted lattice (Figure 3b). Applying them one by one is Level-2
// BLAS and memory-bound, so consecutive sweeps at the same chase level are
// aggregated into diamond-shaped blocks and applied with the compact WY
// representation (Level 3), in an order that linearizes the bulge-chasing
// dependence DAG (Figure 3d). Parallelism comes from partitioning E into
// column blocks that never interact (Figure 3c), so each core applies every
// diamond to its own block with no communication.
package backtransform

import (
	"sort"

	"repro/internal/blas"
	"repro/internal/bulge"
	"repro/internal/householder"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/tune"
	"repro/internal/work"
)

// defaultGroup picks the diamond width for a chase bandwidth b. Wider
// diamonds improve blocking but the aggregated V spans b+g−1 rows, so the
// applied flops grow by (b+g−1)/b — the paper's "small extra cost". The
// ablation bench (BenchmarkAblationGroupWidth) locates the sweet spot well
// below b on this substrate.
func defaultGroup(b int) int {
	g := b / 4
	if g < 4 {
		g = 4
	}
	if g > 16 {
		g = 16
	}
	return g
}

// diamond is one aggregated block of reflectors: group j covers sweeps
// [j·g, (j+1)·g) at a fixed chase level.
type diamond struct {
	rowStart int // global row of the first reflector's implicit 1
	rows     int // row span of the aggregated V
	k        int // number of reflectors (columns of V)
	v        []float64
	t        []float64
}

// Plan precomputes the diamond blocks of Q₂ for a chase result, so repeated
// applications (e.g. to different eigenvector sets) skip the aggregation.
// A Plan built with a workspace arena borrows arena storage (the V/T slab,
// the block list) and is only valid until the arena is recycled.
type Plan struct {
	n     int
	b     int // chase bandwidth (== stage-1 tile size in the driver)
	group int
	maxK  int // widest diamond (bounds the Larfb workspace)
	ws    *work.Arena
	// blocks in application order for Q₂·E (valid DAG linearization:
	// sweep-group descending, level ascending within a group).
	blocks []diamond
	// naive fallback data.
	refs []bulge.Reflector
}

// planCache is the retained per-arena aggregation scratch: the Plan header,
// the (sweep, level) lattice index and the block list backing array.
type planCache struct {
	plan   Plan
	idx    []int32
	blocks []diamond
	tau    []float64
}

// NewPlan builds the diamond decomposition of Q₂ with the given group size
// (≤ 0 picks a bandwidth-dependent default). ws may be nil.
func NewPlan(res *bulge.Result, group int, ws *work.Arena) *Plan {
	return NewPlanKeyed(res, group, ws, work.BacktransPlan, work.BacktransSlab)
}

// NewPlanKeyed is NewPlan with explicit arena keys for the retained plan
// header and the V/T slab. The fixed-key NewPlan retains exactly one plan
// per arena; multi-sweep SBR pipelines need one live plan per narrowing
// sweep plus the chase's, so each takes its own key pair.
func NewPlanKeyed(res *bulge.Result, group int, ws *work.Arena, planKey, slabKey work.Key) *Plan {
	if group <= 0 {
		group = defaultGroup(res.B)
	}
	if group < 1 {
		group = 1
	}
	cache, _ := ws.Value(planKey).(*planCache)
	if cache == nil {
		cache = &planCache{} // nil ws: fresh each call, SetValue is a no-op
		ws.SetValue(planKey, cache)
	}
	p := &cache.plan
	*p = Plan{n: res.N, b: res.B, group: group, refs: res.Refs, ws: ws}
	if len(res.Refs) == 0 {
		return p
	}

	// Index reflectors on the (sweep, level) lattice.
	maxSweep, maxLevel := 0, 0
	for i := range res.Refs {
		r := &res.Refs[i]
		if r.Sweep > maxSweep {
			maxSweep = r.Sweep
		}
		if r.Level > maxLevel {
			maxLevel = r.Level
		}
	}
	nl := maxLevel + 1
	idxLen := (maxSweep + 1) * nl
	if cap(cache.idx) < idxLen {
		cache.idx = make([]int32, idxLen)
	}
	idx := cache.idx[:idxLen]
	for i := range idx {
		idx[i] = -1
	}
	for i := range res.Refs {
		r := &res.Refs[i]
		idx[r.Sweep*nl+r.Level] = int32(i)
	}
	at := func(s, l int) *bulge.Reflector {
		if i := idx[s*nl+l]; i >= 0 {
			return &res.Refs[i]
		}
		return nil
	}

	// diamondShape measures group j, level l without building it: the row
	// span and reflector count of the aggregated block.
	ng := maxSweep/group + 1
	diamondShape := func(j, l int) (lo, rowStart, rows, k int) {
		lo = j * group
		hi := min(lo+group, maxSweep+1)
		rowStart, rowEnd := -1, 0
		for s2 := lo; s2 < hi; s2++ {
			r := at(s2, l)
			if r == nil {
				continue
			}
			if rowStart < 0 {
				rowStart = r.Row - (r.Sweep - lo)
			}
			if c := r.Sweep - lo; c+1 > k {
				k = c + 1
			}
			if end := r.Row + len(r.V); end+1 > rowEnd {
				rowEnd = end + 1
			}
		}
		if k > 0 {
			rows = rowEnd - rowStart
		}
		return
	}

	// First pass: count blocks and size the V/T slab exactly.
	nBlocks, slabCap := 0, 0
	for j := ng - 1; j >= 0; j-- {
		for l := 0; l < nl; l++ {
			_, _, rows, k := diamondShape(j, l)
			if k == 0 {
				continue
			}
			nBlocks++
			slabCap += rows*k + k*k
		}
	}
	slab := ws.SlabOf(slabKey, slabCap)
	if cap(cache.blocks) < nBlocks {
		cache.blocks = make([]diamond, 0, nBlocks)
	}
	if cap(cache.tau) < group {
		cache.tau = make([]float64, group)
	}

	// Second pass: build the diamonds in application order for Q₂·E
	// (group index j descending, level ascending).
	blocks := cache.blocks[:0]
	for j := ng - 1; j >= 0; j-- {
		for l := 0; l < nl; l++ {
			lo, rowStart, rows, k := diamondShape(j, l)
			if k == 0 {
				continue
			}
			d := diamond{rowStart: rowStart, rows: rows, k: k}
			d.v = slab.Take(rows * k)
			d.t = slab.Take(k * k)
			tau := cache.tau[:k]
			clear(tau)
			hi := min(lo+group, maxSweep+1)
			for s2 := lo; s2 < hi; s2++ {
				r := at(s2, l)
				if r == nil {
					continue
				}
				c := r.Sweep - lo
				local := r.Row - rowStart
				if local != c {
					// The lattice guarantees a one-row shift per sweep;
					// anything else is a logic error upstream.
					panic("backtransform: reflector off the diamond lattice")
				}
				tau[c] = r.Tau
				copy(d.v[local+1+c*rows:], r.V)
			}
			householder.Larft(rows, k, d.v, rows, tau, d.t, k)
			blocks = append(blocks, d)
			if k > p.maxK {
				p.maxK = k
			}
		}
	}
	cache.blocks = blocks
	p.blocks = blocks
	return p
}

// NumBlocks reports how many diamond blocks the plan holds.
func (p *Plan) NumBlocks() int { return len(p.blocks) }

// MaxK reports the widest diamond (reflector count); it bounds the Larfb
// workspace an ApplyBlock caller must provide (MaxK·cols floats).
func (p *Plan) MaxK() int { return p.maxK }

// FlopsPerCol returns the flops Q₂ application spends per eigenvector
// column (the Larfb cost summed over all diamonds). The fused path uses it
// to attribute the Q₂ share of its single wall-clock phase.
func (p *Plan) FlopsPerCol() int64 {
	var f int64
	for i := range p.blocks {
		d := &p.blocks[i]
		f += 4 * int64(d.rows) * int64(d.k)
	}
	return f
}

// OverlapEdges counts unordered pairs of diamonds whose row ranges overlap —
// the dependence edges of the paper's Figure 3d DAG that the plan's
// linearization satisfies. It runs in O(m log m) by counting the complement:
// a pair is disjoint iff one interval ends at or before the other starts, so
// edges = C(m,2) − Σᵢ |{j : endⱼ ≤ startᵢ}| (intervals are non-empty, so a
// disjoint pair is counted exactly once, by its later member).
func (p *Plan) OverlapEdges() int {
	m := len(p.blocks)
	if m < 2 {
		return 0
	}
	starts := make([]int, m)
	ends := make([]int, m)
	for i := range p.blocks {
		starts[i] = p.blocks[i].rowStart
		ends[i] = p.blocks[i].rowStart + p.blocks[i].rows
	}
	sort.Ints(ends)
	disjoint := 0
	for _, s := range starts {
		disjoint += sort.SearchInts(ends, s+1) // ends ≤ s
	}
	return m*(m-1)/2 - disjoint
}

// overlapEdgesQuad is the quadratic reference implementation of
// OverlapEdges, kept for the equality test that pins the sweep against it.
func (p *Plan) overlapEdgesQuad() int {
	edges := 0
	for i := 0; i < len(p.blocks); i++ {
		for j := i + 1; j < len(p.blocks); j++ {
			a, b := &p.blocks[i], &p.blocks[j]
			if a.rowStart < b.rowStart+b.rows && b.rowStart < a.rowStart+a.rows {
				edges++
			}
		}
	}
	return edges
}

// Apply computes E := Q₂·E using the diamond blocks. E is partitioned into
// column blocks of width colBlock (≤ 0 → the shared tune.ColBlock default)
// and each block is one task: with a scheduler-backed job the blocks run
// concurrently on distinct workers with no shared data, each on its own
// retained worker slab; a nil (or inline) job runs them sequentially with
// one shared workspace, stopping at a block boundary on cancellation (the
// caller must check job.Err and discard E). tc may be nil.
func (p *Plan) Apply(e *matrix.Dense, job *sched.Job, colBlock int, tc *trace.Collector) {
	if e.Rows != p.n {
		panic("backtransform: E row count mismatch")
	}
	if e.Cols == 0 {
		return
	}
	if colBlock <= 0 {
		colBlock = tune.ColBlock(e.Cols, p.b, job.Workers())
	}
	if !job.Parallel() {
		wk := p.ws.Floats(work.BacktransApply, p.maxK*min(colBlock, e.Cols), false)
		for j0 := 0; j0 < e.Cols; j0 += colBlock {
			if job.Canceled() {
				return
			}
			jb := min(colBlock, e.Cols-j0)
			p.applyBlock(e.View(0, j0, p.n, jb), wk, tc)
		}
		return
	}
	slabs := p.ws.WorkerSlabs(work.BacktransWorker, job.Workers(), p.maxK*min(colBlock, e.Cols))
	for j0 := 0; j0 < e.Cols; j0 += colBlock {
		jb := min(colBlock, e.Cols-j0)
		view := e.View(0, j0, p.n, jb)
		job.Submit(sched.Task{
			Name: "APPLYQ2",
			Run: func(w int) {
				p.applyBlock(view, slabs.For(w), tc)
			},
		})
	}
	job.Wait()
}

// ApplyBlock applies every diamond of the plan to one column block of E.
// work must hold at least MaxK()·e.Cols floats. It is the Q₂ half of the
// fused back-transformation task.
func (p *Plan) ApplyBlock(e *matrix.Dense, work []float64, tc *trace.Collector) {
	p.applyBlock(e, work, tc)
}

// applyBlock applies every diamond to one column block of E. work must hold
// at least p.maxK·e.Cols floats.
func (p *Plan) applyBlock(e *matrix.Dense, work []float64, tc *trace.Collector) {
	for i := range p.blocks {
		d := &p.blocks[i]
		sub := e.View(d.rowStart, 0, d.rows, e.Cols)
		householder.Larfb(blas.Left, blas.NoTrans, d.rows, e.Cols, d.k,
			d.v, d.rows, d.t, d.k, sub.Data, sub.Stride, work[:d.k*e.Cols])
		tc.AddFlops(trace.KLarfb, 4*int64(d.rows)*int64(e.Cols)*int64(d.k))
	}
}

// ApplyNaive computes E := Q₂·E one reflector at a time in reverse
// generation order — the memory-bound Level-2 reference implementation the
// paper's blocked scheme replaces. It is used to validate the diamond
// decomposition and as the ablation baseline.
func ApplyNaive(res *bulge.Result, e *matrix.Dense, tc *trace.Collector) {
	if e.Rows != res.N {
		panic("backtransform: E row count mismatch")
	}
	work := make([]float64, e.Cols)
	for i := len(res.Refs) - 1; i >= 0; i-- {
		r := &res.Refs[i]
		if r.Tau == 0 {
			continue
		}
		v := make([]float64, len(r.V)+1)
		v[0] = 1
		copy(v[1:], r.V)
		sub := e.View(r.Row, 0, len(v), e.Cols)
		householder.Larf(blas.Left, len(v), e.Cols, v, 1, r.Tau, sub.Data, sub.Stride, work)
		tc.AddFlops(trace.KLarf, 4*int64(len(v))*int64(e.Cols))
	}
}
