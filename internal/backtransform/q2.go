// Package backtransform implements the eigenvector back-transformation of
// the two-stage algorithm — the paper's core new contribution (§6). Given
// the eigenvectors E of the tridiagonal matrix it computes
//
//	Z = Q₁ · (Q₂ · E)
//
// where Q₂ is the awkward one: its reflectors are length-b slivers arranged
// on a shifted lattice (Figure 3b). Applying them one by one is Level-2
// BLAS and memory-bound, so consecutive sweeps at the same chase level are
// aggregated into diamond-shaped blocks and applied with the compact WY
// representation (Level 3), in an order that linearizes the bulge-chasing
// dependence DAG (Figure 3d). Parallelism comes from partitioning E into
// column blocks that never interact (Figure 3c), so each core applies every
// diamond to its own block with no communication.
package backtransform

import (
	"repro/internal/blas"
	"repro/internal/bulge"
	"repro/internal/householder"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
)

// defaultGroup picks the diamond width for a chase bandwidth b. Wider
// diamonds improve blocking but the aggregated V spans b+g−1 rows, so the
// applied flops grow by (b+g−1)/b — the paper's "small extra cost". The
// ablation bench (BenchmarkAblationGroupWidth) locates the sweet spot well
// below b on this substrate.
func defaultGroup(b int) int {
	g := b / 4
	if g < 4 {
		g = 4
	}
	if g > 16 {
		g = 16
	}
	return g
}

// diamond is one aggregated block of reflectors: group j covers sweeps
// [j·g, (j+1)·g) at a fixed chase level.
type diamond struct {
	rowStart int // global row of the first reflector's implicit 1
	rows     int // row span of the aggregated V
	k        int // number of reflectors (columns of V)
	v        []float64
	t        []float64
}

// Plan precomputes the diamond blocks of Q₂ for a chase result, so repeated
// applications (e.g. to different eigenvector sets) skip the aggregation.
type Plan struct {
	n      int
	group  int
	// blocks in application order for Q₂·E (valid DAG linearization:
	// sweep-group descending, level ascending within a group).
	blocks []diamond
	// naive fallback data.
	refs []bulge.Reflector
}

// NewPlan builds the diamond decomposition of Q₂ with the given group size
// (≤ 0 picks a bandwidth-dependent default).
func NewPlan(res *bulge.Result, group int) *Plan {
	if group <= 0 {
		group = defaultGroup(res.B)
	}
	if group < 1 {
		group = 1
	}
	p := &Plan{n: res.N, group: group, refs: res.Refs}
	if len(res.Refs) == 0 {
		return p
	}
	// Index reflectors by (sweep, level).
	maxSweep, maxLevel := 0, 0
	type key struct{ s, l int }
	byKey := make(map[key]*bulge.Reflector, len(res.Refs))
	for i := range res.Refs {
		r := &res.Refs[i]
		byKey[key{r.Sweep, r.Level}] = r
		if r.Sweep > maxSweep {
			maxSweep = r.Sweep
		}
		if r.Level > maxLevel {
			maxLevel = r.Level
		}
	}
	ng := maxSweep/group + 1
	// Application order for Q₂·E: group index j descending, level ascending.
	for j := ng - 1; j >= 0; j-- {
		for l := 0; l <= maxLevel; l++ {
			var members []*bulge.Reflector
			lo, hi := j*group, min((j+1)*group, maxSweep+1)
			for s2 := lo; s2 < hi; s2++ {
				if r, ok := byKey[key{s2, l}]; ok {
					members = append(members, r)
				}
			}
			if len(members) == 0 {
				continue
			}
			p.blocks = append(p.blocks, buildDiamond(lo, members))
		}
	}
	return p
}

// buildDiamond packs the member reflectors (sweeps lo..) of one level into
// a shifted compact-WY block. Column c corresponds to sweep lo+c; its
// implicit 1 sits at local row (sweep − lo) because consecutive sweeps
// shift down by exactly one row (Figure 3b).
func buildDiamond(lo int, members []*bulge.Reflector) diamond {
	rowStart := members[0].Row - (members[0].Sweep - lo)
	k := 0
	rowEnd := rowStart
	for _, r := range members {
		c := r.Sweep - lo
		if c+1 > k {
			k = c + 1
		}
		if end := r.Row + len(r.V); end+1 > rowEnd {
			rowEnd = end + 1
		}
	}
	rows := rowEnd - rowStart
	d := diamond{rowStart: rowStart, rows: rows, k: k}
	d.v = make([]float64, rows*k)
	tau := make([]float64, k)
	for _, r := range members {
		c := r.Sweep - lo
		local := r.Row - rowStart
		if local != c {
			// The lattice guarantees a one-row shift per sweep; anything
			// else is a logic error upstream.
			panic("backtransform: reflector off the diamond lattice")
		}
		tau[c] = r.Tau
		copy(d.v[local+1+c*rows:], r.V)
	}
	d.t = make([]float64, k*k)
	householder.Larft(rows, k, d.v, rows, tau, d.t, k)
	return d
}

// NumBlocks reports how many diamond blocks the plan holds.
func (p *Plan) NumBlocks() int { return len(p.blocks) }

// OverlapEdges counts ordered pairs of consecutive-in-plan diamonds whose
// row ranges overlap — the dependence edges of the paper's Figure 3d DAG
// that the plan's linearization satisfies.
func (p *Plan) OverlapEdges() int {
	edges := 0
	for i := 0; i < len(p.blocks); i++ {
		for j := i + 1; j < len(p.blocks); j++ {
			a, b := &p.blocks[i], &p.blocks[j]
			if a.rowStart < b.rowStart+b.rows && b.rowStart < a.rowStart+a.rows {
				edges++
			}
		}
	}
	return edges
}

// Apply computes E := Q₂·E using the diamond blocks. E is partitioned into
// column blocks of width colBlock (≤ 0 → 64) and each block is one task:
// with a scheduler the blocks run concurrently on distinct workers with no
// shared data. tc may be nil.
func (p *Plan) Apply(e *matrix.Dense, s *sched.Scheduler, colBlock int, tc *trace.Collector) {
	if e.Rows != p.n {
		panic("backtransform: E row count mismatch")
	}
	if colBlock <= 0 {
		colBlock = 64
	}
	resBase := 1 << 30 // distinct from any tile resource IDs
	for j0, idx := 0, 0; j0 < e.Cols; j0, idx = j0+colBlock, idx+1 {
		jb := min(colBlock, e.Cols-j0)
		view := e.View(0, j0, p.n, jb)
		task := sched.Task{
			Name: "APPLYQ2",
			Deps: []sched.Dep{sched.RW(resBase + idx)},
			Run: func(int) {
				p.applyBlock(view, tc)
			},
		}
		if s == nil {
			task.Run(0)
		} else {
			s.Submit(task)
		}
	}
	if s != nil {
		s.Wait()
	}
}

func (p *Plan) applyBlock(e *matrix.Dense, tc *trace.Collector) {
	var work []float64
	for i := range p.blocks {
		d := &p.blocks[i]
		if need := d.k * e.Cols; cap(work) < need {
			work = make([]float64, need)
		}
		sub := e.View(d.rowStart, 0, d.rows, e.Cols)
		householder.Larfb(blas.Left, blas.NoTrans, d.rows, e.Cols, d.k,
			d.v, d.rows, d.t, d.k, sub.Data, sub.Stride, work[:d.k*e.Cols])
		tc.AddFlops(trace.KLarfb, 4*int64(d.rows)*int64(e.Cols)*int64(d.k))
	}
}

// ApplyNaive computes E := Q₂·E one reflector at a time in reverse
// generation order — the memory-bound Level-2 reference implementation the
// paper's blocked scheme replaces. It is used to validate the diamond
// decomposition and as the ablation baseline.
func ApplyNaive(res *bulge.Result, e *matrix.Dense, tc *trace.Collector) {
	if e.Rows != res.N {
		panic("backtransform: E row count mismatch")
	}
	work := make([]float64, e.Cols)
	for i := len(res.Refs) - 1; i >= 0; i-- {
		r := &res.Refs[i]
		if r.Tau == 0 {
			continue
		}
		v := make([]float64, len(r.V)+1)
		v[0] = 1
		copy(v[1:], r.V)
		sub := e.View(r.Row, 0, len(v), e.Cols)
		householder.Larf(blas.Left, len(v), e.Cols, v, 1, r.Tau, sub.Data, sub.Stride, work)
		tc.AddFlops(trace.KLarf, 4*int64(len(v))*int64(e.Cols))
	}
}
