package backtransform

import (
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/bulge"
	"repro/internal/householder"
	"repro/internal/matrix"
	"repro/internal/sched"
)

func randBand(rng *rand.Rand, n, kd int) *matrix.SymBand {
	b := matrix.NewSymBand(n, kd)
	for j := 0; j < n; j++ {
		for i := j; i <= min(n-1, j+b.KD); i++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	return b
}

// denseQ2 builds Q₂ explicitly from the reflectors in generation order.
func denseQ2(res *bulge.Result) *matrix.Dense {
	n := res.N
	q := matrix.Eye(n)
	work := make([]float64, n)
	for _, r := range res.Refs {
		if r.Tau == 0 {
			continue
		}
		v := make([]float64, n)
		v[r.Row] = 1
		copy(v[r.Row+1:], r.V)
		householder.Larf(blas.Right, n, n, v, 1, r.Tau, q.Data, q.Stride, work)
	}
	return q
}

func TestApplyNaiveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, kd, m := 20, 4, 7
	b := randBand(rng, n, kd)
	res := bulge.Chase(b, nil, 0, true, nil, nil)
	q2 := denseQ2(res)
	e := matrix.NewDense(n, m)
	for i := range e.Data {
		e.Data[i] = rng.NormFloat64()
	}
	want := matrix.NewDense(n, m)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, m, n, 1, q2.Data, q2.Stride, e.Data, e.Stride, 0, want.Data, want.Stride)
	got := e.Clone()
	ApplyNaive(res, got, nil)
	if !got.Equalish(want, 1e-12*float64(n)) {
		t.Fatal("ApplyNaive != dense Q2 multiplication")
	}
}

func TestDiamondMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ n, kd, group int }{
		{20, 4, 1}, {20, 4, 2}, {20, 4, 4}, {20, 4, 8}, // group sweep counts incl. > kd
		{25, 3, 3}, {17, 5, 5}, {40, 6, 6}, {31, 2, 2},
		{12, 11, 4}, // nearly dense band
		{9, 2, 3},
	} {
		b := randBand(rng, tc.n, tc.kd)
		res := bulge.Chase(b, nil, 0, true, nil, nil)
		m := 6
		e := matrix.NewDense(tc.n, m)
		for i := range e.Data {
			e.Data[i] = rng.NormFloat64()
		}
		want := e.Clone()
		ApplyNaive(res, want, nil)
		got := e.Clone()
		NewPlan(res, tc.group, nil).Apply(got, nil, 0, nil)
		if !got.Equalish(want, 1e-11*float64(tc.n)) {
			t.Fatalf("n=%d kd=%d group=%d: diamond apply != naive", tc.n, tc.kd, tc.group)
		}
	}
}

func TestApplyParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, kd := 30, 4
	b := randBand(rng, n, kd)
	res := bulge.Chase(b, nil, 0, true, nil, nil)
	p := NewPlan(res, 0, nil)
	e := matrix.NewDense(n, n)
	for i := range e.Data {
		e.Data[i] = rng.NormFloat64()
	}
	want := e.Clone()
	p.Apply(want, nil, 7, nil)
	s := sched.New(3)
	got := e.Clone()
	p.Apply(got, s.NewJob(nil), 7, nil)
	s.Shutdown()
	if !got.Equalish(want, 0) {
		t.Fatal("parallel Apply differs from sequential")
	}
}

func TestPlanReusable(t *testing.T) {
	// The same plan applied to two E matrices gives the same result as two
	// fresh plans (no hidden state mutation).
	rng := rand.New(rand.NewSource(4))
	n, kd := 18, 3
	b := randBand(rng, n, kd)
	res := bulge.Chase(b, nil, 0, true, nil, nil)
	p := NewPlan(res, 0, nil)
	e1 := matrix.NewDense(n, 4)
	e2 := matrix.NewDense(n, 4)
	for i := range e1.Data {
		e1.Data[i] = rng.NormFloat64()
		e2.Data[i] = rng.NormFloat64()
	}
	g1, g2 := e1.Clone(), e2.Clone()
	p.Apply(g1, nil, 0, nil)
	p.Apply(g2, nil, 0, nil)
	w1, w2 := e1.Clone(), e2.Clone()
	ApplyNaive(res, w1, nil)
	ApplyNaive(res, w2, nil)
	if !g1.Equalish(w1, 1e-11*float64(n)) || !g2.Equalish(w2, 1e-11*float64(n)) {
		t.Fatal("plan reuse produced wrong results")
	}
}

func TestEmptyQ2(t *testing.T) {
	// A tridiagonal input yields no reflectors; apply must be the identity.
	b := matrix.NewSymBand(8, 1)
	for i := 0; i < 8; i++ {
		b.Set(i, i, float64(i))
	}
	res := bulge.Chase(b, nil, 0, true, nil, nil)
	e := matrix.Eye(8)
	NewPlan(res, 0, nil).Apply(e, nil, 0, nil)
	if !e.Equalish(matrix.Eye(8), 0) {
		t.Fatal("empty Q2 modified E")
	}
	ApplyNaive(res, e, nil)
	if !e.Equalish(matrix.Eye(8), 0) {
		t.Fatal("empty naive Q2 modified E")
	}
}

func TestApplySubsetColumns(t *testing.T) {
	// Applying Q2 to a thin E (partial eigenvectors, the paper's f < 1
	// scenario) must equal the corresponding columns of the full product.
	rng := rand.New(rand.NewSource(5))
	n, kd := 24, 4
	b := randBand(rng, n, kd)
	res := bulge.Chase(b, nil, 0, true, nil, nil)
	p := NewPlan(res, 0, nil)
	full := matrix.NewDense(n, n)
	for i := range full.Data {
		full.Data[i] = rng.NormFloat64()
	}
	fullOut := full.Clone()
	p.Apply(fullOut, nil, 0, nil)
	thin := full.View(0, 2, n, 5).Clone()
	p.Apply(thin, nil, 0, nil)
	if !thin.Equalish(fullOut.View(0, 2, n, 5).Clone(), 1e-12*float64(n)) {
		t.Fatal("thin apply != corresponding columns of full apply")
	}
}

func TestOverlapEdgesMatchesQuadratic(t *testing.T) {
	// The sort-and-sweep OverlapEdges must agree with the O(m²) reference
	// on a spread of plan shapes (including degenerate ones).
	rng := rand.New(rand.NewSource(9))
	for _, tc := range []struct{ n, kd, group int }{
		{20, 4, 1}, {30, 4, 4}, {40, 6, 2}, {25, 3, 8}, {60, 5, 5},
		{12, 11, 4}, {9, 2, 3}, {50, 7, 16},
	} {
		b := randBand(rng, tc.n, tc.kd)
		res := bulge.Chase(b, nil, 0, true, nil, nil)
		p := NewPlan(res, tc.group, nil)
		if got, want := p.OverlapEdges(), p.overlapEdgesQuad(); got != want {
			t.Fatalf("n=%d kd=%d group=%d: sweep OverlapEdges=%d, quadratic=%d", tc.n, tc.kd, tc.group, got, want)
		}
	}
	empty := &Plan{}
	if empty.OverlapEdges() != 0 {
		t.Fatal("empty plan has edges")
	}
}

func TestPlanStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := randBand(rng, 30, 4)
	res := bulge.Chase(b, nil, 0, true, nil, nil)
	p := NewPlan(res, 4, nil)
	if p.NumBlocks() == 0 {
		t.Fatal("no diamond blocks")
	}
	// Every reflector is in some block: total columns ≥ reflectors with
	// nonzero tau.
	if p.OverlapEdges() <= 0 {
		t.Fatal("expected overlapping diamonds for n >> kd")
	}
	// An empty plan reports zeros and applies as identity.
	empty := NewPlan(&bulge.Result{N: 5, B: 1}, 0, nil)
	if empty.NumBlocks() != 0 || empty.OverlapEdges() != 0 {
		t.Fatal("empty plan has blocks")
	}
}
