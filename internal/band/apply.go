package band

import (
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/tune"
	"repro/internal/work"
)

// ApplyQ1 computes C := Q₁·C (trans == NoTrans) or C := Q₁ᵀ·C (trans ==
// Trans) where Q₁ is the orthogonal factor of the stage-1 reduction held in
// f. C must have f.N rows.
//
// Parallelization follows the paper's Figure 3c: C is split into column
// blocks and each block is one task that applies the entire reflector
// sequence, so blocks never share data, there is no inter-core
// communication, and each core streams its own block through cache. A nil
// (or inline) job runs the blocks sequentially with one shared workspace;
// a canceled job stops at a block boundary, leaving C partially updated
// (the caller must check job.Err and discard). colBlock ≤ 0 picks the shared
// tune.ColBlock default.
func (f *Factor) ApplyQ1(trans blas.Transpose, c *matrix.Dense, job *sched.Job, colBlock int, tc *trace.Collector) {
	if c.Rows != f.N {
		panic("band: ApplyQ1 dimension mismatch")
	}
	if c.Cols == 0 {
		return
	}
	if colBlock <= 0 {
		colBlock = tune.ColBlock(c.Cols, f.NB, job.Workers())
	}
	if !job.Parallel() {
		wk := f.ws.Floats(work.Q1Apply, f.NB*min(colBlock, c.Cols), false)
		for j0 := 0; j0 < c.Cols; j0 += colBlock {
			if job.Canceled() {
				return
			}
			jb := min(colBlock, c.Cols-j0)
			f.applyQ1Block(trans, c.View(0, j0, f.N, jb), wk, tc)
		}
		return
	}
	// Column blocks are disjoint slices of C, so the tasks need no declared
	// dependences; each worker reuses its own retained slab.
	slabs := f.ws.WorkerSlabs(work.Q1Worker, job.Workers(), f.NB*min(colBlock, c.Cols))
	for j0, idx := 0, 0; j0 < c.Cols; j0, idx = j0+colBlock, idx+1 {
		jb := min(colBlock, c.Cols-j0)
		view := c.View(0, j0, f.N, jb)
		job.Submit(sched.Task{
			Name: taskName("APPLYQ1", idx, 0),
			Run: func(w int) {
				f.applyQ1Block(trans, view, slabs.For(w), tc)
			},
		})
	}
	job.Wait()
}

// ApplyQ1Block applies the full Q₁ (or its transpose) to one column block of
// C. work must hold at least f.NB·c.Cols floats. It is the Q₁ half of the
// fused back-transformation task.
func (f *Factor) ApplyQ1Block(trans blas.Transpose, c *matrix.Dense, work []float64, tc *trace.Collector) {
	f.applyQ1Block(trans, c, work, tc)
}

// Q1FlopsPerCol returns the flops ApplyQ1 spends per column of C (the
// Ormqr/Tsmqr costs summed over the whole reflector sequence). The fused
// back-transformation uses it to attribute the Q₁ share of its single
// wall-clock phase.
func (f *Factor) Q1FlopsPerCol() int64 {
	var flops int64
	nb := int64(f.NB)
	for k := 0; k <= f.NT-2; k++ {
		m1 := int64(f.A.TileRows(k + 1))
		kr := int64(f.PanelReflectors(k))
		flops += 4 * m1 * kr // Ormqr on the panel's row tile
		for i := k + 2; i <= f.NT-1; i++ {
			m2 := int64(f.A.TileRows(i))
			flops += nb * (4*m2 + nb) // Tsmqr on row pair (k+1, i)
		}
	}
	return flops
}

// applyQ1Block applies the full Q₁ (or its transpose) to one column block.
// work must hold at least f.NB·c.Cols floats.
func (f *Factor) applyQ1Block(trans blas.Transpose, c *matrix.Dense, work []float64, tc *trace.Collector) {
	nt, nb := f.NT, f.NB
	m := c.Cols

	// Q₁ = Q_0·Q_1⋯Q_{nt-2}, and within a panel Q_k = G_k·S_{k+2}⋯S_{nt-1}.
	// For Q₁·C operators apply right-to-left (k descending, i descending,
	// G last); for Q₁ᵀ·C everything reverses and transposes.
	apG := func(k int) {
		m1 := f.A.TileRows(k + 1)
		kr := f.PanelReflectors(k)
		panel := f.A.Tile(k+1, k)
		row := c.View((k+1)*nb, 0, m1, m)
		Ormqr(blas.Left, trans, m1, m, kr, panel, m1, f.Tge[k], kr, row.Data, row.Stride, work, tc)
	}
	apS := func(k, i int) {
		m2 := f.A.TileRows(i)
		vtile := f.A.Tile(i, k)
		tts := f.Tts[k][i-(k+2)]
		a1 := c.View((k+1)*nb, 0, nb, m)
		a2 := c.View(i*nb, 0, m2, m)
		Tsmqr(blas.Left, trans, nb, m, 0, m2, a1.Data, a1.Stride, a2.Data, a2.Stride, vtile, m2, tts, nb, work, tc)
	}
	if trans == blas.NoTrans {
		for k := nt - 2; k >= 0; k-- {
			for i := nt - 1; i >= k+2; i-- {
				apS(k, i)
			}
			apG(k)
		}
	} else {
		for k := 0; k <= nt-2; k++ {
			apG(k)
			for i := k + 2; i <= nt-1; i++ {
				apS(k, i)
			}
		}
	}
}

// BuildQ1 forms Q₁ explicitly (for tests and small problems).
func (f *Factor) BuildQ1(tc *trace.Collector) *matrix.Dense {
	q := matrix.Eye(f.N)
	f.ApplyQ1(blas.NoTrans, q, nil, 0, tc)
	return q
}
