package band

import (
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/work"
)

// ApplyQ1 computes C := Q₁·C (trans == NoTrans) or C := Q₁ᵀ·C (trans ==
// Trans) where Q₁ is the orthogonal factor of the stage-1 reduction held in
// f. C must have f.N rows.
//
// Parallelization follows the paper's Figure 3c: C is split into column
// blocks and each block is one task that applies the entire reflector
// sequence, so blocks never share data, there is no inter-core
// communication, and each core streams its own block through cache. A nil
// (or inline) job runs the blocks sequentially with one shared workspace;
// a canceled job stops at a block boundary, leaving C partially updated
// (the caller must check job.Err and discard). colBlock ≤ 0 picks f.NB
// columns per block.
func (f *Factor) ApplyQ1(trans blas.Transpose, c *matrix.Dense, job *sched.Job, colBlock int, tc *trace.Collector) {
	if c.Rows != f.N {
		panic("band: ApplyQ1 dimension mismatch")
	}
	if c.Cols == 0 {
		return
	}
	if colBlock <= 0 {
		colBlock = f.NB
	}
	if !job.Parallel() {
		wk := f.ws.Floats(work.Q1Apply, f.NB*min(colBlock, c.Cols), false)
		for j0 := 0; j0 < c.Cols; j0 += colBlock {
			if job.Canceled() {
				return
			}
			jb := min(colBlock, c.Cols-j0)
			f.applyQ1Block(trans, c.View(0, j0, f.N, jb), wk, tc)
		}
		return
	}
	// Column-block resources are disjoint slices of C, so any distinct
	// resource IDs work; reuse the ID space above the factor's own.
	base := 5 * f.NT * f.NT
	for j0, idx := 0, 0; j0 < c.Cols; j0, idx = j0+colBlock, idx+1 {
		jb := min(colBlock, c.Cols-j0)
		view := c.View(0, j0, f.N, jb)
		job.Submit(sched.Task{
			Name: taskName("APPLYQ1", idx, 0),
			Deps: []sched.Dep{sched.RW(base + idx)},
			Run: func(int) {
				work := make([]float64, f.NB*view.Cols)
				f.applyQ1Block(trans, view, work, tc)
			},
		})
	}
	job.Wait()
}

// applyQ1Block applies the full Q₁ (or its transpose) to one column block.
// work must hold at least f.NB·c.Cols floats.
func (f *Factor) applyQ1Block(trans blas.Transpose, c *matrix.Dense, work []float64, tc *trace.Collector) {
	nt, nb := f.NT, f.NB
	m := c.Cols

	// Q₁ = Q_0·Q_1⋯Q_{nt-2}, and within a panel Q_k = G_k·S_{k+2}⋯S_{nt-1}.
	// For Q₁·C operators apply right-to-left (k descending, i descending,
	// G last); for Q₁ᵀ·C everything reverses and transposes.
	apG := func(k int) {
		m1 := f.A.TileRows(k + 1)
		kr := f.PanelReflectors(k)
		panel := f.A.Tile(k+1, k)
		row := c.View((k+1)*nb, 0, m1, m)
		Ormqr(blas.Left, trans, m1, m, kr, panel, m1, f.Tge[k], kr, row.Data, row.Stride, work, tc)
	}
	apS := func(k, i int) {
		m2 := f.A.TileRows(i)
		vtile := f.A.Tile(i, k)
		tts := f.Tts[k][i-(k+2)]
		a1 := c.View((k+1)*nb, 0, nb, m)
		a2 := c.View(i*nb, 0, m2, m)
		Tsmqr(blas.Left, trans, nb, m, 0, m2, a1.Data, a1.Stride, a2.Data, a2.Stride, vtile, m2, tts, nb, work, tc)
	}
	if trans == blas.NoTrans {
		for k := nt - 2; k >= 0; k-- {
			for i := nt - 1; i >= k+2; i-- {
				apS(k, i)
			}
			apG(k)
		}
	} else {
		for k := 0; k <= nt-2; k++ {
			apG(k)
			for i := k + 2; i <= nt-1; i++ {
				apS(k, i)
			}
		}
	}
}

// BuildQ1 forms Q₁ explicitly (for tests and small problems).
func (f *Factor) BuildQ1(tc *trace.Collector) *matrix.Dense {
	q := matrix.Eye(f.N)
	f.ApplyQ1(blas.NoTrans, q, nil, 0, tc)
	return q
}
