package band

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/sched"
)

func randSym(rng *rand.Rand, n int) *matrix.Dense {
	a := matrix.NewDense(n, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func TestGeqrtReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{4, 4}, {6, 4}, {3, 5}, {8, 8}} {
		m, n := dims[0], dims[1]
		k := min(m, n)
		a := matrix.NewDense(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		orig := a.Clone()
		tm := make([]float64, k*k)
		work := make([]float64, k+n)
		Geqrt(m, n, a.Data, a.Stride, tm, k, work, nil)
		// R = upper triangle of the factored tile.
		r := matrix.NewDense(m, n)
		for j := 0; j < n; j++ {
			for i := 0; i <= min(j, m-1); i++ {
				r.Set(i, j, a.At(i, j))
			}
		}
		// Q·R must equal the original: apply Q to R via Ormqr.
		qr := r.Clone()
		w2 := make([]float64, k*n)
		Ormqr(blas.Left, blas.NoTrans, m, n, k, a.Data, a.Stride, tm, k, qr.Data, qr.Stride, w2, nil)
		if !qr.Equalish(orig, 1e-12) {
			t.Fatalf("m=%d n=%d: Q·R != A", m, n)
		}
		// Orthogonality: Qᵀ·Q·X == X.
		x := matrix.NewDense(m, 3)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		y := x.Clone()
		w3 := make([]float64, k*3)
		Ormqr(blas.Left, blas.NoTrans, m, 3, k, a.Data, a.Stride, tm, k, y.Data, y.Stride, w3, nil)
		Ormqr(blas.Left, blas.Trans, m, 3, k, a.Data, a.Stride, tm, k, y.Data, y.Stride, w3, nil)
		if !y.Equalish(x, 1e-12) {
			t.Fatalf("m=%d n=%d: Q not orthogonal", m, n)
		}
	}
}

func TestTsqrtTsmqrReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m2 := range []int{1, 3, 4, 7} {
		nb := 4
		// Triangular top R0 and dense bottom A2.
		r0 := matrix.NewDense(nb, nb)
		for j := 0; j < nb; j++ {
			for i := 0; i <= j; i++ {
				r0.Set(i, j, rng.NormFloat64())
			}
		}
		a2 := matrix.NewDense(m2, nb)
		for i := range a2.Data {
			a2.Data[i] = rng.NormFloat64()
		}
		r := r0.Clone()
		v2 := a2.Clone()
		tm := make([]float64, nb*nb)
		work := make([]float64, nb)
		Tsqrt(nb, m2, r.Data, r.Stride, v2.Data, v2.Stride, tm, nb, work, nil)
		// Check: Hᵀ·[R0; A2] == [R; 0] by applying Tsmqr to the originals.
		c1 := r0.Clone()
		c2 := a2.Clone()
		w2 := make([]float64, nb*nb)
		Tsmqr(blas.Left, blas.Trans, nb, nb, 0, m2, c1.Data, c1.Stride, c2.Data, c2.Stride, v2.Data, v2.Stride, tm, nb, w2, nil)
		if !c1.Equalish(r, 1e-12) {
			t.Fatalf("m2=%d: top block != R after Hᵀ", m2)
		}
		if c2.MaxAbs() > 1e-12 {
			t.Fatalf("m2=%d: bottom block not annihilated: %g", m2, c2.MaxAbs())
		}
		// Right application consistency: (Hᵀ·Xᵀ)ᵀ == X·H, so Left-Trans on
		// the transpose must match Right-NoTrans.
		mc := 5
		x1 := matrix.NewDense(mc, nb)
		x2 := matrix.NewDense(mc, m2)
		for i := range x1.Data {
			x1.Data[i] = rng.NormFloat64()
		}
		for i := range x2.Data {
			x2.Data[i] = rng.NormFloat64()
		}
		y1 := x1.Transpose()
		y2 := x2.Transpose()
		wL := make([]float64, nb*mc)
		Tsmqr(blas.Left, blas.Trans, nb, mc, 0, m2, y1.Data, y1.Stride, y2.Data, y2.Stride, v2.Data, v2.Stride, tm, nb, wL, nil)
		wR := make([]float64, mc*nb)
		Tsmqr(blas.Right, blas.NoTrans, nb, 0, mc, m2, x1.Data, x1.Stride, x2.Data, x2.Stride, v2.Data, v2.Stride, tm, nb, wR, nil)
		if !x1.Equalish(y1.Transpose(), 1e-12) || !x2.Equalish(y2.Transpose(), 1e-12) {
			t.Fatalf("m2=%d: right application inconsistent with left-on-transpose", m2)
		}
	}
}

func TestReduceBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ n, nb int }{{12, 4}, {16, 4}, {20, 8}, {13, 4}, {30, 7}, {8, 8}, {5, 8}, {9, 1}} {
		a := randSym(rng, tc.n)
		f := Reduce(a.Clone(), tc.nb, nil, nil, nil)
		if f.Band.KD > tc.nb {
			t.Fatalf("n=%d nb=%d: band KD %d > nb", tc.n, tc.nb, f.Band.KD)
		}
		// The reduced tile matrix must be ~zero strictly below the R of the
		// subdiagonal tiles: verified implicitly by reconstruction below.
		q := f.BuildQ1(nil)
		// Orthogonality.
		n := tc.n
		qtq := matrix.NewDense(n, n)
		blas.Dgemm(blas.Trans, blas.NoTrans, n, n, n, 1, q.Data, q.Stride, q.Data, q.Stride, 0, qtq.Data, qtq.Stride)
		if !qtq.Equalish(matrix.Eye(n), 1e-12*float64(n)) {
			t.Fatalf("n=%d nb=%d: Q1 not orthogonal", tc.n, tc.nb)
		}
		// Reconstruction: Q1·B·Q1ᵀ == A.
		bd := f.Band.ToDense()
		tmp := matrix.NewDense(n, n)
		blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, q.Data, q.Stride, bd.Data, bd.Stride, 0, tmp.Data, tmp.Stride)
		rec := matrix.NewDense(n, n)
		blas.Dgemm(blas.NoTrans, blas.Trans, n, n, n, 1, tmp.Data, tmp.Stride, q.Data, q.Stride, 0, rec.Data, rec.Stride)
		scale := a.FrobeniusNorm() + 1
		if !rec.Equalish(a, 1e-12*scale*float64(n)) {
			t.Fatalf("n=%d nb=%d: Q1·B·Q1ᵀ != A", tc.n, tc.nb)
		}
	}
}

func TestReduceScheduledMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, nb := 24, 4
	a := randSym(rng, n)
	fseq := Reduce(a.Clone(), nb, nil, nil, nil)
	for _, workers := range []int{1, 2, 4} {
		s := sched.New(workers)
		fpar := Reduce(a.Clone(), nb, s.NewJob(nil), nil, nil)
		s.Shutdown()
		// Each tile sees an identical sequence of operations regardless of
		// interleaving, so the results must match bit for bit.
		for i := range fseq.Band.Data {
			if fseq.Band.Data[i] != fpar.Band.Data[i] {
				t.Fatalf("workers=%d: scheduled band differs from sequential at %d", workers, i)
			}
		}
		for k := range fseq.Tge {
			for i := range fseq.Tge[k] {
				if fseq.Tge[k][i] != fpar.Tge[k][i] {
					t.Fatalf("workers=%d: Tge[%d] differs", workers, k)
				}
			}
		}
	}
}

func TestApplyQ1TransInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, nb, m := 20, 4, 6
	a := randSym(rng, n)
	f := Reduce(a, nb, nil, nil, nil)
	c := matrix.NewDense(n, m)
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	got := c.Clone()
	f.ApplyQ1(blas.NoTrans, got, nil, 0, nil)
	f.ApplyQ1(blas.Trans, got, nil, 0, nil)
	if !got.Equalish(c, 1e-12) {
		t.Fatal("Q1ᵀ·Q1·C != C")
	}
}

func TestApplyQ1ParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, nb := 24, 6
	a := randSym(rng, n)
	f := Reduce(a, nb, nil, nil, nil)
	c := matrix.NewDense(n, n)
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	want := c.Clone()
	f.ApplyQ1(blas.NoTrans, want, nil, 5, nil)
	s := sched.New(3)
	got := c.Clone()
	f.ApplyQ1(blas.NoTrans, got, s.NewJob(nil), 5, nil)
	s.Shutdown()
	if !got.Equalish(want, 0) {
		t.Fatal("parallel ApplyQ1 differs from sequential")
	}
}

func TestReduceSpectrumPreserved(t *testing.T) {
	// Trace and Frobenius norm of B equal those of A (similarity transform).
	rng := rand.New(rand.NewSource(7))
	n, nb := 26, 5
	a := randSym(rng, n)
	f := Reduce(a.Clone(), nb, nil, nil, nil)
	bd := f.Band.ToDense()
	var trA, frA, trB, frB float64
	for i := 0; i < n; i++ {
		trA += a.At(i, i)
		trB += bd.At(i, i)
		for j := 0; j < n; j++ {
			frA += a.At(i, j) * a.At(i, j)
			frB += bd.At(i, j) * bd.At(i, j)
		}
	}
	if math.Abs(trA-trB) > 1e-11*float64(n) {
		t.Fatalf("trace not preserved: %g vs %g", trA, trB)
	}
	if math.Abs(frA-frB) > 1e-9*frA {
		t.Fatalf("Frobenius not preserved: %g vs %g", frA, frB)
	}
}

func TestReduceTinyAndDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// n ≤ nb: nothing to do, B == A.
	a := randSym(rng, 3)
	f := Reduce(a.Clone(), 8, nil, nil, nil)
	if !f.Band.ToDense().Equalish(a, 0) {
		t.Fatal("n<nb should leave the matrix unchanged")
	}
	// n == 1.
	one := matrix.NewDense(1, 1)
	one.Set(0, 0, 42)
	f1 := Reduce(one, 4, nil, nil, nil)
	if f1.Band.At(0, 0) != 42 {
		t.Fatal("1x1 reduce broken")
	}
}
