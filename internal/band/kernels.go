// Package band implements stage 1 of the two-stage reduction: the
// DAG-scheduled tile algorithm that reduces a dense symmetric matrix to
// symmetric band form, A = Q₁·B·Q₁ᵀ with bandwidth nb (the tile size). The
// panel of each step is QR-factored with the classic tile kernels (GEQRT
// for the top tile, a TSQRT chain for the tiles below) and the resulting
// block reflectors are applied to the trailing submatrix from both sides as
// independent tile tasks, which is what gives the stage its compute-bound,
// Level-3 character (paper §5.1).
package band

import (
	"repro/internal/blas"
	"repro/internal/householder"
	"repro/internal/trace"
)

// Geqrt computes the QR factorization of an m×n tile in place:
// A = Q·R with R in the upper triangle and the reflector essentials below
// the diagonal. t receives the k×k (k = min(m,n)) triangular factor of the
// compact WY representation. Equivalent to PLASMA's CORE_dgeqrt with inner
// blocking disabled.
func Geqrt(m, n int, a []float64, lda int, t []float64, ldt int, work []float64, tc *trace.Collector) {
	k := min(m, n)
	tau := work[:k]
	scratch := work[k : k+n]
	for i := 0; i < k; i++ {
		var beta float64
		beta, tau[i] = householder.Larfg(m-i, a[i+i*lda], a[i+1+i*lda:], 1)
		// Apply H_i to the trailing columns, using the stored essentials
		// with an explicit temporary 1 on the diagonal.
		if i+1 < n {
			aii := a[i+i*lda]
			a[i+i*lda] = 1
			householder.Larf(blas.Left, m-i, n-i-1, a[i+i*lda:], 1, tau[i], a[i+(i+1)*lda:], lda, scratch)
			a[i+i*lda] = aii
		}
		a[i+i*lda] = beta
	}
	householder.Larft(m, k, a, lda, tau, t, ldt)
	tc.AddFlops(trace.KLarf, 2*int64(m)*int64(n)*int64(k))
}

// Ormqr applies the block reflector from Geqrt (V packed in the lower
// triangle of v, triangular factor t, k reflectors) to the mc×nc tile c.
// work must have length ≥ k·nc (Left) or k·mc (Right).
func Ormqr(side blas.Side, trans blas.Transpose, mc, nc, k int, v []float64, ldv int, t []float64, ldt int, c []float64, ldc int, work []float64, tc *trace.Collector) {
	householder.Larfb(side, trans, mc, nc, k, v, ldv, t, ldt, c, ldc, work)
	tc.AddFlops(trace.KLarfb, 4*int64(mc)*int64(nc)*int64(k))
}

// Tsqrt computes the QR factorization of the "triangle-on-top-of-square"
// stack [R; A2], where R is the nb×nb upper triangle held in a1 and A2 is an
// m2×nb tile. Because R is triangular, each reflector j has the structure
// v_j = [e_j ; v2_j]: the top part is an identity column and only the dense
// part v2_j (length m2) needs storing — it overwrites column j of a2. R is
// updated in place; t receives the nb×nb triangular block factor.
// Equivalent to PLASMA's CORE_dtsqrt.
func Tsqrt(nb, m2 int, a1 []float64, lda1 int, a2 []float64, lda2 int, t []float64, ldt int, work []float64, tc *trace.Collector) {
	tau := work[:nb]
	for j := 0; j < nb; j++ {
		// Reflector from [R[j,j]; A2[:,j]].
		beta, tj := householder.Larfg(m2+1, a1[j+j*lda1], a2[j*lda2:], 1)
		a1[j+j*lda1] = beta
		tau[j] = tj
		if tj != 0 {
			// Apply to the trailing columns jj > j:
			// w = R[j,jj] + v2ᵀ·A2[:,jj]; R[j,jj] -= τ·w; A2[:,jj] -= τ·w·v2.
			v2 := a2[j*lda2 : j*lda2+m2]
			for jj := j + 1; jj < nb; jj++ {
				col := a2[jj*lda2 : jj*lda2+m2]
				w := a1[j+jj*lda1] + blas.Ddot(m2, v2, 1, col, 1)
				a1[j+jj*lda1] -= tj * w
				blas.Daxpy(m2, -tj*w, v2, 1, col, 1)
			}
		}
	}
	// Build T: T[0:j, j] = −τ_j · T[0:j,0:j] · (V2[:,0:j]ᵀ · v2_j); the
	// identity top parts contribute nothing across distinct columns.
	for j := 0; j < nb; j++ {
		if tau[j] == 0 {
			for i := 0; i <= j; i++ {
				t[i+j*ldt] = 0
			}
			continue
		}
		for i := 0; i < j; i++ {
			t[i+j*ldt] = -tau[j] * blas.Ddot(m2, a2[i*lda2:], 1, a2[j*lda2:], 1)
		}
		if j > 0 {
			blas.Dtrmv(blas.Upper, blas.NoTrans, blas.NonUnit, j, t, ldt, t[j*ldt:], 1)
		}
		t[j+j*ldt] = tau[j]
	}
	tc.AddFlops(trace.KLarf, 2*int64(m2+1)*int64(nb)*int64(nb))
}

// Tsmqr applies the TS block reflector from Tsqrt (dense part v2 with ldv
// rows per column, factor t, k reflectors) to a pair of tiles. The reflector
// is H = I − V·op(T)·Vᵀ with V = [I_k ; V2].
//
//	side = Left:  [A1; A2] := op(H)·[A1; A2], A1 is k×n1, A2 is m2×n1.
//	side = Right: [A1, A2] := [A1, A2]·op(H), A1 is m1×k, A2 is m1×m2
//	              (the columns of A2 pair with the rows of V2).
//
// work needs k·n1 (Left) or m1·k (Right) scratch. Equivalent to PLASMA's
// CORE_dtsmqr.
func Tsmqr(side blas.Side, trans blas.Transpose, k, n1, m1, m2 int, a1 []float64, lda1 int, a2 []float64, lda2 int, v2 []float64, ldv int, t []float64, ldt int, work []float64, tc *trace.Collector) {
	tt := blas.NoTrans
	if trans == blas.Trans {
		tt = blas.Trans
	}
	if side == blas.Left {
		// W (k×n1) = A1 + V2ᵀ·A2.
		w := work[:k*n1]
		for j := 0; j < n1; j++ {
			blas.Dcopy(k, a1[j*lda1:], 1, w[j*k:], 1)
		}
		blas.Dgemm(blas.Trans, blas.NoTrans, k, n1, m2, 1, v2, ldv, a2, lda2, 1, w, k)
		// W := op(T)·W.
		blas.Dtrmm(blas.Left, blas.Upper, tt, blas.NonUnit, k, n1, 1, t, ldt, w, k)
		// A1 -= W ; A2 -= V2·W.
		for j := 0; j < n1; j++ {
			blas.Daxpy(k, -1, w[j*k:], 1, a1[j*lda1:], 1)
		}
		blas.Dgemm(blas.NoTrans, blas.NoTrans, m2, n1, k, -1, v2, ldv, w, k, 1, a2, lda2)
		tc.AddFlops(trace.KLarfb, int64(k)*int64(n1)*int64(4*m2+k))
		return
	}
	// side == Right: W (m1×k) = A1 + A2·V2.
	w := work[:m1*k]
	for j := 0; j < k; j++ {
		blas.Dcopy(m1, a1[j*lda1:], 1, w[j*m1:], 1)
	}
	blas.Dgemm(blas.NoTrans, blas.NoTrans, m1, k, m2, 1, a2, lda2, v2, ldv, 1, w, m1)
	// W := W·op(T).
	blas.Dtrmm(blas.Right, blas.Upper, tt, blas.NonUnit, m1, k, 1, t, ldt, w, m1)
	// A1 -= W ; A2 -= W·V2ᵀ.
	for j := 0; j < k; j++ {
		blas.Daxpy(m1, -1, w[j*m1:], 1, a1[j*lda1:], 1)
	}
	blas.Dgemm(blas.NoTrans, blas.Trans, m1, m2, k, -1, w, m1, v2, ldv, 1, a2, lda2)
	tc.AddFlops(trace.KLarfb, int64(m1)*int64(k)*int64(4*m2+k))
}
