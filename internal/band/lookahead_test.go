package band

import (
	"context"
	"fmt"
	"testing"
	"time"

	"math/rand"

	"repro/internal/sched"
	"repro/internal/trace"
)

// factorsIdentical fails the test unless the two factors agree bit for bit
// over everything stage 1 produces: the band, all tiles (reflector storage
// included), and both T-factor families.
func factorsIdentical(t *testing.T, label string, ref, got *Factor) {
	t.Helper()
	for i := range ref.Band.Data {
		if ref.Band.Data[i] != got.Band.Data[i] {
			t.Fatalf("%s: band differs at %d", label, i)
		}
	}
	for j := 0; j < ref.NT; j++ {
		for i := 0; i < ref.NT; i++ {
			rt, gt := ref.A.Tile(i, j), got.A.Tile(i, j)
			for x := range rt {
				if rt[x] != gt[x] {
					t.Fatalf("%s: tile (%d,%d) differs at %d", label, i, j, x)
				}
			}
		}
	}
	for k := range ref.Tge {
		for i := range ref.Tge[k] {
			if ref.Tge[k][i] != got.Tge[k][i] {
				t.Fatalf("%s: Tge[%d] differs at %d", label, k, i)
			}
		}
		for x := range ref.Tts[k] {
			for i := range ref.Tts[k][x] {
				if ref.Tts[k][x][i] != got.Tts[k][x][i] {
					t.Fatalf("%s: Tts[%d][%d] differs at %d", label, k, x, i)
				}
			}
		}
	}
}

// TestReduceLookaheadBitwise pins the core invariant of the look-ahead
// restructure: at every worker count and depth, and under the Sequenced
// kill-switch, the scheduled reduction is bitwise identical to the
// sequential reference — the priorities only reorder the ready queue.
func TestReduceLookaheadBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n, nb := 30, 4
	a := randSym(rng, n)
	ref := ReduceWith(a.Clone(), Config{NB: nb}, nil, nil, nil)
	for _, workers := range []int{1, 2, 4, 7} {
		s := sched.New(workers)
		for _, depth := range []int{1, 2, 4} {
			got := ReduceWith(a.Clone(), Config{NB: nb, Lookahead: depth}, s.NewJob(nil), nil, nil)
			factorsIdentical(t, label("lookahead", workers, depth), ref, got)
		}
		got := ReduceWith(a.Clone(), Config{NB: nb, Sequenced: true}, s.NewJob(nil), nil, nil)
		factorsIdentical(t, label("sequenced", workers, 0), ref, got)
		s.Shutdown()
	}
}

func label(mode string, workers, depth int) string {
	return fmt.Sprintf("%s workers=%d depth=%d", mode, workers, depth)
}

// TestReduceLookaheadDepthClamp covers the depth knob's edge behaviour: the
// resolver maps non-positive depths to the default and absurd ones to the
// cap, and an absurd depth passed end to end still yields the bitwise
// reference result.
func TestReduceLookaheadDepthClamp(t *testing.T) {
	cases := []struct{ in, want int }{
		{-3, DefaultLookahead},
		{0, DefaultLookahead},
		{1, 1},
		{MaxLookahead, MaxLookahead},
		{MaxLookahead + 1, MaxLookahead},
		{1000, MaxLookahead},
		{1 << 30, MaxLookahead},
	}
	for _, c := range cases {
		if got := clampLookahead(c.in); got != c.want {
			t.Fatalf("clampLookahead(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	rng := rand.New(rand.NewSource(42))
	n, nb := 26, 5
	a := randSym(rng, n)
	ref := ReduceWith(a.Clone(), Config{NB: nb}, nil, nil, nil)
	s := sched.New(3)
	defer s.Shutdown()
	for _, depth := range []int{-7, 0, 1 << 30} {
		got := ReduceWith(a.Clone(), Config{NB: nb, Lookahead: depth}, s.NewJob(nil), nil, nil)
		factorsIdentical(t, label("clamped", 3, depth), ref, got)
	}
}

// TestReduceLookaheadPriorityBounds pins the priority layering contract: the
// graded feed boosts stay strictly below the SYRFB and panel priorities at
// the maximum depth, and everything stays far below the batch pipeline's
// 2^16 per-phase drain bias so Job.SetBias still dominates.
func TestReduceLookaheadPriorityBounds(t *testing.T) {
	if feedBoost(MaxLookahead, 1) >= prioDiag {
		t.Fatalf("max feed boost %d reaches the SYRFB priority %d", feedBoost(MaxLookahead, 1), prioDiag)
	}
	if prioDiag >= prioPanel {
		t.Fatalf("SYRFB priority %d reaches the panel priority %d", prioDiag, prioPanel)
	}
	if prioPanel >= 1<<16 {
		t.Fatalf("panel priority %d reaches the pipeline drain-bias step 2^16", prioPanel)
	}
	for _, d := range []int{1, 2, MaxLookahead} {
		if feedBoost(d, 0) != 0 || feedBoost(d, d+1) != 0 {
			t.Fatalf("feedBoost(depth=%d) boosts outside the window", d)
		}
		if feedBoost(d, 1) <= feedBoost(d, d) && d > 1 {
			t.Fatalf("feedBoost(depth=%d) does not prefer nearer panels", d)
		}
	}
}

// TestReduceLookaheadCancel exercises mid-stage-1 cancellation under -race:
// a solve canceled while the DAG drains must return (tasks stop at a task
// boundary), surface the context error through the job, and leave the
// scheduler usable for a follow-up solve that still matches the reference.
func TestReduceLookaheadCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n, nb := 60, 4
	a := randSym(rng, n)
	ref := ReduceWith(a.Clone(), Config{NB: nb}, nil, nil, nil)
	s := sched.New(4)
	defer s.Shutdown()

	ctx, cancel := context.WithCancel(context.Background())
	job := s.NewJob(ctx)
	go func() {
		time.Sleep(200 * time.Microsecond)
		cancel()
	}()
	ReduceWith(a.Clone(), Config{NB: nb}, job, nil, nil)
	// The race between cancel and completion is inherent; either outcome is
	// fine as long as the job settled and the scheduler survived.
	_ = job.Err()

	// Pre-canceled inline job: the sequential path must stop at a panel
	// boundary without touching the scheduler at all.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	ij := sched.Inline(ctx2)
	ReduceWith(a.Clone(), Config{NB: nb}, ij, nil, nil)
	if ij.Err() == nil {
		t.Fatal("pre-canceled inline reduce reported no error")
	}

	got := ReduceWith(a.Clone(), Config{NB: nb}, s.NewJob(nil), nil, nil)
	factorsIdentical(t, "post-cancel solve", ref, got)
}

// TestReduceLookaheadTraceAttribution checks the stage-1 sub-phase split: a
// scheduled run with a collector attributes panel and update busy time, and
// the recorded stall (idle worker-time) is the non-negative remainder the
// ReduceWith accounting computes.
func TestReduceLookaheadTraceAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	n, nb := 40, 4
	a := randSym(rng, n)
	for name, mk := range map[string]func() (*sched.Scheduler, *sched.Job){
		"sequential": func() (*sched.Scheduler, *sched.Job) { return nil, nil },
		"scheduled": func() (*sched.Scheduler, *sched.Job) {
			s := sched.New(3)
			return s, s.NewJob(nil)
		},
	} {
		tc := trace.New()
		s, job := mk()
		ReduceWith(a.Clone(), Config{NB: nb}, job, nil, tc)
		if s != nil {
			s.Shutdown()
		}
		if tc.PhaseTime(trace.PhaseStage1Panel) <= 0 {
			t.Fatalf("%s: no panel time attributed", name)
		}
		if tc.PhaseTime(trace.PhaseStage1Update) <= 0 {
			t.Fatalf("%s: no update time attributed", name)
		}
		if tc.PhaseTime(trace.PhaseStage1Stall) < 0 {
			t.Fatalf("%s: negative stall", name)
		}
	}
}
