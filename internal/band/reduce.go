package band

import (
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/work"
)

// DefaultNB is the default tile size / bandwidth for stage 1. The paper's
// model (§7.1) puts the sweet spot at 120–200 on a 48-core Opteron; on this
// substrate smaller tiles balance the two stages (see cmd/eigtune).
const DefaultNB = 48

// Factor is the output of the stage-1 reduction: the band matrix B plus the
// Householder data needed to apply Q₁ later (paper §6, Figure 3a). The
// reflectors stay packed in the tiles of A exactly where the factorization
// left them:
//
//   - tile (k+1, k): R in the upper triangle, the GEQRT reflector essentials
//     below the diagonal;
//   - tile (i, k), i > k+1: the dense part of the TS reflector that
//     annihilated that tile.
//
// When Reduce is given a workspace arena, every buffer reachable from the
// Factor (tiles, T factors, band) is arena-backed: the Factor is only valid
// until the arena is recycled.
type Factor struct {
	N  int // matrix order
	NB int // tile size == bandwidth
	NT int // tile grid order

	// A is the tile matrix after reduction (V storage).
	A *matrix.TileMatrix
	// Tge[k] is the triangular block factor of the GEQRT reflector of panel
	// k (dimension kr×kr, kr = reflector count of the panel).
	Tge [][]float64
	// Tts[k][i-(k+2)] is the factor for the TS reflector of tile (i, k).
	Tts [][][]float64
	// Band is the resulting symmetric band matrix (bandwidth NB).
	Band *matrix.SymBand

	// ws is the arena the Factor was built from (nil for one-shot use);
	// ApplyQ1 draws its sequential column-block scratch from it.
	ws *work.Arena
}

// stage1Cache bundles the Factor and reducer headers so a recycled arena
// reuses them (and the T-factor list spines) across solves.
type stage1Cache struct {
	f Factor
	r reducer
}

func stage1For(ws *work.Arena) *stage1Cache {
	if sc, ok := ws.Value(work.Stage1Factor).(*stage1Cache); ok {
		return sc
	}
	sc := &stage1Cache{}
	ws.SetValue(work.Stage1Factor, sc)
	return sc
}

// PanelReflectors returns the reflector count of panel k.
func (f *Factor) PanelReflectors(k int) int {
	return min(f.A.TileRows(k+1), f.A.TileCols(k))
}

// resource IDs for the scheduler: tiles use TileMatrix.TileID (in
// [0, NT²)); the extra virtual resources below avoid false dependences
// between readers of the V part and writers of the R part of a panel tile.
func (f *Factor) resV(k int) int   { return f.NT*f.NT + k }   // V of tile (k+1,k)
func (f *Factor) resR(k int) int   { return 2*f.NT*f.NT + k } // R of tile (k+1,k)
func (f *Factor) resTge(k int) int { return 3*f.NT*f.NT + k } // Tge[k]
func (f *Factor) resTts(k, i int) int {
	return 4*f.NT*f.NT + k*f.NT + i
}

// reducer carries the stage-1 kernel state. Every kernel method re-derives
// its geometry from the tile indices, so the sequential path can call them
// directly — no closures, no captured variables, no per-task allocations —
// while the scheduled path wraps the same methods in tasks.
type reducer struct {
	f       *Factor
	tm      *matrix.TileMatrix
	tc      *trace.Collector
	scratch [][]float64 // per-worker kernel workspace, nb²+2nb floats each
}

// panelGeom returns the dimensions of panel k: rows of the panel tile,
// panel width, and reflector count.
func (r *reducer) panelGeom(k int) (m1, kw, kr int) {
	m1 = r.tm.TileRows(k + 1)
	kw = r.tm.TileCols(k)
	kr = min(m1, kw)
	return
}

// geqrt factors the top of panel k (tile (k+1, k)).
func (r *reducer) geqrt(k, w int) {
	m1, kw, kr := r.panelGeom(k)
	Geqrt(m1, kw, r.tm.Tile(k+1, k), m1, r.f.Tge[k], kr, r.scratch[w][:kr+kw], r.tc)
}

// syrfb applies the GEQRT reflector two-sidedly to the diagonal tile.
func (r *reducer) syrfb(k, w int) {
	m1, _, kr := r.panelGeom(k)
	panel := r.tm.Tile(k+1, k)
	diag := r.tm.Tile(k+1, k+1)
	wk := r.scratch[w][:kr*m1]
	Ormqr(blas.Left, blas.Trans, m1, m1, kr, panel, m1, r.f.Tge[k], kr, diag, m1, wk, r.tc)
	Ormqr(blas.Right, blas.NoTrans, m1, m1, kr, panel, m1, r.f.Tge[k], kr, diag, m1, wk, r.tc)
}

// ormqrL updates row tile (k+1, j) from the left: A[k+1][j] := Hᵀ·A[k+1][j].
func (r *reducer) ormqrL(k, j, w int) {
	m1, _, kr := r.panelGeom(k)
	nc := r.tm.TileCols(j)
	Ormqr(blas.Left, blas.Trans, m1, nc, kr, r.tm.Tile(k+1, k), m1, r.f.Tge[k], kr,
		r.tm.Tile(k+1, j), m1, r.scratch[w][:kr*nc], r.tc)
}

// mirror exploits symmetry: the two-sided result satisfies A[j][k+1] =
// (Hᵀ·A[k+1][j])ᵀ, so the freshly left-updated row tile is transposed into
// the column tile instead of recomputed (a copy, not flops — this is how the
// tile algorithm keeps the 4/3·n³-class cost of a symmetry-aware reduction).
func (r *reducer) mirror(k, j, _ int) {
	m1 := r.tm.TileRows(k + 1)
	mr := r.tm.TileRows(j)
	transposeTile(r.tm.Tile(k+1, j), m1, mr, r.tm.Tile(j, k+1))
}

// tsqrt couples tile (i, k) into the panel's R factor.
func (r *reducer) tsqrt(k, i, w int) {
	m1, kw, _ := r.panelGeom(k)
	m2 := r.tm.TileRows(i)
	Tsqrt(kw, m2, r.tm.Tile(k+1, k), m1, r.tm.Tile(i, k), m2,
		r.f.Tts[k][i-(k+2)], kw, r.scratch[w][:kw], r.tc)
}

// tsmqrL applies the TS reflector of (i, k) from the left to row pair
// (k+1, i), column j.
func (r *reducer) tsmqrL(k, i, j, w int) {
	m1 := r.tm.TileRows(k + 1)
	kw := r.tm.TileCols(k)
	m2 := r.tm.TileRows(i)
	nc := r.tm.TileCols(j)
	Tsmqr(blas.Left, blas.Trans, kw, nc, 0, m2,
		r.tm.Tile(k+1, j), m1, r.tm.Tile(i, j), m2,
		r.tm.Tile(i, k), m2, r.f.Tts[k][i-(k+2)], kw, r.scratch[w][:kw*nc], r.tc)
}

// tsmqrC applies the TS reflector of (i, k) from the right to column pair
// (k+1, i), row `row` — only rows {k+1, i} need real computation; the rest
// are mirrored (see mirror2).
func (r *reducer) tsmqrC(k, i, row, w int) {
	kw := r.tm.TileCols(k)
	m2 := r.tm.TileRows(i)
	mr := r.tm.TileRows(row)
	Tsmqr(blas.Right, blas.NoTrans, kw, 0, mr, m2,
		r.tm.Tile(row, k+1), mr, r.tm.Tile(row, i), mr,
		r.tm.Tile(i, k), m2, r.f.Tts[k][i-(k+2)], kw, r.scratch[w][:mr*kw], r.tc)
}

// mirror2 transposes the freshly left-updated row tiles of pair (k+1, i)
// into the corresponding column tiles of row `row` (symmetry exploitation,
// as in mirror).
func (r *reducer) mirror2(k, i, row, _ int) {
	m1 := r.tm.TileRows(k + 1)
	m2 := r.tm.TileRows(i)
	mr := r.tm.TileRows(row)
	transposeTile(r.tm.Tile(k+1, row), m1, mr, r.tm.Tile(row, k+1))
	transposeTile(r.tm.Tile(i, row), m2, mr, r.tm.Tile(row, i))
}

// Reduce runs the stage-1 reduction of the dense symmetric matrix a (both
// triangles must be filled) to band form with bandwidth nb.
//
// job selects the execution mode: a nil job (or one created with
// sched.Inline) runs the kernels sequentially in submission order — the
// reference execution the scheduled one must match bit-for-bit — while a
// scheduler-backed job runs the DAG on the worker pool. If the job is
// canceled the reduction stops at a task boundary and the Factor's contents
// are unspecified; the caller must check job.Err. ws may be nil (fresh
// allocations); when non-nil the returned Factor is arena-backed and only
// valid until the arena is recycled. tc may be nil.
func Reduce(a *matrix.Dense, nb int, job *sched.Job, ws *work.Arena, tc *trace.Collector) *Factor {
	n := a.Rows
	if a.Cols != n {
		panic("band: Reduce requires a square matrix")
	}
	if nb <= 0 {
		nb = DefaultNB
	}
	tm := ws.Tiles(work.Stage1Tiles, n, nb)
	tm.FromLapack(a)
	sc := stage1For(ws)
	f := &sc.f
	tge, tts := f.Tge, f.Tts
	*f = Factor{N: n, NB: nb, NT: tm.NT, A: tm, ws: ws}
	nt := f.NT

	// Carve every T factor out of one slab: the per-panel counts are known
	// up front, so size it exactly and hand out zeroed slices. The list
	// spines (Tge, Tts and its per-panel rows) are retained across solves.
	capT := 0
	for k := 0; k < nt-1; k++ {
		m1 := tm.TileRows(k + 1)
		kw := tm.TileCols(k)
		kr := min(m1, kw)
		capT += kr*kr + max(0, nt-k-2)*kw*kw
	}
	slab := ws.SlabOf(work.Stage1Slab, capT)
	np := max(0, nt-1)
	if cap(tge) < np {
		tge = make([][]float64, np)
	}
	if cap(tts) < np {
		tts = make([][][]float64, np)
	}
	f.Tge = tge[:np]
	f.Tts = tts[:np]
	for k := 0; k < nt-1; k++ {
		m1 := tm.TileRows(k + 1)
		kw := tm.TileCols(k)
		kr := min(m1, kw)
		f.Tge[k] = slab.Take(kr * kr)
		nts := max(0, nt-k-2)
		if cap(f.Tts[k]) < nts {
			f.Tts[k] = make([][]float64, nts)
		}
		f.Tts[k] = f.Tts[k][:nts]
		for i := k + 2; i < nt; i++ {
			f.Tts[k][i-(k+2)] = slab.Take(kw * kw)
		}
	}

	r := &sc.r
	*r = reducer{
		f: f, tm: tm, tc: tc,
		scratch: ws.PerWorker(work.Stage1Scratch, job.Workers(), nb*nb+2*nb),
	}
	if job.Parallel() {
		r.schedule(job)
		job.Wait() // error, if any, surfaces through job.Err at the caller
	} else {
		r.runSeq(job)
	}
	f.Band = extractBand(tm, nb, ws)
	return f
}

// runSeq executes the kernel sequence in submission order on the calling
// goroutine, with a cancellation check per panel. It performs no per-task
// allocations.
func (r *reducer) runSeq(job *sched.Job) {
	nt := r.f.NT
	for k := 0; k < nt-1; k++ {
		if job.Canceled() {
			return
		}
		r.geqrt(k, 0)
		r.syrfb(k, 0)
		for j := k + 2; j < nt; j++ {
			r.ormqrL(k, j, 0)
			r.mirror(k, j, 0)
		}
		for i := k + 2; i < nt; i++ {
			r.tsqrt(k, i, 0)
			for j := k + 1; j < nt; j++ {
				r.tsmqrL(k, i, j, 0)
			}
			r.tsmqrC(k, i, k+1, 0)
			r.tsmqrC(k, i, i, 0)
			for row := k + 1; row < nt; row++ {
				if row == k+1 || row == i {
					continue
				}
				r.mirror2(k, i, row, 0)
			}
		}
	}
}

// schedule submits the same kernel sequence as tasks with their access lists;
// the scheduler infers the DAG from submission order.
func (r *reducer) schedule(job *sched.Job) {
	f, tm, nt := r.f, r.tm, r.f.NT
	for k := 0; k < nt-1; k++ {
		k := k
		// GEQRT on tile (k+1, k): factor the top of the panel.
		job.Submit(sched.Task{
			Name:     taskName("GEQRT", k+1, k),
			Priority: 100, // panel tasks are on the critical path
			Deps: []sched.Dep{
				sched.RW(tm.TileID(k+1, k)), sched.W(f.resV(k)), sched.W(f.resR(k)), sched.W(f.resTge(k)),
			},
			Run: func(w int) { r.geqrt(k, w) },
		})

		// Apply the GEQRT reflector two-sidedly to the trailing submatrix.
		// Diagonal tile: Hᵀ·A·H in one task.
		job.Submit(sched.Task{
			Name:     taskName("SYRFB", k+1, k+1),
			Priority: 50,
			Deps: []sched.Dep{
				sched.RW(tm.TileID(k+1, k+1)), sched.R(f.resV(k)), sched.R(f.resTge(k)),
			},
			Run: func(w int) { r.syrfb(k, w) },
		})
		for j := k + 2; j < nt; j++ {
			j := j
			job.Submit(sched.Task{
				Name: taskName("ORMQR-L", k+1, j),
				Deps: []sched.Dep{
					sched.RW(tm.TileID(k+1, j)), sched.R(f.resV(k)), sched.R(f.resTge(k)),
				},
				Run: func(w int) { r.ormqrL(k, j, w) },
			})
			job.Submit(sched.Task{
				Name: taskName("MIRROR", j, k+1),
				Deps: []sched.Dep{
					sched.W(tm.TileID(j, k+1)), sched.R(tm.TileID(k+1, j)),
				},
				Run: func(w int) { r.mirror(k, j, w) },
			})
		}

		// TSQRT chain down the panel, each followed by its two-sided
		// application to row/column pairs (k+1, i).
		for i := k + 2; i < nt; i++ {
			i := i
			job.Submit(sched.Task{
				Name:     taskName("TSQRT", i, k),
				Priority: 100,
				Deps: []sched.Dep{
					sched.RW(f.resR(k)), sched.RW(tm.TileID(i, k)), sched.W(f.resTts(k, i)),
				},
				Run: func(w int) { r.tsqrt(k, i, w) },
			})
			// Left on row pair (k+1, i), every column k+1..nt-1.
			for j := k + 1; j < nt; j++ {
				j := j
				job.Submit(sched.Task{
					Name: taskName("TSMQR-L", i, j),
					Deps: []sched.Dep{
						sched.RW(tm.TileID(k+1, j)), sched.RW(tm.TileID(i, j)),
						sched.R(tm.TileID(i, k)), sched.R(f.resTts(k, i)),
					},
					Run: func(w int) { r.tsmqrL(k, i, j, w) },
				})
			}
			// Right on column pair (k+1, i). Only the 2×2 corner (rows
			// {k+1, i}) needs real computation; every other row is the
			// transpose of a freshly left-updated tile — mirror it.
			for _, row := range [2]int{k + 1, i} {
				row := row
				job.Submit(sched.Task{
					Name: taskName("TSMQR-C", row, i),
					Deps: []sched.Dep{
						sched.RW(tm.TileID(row, k+1)), sched.RW(tm.TileID(row, i)),
						sched.R(tm.TileID(i, k)), sched.R(f.resTts(k, i)),
					},
					Run: func(w int) { r.tsmqrC(k, i, row, w) },
				})
			}
			for row := k + 1; row < nt; row++ {
				if row == k+1 || row == i {
					continue
				}
				row := row
				job.Submit(sched.Task{
					Name: taskName("MIRROR2", row, i),
					Deps: []sched.Dep{
						sched.W(tm.TileID(row, k+1)), sched.R(tm.TileID(k+1, row)),
						sched.W(tm.TileID(row, i)), sched.R(tm.TileID(i, row)),
					},
					Run: func(w int) { r.mirror2(k, i, row, w) },
				})
			}
		}
	}
}

// extractBand reads the band part out of the reduced tile matrix: the lower
// triangles of the diagonal tiles plus the R triangles of the subdiagonal
// tiles (everything below R is reflector storage, logically zero). The band
// storage comes zeroed from the arena, so only in-band entries are written.
func extractBand(tm *matrix.TileMatrix, nb int, ws *work.Arena) *matrix.SymBand {
	n := tm.N
	b := ws.Band(work.Stage2Band, n, min(nb, max(0, n-1)))
	for j := 0; j < n; j++ {
		jmax := min(n-1, j+b.KD)
		for i := j; i <= jmax; i++ {
			ti, tj := i/nb, j/nb
			if ti == tj {
				b.Set(i, j, tm.At(i, j))
			} else if ti == tj+1 {
				// Subdiagonal tile: only its upper triangle (R) is matrix
				// data.
				ri, ci := i-ti*nb, j-tj*nb
				if ri <= ci {
					b.Set(i, j, tm.At(i, j))
				}
			}
			// ti > tj+1 is reflector storage: zero in B.
		}
	}
	return b
}

// transposeTile writes dst := srcᵀ, where src is an r×c compact column-major
// tile and dst is c×r.
func transposeTile(src []float64, r, c int, dst []float64) {
	for j := 0; j < c; j++ {
		col := src[j*r : j*r+r]
		for i, v := range col {
			dst[j+i*c] = v
		}
	}
}

func taskName(kind string, i, j int) string {
	// Small helper to keep task submission readable; names only matter for
	// traces.
	return kind + "(" + itoa(i) + "," + itoa(j) + ")"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for v > 0 {
		p--
		buf[p] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[p:])
}
