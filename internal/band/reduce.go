package band

import (
	"sync/atomic"
	"time"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/work"
)

// DefaultNB is the built-in fallback tile size / bandwidth for stage 1, used
// only when neither Options.NB nor an installed tune profile supplies one.
// The paper's model (§7.1) puts the sweet spot at 120–200 on a 48-core
// Opteron; on this substrate smaller tiles balance the two stages. Since the
// PR-6 autotuner, the effective default on a tuned machine is the profile's
// measured nb (cmd/eigtune sweeps it and eigen.NewSolver fills unset Options
// from the profile), so this constant is the zero-configuration fallback,
// not the tuned operating point.
const DefaultNB = 48

// Look-ahead configuration of the scheduled stage-1 DAG.
//
// The reduction's critical path is the panel chain: GEQRT(k) → the TSQRT
// chain of panel k → the column-(k+1) updates → GEQRT(k+1) → … Everything
// else — the trailing updates on columns k+2..nt-1 — is slack that can fill
// the workers while the chain advances. The scheduler's dependence tracking
// already lets panel k+1 start as soon as its column's tiles are final, but
// ready-queue order decides whether that actually happens: with flat
// priorities the O(nt²) trailing-update tasks of panel k drown the handful
// of tasks feeding panel k+1, and every panel boundary degenerates into a
// near-global drain. Look-ahead is therefore a priority discipline
// (Rodríguez-Sánchez et al., "Look-Ahead in the Two-Sided Reduction to
// Compact Band Forms"): panel tasks outrank everything, and update tasks are
// graded by how soon a future panel reads the tile they write, out to a
// configurable depth d.
const (
	// DefaultLookahead is the depth used when Config.Lookahead is unset: the
	// updates feeding the next two panels are prioritized, which keeps the
	// panel chain fed without starving the trailing update entirely.
	DefaultLookahead = 2
	// MaxLookahead caps the depth so the graded boosts stay strictly below
	// the panel-task priorities (and far below the batch pipeline's 2^16
	// per-phase drain bias, which layers on top via Job.SetBias).
	MaxLookahead = 63

	// prioFeedStep is the per-column-distance step of the look-ahead boost:
	// a task whose written tile feeds panel k+dist gets
	// (d-dist+1)·prioFeedStep, so nearer panels win.
	prioFeedStep = 64
	// prioPanel is the priority of the panel-factorization tasks
	// (GEQRT/TSQRT) — the critical path, above every boosted update.
	prioPanel = 1 << 13
	// prioDiag is the SYRFB priority: the diagonal update gates the
	// column-(k+1) TSMQR-L chain, so it sits just under the panel tasks.
	prioDiag = prioPanel - prioFeedStep
)

// Config bundles the stage-1 tuning knobs of ReduceWith.
type Config struct {
	// NB is the tile size / bandwidth (≤ 0 → DefaultNB).
	NB int
	// Lookahead is the look-ahead depth d ≥ 1: trailing-update tasks whose
	// written tiles feed one of the next d panels get a priority boost graded
	// by proximity. ≤ 0 picks DefaultLookahead; values above MaxLookahead are
	// clamped. The depth only steers the ready queue — results are bitwise
	// identical at every depth and worker count.
	Lookahead int
	// Sequenced is the look-ahead kill-switch: it restores the flat
	// pre-look-ahead priority scheme (panel 100 / diagonal 50 / updates 0,
	// fused mirror tasks) exactly. Results are bitwise identical either way;
	// the switch exists for benchmarking and fault isolation.
	Sequenced bool
}

// clampLookahead resolves a requested depth to the valid range [1, MaxLookahead].
func clampLookahead(d int) int {
	if d <= 0 {
		return DefaultLookahead
	}
	if d > MaxLookahead {
		return MaxLookahead
	}
	return d
}

// feedBoost is the look-ahead priority of an update task whose most urgent
// written tile lies in panel column k+dist: within the depth window nearer
// columns get larger boosts; beyond it the task is ordinary trailing update.
func feedBoost(depth, dist int) int {
	if dist < 1 || dist > depth {
		return 0
	}
	return (depth - dist + 1) * prioFeedStep
}

// Factor is the output of the stage-1 reduction: the band matrix B plus the
// Householder data needed to apply Q₁ later (paper §6, Figure 3a). The
// reflectors stay packed in the tiles of A exactly where the factorization
// left them:
//
//   - tile (k+1, k): R in the upper triangle, the GEQRT reflector essentials
//     below the diagonal;
//   - tile (i, k), i > k+1: the dense part of the TS reflector that
//     annihilated that tile.
//
// When Reduce is given a workspace arena, every buffer reachable from the
// Factor (tiles, T factors, band) is arena-backed: the Factor is only valid
// until the arena is recycled.
type Factor struct {
	N  int // matrix order
	NB int // tile size == bandwidth
	NT int // tile grid order

	// A is the tile matrix after reduction (V storage).
	A *matrix.TileMatrix
	// Tge[k] is the triangular block factor of the GEQRT reflector of panel
	// k (dimension kr×kr, kr = reflector count of the panel).
	Tge [][]float64
	// Tts[k][i-(k+2)] is the factor for the TS reflector of tile (i, k).
	Tts [][][]float64
	// Band is the resulting symmetric band matrix (bandwidth NB).
	Band *matrix.SymBand

	// ws is the arena the Factor was built from (nil for one-shot use);
	// ApplyQ1 draws its sequential column-block scratch from it.
	ws *work.Arena
}

// stage1Cache bundles the Factor and reducer headers so a recycled arena
// reuses them (and the T-factor list spines) across solves.
type stage1Cache struct {
	f Factor
	r reducer
}

func stage1For(ws *work.Arena) *stage1Cache {
	if sc, ok := ws.Value(work.Stage1Factor).(*stage1Cache); ok {
		return sc
	}
	sc := &stage1Cache{}
	ws.SetValue(work.Stage1Factor, sc)
	return sc
}

// PanelReflectors returns the reflector count of panel k.
func (f *Factor) PanelReflectors(k int) int {
	return min(f.A.TileRows(k+1), f.A.TileCols(k))
}

// resource IDs for the scheduler: tiles use TileMatrix.TileID (in
// [0, NT²)); the extra virtual resources below avoid false dependences
// between readers of the V part and writers of the R part of a panel tile.
func (f *Factor) resV(k int) int   { return f.NT*f.NT + k }   // V of tile (k+1,k)
func (f *Factor) resR(k int) int   { return 2*f.NT*f.NT + k } // R of tile (k+1,k)
func (f *Factor) resTge(k int) int { return 3*f.NT*f.NT + k } // Tge[k]
func (f *Factor) resTts(k, i int) int {
	return 4*f.NT*f.NT + k*f.NT + i
}

// reducer carries the stage-1 kernel state. Every kernel method re-derives
// its geometry from the tile indices, so the sequential path can call them
// directly — no closures, no captured variables, no per-task allocations —
// while the scheduled paths wrap the same methods in tasks.
type reducer struct {
	// Busy-time accounting for the PhaseStage1Panel/Update attribution,
	// accumulated by concurrent tasks (first for 64-bit alignment).
	panelNs  int64
	updateNs int64

	f       *Factor
	tm      *matrix.TileMatrix
	tc      *trace.Collector
	scratch [][]float64 // per-worker kernel workspace, nb²+2nb floats each
}

// t0 samples the clock for busy-time attribution; zero (free) when no
// collector is attached.
func (r *reducer) t0() time.Time {
	if r.tc == nil {
		return time.Time{}
	}
	return time.Now()
}

// acc credits the time since start to a busy counter (panelNs or updateNs).
// Allocation-free, so the sequential path can call it per kernel.
func (r *reducer) acc(dst *int64, start time.Time) {
	if r.tc == nil {
		return
	}
	atomic.AddInt64(dst, int64(time.Since(start)))
}

// panelGeom returns the dimensions of panel k: rows of the panel tile,
// panel width, and reflector count.
func (r *reducer) panelGeom(k int) (m1, kw, kr int) {
	m1 = r.tm.TileRows(k + 1)
	kw = r.tm.TileCols(k)
	kr = min(m1, kw)
	return
}

// geqrt factors the top of panel k (tile (k+1, k)).
func (r *reducer) geqrt(k, w int) {
	t := r.t0()
	m1, kw, kr := r.panelGeom(k)
	Geqrt(m1, kw, r.tm.Tile(k+1, k), m1, r.f.Tge[k], kr, r.scratch[w][:kr+kw], r.tc)
	r.acc(&r.panelNs, t)
}

// syrfb applies the GEQRT reflector two-sidedly to the diagonal tile.
func (r *reducer) syrfb(k, w int) {
	t := r.t0()
	m1, _, kr := r.panelGeom(k)
	panel := r.tm.Tile(k+1, k)
	diag := r.tm.Tile(k+1, k+1)
	wk := r.scratch[w][:kr*m1]
	Ormqr(blas.Left, blas.Trans, m1, m1, kr, panel, m1, r.f.Tge[k], kr, diag, m1, wk, r.tc)
	Ormqr(blas.Right, blas.NoTrans, m1, m1, kr, panel, m1, r.f.Tge[k], kr, diag, m1, wk, r.tc)
	r.acc(&r.panelNs, t)
}

// ormqrL updates row tile (k+1, j) from the left: A[k+1][j] := Hᵀ·A[k+1][j].
func (r *reducer) ormqrL(k, j, w int) {
	t := r.t0()
	m1, _, kr := r.panelGeom(k)
	nc := r.tm.TileCols(j)
	Ormqr(blas.Left, blas.Trans, m1, nc, kr, r.tm.Tile(k+1, k), m1, r.f.Tge[k], kr,
		r.tm.Tile(k+1, j), m1, r.scratch[w][:kr*nc], r.tc)
	r.acc(&r.updateNs, t)
}

// mirror exploits symmetry: the two-sided result satisfies A[j][k+1] =
// (Hᵀ·A[k+1][j])ᵀ, so the freshly left-updated row tile is transposed into
// the column tile instead of recomputed (a copy, not flops — this is how the
// tile algorithm keeps the 4/3·n³-class cost of a symmetry-aware reduction).
func (r *reducer) mirror(k, j, _ int) {
	t := r.t0()
	m1 := r.tm.TileRows(k + 1)
	mr := r.tm.TileRows(j)
	transposeTile(r.tm.Tile(k+1, j), m1, mr, r.tm.Tile(j, k+1))
	r.acc(&r.updateNs, t)
}

// tsqrt couples tile (i, k) into the panel's R factor.
func (r *reducer) tsqrt(k, i, w int) {
	t := r.t0()
	m1, kw, _ := r.panelGeom(k)
	m2 := r.tm.TileRows(i)
	Tsqrt(kw, m2, r.tm.Tile(k+1, k), m1, r.tm.Tile(i, k), m2,
		r.f.Tts[k][i-(k+2)], kw, r.scratch[w][:kw], r.tc)
	r.acc(&r.panelNs, t)
}

// tsmqrL applies the TS reflector of (i, k) from the left to row pair
// (k+1, i), column j.
func (r *reducer) tsmqrL(k, i, j, w int) {
	t := r.t0()
	m1 := r.tm.TileRows(k + 1)
	kw := r.tm.TileCols(k)
	m2 := r.tm.TileRows(i)
	nc := r.tm.TileCols(j)
	Tsmqr(blas.Left, blas.Trans, kw, nc, 0, m2,
		r.tm.Tile(k+1, j), m1, r.tm.Tile(i, j), m2,
		r.tm.Tile(i, k), m2, r.f.Tts[k][i-(k+2)], kw, r.scratch[w][:kw*nc], r.tc)
	r.acc(&r.updateNs, t)
}

// tsmqrC applies the TS reflector of (i, k) from the right to column pair
// (k+1, i), row `row` — only rows {k+1, i} need real computation; the rest
// are mirrored (see mirror2).
func (r *reducer) tsmqrC(k, i, row, w int) {
	t := r.t0()
	kw := r.tm.TileCols(k)
	m2 := r.tm.TileRows(i)
	mr := r.tm.TileRows(row)
	Tsmqr(blas.Right, blas.NoTrans, kw, 0, mr, m2,
		r.tm.Tile(row, k+1), mr, r.tm.Tile(row, i), mr,
		r.tm.Tile(i, k), m2, r.f.Tts[k][i-(k+2)], kw, r.scratch[w][:mr*kw], r.tc)
	r.acc(&r.updateNs, t)
}

// mirror2 transposes the freshly left-updated row tiles of pair (k+1, i)
// into the corresponding column tiles of row `row` (symmetry exploitation,
// as in mirror). The sequenced path runs it fused; the look-ahead path
// splits it into mirror2a/mirror2b so the column-(k+1) half — which the next
// panel's TSQRT chain reads — is an independent task that does not wait
// behind, or share a ready-queue slot with, the column-i half.
func (r *reducer) mirror2(k, i, row, w int) {
	r.mirror2a(k, i, row, w)
	r.mirror2b(k, i, row, w)
}

// mirror2a is the column-(k+1) half of mirror2: tile (row, k+1) ← (k+1, row)ᵀ.
func (r *reducer) mirror2a(k, _, row, _ int) {
	t := r.t0()
	m1 := r.tm.TileRows(k + 1)
	mr := r.tm.TileRows(row)
	transposeTile(r.tm.Tile(k+1, row), m1, mr, r.tm.Tile(row, k+1))
	r.acc(&r.updateNs, t)
}

// mirror2b is the column-i half of mirror2: tile (row, i) ← (i, row)ᵀ.
func (r *reducer) mirror2b(_, i, row, _ int) {
	t := r.t0()
	m2 := r.tm.TileRows(i)
	mr := r.tm.TileRows(row)
	transposeTile(r.tm.Tile(i, row), m2, mr, r.tm.Tile(row, i))
	r.acc(&r.updateNs, t)
}

// Reduce runs the stage-1 reduction of the dense symmetric matrix a (both
// triangles must be filled) to band form with bandwidth nb, with the default
// look-ahead depth. See ReduceWith for the knobs.
func Reduce(a *matrix.Dense, nb int, job *sched.Job, ws *work.Arena, tc *trace.Collector) *Factor {
	return ReduceWith(a, Config{NB: nb}, job, ws, tc)
}

// ReduceWith runs the stage-1 reduction of the dense symmetric matrix a
// (both triangles must be filled) to band form under the given Config.
//
// job selects the execution mode: a nil job (or one created with
// sched.Inline) runs the kernels sequentially in submission order — the
// reference execution the scheduled ones must match bit-for-bit — while a
// scheduler-backed job runs the DAG on the worker pool, under the look-ahead
// priority scheme unless cfg.Sequenced restores the flat one. All three
// modes produce bitwise-identical factors: the task set and per-tile
// operation order never change, only readiness and ready-queue order do. If
// the job is canceled the reduction stops at a task boundary and the
// Factor's contents are unspecified; the caller must check job.Err. ws may
// be nil (fresh allocations); when non-nil the returned Factor is
// arena-backed and only valid until the arena is recycled. tc may be nil;
// when set, the stage's busy time is attributed to PhaseStage1Panel and
// PhaseStage1Update and the scheduled run's idle worker-time to
// PhaseStage1Stall.
func ReduceWith(a *matrix.Dense, cfg Config, job *sched.Job, ws *work.Arena, tc *trace.Collector) *Factor {
	n := a.Rows
	if a.Cols != n {
		panic("band: Reduce requires a square matrix")
	}
	nb := cfg.NB
	if nb <= 0 {
		nb = DefaultNB
	}
	tm := ws.Tiles(work.Stage1Tiles, n, nb)
	tm.FromLapack(a)
	sc := stage1For(ws)
	f := &sc.f
	tge, tts := f.Tge, f.Tts
	*f = Factor{N: n, NB: nb, NT: tm.NT, A: tm, ws: ws}
	nt := f.NT

	// Carve every T factor out of one slab: the per-panel counts are known
	// up front, so size it exactly and hand out zeroed slices. The list
	// spines (Tge, Tts and its per-panel rows) are retained across solves.
	capT := 0
	for k := 0; k < nt-1; k++ {
		m1 := tm.TileRows(k + 1)
		kw := tm.TileCols(k)
		kr := min(m1, kw)
		capT += kr*kr + max(0, nt-k-2)*kw*kw
	}
	slab := ws.SlabOf(work.Stage1Slab, capT)
	np := max(0, nt-1)
	if cap(tge) < np {
		tge = make([][]float64, np)
	}
	if cap(tts) < np {
		tts = make([][][]float64, np)
	}
	f.Tge = tge[:np]
	f.Tts = tts[:np]
	for k := 0; k < nt-1; k++ {
		m1 := tm.TileRows(k + 1)
		kw := tm.TileCols(k)
		kr := min(m1, kw)
		f.Tge[k] = slab.Take(kr * kr)
		nts := max(0, nt-k-2)
		if cap(f.Tts[k]) < nts {
			f.Tts[k] = make([][]float64, nts)
		}
		f.Tts[k] = f.Tts[k][:nts]
		for i := k + 2; i < nt; i++ {
			f.Tts[k][i-(k+2)] = slab.Take(kw * kw)
		}
	}

	r := &sc.r
	*r = reducer{
		f: f, tm: tm, tc: tc,
		scratch: ws.PerWorker(work.Stage1Scratch, job.Workers(), nb*nb+2*nb),
	}
	workers := job.Workers()
	var start time.Time
	if tc != nil {
		start = time.Now()
	}
	if job.Parallel() {
		if cfg.Sequenced {
			r.scheduleSequenced(job)
		} else {
			r.scheduleLookahead(job, clampLookahead(cfg.Lookahead))
		}
		job.Wait() // error, if any, surfaces through job.Err at the caller
	} else {
		r.runSeq(job)
	}
	if tc != nil {
		wall := time.Since(start)
		panel := time.Duration(atomic.LoadInt64(&r.panelNs))
		update := time.Duration(atomic.LoadInt64(&r.updateNs))
		tc.AddPhase(trace.PhaseStage1Panel, panel)
		tc.AddPhase(trace.PhaseStage1Update, update)
		// Idle worker-time: the stage held `workers` workers for `wall` but
		// only panel+update of worker-time was busy. Clamped at zero — timer
		// skew can make busy marginally exceed the product on tiny problems.
		if stall := time.Duration(workers)*wall - panel - update; stall > 0 {
			tc.AddPhase(trace.PhaseStage1Stall, stall)
		}
	}
	f.Band = extractBand(tm, nb, ws)
	return f
}

// runSeq executes the kernel sequence in submission order on the calling
// goroutine, with a cancellation check per panel. It performs no per-task
// allocations.
func (r *reducer) runSeq(job *sched.Job) {
	nt := r.f.NT
	for k := 0; k < nt-1; k++ {
		if job.Canceled() {
			return
		}
		r.geqrt(k, 0)
		r.syrfb(k, 0)
		for j := k + 2; j < nt; j++ {
			r.ormqrL(k, j, 0)
			r.mirror(k, j, 0)
		}
		for i := k + 2; i < nt; i++ {
			r.tsqrt(k, i, 0)
			for j := k + 1; j < nt; j++ {
				r.tsmqrL(k, i, j, 0)
			}
			r.tsmqrC(k, i, k+1, 0)
			r.tsmqrC(k, i, i, 0)
			for row := k + 1; row < nt; row++ {
				if row == k+1 || row == i {
					continue
				}
				r.mirror2(k, i, row, 0)
			}
		}
	}
}

// scheduleSequenced submits the same kernel sequence as tasks with their
// access lists; the scheduler infers the DAG from submission order. This is
// the pre-look-ahead scheme (flat priorities, fused MIRROR2 tasks), kept
// verbatim as the Sequenced kill-switch path.
func (r *reducer) scheduleSequenced(job *sched.Job) {
	f, tm, nt := r.f, r.tm, r.f.NT
	for k := 0; k < nt-1; k++ {
		k := k
		// GEQRT on tile (k+1, k): factor the top of the panel.
		job.Submit(sched.Task{
			Name:     taskName("GEQRT", k+1, k),
			Priority: 100, // panel tasks are on the critical path
			Deps: []sched.Dep{
				sched.RW(tm.TileID(k+1, k)), sched.W(f.resV(k)), sched.W(f.resR(k)), sched.W(f.resTge(k)),
			},
			Run: func(w int) { r.geqrt(k, w) },
		})

		// Apply the GEQRT reflector two-sidedly to the trailing submatrix.
		// Diagonal tile: Hᵀ·A·H in one task.
		job.Submit(sched.Task{
			Name:     taskName("SYRFB", k+1, k+1),
			Priority: 50,
			Deps: []sched.Dep{
				sched.RW(tm.TileID(k+1, k+1)), sched.R(f.resV(k)), sched.R(f.resTge(k)),
			},
			Run: func(w int) { r.syrfb(k, w) },
		})
		for j := k + 2; j < nt; j++ {
			j := j
			job.Submit(sched.Task{
				Name: taskName("ORMQR-L", k+1, j),
				Deps: []sched.Dep{
					sched.RW(tm.TileID(k+1, j)), sched.R(f.resV(k)), sched.R(f.resTge(k)),
				},
				Run: func(w int) { r.ormqrL(k, j, w) },
			})
			job.Submit(sched.Task{
				Name: taskName("MIRROR", j, k+1),
				Deps: []sched.Dep{
					sched.W(tm.TileID(j, k+1)), sched.R(tm.TileID(k+1, j)),
				},
				Run: func(w int) { r.mirror(k, j, w) },
			})
		}

		// TSQRT chain down the panel, each followed by its two-sided
		// application to row/column pairs (k+1, i).
		for i := k + 2; i < nt; i++ {
			i := i
			job.Submit(sched.Task{
				Name:     taskName("TSQRT", i, k),
				Priority: 100,
				Deps: []sched.Dep{
					sched.RW(f.resR(k)), sched.RW(tm.TileID(i, k)), sched.W(f.resTts(k, i)),
				},
				Run: func(w int) { r.tsqrt(k, i, w) },
			})
			// Left on row pair (k+1, i), every column k+1..nt-1.
			for j := k + 1; j < nt; j++ {
				j := j
				job.Submit(sched.Task{
					Name: taskName("TSMQR-L", i, j),
					Deps: []sched.Dep{
						sched.RW(tm.TileID(k+1, j)), sched.RW(tm.TileID(i, j)),
						sched.R(tm.TileID(i, k)), sched.R(f.resTts(k, i)),
					},
					Run: func(w int) { r.tsmqrL(k, i, j, w) },
				})
			}
			// Right on column pair (k+1, i). Only the 2×2 corner (rows
			// {k+1, i}) needs real computation; every other row is the
			// transpose of a freshly left-updated tile — mirror it.
			for _, row := range [2]int{k + 1, i} {
				row := row
				job.Submit(sched.Task{
					Name: taskName("TSMQR-C", row, i),
					Deps: []sched.Dep{
						sched.RW(tm.TileID(row, k+1)), sched.RW(tm.TileID(row, i)),
						sched.R(tm.TileID(i, k)), sched.R(f.resTts(k, i)),
					},
					Run: func(w int) { r.tsmqrC(k, i, row, w) },
				})
			}
			for row := k + 1; row < nt; row++ {
				if row == k+1 || row == i {
					continue
				}
				row := row
				job.Submit(sched.Task{
					Name: taskName("MIRROR2", row, i),
					Deps: []sched.Dep{
						sched.W(tm.TileID(row, k+1)), sched.R(tm.TileID(k+1, row)),
						sched.W(tm.TileID(row, i)), sched.R(tm.TileID(i, row)),
					},
					Run: func(w int) { r.mirror2(k, i, row, w) },
				})
			}
		}
	}
}

// scheduleLookahead submits the identical kernel sequence — same tasks (bar
// the MIRROR2 split), same per-tile submission order, so the DAG and the
// results are unchanged — under the look-ahead priority scheme: panel tasks
// (GEQRT/TSQRT) at prioPanel, the diagonal SYRFB just under them, and every
// trailing-update task boosted by feedBoost according to the nearest future
// panel column it writes, out to `depth` panels ahead. The one structural
// change is MIRROR2 → MIRROR2A + MIRROR2B: the fused task coupled a
// critical-path column-(k+1) write to a non-critical column-i write, which
// would hold the next panel's TSQRT chain behind slack work; the halves touch
// disjoint tiles, so splitting them preserves each tile's write order.
//
// Bitwise identity holds because priorities only reorder the ready queue:
// which tasks may run concurrently is fixed by the dependences, and every
// per-tile operation sequence is a dependence chain, so no floating-point
// accumulation order can change. Priorities stay ≤ prioPanel = 2¹³, strictly
// below the batch pipeline's 2¹⁶ per-phase drain bias (Job.SetBias), so phase
// ordering across pipelined solves is also unaffected.
func (r *reducer) scheduleLookahead(job *sched.Job, depth int) {
	f, tm, nt := r.f, r.tm, r.f.NT
	for k := 0; k < nt-1; k++ {
		k := k
		job.Submit(sched.Task{
			Name:     taskName("GEQRT", k+1, k),
			Priority: prioPanel,
			Deps: []sched.Dep{
				sched.RW(tm.TileID(k+1, k)), sched.W(f.resV(k)), sched.W(f.resR(k)), sched.W(f.resTge(k)),
			},
			Run: func(w int) { r.geqrt(k, w) },
		})

		// The diagonal update gates the column-(k+1) TSMQR-L chain — just
		// under the panel tasks.
		job.Submit(sched.Task{
			Name:     taskName("SYRFB", k+1, k+1),
			Priority: prioDiag,
			Deps: []sched.Dep{
				sched.RW(tm.TileID(k+1, k+1)), sched.R(f.resV(k)), sched.R(f.resTge(k)),
			},
			Run: func(w int) { r.syrfb(k, w) },
		})
		for j := k + 2; j < nt; j++ {
			j := j
			// ORMQR-L feeds MIRROR, whose output tile (j, k+1) the next
			// panel's TSQRT chain reads: both are distance-1 feeders.
			job.Submit(sched.Task{
				Name:     taskName("ORMQR-L", k+1, j),
				Priority: feedBoost(depth, 1),
				Deps: []sched.Dep{
					sched.RW(tm.TileID(k+1, j)), sched.R(f.resV(k)), sched.R(f.resTge(k)),
				},
				Run: func(w int) { r.ormqrL(k, j, w) },
			})
			job.Submit(sched.Task{
				Name:     taskName("MIRROR", j, k+1),
				Priority: feedBoost(depth, 1),
				Deps: []sched.Dep{
					sched.W(tm.TileID(j, k+1)), sched.R(tm.TileID(k+1, j)),
				},
				Run: func(w int) { r.mirror(k, j, w) },
			})
		}

		for i := k + 2; i < nt; i++ {
			i := i
			job.Submit(sched.Task{
				Name:     taskName("TSQRT", i, k),
				Priority: prioPanel,
				Deps: []sched.Dep{
					sched.RW(f.resR(k)), sched.RW(tm.TileID(i, k)), sched.W(f.resTts(k, i)),
				},
				Run: func(w int) { r.tsqrt(k, i, w) },
			})
			for j := k + 1; j < nt; j++ {
				j := j
				// Writes column j, which panel j factors: distance j−k.
				job.Submit(sched.Task{
					Name:     taskName("TSMQR-L", i, j),
					Priority: feedBoost(depth, j-k),
					Deps: []sched.Dep{
						sched.RW(tm.TileID(k+1, j)), sched.RW(tm.TileID(i, j)),
						sched.R(tm.TileID(i, k)), sched.R(f.resTts(k, i)),
					},
					Run: func(w int) { r.tsmqrL(k, i, j, w) },
				})
			}
			for _, row := range [2]int{k + 1, i} {
				row := row
				// Writes tile (row, k+1) — the next panel's column.
				job.Submit(sched.Task{
					Name:     taskName("TSMQR-C", row, i),
					Priority: feedBoost(depth, 1),
					Deps: []sched.Dep{
						sched.RW(tm.TileID(row, k+1)), sched.RW(tm.TileID(row, i)),
						sched.R(tm.TileID(i, k)), sched.R(f.resTts(k, i)),
					},
					Run: func(w int) { r.tsmqrC(k, i, row, w) },
				})
			}
			for row := k + 1; row < nt; row++ {
				if row == k+1 || row == i {
					continue
				}
				row := row
				job.Submit(sched.Task{
					Name:     taskName("MIRROR2A", row, i),
					Priority: feedBoost(depth, 1),
					Deps: []sched.Dep{
						sched.W(tm.TileID(row, k+1)), sched.R(tm.TileID(k+1, row)),
					},
					Run: func(w int) { r.mirror2a(k, i, row, w) },
				})
				job.Submit(sched.Task{
					Name:     taskName("MIRROR2B", row, i),
					Priority: feedBoost(depth, i-k),
					Deps: []sched.Dep{
						sched.W(tm.TileID(row, i)), sched.R(tm.TileID(i, row)),
					},
					Run: func(w int) { r.mirror2b(k, i, row, w) },
				})
			}
		}
	}
}

// extractBand reads the band part out of the reduced tile matrix: the lower
// triangles of the diagonal tiles plus the R triangles of the subdiagonal
// tiles (everything below R is reflector storage, logically zero). The band
// storage comes zeroed from the arena, so only in-band entries are written.
func extractBand(tm *matrix.TileMatrix, nb int, ws *work.Arena) *matrix.SymBand {
	n := tm.N
	b := ws.Band(work.Stage2Band, n, min(nb, max(0, n-1)))
	for j := 0; j < n; j++ {
		jmax := min(n-1, j+b.KD)
		for i := j; i <= jmax; i++ {
			ti, tj := i/nb, j/nb
			if ti == tj {
				b.Set(i, j, tm.At(i, j))
			} else if ti == tj+1 {
				// Subdiagonal tile: only its upper triangle (R) is matrix
				// data.
				ri, ci := i-ti*nb, j-tj*nb
				if ri <= ci {
					b.Set(i, j, tm.At(i, j))
				}
			}
			// ti > tj+1 is reflector storage: zero in B.
		}
	}
	return b
}

// transposeTile writes dst := srcᵀ, where src is an r×c compact column-major
// tile and dst is c×r.
func transposeTile(src []float64, r, c int, dst []float64) {
	for j := 0; j < c; j++ {
		col := src[j*r : j*r+r]
		for i, v := range col {
			dst[j+i*c] = v
		}
	}
}

func taskName(kind string, i, j int) string {
	// Small helper to keep task submission readable; names only matter for
	// traces.
	return kind + "(" + itoa(i) + "," + itoa(j) + ")"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for v > 0 {
		p--
		buf[p] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[p:])
}
