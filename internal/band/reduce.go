package band

import (
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
)

// DefaultNB is the default tile size / bandwidth for stage 1. The paper's
// model (§7.1) puts the sweet spot at 120–200 on a 48-core Opteron; on this
// substrate smaller tiles balance the two stages (see cmd/eigtune).
const DefaultNB = 48

// Factor is the output of the stage-1 reduction: the band matrix B plus the
// Householder data needed to apply Q₁ later (paper §6, Figure 3a). The
// reflectors stay packed in the tiles of A exactly where the factorization
// left them:
//
//   - tile (k+1, k): R in the upper triangle, the GEQRT reflector essentials
//     below the diagonal;
//   - tile (i, k), i > k+1: the dense part of the TS reflector that
//     annihilated that tile.
type Factor struct {
	N  int // matrix order
	NB int // tile size == bandwidth
	NT int // tile grid order

	// A is the tile matrix after reduction (V storage).
	A *matrix.TileMatrix
	// Tge[k] is the triangular block factor of the GEQRT reflector of panel
	// k (dimension kr×kr, kr = reflector count of the panel).
	Tge [][]float64
	// Tts[k][i-(k+2)] is the factor for the TS reflector of tile (i, k).
	Tts [][][]float64
	// Band is the resulting symmetric band matrix (bandwidth NB).
	Band *matrix.SymBand
}

// PanelReflectors returns the reflector count of panel k.
func (f *Factor) PanelReflectors(k int) int {
	return min(f.A.TileRows(k+1), f.A.TileCols(k))
}

// resource IDs for the scheduler: tiles use TileMatrix.TileID (in
// [0, NT²)); the extra virtual resources below avoid false dependences
// between readers of the V part and writers of the R part of a panel tile.
func (f *Factor) resV(k int) int   { return f.NT*f.NT + k }          // V of tile (k+1,k)
func (f *Factor) resR(k int) int   { return 2*f.NT*f.NT + k }        // R of tile (k+1,k)
func (f *Factor) resTge(k int) int { return 3*f.NT*f.NT + k }        // Tge[k]
func (f *Factor) resTts(k, i int) int {
	return 4*f.NT*f.NT + k*f.NT + i
}

// Reduce runs the DAG-scheduled stage-1 reduction of the dense symmetric
// matrix a (both triangles must be filled) to band form with bandwidth nb.
// If s is nil the tasks run sequentially in submission order, which is the
// reference execution the scheduled one must match bit-for-bit (each tile
// sees the same operation sequence either way). tc may be nil.
func Reduce(a *matrix.Dense, nb int, s *sched.Scheduler, tc *trace.Collector) *Factor {
	n := a.Rows
	if a.Cols != n {
		panic("band: Reduce requires a square matrix")
	}
	if nb <= 0 {
		nb = DefaultNB
	}
	tm := matrix.NewTileMatrix(n, nb)
	tm.FromLapack(a)
	f := &Factor{N: n, NB: nb, NT: tm.NT, A: tm}
	f.Tge = make([][]float64, max(0, f.NT-1))
	f.Tts = make([][][]float64, max(0, f.NT-1))

	submit := func(t sched.Task) {
		if s == nil {
			t.Run(0)
		} else {
			s.Submit(t)
		}
	}

	nt := f.NT
	for k := 0; k < nt-1; k++ {
		k := k
		m1 := tm.TileRows(k + 1)
		kw := tm.TileCols(k) // panel width (== nb except never: k < nt-1)
		kr := min(m1, kw)
		f.Tge[k] = make([]float64, kr*kr)
		f.Tts[k] = make([][]float64, max(0, nt-k-2))

		panel := tm.Tile(k+1, k)
		tge := f.Tge[k]

		// GEQRT on tile (k+1, k): factor the top of the panel.
		submit(sched.Task{
			Name:     taskName("GEQRT", k+1, k),
			Priority: 100, // panel tasks are on the critical path
			Deps: []sched.Dep{
				sched.RW(tm.TileID(k+1, k)), sched.W(f.resV(k)), sched.W(f.resR(k)), sched.W(f.resTge(k)),
			},
			Run: func(int) {
				work := make([]float64, kr+kw)
				Geqrt(m1, kw, panel, m1, tge, kr, work, tc)
			},
		})

		// Apply the GEQRT reflector two-sidedly to the trailing submatrix.
		// Diagonal tile: Hᵀ·A·H in one task.
		diag := tm.Tile(k+1, k+1)
		submit(sched.Task{
			Name:     taskName("SYRFB", k+1, k+1),
			Priority: 50,
			Deps: []sched.Dep{
				sched.RW(tm.TileID(k+1, k+1)), sched.R(f.resV(k)), sched.R(f.resTge(k)),
			},
			Run: func(int) {
				work := make([]float64, kr*m1)
				Ormqr(blas.Left, blas.Trans, m1, m1, kr, panel, m1, tge, kr, diag, m1, work, tc)
				Ormqr(blas.Right, blas.NoTrans, m1, m1, kr, panel, m1, tge, kr, diag, m1, work, tc)
			},
		})
		for j := k + 2; j < nt; j++ {
			j := j
			nc := tm.TileCols(j)
			// Left on row k+1: A[k+1][j] := Hᵀ·A[k+1][j].
			rowT := tm.Tile(k+1, j)
			submit(sched.Task{
				Name: taskName("ORMQR-L", k+1, j),
				Deps: []sched.Dep{
					sched.RW(tm.TileID(k+1, j)), sched.R(f.resV(k)), sched.R(f.resTge(k)),
				},
				Run: func(int) {
					work := make([]float64, kr*nc)
					Ormqr(blas.Left, blas.Trans, m1, nc, kr, panel, m1, tge, kr, rowT, m1, work, tc)
				},
			})
			// Right on column k+1 exploits symmetry: the two-sided result
			// satisfies A[j][k+1] = (Hᵀ·A[k+1][j])ᵀ, so mirror the freshly
			// left-updated tile instead of recomputing (a copy, not flops —
			// this is how the tile algorithm keeps the 4/3·n³-class cost of
			// a symmetry-aware reduction).
			colT := tm.Tile(j, k+1)
			mr := tm.TileRows(j)
			submit(sched.Task{
				Name: taskName("MIRROR", j, k+1),
				Deps: []sched.Dep{
					sched.W(tm.TileID(j, k+1)), sched.R(tm.TileID(k+1, j)),
				},
				Run: func(int) {
					transposeTile(rowT, m1, mr, colT)
				},
			})
		}

		// TSQRT chain down the panel, each followed by its two-sided
		// application to row/column pairs (k+1, i).
		for i := k + 2; i < nt; i++ {
			i := i
			m2 := tm.TileRows(i)
			tts := make([]float64, kw*kw)
			f.Tts[k][i-(k+2)] = tts
			vtile := tm.Tile(i, k)
			submit(sched.Task{
				Name:     taskName("TSQRT", i, k),
				Priority: 100,
				Deps: []sched.Dep{
					sched.RW(f.resR(k)), sched.RW(tm.TileID(i, k)), sched.W(f.resTts(k, i)),
				},
				Run: func(int) {
					work := make([]float64, kw)
					Tsqrt(kw, m2, panel, m1, vtile, m2, tts, kw, work, tc)
				},
			})
			// Left on row pair (k+1, i), every column k+1..nt-1.
			for j := k + 1; j < nt; j++ {
				j := j
				nc := tm.TileCols(j)
				a1 := tm.Tile(k+1, j)
				a2 := tm.Tile(i, j)
				submit(sched.Task{
					Name: taskName("TSMQR-L", i, j),
					Deps: []sched.Dep{
						sched.RW(tm.TileID(k+1, j)), sched.RW(tm.TileID(i, j)),
						sched.R(tm.TileID(i, k)), sched.R(f.resTts(k, i)),
					},
					Run: func(int) {
						work := make([]float64, kw*nc)
						Tsmqr(blas.Left, blas.Trans, kw, nc, 0, m2, a1, m1, a2, m2, vtile, m2, tts, kw, work, tc)
					},
				})
			}
			// Right on column pair (k+1, i). Only the 2×2 corner (rows
			// {k+1, i}) needs real computation; every other row is the
			// transpose of a freshly left-updated tile — mirror it
			// (symmetry exploitation, as above).
			for _, r := range []int{k + 1, i} {
				r := r
				mr := tm.TileRows(r)
				a1 := tm.Tile(r, k+1)
				a2 := tm.Tile(r, i)
				submit(sched.Task{
					Name: taskName("TSMQR-C", r, i),
					Deps: []sched.Dep{
						sched.RW(tm.TileID(r, k+1)), sched.RW(tm.TileID(r, i)),
						sched.R(tm.TileID(i, k)), sched.R(f.resTts(k, i)),
					},
					Run: func(int) {
						work := make([]float64, mr*kw)
						Tsmqr(blas.Right, blas.NoTrans, kw, 0, mr, m2, a1, mr, a2, mr, vtile, m2, tts, kw, work, tc)
					},
				})
			}
			for r := k + 1; r < nt; r++ {
				if r == k+1 || r == i {
					continue
				}
				r := r
				mr := tm.TileRows(r)
				src1 := tm.Tile(k+1, r)
				dst1 := tm.Tile(r, k+1)
				src2 := tm.Tile(i, r)
				dst2 := tm.Tile(r, i)
				submit(sched.Task{
					Name: taskName("MIRROR2", r, i),
					Deps: []sched.Dep{
						sched.W(tm.TileID(r, k+1)), sched.R(tm.TileID(k+1, r)),
						sched.W(tm.TileID(r, i)), sched.R(tm.TileID(i, r)),
					},
					Run: func(int) {
						transposeTile(src1, m1, mr, dst1)
						transposeTile(src2, m2, mr, dst2)
					},
				})
			}
		}
	}
	if s != nil {
		s.Wait()
	}
	f.Band = extractBand(tm, nb)
	return f
}

// extractBand reads the band part out of the reduced tile matrix: the lower
// triangles of the diagonal tiles plus the R triangles of the subdiagonal
// tiles (everything below R is reflector storage, logically zero).
func extractBand(tm *matrix.TileMatrix, nb int) *matrix.SymBand {
	n := tm.N
	b := matrix.NewSymBand(n, min(nb, max(0, n-1)))
	for j := 0; j < n; j++ {
		jmax := min(n-1, j+b.KD)
		for i := j; i <= jmax; i++ {
			ti, tj := i/nb, j/nb
			if ti == tj {
				b.Set(i, j, tm.At(i, j))
			} else if ti == tj+1 {
				// Subdiagonal tile: only its upper triangle (R) is matrix
				// data.
				ri, ci := i-ti*nb, j-tj*nb
				if ri <= ci {
					b.Set(i, j, tm.At(i, j))
				}
			}
			// ti > tj+1 is reflector storage: zero in B.
		}
	}
	return b
}

// transposeTile writes dst := srcᵀ, where src is an r×c compact column-major
// tile and dst is c×r.
func transposeTile(src []float64, r, c int, dst []float64) {
	for j := 0; j < c; j++ {
		col := src[j*r : j*r+r]
		for i, v := range col {
			dst[j+i*c] = v
		}
	}
}

func taskName(kind string, i, j int) string {
	// Small helper to keep task submission readable; names only matter for
	// traces.
	return kind + "(" + itoa(i) + "," + itoa(j) + ")"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for v > 0 {
		p--
		buf[p] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[p:])
}
