package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/backtransform"
	"repro/internal/band"
	"repro/internal/bulge"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// AblationGroup isolates the paper's central back-transformation trade-off
// (§6, contribution 3): applying the Q₂ reflectors one by one (Level 2,
// memory-bound) versus aggregated into diamonds of increasing width
// (Level 3, extra flops for the T factors but far better reuse). group=0
// row is the naive one-at-a-time reference.
func AblationGroup(n, nb int, groups []int) *Table {
	a := matFor(n)
	f := band.Reduce(a, nb, nil, nil, nil)
	res := bulge.Chase(f.Band, nil, 0, true, nil, nil)
	e := matFor(n) // any dense n×n stands in for the eigenvector matrix
	t := &Table{
		Name:    fmt.Sprintf("Ablation — Q2 application: naive vs diamond group width (n=%d, nb=%d)", n, nb),
		Headers: []string{"group", "time", "speedup vs naive"},
	}
	run := func(group int) time.Duration {
		work := e.Clone()
		start := time.Now()
		if group == 0 {
			backtransform.ApplyNaive(res, work, nil)
		} else {
			backtransform.NewPlan(res, group, nil).Apply(work, nil, 0, nil)
		}
		return time.Since(start)
	}
	base := run(0)
	t.Rows = append(t.Rows, []string{"naive (1 reflector)", secs(base), "1.00"})
	for _, g := range groups {
		d := run(g)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", g), secs(d), f2(base.Seconds() / d.Seconds())})
	}
	t.Notes = append(t.Notes,
		"the paper's claim: aggregation adds a small extra cost but removes the memory-bound behaviour; speedup should grow with group width and saturate.")
	return t
}

// AblationStage2Cores measures the bulge-chasing stage under different
// worker counts and with the paper's core restriction. On this single-core
// host the wall-clock differences mainly show scheduling overhead; the
// experiment demonstrates the mechanism and reports task counts.
func AblationStage2Cores(n, nb int, workerCounts []int) *Table {
	a := matFor(n)
	f := band.Reduce(a, nb, nil, nil, nil)
	t := &Table{
		Name:    fmt.Sprintf("Ablation — stage-2 scheduling (n=%d, nb=%d)", n, nb),
		Headers: []string{"mode", "time"},
	}
	start := time.Now()
	bulge.Chase(f.Band, nil, 0, true, nil, nil)
	t.Rows = append(t.Rows, []string{"sequential", secs(time.Since(start))})
	for _, wkr := range workerCounts {
		s := sched.New(wkr)
		start = time.Now()
		bulge.Chase(f.Band, s.NewJob(nil), 0, true, nil, nil)
		d := time.Since(start)
		s.Shutdown()
		t.Rows = append(t.Rows, []string{fmt.Sprintf("dynamic, %d workers", wkr), secs(d)})
	}
	// Core restriction: many workers available, chase confined to 1.
	s := sched.New(4)
	start = time.Now()
	bulge.Chase(f.Band, s.NewJob(nil), 0b1, true, nil, nil)
	d := time.Since(start)
	s.Shutdown()
	t.Rows = append(t.Rows, []string{"dynamic, 4 workers, restricted to 1 (paper's locality trick)", secs(d)})
	// Static progress-table runtime, the paper's other mode.
	for _, wkr := range workerCounts {
		start = time.Now()
		bulge.ChaseStatic(context.Background(), f.Band, wkr, true, nil, nil)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("static, %d workers", wkr), secs(time.Since(start))})
	}
	t.Notes = append(t.Notes,
		"the paper restricts this memory-bound stage to few cores to cut coherence traffic; on >1-core hosts the restricted run should beat the unrestricted one at equal worker counts.")
	return t
}

// AblationStage1Sched compares the DAG-scheduled stage 1 against its
// sequential task order at several widths, reporting wall time and
// confirming the bitwise-identical results that the dependence tracking
// guarantees.
func AblationStage1Sched(n, nb int, workerCounts []int) *Table {
	a := matFor(n)
	t := &Table{
		Name:    fmt.Sprintf("Ablation — stage-1 DAG scheduling (n=%d, nb=%d)", n, nb),
		Headers: []string{"mode", "time", "band equals sequential"},
	}
	start := time.Now()
	ref := band.Reduce(a.Clone(), nb, nil, nil, nil)
	t.Rows = append(t.Rows, []string{"sequential", secs(time.Since(start)), "-"})
	for _, wkr := range workerCounts {
		s := sched.New(wkr)
		start = time.Now()
		got := band.Reduce(a.Clone(), nb, s.NewJob(nil), nil, nil)
		d := time.Since(start)
		s.Shutdown()
		equal := bandsEqual(ref.Band, got.Band)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("dynamic, %d workers", wkr), secs(d), fmt.Sprintf("%v", equal)})
	}
	return t
}

func bandsEqual(a, b *matrix.SymBand) bool {
	if a.N != b.N || a.KD != b.KD {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}
