package bench

import (
	"fmt"
	"time"

	"repro/internal/backtransform"
	"repro/internal/band"
	"repro/internal/blas"
	"repro/internal/bulge"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/tune"
	"repro/internal/work"
)

// BacktransPoint is one measured configuration of the fused-vs-legacy
// back-transformation comparison, in the machine-readable form that
// cmd/eigbench serializes to BENCH_backtrans.json.
type BacktransPoint struct {
	N          int     `json:"n"`
	NB         int     `json:"nb"`
	Workers    int     `json:"workers"`
	ColBlock   int     `json:"col_block"`
	LegacySecs float64 `json:"legacy_secs"`
	FusedSecs  float64 `json:"fused_secs"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"bitwise_identical"`
}

// backtransFixture is the per-size state of the comparison: one reduction,
// one chase, one Q₂ plan, and a dense stand-in for the eigenvector matrix.
type backtransFixture struct {
	f    *band.Factor
	plan *backtransform.Plan
	e    *matrix.Dense
}

func newBacktransFixture(n, nb int, ws *work.Arena) *backtransFixture {
	a := matFor(n)
	f := band.Reduce(a, nb, nil, ws, nil)
	res := bulge.Chase(f.Band, nil, 0, true, ws, nil)
	return &backtransFixture{
		f:    f,
		plan: backtransform.NewPlan(res, 0, ws),
		e:    matFor(n), // any dense n×n stands in for the eigenvector matrix
	}
}

// legacy runs the two-phase path (Q₂ sweep, barrier, Q₁ sweep) on a copy of
// E and returns the elapsed time and the result.
func (fx *backtransFixture) legacy(s *sched.Scheduler, colBlock int, dst *matrix.Dense) time.Duration {
	dst.CopyFrom(fx.e)
	var j1, j2 *sched.Job
	if s != nil {
		j1, j2 = s.NewJob(nil), s.NewJob(nil)
	}
	start := time.Now()
	fx.plan.Apply(dst, j1, colBlock, nil)
	fx.f.ApplyQ1(blas.NoTrans, dst, j2, colBlock, nil)
	return time.Since(start)
}

// fused runs the single-pass path on a copy of E.
func (fx *backtransFixture) fused(s *sched.Scheduler, colBlock int, dst *matrix.Dense) time.Duration {
	dst.CopyFrom(fx.e)
	var job *sched.Job
	if s != nil {
		job = s.NewJob(nil)
	}
	start := time.Now()
	fx.plan.ApplyFused(fx.f, dst, job, colBlock, nil)
	return time.Since(start)
}

// BacktransCompare measures the back-transformation in isolation — legacy
// two-phase (Q₂ sweep, global barrier, Q₁ sweep) versus the fused single
// pass — at several sizes and worker counts. The reduction and chase are
// built once per size; only the E updates are timed, alternating the two
// paths and keeping each one's best of reps (the same drift mitigation as
// Figure 4). Both paths use the shared tune.ColBlock default, under which
// they are bitwise identical; the Identical column re-verifies that on every
// configuration.
func BacktransCompare(sizes []int, nb int, workerCounts []int, reps int) (*Table, []BacktransPoint) {
	if reps < 1 {
		reps = 1
	}
	t := &Table{
		Name:    fmt.Sprintf("Back-transformation — fused single pass vs two-phase (nb=%d, best of %d)", nb, reps),
		Headers: []string{"n", "workers", "colBlock", "legacy", "fused", "speedup", "identical"},
	}
	var points []BacktransPoint
	ws := work.NewArena()
	for _, n := range sizes {
		fx := newBacktransFixture(n, nb, ws)
		legacyOut := matrix.NewDense(n, n)
		fusedOut := matrix.NewDense(n, n)
		for _, wkr := range workerCounts {
			var s *sched.Scheduler
			if wkr > 1 {
				s = sched.New(wkr)
			}
			cb := tune.ColBlock(n, nb, wkr)
			// Warm the worker slabs and page in the operands once, untimed.
			fx.fused(s, cb, fusedOut)
			var tl, tf time.Duration
			for r := 0; r < reps; r++ {
				tl = minDur(tl, fx.legacy(s, cb, legacyOut), r == 0)
				tf = minDur(tf, fx.fused(s, cb, fusedOut), r == 0)
			}
			identical := fusedOut.Equalish(legacyOut, 0)
			if s != nil {
				s.Shutdown()
			}
			speedup := tl.Seconds() / tf.Seconds()
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n), fmt.Sprintf("%d", wkr), fmt.Sprintf("%d", cb),
				secs(tl), secs(tf), f2(speedup), fmt.Sprintf("%v", identical),
			})
			points = append(points, BacktransPoint{
				N: n, NB: nb, Workers: wkr, ColBlock: cb,
				LegacySecs: tl.Seconds(), FusedSecs: tf.Seconds(),
				Speedup: speedup, Identical: identical,
			})
		}
	}
	t.Notes = append(t.Notes,
		"fused applies all Q2 diamonds then the full Q1 reflector sequence per column block while it is cache-hot, removing the global barrier and the second full sweep over E.",
		"sequentially the win is one-pass locality; with workers it adds the removed barrier (no idle cores between the phases).")
	return t, points
}

// AblationColBlock sweeps the column-block width of the fused path at a
// fixed size — the blocking trade-off behind the shared tune.ColBlock
// default: blocks too narrow pay per-block kernel overhead, blocks too wide
// overflow cache and (in parallel) starve the workers.
func AblationColBlock(n, nb, workers int, colBlocks []int) *Table {
	fx := newBacktransFixture(n, nb, work.NewArena())
	var s *sched.Scheduler
	if workers > 1 {
		s = sched.New(workers)
		defer s.Shutdown()
	}
	def := tune.ColBlock(n, nb, workers)
	t := &Table{
		Name:    fmt.Sprintf("Ablation — fused back-transformation column-block width (n=%d, nb=%d, workers=%d)", n, nb, workers),
		Headers: []string{"colBlock", "time", "speedup vs default"},
	}
	dst := matrix.NewDense(n, n)
	run := func(cb int) time.Duration {
		var d time.Duration
		for r := 0; r < 3; r++ {
			d = minDur(d, fx.fused(s, cb, dst), r == 0)
		}
		return d
	}
	base := run(def)
	t.Rows = append(t.Rows, []string{fmt.Sprintf("%d (default)", def), secs(base), "1.00"})
	for _, cb := range colBlocks {
		if cb == def {
			continue
		}
		d := run(cb)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", cb), secs(d), f2(base.Seconds() / d.Seconds())})
	}
	t.Notes = append(t.Notes,
		"the default column block derives from nb and the worker count (internal/tune); the sweep should show a plateau around it.")
	return t
}
