// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (see DESIGN.md §4 for the index). Each
// experiment returns a Table that the root bench_test.go and cmd/eigbench
// render; the *shape* of the results (who wins, by what factor, where the
// crossover falls) is the reproduction target — absolute rates belong to
// this machine, not the paper's 48-core Opteron (see EXPERIMENTS.md).
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/testmat"
	"repro/internal/trace"
)

// Table is a generic experiment result: a header row, data rows, and notes
// that record the paper-vs-measured comparison.
type Table struct {
	Name    string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Name)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	row(t.Headers)
	for _, r := range t.Rows {
		row(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// DefaultSizes are the matrix sizes used by the figure sweeps when the
// caller does not override them. The paper sweeps 2 000–24 000 on 48 cores;
// these laptop-scale sizes show the same qualitative behaviour (see the
// substitution notes in DESIGN.md).
var DefaultSizes = []int{128, 256, 384, 512}

// solveTimed runs one driver and returns the collector with phase times.
func solveTimed(a *matrix.Dense, two bool, o core.Options) (*trace.Collector, *core.Result, error) {
	tc := trace.New()
	o.Collector = tc
	var res *core.Result
	var err error
	start := time.Now()
	if two {
		res, err = core.SyevTwoStage(context.Background(), a, o)
	} else {
		res, err = core.SyevOneStage(context.Background(), a, o)
	}
	tc.AddPhase("total", time.Since(start))
	return tc, res, err
}

func matFor(n int) *matrix.Dense {
	rng := rand.New(rand.NewSource(int64(n)*7919 + 13))
	return testmat.RandomSym(rng, n)
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// newRng returns a deterministic source for the experiment generators.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// machineParams measures α/β once per process; the out-of-cache β probe
// walks a 141 MB buffer, which is too costly to repeat per experiment.
var machineParams = sync.OnceValue(func() model.Params {
	return model.MeasureParams(runtime.NumCPU())
})

func sortFloats(s []float64) { sort.Float64s(s) }

// coreOptionsDC is the standard configuration for the verification runs.
func coreOptionsDC(workers int, tc *trace.Collector) core.Options {
	return core.Options{Method: core.MethodDC, Vectors: true, Workers: workers, Collector: tc}
}

func secs(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }

// minDur returns the smaller duration, taking v unconditionally on the
// first repetition.
func minDur(cur, v time.Duration, first bool) time.Duration {
	if first || v < cur {
		return v
	}
	return cur
}

// gflops returns v flops over d as Gflop/s.
func gflops(flops int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(flops) / d.Seconds() / 1e9
}
