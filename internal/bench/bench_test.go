package bench

import (
	"strings"
	"testing"
)

// The experiments are exercised here at tiny sizes: the goal is that every
// harness entry point runs, produces rows, and embeds its paper-comparison
// notes; timing assertions belong to the recorded runs in EXPERIMENTS.md.

func nonEmpty(t *testing.T, tab *Table, wantRows int) {
	t.Helper()
	if len(tab.Rows) < wantRows {
		t.Fatalf("%s: %d rows, want at least %d", tab.Name, len(tab.Rows), wantRows)
	}
	s := tab.String()
	if !strings.Contains(s, tab.Name) {
		t.Fatalf("%s: render missing title", tab.Name)
	}
	for _, r := range tab.Rows {
		if len(r) != len(tab.Headers) {
			t.Fatalf("%s: row width %d != header width %d", tab.Name, len(r), len(tab.Headers))
		}
	}
}

func TestTable1Smoke(t *testing.T)  { nonEmpty(t, Table1(96), 3) }
func TestTable2Smoke(t *testing.T)  { nonEmpty(t, Table2(), 3) }
func TestTable3Smoke(t *testing.T)  { nonEmpty(t, Table3(), 3) }
func TestModelSmoke(t *testing.T)   { nonEmpty(t, ModelTable([]int{128, 256}), 2) }
func TestFig1aSmoke(t *testing.T)   { nonEmpty(t, Figure1('a', []int{64, 96}, 0), 2) }
func TestFig1bSmoke(t *testing.T)   { nonEmpty(t, Figure1('b', []int{64, 96}, 0), 2) }
func TestFig1vSmoke(t *testing.T)   { nonEmpty(t, Figure1ValuesOnly([]int{64}), 1) }
func TestFig2Smoke(t *testing.T)    { nonEmpty(t, Figure2(48, 6), 5) }
func TestFig3Smoke(t *testing.T)    { nonEmpty(t, Figure3(64, 8, 8, 2), 5) }
func TestFig5Smoke(t *testing.T)    { nonEmpty(t, Figure5(96, []int{8, 16}, 0), 2) }
func TestFractionSmoke(t *testing.T) { nonEmpty(t, Fraction(96, 0), 3) }
func TestVerifySmoke(t *testing.T)  { nonEmpty(t, VerifyTable(48, 0), 4) }

func TestFig4AllVariantsSmoke(t *testing.T) {
	for _, v := range []byte{'a', 'b', 'c', 'd'} {
		tab := Figure4(v, []int{64, 96}, 0)
		nonEmpty(t, tab, 2)
		// Speedup column parses as a positive number.
		for _, r := range tab.Rows {
			if !strings.Contains(r[3], ".") {
				t.Fatalf("fig4%c: speedup cell %q malformed", v, r[3])
			}
		}
	}
}

func TestAblationsSmoke(t *testing.T) {
	nonEmpty(t, AblationGroup(96, 8, []int{2, 4}), 3)
	nonEmpty(t, AblationStage2Cores(96, 8, []int{2}), 3)
	nonEmpty(t, AblationStage1Sched(96, 16, []int{2}), 2)
	st := Stage2ParallelCheck(64, 8, []int{1, 2})
	nonEmpty(t, st, 2)
	for _, r := range st.Rows {
		if r[1] != "true" {
			t.Fatalf("stage-2 parallel check failed: %v", r)
		}
	}
}

func TestFigure4UnknownVariantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown variant")
		}
	}()
	Figure4('z', []int{16}, 0)
}

func TestSVDComparisonSmoke(t *testing.T) {
	tab := SVDComparison([]int{256, 1024})
	nonEmpty(t, tab, 2)
	// The SVD/EVD cubic ratio column must be exactly 2.00.
	for _, r := range tab.Rows {
		if r[3] != "2.00" {
			t.Fatalf("cubic ratio %q != 2.00", r[3])
		}
	}
}
