package bench

import (
	"fmt"
	"time"

	"repro/internal/band"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/trace"
)

// Figure1 regenerates the phase-breakdown pie charts of the paper's
// Figure 1: the percentage of total time spent in (reduction, tridiagonal
// eigensolver, back-transformation) for the one-stage (a) and two-stage (b)
// drivers when all eigenvectors are requested. The paper's headline: the
// one-stage reduction eats >60 % of the time (90 % for values-only), while
// the two-stage code shrinks phases 1+3 until the tridiagonal solver
// dominates (~50 %).
func Figure1(variant byte, sizes []int, workers int) *Table {
	two := variant == 'b'
	name := "Figure 1a — one-stage phase breakdown (all vectors)"
	if two {
		name = "Figure 1b — two-stage phase breakdown (all vectors)"
	}
	t := &Table{Name: name}
	if two {
		t.Headers = []string{"n", "stage1%", "stage2%", "eigT%", "updQ2%", "updQ1%", "total"}
	} else {
		t.Headers = []string{"n", "reduction%", "eigT%", "backtrans%", "total"}
	}
	for _, n := range sizes {
		a := matFor(n)
		tc, _, err := solveTimed(a, two, core.Options{Method: core.MethodDC, Vectors: true, Workers: workers})
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("n=%d failed: %v", n, err))
			continue
		}
		tot := tc.PhaseTime("total")
		pct := func(ph string) string {
			return fmt.Sprintf("%.1f", 100*tc.PhaseTime(ph).Seconds()/tot.Seconds())
		}
		if two {
			// The default driver runs the fused single-pass back-transformation,
			// which has no separate Q₂/Q₁ wall-clock phases; split its one phase
			// by the attributed flop shares so the figure keeps the paper's
			// five-slice breakdown. Under the kill-switch the legacy phase
			// timings are used directly.
			q2, q1 := tc.PhaseTime(trace.PhaseUpdateQ2), tc.PhaseTime(trace.PhaseUpdateQ1)
			if fused := tc.PhaseTime(trace.PhaseBacktransFused); fused > 0 {
				fq2 := tc.AttributedFlops(trace.PhaseUpdateQ2)
				fq1 := tc.AttributedFlops(trace.PhaseUpdateQ1)
				if ftot := fq2 + fq1; ftot > 0 {
					q2 = time.Duration(float64(fused) * float64(fq2) / float64(ftot))
					q1 = fused - q2
				} else {
					q2, q1 = fused, 0
				}
			}
			pctD := func(d time.Duration) string {
				return fmt.Sprintf("%.1f", 100*d.Seconds()/tot.Seconds())
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n),
				pct(trace.PhaseStage1), pct(trace.PhaseStage2), pct(trace.PhaseEigT),
				pctD(q2), pctD(q1), secs(tot),
			})
		} else {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n),
				pct(trace.PhaseReduction), pct(trace.PhaseEigT), pct(trace.PhaseBacktrans), secs(tot),
			})
		}
	}
	if two {
		t.Notes = append(t.Notes, "paper: two-stage shrinks reduction+update until eigT(T) ≈ 50% of total.")
		t.Notes = append(t.Notes, "updQ2/updQ1 shares of the fused back-transformation are split by attributed flops (one wall-clock phase).")
	} else {
		t.Notes = append(t.Notes, "paper: one-stage reduction >60% of total with all vectors, ~90% values-only.")
	}
	return t
}

// Figure1ValuesOnly reports the reduction share when only eigenvalues are
// requested — the 90 % headline of Figure 1a's discussion.
func Figure1ValuesOnly(sizes []int) *Table {
	t := &Table{
		Name:    "Figure 1a (values-only variant) — reduction share without eigenvectors",
		Headers: []string{"n", "reduction%", "eigT%", "total"},
	}
	for _, n := range sizes {
		a := matFor(n)
		tc, _, err := solveTimed(a, false, core.Options{Method: core.MethodDC})
		if err != nil {
			continue
		}
		tot := tc.PhaseTime("total")
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", 100*tc.PhaseTime(trace.PhaseReduction).Seconds()/tot.Seconds()),
			fmt.Sprintf("%.1f", 100*tc.PhaseTime(trace.PhaseEigT).Seconds()/tot.Seconds()),
			secs(tot),
		})
	}
	return t
}

// Figure4 regenerates the speedup curves of the paper's Figure 4: the
// two-stage algorithm versus the one-stage baseline (standing in for MKL;
// see DESIGN.md) across matrix sizes.
//
//	variant 'a': all eigenvectors, D&C        (paper: ≈2×)
//	variant 'b': all eigenvectors, BI (≈MRRR) (paper: ≈2×)
//	variant 'c': eigenvalues only (TRD-dominated) (paper: up to 8×)
//	variant 'd': 20 % of the eigenvectors     (paper: ≈4×)
func Figure4(variant byte, sizes []int, workers int) *Table {
	var name string
	method := core.MethodDC
	vectors := true
	frac := 1.0
	switch variant {
	case 'a':
		name = "Figure 4a — speedup vs one-stage, D&C, all vectors"
	case 'b':
		name = "Figure 4b — speedup vs one-stage, BI (MRRR stand-in), all vectors"
		method = core.MethodBI
	case 'c':
		name = "Figure 4c — speedup vs one-stage, eigenvalues only"
		vectors = false
	case 'd':
		name = "Figure 4d — speedup vs one-stage, 20% of vectors (BI)"
		method = core.MethodBI
		frac = 0.2
	default:
		panic("bench: unknown Figure 4 variant")
	}
	t := &Table{
		Name:    name,
		Headers: []string{"n", "one-stage", "two-stage", "speedup", "model", "red 1s", "red 2s", "red speedup"},
	}
	// The "model" column evaluates the paper's Eqs. 4–5 with this machine's
	// measured α and β at each size, so the table shows paper-shape,
	// model-prediction and measurement side by side.
	params := machineParams()
	modelFrac := frac
	if !vectors {
		modelFrac = 0.02 // values-only: the f→0 limit of the model
	}
	// The development host is a shared vCPU whose effective memory
	// bandwidth drifts between runs; alternating the two solvers and
	// keeping each one's best time removes the drift bias from the ratio.
	// Large sizes (out of L3, where a single run already takes minutes and
	// the DRAM-bound regime is stable) run once.
	for _, n := range sizes {
		reps := 3
		if n >= 2048 {
			reps = 1
		}
		a := matFor(n)
		o := core.Options{Method: method, Vectors: vectors, Workers: workers}
		if frac < 1 && vectors {
			o.IL, o.IU = 1, max(1, int(frac*float64(n)))
		}
		var t1, t2, red1, red2 time.Duration
		failed := false
		for r := 0; r < reps; r++ {
			tc1, _, err1 := solveTimed(a, false, o)
			tc2, _, err2 := solveTimed(a, true, o)
			if err1 != nil || err2 != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("n=%d failed: %v %v", n, err1, err2))
				failed = true
				break
			}
			t1 = minDur(t1, tc1.PhaseTime("total"), r == 0)
			t2 = minDur(t2, tc2.PhaseTime("total"), r == 0)
			red1 = minDur(red1, tc1.PhaseTime(trace.PhaseReduction), r == 0)
			red2 = minDur(red2, tc2.PhaseTime(trace.PhaseStage1)+tc2.PhaseTime(trace.PhaseStage2), r == 0)
		}
		if failed {
			continue
		}
		pred := model.TimeOneStage(float64(n), modelFrac, params) /
			model.TimeTwoStage(float64(n), band.DefaultNB, modelFrac, params)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), secs(t1), secs(t2), f2(t1.Seconds() / t2.Seconds()), f2(pred),
			secs(red1), secs(red2), f2(red1.Seconds() / red2.Seconds()),
		})
	}
	t.Notes = append(t.Notes, "best of 3 alternating repetitions per solver below n=2048, single run above (shared-host noise mitigation).")
	t.Notes = append(t.Notes, fmt.Sprintf(
		"model column uses the out-of-cache rates (alpha %.1f, beta %.1f Gflop/s); sizes whose matrix fits in L3 run the memory-bound baseline faster than beta, so measured < model there is the cache regime, not a solver defect (see EXPERIMENTS.md).",
		params.Alpha/1e9, params.Beta/1e9))
	switch variant {
	case 'a', 'b':
		t.Notes = append(t.Notes, "paper: ~2x total speedup; the reduction itself speeds up far more but eigT(T) is shared.")
	case 'c':
		t.Notes = append(t.Notes, "paper: up to 8x on 48 cores; on this substrate the ceiling is alpha/beta (see Table 3).")
	case 'd':
		t.Notes = append(t.Notes, "paper: ~4x — between the values-only and all-vectors cases, since f=0.2 shrinks phases 2+3.")
	}
	return t
}

// Fraction regenerates the paper's §7 closing measurement: the cost of
// f = 20 % of the eigenvectors versus the full set with the two-stage
// driver (paper: 150 s vs 400 s at n = 20 000 → ratio ≈ 0.375).
func Fraction(n int, workers int) *Table {
	a := matFor(n)
	t := &Table{
		Name:    fmt.Sprintf("Fraction experiment (§7) — partial vs full eigenvectors at n=%d", n),
		Headers: []string{"fraction", "time", "vs full"},
	}
	var full time.Duration
	for _, f := range []float64{1.0, 0.5, 0.2, 0.1} {
		// Full spectrum uses D&C (the fastest full path, like the paper's
		// f=1 runs); partial fractions use the subset-capable BI solver
		// (the MRRR stand-in, like Figure 4d).
		o := core.Options{Method: core.MethodDC, Vectors: true, Workers: workers}
		if f < 1 {
			o.Method = core.MethodBI
			o.IL, o.IU = 1, max(1, int(f*float64(n)))
		}
		tc, _, err := solveTimed(a, true, o)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("f=%.1f failed: %v", f, err))
			continue
		}
		tot := tc.PhaseTime("total")
		if f == 1.0 {
			full = tot
		}
		t.Rows = append(t.Rows, []string{f2(f), secs(tot), f2(tot.Seconds() / full.Seconds())})
	}
	t.Notes = append(t.Notes, "paper: f=0.2 costs ≈0.375x of f=1 (150s vs 400s at n=20000).")
	return t
}

// Figure5 regenerates the tile-size sweep of the paper's Figure 5: the
// Gflop/s of stage 1 (rises with nb — bigger tiles feed Level 3 better) and
// stage 2 (falls once tiles outgrow cache / parallelism shrinks) at a fixed
// matrix size, locating the compromise window.
func Figure5(n int, nbs []int, workers int) *Table {
	t := &Table{
		Name:    fmt.Sprintf("Figure 5 — effect of tile size nb on both stages (n=%d)", n),
		Headers: []string{"nb", "stage1 Gflop/s", "stage2 Gflop/s", "stage1 time", "stage2 time", "total reduction"},
	}
	n3 := float64(n) * float64(n) * float64(n)
	for _, nb := range nbs {
		a := matFor(n)
		tc, _, err := solveTimed(a, true, core.Options{Method: core.MethodDC, Vectors: false, NB: nb, Workers: workers})
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("nb=%d failed: %v", nb, err))
			continue
		}
		s1 := tc.PhaseTime(trace.PhaseStage1)
		s2 := tc.PhaseTime(trace.PhaseStage2)
		// Stage-1 useful work is 4/3 n³ (the paper's convention: rate is
		// useful flops over time, so TS overheads depress the rate rather
		// than inflate it). Stage-2 work is ~6·nb·n².
		g1 := 4.0 / 3.0 * n3 / s1.Seconds() / 1e9
		g2 := 6 * float64(nb) * float64(n) * float64(n) / s2.Seconds() / 1e9
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nb), f3(g1), f3(g2), secs(s1), secs(s2), secs(s1 + s2),
		})
	}
	t.Notes = append(t.Notes,
		"paper: stage-1 rate grows with nb until ~300, stage-2 decays beyond the cache size; compromise 120<nb<200 on its machine.",
	)
	return t
}
