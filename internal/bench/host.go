package bench

import (
	"os"
	"runtime"
	"strings"
	"sync"

	"repro/internal/tune"
)

// HostInfo identifies the machine an experiment record was measured on. It
// is embedded in every BENCH_*.json so recorded numbers can never be
// misattributed: absolute rates belong to the host, not the paper's 48-core
// Opteron, and two records only compare when their hosts match.
// ProfileSchema is the tune-profile schema version the build writes, so a
// record can be correlated with the profile generation that tuned the run.
type HostInfo struct {
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	Gomaxprocs    int    `json:"gomaxprocs"`
	CPUModel      string `json:"cpu_model,omitempty"`
	ProfileSchema int    `json:"profile_schema"`
}

// cpuModel reads the first "model name" line of /proc/cpuinfo. Empty on
// non-Linux hosts or odd containers; the field is omitempty for that reason.
var cpuModel = sync.OnceValue(func() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if ok && strings.TrimSpace(key) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
})

// Host returns this machine's identity for experiment records. GOMAXPROCS is
// sampled at call time — it is the one field that can differ between runs on
// the same machine, and it bounds every parallel measurement.
func Host() HostInfo {
	return HostInfo{
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Gomaxprocs:    runtime.GOMAXPROCS(0),
		CPUModel:      cpuModel(),
		ProfileSchema: tune.ProfileVersion,
	}
}
