package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/work"
)

// GemmPoint is one measured GEMM configuration: the blocking/kernel that ran,
// its rate, and whether its output matched the frozen seed kernel bit for
// bit. It is the machine-readable row of BENCH_kernels.json and of the
// eigtune sweep.
type GemmPoint struct {
	N      int     `json:"n"`
	Kernel string  `json:"kernel"`
	MC     int     `json:"mc"`
	NC     int     `json:"nc"`
	GFlops float64 `json:"gflops"`
	// BitwiseVsSeed reports exact equality against the seed kernel's output
	// on the same operands (KC is pinned across all configurations, so any
	// difference is a kernel bug, not rounding).
	BitwiseVsSeed bool `json:"bitwise_vs_seed"`
}

// gemmOperands builds deterministic n×n operands for the GEMM measurements.
func gemmOperands(n int) (a, b []float64) {
	rng := rand.New(rand.NewSource(int64(n)*104729 + 5))
	a = make([]float64, n*n)
	b = make([]float64, n*n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	return a, b
}

// seedGemmRef computes the reference product with the frozen seed kernel.
func seedGemmRef(n int, a, b []float64) []float64 {
	old := blas.SetBlocking(blas.Blocking{Kernel: blas.KernelSeed})
	defer blas.SetBlocking(old)
	c := make([]float64, n*n)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
	return c
}

// MeasureGemmConfig times C = A·B at order n under the given blocking and
// returns the best-of-reps rate plus the output for equality checks. The
// measurement floor of ~80 ms per rep keeps single runs meaningful on noisy
// shared hosts; reps take the best to shed scheduler interference.
func MeasureGemmConfig(n int, bk blas.Blocking, reps int, a, b []float64) (float64, []float64) {
	if reps < 1 {
		reps = 1
	}
	old := blas.SetBlocking(bk)
	defer blas.SetBlocking(old)
	c := make([]float64, n*n)
	flop := 2 * float64(n) * float64(n) * float64(n)
	// Warm-up run also produces the comparison output.
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
	best := 0.0
	for r := 0; r < reps; r++ {
		iters := 0
		start := time.Now()
		for time.Since(start) < 80*time.Millisecond {
			blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
			iters++
		}
		if rate := float64(iters) * flop / time.Since(start).Seconds(); rate > best {
			best = rate
		}
	}
	return best, c
}

// GemmSweep measures each configuration at order n and checks it bitwise
// against the seed kernel. It is the shared measurement core of the eigtune
// block sweep and the eigbench kernels experiment.
func GemmSweep(n int, configs []blas.Blocking, reps int) []GemmPoint {
	a, b := gemmOperands(n)
	ref := seedGemmRef(n, a, b)
	pts := make([]GemmPoint, 0, len(configs))
	for _, bk := range configs {
		rate, c := MeasureGemmConfig(n, bk, reps, a, b)
		identical := true
		for i := range c {
			if c[i] != ref[i] {
				identical = false
				break
			}
		}
		eff := bk
		if eff.MC <= 0 {
			eff.MC = blas.DefaultMC
		}
		if eff.NC <= 0 {
			eff.NC = blas.DefaultNC
		}
		pts = append(pts, GemmPoint{
			N: n, Kernel: bk.Kernel.String(), MC: eff.MC, NC: eff.NC,
			GFlops: rate / 1e9, BitwiseVsSeed: identical,
		})
	}
	return pts
}

// NBPoint is one stage-1 tile size measured over the full two-stage
// reduction (the structured form of the Figure 5 sweep, so eigtune does not
// have to parse rendered tables — the old Sscanf-on-table-cells approach is
// what let measurement failures slip through silently).
type NBPoint struct {
	NB         int     `json:"nb"`
	Stage1Secs float64 `json:"stage1_secs"`
	Stage2Secs float64 `json:"stage2_secs"`
	TotalSecs  float64 `json:"total_secs"`
}

// NBSweep times the two-stage reduction (values-only D&C solve) for each
// tile size and returns the measured points. Any failed solve aborts the
// sweep with an error: a tuner must not persist a profile built on partial
// measurements.
func NBSweep(n int, nbs []int, workers int) ([]NBPoint, error) {
	pts := make([]NBPoint, 0, len(nbs))
	for _, nb := range nbs {
		a := matFor(n)
		tc, _, err := solveTimed(a, true, core.Options{Method: core.MethodDC, Vectors: false, NB: nb, Workers: workers})
		if err != nil {
			return nil, fmt.Errorf("nb=%d solve failed: %w", nb, err)
		}
		s1 := tc.PhaseTime(trace.PhaseStage1).Seconds()
		s2 := tc.PhaseTime(trace.PhaseStage2).Seconds()
		if s1+s2 <= 0 {
			return nil, fmt.Errorf("nb=%d reported no reduction time", nb)
		}
		pts = append(pts, NBPoint{NB: nb, Stage1Secs: s1, Stage2Secs: s2, TotalSecs: s1 + s2})
	}
	return pts, nil
}

// ColBlockPoint is one measured eigenvector column-block width for the fused
// back-transformation.
type ColBlockPoint struct {
	ColBlock int     `json:"col_block"`
	Secs     float64 `json:"secs"`
}

// ColBlockSweep times the fused back-transformation at each column-block
// width (best of reps). All widths produce bitwise identical results — the
// knob only partitions independent columns — so only time is recorded.
func ColBlockSweep(n, nb, workers int, colBlocks []int, reps int) []ColBlockPoint {
	if reps < 1 {
		reps = 1
	}
	fx := newBacktransFixture(n, nb, work.NewArena())
	var s *sched.Scheduler
	if workers > 1 {
		s = sched.New(workers)
		defer s.Shutdown()
	}
	dst := matrix.NewDense(n, n)
	pts := make([]ColBlockPoint, 0, len(colBlocks))
	for _, cb := range colBlocks {
		var d time.Duration
		for r := 0; r < reps; r++ {
			d = minDur(d, fx.fused(s, cb, dst), r == 0)
		}
		pts = append(pts, ColBlockPoint{ColBlock: cb, Secs: d.Seconds()})
	}
	return pts
}

// EigPoint is one end-to-end solve (all eigenpairs, two-stage D&C) under a
// given GEMM kernel.
type EigPoint struct {
	N      int     `json:"n"`
	Kernel string  `json:"kernel"`
	Secs   float64 `json:"secs"`
	// BitwiseVsSeed: values and vectors equal, bit for bit, to the solve
	// under the seed kernel at the same size.
	BitwiseVsSeed bool `json:"bitwise_vs_seed"`
}

// EigKernelCompare runs the full eigensolve at each size under each kernel
// (best of reps), verifying every kernel's results bitwise against the seed
// kernel's. This is the end-to-end "before/after" record of
// BENCH_kernels.json.
func EigKernelCompare(sizes []int, kernels []blas.Kernel, reps int) ([]EigPoint, error) {
	if reps < 1 {
		reps = 1
	}
	defer blas.SetBlocking(blas.DefaultBlocking())
	var pts []EigPoint
	for _, n := range sizes {
		a := matFor(n)
		var refVals []float64
		var refVecs *matrix.Dense
		for _, kern := range kernels {
			blas.SetBlocking(blas.Blocking{Kernel: kern})
			var best time.Duration
			var res *core.Result
			for r := 0; r < reps; r++ {
				tc, rr, err := solveTimed(a, true, core.Options{Method: core.MethodDC, Vectors: true})
				if err != nil {
					return nil, fmt.Errorf("n=%d kernel=%s: %w", n, kern, err)
				}
				best = minDur(best, tc.PhaseTime("total"), r == 0)
				res = rr
			}
			identical := true
			if kern == blas.KernelSeed {
				refVals, refVecs = res.Values, res.Vectors
			} else {
				for i := range res.Values {
					if res.Values[i] != refVals[i] {
						identical = false
						break
					}
				}
				if identical && !res.Vectors.Equalish(refVecs, 0) {
					identical = false
				}
			}
			pts = append(pts, EigPoint{N: n, Kernel: kern.String(), Secs: best.Seconds(), BitwiseVsSeed: identical})
		}
	}
	return pts, nil
}

// KernelsReport is the machine-readable record of the kernels experiment
// (BENCH_kernels.json): machine identity, whether the assembly kernel ran,
// per-kernel GEMM rates with the seed baseline, and end-to-end solve times.
type KernelsReport struct {
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	GoMaxProcs int         `json:"gomaxprocs"`
	AsmActive  bool        `json:"asm_active"`
	Gemm       []GemmPoint `json:"gemm"`
	Eig        []EigPoint  `json:"eig"`
}

// SpeedupVsSeed reports the best non-seed GEMM rate at order n relative to
// the seed kernel's (0 when either side is missing) — the ≥1.5× acceptance
// number of the kernel rework.
func (r *KernelsReport) SpeedupVsSeed(n int) float64 {
	var seed, best float64
	for _, p := range r.Gemm {
		if p.N != n {
			continue
		}
		if p.Kernel == "seed" {
			seed = p.GFlops
		} else if p.GFlops > best {
			best = p.GFlops
		}
	}
	if seed <= 0 {
		return 0
	}
	return best / seed
}

// KernelsExperiment measures every kernel family at the given GEMM orders and
// the end-to-end solve at the given sizes, rendering a table and the JSON
// report. The seed kernel is always included as the "before" baseline.
func KernelsExperiment(gemmSizes, eigSizes []int, reps int) (*Table, *KernelsReport) {
	rep := &KernelsReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		AsmActive: blas.AsmActive(),
	}
	kernels := []blas.Kernel{blas.KernelSeed, blas.Kernel2x4, blas.Kernel4x4, blas.Kernel8x4, blas.KernelAuto}
	t := &Table{
		Name:    fmt.Sprintf("GEMM kernels — before (seed) vs after, asm=%v", rep.AsmActive),
		Headers: []string{"n", "kernel", "Gflop/s", "vs seed", "bitwise=seed"},
	}
	for _, n := range gemmSizes {
		var configs []blas.Blocking
		for _, k := range kernels {
			configs = append(configs, blas.Blocking{Kernel: k})
		}
		pts := GemmSweep(n, configs, reps)
		var seed float64
		for _, p := range pts {
			if p.Kernel == "seed" {
				seed = p.GFlops
			}
		}
		for _, p := range pts {
			ratio := "-"
			if seed > 0 && p.Kernel != "seed" {
				ratio = f2(p.GFlops / seed)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", p.N), p.Kernel, f3(p.GFlops), ratio, fmt.Sprintf("%v", p.BitwiseVsSeed),
			})
		}
		rep.Gemm = append(rep.Gemm, pts...)
	}

	eig, err := EigKernelCompare(eigSizes, []blas.Kernel{blas.KernelSeed, blas.KernelAuto}, reps)
	if err != nil {
		t.Notes = append(t.Notes, fmt.Sprintf("end-to-end comparison failed: %v", err))
	} else {
		rep.Eig = eig
		et := map[int]map[string]float64{}
		for _, p := range eig {
			if et[p.N] == nil {
				et[p.N] = map[string]float64{}
			}
			et[p.N][p.Kernel] = p.Secs
			if p.Kernel != "seed" {
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%d", p.N), "eig:" + p.Kernel,
					secs(time.Duration(p.Secs * float64(time.Second))),
					f2(et[p.N]["seed"] / p.Secs), fmt.Sprintf("%v", p.BitwiseVsSeed),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"seed is the frozen pre-rework kernel (fixed 128/128/64 blocking, B re-packed per strip): the 'before' baseline.",
		"all kernels share KC=128, so bitwise=seed must be true everywhere — a false is a kernel bug, not rounding.",
		"eig rows time the full two-stage solve (all vectors, D&C) under the given kernel; 'vs seed' is the wall-time speedup.",
	)
	return t, rep
}
