package bench

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/core"
)

// SBRConfig is one multi-sweep stage-1 plan for the SBR sweeps: reduce to
// bandwidth WideBand first, then narrow through the strictly decreasing
// Sweeps bandwidths before the bulge chase. The zero value is the classic
// direct single-sweep reduction.
type SBRConfig struct {
	WideBand int   `json:"wide_band"`
	Sweeps   []int `json:"band_sweeps"`
}

// Label renders the plan as "direct" or "128->32->8".
func (c SBRConfig) Label() string {
	if c.WideBand == 0 || len(c.Sweeps) == 0 {
		return "direct"
	}
	s := strconv.Itoa(c.WideBand)
	for _, b := range c.Sweeps {
		s += "->" + strconv.Itoa(b)
	}
	return s
}

// SBRPoint is one measured SBR plan of the eigtune sweep.
type SBRPoint struct {
	Config SBRConfig `json:"config"`
	Label  string    `json:"label"`
	Secs   float64   `json:"secs"`
}

// SBRSweep times the full two-stage eigensolve — vectors included, so every
// plan pays its own back-transformation — under each SBR plan at one size,
// best of reps after an untimed warm-up rep. Unlike the look-ahead sweep the
// plans are *not* bitwise comparable (each factors through a different band
// sequence), so the sweep cross-checks eigenvalues instead: any plan whose
// spectrum drifts more than a residual-scale tolerance from the first plan's
// (conventionally the direct reduction) is a correctness bug, and the sweep
// fails rather than timing it.
func SBRSweep(n int, configs []SBRConfig, workers, reps int) ([]SBRPoint, error) {
	if workers < 1 {
		workers = 1
	}
	if reps < 1 {
		reps = 1
	}
	a := matFor(n)
	var refVals []float64
	tol := 1e-11 * float64(n)
	pts := make([]SBRPoint, 0, len(configs))
	for _, cfg := range configs {
		o := core.Options{
			Method:     core.MethodDC,
			Vectors:    true,
			Workers:    workers,
			WideBand:   cfg.WideBand,
			BandSweeps: append([]int(nil), cfg.Sweeps...),
		}
		best := math.Inf(1)
		for r := 0; r <= reps; r++ {
			start := time.Now()
			res, err := core.SyevTwoStage(context.Background(), a, o)
			if err != nil {
				return nil, fmt.Errorf("sbr plan %s: %w", cfg.Label(), err)
			}
			if el := time.Since(start).Seconds(); r > 0 && el < best {
				best = el
			}
			if r == 0 {
				if refVals == nil {
					refVals = append([]float64(nil), res.Values...)
				} else {
					scale := math.Max(1, math.Abs(refVals[len(refVals)-1]))
					for i, v := range res.Values {
						if math.Abs(v-refVals[i]) > tol*scale {
							return nil, fmt.Errorf("sbr plan %s: eigenvalue %d drifted %g from the direct plan (tol %g)",
								cfg.Label(), i, math.Abs(v-refVals[i]), tol*scale)
						}
					}
				}
			}
		}
		pts = append(pts, SBRPoint{Config: cfg, Label: cfg.Label(), Secs: best})
	}
	return pts, nil
}
