package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/band"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/work"
)

// Stage1Point is one recorded stage-1 measurement, written to
// BENCH_stage1.json: the sequenced (flat-priority) scheduled reduction
// against the look-ahead one on the same matrix and scheduler, with the
// bitwise identity checked and each mode's busy/stall split attributed from
// the trace sub-phases. The stall columns are the proof obligation of the
// look-ahead rework: if the priorities moved the panel factorization off the
// critical path, look-ahead shows less idle worker-time at the same width.
// NumCPU/Gomaxprocs are recorded because on a single-core host both modes
// time-share one CPU and the speedup can only hover around 1.
type Stage1Point struct {
	N            int     `json:"n"`
	NB           int     `json:"nb"`
	Workers      int     `json:"workers"`
	Depth        int     `json:"depth"`
	SequencedSec float64 `json:"sequenced_sec"`
	LookaheadSec float64 `json:"lookahead_sec"`
	Speedup      float64 `json:"speedup"`
	Identical    bool    `json:"bitwise_identical"`
	SeqPanelSec  float64 `json:"seq_panel_sec"`
	SeqUpdateSec float64 `json:"seq_update_sec"`
	SeqStallSec  float64 `json:"seq_stall_sec"`
	LaPanelSec   float64 `json:"la_panel_sec"`
	LaUpdateSec  float64 `json:"la_update_sec"`
	LaStallSec   float64 `json:"la_stall_sec"`
	NumCPU       int     `json:"num_cpu"`
	Gomaxprocs   int     `json:"gomaxprocs"`
}

// flattenFactor snapshots every float a stage-1 Factor owns — all tiles
// (reflector storage included), both T-factor families, and the extracted
// band — so the bitwise comparison covers the full output, not just the band.
func flattenFactor(f *band.Factor) []float64 {
	var out []float64
	for j := 0; j < f.NT; j++ {
		for i := 0; i < f.NT; i++ {
			out = append(out, f.A.Tile(i, j)...)
		}
	}
	for _, t := range f.Tge {
		out = append(out, t...)
	}
	for _, row := range f.Tts {
		for _, t := range row {
			out = append(out, t...)
		}
	}
	out = append(out, f.Band.Data...)
	return out
}

func floatsIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// measureStage1 times the scheduled stage-1 reduction under cfg (best of
// reps, after an untimed warm-up that populates the arena) and returns the
// best wall time, the trace-attributed panel/update/stall seconds of that
// best rep, and a snapshot of the final factor for the bitwise check.
func measureStage1(s *sched.Scheduler, a *matrix.Dense, cfg band.Config, reps int) (sec, panel, update, stall float64, snap []float64) {
	ws := work.NewArena()
	band.ReduceWith(a, cfg, s.NewJob(nil), ws, nil)
	sec = math.Inf(1)
	var f *band.Factor
	for r := 0; r < reps; r++ {
		tc := trace.New()
		start := time.Now()
		f = band.ReduceWith(a, cfg, s.NewJob(nil), ws, tc)
		if el := time.Since(start).Seconds(); el < sec {
			sec = el
			panel = tc.PhaseTime(trace.PhaseStage1Panel).Seconds()
			update = tc.PhaseTime(trace.PhaseStage1Update).Seconds()
			stall = tc.PhaseTime(trace.PhaseStage1Stall).Seconds()
		}
	}
	// Every rep is bitwise identical by the determinism invariant, so the
	// last factor stands for all of them.
	snap = flattenFactor(f)
	return sec, panel, update, stall, snap
}

// Stage1Compare measures the sequenced (DisableLookahead) scheduled stage-1
// reduction against the look-ahead one at the given depth, per matrix size,
// on one shared scheduler of the given width. It is the measurement core of
// `eigbench -exp stage1` / BENCH_stage1.json.
func Stage1Compare(sizes []int, nb, workers, depth, reps int) (*Table, []Stage1Point) {
	if workers < 1 {
		workers = 1
	}
	if depth <= 0 {
		depth = band.DefaultLookahead
	}
	numCPU, gomaxprocs := runtime.NumCPU(), runtime.GOMAXPROCS(0)
	if reps < 1 {
		reps = 1
	}
	t := &Table{
		Name:    fmt.Sprintf("Stage 1 — look-ahead (d=%d) vs sequenced (nb=%d, workers=%d)", depth, nb, workers),
		Headers: []string{"n", "sequenced", "look-ahead", "speedup", "bitwise", "stall seq", "stall la"},
	}
	s := sched.New(workers)
	defer s.Shutdown()
	var pts []Stage1Point
	for _, n := range sizes {
		a := matFor(n)
		seqSec, seqP, seqU, seqS, seqSnap := measureStage1(s, a, band.Config{NB: nb, Sequenced: true}, reps)
		laSec, laP, laU, laS, laSnap := measureStage1(s, a, band.Config{NB: nb, Lookahead: depth}, reps)
		pt := Stage1Point{
			N: n, NB: nb, Workers: workers, Depth: depth,
			SequencedSec: seqSec, LookaheadSec: laSec, Speedup: seqSec / laSec,
			Identical:   floatsIdentical(seqSnap, laSnap),
			SeqPanelSec: seqP, SeqUpdateSec: seqU, SeqStallSec: seqS,
			LaPanelSec: laP, LaUpdateSec: laU, LaStallSec: laS,
			NumCPU: numCPU, Gomaxprocs: gomaxprocs,
		}
		pts = append(pts, pt)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			secs(time.Duration(seqSec * float64(time.Second))),
			secs(time.Duration(laSec * float64(time.Second))),
			f2(pt.Speedup), fmt.Sprint(pt.Identical),
			secs(time.Duration(seqS * float64(time.Second))),
			secs(time.Duration(laS * float64(time.Second))),
		})
	}
	t.Notes = append(t.Notes,
		"both modes run the identical task set on the same scheduler; only ready-queue order differs, so bitwise must be true.",
		"stall is workers·wall − busy (idle worker-time): look-ahead's claim is a smaller stall at the same width.",
		fmt.Sprintf("NumCPU=%d, GOMAXPROCS=%d — with a single CPU both modes time-share one core and speedup hovers near 1.", numCPU, gomaxprocs),
	)
	return t, pts
}

// LookaheadPoint is one measured look-ahead depth of the eigtune sweep.
type LookaheadPoint struct {
	Depth int     `json:"depth"`
	Secs  float64 `json:"secs"`
}

// LookaheadSweep times the scheduled stage-1 reduction at each look-ahead
// depth (best of reps). All depths are bitwise identical — the knob only
// steers the ready queue — so only time is recorded. It is the measurement
// core of the eigtune depth sweep.
func LookaheadSweep(n, nb, workers int, depths []int, reps int) []LookaheadPoint {
	if workers < 1 {
		workers = 1
	}
	if reps < 1 {
		reps = 1
	}
	s := sched.New(workers)
	defer s.Shutdown()
	a := matFor(n)
	pts := make([]LookaheadPoint, 0, len(depths))
	for _, d := range depths {
		sec, _, _, _, _ := measureStage1(s, a, band.Config{NB: nb, Lookahead: d}, reps)
		pts = append(pts, LookaheadPoint{Depth: d, Secs: sec})
	}
	return pts
}
