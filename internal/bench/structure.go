package bench

import (
	"fmt"

	"repro/internal/backtransform"
	"repro/internal/band"
	"repro/internal/bulge"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/testmat"
	"repro/internal/trace"
	"repro/internal/tridiag"
)

// Figure2 reproduces the structural content of the paper's Figure 2: the
// kernel sequence of the bulge-chasing stage. For a small band matrix it
// lists, per sweep, the xHBCEU trigger and the repeating xHBREL/xHBLRU
// chain with the row windows each kernel touches, and verifies the fill-in
// never leaves the extended band (the delayed-annihilation invariant).
func Figure2(n, nb int) *Table {
	rngMat := matFor(n)
	f := band.Reduce(rngMat, nb, nil, nil, nil)
	res := bulge.Chase(f.Band, nil, 0, true, nil, nil)
	t := &Table{
		Name:    fmt.Sprintf("Figure 2 — bulge-chasing kernel structure (n=%d, nb=%d)", n, nb),
		Headers: []string{"sweep", "level", "kernel", "rows"},
	}
	shown := 0
	for _, r := range res.Refs {
		kernel := "xHBCEU"
		if r.Level > 0 {
			kernel = "xHBREL+xHBLRU"
		}
		if r.Sweep < 3 || r.Sweep == n-3 { // keep the dump readable
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", r.Sweep), fmt.Sprintf("%d", r.Level), kernel,
				fmt.Sprintf("[%d..%d]", r.Row, r.Row+len(r.V)),
			})
			shown++
		}
	}
	// Invariants of the kernel lattice.
	perSweep := map[int][]int{}
	for _, r := range res.Refs {
		perSweep[r.Sweep] = append(perSweep[r.Sweep], r.Level)
	}
	ok := true
	for s, levels := range perSweep {
		for i, l := range levels {
			if l != i {
				ok = false
				t.Notes = append(t.Notes, fmt.Sprintf("sweep %d: levels not contiguous", s))
			}
		}
	}
	if ok {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"every sweep is one xHBCEU followed by a contiguous xHBREL/xHBLRU chain (%d reflectors total, %d sweeps) — the pattern of Figure 2.",
			len(res.Refs), len(perSweep)))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d of %d kernel rows shown (first three sweeps and the last).", shown, len(res.Refs)))
	return t
}

// Figure3 reproduces the structural content of the paper's Figure 3: the
// tiling of V₁, the diamond blocking of V₂ with its dependence ordering,
// and the eigenvector-matrix column partition that makes the application
// communication-free.
func Figure3(n, nb, group, cores int) *Table {
	a := matFor(n)
	f := band.Reduce(a, nb, nil, nil, nil)
	res := bulge.Chase(f.Band, nil, 0, true, nil, nil)
	t := &Table{
		Name:    fmt.Sprintf("Figure 3 — back-transformation structure (n=%d, nb=%d, group=%d)", n, nb, group),
		Headers: []string{"quantity", "value"},
	}
	// (a) V1 tiling.
	nt := f.NT
	var v1tiles int
	for k := 0; k < nt-1; k++ {
		v1tiles += nt - 1 - k
	}
	t.Rows = append(t.Rows, []string{"V1 tile grid", fmt.Sprintf("%d×%d tiles of %d×%d", nt, nt, nb, nb)})
	t.Rows = append(t.Rows, []string{"V1 reflector tiles", fmt.Sprintf("%d", v1tiles)})
	// (b) V2 diamonds.
	plan := backtransform.NewPlan(res, group, nil)
	t.Rows = append(t.Rows, []string{"Q2 reflectors", fmt.Sprintf("%d", len(res.Refs))})
	t.Rows = append(t.Rows, []string{"Q2 diamond blocks", fmt.Sprintf("%d", plan.NumBlocks())})
	t.Rows = append(t.Rows, []string{"avg reflectors/diamond", f2(float64(len(res.Refs)) / float64(max(1, plan.NumBlocks())))})
	// (d) DAG edges: consecutive diamonds with overlapping row ranges.
	t.Rows = append(t.Rows, []string{"diamond DAG edges (overlap pairs)", fmt.Sprintf("%d", plan.OverlapEdges())})
	// (c) E column partition.
	colBlock := (n + cores - 1) / cores
	t.Rows = append(t.Rows, []string{"E column blocks (1/core)", fmt.Sprintf("%d blocks × %d cols", cores, colBlock)})
	t.Notes = append(t.Notes,
		"each core applies every diamond to its own E column block in DAG order — zero inter-core traffic (paper Figure 3c).")
	return t
}

// VerifyTable is a cross-cutting correctness experiment: it runs the full
// two-stage pipeline on several generator families and reports the
// normalized residual and orthogonality error (units of n·ε), demonstrating
// backward stability across the suite used by the figures.
func VerifyTable(n int, workers int) *Table {
	t := &Table{
		Name:    fmt.Sprintf("Verification — residual / orthogonality across matrix families (n=%d)", n),
		Headers: []string{"family", "residual (nε)", "ortho (nε)", "spectrum err (nε)"},
	}
	type fam struct {
		name string
		gen  func() (*matrix.Dense, []float64)
	}
	fams := []fam{
		{"random gaussian", func() (*matrix.Dense, []float64) { return matFor(n), nil }},
		{"uniform spectrum", func() (*matrix.Dense, []float64) {
			s := testmat.UniformSpectrum(n, -5, 5)
			return testmat.WithSpectrum(newRng(1), s), s
		}},
		{"geometric spectrum", func() (*matrix.Dense, []float64) {
			s := testmat.GeometricSpectrum(n, 1e-3, 1e3)
			return testmat.WithSpectrum(newRng(2), s), s
		}},
		{"clustered spectrum", func() (*matrix.Dense, []float64) {
			s := testmat.ClusteredSpectrum(n, 5, 1e-9)
			return testmat.WithSpectrum(newRng(3), s), s
		}},
		{"graph laplacian", func() (*matrix.Dense, []float64) {
			return testmat.GraphLaplacian(newRng(4), n, 6), nil
		}},
	}
	for _, fm := range fams {
		a, planted := fm.gen()
		tc := trace.New()
		res, err := solveFamily(a, workers, tc)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s failed: %v", fm.name, err))
			continue
		}
		specErr := "-"
		if planted != nil {
			want := append([]float64(nil), planted...)
			sortFloats(want)
			specErr = f2(testmat.SpectrumError(res.vals, want))
		}
		t.Rows = append(t.Rows, []string{fm.name, f2(res.resid), f2(res.ortho), specErr})
	}
	t.Notes = append(t.Notes, "values of order 1-100 nε indicate full backward stability.")
	return t
}

type familyResult struct {
	vals  []float64
	resid float64
	ortho float64
}

func solveFamily(a *matrix.Dense, workers int, tc *trace.Collector) (*familyResult, error) {
	_, res, err := solveTimed(a, true, coreOptionsDC(workers, tc))
	if err != nil {
		return nil, err
	}
	return &familyResult{
		vals:  res.Values,
		resid: testmat.Residual(a, res.Values, res.Vectors),
		ortho: testmat.OrthoError(res.Vectors),
	}, nil
}

// Stage2ParallelCheck verifies that the bulge-chasing stage produces
// identical results at any worker count (the fine-grained dependence
// tracking of §5.2); it is a structural experiment rather than a timing
// one on this single-core host.
func Stage2ParallelCheck(n, nb int, workerCounts []int) *Table {
	a := matFor(n)
	f := band.Reduce(a, nb, nil, nil, nil)
	ref := bulge.Chase(f.Band, nil, 0, true, nil, nil)
	dref := append([]float64(nil), ref.T.D...)
	eref := append([]float64(nil), ref.T.E...)
	if err := tridiag.Sterf(dref, eref); err != nil {
		return &Table{Name: "Stage-2 parallel check", Notes: []string{err.Error()}}
	}
	t := &Table{
		Name:    fmt.Sprintf("Stage-2 scheduling check (n=%d, nb=%d)", n, nb),
		Headers: []string{"workers", "bitwise equal to sequential"},
	}
	for _, wkr := range workerCounts {
		s := sched.New(wkr)
		got := bulge.Chase(f.Band, s.NewJob(nil), 0, true, nil, nil)
		s.Shutdown()
		equal := true
		for i := range ref.T.D {
			if ref.T.D[i] != got.T.D[i] {
				equal = false
			}
		}
		for i := range ref.T.E {
			if ref.T.E[i] != got.T.E[i] {
				equal = false
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", wkr), fmt.Sprintf("%v", equal)})
	}
	return t
}
