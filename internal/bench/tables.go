package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/onestage"
	"repro/internal/trace"
)

// Table1 regenerates the paper's Table 1 — the flop complexity of the three
// standard methods — from *measured* kernel counters: each driver runs with
// the flop-accounting collector, and the per-phase counts are reported as
// coefficients of n³ next to the paper's values. EigT for D&C is
// deflation-dependent (the paper quotes 4/3…8/3); random matrices deflate
// heavily, so the measured value sits near the low end.
func Table1(n int) *Table {
	t := &Table{
		Name:    fmt.Sprintf("Table 1 — method complexity (coefficients of n³, measured at n=%d)", n),
		Headers: []string{"Routine", "Method", "TRD(paper)", "TRD(meas)", "EigT(paper)", "EigT(meas)", "UpdZ(paper)", "UpdZ(meas)"},
	}
	n3 := float64(n) * float64(n) * float64(n)
	paper := model.Table1()
	methods := []core.Method{core.MethodDC, core.MethodBI, core.MethodQR}
	for i, m := range methods {
		a := matFor(n)
		tc := trace.New()
		o := core.Options{Method: m, Vectors: true, Collector: tc}
		if _, err := core.SyevOneStage(context.Background(), a, o); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%v failed: %v", m, err))
			continue
		}
		// Reduction flops: everything recorded during the reduction phase is
		// attributed by kernel class; symv+gemv dominate TRD.
		trd := float64(tc.Flops(trace.KSymv)+tc.Flops(trace.KGemv)+tc.Flops(trace.KSyrk)) / n3
		updz := float64(tc.Flops(trace.KLarfb)) / n3
		// EigT flops are whatever remains (D&C gemms, QR rotations); the
		// collector cannot attribute tridiagonal-solver internals to BLAS
		// classes, so report the residual of the model instead: measured
		// phase time ratio is covered by Figure 1.
		eigPaper := fmt.Sprintf("%.2f", paper[i].EigT)
		if paper[i].EigT == 0 {
			eigPaper = "O(n²)"
		}
		t.Rows = append(t.Rows, []string{
			paper[i].Routine, paper[i].Method,
			f2(paper[i].TRD), f2(trd),
			eigPaper, "(see Fig 1)",
			f2(paper[i].UpdateZ / 2), f2(updz), // one-stage UpdZ is 2n³ of gemm-equivalent larfb; paper counts 4n³ real flops ≈ 2n³ larfb-accounted
		})
	}
	t.Notes = append(t.Notes,
		"TRD(meas) counts symv+gemv+syr2k flops of the blocked one-stage reduction; paper coefficient 4/3.",
		"UpdZ(meas) counts blocked reflector-application flops; the paper's 4n³ includes both multiplies of the WY update, our larfb accounting reports 4·n·m·k ≈ 4n³ for f=1 too.",
	)
	return t
}

// Table2 regenerates the paper's Table 2: the dominant Level-2 kernel and
// its achieved rate for the three two-sided reductions (TRD = 4×SYMV,
// BRD = 4×GEMV, HRD = 10×GEMV). Each rate is measured by running the
// actual one-stage reduction with the flop counters enabled (not a
// synthetic kernel loop).
func Table2() *Table {
	const n = 640
	rate := func(run func(a *matrix.Dense, tc *trace.Collector)) float64 {
		a := matFor(n)
		tc := trace.New()
		start := time.Now()
		run(a, tc)
		return float64(tc.TotalFlops()) / time.Since(start).Seconds()
	}
	trd := rate(func(a *matrix.Dense, tc *trace.Collector) { onestage.Sytrd(a, 1, nil, tc) })
	brd := rate(func(a *matrix.Dense, tc *trace.Collector) { onestage.Gebrd(a, tc) })
	hrd := rate(func(a *matrix.Dense, tc *trace.Collector) { onestage.Gehrd(a, tc) })
	t := &Table{
		Name:    fmt.Sprintf("Table 2 — two-sided reductions: kernel mix and achieved rate (measured, n=%d)", n),
		Headers: []string{"Reduction", "Operations", "Rate"},
		Rows: [][]string{
			{"TRD", "4x SYMV", fmt.Sprintf("%.2f Gflop/s", trd/1e9)},
			{"BRD", "4x GEMV", fmt.Sprintf("%.2f Gflop/s", brd/1e9)},
			{"HRD", "10x GEMV", fmt.Sprintf("%.2f Gflop/s", hrd/1e9)},
		},
		Notes: []string{
			"paper (Sandy Bridge): TRD 45, BRD 26, HRD 13 Gflop/s — TRD ≥ BRD ≥ HRD because symv reads half the matrix and the Hessenberg update streams the full square twice per column; the ordering is the reproduction target.",
			fmt.Sprintf("raw kernel rates for reference: symv %.2f, gemv %.2f Gflop/s", model.MeasureBeta()/1e9, model.MeasureGemv()/1e9),
		},
	}
	return t
}

// Table3 measures this machine's model parameters — the analogue of the
// paper's Table 3 (α = gemm rate, β = symv rate, p = cores).
func Table3() *Table {
	p := machineParams()
	return &Table{
		Name:    "Table 3 — machine parameters for the complexity model",
		Headers: []string{"Parameter", "This machine", "AMD Magny-Cours (paper)", "Intel Sandy Bridge (paper)"},
		Rows: [][]string{
			{"alpha (gemm)", fmt.Sprintf("%.2f Gflop/s", p.Alpha/1e9), "10 Gflop/s", "20 Gflop/s"},
			{"beta (symv)", fmt.Sprintf("%.2f Gflop/s", p.Beta/1e9), "40 MB/s-class", "80 MB/s-class"},
			{"p (cores)", fmt.Sprintf("%d", p.P), "12", "8"},
			{"alpha/beta", f2(p.Alpha / p.Beta), "~dozens", "~dozens"},
		},
		Notes: []string{
			"the scalar Go substrate narrows alpha/beta versus vectorized MKL; the model scales all figure shapes by this ratio (see EXPERIMENTS.md).",
		},
	}
}

// SVDComparison regenerates §4.1's analysis: the two-stage EVD (Eq. 7)
// versus the authors' earlier two-stage SVD (Eq. 8). The SVD has exactly
// twice the compute-bound flops, so the memory-bound bulge-chasing term —
// the Amdahl fraction — weighs about twice as heavily on the EVD, which is
// the paper's argument for why the eigenproblem is the more
// scheduling-sensitive code.
func SVDComparison(sizes []int) *Table {
	t := &Table{
		Name:    "§4.1 — EVD (Eq. 7) vs SVD (Eq. 8): cubic flops and Amdahl fraction",
		Headers: []string{"n", "EVD n³-flops", "SVD n³-flops", "SVD/EVD", "EVD Amdahl%", "SVD Amdahl%", "ratio"},
	}
	const stage2Factor = 6 * 64 // ≈6·n_b time weighting of the O(n²) term
	for _, n := range sizes {
		s1, _, u2, u1 := model.TwoStageFlops(n, 1)
		g1, _, sb, gu := model.SVDFlops(n)
		evdCubic := s1 + u2 + u1
		svdCubic := g1 + sb + gu
		evdA, svdA := model.AmdahlFractions(n, stage2Factor)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3g", evdCubic), fmt.Sprintf("%.3g", svdCubic),
			f2(svdCubic / evdCubic),
			fmt.Sprintf("%.3f", 100*evdA), fmt.Sprintf("%.3f", 100*svdA),
			f2(evdA / svdA),
		})
	}
	t.Notes = append(t.Notes,
		"paper §4.1: the SVD doubles every cubic term (lack of symmetry), so the EVD's memory-bound share is ≈2x the SVD's at equal n — the measured ratio column should sit near 2 and both fractions should shrink like 1/n.")
	return t
}

// ModelTable evaluates Eqs. 4–6 and 9–10 with this machine's measured
// parameters: predicted one-/two-stage times, the crossover size, the
// asymptotic speedup limit, and the model-optimal bandwidth n_b.
func ModelTable(sizes []int) *Table {
	p := machineParams()
	t := &Table{
		Name:    "Model (Eqs. 4-6, 9-10) with measured machine parameters",
		Headers: []string{"n", "t1s(f=1)", "t2s(f=1)", "ratio", "t1s(f=.2)", "t2s(f=.2)", "ratio"},
	}
	d := 64
	for _, n := range sizes {
		fn := float64(n)
		t1f := model.TimeOneStage(fn, 1, p)
		t2f := model.TimeTwoStage(fn, d, 1, p)
		t1p := model.TimeOneStage(fn, 0.2, p)
		t2p := model.TimeTwoStage(fn, d, 0.2, p)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3g s", t1f), fmt.Sprintf("%.3g s", t2f), f2(t1f / t2f),
			fmt.Sprintf("%.3g s", t1p), fmt.Sprintf("%.3g s", t2p), f2(t1p / t2p),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("crossover n (Eq. 6, D=%d): f=1 → %.0f, f=0.2 → %.0f", d, model.Crossover(d, 1, p), model.Crossover(d, 0.2, p)),
		fmt.Sprintf("asymptotic speedup limit (αp/β + 3/2)/(1+3f): f=1 → %.2f, f=0.2 → %.2f, f→0 → %.2f",
			model.AsymptoticSpeedup(1, p), model.AsymptoticSpeedup(0.2, p), model.AsymptoticSpeedup(0, p)),
		fmt.Sprintf("model-optimal n_b (Eqs. 9-10): %.0f (paper: 80 for its machine)", model.OptimalNB(p)),
	)
	return t
}
