// Package blas provides the subset of Level 1, 2 and 3 BLAS operations in
// double precision that the eigensolver stack is built on.
//
// Conventions follow the reference BLAS: matrices are stored column-major
// with an explicit leading dimension (lda), so element (i, j) of an m×n
// matrix a lives at a[i+j*lda] with lda >= m. All routines are pure Go and
// allocation-free on their hot paths.
//
// The Level 3 kernels (Gemm, Syrk, Syr2k, Trmm) are cache-blocked. Gemm
// additionally supports parallel execution over column panels via
// SetParallelism; everything else is sequential because the eigensolver
// extracts its parallelism one level up, from the task scheduler in
// internal/sched.
package blas

import "fmt"

// Transpose selects op(X) for the Level 2/3 routines.
type Transpose byte

const (
	// NoTrans selects op(X) = X.
	NoTrans Transpose = 'N'
	// Trans selects op(X) = Xᵀ.
	Trans Transpose = 'T'
)

// Uplo selects which triangle of a symmetric or triangular matrix is
// referenced.
type Uplo byte

const (
	// Upper references the upper triangle.
	Upper Uplo = 'U'
	// Lower references the lower triangle.
	Lower Uplo = 'L'
)

// Side selects whether a matrix is applied from the left or the right.
type Side byte

const (
	// Left applies the operator from the left.
	Left Side = 'L'
	// Right applies the operator from the right.
	Right Side = 'R'
)

// Diag indicates whether a triangular matrix has a unit diagonal.
type Diag byte

const (
	// NonUnit means the diagonal entries are referenced.
	NonUnit Diag = 'N'
	// Unit means the diagonal entries are assumed to be 1 and not referenced.
	Unit Diag = 'U'
)

func badParam(routine, what string) string {
	return fmt.Sprintf("blas: %s: bad %s", routine, what)
}

// checkMatrix panics if the described column-major matrix does not fit in a.
func checkMatrix(routine string, m, n int, a []float64, lda int) {
	if m < 0 || n < 0 {
		panic(badParam(routine, "dimension"))
	}
	if lda < max(1, m) {
		panic(badParam(routine, "leading dimension"))
	}
	if n > 0 && len(a) < (n-1)*lda+m {
		panic(badParam(routine, "matrix slice length"))
	}
}

// checkVector panics if the described strided vector does not fit in x.
func checkVector(routine string, n int, x []float64, incX int) {
	if n < 0 {
		panic(badParam(routine, "vector length"))
	}
	if incX == 0 {
		panic(badParam(routine, "vector increment"))
	}
	if n == 0 {
		return
	}
	var need int
	if incX > 0 {
		need = (n-1)*incX + 1
	} else {
		need = (n-1)*(-incX) + 1
	}
	if len(x) < need {
		panic(badParam(routine, "vector slice length"))
	}
}
