package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func randMat(rng *rand.Rand, m, n, ld int) []float64 {
	a := make([]float64, ld*n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			a[i+j*ld] = rng.NormFloat64()
		}
	}
	return a
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// naiveGemm is a triple-loop reference used to validate the blocked kernel.
func naiveGemm(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	at := func(i, l int) float64 {
		if transA == NoTrans {
			return a[i+l*lda]
		}
		return a[l+i*lda]
	}
	bt := func(l, j int) float64 {
		if transB == NoTrans {
			return b[l+j*ldb]
		}
		return b[j+l*ldb]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var sum float64
			for l := 0; l < k; l++ {
				sum += at(i, l) * bt(l, j)
			}
			c[i+j*ldc] = alpha*sum + beta*c[i+j*ldc]
		}
	}
}

func maxDiff(a, b []float64) float64 {
	var d float64
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestDdot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Ddot(3, x, 1, y, 1); got != 32 {
		t.Fatalf("Ddot = %v, want 32", got)
	}
	// Strided: elements 0 and 2 of x against 0 and 1 of y.
	if got := Ddot(2, x, 2, y, 1); got != 1*4+3*5 {
		t.Fatalf("strided Ddot = %v, want 19", got)
	}
}

func TestDaxpyDscalDcopy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{1, 1, 1}
	Daxpy(3, 2, x, 1, y, 1)
	want := []float64{3, 5, 7}
	if maxDiff(y, want) != 0 {
		t.Fatalf("Daxpy = %v, want %v", y, want)
	}
	Dscal(3, 0.5, y, 1)
	want = []float64{1.5, 2.5, 3.5}
	if maxDiff(y, want) != 0 {
		t.Fatalf("Dscal = %v, want %v", y, want)
	}
	z := make([]float64, 3)
	Dcopy(3, y, 1, z, 1)
	if maxDiff(z, y) != 0 {
		t.Fatalf("Dcopy = %v, want %v", z, y)
	}
}

func TestDnrm2Scaling(t *testing.T) {
	// Values that would overflow a naive sum of squares.
	x := []float64{3e200, 4e200}
	got := Dnrm2(2, x, 1)
	if math.Abs(got-5e200)/5e200 > tol {
		t.Fatalf("Dnrm2 overflow case = %v, want 5e200", got)
	}
	// And underflow.
	x = []float64{3e-200, 4e-200}
	got = Dnrm2(2, x, 1)
	if math.Abs(got-5e-200)/5e-200 > tol {
		t.Fatalf("Dnrm2 underflow case = %v, want 5e-200", got)
	}
	if Dnrm2(0, nil, 1) != 0 {
		t.Fatal("Dnrm2 of empty vector should be 0")
	}
}

func TestDnrm2MatchesNaiveProperty(t *testing.T) {
	f := func(raw []float64) bool {
		n := len(raw)
		if n > 64 {
			raw = raw[:64]
			n = 64
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 1
			}
			// Keep magnitudes moderate so the naive formula is exact.
			raw[i] = math.Mod(raw[i], 1e3)
		}
		var ss float64
		for _, v := range raw {
			ss += v * v
		}
		want := math.Sqrt(ss)
		got := Dnrm2(n, raw, 1)
		return math.Abs(got-want) <= tol*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIdamax(t *testing.T) {
	if got := Idamax(4, []float64{1, -7, 3, 2}, 1); got != 1 {
		t.Fatalf("Idamax = %d, want 1", got)
	}
	if got := Idamax(0, nil, 1); got != -1 {
		t.Fatalf("Idamax empty = %d, want -1", got)
	}
}

func TestDrot(t *testing.T) {
	c, s := math.Cos(0.3), math.Sin(0.3)
	x := []float64{1, 0}
	y := []float64{0, 1}
	Drot(2, x, 1, y, 1, c, s)
	// Rotation preserves norms.
	if math.Abs(x[0]*x[0]+y[0]*y[0]-1) > tol || math.Abs(x[1]*x[1]+y[1]*y[1]-1) > tol {
		t.Fatalf("Drot did not preserve norms: x=%v y=%v", x, y)
	}
}

func TestDgemvAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tr := range []Transpose{NoTrans, Trans} {
		for _, dims := range [][2]int{{5, 3}, {1, 7}, {8, 8}, {13, 2}} {
			m, n := dims[0], dims[1]
			lda := m + 2
			a := randMat(rng, m, n, lda)
			lenX, lenY := n, m
			if tr == Trans {
				lenX, lenY = m, n
			}
			x := randVec(rng, lenX)
			y := randVec(rng, lenY)
			want := make([]float64, lenY)
			copy(want, y)
			// Naive.
			for i := 0; i < lenY; i++ {
				var sum float64
				for l := 0; l < lenX; l++ {
					if tr == NoTrans {
						sum += a[i+l*lda] * x[l]
					} else {
						sum += a[l+i*lda] * x[l]
					}
				}
				want[i] = 1.5*sum + 0.5*want[i]
			}
			Dgemv(tr, m, n, 1.5, a, lda, x, 1, 0.5, y, 1)
			if d := maxDiff(y, want); d > tol {
				t.Fatalf("Dgemv trans=%c m=%d n=%d: max diff %g", tr, m, n, d)
			}
		}
	}
}

func TestDsymvMatchesFullGemv(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 9
	lda := n + 1
	// Build a full symmetric matrix, then run Dsymv on each triangle.
	full := randMat(rng, n, n, lda)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			full[j+i*lda] = full[i+j*lda]
		}
	}
	x := randVec(rng, n)
	want := make([]float64, n)
	Dgemv(NoTrans, n, n, 2.0, full, lda, x, 1, 0, want, 1)
	for _, ul := range []Uplo{Upper, Lower} {
		y := make([]float64, n)
		Dsymv(ul, n, 2.0, full, lda, x, 1, 0, y, 1)
		if d := maxDiff(y, want); d > tol {
			t.Fatalf("Dsymv uplo=%c: max diff %g", ul, d)
		}
	}
}

func TestDgerDsyrDsyr2(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n := 6, 4
	lda := m
	a := randMat(rng, m, n, lda)
	want := append([]float64(nil), a...)
	x, y := randVec(rng, m), randVec(rng, n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			want[i+j*lda] += 1.25 * x[i] * y[j]
		}
	}
	Dger(m, n, 1.25, x, 1, y, 1, a, lda)
	if d := maxDiff(a, want); d > tol {
		t.Fatalf("Dger: max diff %g", d)
	}

	// Dsyr and Dsyr2 preserve the opposite triangle and update correctly.
	nn := 5
	s := randMat(rng, nn, nn, nn)
	orig := append([]float64(nil), s...)
	xs := randVec(rng, nn)
	ys := randVec(rng, nn)
	Dsyr(Lower, nn, 0.5, xs, 1, s, nn)
	for j := 0; j < nn; j++ {
		for i := 0; i < nn; i++ {
			if i < j { // upper triangle untouched
				if s[i+j*nn] != orig[i+j*nn] {
					t.Fatal("Dsyr touched the upper triangle")
				}
			} else if d := math.Abs(s[i+j*nn] - (orig[i+j*nn] + 0.5*xs[i]*xs[j])); d > tol {
				t.Fatalf("Dsyr wrong at (%d,%d)", i, j)
			}
		}
	}
	s = append([]float64(nil), orig...)
	Dsyr2(Upper, nn, 0.5, xs, 1, ys, 1, s, nn)
	for j := 0; j < nn; j++ {
		for i := 0; i <= j; i++ {
			wantV := orig[i+j*nn] + 0.5*(xs[i]*ys[j]+ys[i]*xs[j])
			if d := math.Abs(s[i+j*nn] - wantV); d > tol {
				t.Fatalf("Dsyr2 wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestDgemmAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := [][3]int{{3, 4, 5}, {1, 1, 1}, {17, 9, 23}, {64, 64, 64}, {130, 70, 150}, {200, 3, 7}}
	for _, tra := range []Transpose{NoTrans, Trans} {
		for _, trb := range []Transpose{NoTrans, Trans} {
			for _, dims := range cases {
				m, n, k := dims[0], dims[1], dims[2]
				rowA, colA := m, k
				if tra == Trans {
					rowA, colA = k, m
				}
				rowB, colB := k, n
				if trb == Trans {
					rowB, colB = n, k
				}
				lda, ldb, ldc := rowA+1, rowB+3, m+2
				a := randMat(rng, rowA, colA, lda)
				b := randMat(rng, rowB, colB, ldb)
				c := randMat(rng, m, n, ldc)
				want := append([]float64(nil), c...)
				naiveGemm(tra, trb, m, n, k, 0.7, a, lda, b, ldb, -1.3, want, ldc)
				Dgemm(tra, trb, m, n, k, 0.7, a, lda, b, ldb, -1.3, c, ldc)
				if d := maxDiff(c, want); d > 1e-10 {
					t.Fatalf("Dgemm %c%c m=%d n=%d k=%d: max diff %g", tra, trb, m, n, k, d)
				}
			}
		}
	}
}

func TestDgemmParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, n, k := 150, 260, 90
	a := randMat(rng, m, k, m)
	b := randMat(rng, k, n, k)
	c1 := make([]float64, m*n)
	c2 := make([]float64, m*n)
	old := SetParallelism(1)
	Dgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, c1, m)
	SetParallelism(4)
	Dgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, c2, m)
	SetParallelism(old)
	if d := maxDiff(c1, c2); d != 0 {
		t.Fatalf("parallel Dgemm differs from serial by %g", d)
	}
}

func TestDsyrkDsyr2kAgainstGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, k := 11, 7
	for _, tr := range []Transpose{NoTrans, Trans} {
		rowA, colA := n, k
		if tr == Trans {
			rowA, colA = k, n
		}
		a := randMat(rng, rowA, colA, rowA)
		b := randMat(rng, rowA, colA, rowA)
		full := make([]float64, n*n)
		// full = A*Aᵀ (or Aᵀ*A).
		opp := Trans
		if tr == Trans {
			opp = NoTrans
		}
		naiveGemm(tr, opp, n, n, k, 1, a, rowA, a, rowA, 0, full, n)
		for _, ul := range []Uplo{Upper, Lower} {
			c := make([]float64, n*n)
			Dsyrk(ul, tr, n, k, 1, a, rowA, 0, c, n)
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					inTri := (ul == Lower && i >= j) || (ul == Upper && i <= j)
					if inTri {
						if d := math.Abs(c[i+j*n] - full[i+j*n]); d > 1e-10 {
							t.Fatalf("Dsyrk %c%c wrong at (%d,%d): %g", ul, tr, i, j, d)
						}
					} else if c[i+j*n] != 0 {
						t.Fatalf("Dsyrk %c%c touched (%d,%d)", ul, tr, i, j)
					}
				}
			}
		}
		// syr2k: C = A Bᵀ + B Aᵀ.
		full2 := make([]float64, n*n)
		naiveGemm(tr, opp, n, n, k, 1, a, rowA, b, rowA, 0, full2, n)
		naiveGemm(tr, opp, n, n, k, 1, b, rowA, a, rowA, 1, full2, n)
		c := make([]float64, n*n)
		Dsyr2k(Lower, tr, n, k, 1, a, rowA, b, rowA, 0, c, n)
		for j := 0; j < n; j++ {
			for i := j; i < n; i++ {
				if d := math.Abs(c[i+j*n] - full2[i+j*n]); d > 1e-10 {
					t.Fatalf("Dsyr2k %c wrong at (%d,%d): %g", tr, i, j, d)
				}
			}
		}
	}
}

// expandTriangular builds the full dense matrix described by a triangular
// argument so Dtrmm/Dtrsm can be checked against Dgemm.
func expandTriangular(uplo Uplo, diag Diag, n int, a []float64, lda int) []float64 {
	f := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			switch {
			case i == j:
				if diag == Unit {
					f[i+j*n] = 1
				} else {
					f[i+j*n] = a[i+j*lda]
				}
			case (uplo == Upper && i < j) || (uplo == Lower && i > j):
				f[i+j*n] = a[i+j*lda]
			}
		}
	}
	return f
}

func TestDtrmmAgainstGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, n := 6, 5
	for _, side := range []Side{Left, Right} {
		na := m
		if side == Right {
			na = n
		}
		for _, ul := range []Uplo{Upper, Lower} {
			for _, tr := range []Transpose{NoTrans, Trans} {
				for _, dg := range []Diag{NonUnit, Unit} {
					a := randMat(rng, na, na, na)
					b := randMat(rng, m, n, m)
					full := expandTriangular(ul, dg, na, a, na)
					want := make([]float64, m*n)
					if side == Left {
						naiveGemm(tr, NoTrans, m, n, m, 0.9, full, na, b, m, 0, want, m)
					} else {
						naiveGemm(NoTrans, tr, m, n, n, 0.9, b, m, full, na, 0, want, m)
					}
					Dtrmm(side, ul, tr, dg, m, n, 0.9, a, na, b, m)
					if d := maxDiff(b, want); d > 1e-10 {
						t.Fatalf("Dtrmm %c%c%c%c: max diff %g", side, ul, tr, dg, d)
					}
				}
			}
		}
	}
}

func TestDtrsmInvertsDtrmm(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, n := 7, 4
	for _, side := range []Side{Left, Right} {
		na := m
		if side == Right {
			na = n
		}
		for _, ul := range []Uplo{Upper, Lower} {
			for _, tr := range []Transpose{NoTrans, Trans} {
				for _, dg := range []Diag{NonUnit, Unit} {
					a := randMat(rng, na, na, na)
					// Make it well conditioned.
					for i := 0; i < na; i++ {
						a[i+i*na] = 3 + math.Abs(a[i+i*na])
					}
					b := randMat(rng, m, n, m)
					orig := append([]float64(nil), b...)
					Dtrmm(side, ul, tr, dg, m, n, 1, a, na, b, m)
					Dtrsm(side, ul, tr, dg, m, n, 1, a, na, b, m)
					if d := maxDiff(b, orig); d > 1e-9 {
						t.Fatalf("Dtrsm(Dtrmm(B)) != B for %c%c%c%c: max diff %g", side, ul, tr, dg, d)
					}
				}
			}
		}
	}
}

func TestDsymmAgainstGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, n := 6, 8
	for _, side := range []Side{Left, Right} {
		na := m
		if side == Right {
			na = n
		}
		full := randMat(rng, na, na, na)
		for j := 0; j < na; j++ {
			for i := 0; i < j; i++ {
				full[j+i*na] = full[i+j*na]
			}
		}
		b := randMat(rng, m, n, m)
		want := make([]float64, m*n)
		if side == Left {
			naiveGemm(NoTrans, NoTrans, m, n, m, 1.1, full, na, b, m, 0, want, m)
		} else {
			naiveGemm(NoTrans, NoTrans, m, n, n, 1.1, b, m, full, na, 0, want, m)
		}
		for _, ul := range []Uplo{Upper, Lower} {
			c := make([]float64, m*n)
			Dsymm(side, ul, m, n, 1.1, full, na, b, m, 0, c, m)
			if d := maxDiff(c, want); d > 1e-10 {
				t.Fatalf("Dsymm %c%c: max diff %g", side, ul, d)
			}
		}
	}
}

func TestGemmPropertyLinearity(t *testing.T) {
	// (alpha A)(B) == alpha (A B) for random small shapes.
	rng := rand.New(rand.NewSource(10))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n, k := 1+r.Intn(20), 1+r.Intn(20), 1+r.Intn(20)
		alpha := r.NormFloat64()
		a := randMat(rng, m, k, m)
		b := randMat(rng, k, n, k)
		c1 := make([]float64, m*n)
		c2 := make([]float64, m*n)
		Dgemm(NoTrans, NoTrans, m, n, k, alpha, a, m, b, k, 0, c1, m)
		Dgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, c2, m)
		for i := range c2 {
			c2[i] *= alpha
		}
		return maxDiff(c1, c2) < 1e-10*(1+math.Abs(alpha))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParamPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("negative n", func() { Ddot(-1, nil, 1, nil, 1) })
	mustPanic("zero inc", func() { Dscal(3, 1, make([]float64, 3), 0) })
	mustPanic("short slice", func() { Dgemv(NoTrans, 4, 4, 1, make([]float64, 4), 4, make([]float64, 4), 1, 0, make([]float64, 4), 1) })
	mustPanic("bad lda", func() { Dgemm(NoTrans, NoTrans, 4, 4, 4, 1, make([]float64, 16), 2, make([]float64, 16), 4, 0, make([]float64, 16), 4) })
}

func TestDswapDasum(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	Dswap(3, x, 1, y, 1)
	if x[0] != 4 || y[2] != 3 {
		t.Fatalf("Dswap wrong: %v %v", x, y)
	}
	if got := Dasum(3, []float64{1, -2, 3}, 1); got != 6 {
		t.Fatalf("Dasum = %v", got)
	}
	// Negative increments traverse from the far end.
	z := []float64{1, 2, 3, 4}
	if got := Ddot(2, z, -2, z, 2); got != 3*1+1*3 {
		t.Fatalf("negative-stride Ddot = %v", got)
	}
}

func TestSetParallelismClamp(t *testing.T) {
	old := SetParallelism(-3)
	if Parallelism() != 1 {
		t.Fatalf("negative parallelism not clamped: %d", Parallelism())
	}
	SetParallelism(old)
}

func TestDtrmmRecursiveLargeAgainstGemm(t *testing.T) {
	// Sizes that exercise the recursive split (na > 48) in all eight
	// side/uplo/trans combinations, against the dense reference.
	rng := rand.New(rand.NewSource(11))
	for _, side := range []Side{Left, Right} {
		for _, ul := range []Uplo{Upper, Lower} {
			for _, tr := range []Transpose{NoTrans, Trans} {
				for _, dg := range []Diag{NonUnit, Unit} {
					m, n := 70, 65
					na := m
					if side == Right {
						na = n
					}
					a := randMat(rng, na, na, na+1)
					b := randMat(rng, m, n, m+2)
					full := expandTriangular(ul, dg, na, a, na+1)
					want := make([]float64, (m+2)*n)
					copy(want, b)
					if side == Left {
						naiveGemm(tr, NoTrans, m, n, m, 1.1, full, na, b, m+2, 0, want, m+2)
					} else {
						naiveGemm(NoTrans, tr, m, n, n, 1.1, b, m+2, full, na, 0, want, m+2)
					}
					Dtrmm(side, ul, tr, dg, m, n, 1.1, a, na+1, b, m+2)
					// Compare only the m×n region (padding rows untouched).
					for j := 0; j < n; j++ {
						for i := 0; i < m; i++ {
							if d := math.Abs(b[i+j*(m+2)] - want[i+j*(m+2)]); d > 1e-10 {
								t.Fatalf("recursive Dtrmm %c%c%c%c wrong at (%d,%d): %g", side, ul, tr, dg, i, j, d)
							}
						}
					}
				}
			}
		}
	}
}
