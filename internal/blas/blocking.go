package blas

import (
	"sync"
	"sync/atomic"
)

// Kernel selects the GEMM micro-kernel family. All kernels produce bitwise
// identical results for the same KC (every element of C is accumulated as an
// independent chain over k in ascending order, split at KC boundaries; the
// accumulator tile shape and the MC/NC cache blocking never reorder a
// chain), so the autotuner may switch kernels freely without perturbing
// solver output.
type Kernel int

const (
	// KernelAuto picks the best tile the build supports: the 8×4 assembly
	// kernel when compiled in (build tag blasasm) and the CPU has AVX2,
	// otherwise the portable 2×4 kernel (8 accumulator chains fit the
	// 16-register scalar FPU file of amd64 without spilling; the wider
	// portable tiles win only on machines with larger register files).
	KernelAuto Kernel = iota
	// Kernel2x4 is the portable 2×4 accumulator tile (8 chains), the
	// narrowest register footprint.
	Kernel2x4
	// Kernel4x4 is the portable 4×4 accumulator tile (16 chains): each
	// packed load is reused four times, which keeps the scalar FPU pipeline
	// full without spilling on amd64.
	Kernel4x4
	// Kernel8x4 is the 8×4 accumulator tile (32 chains): the assembly
	// kernel's native shape. The portable form spills some accumulators to
	// the (L1-resident) stack; it exists so the asm and no-asm builds can
	// run the identical tiling.
	Kernel8x4
	// KernelSeed is the frozen pre-rework kernel (2×4 tile, B re-packed per
	// j-strip, fixed 128/128/64 blocking): the "before" baseline of
	// BENCH_kernels.json and the reference the bitwise gates compare
	// against.
	KernelSeed
)

func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case Kernel2x4:
		return "2x4"
	case Kernel4x4:
		return "4x4"
	case Kernel8x4:
		return "8x4"
	case KernelSeed:
		return "seed"
	}
	return "unknown"
}

// KernelFromString parses the profile-schema spelling of a kernel name.
// Unknown names report ok=false.
func KernelFromString(s string) (Kernel, bool) {
	switch s {
	case "auto", "":
		return KernelAuto, true
	case "2x4":
		return Kernel2x4, true
	case "4x4":
		return Kernel4x4, true
	case "8x4":
		return Kernel8x4, true
	case "seed":
		return KernelSeed, true
	}
	return KernelAuto, false
}

// Blocking is the runtime-tunable cache/register blocking of the Level 3
// GEMM driver. MC×KC is the packed A block (streamed from L2), KC×NC the
// packed B block (reused across every MC strip), and Kernel the accumulator
// tile.
//
// KC is the one parameter that is *not* numerically neutral: C is
// accumulated in KC-sized partial sums, so changing it changes the rounding
// of every result. The default (and the only value the stock autotuner
// persists) is DefaultKC, which keeps all kernels, the seed baseline, and
// tuned-vs-untuned runs bitwise identical.
type Blocking struct {
	MC, KC, NC int
	Kernel     Kernel
}

// Default blocking. KC matches the seed kernel so the rework is bitwise
// identical to it; MC/NC are a 256 KiB A-block and a B panel wide enough to
// amortize packing across all MC strips.
const (
	DefaultMC = 256
	DefaultKC = 128
	DefaultNC = 512
)

// DefaultBlocking returns the stock configuration.
func DefaultBlocking() Blocking {
	return Blocking{MC: DefaultMC, KC: DefaultKC, NC: DefaultNC, Kernel: KernelAuto}
}

// normalize fills unset (≤ 0) fields with the defaults and clamps the rest
// to sane values in place (minimums keep the pack buffers non-degenerate;
// NC is rounded up to the 4-column tile so packed B panels stay uniform).
// The zero Blocking therefore means "stock configuration except where set":
// Blocking{Kernel: Kernel4x4} selects a kernel without disturbing the cache
// blocking.
func (b *Blocking) normalize() {
	if b.MC <= 0 {
		b.MC = DefaultMC
	}
	if b.KC <= 0 {
		b.KC = DefaultKC
	}
	if b.NC <= 0 {
		b.NC = DefaultNC
	}
	if b.MC < 8 {
		b.MC = 8
	}
	if b.KC < 8 {
		b.KC = 8
	}
	if b.NC < 8 {
		b.NC = 8
	}
	b.NC = (b.NC + 3) &^ 3
	if b.Kernel < KernelAuto || b.Kernel > KernelSeed {
		b.Kernel = KernelAuto
	}
}

// blocking is the active configuration, read once per Dgemm call.
var blocking atomic.Pointer[Blocking]

func init() {
	b := DefaultBlocking()
	blocking.Store(&b)
}

// SetBlocking installs a new GEMM blocking configuration and returns the
// previous one. Out-of-range values are clamped. The configuration is
// global: it describes the machine, not a particular caller, and is
// normally installed once from the persisted tune profile.
func SetBlocking(b Blocking) Blocking {
	b.normalize()
	old := blocking.Swap(&b)
	return *old
}

// CurrentBlocking reports the active GEMM blocking configuration.
func CurrentBlocking() Blocking { return *blocking.Load() }

// AsmActive reports whether the assembly micro-kernel is compiled in (build
// tag blasasm) and the CPU/OS support it — i.e. whether KernelAuto and
// Kernel8x4 run the assembly tiles. Exposed for the bench harness and
// eigtune, which record it alongside measured rates.
func AsmActive() bool { return asmActive() }

// microNR is the fixed accumulator-tile width: every micro-kernel consumes
// packed B in 4-column panels.
const microNR = 4

// resolveMR maps the configured kernel to the packed-A panel height and
// reports whether the assembly kernel should run the full tiles.
func (b *Blocking) resolveMR() (mr int, useAsm bool) {
	k := b.Kernel
	if k == KernelAuto {
		if asmActive() {
			return 8, true
		}
		return 2, false
	}
	switch k {
	case Kernel2x4:
		return 2, false
	case Kernel8x4:
		return 8, asmActive()
	default:
		return 4, false
	}
}

// packBuf carries the packed-A and packed-B panels of one blocked GEMM
// invocation. The buffers are threaded through the whole driver (one Get
// per Dgemm call, one per worker on the parallel path) instead of living on
// the micro-kernel's stack, which is what lets B be packed once per
// (NC, KC) block and reused across every MC strip.
type packBuf struct {
	a []float64
	b []float64
}

var packBufPool = sync.Pool{New: func() interface{} { return new(packBuf) }}

// getPackBuf returns a buffer with at least na floats of A-panel and nb of
// B-panel storage. Callers size the request to the actual problem
// (min(MC,m)·min(KC,k) etc.), not the configured maxima: the tile kernels
// issue millions of tiny gemms, and handing each one the full default-sized
// buffers would thrash the garbage collector whenever the pool goes cold.
func getPackBuf(na, nb int) *packBuf {
	pb := packBufPool.Get().(*packBuf)
	if cap(pb.a) < na {
		pb.a = make([]float64, na)
	}
	if cap(pb.b) < nb {
		pb.b = make([]float64, nb)
	}
	pb.a = pb.a[:na]
	pb.b = pb.b[:nb]
	return pb
}

func putPackBuf(pb *packBuf) { packBufPool.Put(pb) }
