package blas

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the number of goroutines Dgemm may fan out to. It defaults
// to GOMAXPROCS and may be changed with SetParallelism. The eigensolver's
// task scheduler usually wants this set to 1 so that parallelism is
// extracted at the task level instead of inside individual kernels.
var parallelism int64 = int64(runtime.GOMAXPROCS(0))

// SetParallelism sets the maximum number of goroutines the Level 3 kernels
// may use internally and returns the previous value. n < 1 is treated as 1.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(atomic.SwapInt64(&parallelism, int64(n)))
}

// Parallelism reports the current Level 3 kernel parallelism.
func Parallelism() int { return int(atomic.LoadInt64(&parallelism)) }

// Dgemm computes C := alpha*op(A)*op(B) + beta*C where op(A) is m×k and
// op(B) is k×n, all column-major.
//
// The blocked driver packs op(A) into MC×KC row-panels and op(B) into
// KC×NC column-panels (once per block — the packed B panel is reused across
// every MC strip), then runs the register-blocked micro-kernel selected by
// the active Blocking over the packed panels. Every C element is one
// accumulation chain over k in ascending order, split only at KC
// boundaries, so for a fixed KC all kernels — including the frozen seed
// kernel and the optional assembly kernel — produce bitwise identical
// results.
func Dgemm(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	rowA, colA := m, k
	if transA == Trans {
		rowA, colA = k, m
	}
	rowB, colB := k, n
	if transB == Trans {
		rowB, colB = n, k
	}
	checkMatrix("dgemm", rowA, colA, a, lda)
	checkMatrix("dgemm", rowB, colB, b, ldb)
	checkMatrix("dgemm", m, n, c, ldc)
	if m == 0 || n == 0 {
		return
	}
	if beta != 1 {
		for j := 0; j < n; j++ {
			col := c[j*ldc : j*ldc+m]
			if beta == 0 {
				for i := range col {
					col[i] = 0
				}
			} else {
				for i := range col {
					col[i] *= beta
				}
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}

	// The loaded configuration is shared by pointer (SetBlocking swaps the
	// pointer, never mutates in place); copying it here would make the copy
	// escape into the closures below and cost one heap allocation per call,
	// which the tile kernels issue millions of times.
	bk := blocking.Load()
	if bk.Kernel == KernelSeed {
		dgemmSeed(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	mr, useAsm := bk.resolveMR()
	// Pack storage sized to the actual problem, not the configured maxima
	// (a 24-wide tile-kernel gemm should not pin a megabyte of buffers).
	kcEff := min(bk.KC, k)
	packNA := min(bk.MC, (m+mr-1)/mr*mr) * kcEff
	packNB := min(bk.NC, (n+3)&^3) * kcEff

	p := Parallelism()
	if p > 1 && n >= 2*bk.NC && int64(m)*int64(n)*int64(k) > 1<<18 {
		// Split C into column panels; each panel is an independent gemm.
		panels := (n + bk.NC - 1) / bk.NC
		if p > panels {
			p = panels
		}
		var wg sync.WaitGroup
		var next int64
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := getPackBuf(packNA, packNB)
				defer putPackBuf(buf)
				for {
					j := int(atomic.AddInt64(&next, 1)-1) * bk.NC
					if j >= n {
						return
					}
					jn := min(bk.NC, n-j)
					var bsub []float64
					if transB == NoTrans {
						bsub = b[j*ldb:]
					} else {
						bsub = b[j:]
					}
					gemmBlocked(transA, transB, m, jn, k, alpha, a, lda, bsub, ldb, c[j*ldc:], ldc, bk, mr, useAsm, buf)
				}
			}()
		}
		wg.Wait()
		return
	}
	buf := getPackBuf(packNA, packNB)
	gemmBlocked(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc, bk, mr, useAsm, buf)
	putPackBuf(buf)
}

// gemmBlocked computes C += alpha*op(A)*op(B) (beta already applied) with
// the three-level cache blocking. buf supplies the pack storage for the
// whole call; nothing below this level allocates.
func gemmBlocked(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, bk *Blocking, mr int, useAsm bool, buf *packBuf) {
	for jj := 0; jj < n; jj += bk.NC {
		nc := min(bk.NC, n-jj)
		for kk := 0; kk < k; kk += bk.KC {
			kc := min(bk.KC, k-kk)
			// Pack alpha·op(B)[kk:kk+kc, jj:jj+nc] once; it is reused by
			// every MC strip of A below (the seed kernel re-packed it per
			// strip, which this structure exists to fix).
			packB(buf.b, transB, b, ldb, kk, jj, kc, nc, alpha, useAsm)
			for ii := 0; ii < m; ii += bk.MC {
				mc := min(bk.MC, m-ii)
				packA(buf.a, transA, a, lda, ii, kk, mc, kc, mr, useAsm)
				gemmMacro(buf.a, buf.b, mc, nc, kc, mr, useAsm, c[ii+jj*ldc:], ldc)
			}
		}
	}
}

// packB packs alpha·op(B)[kk:kk+kc, jj:jj+nc] into 4-column panels of
// kc·4 values each. In stream layout (portable kernels) each panel is four
// contiguous length-kc column streams, panel[t*kc+l]; in interleaved layout
// (assembly kernel, which broadcasts the four B values of one k step from
// consecutive memory) it is panel[l*4+t]. Ragged panels are zero-padded to
// the full tile width; the padded columns are computed by the micro-kernel
// but never stored. The layout never affects results: each C element's
// accumulation chain only depends on the order of k, which both layouts
// preserve.
func packB(dst []float64, transB Transpose, b []float64, ldb, kk, jj, kc, nc int, alpha float64, interleave bool) {
	np := (nc + microNR - 1) / microNR
	for q := 0; q < np; q++ {
		panel := dst[q*microNR*kc : (q+1)*microNR*kc]
		w := min(microNR, nc-q*microNR)
		if interleave {
			for t := 0; t < w; t++ {
				if transB == NoTrans {
					src := b[kk+(jj+q*microNR+t)*ldb:]
					for l := 0; l < kc; l++ {
						panel[l*microNR+t] = alpha * src[l]
					}
				} else {
					for l := 0; l < kc; l++ {
						panel[l*microNR+t] = alpha * b[(jj+q*microNR+t)+(kk+l)*ldb]
					}
				}
			}
			for t := w; t < microNR; t++ {
				for l := 0; l < kc; l++ {
					panel[l*microNR+t] = 0
				}
			}
			continue
		}
		for t := 0; t < w; t++ {
			col := panel[t*kc : t*kc+kc]
			if transB == NoTrans {
				src := b[kk+(jj+q*microNR+t)*ldb:]
				for l := 0; l < kc; l++ {
					col[l] = alpha * src[l]
				}
			} else {
				for l := 0; l < kc; l++ {
					col[l] = alpha * b[(jj+q*microNR+t)+(kk+l)*ldb]
				}
			}
		}
		for t := w; t < microNR; t++ {
			col := panel[t*kc : t*kc+kc]
			for l := range col {
				col[l] = 0
			}
		}
	}
}

// packA packs op(A)[ii:ii+mc, kk:kk+kc] into row-panels of mr rows. Full
// panels are mr contiguous length-kc row streams (panel[r*kc+l]) for the
// portable kernels, or k-interleaved (panel[l*mr+r], so one VMOVUPD reads
// a full column of the tile) for the assembly kernel. The final ragged
// panel (h < mr rows) is always packed as streams at its exact height and
// dispatched to the generic fringe kernel.
func packA(dst []float64, transA Transpose, a []float64, lda, ii, kk, mc, kc, mr int, interleave bool) {
	off := 0
	for p := 0; p < mc; p += mr {
		h := min(mr, mc-p)
		panel := dst[off : off+h*kc]
		if interleave && h == mr {
			if transA == NoTrans {
				for l := 0; l < kc; l++ {
					src := a[ii+p+(kk+l)*lda:]
					row := panel[l*h : l*h+h]
					for r := range row {
						row[r] = src[r]
					}
				}
			} else {
				for r := 0; r < h; r++ {
					src := a[kk+(ii+p+r)*lda:]
					for l := 0; l < kc; l++ {
						panel[l*h+r] = src[l]
					}
				}
			}
			off += h * kc
			continue
		}
		if transA == NoTrans {
			// Row r of the panel is contiguous; the strided reads walk
			// each column of a once.
			for r := 0; r < h; r++ {
				src := a[ii+p+r+kk*lda:]
				row := panel[r*kc : r*kc+kc]
				for l := range row {
					row[l] = src[l*lda]
				}
			}
		} else {
			// Row r of op(A) is a contiguous column of a.
			for r := 0; r < h; r++ {
				src := a[kk+(ii+p+r)*lda:]
				copy(panel[r*kc:r*kc+kc], src[:kc])
			}
		}
		off += h * kc
	}
}

// gemmMacro runs the micro-kernel grid over one packed (mc×kc)·(kc×nc)
// block. The loop order keeps each 4-column B panel L1-resident while the
// packed A block streams through it.
func gemmMacro(apack, bpack []float64, mc, nc, kc, mr int, useAsm bool, c []float64, ldc int) {
	np := (nc + microNR - 1) / microNR
	for q := 0; q < np; q++ {
		bp := bpack[q*microNR*kc : (q+1)*microNR*kc]
		nr := min(microNR, nc-q*microNR)
		cq := c[q*microNR*ldc:]
		off := 0
		for p := 0; p < mc; p += mr {
			h := min(mr, mc-p)
			ap := apack[off : off+h*kc]
			off += h * kc
			ct := cq[p:]
			switch {
			case h < mr && useAsm:
				kernMx4i(kc, h, ap, bp, ct, ldc, nr)
			case h < mr:
				kernMx4(kc, h, ap, bp, ct, ldc, nr)
			case useAsm:
				kern8x4asm(kc, ap, bp, ct, ldc, nr)
			case mr == 8:
				kern8x4(kc, ap, bp, ct, ldc, nr)
			case mr == 4:
				kern4x4(kc, ap, bp, ct, ldc, nr)
			default:
				kern2x4(kc, ap, bp, ct, ldc, nr)
			}
		}
	}
}
