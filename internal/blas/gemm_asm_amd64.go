//go:build blasasm && amd64

package blas

// The AVX2 8×4 micro-kernel, compiled in with -tags blasasm. It deliberately
// uses separate VMULPD/VADDPD instructions rather than FMA: each of the 32
// accumulator chains then performs exactly the multiply-round/add-round
// sequence of the portable kern8x4, so the two are bitwise identical and
// the gate in scripts/check.sh can compare them for equality, not
// tolerance. (Fusing would also break equality with default Go builds,
// which do not emit FMA on amd64 at GOAMD64=v1.)
//
// Availability is probed once at startup via CPUID/XGETBV: AVX2 plus OS
// support for YMM state. Without it the portable kernel runs and the build
// tag is inert.

// gemm8x4avx2 computes out[8×4] = Ap·Bp over kc steps of the packed panels
// (ap advances 8 values per step, bp 4). out is column-major contiguous and
// fully overwritten.
//
//go:noescape
func gemm8x4avx2(kc int, ap, bp, out *float64)

// cpuidAsm executes CPUID with the given eax/ecx inputs.
func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbvAsm reads XCR0 (requires OSXSAVE).
func xgetbvAsm() (eax, edx uint32)

// hasAVX2 reports whether the CPU supports AVX2 and the OS preserves YMM
// state across context switches.
var hasAVX2 = func() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	if ecx1&osxsave == 0 {
		return false
	}
	xlo, _ := xgetbvAsm()
	if xlo&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}()

// asmActive reports whether the assembly micro-kernel will run full tiles.
func asmActive() bool { return hasAVX2 }

// kern8x4asm adds one 8×4 tile computed by the assembly kernel into C. The
// kernel writes register sums to a contiguous staging tile; the single
// add-to-memory per element here matches the portable kernels' rounding.
func kern8x4asm(kc int, ap, bp []float64, c []float64, ldc, nr int) {
	if !hasAVX2 {
		kern8x4(kc, ap, bp, c, ldc, nr)
		return
	}
	var out [32]float64
	gemm8x4avx2(kc, &ap[0], &bp[0], &out[0])
	for j := 0; j < nr; j++ {
		cc := c[j*ldc : j*ldc+8]
		o := out[j*8 : j*8+8]
		for i := range cc {
			cc[i] += o[i]
		}
	}
}
