//go:build blasasm && amd64

#include "textflag.h"

// func gemm8x4avx2(kc int, ap, bp, out *float64)
//
// 8×4 AVX2 micro-kernel: Y0..Y7 hold the 32 accumulator chains
// (Y(2j) = rows 0..3 of column j, Y(2j+1) = rows 4..7). Per k step it
// loads 8 packed A values (two YMM) and broadcasts the 4 packed B values,
// issuing 8 VMULPD + 8 VADDPD. No FMA: the separate round after the
// multiply is what keeps this bitwise identical to the portable kernel.
TEXT ·gemm8x4avx2(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ out+24(FP), DX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	TESTQ CX, CX
	JZ    store

loop:
	VMOVUPD (SI), Y8    // a[0:4]
	VMOVUPD 32(SI), Y9  // a[4:8]

	VBROADCASTSD (DI), Y10
	VMULPD Y10, Y8, Y11
	VADDPD Y11, Y0, Y0
	VMULPD Y10, Y9, Y12
	VADDPD Y12, Y1, Y1

	VBROADCASTSD 8(DI), Y13
	VMULPD Y13, Y8, Y11
	VADDPD Y11, Y2, Y2
	VMULPD Y13, Y9, Y12
	VADDPD Y12, Y3, Y3

	VBROADCASTSD 16(DI), Y14
	VMULPD Y14, Y8, Y11
	VADDPD Y11, Y4, Y4
	VMULPD Y14, Y9, Y12
	VADDPD Y12, Y5, Y5

	VBROADCASTSD 24(DI), Y15
	VMULPD Y15, Y8, Y11
	VADDPD Y11, Y6, Y6
	VMULPD Y15, Y9, Y12
	VADDPD Y12, Y7, Y7

	ADDQ $64, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop

store:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VMOVUPD Y4, 128(DX)
	VMOVUPD Y5, 160(DX)
	VMOVUPD Y6, 192(DX)
	VMOVUPD Y7, 224(DX)
	VZEROUPPER
	RET

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
