package blas

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchGemm measures C += A·B at n×n×n for a fixed kernel selection.
func benchGemm(b *testing.B, n int, kern Kernel) {
	prev := SetBlocking(Blocking{Kernel: kern})
	defer SetBlocking(prev)
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, n*n)
	bm := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()
		bm[i] = rng.Float64()
	}
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dgemm(NoTrans, NoTrans, n, n, n, 1, a, n, bm, n, 0, c, n)
	}
	b.ReportMetric(2*float64(n)*float64(n)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GF/s")
}

func BenchmarkDgemm(b *testing.B) {
	kernels := []Kernel{KernelSeed, Kernel2x4, Kernel4x4, Kernel8x4, KernelAuto}
	for _, n := range []int{128, 512} {
		for _, k := range kernels {
			b.Run(fmt.Sprintf("n=%d/%v", n, k), func(b *testing.B) { benchGemm(b, n, k) })
		}
	}
}
