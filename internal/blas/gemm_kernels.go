package blas

// Portable register-blocked GEMM micro-kernels. Each computes an h×4 block
// of C += Ap·Bp from panels packed by packA/packB in stream layout: the
// panel is h (resp. 4) contiguous length-kc streams, one per A row / B
// column, so every inner loop is an indexed walk over pre-sliced arrays and
// the compiler drops all bounds checks (the interleaved layout the assembly
// kernel uses defeats that and costs ~2.5× in scalar code). nr ≤ 4 is the
// number of valid C columns; padded B columns are computed into dead
// accumulators and discarded.
//
// Every C element is accumulated in its own scalar chain over l = 0..kc-1
// and added to memory exactly once, so the kernels are bitwise
// interchangeable — with each other, with the generic fringe kernel, and
// with the assembly kernel (which uses separate multiply and add
// instructions for exactly this reason).

func kern2x4(kc int, ap, bp []float64, c []float64, ldc, nr int) {
	a0 := ap[0*kc : 1*kc]
	a1 := ap[1*kc : 2*kc]
	b0 := bp[0*kc : 1*kc]
	b1 := bp[1*kc : 2*kc]
	b2 := bp[2*kc : 3*kc]
	b3 := bp[3*kc : 4*kc]
	var s00, s10, s01, s11, s02, s12, s03, s13 float64
	for l := 0; l < kc; l++ {
		av0, av1 := a0[l], a1[l]
		s00 += av0 * b0[l]
		s10 += av1 * b0[l]
		s01 += av0 * b1[l]
		s11 += av1 * b1[l]
		s02 += av0 * b2[l]
		s12 += av1 * b2[l]
		s03 += av0 * b3[l]
		s13 += av1 * b3[l]
	}
	c[0] += s00
	c[1] += s10
	if nr > 1 {
		c[ldc] += s01
		c[ldc+1] += s11
	}
	if nr > 2 {
		c[2*ldc] += s02
		c[2*ldc+1] += s12
	}
	if nr > 3 {
		c[3*ldc] += s03
		c[3*ldc+1] += s13
	}
}

// kern4x4 reuses each packed load four times (32 flops per 8 loads versus
// 16 per 6 for the 2×4 tile). Its 16 accumulators are at the edge of the
// amd64 XMM file, so a few chains spill; which tile wins is
// machine-dependent, which is exactly what the autotuner sweep measures.
func kern4x4(kc int, ap, bp []float64, c []float64, ldc, nr int) {
	a0 := ap[0*kc : 1*kc]
	a1 := ap[1*kc : 2*kc]
	a2 := ap[2*kc : 3*kc]
	a3 := ap[3*kc : 4*kc]
	b0 := bp[0*kc : 1*kc]
	b1 := bp[1*kc : 2*kc]
	b2 := bp[2*kc : 3*kc]
	b3 := bp[3*kc : 4*kc]
	var s00, s10, s20, s30 float64
	var s01, s11, s21, s31 float64
	var s02, s12, s22, s32 float64
	var s03, s13, s23, s33 float64
	for l := 0; l < kc; l++ {
		av0, av1, av2, av3 := a0[l], a1[l], a2[l], a3[l]
		bv0, bv1, bv2, bv3 := b0[l], b1[l], b2[l], b3[l]
		s00 += av0 * bv0
		s10 += av1 * bv0
		s20 += av2 * bv0
		s30 += av3 * bv0
		s01 += av0 * bv1
		s11 += av1 * bv1
		s21 += av2 * bv1
		s31 += av3 * bv1
		s02 += av0 * bv2
		s12 += av1 * bv2
		s22 += av2 * bv2
		s32 += av3 * bv2
		s03 += av0 * bv3
		s13 += av1 * bv3
		s23 += av2 * bv3
		s33 += av3 * bv3
	}
	cc := c[:4]
	cc[0] += s00
	cc[1] += s10
	cc[2] += s20
	cc[3] += s30
	if nr > 1 {
		cc = c[ldc : ldc+4]
		cc[0] += s01
		cc[1] += s11
		cc[2] += s21
		cc[3] += s31
	}
	if nr > 2 {
		cc = c[2*ldc : 2*ldc+4]
		cc[0] += s02
		cc[1] += s12
		cc[2] += s22
		cc[3] += s32
	}
	if nr > 3 {
		cc = c[3*ldc : 3*ldc+4]
		cc[0] += s03
		cc[1] += s13
		cc[2] += s23
		cc[3] += s33
	}
}

// kern8x4 is the portable twin of the assembly kernel's native tile. Its 32
// accumulators far exceed the scalar register file, so it runs as two 4×4
// half-tiles over the same packed panel — the chains are identical (each C
// element is still one sum over l), only the interleaving of independent
// chains differs, which floating point cannot observe.
func kern8x4(kc int, ap, bp []float64, c []float64, ldc, nr int) {
	kern4x4(kc, ap[:4*kc], bp, c, ldc, nr)
	kern4x4(kc, ap[4*kc:], bp, c[4:], ldc, nr)
}

// kernMx4 handles the ragged final A panel (1 ≤ h < mr rows, packed as h
// streams). It runs the same per-element accumulation chains as the fast
// kernels, just without the unrolled register tile; it only ever sees the
// fringe of the matrix, so its share of the work is O(1/m).
func kernMx4(kc, h int, ap, bp []float64, c []float64, ldc, nr int) {
	b0 := bp[0*kc : 1*kc]
	b1 := bp[1*kc : 2*kc]
	b2 := bp[2*kc : 3*kc]
	b3 := bp[3*kc : 4*kc]
	for r := 0; r < h; r++ {
		ar := ap[r*kc : r*kc+kc]
		var s0, s1, s2, s3 float64
		for l, av := range ar {
			s0 += av * b0[l]
			s1 += av * b1[l]
			s2 += av * b2[l]
			s3 += av * b3[l]
		}
		c[r] += s0
		if nr > 1 {
			c[r+ldc] += s1
		}
		if nr > 2 {
			c[r+2*ldc] += s2
		}
		if nr > 3 {
			c[r+3*ldc] += s3
		}
	}
}

// kernMx4i is kernMx4 for the assembly-mode packing, where the B panel is
// interleaved (bp[l*4+t]) instead of column streams. A ragged panels are
// packed as streams in both modes.
func kernMx4i(kc, h int, ap, bp []float64, c []float64, ldc, nr int) {
	for r := 0; r < h; r++ {
		ar := ap[r*kc : r*kc+kc]
		var s0, s1, s2, s3 float64
		for l, av := range ar {
			bl := bp[l*4 : l*4+4]
			s0 += av * bl[0]
			s1 += av * bl[1]
			s2 += av * bl[2]
			s3 += av * bl[3]
		}
		c[r] += s0
		if nr > 1 {
			c[r+ldc] += s1
		}
		if nr > 2 {
			c[r+2*ldc] += s2
		}
		if nr > 3 {
			c[r+3*ldc] += s3
		}
	}
}
