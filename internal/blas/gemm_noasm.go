//go:build !blasasm || !amd64

package blas

// Stubs for builds without the assembly micro-kernel (no blasasm tag, or a
// non-amd64 target): the 8×4 tile runs its portable form and KernelAuto
// resolves to the 4×4 kernel.

func asmActive() bool { return false }

func kern8x4asm(kc int, ap, bp []float64, c []float64, ldc, nr int) {
	kern8x4(kc, ap, bp, c, ldc, nr)
}
