package blas

import (
	"fmt"
	"math/rand"
	"testing"
)

// withBlocking runs f under a temporary GEMM blocking configuration.
func withBlocking(t *testing.T, bk Blocking, f func()) {
	t.Helper()
	prev := SetBlocking(bk)
	defer SetBlocking(prev)
	f()
}

// gemmOnce runs one Dgemm over fresh copies of the inputs and returns C.
func gemmOnce(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) []float64 {
	cc := append([]float64(nil), c...)
	Dgemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, cc, ldc)
	return cc
}

// TestDgemmFringeAgainstNaive exercises every ragged edge of the blocked
// driver: dimensions around the register tile (1..9) and around each cache
// block boundary, padded leading dimensions, special-cased alpha/beta, and
// all transpose combinations, for every kernel.
func TestDgemmFringeAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bk := DefaultBlocking()
	dims := []int{1, 2, 3, 5, 7, 8, 9}
	for _, edge := range []int{bk.MC, bk.KC, bk.NC} {
		dims = append(dims, edge-1, edge+1)
	}
	kernels := []Kernel{Kernel2x4, Kernel4x4, Kernel8x4, KernelAuto}
	cases := 0
	for _, m := range dims {
		for _, n := range dims {
			for _, k := range dims {
				if m*n*k > 1<<21 { // keep the large-edge combinations affordable
					continue
				}
				// Deterministic subsample of the parameter grid to bound runtime.
				if cases++; cases%7 != 0 && m > 9 && n > 9 {
					continue
				}
				lda, ldb, ldc := m+3, k+2, m+1
				transA, transB := NoTrans, NoTrans
				switch cases % 4 {
				case 1:
					transA = Trans
					lda = k + 3
				case 2:
					transB = Trans
					ldb = n + 2
				case 3:
					transA, transB = Trans, Trans
					lda, ldb = k+3, n+2
				}
				ra, ca := m, k
				if transA == Trans {
					ra, ca = k, m
				}
				rb, cb := k, n
				if transB == Trans {
					rb, cb = n, k
				}
				a := randMat(rng, ra, ca, lda)
				b := randMat(rng, rb, cb, ldb)
				c := randMat(rng, m, n, ldc)
				alpha := []float64{0, 1, -1, 0.5}[cases%4]
				beta := []float64{0, 1, 2}[cases%3]
				want := append([]float64(nil), c...)
				naiveGemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, want, ldc)
				for _, kern := range kernels {
					var got []float64
					withBlocking(t, Blocking{Kernel: kern}, func() {
						got = gemmOnce(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
					})
					if d := maxDiff(got, want); d > 1e-10*float64(k+1) {
						t.Fatalf("kernel %v m=%d n=%d k=%d tA=%c tB=%c alpha=%g beta=%g: max diff %g",
							kern, m, n, k, transA, transB, alpha, beta, d)
					}
				}
			}
		}
	}
}

// TestDgemmKernelsBitwiseIdentical checks the central determinism contract:
// for the default KC, every kernel — including the frozen seed path and,
// under the blasasm tag, the assembly kernel via KernelAuto — produces
// bitwise identical output.
func TestDgemmKernelsBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type shape struct{ m, n, k int }
	shapes := []shape{
		{300, 300, 300},
		{129, 65, 257},
		{7, 513, 128},
		{256, 4, 256},
	}
	kernels := []Kernel{Kernel2x4, Kernel4x4, Kernel8x4, KernelAuto}
	for _, s := range shapes {
		a := randMat(rng, s.m, s.k, s.m)
		b := randMat(rng, s.k, s.n, s.k)
		c := randMat(rng, s.m, s.n, s.m)
		var ref []float64
		withBlocking(t, Blocking{Kernel: KernelSeed}, func() {
			ref = gemmOnce(NoTrans, NoTrans, s.m, s.n, s.k, 1.25, a, s.m, b, s.k, 0.5, c, s.m)
		})
		for _, kern := range kernels {
			var got []float64
			withBlocking(t, Blocking{Kernel: kern}, func() {
				got = gemmOnce(NoTrans, NoTrans, s.m, s.n, s.k, 1.25, a, s.m, b, s.k, 0.5, c, s.m)
			})
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("kernel %v shape %v: element %d = %x, seed = %x (not bitwise identical)",
						kern, s, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestDgemmBlockingInvariance checks that MC and NC are numerically
// neutral: only KC may change results (it splits the accumulation chains),
// and the default configurations all share KC.
func TestDgemmBlockingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, n, k := 200, 180, 300
	a := randMat(rng, m, k, m)
	b := randMat(rng, k, n, k)
	c := randMat(rng, m, n, m)
	var ref []float64
	withBlocking(t, DefaultBlocking(), func() {
		ref = gemmOnce(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 1, c, m)
	})
	configs := []Blocking{
		{MC: 32, NC: 32},
		{MC: 64, NC: 512},
		{MC: 8, NC: 8},
		{MC: 1024, NC: 1024, Kernel: Kernel8x4},
		{MC: 48, NC: 36, Kernel: Kernel2x4},
	}
	for _, bk := range configs {
		var got []float64
		withBlocking(t, bk, func() {
			got = gemmOnce(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 1, c, m)
		})
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("blocking %+v: element %d differs from default blocking (%x vs %x)",
					bk, i, got[i], ref[i])
			}
		}
	}
}

// TestSetBlockingNormalizes documents the zero-value semantics: unset
// fields take the defaults, so a profile can set just the kernel.
func TestSetBlockingNormalizes(t *testing.T) {
	prev := SetBlocking(Blocking{Kernel: Kernel2x4})
	got := CurrentBlocking()
	SetBlocking(prev)
	want := Blocking{MC: DefaultMC, KC: DefaultKC, NC: DefaultNC, Kernel: Kernel2x4}
	if got != want {
		t.Fatalf("SetBlocking{Kernel:2x4} = %+v, want %+v", got, want)
	}
}

func TestKernelStringRoundTrip(t *testing.T) {
	for _, k := range []Kernel{KernelAuto, Kernel2x4, Kernel4x4, Kernel8x4, KernelSeed} {
		back, ok := KernelFromString(k.String())
		if !ok || back != k {
			t.Fatalf("KernelFromString(%q) = %v, %v", k.String(), back, ok)
		}
	}
	if _, ok := KernelFromString("bogus"); ok {
		t.Fatal("KernelFromString accepted bogus name")
	}
}

// TestDgemmPanelSplitMatchesSerial checks that the worker split over NC
// panels is numerically inert (bitwise, not just approximately).
func TestDgemmPanelSplitMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m, n, k := 96, 4*DefaultNC, 64
	a := randMat(rng, m, k, m)
	b := randMat(rng, k, n, k)
	c := randMat(rng, m, n, m)
	prev := SetParallelism(1)
	serial := gemmOnce(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, c, m)
	SetParallelism(4)
	par := gemmOnce(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, c, m)
	SetParallelism(prev)
	for i := range par {
		if par[i] != serial[i] {
			t.Fatalf("parallel element %d differs from serial", i)
		}
	}
}

// TestLevel3RoutingAgainstRef checks the blocked Dsyrk/Dsyr2k/Dsymm/Dtrsm
// paths (sizes above routeBlock, so off-diagonal work routes through Dgemm)
// against their scalar reference forms.
func TestLevel3RoutingAgainstRef(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n, k := routeBlock*2+7, 83
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			t.Run(fmt.Sprintf("syrk_%c%c", uplo, trans), func(t *testing.T) {
				ra, ca := n, k
				if trans == Trans {
					ra, ca = k, n
				}
				a := randMat(rng, ra, ca, ra)
				c := randMat(rng, n, n, n)
				got := append([]float64(nil), c...)
				Dsyrk(uplo, trans, n, k, 0.75, a, ra, 0.5, got, n)
				want := append([]float64(nil), c...)
				scaleTriangle(uplo, n, 0.5, want, n)
				syrkRef(uplo, trans, n, k, 0.75, a, ra, want, n)
				if d := maxDiff(got, want); d > 1e-11*float64(k) {
					t.Fatalf("Dsyrk routed path differs from reference: %g", d)
				}
			})
			t.Run(fmt.Sprintf("syr2k_%c%c", uplo, trans), func(t *testing.T) {
				ra, ca := n, k
				if trans == Trans {
					ra, ca = k, n
				}
				a := randMat(rng, ra, ca, ra)
				b := randMat(rng, ra, ca, ra)
				c := randMat(rng, n, n, n)
				got := append([]float64(nil), c...)
				Dsyr2k(uplo, trans, n, k, -0.5, a, ra, b, ra, 2, got, n)
				want := append([]float64(nil), c...)
				scaleTriangle(uplo, n, 2, want, n)
				syr2kRef(uplo, trans, n, k, -0.5, a, ra, b, ra, want, n)
				if d := maxDiff(got, want); d > 1e-11*float64(k) {
					t.Fatalf("Dsyr2k routed path differs from reference: %g", d)
				}
			})
		}
		for _, side := range []Side{Left, Right} {
			na := n
			t.Run(fmt.Sprintf("symm_%c%c", side, uplo), func(t *testing.T) {
				m2, n2 := n+5, n
				if side == Right {
					m2, n2 = n, n+5
					_ = na
				}
				nd := n + 5 // order of the symmetric operand (m2 for Left, n2 for Right)
				a := randMat(rng, nd, nd, nd)
				b := randMat(rng, m2, n2, m2)
				c := randMat(rng, m2, n2, m2)
				got := append([]float64(nil), c...)
				Dsymm(side, uplo, m2, n2, 1.5, a, nd, b, m2, 0.25, got, m2)
				want := append([]float64(nil), c...)
				for j := 0; j < n2; j++ {
					for i := 0; i < m2; i++ {
						want[i+j*m2] *= 0.25
					}
				}
				symmRef(side, uplo, m2, n2, 1.5, a, nd, b, m2, want, m2)
				if d := maxDiff(got, want); d > 1e-11*float64(nd) {
					t.Fatalf("Dsymm routed path differs from reference: %g", d)
				}
			})
		}
	}
}

// TestDtrsmRecursiveLarge solves a large well-conditioned triangular system
// through the recursive path and checks the residual of each solve against
// a Dtrmm round trip.
func TestDtrsmRecursiveLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					m, n := 70, 65
					na := m
					if side == Right {
						na = n
					}
					a := randMat(rng, na, na, na)
					// Small off-diagonals plus a dominant diagonal keep the
					// solve well conditioned for both Unit and NonUnit (Unit
					// ignores the stored diagonal entirely).
					for i := range a {
						a[i] *= 0.1
					}
					for i := 0; i < na; i++ {
						a[i+i*na] += float64(na)
					}
					x := randMat(rng, m, n, m)
					b := append([]float64(nil), x...)
					Dtrmm(side, uplo, trans, diag, m, n, 1, a, na, b, m)
					Dtrsm(side, uplo, trans, diag, m, n, 1, a, na, b, m)
					if d := maxDiff(b, x); d > 1e-10 {
						t.Fatalf("side=%c uplo=%c trans=%c diag=%c: Dtrsm∘Dtrmm max diff %g",
							side, uplo, trans, diag, d)
					}
				}
			}
		}
	}
}
