package blas

import (
	"sync"
	"sync/atomic"
)

// This file is the frozen pre-rework GEMM path, selectable with
// Blocking{Kernel: KernelSeed}. It is kept verbatim (fixed 128/128/64
// blocking, 2×4 tile, B re-packed per j-strip, per-call bpack on the
// stack) as the "before" baseline of BENCH_kernels.json and as the bitwise
// reference the packed kernels are gated against. Do not optimize it.

// Block sizes for the seed cache-blocked Dgemm micro-kernel. The kernel
// computes C[mc×nc] += A[mc×kc]·B[kc×nc] with A packed row-panel-wise so
// the inner loops stream contiguously.
const (
	gemmMC = 128
	gemmKC = 128
	gemmNC = 64
)

// packPool recycles the seed A-packing buffers; tile kernels issue millions
// of small gemms and a fresh 128×128 buffer per call would dominate their
// cost.
var packPool = sync.Pool{
	New: func() interface{} {
		buf := make([]float64, gemmMC*gemmKC)
		return &buf
	},
}

// dgemmSeed is the seed kernel's whole post-validation body: parallel
// column-panel split plus the blocked serial kernel (beta already applied
// by Dgemm).
func dgemmSeed(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	p := Parallelism()
	if p > 1 && n >= 2*gemmNC && int64(m)*int64(n)*int64(k) > 1<<18 {
		// Split C into column panels; each panel is an independent gemm.
		panels := (n + gemmNC - 1) / gemmNC
		if p > panels {
			p = panels
		}
		var wg sync.WaitGroup
		var next int64
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(atomic.AddInt64(&next, 1)-1) * gemmNC
					if j >= n {
						return
					}
					jn := min(gemmNC, n-j)
					var bsub []float64
					if transB == NoTrans {
						bsub = b[j*ldb:]
					} else {
						bsub = b[j:]
					}
					gemmSerialSeed(transA, transB, m, jn, k, alpha, a, lda, bsub, ldb, c[j*ldc:], ldc)
				}
			}()
		}
		wg.Wait()
		return
	}
	gemmSerialSeed(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
}

// gemmSerialSeed computes C += alpha*op(A)*op(B) (beta already applied)
// with cache blocking.
func gemmSerialSeed(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	// Pack a kc×mc block of op(A) transposed into apack so that the
	// micro-kernel reads it with stride 1 along k.
	bufp := packPool.Get().(*[]float64)
	defer packPool.Put(bufp)
	apack := *bufp
	for kk := 0; kk < k; kk += gemmKC {
		kc := min(gemmKC, k-kk)
		for ii := 0; ii < m; ii += gemmMC {
			mc := min(gemmMC, m-ii)
			// apack[l + i*kc] = op(A)[ii+i, kk+l]
			if transA == NoTrans {
				for i := 0; i < mc; i++ {
					for l := 0; l < kc; l++ {
						apack[l+i*kc] = a[(ii+i)+(kk+l)*lda]
					}
				}
			} else {
				for i := 0; i < mc; i++ {
					col := a[(ii+i)*lda:]
					copy(apack[i*kc:i*kc+kc], col[kk:kk+kc])
				}
			}
			for jj := 0; jj < n; jj += gemmNC {
				nc := min(gemmNC, n-jj)
				gemmMicroSeed(transB, mc, nc, kc, alpha, apack, b, ldb, kk, jj, c[ii+jj*ldc:], ldc)
			}
		}
	}
}

// gemmMicroSeed computes the mc×nc block update using the packed A block
// with a 2×4 register-blocked inner kernel: two rows of packed A against
// four packed columns of op(B) give eight independent accumulator chains,
// which keeps the FPU pipeline full and reuses every load four times.
func gemmMicroSeed(transB Transpose, mc, nc, kc int, alpha float64, apack []float64, b []float64, ldb int, kk, jj int, c []float64, ldc int) {
	var bpack [4 * gemmKC]float64
	packB := func(j, w int) {
		for q := 0; q < w; q++ {
			dst := bpack[q*kc : q*kc+kc]
			if transB == NoTrans {
				src := b[(jj+j+q)*ldb+kk:]
				for l := 0; l < kc; l++ {
					dst[l] = alpha * src[l]
				}
			} else {
				for l := 0; l < kc; l++ {
					dst[l] = alpha * b[(jj+j+q)+(kk+l)*ldb]
				}
			}
		}
	}
	j := 0
	for ; j+3 < nc; j += 4 {
		packB(j, 4)
		b0 := bpack[0*kc : 0*kc+kc]
		b1 := bpack[1*kc : 1*kc+kc]
		b2 := bpack[2*kc : 2*kc+kc]
		b3 := bpack[3*kc : 3*kc+kc]
		c0 := c[(j+0)*ldc:]
		c1 := c[(j+1)*ldc:]
		c2 := c[(j+2)*ldc:]
		c3 := c[(j+3)*ldc:]
		i := 0
		for ; i+1 < mc; i += 2 {
			a0 := apack[i*kc : i*kc+kc]
			a1 := apack[(i+1)*kc : (i+1)*kc+kc]
			var s00, s01, s02, s03, s10, s11, s12, s13 float64
			for l := 0; l < kc; l++ {
				av0, av1 := a0[l], a1[l]
				s00 += av0 * b0[l]
				s01 += av0 * b1[l]
				s02 += av0 * b2[l]
				s03 += av0 * b3[l]
				s10 += av1 * b0[l]
				s11 += av1 * b1[l]
				s12 += av1 * b2[l]
				s13 += av1 * b3[l]
			}
			c0[i] += s00
			c1[i] += s01
			c2[i] += s02
			c3[i] += s03
			c0[i+1] += s10
			c1[i+1] += s11
			c2[i+1] += s12
			c3[i+1] += s13
		}
		if i < mc {
			a0 := apack[i*kc : i*kc+kc]
			var s0, s1, s2, s3 float64
			for l := 0; l < kc; l++ {
				av := a0[l]
				s0 += av * b0[l]
				s1 += av * b1[l]
				s2 += av * b2[l]
				s3 += av * b3[l]
			}
			c0[i] += s0
			c1[i] += s1
			c2[i] += s2
			c3[i] += s3
		}
	}
	for ; j < nc; j++ {
		packB(j, 1)
		b0 := bpack[:kc]
		ccol := c[j*ldc : j*ldc+mc]
		for i := 0; i < mc; i++ {
			arow := apack[i*kc : i*kc+kc]
			var sum float64
			for l, av := range arow {
				sum += av * b0[l]
			}
			ccol[i] += sum
		}
	}
}
