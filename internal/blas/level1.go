package blas

import "math"

// Ddot returns the dot product xᵀy of two strided n-vectors.
func Ddot(n int, x []float64, incX int, y []float64, incY int) float64 {
	checkVector("ddot", n, x, incX)
	checkVector("ddot", n, y, incY)
	if n == 0 {
		return 0
	}
	if incX == 1 && incY == 1 {
		var sum float64
		for i, v := range x[:n] {
			sum += v * y[i]
		}
		return sum
	}
	var sum float64
	ix, iy := startIdx(n, incX), startIdx(n, incY)
	for i := 0; i < n; i++ {
		sum += x[ix] * y[iy]
		ix += incX
		iy += incY
	}
	return sum
}

// Daxpy computes y := alpha*x + y for strided n-vectors.
func Daxpy(n int, alpha float64, x []float64, incX int, y []float64, incY int) {
	checkVector("daxpy", n, x, incX)
	checkVector("daxpy", n, y, incY)
	if n == 0 || alpha == 0 {
		return
	}
	if incX == 1 && incY == 1 {
		for i, v := range x[:n] {
			y[i] += alpha * v
		}
		return
	}
	ix, iy := startIdx(n, incX), startIdx(n, incY)
	for i := 0; i < n; i++ {
		y[iy] += alpha * x[ix]
		ix += incX
		iy += incY
	}
}

// Dscal computes x := alpha*x for a strided n-vector.
func Dscal(n int, alpha float64, x []float64, incX int) {
	checkVector("dscal", n, x, incX)
	if n == 0 {
		return
	}
	if incX == 1 {
		for i := range x[:n] {
			x[i] *= alpha
		}
		return
	}
	ix := startIdx(n, incX)
	for i := 0; i < n; i++ {
		x[ix] *= alpha
		ix += incX
	}
}

// Dcopy copies x into y for strided n-vectors.
func Dcopy(n int, x []float64, incX int, y []float64, incY int) {
	checkVector("dcopy", n, x, incX)
	checkVector("dcopy", n, y, incY)
	if n == 0 {
		return
	}
	if incX == 1 && incY == 1 {
		copy(y[:n], x[:n])
		return
	}
	ix, iy := startIdx(n, incX), startIdx(n, incY)
	for i := 0; i < n; i++ {
		y[iy] = x[ix]
		ix += incX
		iy += incY
	}
}

// Dswap exchanges x and y for strided n-vectors.
func Dswap(n int, x []float64, incX int, y []float64, incY int) {
	checkVector("dswap", n, x, incX)
	checkVector("dswap", n, y, incY)
	ix, iy := startIdx(n, incX), startIdx(n, incY)
	for i := 0; i < n; i++ {
		x[ix], y[iy] = y[iy], x[ix]
		ix += incX
		iy += incY
	}
}

// Dnrm2 returns the Euclidean norm of a strided n-vector, computed with
// scaling to avoid overflow and underflow, as in the reference BLAS.
func Dnrm2(n int, x []float64, incX int) float64 {
	checkVector("dnrm2", n, x, incX)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return math.Abs(x[startIdx(n, incX)])
	}
	scale, ssq := 0.0, 1.0
	ix := startIdx(n, incX)
	for i := 0; i < n; i++ {
		v := x[ix]
		ix += incX
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Dasum returns the sum of absolute values of a strided n-vector.
func Dasum(n int, x []float64, incX int) float64 {
	checkVector("dasum", n, x, incX)
	var sum float64
	ix := startIdx(n, incX)
	for i := 0; i < n; i++ {
		sum += math.Abs(x[ix])
		ix += incX
	}
	return sum
}

// Idamax returns the index of the element with the largest absolute value of
// a strided n-vector, or -1 if n == 0.
func Idamax(n int, x []float64, incX int) int {
	checkVector("idamax", n, x, incX)
	if n == 0 {
		return -1
	}
	best, bestIdx := math.Abs(x[startIdx(n, incX)]), 0
	ix := startIdx(n, incX)
	for i := 0; i < n; i++ {
		if av := math.Abs(x[ix]); av > best {
			best, bestIdx = av, i
		}
		ix += incX
	}
	return bestIdx
}

// Drot applies a plane rotation: (x, y) := (c*x + s*y, c*y - s*x).
func Drot(n int, x []float64, incX int, y []float64, incY int, c, s float64) {
	checkVector("drot", n, x, incX)
	checkVector("drot", n, y, incY)
	ix, iy := startIdx(n, incX), startIdx(n, incY)
	for i := 0; i < n; i++ {
		xv, yv := x[ix], y[iy]
		x[ix] = c*xv + s*yv
		y[iy] = c*yv - s*xv
		ix += incX
		iy += incY
	}
}

// startIdx returns the starting offset for a strided vector, matching the
// BLAS convention that negative increments traverse from the far end.
func startIdx(n, inc int) int {
	if inc >= 0 {
		return 0
	}
	return (n - 1) * (-inc)
}
