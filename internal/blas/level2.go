package blas

// Dgemv computes y := alpha*op(A)*x + beta*y where op(A) is A or Aᵀ and A is
// an m×n column-major matrix.
func Dgemv(trans Transpose, m, n int, alpha float64, a []float64, lda int, x []float64, incX int, beta float64, y []float64, incY int) {
	checkMatrix("dgemv", m, n, a, lda)
	lenX, lenY := n, m
	if trans == Trans {
		lenX, lenY = m, n
	}
	checkVector("dgemv", lenX, x, incX)
	checkVector("dgemv", lenY, y, incY)
	if m == 0 || n == 0 {
		return
	}
	if beta != 1 {
		if beta == 0 {
			iy := startIdx(lenY, incY)
			for i := 0; i < lenY; i++ {
				y[iy] = 0
				iy += incY
			}
		} else {
			Dscal(lenY, beta, y, incY)
		}
	}
	if alpha == 0 {
		return
	}
	switch trans {
	case NoTrans:
		// y += alpha * A * x, traversing A by columns.
		ix := startIdx(n, incX)
		if incY == 1 {
			// Fast path: fuse four column axpys per pass over y, so each
			// y element is loaded and stored once per four columns instead
			// of once per column.
			yy := y[:m]
			j := 0
			for ; j+3 < n; j += 4 {
				t0 := alpha * x[ix]
				t1 := alpha * x[ix+incX]
				t2 := alpha * x[ix+2*incX]
				t3 := alpha * x[ix+3*incX]
				ix += 4 * incX
				c0 := a[(j+0)*lda : (j+0)*lda+m]
				c1 := a[(j+1)*lda : (j+1)*lda+m]
				c2 := a[(j+2)*lda : (j+2)*lda+m]
				c3 := a[(j+3)*lda : (j+3)*lda+m]
				for i, v := range c0 {
					yy[i] += t0*v + t1*c1[i] + t2*c2[i] + t3*c3[i]
				}
			}
			for ; j < n; j++ {
				t := alpha * x[ix]
				ix += incX
				if t != 0 {
					col := a[j*lda : j*lda+m]
					for i, v := range col {
						yy[i] += t * v
					}
				}
			}
			return
		}
		for j := 0; j < n; j++ {
			t := alpha * x[ix]
			ix += incX
			if t != 0 {
				col := a[j*lda : j*lda+m]
				iy := startIdx(m, incY)
				for i := 0; i < m; i++ {
					y[iy] += t * col[i]
					iy += incY
				}
			}
		}
	case Trans:
		// y += alpha * Aᵀ * x: each column of A dotted with x.
		iy := startIdx(n, incY)
		if incX == 1 {
			// Fast path: four simultaneous dot products share each load
			// of x.
			xx := x[:m]
			j := 0
			for ; j+3 < n; j += 4 {
				c0 := a[(j+0)*lda : (j+0)*lda+m]
				c1 := a[(j+1)*lda : (j+1)*lda+m]
				c2 := a[(j+2)*lda : (j+2)*lda+m]
				c3 := a[(j+3)*lda : (j+3)*lda+m]
				var s0, s1, s2, s3 float64
				for i, xv := range xx {
					s0 += c0[i] * xv
					s1 += c1[i] * xv
					s2 += c2[i] * xv
					s3 += c3[i] * xv
				}
				y[iy] += alpha * s0
				y[iy+incY] += alpha * s1
				y[iy+2*incY] += alpha * s2
				y[iy+3*incY] += alpha * s3
				iy += 4 * incY
			}
			for ; j < n; j++ {
				col := a[j*lda : j*lda+m]
				var sum float64
				for i, v := range col {
					sum += v * xx[i]
				}
				y[iy] += alpha * sum
				iy += incY
			}
			return
		}
		for j := 0; j < n; j++ {
			col := a[j*lda : j*lda+m]
			var sum float64
			ix := startIdx(m, incX)
			for i := 0; i < m; i++ {
				sum += col[i] * x[ix]
				ix += incX
			}
			y[iy] += alpha * sum
			iy += incY
		}
	default:
		panic(badParam("dgemv", "transpose"))
	}
}

// Dsymv computes y := alpha*A*x + beta*y where A is an n×n symmetric matrix
// of which only the triangle selected by uplo is referenced.
func Dsymv(uplo Uplo, n int, alpha float64, a []float64, lda int, x []float64, incX int, beta float64, y []float64, incY int) {
	checkMatrix("dsymv", n, n, a, lda)
	checkVector("dsymv", n, x, incX)
	checkVector("dsymv", n, y, incY)
	if n == 0 {
		return
	}
	if beta != 1 {
		if beta == 0 {
			iy := startIdx(n, incY)
			for i := 0; i < n; i++ {
				y[iy] = 0
				iy += incY
			}
		} else {
			Dscal(n, beta, y, incY)
		}
	}
	if alpha == 0 {
		return
	}
	if incX != 1 || incY != 1 {
		// The eigensolver only uses unit strides; keep the strided path
		// simple and correct rather than fast.
		x0, y0 := startIdx(n, incX), startIdx(n, incY)
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < n; i++ {
				s += symAt(uplo, a, lda, j, i) * x[x0+i*incX]
			}
			y[y0+j*incY] += alpha * s
		}
		return
	}
	// Each stored column j contributes an axpy into y (the column itself)
	// and a dot product against x (its mirrored row). The inner loops are
	// unrolled four ways with two independent partial sums so the fused
	// multiply chains do not serialize on a single accumulator.
	switch uplo {
	case Lower:
		for j := 0; j < n; j++ {
			t := alpha * x[j]
			col := a[j*lda:]
			y[j] += t * col[j]
			var s0, s1 float64
			i := j + 1
			for ; i+3 < n; i += 4 {
				v0, v1, v2, v3 := col[i], col[i+1], col[i+2], col[i+3]
				y[i] += t * v0
				y[i+1] += t * v1
				y[i+2] += t * v2
				y[i+3] += t * v3
				s0 += v0*x[i] + v1*x[i+1]
				s1 += v2*x[i+2] + v3*x[i+3]
			}
			for ; i < n; i++ {
				v := col[i]
				y[i] += t * v
				s0 += v * x[i]
			}
			y[j] += alpha * (s0 + s1)
		}
	case Upper:
		for j := 0; j < n; j++ {
			t := alpha * x[j]
			col := a[j*lda:]
			var s0, s1 float64
			i := 0
			for ; i+3 < j; i += 4 {
				v0, v1, v2, v3 := col[i], col[i+1], col[i+2], col[i+3]
				y[i] += t * v0
				y[i+1] += t * v1
				y[i+2] += t * v2
				y[i+3] += t * v3
				s0 += v0*x[i] + v1*x[i+1]
				s1 += v2*x[i+2] + v3*x[i+3]
			}
			for ; i < j; i++ {
				v := col[i]
				y[i] += t * v
				s0 += v * x[i]
			}
			y[j] += t*col[j] + alpha*(s0+s1)
		}
	default:
		panic(badParam("dsymv", "uplo"))
	}
}

// symAt reads element (i, j) of a symmetric matrix stored in the given
// triangle.
func symAt(uplo Uplo, a []float64, lda, i, j int) float64 {
	if (uplo == Lower && i < j) || (uplo == Upper && i > j) {
		i, j = j, i
	}
	return a[i+j*lda]
}

// Dger computes the rank-1 update A := alpha*x*yᵀ + A for an m×n matrix A.
func Dger(m, n int, alpha float64, x []float64, incX int, y []float64, incY int, a []float64, lda int) {
	checkMatrix("dger", m, n, a, lda)
	checkVector("dger", m, x, incX)
	checkVector("dger", n, y, incY)
	if m == 0 || n == 0 || alpha == 0 {
		return
	}
	iy := startIdx(n, incY)
	for j := 0; j < n; j++ {
		t := alpha * y[iy]
		iy += incY
		if t != 0 {
			col := a[j*lda : j*lda+m]
			if incX == 1 {
				for i := range col {
					col[i] += t * x[i]
				}
			} else {
				ix := startIdx(m, incX)
				for i := range col {
					col[i] += t * x[ix]
					ix += incX
				}
			}
		}
	}
}

// Dsyr computes the symmetric rank-1 update A := alpha*x*xᵀ + A, updating
// only the triangle selected by uplo.
func Dsyr(uplo Uplo, n int, alpha float64, x []float64, incX int, a []float64, lda int) {
	checkMatrix("dsyr", n, n, a, lda)
	checkVector("dsyr", n, x, incX)
	if n == 0 || alpha == 0 {
		return
	}
	for j := 0; j < n; j++ {
		xj := x[startIdx(n, incX)+j*incX]
		if xj == 0 {
			continue
		}
		t := alpha * xj
		col := a[j*lda:]
		if uplo == Lower {
			for i := j; i < n; i++ {
				col[i] += t * x[startIdx(n, incX)+i*incX]
			}
		} else {
			for i := 0; i <= j; i++ {
				col[i] += t * x[startIdx(n, incX)+i*incX]
			}
		}
	}
}

// Dsyr2 computes the symmetric rank-2 update A := alpha*(x*yᵀ + y*xᵀ) + A,
// updating only the triangle selected by uplo. Only unit increments are
// supported on the fast path; other strides fall back to a simple loop.
func Dsyr2(uplo Uplo, n int, alpha float64, x []float64, incX int, y []float64, incY int, a []float64, lda int) {
	checkMatrix("dsyr2", n, n, a, lda)
	checkVector("dsyr2", n, x, incX)
	checkVector("dsyr2", n, y, incY)
	if n == 0 || alpha == 0 {
		return
	}
	xat := func(i int) float64 { return x[startIdx(n, incX)+i*incX] }
	yat := func(i int) float64 { return y[startIdx(n, incY)+i*incY] }
	for j := 0; j < n; j++ {
		tx := alpha * xat(j)
		ty := alpha * yat(j)
		col := a[j*lda:]
		if uplo == Lower {
			for i := j; i < n; i++ {
				col[i] += tx*yat(i) + ty*xat(i)
			}
		} else {
			for i := 0; i <= j; i++ {
				col[i] += tx*yat(i) + ty*xat(i)
			}
		}
	}
}

// Dtrmv computes x := op(A)*x for an n×n triangular matrix A.
func Dtrmv(uplo Uplo, trans Transpose, diag Diag, n int, a []float64, lda int, x []float64, incX int) {
	checkMatrix("dtrmv", n, n, a, lda)
	checkVector("dtrmv", n, x, incX)
	if n == 0 {
		return
	}
	if incX != 1 {
		panic(badParam("dtrmv", "increment (only 1 supported)"))
	}
	unit := diag == Unit
	switch {
	case uplo == Upper && trans == NoTrans:
		for i := 0; i < n; i++ {
			var sum float64
			if !unit {
				sum = a[i+i*lda] * x[i]
			} else {
				sum = x[i]
			}
			for j := i + 1; j < n; j++ {
				sum += a[i+j*lda] * x[j]
			}
			x[i] = sum
		}
	case uplo == Upper && trans == Trans:
		for i := n - 1; i >= 0; i-- {
			var sum float64
			if !unit {
				sum = a[i+i*lda] * x[i]
			} else {
				sum = x[i]
			}
			for j := 0; j < i; j++ {
				sum += a[j+i*lda] * x[j]
			}
			x[i] = sum
		}
	case uplo == Lower && trans == NoTrans:
		for i := n - 1; i >= 0; i-- {
			var sum float64
			if !unit {
				sum = a[i+i*lda] * x[i]
			} else {
				sum = x[i]
			}
			for j := 0; j < i; j++ {
				sum += a[i+j*lda] * x[j]
			}
			x[i] = sum
		}
	case uplo == Lower && trans == Trans:
		for i := 0; i < n; i++ {
			var sum float64
			if !unit {
				sum = a[i+i*lda] * x[i]
			} else {
				sum = x[i]
			}
			for j := i + 1; j < n; j++ {
				sum += a[j+i*lda] * x[j]
			}
			x[i] = sum
		}
	}
}
