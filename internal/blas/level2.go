package blas

// Dgemv computes y := alpha*op(A)*x + beta*y where op(A) is A or Aᵀ and A is
// an m×n column-major matrix.
func Dgemv(trans Transpose, m, n int, alpha float64, a []float64, lda int, x []float64, incX int, beta float64, y []float64, incY int) {
	checkMatrix("dgemv", m, n, a, lda)
	lenX, lenY := n, m
	if trans == Trans {
		lenX, lenY = m, n
	}
	checkVector("dgemv", lenX, x, incX)
	checkVector("dgemv", lenY, y, incY)
	if m == 0 || n == 0 {
		return
	}
	if beta != 1 {
		if beta == 0 {
			iy := startIdx(lenY, incY)
			for i := 0; i < lenY; i++ {
				y[iy] = 0
				iy += incY
			}
		} else {
			Dscal(lenY, beta, y, incY)
		}
	}
	if alpha == 0 {
		return
	}
	switch trans {
	case NoTrans:
		// y += alpha * A * x, traversing A by columns.
		ix := startIdx(n, incX)
		for j := 0; j < n; j++ {
			t := alpha * x[ix]
			ix += incX
			if t != 0 {
				col := a[j*lda : j*lda+m]
				if incY == 1 {
					for i, v := range col {
						y[i] += t * v
					}
				} else {
					iy := startIdx(m, incY)
					for i := 0; i < m; i++ {
						y[iy] += t * col[i]
						iy += incY
					}
				}
			}
		}
	case Trans:
		// y += alpha * Aᵀ * x: each column of A dotted with x.
		iy := startIdx(n, incY)
		for j := 0; j < n; j++ {
			col := a[j*lda : j*lda+m]
			var sum float64
			if incX == 1 {
				for i, v := range col {
					sum += v * x[i]
				}
			} else {
				ix := startIdx(m, incX)
				for i := 0; i < m; i++ {
					sum += col[i] * x[ix]
					ix += incX
				}
			}
			y[iy] += alpha * sum
			iy += incY
		}
	default:
		panic(badParam("dgemv", "transpose"))
	}
}

// Dsymv computes y := alpha*A*x + beta*y where A is an n×n symmetric matrix
// of which only the triangle selected by uplo is referenced.
func Dsymv(uplo Uplo, n int, alpha float64, a []float64, lda int, x []float64, incX int, beta float64, y []float64, incY int) {
	checkMatrix("dsymv", n, n, a, lda)
	checkVector("dsymv", n, x, incX)
	checkVector("dsymv", n, y, incY)
	if n == 0 {
		return
	}
	if beta != 1 {
		if beta == 0 {
			iy := startIdx(n, incY)
			for i := 0; i < n; i++ {
				y[iy] = 0
				iy += incY
			}
		} else {
			Dscal(n, beta, y, incY)
		}
	}
	if alpha == 0 {
		return
	}
	if incX != 1 || incY != 1 {
		// The eigensolver only uses unit strides; keep the strided path
		// simple and correct rather than fast.
		x0, y0 := startIdx(n, incX), startIdx(n, incY)
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < n; i++ {
				s += symAt(uplo, a, lda, j, i) * x[x0+i*incX]
			}
			y[y0+j*incY] += alpha * s
		}
		return
	}
	switch uplo {
	case Lower:
		for j := 0; j < n; j++ {
			t := alpha * x[j]
			var sum float64
			col := a[j*lda:]
			y[j] += t * col[j]
			for i := j + 1; i < n; i++ {
				v := col[i]
				y[i] += t * v
				sum += v * x[i]
			}
			y[j] += alpha * sum
		}
	case Upper:
		for j := 0; j < n; j++ {
			t := alpha * x[j]
			var sum float64
			col := a[j*lda:]
			for i := 0; i < j; i++ {
				v := col[i]
				y[i] += t * v
				sum += v * x[i]
			}
			y[j] += t*col[j] + alpha*sum
		}
	default:
		panic(badParam("dsymv", "uplo"))
	}
}

// symAt reads element (i, j) of a symmetric matrix stored in the given
// triangle.
func symAt(uplo Uplo, a []float64, lda, i, j int) float64 {
	if (uplo == Lower && i < j) || (uplo == Upper && i > j) {
		i, j = j, i
	}
	return a[i+j*lda]
}

// Dger computes the rank-1 update A := alpha*x*yᵀ + A for an m×n matrix A.
func Dger(m, n int, alpha float64, x []float64, incX int, y []float64, incY int, a []float64, lda int) {
	checkMatrix("dger", m, n, a, lda)
	checkVector("dger", m, x, incX)
	checkVector("dger", n, y, incY)
	if m == 0 || n == 0 || alpha == 0 {
		return
	}
	iy := startIdx(n, incY)
	for j := 0; j < n; j++ {
		t := alpha * y[iy]
		iy += incY
		if t != 0 {
			col := a[j*lda : j*lda+m]
			if incX == 1 {
				for i := range col {
					col[i] += t * x[i]
				}
			} else {
				ix := startIdx(m, incX)
				for i := range col {
					col[i] += t * x[ix]
					ix += incX
				}
			}
		}
	}
}

// Dsyr computes the symmetric rank-1 update A := alpha*x*xᵀ + A, updating
// only the triangle selected by uplo.
func Dsyr(uplo Uplo, n int, alpha float64, x []float64, incX int, a []float64, lda int) {
	checkMatrix("dsyr", n, n, a, lda)
	checkVector("dsyr", n, x, incX)
	if n == 0 || alpha == 0 {
		return
	}
	for j := 0; j < n; j++ {
		xj := x[startIdx(n, incX)+j*incX]
		if xj == 0 {
			continue
		}
		t := alpha * xj
		col := a[j*lda:]
		if uplo == Lower {
			for i := j; i < n; i++ {
				col[i] += t * x[startIdx(n, incX)+i*incX]
			}
		} else {
			for i := 0; i <= j; i++ {
				col[i] += t * x[startIdx(n, incX)+i*incX]
			}
		}
	}
}

// Dsyr2 computes the symmetric rank-2 update A := alpha*(x*yᵀ + y*xᵀ) + A,
// updating only the triangle selected by uplo. Only unit increments are
// supported on the fast path; other strides fall back to a simple loop.
func Dsyr2(uplo Uplo, n int, alpha float64, x []float64, incX int, y []float64, incY int, a []float64, lda int) {
	checkMatrix("dsyr2", n, n, a, lda)
	checkVector("dsyr2", n, x, incX)
	checkVector("dsyr2", n, y, incY)
	if n == 0 || alpha == 0 {
		return
	}
	xat := func(i int) float64 { return x[startIdx(n, incX)+i*incX] }
	yat := func(i int) float64 { return y[startIdx(n, incY)+i*incY] }
	for j := 0; j < n; j++ {
		tx := alpha * xat(j)
		ty := alpha * yat(j)
		col := a[j*lda:]
		if uplo == Lower {
			for i := j; i < n; i++ {
				col[i] += tx*yat(i) + ty*xat(i)
			}
		} else {
			for i := 0; i <= j; i++ {
				col[i] += tx*yat(i) + ty*xat(i)
			}
		}
	}
}

// Dtrmv computes x := op(A)*x for an n×n triangular matrix A.
func Dtrmv(uplo Uplo, trans Transpose, diag Diag, n int, a []float64, lda int, x []float64, incX int) {
	checkMatrix("dtrmv", n, n, a, lda)
	checkVector("dtrmv", n, x, incX)
	if n == 0 {
		return
	}
	if incX != 1 {
		panic(badParam("dtrmv", "increment (only 1 supported)"))
	}
	unit := diag == Unit
	switch {
	case uplo == Upper && trans == NoTrans:
		for i := 0; i < n; i++ {
			var sum float64
			if !unit {
				sum = a[i+i*lda] * x[i]
			} else {
				sum = x[i]
			}
			for j := i + 1; j < n; j++ {
				sum += a[i+j*lda] * x[j]
			}
			x[i] = sum
		}
	case uplo == Upper && trans == Trans:
		for i := n - 1; i >= 0; i-- {
			var sum float64
			if !unit {
				sum = a[i+i*lda] * x[i]
			} else {
				sum = x[i]
			}
			for j := 0; j < i; j++ {
				sum += a[j+i*lda] * x[j]
			}
			x[i] = sum
		}
	case uplo == Lower && trans == NoTrans:
		for i := n - 1; i >= 0; i-- {
			var sum float64
			if !unit {
				sum = a[i+i*lda] * x[i]
			} else {
				sum = x[i]
			}
			for j := 0; j < i; j++ {
				sum += a[i+j*lda] * x[j]
			}
			x[i] = sum
		}
	case uplo == Lower && trans == Trans:
		for i := 0; i < n; i++ {
			var sum float64
			if !unit {
				sum = a[i+i*lda] * x[i]
			} else {
				sum = x[i]
			}
			for j := i + 1; j < n; j++ {
				sum += a[j+i*lda] * x[j]
			}
			x[i] = sum
		}
	}
}
