package blas

// The symmetric and triangular Level 3 routines are thin block
// decompositions over Dgemm: only small diagonal blocks (and the
// substitution base cases of Dtrsm) run scalar loops; all O(n²·k) bulk work
// goes through the packed register-blocked GEMM kernels. The block size and
// recursion cutoffs are compile-time constants so the decomposition — and
// therefore the floating-point result — never depends on the runtime
// Blocking configuration.

// routeBlock is the diagonal-block edge of the Dsyrk/Dsyr2k/Dsymm
// decompositions: matrices at or below this order run the reference scalar
// loops outright.
const routeBlock = 64

// Dsyrk computes C := alpha*op(A)*op(A)ᵀ + beta*C updating only the triangle
// of C selected by uplo. op(A) is n×k.
func Dsyrk(uplo Uplo, trans Transpose, n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	rowA, colA := n, k
	if trans == Trans {
		rowA, colA = k, n
	}
	checkMatrix("dsyrk", rowA, colA, a, lda)
	checkMatrix("dsyrk", n, n, c, ldc)
	if n == 0 {
		return
	}
	scaleTriangle(uplo, n, beta, c, ldc)
	if alpha == 0 || k == 0 {
		return
	}
	if n <= routeBlock {
		syrkRef(uplo, trans, n, k, alpha, a, lda, c, ldc)
		return
	}
	for jb := 0; jb < n; jb += routeBlock {
		nb := min(routeBlock, n-jb)
		// Diagonal block: scalar reference loops on the nb×nb sub-triangle.
		if trans == NoTrans {
			syrkRef(uplo, trans, nb, k, alpha, a[jb:], lda, c[jb+jb*ldc:], ldc)
		} else {
			syrkRef(uplo, trans, nb, k, alpha, a[jb*lda:], lda, c[jb+jb*ldc:], ldc)
		}
		// Off-diagonal panel: one rectangular GEMM per block column.
		if uplo == Lower && jb+nb < n {
			rows := n - jb - nb
			if trans == NoTrans {
				Dgemm(NoTrans, Trans, rows, nb, k, alpha, a[jb+nb:], lda, a[jb:], lda, 1, c[jb+nb+jb*ldc:], ldc)
			} else {
				Dgemm(Trans, NoTrans, rows, nb, k, alpha, a[(jb+nb)*lda:], lda, a[jb*lda:], lda, 1, c[jb+nb+jb*ldc:], ldc)
			}
		} else if uplo == Upper && jb > 0 {
			if trans == NoTrans {
				Dgemm(NoTrans, Trans, jb, nb, k, alpha, a, lda, a[jb:], lda, 1, c[jb*ldc:], ldc)
			} else {
				Dgemm(Trans, NoTrans, jb, nb, k, alpha, a, lda, a[jb*lda:], lda, 1, c[jb*ldc:], ldc)
			}
		}
	}
}

// syrkRef is the scalar triangle update (the pre-rework Dsyrk body), used
// for small problems and diagonal blocks.
func syrkRef(uplo Uplo, trans Transpose, n, k int, alpha float64, a []float64, lda int, c []float64, ldc int) {
	if trans == NoTrans {
		// Stream columns: C[:,j] += alpha·A[j,l]·A[:,l] per l.
		for j := 0; j < n; j++ {
			lo, hi := 0, j+1
			if uplo == Lower {
				lo, hi = j, n
			}
			ccol := c[j*ldc:]
			for l := 0; l < k; l++ {
				t := alpha * a[j+l*lda]
				if t == 0 {
					continue
				}
				acol := a[l*lda:]
				for i := lo; i < hi; i++ {
					ccol[i] += t * acol[i]
				}
			}
		}
		return
	}
	for j := 0; j < n; j++ {
		lo, hi := 0, j+1
		if uplo == Lower {
			lo, hi = j, n
		}
		for i := lo; i < hi; i++ {
			var sum float64
			for l := 0; l < k; l++ {
				sum += a[l+i*lda] * a[l+j*lda]
			}
			c[i+j*ldc] += alpha * sum
		}
	}
}

// Dsyr2k computes C := alpha*(op(A)*op(B)ᵀ + op(B)*op(A)ᵀ) + beta*C updating
// only the triangle of C selected by uplo. op(A) and op(B) are n×k.
func Dsyr2k(uplo Uplo, trans Transpose, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	rowA, colA := n, k
	if trans == Trans {
		rowA, colA = k, n
	}
	checkMatrix("dsyr2k", rowA, colA, a, lda)
	checkMatrix("dsyr2k", rowA, colA, b, ldb)
	checkMatrix("dsyr2k", n, n, c, ldc)
	if n == 0 {
		return
	}
	scaleTriangle(uplo, n, beta, c, ldc)
	if alpha == 0 || k == 0 {
		return
	}
	if n <= routeBlock {
		syr2kRef(uplo, trans, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	for jb := 0; jb < n; jb += routeBlock {
		nb := min(routeBlock, n-jb)
		if trans == NoTrans {
			syr2kRef(uplo, trans, nb, k, alpha, a[jb:], lda, b[jb:], ldb, c[jb+jb*ldc:], ldc)
		} else {
			syr2kRef(uplo, trans, nb, k, alpha, a[jb*lda:], lda, b[jb*ldb:], ldb, c[jb+jb*ldc:], ldc)
		}
		if uplo == Lower && jb+nb < n {
			rows := n - jb - nb
			cblk := c[jb+nb+jb*ldc:]
			if trans == NoTrans {
				Dgemm(NoTrans, Trans, rows, nb, k, alpha, a[jb+nb:], lda, b[jb:], ldb, 1, cblk, ldc)
				Dgemm(NoTrans, Trans, rows, nb, k, alpha, b[jb+nb:], ldb, a[jb:], lda, 1, cblk, ldc)
			} else {
				Dgemm(Trans, NoTrans, rows, nb, k, alpha, a[(jb+nb)*lda:], lda, b[jb*ldb:], ldb, 1, cblk, ldc)
				Dgemm(Trans, NoTrans, rows, nb, k, alpha, b[(jb+nb)*ldb:], ldb, a[jb*lda:], lda, 1, cblk, ldc)
			}
		} else if uplo == Upper && jb > 0 {
			cblk := c[jb*ldc:]
			if trans == NoTrans {
				Dgemm(NoTrans, Trans, jb, nb, k, alpha, a, lda, b[jb:], ldb, 1, cblk, ldc)
				Dgemm(NoTrans, Trans, jb, nb, k, alpha, b, ldb, a[jb:], lda, 1, cblk, ldc)
			} else {
				Dgemm(Trans, NoTrans, jb, nb, k, alpha, a, lda, b[jb*ldb:], ldb, 1, cblk, ldc)
				Dgemm(Trans, NoTrans, jb, nb, k, alpha, b, ldb, a[jb*lda:], lda, 1, cblk, ldc)
			}
		}
	}
}

// syr2kRef is the scalar rank-2k triangle update (the pre-rework Dsyr2k
// body), used for small problems and diagonal blocks.
func syr2kRef(uplo Uplo, trans Transpose, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if trans == NoTrans {
		// Stream columns: C[:,j] += alpha·(B[j,l]·A[:,l] + A[j,l]·B[:,l]).
		for j := 0; j < n; j++ {
			lo, hi := 0, j+1
			if uplo == Lower {
				lo, hi = j, n
			}
			ccol := c[j*ldc:]
			for l := 0; l < k; l++ {
				ta := alpha * b[j+l*ldb]
				tb := alpha * a[j+l*lda]
				acol := a[l*lda:]
				bcol := b[l*ldb:]
				for i := lo; i < hi; i++ {
					ccol[i] += ta*acol[i] + tb*bcol[i]
				}
			}
		}
		return
	}
	for j := 0; j < n; j++ {
		lo, hi := 0, j+1
		if uplo == Lower {
			lo, hi = j, n
		}
		for i := lo; i < hi; i++ {
			var sum float64
			for l := 0; l < k; l++ {
				sum += a[l+i*lda]*b[l+j*ldb] + b[l+i*ldb]*a[l+j*lda]
			}
			c[i+j*ldc] += alpha * sum
		}
	}
}

func scaleTriangle(uplo Uplo, n int, beta float64, c []float64, ldc int) {
	if beta == 1 {
		return
	}
	for j := 0; j < n; j++ {
		lo, hi := 0, j+1
		if uplo == Lower {
			lo, hi = j, n
		}
		col := c[j*ldc:]
		for i := lo; i < hi; i++ {
			if beta == 0 {
				col[i] = 0
			} else {
				col[i] *= beta
			}
		}
	}
}

// Dtrmm computes B := alpha*op(A)*B (side Left) or B := alpha*B*op(A)
// (side Right) where A is triangular and B is m×n.
func Dtrmm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("dtrmm", na, na, a, lda)
	checkMatrix("dtrmm", m, n, b, ldb)
	if m == 0 || n == 0 {
		return
	}
	// Recursive blocking: split the triangle so the off-diagonal half of
	// the work goes through the fast Dgemm kernel; only the small diagonal
	// blocks run the scalar triangular loops. This matters because every
	// blocked reflector application (Larfb/Tsmqr) calls Dtrmm on its
	// triangular factor.
	const trmmBase = 24
	if na > 2*trmmBase {
		h := na / 2
		if side == Left {
			b1 := b
			b2 := b[h:]
			a11 := a
			a22 := a[h+h*lda:]
			switch {
			case uplo == Upper && trans == NoTrans:
				// B1 := A11·B1 + A12·B2 ; B2 := A22·B2.
				Dtrmm(side, uplo, trans, diag, h, n, alpha, a11, lda, b1, ldb)
				Dgemm(NoTrans, NoTrans, h, n, m-h, alpha, a[h*lda:], lda, b2, ldb, 1, b1, ldb)
				Dtrmm(side, uplo, trans, diag, m-h, n, alpha, a22, lda, b2, ldb)
			case uplo == Upper && trans == Trans:
				// B2 := A22ᵀ·B2 + A12ᵀ·B1 ; B1 := A11ᵀ·B1.
				Dtrmm(side, uplo, trans, diag, m-h, n, alpha, a22, lda, b2, ldb)
				Dgemm(Trans, NoTrans, m-h, n, h, alpha, a[h*lda:], lda, b1, ldb, 1, b2, ldb)
				Dtrmm(side, uplo, trans, diag, h, n, alpha, a11, lda, b1, ldb)
			case uplo == Lower && trans == NoTrans:
				// B2 := A22·B2 + A21·B1 ; B1 := A11·B1.
				Dtrmm(side, uplo, trans, diag, m-h, n, alpha, a22, lda, b2, ldb)
				Dgemm(NoTrans, NoTrans, m-h, n, h, alpha, a[h:], lda, b1, ldb, 1, b2, ldb)
				Dtrmm(side, uplo, trans, diag, h, n, alpha, a11, lda, b1, ldb)
			default: // Lower, Trans
				// B1 := A11ᵀ·B1 + A21ᵀ·B2 ; B2 := A22ᵀ·B2.
				Dtrmm(side, uplo, trans, diag, h, n, alpha, a11, lda, b1, ldb)
				Dgemm(Trans, NoTrans, h, n, m-h, alpha, a[h:], lda, b2, ldb, 1, b1, ldb)
				Dtrmm(side, uplo, trans, diag, m-h, n, alpha, a22, lda, b2, ldb)
			}
			return
		}
		// side == Right: B := alpha·B·op(A), split the columns of B.
		b1 := b
		b2 := b[h*ldb:]
		a11 := a
		a22 := a[h+h*lda:]
		switch {
		case uplo == Upper && trans == NoTrans:
			// B2 := B2·A22 + B1·A12 ; B1 := B1·A11.
			Dtrmm(side, uplo, trans, diag, m, n-h, alpha, a22, lda, b2, ldb)
			Dgemm(NoTrans, NoTrans, m, n-h, h, alpha, b1, ldb, a[h*lda:], lda, 1, b2, ldb)
			Dtrmm(side, uplo, trans, diag, m, h, alpha, a11, lda, b1, ldb)
		case uplo == Upper && trans == Trans:
			// B1 := B1·A11ᵀ + B2·A12ᵀ ; B2 := B2·A22ᵀ.
			Dtrmm(side, uplo, trans, diag, m, h, alpha, a11, lda, b1, ldb)
			Dgemm(NoTrans, Trans, m, h, n-h, alpha, b2, ldb, a[h*lda:], lda, 1, b1, ldb)
			Dtrmm(side, uplo, trans, diag, m, n-h, alpha, a22, lda, b2, ldb)
		case uplo == Lower && trans == NoTrans:
			// B1 := B1·A11 + B2·A21 ; B2 := B2·A22.
			Dtrmm(side, uplo, trans, diag, m, h, alpha, a11, lda, b1, ldb)
			Dgemm(NoTrans, NoTrans, m, h, n-h, alpha, b2, ldb, a[h:], lda, 1, b1, ldb)
			Dtrmm(side, uplo, trans, diag, m, n-h, alpha, a22, lda, b2, ldb)
		default: // Lower, Trans
			// B2 := B2·A22ᵀ + B1·A21ᵀ ; B1 := B1·A11ᵀ.
			Dtrmm(side, uplo, trans, diag, m, n-h, alpha, a22, lda, b2, ldb)
			Dgemm(NoTrans, Trans, m, n-h, h, alpha, b1, ldb, a[h:], lda, 1, b2, ldb)
			Dtrmm(side, uplo, trans, diag, m, h, alpha, a11, lda, b1, ldb)
		}
		return
	}
	if alpha == 0 {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			for i := range col {
				col[i] = 0
			}
		}
		return
	}
	unit := diag == Unit
	if side == Left {
		// B := alpha·op(A)·B using the reference-BLAS column-streaming
		// loops: every inner loop walks a contiguous column of A or B, so
		// the kernel runs at gemm-class speed (it sits on the hot path of
		// every blocked reflector application).
		switch {
		case uplo == Upper && trans == NoTrans:
			for j := 0; j < n; j++ {
				col := b[j*ldb : j*ldb+m]
				for k := 0; k < m; k++ {
					if col[k] == 0 {
						continue
					}
					temp := alpha * col[k]
					acol := a[k*lda:]
					for i := 0; i < k; i++ {
						col[i] += temp * acol[i]
					}
					if !unit {
						temp *= acol[k]
					}
					col[k] = temp
				}
			}
		case uplo == Upper && trans == Trans:
			for j := 0; j < n; j++ {
				col := b[j*ldb : j*ldb+m]
				for k := m - 1; k >= 0; k-- {
					acol := a[k*lda:]
					temp := col[k]
					if !unit {
						temp *= acol[k]
					}
					for i := 0; i < k; i++ {
						temp += acol[i] * col[i]
					}
					col[k] = alpha * temp
				}
			}
		case uplo == Lower && trans == NoTrans:
			for j := 0; j < n; j++ {
				col := b[j*ldb : j*ldb+m]
				for k := m - 1; k >= 0; k-- {
					if col[k] == 0 {
						continue
					}
					temp := alpha * col[k]
					acol := a[k*lda:]
					for i := k + 1; i < m; i++ {
						col[i] += temp * acol[i]
					}
					if !unit {
						temp *= acol[k]
					}
					col[k] = temp
				}
			}
		default: // Lower, Trans
			for j := 0; j < n; j++ {
				col := b[j*ldb : j*ldb+m]
				for k := 0; k < m; k++ {
					acol := a[k*lda:]
					temp := col[k]
					if !unit {
						temp *= acol[k]
					}
					for i := k + 1; i < m; i++ {
						temp += acol[i] * col[i]
					}
					col[k] = alpha * temp
				}
			}
		}
		return
	}
	// side == Right: B := alpha * B * op(A). Work row-block-wise over
	// columns of the result. Let upNoT mark whether column j of the result
	// depends on columns j..end (true) or 0..j (false) of B.
	upNoT := (uplo == Upper && trans == NoTrans) || (uplo == Lower && trans == Trans)
	aval := func(i, j int) float64 {
		if trans == Trans {
			i, j = j, i
		}
		if i == j && unit {
			return 1
		}
		if (uplo == Upper && i > j) || (uplo == Lower && i < j) {
			return 0
		}
		return a[i+j*lda]
	}
	if upNoT {
		// result col j = sum_{l<=j} B[:,l]*opA[l,j]: process j descending.
		for j := n - 1; j >= 0; j-- {
			dst := b[j*ldb : j*ldb+m]
			d := alpha * aval(j, j)
			for i := range dst {
				dst[i] *= d
			}
			for l := 0; l < j; l++ {
				t := alpha * aval(l, j)
				if t != 0 {
					src := b[l*ldb : l*ldb+m]
					for i := range dst {
						dst[i] += t * src[i]
					}
				}
			}
		}
	} else {
		// result col j depends on B[:,l] for l>=j: process j ascending.
		for j := 0; j < n; j++ {
			dst := b[j*ldb : j*ldb+m]
			d := alpha * aval(j, j)
			for i := range dst {
				dst[i] *= d
			}
			for l := j + 1; l < n; l++ {
				t := alpha * aval(l, j)
				if t != 0 {
					src := b[l*ldb : l*ldb+m]
					for i := range dst {
						dst[i] += t * src[i]
					}
				}
			}
		}
	}
}

// Dtrsm solves op(A)*X = alpha*B (side Left) or X*op(A) = alpha*B (side
// Right) for X, overwriting B. A is triangular.
//
// Like Dtrmm, large triangles are split recursively so the off-diagonal
// half of the work runs as a rectangular Dgemm update; only diagonal blocks
// of at most trsmBase run the scalar substitution loops.
func Dtrsm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("dtrsm", na, na, a, lda)
	checkMatrix("dtrsm", m, n, b, ldb)
	if m == 0 || n == 0 {
		return
	}
	if alpha != 1 {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			for i := range col {
				col[i] *= alpha
			}
		}
	}
	trsmRec(side, uplo, trans, diag, m, n, a, lda, b, ldb)
}

// trsmBase is the largest triangle solved by direct substitution; above it
// the solve splits and the coupling block goes through Dgemm.
const trsmBase = 24

// trsmRec solves op(A)*X = B or X*op(A) = B in place (alpha already
// applied).
func trsmRec(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, a []float64, lda int, b []float64, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	if na <= 2*trsmBase {
		trsmBaseCase(side, uplo, trans, diag, m, n, a, lda, b, ldb)
		return
	}
	h := na / 2
	a11 := a
	a22 := a[h+h*lda:]
	// lower reports whether the effective operator op(A) is lower
	// triangular (forward substitution order).
	lower := (uplo == Lower && trans == NoTrans) || (uplo == Upper && trans == Trans)
	if side == Left {
		b1 := b
		b2 := b[h:]
		if lower {
			// [L11 0; L21 L22]·[X1; X2] = [B1; B2]:
			// X1 first, eliminate the coupling, then X2.
			trsmRec(side, uplo, trans, diag, h, n, a11, lda, b1, ldb)
			if uplo == Lower {
				Dgemm(NoTrans, NoTrans, m-h, n, h, -1, a[h:], lda, b1, ldb, 1, b2, ldb)
			} else { // Upper, Trans: L21 = A12ᵀ
				Dgemm(Trans, NoTrans, m-h, n, h, -1, a[h*lda:], lda, b1, ldb, 1, b2, ldb)
			}
			trsmRec(side, uplo, trans, diag, m-h, n, a22, lda, b2, ldb)
			return
		}
		// [U11 U12; 0 U22]: X2 first (backward substitution).
		trsmRec(side, uplo, trans, diag, m-h, n, a22, lda, b2, ldb)
		if uplo == Upper {
			Dgemm(NoTrans, NoTrans, h, n, m-h, -1, a[h*lda:], lda, b2, ldb, 1, b1, ldb)
		} else { // Lower, Trans: U12 = A21ᵀ
			Dgemm(Trans, NoTrans, h, n, m-h, -1, a[h:], lda, b2, ldb, 1, b1, ldb)
		}
		trsmRec(side, uplo, trans, diag, h, n, a11, lda, b1, ldb)
		return
	}
	// side == Right: [X1 X2]·op(A) = [B1 B2] over column blocks of B.
	b1 := b
	b2 := b[h*ldb:]
	if lower {
		// op(A) = [L11 0; L21 L22]: X2·L22 = B2 first, then
		// X1·L11 = B1 - X2·L21.
		trsmRec(side, uplo, trans, diag, m, n-h, a22, lda, b2, ldb)
		if uplo == Lower {
			Dgemm(NoTrans, NoTrans, m, h, n-h, -1, b2, ldb, a[h:], lda, 1, b1, ldb)
		} else { // Upper, Trans: L21 = A12ᵀ
			Dgemm(NoTrans, Trans, m, h, n-h, -1, b2, ldb, a[h*lda:], lda, 1, b1, ldb)
		}
		trsmRec(side, uplo, trans, diag, m, h, a11, lda, b1, ldb)
		return
	}
	// op(A) = [U11 U12; 0 U22]: X1·U11 = B1 first, then
	// X2·U22 = B2 - X1·U12.
	trsmRec(side, uplo, trans, diag, m, h, a11, lda, b1, ldb)
	if uplo == Upper {
		Dgemm(NoTrans, NoTrans, m, n-h, h, -1, b1, ldb, a[h*lda:], lda, 1, b2, ldb)
	} else { // Lower, Trans: U12 = A21ᵀ
		Dgemm(NoTrans, Trans, m, n-h, h, -1, b1, ldb, a[h:], lda, 1, b2, ldb)
	}
	trsmRec(side, uplo, trans, diag, m, n-h, a22, lda, b2, ldb)
}

// trsmBaseCase solves the triangle by direct substitution (the pre-rework
// Dtrsm body with alpha pre-applied).
func trsmBaseCase(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, a []float64, lda int, b []float64, ldb int) {
	unit := diag == Unit
	aval := func(i, j int) float64 {
		if trans == Trans {
			i, j = j, i
		}
		if (uplo == Upper && i > j) || (uplo == Lower && i < j) {
			return 0
		}
		return a[i+j*lda]
	}
	if side == Left {
		// Solve op(A) X = B column by column via substitution. Effective
		// matrix op(A) is lower when (Lower,NoTrans) or (Upper,Trans).
		lower := (uplo == Lower && trans == NoTrans) || (uplo == Upper && trans == Trans)
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			if lower {
				for i := 0; i < m; i++ {
					s := col[i]
					for l := 0; l < i; l++ {
						s -= aval(i, l) * col[l]
					}
					if !unit {
						s /= aval(i, i)
					}
					col[i] = s
				}
			} else {
				for i := m - 1; i >= 0; i-- {
					s := col[i]
					for l := i + 1; l < m; l++ {
						s -= aval(i, l) * col[l]
					}
					if !unit {
						s /= aval(i, i)
					}
					col[i] = s
				}
			}
		}
		return
	}
	// side == Right: X op(A) = B, i.e. column j of X satisfies
	// sum_l X[:,l] opA[l,j] = B[:,j]. Effective op(A) lower triangular means
	// X[:,j] depends on X[:,l] for l>j → iterate j descending; upper means
	// ascending.
	lower := (uplo == Lower && trans == NoTrans) || (uplo == Upper && trans == Trans)
	if lower {
		for j := n - 1; j >= 0; j-- {
			dst := b[j*ldb : j*ldb+m]
			for l := j + 1; l < n; l++ {
				t := aval(l, j)
				if t != 0 {
					src := b[l*ldb : l*ldb+m]
					for i := range dst {
						dst[i] -= t * src[i]
					}
				}
			}
			if !unit {
				d := aval(j, j)
				for i := range dst {
					dst[i] /= d
				}
			}
		}
	} else {
		for j := 0; j < n; j++ {
			dst := b[j*ldb : j*ldb+m]
			for l := 0; l < j; l++ {
				t := aval(l, j)
				if t != 0 {
					src := b[l*ldb : l*ldb+m]
					for i := range dst {
						dst[i] -= t * src[i]
					}
				}
			}
			if !unit {
				d := aval(j, j)
				for i := range dst {
					dst[i] /= d
				}
			}
		}
	}
}

// Dsymm computes C := alpha*A*B + beta*C (side Left) or
// C := alpha*B*A + beta*C (side Right) where A is symmetric with only the
// uplo triangle referenced and C is m×n.
func Dsymm(side Side, uplo Uplo, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("dsymm", na, na, a, lda)
	checkMatrix("dsymm", m, n, b, ldb)
	checkMatrix("dsymm", m, n, c, ldc)
	if m == 0 || n == 0 {
		return
	}
	for j := 0; j < n; j++ {
		col := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range col {
				col[i] = 0
			}
		} else if beta != 1 {
			for i := range col {
				col[i] *= beta
			}
		}
	}
	if alpha == 0 {
		return
	}
	if na > routeBlock {
		symmBlocked(side, uplo, m, n, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	symmRef(side, uplo, m, n, alpha, a, lda, b, ldb, c, ldc)
}

// symmBlocked decomposes the symmetric operand into routeBlock×routeBlock
// blocks: stored off-diagonal blocks multiply through Dgemm directly (or
// transposed, for the unstored triangle), and diagonal blocks are expanded
// symmetrically into a stack tile first, so all bulk work runs on the
// packed kernels.
func symmBlocked(side Side, uplo Uplo, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	var diag [routeBlock * routeBlock]float64
	na := m
	if side == Right {
		na = n
	}
	for ib := 0; ib < na; ib += routeBlock {
		bi := min(routeBlock, na-ib)
		for lb := 0; lb < na; lb += routeBlock {
			bl := min(routeBlock, na-lb)
			// Find the stored form of block A[ib:ib+bi, lb:lb+bl].
			var blk []float64
			ldblk := lda
			tr := NoTrans
			switch {
			case ib == lb:
				// Diagonal block: expand the stored triangle.
				for j := 0; j < bl; j++ {
					for i := 0; i < bi; i++ {
						diag[i+j*routeBlock] = symAt(uplo, a, lda, ib+i, lb+j)
					}
				}
				blk = diag[:]
				ldblk = routeBlock
			case (uplo == Lower && ib > lb) || (uplo == Upper && ib < lb):
				blk = a[ib+lb*lda:]
			default:
				// Unstored triangle: use the transpose of the mirror block.
				blk = a[lb+ib*lda:]
				tr = Trans
			}
			if side == Left {
				// C[ib:, :] += alpha · A(ib,lb) · B[lb:, :].
				Dgemm(tr, NoTrans, bi, n, bl, alpha, blk, ldblk, b[lb:], ldb, 1, c[ib:], ldc)
			} else {
				// C[:, ib:] += alpha · B[:, lb:] · A(lb,ib).
				// A(lb,ib) is the transpose of the block we looked up.
				opp := Trans
				if tr == Trans {
					opp = NoTrans
				}
				Dgemm(NoTrans, opp, m, bi, bl, alpha, b[lb*ldb:], ldb, blk, ldblk, 1, c[ib*ldc:], ldc)
			}
		}
	}
}

// symmRef is the scalar reference (the pre-rework Dsymm body), used for
// small operands.
func symmRef(side Side, uplo Uplo, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if side == Left {
		for j := 0; j < n; j++ {
			bcol := b[j*ldb : j*ldb+m]
			ccol := c[j*ldc : j*ldc+m]
			for i := 0; i < m; i++ {
				var sum float64
				for l := 0; l < m; l++ {
					sum += symAt(uplo, a, lda, i, l) * bcol[l]
				}
				ccol[i] += alpha * sum
			}
		}
		return
	}
	for j := 0; j < n; j++ {
		ccol := c[j*ldc : j*ldc+m]
		for l := 0; l < n; l++ {
			t := alpha * symAt(uplo, a, lda, l, j)
			if t != 0 {
				bcol := b[l*ldb : l*ldb+m]
				for i := range ccol {
					ccol[i] += t * bcol[i]
				}
			}
		}
	}
}
