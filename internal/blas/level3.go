package blas

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the number of goroutines Dgemm may fan out to. It defaults
// to GOMAXPROCS and may be changed with SetParallelism. The eigensolver's
// task scheduler usually wants this set to 1 so that parallelism is
// extracted at the task level instead of inside individual kernels.
var parallelism int64 = int64(runtime.GOMAXPROCS(0))

// SetParallelism sets the maximum number of goroutines the Level 3 kernels
// may use internally and returns the previous value. n < 1 is treated as 1.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(atomic.SwapInt64(&parallelism, int64(n)))
}

// Parallelism reports the current Level 3 kernel parallelism.
func Parallelism() int { return int(atomic.LoadInt64(&parallelism)) }

// Block sizes for the cache-blocked Dgemm micro-kernel. The kernel computes
// C[mc×nc] += A[mc×kc]·B[kc×nc] with A packed row-panel-wise so the inner
// loops stream contiguously.
const (
	gemmMC = 128
	gemmKC = 128
	gemmNC = 64
)

// Dgemm computes C := alpha*op(A)*op(B) + beta*C where op(A) is m×k and
// op(B) is k×n, all column-major.
func Dgemm(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	rowA, colA := m, k
	if transA == Trans {
		rowA, colA = k, m
	}
	rowB, colB := k, n
	if transB == Trans {
		rowB, colB = n, k
	}
	checkMatrix("dgemm", rowA, colA, a, lda)
	checkMatrix("dgemm", rowB, colB, b, ldb)
	checkMatrix("dgemm", m, n, c, ldc)
	if m == 0 || n == 0 {
		return
	}
	if beta != 1 {
		for j := 0; j < n; j++ {
			col := c[j*ldc : j*ldc+m]
			if beta == 0 {
				for i := range col {
					col[i] = 0
				}
			} else {
				for i := range col {
					col[i] *= beta
				}
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}

	p := Parallelism()
	if p > 1 && n >= 2*gemmNC && int64(m)*int64(n)*int64(k) > 1<<18 {
		// Split C into column panels; each panel is an independent gemm.
		panels := (n + gemmNC - 1) / gemmNC
		if p > panels {
			p = panels
		}
		var wg sync.WaitGroup
		var next int64
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(atomic.AddInt64(&next, 1)-1) * gemmNC
					if j >= n {
						return
					}
					jn := min(gemmNC, n-j)
					var bsub []float64
					if transB == NoTrans {
						bsub = b[j*ldb:]
					} else {
						bsub = b[j:]
					}
					gemmSerial(transA, transB, m, jn, k, alpha, a, lda, bsub, ldb, c[j*ldc:], ldc)
				}
			}()
		}
		wg.Wait()
		return
	}
	gemmSerial(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
}

// packPool recycles the A-packing buffers; tile kernels issue millions of
// small gemms and a fresh 128×128 buffer per call would dominate their cost.
var packPool = sync.Pool{
	New: func() interface{} {
		buf := make([]float64, gemmMC*gemmKC)
		return &buf
	},
}

// gemmSerial computes C += alpha*op(A)*op(B) (beta already applied) with
// cache blocking.
func gemmSerial(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	// Pack a kc×mc block of op(A) transposed into apack so that the
	// micro-kernel reads it with stride 1 along k.
	bufp := packPool.Get().(*[]float64)
	defer packPool.Put(bufp)
	apack := *bufp
	for kk := 0; kk < k; kk += gemmKC {
		kc := min(gemmKC, k-kk)
		for ii := 0; ii < m; ii += gemmMC {
			mc := min(gemmMC, m-ii)
			// apack[l + i*kc] = op(A)[ii+i, kk+l]
			if transA == NoTrans {
				for i := 0; i < mc; i++ {
					for l := 0; l < kc; l++ {
						apack[l+i*kc] = a[(ii+i)+(kk+l)*lda]
					}
				}
			} else {
				for i := 0; i < mc; i++ {
					col := a[(ii+i)*lda:]
					copy(apack[i*kc:i*kc+kc], col[kk:kk+kc])
				}
			}
			for jj := 0; jj < n; jj += gemmNC {
				nc := min(gemmNC, n-jj)
				gemmMicro(transB, mc, nc, kc, alpha, apack, b, ldb, kk, jj, c[ii+jj*ldc:], ldc)
			}
		}
	}
}

// gemmMicro computes the mc×nc block update using the packed A block with a
// 2×4 register-blocked inner kernel: two rows of packed A against four
// packed columns of op(B) give eight independent accumulator chains, which
// keeps the FPU pipeline full and reuses every load four times.
func gemmMicro(transB Transpose, mc, nc, kc int, alpha float64, apack []float64, b []float64, ldb int, kk, jj int, c []float64, ldc int) {
	var bpack [4 * gemmKC]float64
	packB := func(j, w int) {
		for q := 0; q < w; q++ {
			dst := bpack[q*kc : q*kc+kc]
			if transB == NoTrans {
				src := b[(jj+j+q)*ldb+kk:]
				for l := 0; l < kc; l++ {
					dst[l] = alpha * src[l]
				}
			} else {
				for l := 0; l < kc; l++ {
					dst[l] = alpha * b[(jj+j+q)+(kk+l)*ldb]
				}
			}
		}
	}
	j := 0
	for ; j+3 < nc; j += 4 {
		packB(j, 4)
		b0 := bpack[0*kc : 0*kc+kc]
		b1 := bpack[1*kc : 1*kc+kc]
		b2 := bpack[2*kc : 2*kc+kc]
		b3 := bpack[3*kc : 3*kc+kc]
		c0 := c[(j+0)*ldc:]
		c1 := c[(j+1)*ldc:]
		c2 := c[(j+2)*ldc:]
		c3 := c[(j+3)*ldc:]
		i := 0
		for ; i+1 < mc; i += 2 {
			a0 := apack[i*kc : i*kc+kc]
			a1 := apack[(i+1)*kc : (i+1)*kc+kc]
			var s00, s01, s02, s03, s10, s11, s12, s13 float64
			for l := 0; l < kc; l++ {
				av0, av1 := a0[l], a1[l]
				s00 += av0 * b0[l]
				s01 += av0 * b1[l]
				s02 += av0 * b2[l]
				s03 += av0 * b3[l]
				s10 += av1 * b0[l]
				s11 += av1 * b1[l]
				s12 += av1 * b2[l]
				s13 += av1 * b3[l]
			}
			c0[i] += s00
			c1[i] += s01
			c2[i] += s02
			c3[i] += s03
			c0[i+1] += s10
			c1[i+1] += s11
			c2[i+1] += s12
			c3[i+1] += s13
		}
		if i < mc {
			a0 := apack[i*kc : i*kc+kc]
			var s0, s1, s2, s3 float64
			for l := 0; l < kc; l++ {
				av := a0[l]
				s0 += av * b0[l]
				s1 += av * b1[l]
				s2 += av * b2[l]
				s3 += av * b3[l]
			}
			c0[i] += s0
			c1[i] += s1
			c2[i] += s2
			c3[i] += s3
		}
	}
	for ; j < nc; j++ {
		packB(j, 1)
		b0 := bpack[:kc]
		ccol := c[j*ldc : j*ldc+mc]
		for i := 0; i < mc; i++ {
			arow := apack[i*kc : i*kc+kc]
			var sum float64
			for l, av := range arow {
				sum += av * b0[l]
			}
			ccol[i] += sum
		}
	}
}

// Dsyrk computes C := alpha*op(A)*op(A)ᵀ + beta*C updating only the triangle
// of C selected by uplo. op(A) is n×k.
func Dsyrk(uplo Uplo, trans Transpose, n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	rowA, colA := n, k
	if trans == Trans {
		rowA, colA = k, n
	}
	checkMatrix("dsyrk", rowA, colA, a, lda)
	checkMatrix("dsyrk", n, n, c, ldc)
	if n == 0 {
		return
	}
	scaleTriangle(uplo, n, beta, c, ldc)
	if alpha == 0 || k == 0 {
		return
	}
	if trans == NoTrans {
		// Stream columns: C[:,j] += alpha·A[j,l]·A[:,l] per l.
		for j := 0; j < n; j++ {
			lo, hi := 0, j+1
			if uplo == Lower {
				lo, hi = j, n
			}
			ccol := c[j*ldc:]
			for l := 0; l < k; l++ {
				t := alpha * a[j+l*lda]
				if t == 0 {
					continue
				}
				acol := a[l*lda:]
				for i := lo; i < hi; i++ {
					ccol[i] += t * acol[i]
				}
			}
		}
		return
	}
	for j := 0; j < n; j++ {
		lo, hi := 0, j+1
		if uplo == Lower {
			lo, hi = j, n
		}
		for i := lo; i < hi; i++ {
			var sum float64
			for l := 0; l < k; l++ {
				sum += a[l+i*lda] * a[l+j*lda]
			}
			c[i+j*ldc] += alpha * sum
		}
	}
}

// Dsyr2k computes C := alpha*(op(A)*op(B)ᵀ + op(B)*op(A)ᵀ) + beta*C updating
// only the triangle of C selected by uplo. op(A) and op(B) are n×k.
func Dsyr2k(uplo Uplo, trans Transpose, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	rowA, colA := n, k
	if trans == Trans {
		rowA, colA = k, n
	}
	checkMatrix("dsyr2k", rowA, colA, a, lda)
	checkMatrix("dsyr2k", rowA, colA, b, ldb)
	checkMatrix("dsyr2k", n, n, c, ldc)
	if n == 0 {
		return
	}
	scaleTriangle(uplo, n, beta, c, ldc)
	if alpha == 0 || k == 0 {
		return
	}
	if trans == NoTrans {
		// Stream columns: C[:,j] += alpha·(B[j,l]·A[:,l] + A[j,l]·B[:,l]).
		for j := 0; j < n; j++ {
			lo, hi := 0, j+1
			if uplo == Lower {
				lo, hi = j, n
			}
			ccol := c[j*ldc:]
			for l := 0; l < k; l++ {
				ta := alpha * b[j+l*ldb]
				tb := alpha * a[j+l*lda]
				acol := a[l*lda:]
				bcol := b[l*ldb:]
				for i := lo; i < hi; i++ {
					ccol[i] += ta*acol[i] + tb*bcol[i]
				}
			}
		}
		return
	}
	for j := 0; j < n; j++ {
		lo, hi := 0, j+1
		if uplo == Lower {
			lo, hi = j, n
		}
		for i := lo; i < hi; i++ {
			var sum float64
			for l := 0; l < k; l++ {
				sum += a[l+i*lda]*b[l+j*ldb] + b[l+i*ldb]*a[l+j*lda]
			}
			c[i+j*ldc] += alpha * sum
		}
	}
}

func scaleTriangle(uplo Uplo, n int, beta float64, c []float64, ldc int) {
	if beta == 1 {
		return
	}
	for j := 0; j < n; j++ {
		lo, hi := 0, j+1
		if uplo == Lower {
			lo, hi = j, n
		}
		col := c[j*ldc:]
		for i := lo; i < hi; i++ {
			if beta == 0 {
				col[i] = 0
			} else {
				col[i] *= beta
			}
		}
	}
}

// Dtrmm computes B := alpha*op(A)*B (side Left) or B := alpha*B*op(A)
// (side Right) where A is triangular and B is m×n.
func Dtrmm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("dtrmm", na, na, a, lda)
	checkMatrix("dtrmm", m, n, b, ldb)
	if m == 0 || n == 0 {
		return
	}
	// Recursive blocking: split the triangle so the off-diagonal half of
	// the work goes through the fast Dgemm kernel; only the small diagonal
	// blocks run the scalar triangular loops. This matters because every
	// blocked reflector application (Larfb/Tsmqr) calls Dtrmm on its
	// triangular factor.
	const trmmBase = 24
	if na > 2*trmmBase {
		h := na / 2
		if side == Left {
			b1 := b
			b2 := b[h:]
			a11 := a
			a22 := a[h+h*lda:]
			switch {
			case uplo == Upper && trans == NoTrans:
				// B1 := A11·B1 + A12·B2 ; B2 := A22·B2.
				Dtrmm(side, uplo, trans, diag, h, n, alpha, a11, lda, b1, ldb)
				Dgemm(NoTrans, NoTrans, h, n, m-h, alpha, a[h*lda:], lda, b2, ldb, 1, b1, ldb)
				Dtrmm(side, uplo, trans, diag, m-h, n, alpha, a22, lda, b2, ldb)
			case uplo == Upper && trans == Trans:
				// B2 := A22ᵀ·B2 + A12ᵀ·B1 ; B1 := A11ᵀ·B1.
				Dtrmm(side, uplo, trans, diag, m-h, n, alpha, a22, lda, b2, ldb)
				Dgemm(Trans, NoTrans, m-h, n, h, alpha, a[h*lda:], lda, b1, ldb, 1, b2, ldb)
				Dtrmm(side, uplo, trans, diag, h, n, alpha, a11, lda, b1, ldb)
			case uplo == Lower && trans == NoTrans:
				// B2 := A22·B2 + A21·B1 ; B1 := A11·B1.
				Dtrmm(side, uplo, trans, diag, m-h, n, alpha, a22, lda, b2, ldb)
				Dgemm(NoTrans, NoTrans, m-h, n, h, alpha, a[h:], lda, b1, ldb, 1, b2, ldb)
				Dtrmm(side, uplo, trans, diag, h, n, alpha, a11, lda, b1, ldb)
			default: // Lower, Trans
				// B1 := A11ᵀ·B1 + A21ᵀ·B2 ; B2 := A22ᵀ·B2.
				Dtrmm(side, uplo, trans, diag, h, n, alpha, a11, lda, b1, ldb)
				Dgemm(Trans, NoTrans, h, n, m-h, alpha, a[h:], lda, b2, ldb, 1, b1, ldb)
				Dtrmm(side, uplo, trans, diag, m-h, n, alpha, a22, lda, b2, ldb)
			}
			return
		}
		// side == Right: B := alpha·B·op(A), split the columns of B.
		b1 := b
		b2 := b[h*ldb:]
		a11 := a
		a22 := a[h+h*lda:]
		switch {
		case uplo == Upper && trans == NoTrans:
			// B2 := B2·A22 + B1·A12 ; B1 := B1·A11.
			Dtrmm(side, uplo, trans, diag, m, n-h, alpha, a22, lda, b2, ldb)
			Dgemm(NoTrans, NoTrans, m, n-h, h, alpha, b1, ldb, a[h*lda:], lda, 1, b2, ldb)
			Dtrmm(side, uplo, trans, diag, m, h, alpha, a11, lda, b1, ldb)
		case uplo == Upper && trans == Trans:
			// B1 := B1·A11ᵀ + B2·A12ᵀ ; B2 := B2·A22ᵀ.
			Dtrmm(side, uplo, trans, diag, m, h, alpha, a11, lda, b1, ldb)
			Dgemm(NoTrans, Trans, m, h, n-h, alpha, b2, ldb, a[h*lda:], lda, 1, b1, ldb)
			Dtrmm(side, uplo, trans, diag, m, n-h, alpha, a22, lda, b2, ldb)
		case uplo == Lower && trans == NoTrans:
			// B1 := B1·A11 + B2·A21 ; B2 := B2·A22.
			Dtrmm(side, uplo, trans, diag, m, h, alpha, a11, lda, b1, ldb)
			Dgemm(NoTrans, NoTrans, m, h, n-h, alpha, b2, ldb, a[h:], lda, 1, b1, ldb)
			Dtrmm(side, uplo, trans, diag, m, n-h, alpha, a22, lda, b2, ldb)
		default: // Lower, Trans
			// B2 := B2·A22ᵀ + B1·A21ᵀ ; B1 := B1·A11ᵀ.
			Dtrmm(side, uplo, trans, diag, m, n-h, alpha, a22, lda, b2, ldb)
			Dgemm(NoTrans, Trans, m, n-h, h, alpha, b1, ldb, a[h:], lda, 1, b2, ldb)
			Dtrmm(side, uplo, trans, diag, m, h, alpha, a11, lda, b1, ldb)
		}
		return
	}
	if alpha == 0 {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			for i := range col {
				col[i] = 0
			}
		}
		return
	}
	unit := diag == Unit
	if side == Left {
		// B := alpha·op(A)·B using the reference-BLAS column-streaming
		// loops: every inner loop walks a contiguous column of A or B, so
		// the kernel runs at gemm-class speed (it sits on the hot path of
		// every blocked reflector application).
		switch {
		case uplo == Upper && trans == NoTrans:
			for j := 0; j < n; j++ {
				col := b[j*ldb : j*ldb+m]
				for k := 0; k < m; k++ {
					if col[k] == 0 {
						continue
					}
					temp := alpha * col[k]
					acol := a[k*lda:]
					for i := 0; i < k; i++ {
						col[i] += temp * acol[i]
					}
					if !unit {
						temp *= acol[k]
					}
					col[k] = temp
				}
			}
		case uplo == Upper && trans == Trans:
			for j := 0; j < n; j++ {
				col := b[j*ldb : j*ldb+m]
				for k := m - 1; k >= 0; k-- {
					acol := a[k*lda:]
					temp := col[k]
					if !unit {
						temp *= acol[k]
					}
					for i := 0; i < k; i++ {
						temp += acol[i] * col[i]
					}
					col[k] = alpha * temp
				}
			}
		case uplo == Lower && trans == NoTrans:
			for j := 0; j < n; j++ {
				col := b[j*ldb : j*ldb+m]
				for k := m - 1; k >= 0; k-- {
					if col[k] == 0 {
						continue
					}
					temp := alpha * col[k]
					acol := a[k*lda:]
					for i := k + 1; i < m; i++ {
						col[i] += temp * acol[i]
					}
					if !unit {
						temp *= acol[k]
					}
					col[k] = temp
				}
			}
		default: // Lower, Trans
			for j := 0; j < n; j++ {
				col := b[j*ldb : j*ldb+m]
				for k := 0; k < m; k++ {
					acol := a[k*lda:]
					temp := col[k]
					if !unit {
						temp *= acol[k]
					}
					for i := k + 1; i < m; i++ {
						temp += acol[i] * col[i]
					}
					col[k] = alpha * temp
				}
			}
		}
		return
	}
	// side == Right: B := alpha * B * op(A). Work row-block-wise over
	// columns of the result. Let upNoT mark whether column j of the result
	// depends on columns j..end (true) or 0..j (false) of B.
	upNoT := (uplo == Upper && trans == NoTrans) || (uplo == Lower && trans == Trans)
	aval := func(i, j int) float64 {
		if trans == Trans {
			i, j = j, i
		}
		if i == j && unit {
			return 1
		}
		if (uplo == Upper && i > j) || (uplo == Lower && i < j) {
			return 0
		}
		return a[i+j*lda]
	}
	if upNoT {
		// result col j = sum_{l<=j} B[:,l]*opA[l,j]: process j descending.
		for j := n - 1; j >= 0; j-- {
			dst := b[j*ldb : j*ldb+m]
			d := alpha * aval(j, j)
			for i := range dst {
				dst[i] *= d
			}
			for l := 0; l < j; l++ {
				t := alpha * aval(l, j)
				if t != 0 {
					src := b[l*ldb : l*ldb+m]
					for i := range dst {
						dst[i] += t * src[i]
					}
				}
			}
		}
	} else {
		// result col j depends on B[:,l] for l>=j: process j ascending.
		for j := 0; j < n; j++ {
			dst := b[j*ldb : j*ldb+m]
			d := alpha * aval(j, j)
			for i := range dst {
				dst[i] *= d
			}
			for l := j + 1; l < n; l++ {
				t := alpha * aval(l, j)
				if t != 0 {
					src := b[l*ldb : l*ldb+m]
					for i := range dst {
						dst[i] += t * src[i]
					}
				}
			}
		}
	}
}

// Dtrsm solves op(A)*X = alpha*B (side Left) or X*op(A) = alpha*B (side
// Right) for X, overwriting B. A is triangular.
func Dtrsm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("dtrsm", na, na, a, lda)
	checkMatrix("dtrsm", m, n, b, ldb)
	if m == 0 || n == 0 {
		return
	}
	unit := diag == Unit
	aval := func(i, j int) float64 {
		if trans == Trans {
			i, j = j, i
		}
		if (uplo == Upper && i > j) || (uplo == Lower && i < j) {
			return 0
		}
		return a[i+j*lda]
	}
	if alpha != 1 {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			for i := range col {
				col[i] *= alpha
			}
		}
	}
	if side == Left {
		// Solve op(A) X = B column by column via substitution. Effective
		// matrix op(A) is lower when (Lower,NoTrans) or (Upper,Trans).
		lower := (uplo == Lower && trans == NoTrans) || (uplo == Upper && trans == Trans)
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			if lower {
				for i := 0; i < m; i++ {
					s := col[i]
					for l := 0; l < i; l++ {
						s -= aval(i, l) * col[l]
					}
					if !unit {
						s /= aval(i, i)
					}
					col[i] = s
				}
			} else {
				for i := m - 1; i >= 0; i-- {
					s := col[i]
					for l := i + 1; l < m; l++ {
						s -= aval(i, l) * col[l]
					}
					if !unit {
						s /= aval(i, i)
					}
					col[i] = s
				}
			}
		}
		return
	}
	// side == Right: X op(A) = B, i.e. column j of X satisfies
	// sum_l X[:,l] opA[l,j] = B[:,j]. Effective op(A) lower triangular means
	// X[:,j] depends on X[:,l] for l>j → iterate j descending; upper means
	// ascending.
	lower := (uplo == Lower && trans == NoTrans) || (uplo == Upper && trans == Trans)
	if lower {
		for j := n - 1; j >= 0; j-- {
			dst := b[j*ldb : j*ldb+m]
			for l := j + 1; l < n; l++ {
				t := aval(l, j)
				if t != 0 {
					src := b[l*ldb : l*ldb+m]
					for i := range dst {
						dst[i] -= t * src[i]
					}
				}
			}
			if !unit {
				d := aval(j, j)
				for i := range dst {
					dst[i] /= d
				}
			}
		}
	} else {
		for j := 0; j < n; j++ {
			dst := b[j*ldb : j*ldb+m]
			for l := 0; l < j; l++ {
				t := aval(l, j)
				if t != 0 {
					src := b[l*ldb : l*ldb+m]
					for i := range dst {
						dst[i] -= t * src[i]
					}
				}
			}
			if !unit {
				d := aval(j, j)
				for i := range dst {
					dst[i] /= d
				}
			}
		}
	}
}

// Dsymm computes C := alpha*A*B + beta*C (side Left) or
// C := alpha*B*A + beta*C (side Right) where A is symmetric with only the
// uplo triangle referenced and C is m×n.
func Dsymm(side Side, uplo Uplo, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("dsymm", na, na, a, lda)
	checkMatrix("dsymm", m, n, b, ldb)
	checkMatrix("dsymm", m, n, c, ldc)
	if m == 0 || n == 0 {
		return
	}
	for j := 0; j < n; j++ {
		col := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range col {
				col[i] = 0
			}
		} else if beta != 1 {
			for i := range col {
				col[i] *= beta
			}
		}
	}
	if alpha == 0 {
		return
	}
	if side == Left {
		for j := 0; j < n; j++ {
			bcol := b[j*ldb : j*ldb+m]
			ccol := c[j*ldc : j*ldc+m]
			for i := 0; i < m; i++ {
				var sum float64
				for l := 0; l < m; l++ {
					sum += symAt(uplo, a, lda, i, l) * bcol[l]
				}
				ccol[i] += alpha * sum
			}
		}
		return
	}
	for j := 0; j < n; j++ {
		ccol := c[j*ldc : j*ldc+m]
		for l := 0; l < n; l++ {
			t := alpha * symAt(uplo, a, lda, l, j)
			if t != 0 {
				bcol := b[l*ldb : l*ldb+m]
				for i := range ccol {
					ccol[i] += t * bcol[i]
				}
			}
		}
	}
}
