// Property tests for the bulge chase on pre-banded inputs: for every tested
// bandwidth the chase must yield a tridiagonal whose eigensystem, pushed back
// through the recorded Q₂ diamonds, diagonalizes the original band matrix to
// residual scale. External test package so the real backtransform applier can
// be exercised (backtransform imports bulge, so an internal test would cycle).
package bulge_test

import (
	"math/rand"
	"testing"

	"repro/internal/backtransform"
	"repro/internal/bulge"
	"repro/internal/matrix"
	"repro/internal/testmat"
	"repro/internal/tridiag"
)

// eigBand runs band → tridiagonal → eigensystem → back-transformation on b
// and returns the eigenvalues and the eigenvector matrix Z = Q₂·E.
func eigBand(t *testing.T, b *matrix.SymBand) ([]float64, *matrix.Dense) {
	t.Helper()
	res := bulge.Chase(b, nil, 0, true, nil, nil)
	d := append([]float64(nil), res.T.D...)
	e := append([]float64(nil), res.T.E...)
	vals, z, err := tridiag.Stedc(d, e)
	if err != nil {
		t.Fatalf("Stedc: %v", err)
	}
	plan := backtransform.NewPlan(res, 0, nil)
	plan.Apply(z, nil, 0, nil)
	return vals, z
}

// residualBudget is the allowed normalized residual in units of n·ε·‖B‖
// (testmat.Residual's normalization); order 1–100 indicates full backward
// stability.
const residualBudget = 200

// TestChaseBandedResidual is the satellite property gate: the full
// band-eigensolve pipeline at bandwidths {4, 8, 16, 32} on testmat's band
// generators must pass the first-principles metrics — ‖B·Z − Z·Λ‖ at
// residual scale and ZᵀZ = I to machine scale.
func TestChaseBandedResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, kd := range []int{4, 8, 16, 32} {
		for _, n := range []int{3*kd + 5, 4 * kd} {
			for _, gen := range []struct {
				name string
				mk   func(*rand.Rand, int, int) *matrix.SymBand
			}{
				{"random", testmat.RandomSymBand},
				{"diagdominant", testmat.DiagDominantSymBand},
			} {
				b := gen.mk(rng, n, kd)
				vals, z := eigBand(t, b)
				if res := testmat.Residual(b.ToDense(), vals, z); res > residualBudget {
					t.Errorf("%s n=%d kd=%d: residual %g", gen.name, n, kd, res)
				}
				if oe := testmat.OrthoError(z); oe > residualBudget {
					t.Errorf("%s n=%d kd=%d: orthogonality error %g", gen.name, n, kd, oe)
				}
				for i := 1; i < n; i++ {
					if vals[i-1] > vals[i] {
						t.Fatalf("%s n=%d kd=%d: eigenvalues not sorted", gen.name, n, kd)
					}
				}
			}
		}
	}
}
