package bulge

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/householder"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/tridiag"
)

func randBand(rng *rand.Rand, n, kd int) *matrix.SymBand {
	b := matrix.NewSymBand(n, kd)
	for j := 0; j < n; j++ {
		for i := j; i <= min(n-1, j+b.KD); i++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	return b
}

// buildQ2 accumulates the dense Q₂ = H(0,0)·H(0,1)⋯ from the recorded
// reflectors in generation order.
func buildQ2(res *Result) *matrix.Dense {
	n := res.N
	q := matrix.Eye(n)
	work := make([]float64, n)
	for _, r := range res.Refs {
		if r.Tau == 0 {
			continue
		}
		v := make([]float64, n)
		v[r.Row] = 1
		copy(v[r.Row+1:], r.V)
		// q := q·H (right multiplication accumulates the product in
		// generation order).
		householder.Larf(blas.Right, n, n, v, 1, r.Tau, q.Data, q.Stride, work)
	}
	return q
}

func TestChaseTridiagonalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, kd int }{{6, 2}, {10, 3}, {16, 4}, {17, 5}, {24, 4}, {30, 8}, {12, 11}, {9, 2}} {
		b := randBand(rng, tc.n, tc.kd)
		res := Chase(b, nil, 0, true, nil, nil)
		n := tc.n
		// 1. The result must be tridiagonal: reconstruct and compare.
		q2 := buildQ2(res)
		// Q2ᵀ·B·Q2 == T.
		bd := b.ToDense()
		tmp := matrix.NewDense(n, n)
		blas.Dgemm(blas.Trans, blas.NoTrans, n, n, n, 1, q2.Data, q2.Stride, bd.Data, bd.Stride, 0, tmp.Data, tmp.Stride)
		rec := matrix.NewDense(n, n)
		blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, tmp.Data, tmp.Stride, q2.Data, q2.Stride, 0, rec.Data, rec.Stride)
		td := res.T.ToDense()
		scale := bd.FrobeniusNorm() + 1
		if !rec.Equalish(td, 1e-12*scale*float64(n)) {
			t.Fatalf("n=%d kd=%d: Q2ᵀ·B·Q2 != T", tc.n, tc.kd)
		}
		// 2. Q2 orthogonal.
		qtq := matrix.NewDense(n, n)
		blas.Dgemm(blas.Trans, blas.NoTrans, n, n, n, 1, q2.Data, q2.Stride, q2.Data, q2.Stride, 0, qtq.Data, qtq.Stride)
		if !qtq.Equalish(matrix.Eye(n), 1e-12*float64(n)) {
			t.Fatalf("n=%d kd=%d: Q2 not orthogonal", tc.n, tc.kd)
		}
	}
}

func TestChaseEigenvaluesPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ n, kd int }{{20, 4}, {40, 6}, {33, 5}} {
		b := randBand(rng, tc.n, tc.kd)
		res := Chase(b, nil, 0, true, nil, nil)
		// Eigenvalues of T.
		dT := append([]float64(nil), res.T.D...)
		eT := append([]float64(nil), res.T.E...)
		if err := tridiag.Sterf(dT, eT); err != nil {
			t.Fatal(err)
		}
		// Eigenvalues of B via a dense similarity-free route: Sturm counts
		// on the dense matrix are unavailable, so use trace/Frobenius
		// invariants plus a coarse spectral check via Sturm on T against
		// Gershgorin-bounded bisection of B expanded... keep it simple:
		// trace and Frobenius norm.
		var trB, frB float64
		bd := b.ToDense()
		for i := 0; i < tc.n; i++ {
			trB += bd.At(i, i)
			for j := 0; j < tc.n; j++ {
				frB += bd.At(i, j) * bd.At(i, j)
			}
		}
		var trT, frT float64
		for _, v := range dT {
			trT += v
			frT += v * v
		}
		if math.Abs(trB-trT) > 1e-11*float64(tc.n) {
			t.Fatalf("n=%d kd=%d: trace changed: %g vs %g", tc.n, tc.kd, trB, trT)
		}
		if math.Abs(frB-frT) > 1e-9*frB {
			t.Fatalf("n=%d kd=%d: Frobenius changed", tc.n, tc.kd)
		}
	}
}

func TestChaseAlreadyTridiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := randBand(rng, 12, 1)
	res := Chase(b, nil, 0, true, nil, nil)
	if len(res.Refs) != 0 {
		t.Fatalf("kd=1 input should produce no reflectors, got %d", len(res.Refs))
	}
	for i := 0; i < 12; i++ {
		if res.T.D[i] != b.At(i, i) {
			t.Fatal("kd=1 diagonal altered")
		}
	}
}

func TestChaseSmallAndDegenerate(t *testing.T) {
	// n ≤ 2 and zero matrices must not crash.
	for _, n := range []int{0, 1, 2, 3} {
		b := matrix.NewSymBand(n, min(2, max(0, n-1)))
		res := Chase(b, nil, 0, true, nil, nil)
		if res.T.N() != n {
			t.Fatalf("n=%d: bad T size", n)
		}
	}
	// Diagonal matrix in band form: nothing to chase.
	b := matrix.NewSymBand(8, 3)
	for i := 0; i < 8; i++ {
		b.Set(i, i, float64(i))
	}
	res := Chase(b, nil, 0, true, nil, nil)
	for i := 0; i < 8; i++ {
		if res.T.D[i] != float64(i) {
			t.Fatal("diagonal matrix altered")
		}
		if i < 7 && res.T.E[i] != 0 {
			t.Fatal("diagonal matrix grew off-diagonal entries")
		}
	}
}

func TestChaseScheduledMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, kd := 40, 5
	b := randBand(rng, n, kd)
	ref := Chase(b, nil, 0, true, nil, nil)
	for _, workers := range []int{1, 3} {
		s := sched.New(workers)
		got := Chase(b, s.NewJob(nil), 0, true, nil, nil)
		s.Shutdown()
		for i := range ref.T.D {
			if ref.T.D[i] != got.T.D[i] {
				t.Fatalf("workers=%d: D[%d] differs", workers, i)
			}
		}
		for i := range ref.T.E {
			if ref.T.E[i] != got.T.E[i] {
				t.Fatalf("workers=%d: E[%d] differs", workers, i)
			}
		}
		if len(ref.Refs) != len(got.Refs) {
			t.Fatalf("workers=%d: reflector count differs", workers)
		}
		for i := range ref.Refs {
			if ref.Refs[i].Tau != got.Refs[i].Tau || ref.Refs[i].Row != got.Refs[i].Row {
				t.Fatalf("workers=%d: reflector %d differs", workers, i)
			}
		}
	}
}

func TestChaseAffinityRestriction(t *testing.T) {
	// With affinity set, chase tasks must stay on the designated workers
	// (the paper's core-restriction technique for the memory-bound stage).
	rng := rand.New(rand.NewSource(5))
	b := randBand(rng, 24, 4)
	s := sched.New(4, sched.WithTrace())
	Chase(b, s.NewJob(nil), 0b0011, true, nil, nil) // workers 0 and 1 only
	events := s.Trace()
	s.Shutdown()
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	for _, ev := range events {
		if ev.Worker > 1 {
			t.Fatalf("task %q ran on worker %d despite affinity", ev.Name, ev.Worker)
		}
	}
}

func TestReflectorLattice(t *testing.T) {
	// Reflector (s, ℓ) must start at row s + ℓ·bw + 1 and stay within the
	// matrix; essential lengths never exceed bw−1.
	rng := rand.New(rand.NewSource(6))
	n, kd := 30, 4
	b := randBand(rng, n, kd)
	res := Chase(b, nil, 0, true, nil, nil)
	for _, r := range res.Refs {
		wantRow := r.Sweep + r.Level*kd + 1
		if r.Row != wantRow {
			t.Fatalf("reflector (%d,%d) at row %d, want %d", r.Sweep, r.Level, r.Row, wantRow)
		}
		if len(r.V) > kd-1 {
			t.Fatalf("reflector (%d,%d) essential length %d > kd-1", r.Sweep, r.Level, len(r.V))
		}
		if r.Row+len(r.V) > n-1 {
			t.Fatalf("reflector (%d,%d) exceeds matrix", r.Sweep, r.Level)
		}
	}
}

func TestChaseStaticMatchesDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, kd := 36, 4
	b := randBand(rng, n, kd)
	ref := Chase(b, nil, 0, true, nil, nil)
	for _, workers := range []int{1, 2, 4} {
		got, err := ChaseStatic(context.Background(), b, workers, true, nil, nil)
		if err != nil {
			t.Fatalf("ChaseStatic: %v", err)
		}
		for i := range ref.T.D {
			if ref.T.D[i] != got.T.D[i] {
				t.Fatalf("static workers=%d: D[%d] differs", workers, i)
			}
		}
		for i := range ref.T.E {
			if ref.T.E[i] != got.T.E[i] {
				t.Fatalf("static workers=%d: E[%d] differs", workers, i)
			}
		}
		if len(ref.Refs) != len(got.Refs) {
			t.Fatalf("static workers=%d: reflector count %d vs %d", workers, len(got.Refs), len(ref.Refs))
		}
		for i := range ref.Refs {
			if ref.Refs[i].Tau != got.Refs[i].Tau {
				t.Fatalf("static workers=%d: reflector %d tau differs", workers, i)
			}
		}
	}
}

func TestChaseStaticDegenerate(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5} {
		b := matrix.NewSymBand(n, min(1, max(0, n-1)))
		res, err := ChaseStatic(context.Background(), b, 3, true, nil, nil)
		if err != nil {
			t.Fatalf("ChaseStatic: %v", err)
		}
		if res.T.N() != n {
			t.Fatalf("n=%d: bad T size", n)
		}
	}
}

// TestChaseValuesOnly checks the wantQ=false fast path: no reflectors are
// recorded (the back-transformation never runs for values-only solves) and
// the tridiagonal output is identical to the full chase.
func TestChaseValuesOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct{ n, kd int }{{17, 3}, {32, 4}, {40, 6}} {
		b := randBand(rng, tc.n, tc.kd)
		full := Chase(b, nil, 0, true, nil, nil)
		vo := Chase(b, nil, 0, false, nil, nil)
		if vo.Refs != nil {
			t.Fatalf("n=%d kd=%d: values-only chase recorded %d reflectors", tc.n, tc.kd, len(vo.Refs))
		}
		if len(full.Refs) == 0 {
			t.Fatalf("n=%d kd=%d: full chase recorded no reflectors", tc.n, tc.kd)
		}
		for i := range full.T.D {
			if vo.T.D[i] != full.T.D[i] {
				t.Fatalf("n=%d kd=%d: D[%d] differs: %g vs %g", tc.n, tc.kd, i, vo.T.D[i], full.T.D[i])
			}
		}
		for i := range full.T.E {
			if vo.T.E[i] != full.T.E[i] {
				t.Fatalf("n=%d kd=%d: E[%d] differs: %g vs %g", tc.n, tc.kd, i, vo.T.E[i], full.T.E[i])
			}
		}
	}
}
