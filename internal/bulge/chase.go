// Package bulge implements stage 2 of the two-stage reduction: the
// column-wise bulge-chasing algorithm (paper §5.2, Figure 2) that reduces a
// symmetric band matrix with bandwidth b to tridiagonal form,
// B = Q₂·T·Q₂ᵀ, while harvesting the Householder reflectors that make up
// Q₂ for the eigenvector back-transformation.
//
// Each sweep s eliminates the entries of column s below the first
// subdiagonal and chases the resulting bulge down the band:
//
//   - xHBCEU starts the sweep: one reflector annihilates B[s+2:s+b+1, s] and
//     is applied two-sidedly to the leading symmetric triangle.
//   - xHBREL applies the previous reflector from the right to the next
//     off-diagonal block, which fills in a triangular bulge; following the
//     paper's delayed-annihilation strategy it eliminates only the bulge's
//     first column (the rest overlaps the bulges of later sweeps and is
//     chased by them), generating the next reflector and applying it from
//     the left to the block while it is still in cache.
//   - xHBLRU applies that reflector two-sidedly to the next symmetric
//     triangle.
//
// The matrix is kept in an extended band (2b−1 subdiagonals) because the
// transient bulges live just below the original band.
package bulge

import (
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Reflector is one elementary Householder transformation of Q₂. The full
// vector is [1; V] acting on rows Row..Row+len(V) of the matrix, and
// Q₂ = H(0,0)·H(0,1)⋯H(s,ℓ)⋯ in generation order (sweep-major, level-minor).
type Reflector struct {
	Sweep int     // sweep (column) index that generated it
	Level int     // chase depth: 0 for the xHBCEU reflector
	Row   int     // global row of the implicit leading 1
	V     []float64 // essential part (length = block length − 1)
	Tau   float64
}

// Result is the output of Chase.
type Result struct {
	N int // matrix order
	B int // bandwidth of the input band matrix
	// T is the resulting tridiagonal matrix.
	T *matrix.Tridiagonal
	// Refs holds the Q₂ reflectors in generation order. Identity reflectors
	// (tau = 0) are included so the diamond grouping in backtransform can
	// rely on the regular (sweep, level) lattice.
	Refs []Reflector
}

// Chase reduces the symmetric band matrix b2 (not modified) to tridiagonal
// form. If s is non-nil the kernel calls run as scheduler tasks whose
// dependences reproduce the sequential order exactly (the paper's
// fine-grained stage-2 scheduling); affinity restricts those tasks to a
// subset of workers (0 = all), implementing the paper's core restriction
// for this memory-bound stage. tc may be nil.
func Chase(b2 *matrix.SymBand, s *sched.Scheduler, affinity uint64, tc *trace.Collector) *Result {
	n := b2.N
	bw := b2.KD
	res := &Result{N: n, B: bw}
	if n == 0 {
		res.T = matrix.NewTridiagonal(0)
		return res
	}
	if bw <= 1 {
		// Already tridiagonal.
		res.T = matrix.TridiagonalFromBand(b2)
		return res
	}

	// Working copy with room for the bulges.
	w := newWorkBand(b2)

	refs := chaseKernels(w, tc, func(t sched.Task) {
		if s == nil {
			t.Run(0)
		} else {
			t.Affinity = affinity
			s.Submit(t)
		}
	})
	if s != nil {
		s.Wait()
	}

	res.T = w.extractTridiagonal()
	for i := range refs {
		if refs[i].V != nil {
			res.Refs = append(res.Refs, refs[i])
		}
	}
	return res
}

// ChaseStatic runs the same kernel tasks under the static progress-table
// runtime (the paper's other scheduling mode for this stage): tasks are
// assigned to workers round-robin in generation order and cross-worker
// ordering is enforced by explicit After edges derived from the same
// conservative block resources the dynamic scheduler uses. The result is
// bitwise identical to Chase.
func ChaseStatic(b2 *matrix.SymBand, workers int, tc *trace.Collector) *Result {
	n := b2.N
	bw := b2.KD
	res := &Result{N: n, B: bw}
	if n == 0 {
		res.T = matrix.NewTridiagonal(0)
		return res
	}
	if bw <= 1 {
		res.T = matrix.TridiagonalFromBand(b2)
		return res
	}
	w := newWorkBand(b2)

	var tasks []sched.StaticTask
	lastUser := map[int]int{} // resource → index of the last task touching it
	refs := chaseKernels(w, tc, func(t sched.Task) {
		idx := len(tasks)
		var after []int
		seen := map[int]bool{}
		for _, d := range t.Deps {
			if prev, ok := lastUser[d.Resource]; ok && !seen[prev] {
				after = append(after, prev)
				seen[prev] = true
			}
			lastUser[d.Resource] = idx
		}
		tasks = append(tasks, sched.StaticTask{Name: t.Name, Run: t.Run, After: after})
	})
	if workers < 1 {
		workers = 1
	}
	sched.RunStatic(sched.RoundRobinSchedule(tasks, workers))

	res.T = w.extractTridiagonal()
	for i := range refs {
		if refs[i].V != nil {
			res.Refs = append(res.Refs, refs[i])
		}
	}
	return res
}

// chaseKernels generates the kernel tasks of the chase in sequential order,
// handing each to submit; it returns the reflector lattice (slots may be
// empty). The caller owns synchronization: every task's Deps describe its
// footprint via conservative row-block resources.
func chaseKernels(w *workBand, tc *trace.Collector, submit func(sched.Task)) []Reflector {
	n, bw := w.n, w.bw
	// Pre-plan the reflector lattice so recording is race-free under the
	// scheduler: slot (s, ℓ) is known in advance.
	maxLevels := (n + bw - 1) / bw
	slot := func(sweep, level int) int { return sweep*maxLevels + level }
	refs := make([]Reflector, n*maxLevels)

	for sw := 0; sw <= n-3; sw++ {
		sw := sw
		len0 := min(bw, n-1-sw)
		if len0 < 2 {
			continue
		}
		// xHBCEU: annihilate column sw below the subdiagonal, update the
		// leading triangle two-sidedly.
		r0 := sw + 1
		submit(sched.Task{
			Name:     kname("HBCEU", sw, 0),
			Priority: 10,
			Deps:     blockDeps(w, r0, r0+len0-1, r0, r0+len0-1, sw),
			Run: func(int) {
				v, tau := w.larfgColumn(sw, r0, len0, tc)
				refs[slot(sw, 0)] = Reflector{Sweep: sw, Level: 0, Row: r0, V: v, Tau: tau}
				w.symTwoSided(r0, len0, v, tau, tc)
			},
		})
		// Chase down the band.
		for lvl := 1; ; lvl++ {
			prevStart := sw + (lvl-1)*bw + 1
			prevLen := min(bw, n-1-sw-(lvl-1)*bw)
			nextStart := prevStart + prevLen // == sw + lvl*bw + 1 except at the end
			if prevLen < bw || nextStart > n-1 {
				break // previous block was the last one
			}
			nextLen := min(bw, n-nextStart)
			lvl := lvl
			submit(sched.Task{
				Name:     kname("HBREL+HBLRU", sw, lvl),
				Priority: 10,
				Deps:     blockDeps(w, nextStart, nextStart+nextLen-1, prevStart, nextStart+nextLen-1, -1),
				Run: func(int) {
					prev := &refs[slot(sw, lvl-1)]
					// xHBREL: right update of the off-diagonal block by the
					// previous reflector (creates the bulge)…
					w.rightUpdate(nextStart, nextLen, prevStart, prevLen, prev.V, prev.Tau, tc)
					// …then annihilate only the bulge's first column and
					// apply the new reflector from the left to the rest of
					// the block while it is hot in cache.
					var v []float64
					var tau float64
					if nextLen >= 2 {
						v, tau = w.larfgColumn(prevStart, nextStart, nextLen, tc)
					} else {
						v, tau = []float64{}, 0
					}
					refs[slot(sw, lvl)] = Reflector{Sweep: sw, Level: lvl, Row: nextStart, V: v, Tau: tau}
					if tau != 0 {
						w.leftUpdate(nextStart, nextLen, prevStart+1, prevLen-1, v, tau, tc)
						// xHBLRU: two-sided update of the next symmetric
						// triangle.
						w.symTwoSided(nextStart, nextLen, v, tau, tc)
					}
				},
			})
			if min(bw, n-1-sw-lvl*bw) < 1 {
				break
			}
		}
	}
	return refs
}

// kname builds a task name without fmt to keep submission cheap.
func kname(kind string, s, l int) string {
	return kind + "#" + itoa(s) + "." + itoa(l)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	p := len(buf)
	for v > 0 {
		p--
		buf[p] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[p:])
}

// blockDeps declares conservative resources for a kernel touching rows
// [r0, r1] and columns [c0, c1] of the band: one resource per bw-aligned
// row block spanned, which serializes exactly the kernels whose footprints
// can overlap. col0 ≥ 0 additionally claims that column's block (for the
// sweep-starting kernel that reads column sw).
func blockDeps(w *workBand, r0, r1, c0, c1, col0 int) []sched.Dep {
	lo := min(r0, c0) / w.bw
	hi := max(r1, c1) / w.bw
	if col0 >= 0 && col0/w.bw < lo {
		lo = col0 / w.bw
	}
	deps := make([]sched.Dep, 0, hi-lo+1)
	for g := lo; g <= hi; g++ {
		deps = append(deps, sched.RW(g))
	}
	return deps
}
