// Package bulge implements stage 2 of the two-stage reduction: the
// column-wise bulge-chasing algorithm (paper §5.2, Figure 2) that reduces a
// symmetric band matrix with bandwidth b to tridiagonal form,
// B = Q₂·T·Q₂ᵀ, while harvesting the Householder reflectors that make up
// Q₂ for the eigenvector back-transformation.
//
// Each sweep s eliminates the entries of column s below the first
// subdiagonal and chases the resulting bulge down the band:
//
//   - xHBCEU starts the sweep: one reflector annihilates B[s+2:s+b+1, s] and
//     is applied two-sidedly to the leading symmetric triangle.
//   - xHBREL applies the previous reflector from the right to the next
//     off-diagonal block, which fills in a triangular bulge; following the
//     paper's delayed-annihilation strategy it eliminates only the bulge's
//     first column (the rest overlaps the bulges of later sweeps and is
//     chased by them), generating the next reflector and applying it from
//     the left to the block while it is still in cache.
//   - xHBLRU applies that reflector two-sidedly to the next symmetric
//     triangle.
//
// The matrix is kept in an extended band (2b−1 subdiagonals) because the
// transient bulges live just below the original band.
package bulge

import (
	"context"

	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/work"
)

// Reflector is one elementary Householder transformation of Q₂. The full
// vector is [1; V] acting on rows Row..Row+len(V) of the matrix, and
// Q₂ = H(0,0)·H(0,1)⋯H(s,ℓ)⋯ in generation order (sweep-major, level-minor).
type Reflector struct {
	Sweep int       // sweep (column) index that generated it
	Level int       // chase depth: 0 for the xHBCEU reflector
	Row   int       // global row of the implicit leading 1
	V     []float64 // essential part (length = block length − 1)
	Tau   float64
}

// emptyV marks a recorded identity reflector: the slot is filled (V non-nil)
// but the transformation is trivial. Distinct from an untouched lattice slot
// whose V is nil.
var emptyV = []float64{}

// Result is the output of Chase.
type Result struct {
	N int // matrix order
	B int // bandwidth of the input band matrix
	// T is the resulting tridiagonal matrix.
	T *matrix.Tridiagonal
	// Refs holds the Q₂ reflectors in generation order. Identity reflectors
	// (tau = 0) are included so the diamond grouping in backtransform can
	// rely on the regular (sweep, level) lattice. Nil when the chase was run
	// with wantQ == false. The V slices may be arena-backed: the Result is
	// only valid until the arena is recycled.
	Refs []Reflector
}

// forEachStep walks the kernel lattice of the chase in sequential order:
// fn(sw, 0) is the sweep-starting xHBCEU kernel, fn(sw, lvl) for lvl ≥ 1 the
// combined xHBREL+xHBLRU chase kernel. fn returning false stops the walk.
func forEachStep(n, bw int, fn func(sw, lvl int) bool) {
	for sw := 0; sw <= n-3; sw++ {
		len0 := min(bw, n-1-sw)
		if len0 < 2 {
			continue
		}
		if !fn(sw, 0) {
			return
		}
		for lvl := 1; ; lvl++ {
			prevStart := sw + (lvl-1)*bw + 1
			prevLen := min(bw, n-1-sw-(lvl-1)*bw)
			nextStart := prevStart + prevLen
			if prevLen < bw || nextStart > n-1 {
				break // previous block was the last one
			}
			if !fn(sw, lvl) {
				return
			}
			if min(bw, n-1-sw-lvl*bw) < 1 {
				break
			}
		}
	}
}

// chaser carries the stage-2 kernel state: the extended working band, the
// pre-planned reflector lattice (slot (s, ℓ) is known in advance so
// recording is race-free under the scheduler), the slab the reflector
// essentials are carved from, and per-worker scratch. Kernel methods
// re-derive their block geometry from (sweep, level), so the sequential path
// calls them directly without closures or per-task allocations.
type chaser struct {
	w         workBand
	ws        *work.Arena
	tc        *trace.Collector
	refs      []Reflector
	out       []Reflector // retained Result.Refs storage
	maxLevels int
	slab      *work.Slab
	scratch   [][]float64 // per worker, ≥ bw+1 floats
}

// outCache bundles the chase outputs that outlive the kernels (the Result
// and its tridiagonal matrix) so a recycled arena reuses their headers.
type outCache struct {
	res Result
	t   matrix.Tridiagonal
}

func outFor(ws *work.Arena) *outCache {
	if oc, ok := ws.Value(work.Stage2Out).(*outCache); ok {
		return oc
	}
	oc := &outCache{}
	ws.SetValue(work.Stage2Out, oc)
	return oc
}

func newChaser(b2 *matrix.SymBand, workers int, ws *work.Arena, tc *trace.Collector) *chaser {
	n, bw := b2.N, b2.KD
	c, _ := ws.Value(work.Stage2Chaser).(*chaser)
	if c == nil {
		c = &chaser{}
		ws.SetValue(work.Stage2Chaser, c)
	}
	c.w.init(b2, ws)
	maxLevels := (n + bw - 1) / bw

	// Reflector lattice, retained across solves. Stale entries must be
	// cleared: the V slices point into the recycled slab.
	refs, _ := ws.Value(work.Stage2Refs).([]Reflector)
	if cap(refs) < n*maxLevels {
		refs = make([]Reflector, n*maxLevels)
		ws.SetValue(work.Stage2Refs, refs)
	} else {
		refs = refs[:n*maxLevels]
		clear(refs)
	}

	// Exact slab capacity for every reflector essential.
	capV := 0
	forEachStep(n, bw, func(sw, lvl int) bool {
		if lvl == 0 {
			capV += min(bw, n-1-sw) - 1
			return true
		}
		prevStart := sw + (lvl-1)*bw + 1
		prevLen := min(bw, n-1-sw-(lvl-1)*bw)
		nextLen := min(bw, n-(prevStart+prevLen))
		if nextLen >= 2 {
			capV += nextLen - 1
		}
		return true
	})

	c.ws, c.tc, c.refs, c.maxLevels = ws, tc, refs, maxLevels
	c.slab = ws.SlabOf(work.Stage2Slab, capV)
	c.scratch = ws.PerWorker(work.Stage2Scratch, workers, bw+1)
	return c
}

func (c *chaser) slot(sweep, level int) int { return sweep*c.maxLevels + level }

// startSweep is the xHBCEU kernel: annihilate column sw below the
// subdiagonal, update the leading triangle two-sidedly.
func (c *chaser) startSweep(sw, worker int) {
	n, bw := c.w.n, c.w.bw
	len0 := min(bw, n-1-sw)
	r0 := sw + 1
	v, tau := c.w.larfgColumn(sw, r0, len0, c.slab, c.tc)
	c.refs[c.slot(sw, 0)] = Reflector{Sweep: sw, Level: 0, Row: r0, V: v, Tau: tau}
	c.w.symTwoSided(r0, len0, v, tau, c.scratch[worker], c.tc)
}

// chaseStep is the combined xHBREL+xHBLRU kernel at chase depth lvl ≥ 1.
func (c *chaser) chaseStep(sw, lvl, worker int) {
	n, bw := c.w.n, c.w.bw
	prevStart := sw + (lvl-1)*bw + 1
	prevLen := min(bw, n-1-sw-(lvl-1)*bw)
	nextStart := prevStart + prevLen
	nextLen := min(bw, n-nextStart)

	prev := &c.refs[c.slot(sw, lvl-1)]
	// xHBREL: right update of the off-diagonal block by the previous
	// reflector (creates the bulge)…
	c.w.rightUpdate(nextStart, nextLen, prevStart, prevLen, prev.V, prev.Tau, c.scratch[worker], c.tc)
	// …then annihilate only the bulge's first column and apply the new
	// reflector from the left to the rest of the block while it is hot in
	// cache.
	var v []float64
	var tau float64
	if nextLen >= 2 {
		v, tau = c.w.larfgColumn(prevStart, nextStart, nextLen, c.slab, c.tc)
	} else {
		v, tau = emptyV, 0
	}
	c.refs[c.slot(sw, lvl)] = Reflector{Sweep: sw, Level: lvl, Row: nextStart, V: v, Tau: tau}
	if tau != 0 {
		c.w.leftUpdate(nextStart, nextLen, prevStart+1, prevLen-1, v, tau, c.tc)
		// xHBLRU: two-sided update of the next symmetric triangle.
		c.w.symTwoSided(nextStart, nextLen, v, tau, c.scratch[worker], c.tc)
	}
}

// deps returns the conservative access list of kernel (sw, lvl); see
// blockDeps.
func (c *chaser) deps(sw, lvl int) []sched.Dep {
	n, bw := c.w.n, c.w.bw
	if lvl == 0 {
		len0 := min(bw, n-1-sw)
		r0 := sw + 1
		return blockDeps(&c.w, r0, r0+len0-1, r0, r0+len0-1, sw)
	}
	prevStart := sw + (lvl-1)*bw + 1
	prevLen := min(bw, n-1-sw-(lvl-1)*bw)
	nextStart := prevStart + prevLen
	nextLen := min(bw, n-nextStart)
	return blockDeps(&c.w, nextStart, nextStart+nextLen-1, prevStart, nextStart+nextLen-1, -1)
}

// runSeq executes the kernels in sequential order on the calling goroutine,
// checking for cancellation once per sweep. No per-kernel allocations.
func (c *chaser) runSeq(job *sched.Job) {
	forEachStep(c.w.n, c.w.bw, func(sw, lvl int) bool {
		if lvl == 0 {
			if job.Canceled() {
				return false
			}
			c.startSweep(sw, 0)
		} else {
			c.chaseStep(sw, lvl, 0)
		}
		return true
	})
}

// schedule submits one task per kernel; the scheduler reproduces the
// sequential order through the conservative block dependences.
func (c *chaser) schedule(job *sched.Job, affinity uint64) {
	forEachStep(c.w.n, c.w.bw, func(sw, lvl int) bool {
		var name string
		var run func(int)
		if lvl == 0 {
			name = kname("HBCEU", sw, 0)
			run = func(w int) { c.startSweep(sw, w) }
		} else {
			name = kname("HBREL+HBLRU", sw, lvl)
			run = func(w int) { c.chaseStep(sw, lvl, w) }
		}
		job.Submit(sched.Task{
			Name:     name,
			Priority: 10,
			Affinity: affinity,
			Deps:     c.deps(sw, lvl),
			Run:      run,
		})
		return true
	})
}

// finish builds the Result after the kernels completed.
func (c *chaser) finish(res *Result, t *matrix.Tridiagonal, wantQ bool) {
	c.w.extractTridiagonal(c.ws, t)
	res.T = t
	if !wantQ {
		return
	}
	nref := 0
	for i := range c.refs {
		if c.refs[i].V != nil {
			nref++
		}
	}
	if cap(c.out) < nref {
		c.out = make([]Reflector, 0, nref)
	}
	out := c.out[:0]
	for i := range c.refs {
		if c.refs[i].V != nil {
			out = append(out, c.refs[i])
		}
	}
	c.out = out
	res.Refs = out
}

// Chase reduces the symmetric band matrix b2 (not modified) to tridiagonal
// form. A nil (or inline) job runs the kernels sequentially — the reference
// execution the scheduled one must match bit-for-bit — while a
// scheduler-backed job runs them as tasks whose dependences reproduce the
// sequential order exactly (the paper's fine-grained stage-2 scheduling);
// affinity restricts those tasks to a subset of workers (0 = all),
// implementing the paper's core restriction for this memory-bound stage.
//
// wantQ selects whether the Q₂ reflector sequence is accumulated into
// Result.Refs; values-only solves pass false and skip that work. If the job
// is canceled the Result's contents are unspecified and the caller must
// check job.Err. ws may be nil; when non-nil the Result borrows arena
// storage and is only valid until the arena is recycled. tc may be nil.
func Chase(b2 *matrix.SymBand, job *sched.Job, affinity uint64, wantQ bool, ws *work.Arena, tc *trace.Collector) *Result {
	n := b2.N
	bw := b2.KD
	oc := outFor(ws)
	res := &oc.res
	*res = Result{N: n, B: bw}
	if n == 0 {
		res.T = matrix.NewTridiagonal(0)
		return res
	}
	if bw <= 1 {
		// Already tridiagonal.
		res.T = matrix.TridiagonalFromBand(b2)
		return res
	}

	c := newChaser(b2, job.Workers(), ws, tc)
	if job.Parallel() {
		c.schedule(job, affinity)
		job.Wait() // error, if any, surfaces through job.Err at the caller
	} else {
		c.runSeq(job)
	}
	c.finish(res, &oc.t, wantQ)
	return res
}

// ChaseStatic runs the same kernel tasks under the static progress-table
// runtime (the paper's other scheduling mode for this stage): tasks are
// assigned to workers round-robin in generation order and cross-worker
// ordering is enforced by explicit After edges derived from the same
// conservative block resources the dynamic scheduler uses. The result is
// bitwise identical to Chase. On ctx cancellation the workers stop at a
// task boundary and the context error is returned with a nil Result.
func ChaseStatic(ctx context.Context, b2 *matrix.SymBand, workers int, wantQ bool, ws *work.Arena, tc *trace.Collector) (*Result, error) {
	n := b2.N
	bw := b2.KD
	oc := outFor(ws)
	res := &oc.res
	*res = Result{N: n, B: bw}
	if n == 0 {
		res.T = matrix.NewTridiagonal(0)
		return res, nil
	}
	if bw <= 1 {
		res.T = matrix.TridiagonalFromBand(b2)
		return res, nil
	}
	if workers < 1 {
		workers = 1
	}
	c := newChaser(b2, workers, ws, tc)

	var tasks []sched.StaticTask
	lastUser := map[int]int{} // resource → index of the last task touching it
	forEachStep(n, bw, func(sw, lvl int) bool {
		var name string
		var run func(int)
		if lvl == 0 {
			name = kname("HBCEU", sw, 0)
			run = func(w int) { c.startSweep(sw, w) }
		} else {
			name = kname("HBREL+HBLRU", sw, lvl)
			run = func(w int) { c.chaseStep(sw, lvl, w) }
		}
		idx := len(tasks)
		var after []int
		seen := map[int]bool{}
		for _, d := range c.deps(sw, lvl) {
			if prev, ok := lastUser[d.Resource]; ok && !seen[prev] {
				after = append(after, prev)
				seen[prev] = true
			}
			lastUser[d.Resource] = idx
		}
		tasks = append(tasks, sched.StaticTask{Name: name, Run: run, After: after})
		return true
	})
	if err := sched.RunStaticCtx(ctx, sched.RoundRobinSchedule(tasks, workers)); err != nil {
		return nil, err
	}
	c.finish(res, &oc.t, wantQ)
	return res, nil
}

// kname builds a task name without fmt to keep submission cheap.
func kname(kind string, s, l int) string {
	return kind + "#" + itoa(s) + "." + itoa(l)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	p := len(buf)
	for v > 0 {
		p--
		buf[p] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[p:])
}

// blockDeps declares conservative resources for a kernel touching rows
// [r0, r1] and columns [c0, c1] of the band: one resource per bw-aligned
// row block spanned, which serializes exactly the kernels whose footprints
// can overlap. col0 ≥ 0 additionally claims that column's block (for the
// sweep-starting kernel that reads column sw).
func blockDeps(w *workBand, r0, r1, c0, c1, col0 int) []sched.Dep {
	lo := min(r0, c0) / w.bw
	hi := max(r1, c1) / w.bw
	if col0 >= 0 && col0/w.bw < lo {
		lo = col0 / w.bw
	}
	deps := make([]sched.Dep, 0, hi-lo+1)
	for g := lo; g <= hi; g++ {
		deps = append(deps, sched.RW(g))
	}
	return deps
}
