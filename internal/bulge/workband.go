package bulge

import (
	"repro/internal/householder"
	"repro/internal/matrix"
	"repro/internal/trace"
	"repro/internal/work"
)

// workBand is the extended-band working storage for the chase: the original
// band plus room for the transient bulges, which reach 2b−1 subdiagonals.
// Lower band layout: element (i, j), j ≤ i ≤ j+kd, lives at
// data[(i−j) + j·lda].
type workBand struct {
	n    int
	bw   int // original bandwidth
	kd   int // working bandwidth (≤ 2bw−1)
	lda  int
	data []float64
}

// init copies b into extended-band storage from the arena. The bulge region
// must start zeroed, which the arena guarantees (and a fresh allocation
// trivially provides).
func (w *workBand) init(b *matrix.SymBand, ws *work.Arena) {
	kd := min(2*b.KD-1, b.N-1)
	if kd < b.KD {
		kd = b.KD
	}
	*w = workBand{n: b.N, bw: b.KD, kd: kd, lda: kd + 1}
	w.data = ws.Floats(work.Stage2Work, w.lda*b.N, true)
	for j := 0; j < b.N; j++ {
		for i := j; i <= min(b.N-1, j+b.KD); i++ {
			w.data[(i-j)+j*w.lda] = b.Data[(i-j)+j*b.LDA]
		}
	}
}

func (w *workBand) at(i, j int) float64 {
	if i < j {
		i, j = j, i
	}
	if i-j > w.kd {
		return 0
	}
	return w.data[(i-j)+j*w.lda]
}

func (w *workBand) set(i, j int, v float64) {
	if i < j {
		i, j = j, i
	}
	w.data[(i-j)+j*w.lda] = v
}

// col returns the contiguous storage of column j for rows [r0, r0+len).
// The requested rows must lie inside the extended band — a violation would
// silently alias the next column's storage, so it is checked.
func (w *workBand) col(j, r0, length int) []float64 {
	if r0 < j || r0+length-1-j > w.kd {
		panic("bulge: access outside the extended band (delayed-annihilation invariant broken)")
	}
	off := (r0 - j) + j*w.lda
	return w.data[off : off+length]
}

// larfgColumn generates the reflector annihilating all but the first entry
// of B[r0 : r0+length, c], writes the annihilated column back (beta then
// zeros), and returns the essential part (carved from slab) and tau.
func (w *workBand) larfgColumn(c, r0, length int, slab *work.Slab, tc *trace.Collector) ([]float64, float64) {
	x := w.col(c, r0, length)
	beta, tau := householder.Larfg(length, x[0], x[1:], 1)
	v := slab.Take(length - 1)
	copy(v, x[1:])
	x[0] = beta
	for i := 1; i < length; i++ {
		x[i] = 0
	}
	tc.AddFlops(trace.KOther, 3*int64(length))
	return v, tau
}

// symTwoSided applies H = I − τ·u·uᵀ (u = [1; v]) two-sidedly to the
// symmetric block starting at index r0 with the given length:
// S := H·S·H via the standard rank-2 form S −= u·wᵀ + w·uᵀ,
// w = τ·S·u − (τ²/2)(uᵀSu)·u. scratch must hold ≥ length floats.
func (w *workBand) symTwoSided(r0, length int, v []float64, tau float64, scratch []float64, tc *trace.Collector) {
	if tau == 0 || length == 0 {
		return
	}
	// p = τ·S·u using the lower-stored symmetric block.
	p := scratch[:length]
	clear(p)
	for j := 0; j < length; j++ {
		uj := 1.0
		if j > 0 {
			uj = v[j-1]
		}
		cj := w.col(r0+j, r0+j, length-j)
		// Diagonal contribution.
		p[j] += cj[0] * uj
		for i := j + 1; i < length; i++ {
			s := cj[i-j]
			ui := v[i-1]
			p[i] += s * uj
			p[j] += s * ui
		}
	}
	for i := range p {
		p[i] *= tau
	}
	// w = p − (τ/2)(uᵀp)·u.
	dot := p[0]
	for i := 1; i < length; i++ {
		dot += v[i-1] * p[i]
	}
	alpha := -0.5 * tau * dot
	p[0] += alpha
	for i := 1; i < length; i++ {
		p[i] += alpha * v[i-1]
	}
	// S −= u·pᵀ + p·uᵀ (lower part only).
	for j := 0; j < length; j++ {
		uj := 1.0
		if j > 0 {
			uj = v[j-1]
		}
		cj := w.col(r0+j, r0+j, length-j)
		cj[0] -= 2 * uj * p[j]
		for i := j + 1; i < length; i++ {
			ui := v[i-1]
			cj[i-j] -= ui*p[j] + uj*p[i]
		}
	}
	tc.AddFlops(trace.KSymv, 4*int64(length)*int64(length))
}

// rightUpdate applies H from the right to the block
// G = B[r0 : r0+rlen, c0 : c0+clen]:  G := G·(I − τ·u·uᵀ), u = [1; v] over
// the columns. This is the bulge-creating update of xHBREL. scratch must
// hold ≥ rlen floats.
func (w *workBand) rightUpdate(r0, rlen, c0, clen int, v []float64, tau float64, scratch []float64, tc *trace.Collector) {
	if tau == 0 || rlen == 0 || clen == 0 {
		return
	}
	// t = G·u.
	t := scratch[:rlen]
	clear(t)
	for j := 0; j < clen; j++ {
		uj := 1.0
		if j > 0 {
			uj = v[j-1]
		}
		cj := w.col(c0+j, r0, rlen)
		for i := 0; i < rlen; i++ {
			t[i] += cj[i] * uj
		}
	}
	// G −= τ·t·uᵀ.
	for j := 0; j < clen; j++ {
		uj := tau
		if j > 0 {
			uj = tau * v[j-1]
		}
		cj := w.col(c0+j, r0, rlen)
		for i := 0; i < rlen; i++ {
			cj[i] -= t[i] * uj
		}
	}
	tc.AddFlops(trace.KGemv, 4*int64(rlen)*int64(clen))
}

// leftUpdate applies H from the left to the block
// G = B[r0 : r0+rlen, c0 : c0+clen]:  G := (I − τ·u·uᵀ)·G, u over the rows.
// This is the delayed-annihilation update of xHBREL after the bulge's first
// column has been eliminated.
func (w *workBand) leftUpdate(r0, rlen, c0, clen int, v []float64, tau float64, tc *trace.Collector) {
	if tau == 0 || rlen == 0 || clen == 0 {
		return
	}
	for j := 0; j < clen; j++ {
		cj := w.col(c0+j, r0, rlen)
		dot := cj[0]
		for i := 1; i < rlen; i++ {
			dot += v[i-1] * cj[i]
		}
		dot *= tau
		cj[0] -= dot
		for i := 1; i < rlen; i++ {
			cj[i] -= dot * v[i-1]
		}
	}
	tc.AddFlops(trace.KGemv, 4*int64(rlen)*int64(clen))
}

// extractTridiagonal reads T off the fully chased band into t, drawing the
// d/e storage from the arena (fresh when ws is nil).
func (w *workBand) extractTridiagonal(ws *work.Arena, t *matrix.Tridiagonal) {
	t.D = ws.Floats(work.Stage2OutD, w.n, false)
	t.E = ws.Floats(work.Stage2OutE, max(0, w.n-1), false)
	for i := 0; i < w.n; i++ {
		t.D[i] = w.at(i, i)
		if i+1 < w.n {
			t.E[i] = w.at(i+1, i)
		}
	}
}
