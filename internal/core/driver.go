// Package core assembles the full symmetric eigensolvers from the
// substrates: the paper's two-stage algorithm (tile reduction to band,
// bulge chasing to tridiagonal, tridiagonal eigensolver, diamond-blocked
// Q₂ and tile Q₁ back-transformations) and the classic one-stage LAPACK
// baseline it is benchmarked against. Both drivers share the tridiagonal
// solvers and report per-phase timings through a trace.Collector, which is
// how the paper's Figure 1 breakdowns and Figure 4 speedups are
// regenerated.
//
// The drivers take a context for cancellation and, through Options, an
// optional shared scheduler and workspace arena so a long-lived Solver can
// run many solves without re-spawning workers or re-allocating workspace.
package core

import (
	"context"
	"fmt"

	"repro/internal/band"
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/onestage"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/tridiag"
	"repro/internal/tune"
	"repro/internal/work"
)

// Method selects the tridiagonal eigensolver, mirroring the three LAPACK
// drivers of the paper's Table 1.
type Method int

const (
	// MethodDC is divide & conquer (DSYEVD's approach).
	MethodDC Method = iota
	// MethodBI is bisection + inverse iteration, the subset-capable O(n²)
	// solver standing in for MRRR/DSYEVR (see DESIGN.md).
	MethodBI
	// MethodQR is implicit QL/QR iteration with accumulated rotations
	// (DSYEV's approach; ≈6n³ when all vectors are wanted).
	MethodQR
)

func (m Method) String() string {
	switch m {
	case MethodDC:
		return "D&C"
	case MethodBI:
		return "BI"
	case MethodQR:
		return "QR"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// FuseMode selects the back-transformation execution strategy.
type FuseMode int

const (
	// FuseAuto is the default: the fused single-pass back-transformation.
	FuseAuto FuseMode = iota
	// FuseOn forces the fused path explicitly.
	FuseOn
	// FuseOff is the kill-switch: the legacy two-phase sequence
	// (PhaseUpdateQ2 then PhaseUpdateQ1 with a global barrier between).
	FuseOff
)

// DefaultColBlock is the shared eigenvector column-block default used by
// both back-transformation appliers (and the fused path): cols eigenvector
// columns, stage-1 tile size nb, scheduler width workers. It delegates to
// tune.ColBlock so the appliers — which cannot import core — agree with the
// driver on the fused task granularity.
func DefaultColBlock(cols, nb, workers int) int {
	return tune.ColBlock(cols, nb, workers)
}

// Options configures the drivers. The zero value computes all eigenvalues
// and eigenvectors with D&C, default block sizes, and sequential execution.
type Options struct {
	// NB is the tile size / bandwidth for the two-stage driver and the
	// panel width for the one-stage driver (≤ 0 → defaults).
	NB int
	// Workers is the task-scheduler width; ≤ 1 runs sequentially. Ignored
	// when Sched is set.
	Workers int
	// LookaheadDepth is the stage-1 look-ahead depth d ≥ 1: trailing-update
	// tasks feeding one of the next d panels get priority boosts graded by
	// proximity, so panel factorization overlaps the trailing update. ≤ 0
	// picks band.DefaultLookahead; absurd depths are clamped. The depth only
	// steers scheduling — results are bitwise identical at every depth.
	LookaheadDepth int
	// DisableLookahead is the kill-switch for stage-1 look-ahead: it restores
	// the flat pre-look-ahead priority scheme exactly. Both paths are bitwise
	// identical — this exists for benchmarking and fault isolation, like
	// DisableParallelTridiag and FuseOff.
	DisableLookahead bool
	// WideBand is the stage-1 reduction bandwidth b₁ when the multi-sweep
	// successive band reduction is active (BandSweeps selects at least one
	// narrowing sweep and DisableMultiSweep is unset): stage 1 stops at this
	// wider, cache-friendlier band and the SBR sweeps narrow it before the
	// bulge chase. ≤ 0 — or multi-sweep inactive — leaves stage 1 at NB.
	WideBand int
	// BandSweeps are the intermediate bandwidths of the multi-sweep stage 1.
	// Each entry adds one band→band narrowing sweep (internal/sbr) and the
	// last entry is the bandwidth the bulge chase consumes; entries that do
	// not strictly narrow the band are ignored. Empty means the classic
	// single sweep (stage 1 → chase directly). Multi-sweep solves are
	// deterministic at any worker count, but they are a different
	// factorization from the single-sweep path, so results differ in
	// rounding — exactly as a changed NB would.
	BandSweeps []int
	// DisableMultiSweep is the kill-switch for the multi-sweep stage 1: when
	// set, WideBand and BandSweeps are ignored entirely and the solve is
	// bitwise identical to one that never set them.
	DisableMultiSweep bool
	// Stage2Workers restricts the bulge-chasing tasks to this many workers
	// (the paper's core-restriction: the stage is memory-bound, and using
	// fewer cores improves locality). 0 means no restriction.
	Stage2Workers int
	// Stage2Static runs the bulge chasing under the static progress-table
	// runtime instead of the dynamic scheduler (the paper's hybrid
	// dynamic/static design); the results are bitwise identical.
	Stage2Static bool
	// TridiagWorkers restricts the tridiagonal-eigensolver tasks (D&C
	// subtrees and merge tiles, bisection chunks, inverse-iteration
	// clusters) to this many workers. 0 inherits the full scheduler width.
	TridiagWorkers int
	// DisableParallelTridiag is the kill-switch for the parallel
	// tridiagonal stage: when set, eig_t runs sequentially on the calling
	// goroutine even when a scheduler is available. Both paths are bitwise
	// identical — this exists for benchmarking and fault isolation, like
	// FuseOff for the back-transformation.
	DisableParallelTridiag bool
	// Method selects the tridiagonal eigensolver.
	Method Method
	// Vectors requests eigenvectors.
	Vectors bool
	// IL, IU select the 1-based ascending index range of eigenpairs to
	// compute (inclusive); both zero means the full spectrum. Only MethodBI
	// computes strictly the subset; the other methods compute everything
	// and return the slice (matching LAPACK semantics, and the complexity
	// argument of the paper's fraction f).
	IL, IU int
	// Group is the diamond-group width for the Q₂ back-transformation
	// (≤ 0 → bandwidth).
	Group int
	// ColBlock is the eigenvector column-block width for per-core locality
	// (≤ 0 → the shared DefaultColBlock heuristic).
	ColBlock int
	// FusedBacktrans is the kill-switch for the fused single-pass
	// back-transformation: the zero value (FuseAuto) and FuseOn apply Q₂
	// and Q₁ per column block in one cache-hot sweep; FuseOff restores the
	// legacy two-phase sequence. Both paths are bitwise identical.
	FusedBacktrans FuseMode
	// Collector receives flop counts and per-phase timings; may be nil.
	Collector *trace.Collector

	// Sched, when non-nil, is a long-lived scheduler the solve runs on; the
	// driver creates a fresh Job per phase and never shuts it down. When nil
	// and Workers > 1, a transient scheduler is created for this solve.
	Sched *sched.Scheduler
	// Arena, when non-nil, supplies every internal workspace; buffers are
	// keyed by use and grown on demand, so a recycled arena makes repeated
	// same-size solves allocation-free in steady state. Nil means fresh
	// allocation everywhere (one-shot behaviour).
	Arena *work.Arena
	// Dst, when non-nil and correctly sized (n × k for the requested range),
	// receives the eigenvectors in place of a freshly allocated matrix.
	Dst *matrix.Dense
}

// EstimateWorkspaceBytes is the admission-control model of one solve's peak
// internal workspace: the dense working copy, the stage-1 tile storage, the
// band/workband/reflector structures (O(n·nb)), and — when vectors are
// computed — the eigenvector staging matrix plus the D&C basis and merge
// scratch (≈2n² more). It deliberately overestimates slightly: the batch
// layer uses it to bound how many solves may hold workspace concurrently
// under a memory budget, where admitting late is recoverable and admitting
// past physical memory is not. nb ≤ 0 means the default tile size.
func EstimateWorkspaceBytes(n, nb int, vectors bool) int64 {
	if n <= 0 {
		return 0
	}
	if nb <= 0 {
		nb = band.DefaultNB
	}
	nn := int64(n) * int64(n)
	bytes := 2 * nn // dense working copy + tile storage
	if vectors {
		bytes += 3 * nn // vector staging + D&C basis and merge scratch
	}
	bytes += 8 * int64(n) * int64(nb+2) // band, workband, reflector slabs, scratch
	return 8 * bytes
}

// Result of an eigensolve.
type Result struct {
	// Values are the computed eigenvalues in ascending order (the requested
	// range). The slice is freshly allocated and owned by the caller.
	Values []float64
	// Vectors holds the corresponding eigenvectors in its columns when
	// requested, else nil. It is Options.Dst when that was supplied, else a
	// freshly allocated matrix; never arena-backed.
	Vectors *matrix.Dense
}

// sbrSweeps resolves the effective narrowing sequence of the multi-sweep
// stage 1: the strictly decreasing subsequence of BandSweeps below the
// starting bandwidth b1. Nil when the kill-switch is set or nothing narrows
// — the classic single-sweep pipeline.
func (o *Options) sbrSweeps(b1 int) []int {
	if o.DisableMultiSweep || len(o.BandSweeps) == 0 {
		return nil
	}
	var out []int
	cur := b1
	for _, b := range o.BandSweeps {
		if b >= 1 && b < cur {
			out = append(out, b)
			cur = b
		}
	}
	return out
}

// stage1NB resolves the stage-1 reduction bandwidth: WideBand when the
// multi-sweep pipeline is active with it, else NB (≤ 0 → the default tile
// size).
func (o *Options) stage1NB() int {
	if o.WideBand > 0 && len(o.sbrSweeps(o.WideBand)) > 0 {
		return o.WideBand
	}
	if o.NB > 0 {
		return o.NB
	}
	return band.DefaultNB
}

func (o *Options) indexRange(n int) (il, iu int, err error) {
	il, iu = o.IL, o.IU
	if il == 0 && iu == 0 {
		return 1, n, nil
	}
	if il < 1 || iu > n || il > iu {
		return 0, 0, fmt.Errorf("core: invalid index range [%d, %d] for n=%d", il, iu, n)
	}
	return il, iu, nil
}

// phaseJob makes the per-phase task stream: scheduler-backed when a pool is
// available, else an inline job that still honors ctx between kernels.
func phaseJob(s *sched.Scheduler, ctx context.Context) *sched.Job {
	if s != nil {
		return s.NewJob(ctx)
	}
	if ctx != nil {
		return sched.Inline(ctx)
	}
	return nil
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// SyevTwoStage computes eigenpairs of the dense symmetric matrix a (only
// symmetry is assumed; both triangles are read) with the paper's two-stage
// algorithm. a is not modified. ctx may be nil (no cancellation); on
// cancellation the context's error is returned and any shared scheduler in
// o.Sched remains usable.
//
// It is a thin loop over the phase plan (see plan.go): callers that need to
// interleave or suspend phases — the pipelined batch executor, a future
// checkpointing service — use NewSolveState and run the plan themselves;
// both paths execute the identical phase bodies and are bitwise identical.
func SyevTwoStage(ctx context.Context, a *matrix.Dense, o Options) (*Result, error) {
	st, plan, err := NewSolveState(ctx, a, o)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	for _, ph := range plan {
		if err := ph.Run(ctx, st); err != nil {
			return nil, err
		}
	}
	return st.Result(), nil
}

// SyevOneStage computes the same eigenpairs with the classic one-stage
// algorithm (blocked SYTRD + back-transformation), the MKL-equivalent
// baseline of the paper's Figure 4. a is not modified.
func SyevOneStage(ctx context.Context, a *matrix.Dense, o Options) (*Result, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("core: matrix must be square, got %d×%d", n, a.Cols)
	}
	if n == 0 {
		return &Result{}, nil
	}
	il, iu, err := o.indexRange(n)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	tc := o.Collector
	ws := o.Arena

	// The one-stage reduction itself is sequential, but the tridiagonal
	// stage still runs over a scheduler when one is available (or Workers
	// asks for one), matching the two-stage driver.
	s := o.Sched
	if s == nil && o.Workers > 1 {
		s = sched.New(o.Workers)
		defer s.Shutdown()
	}

	aw := ws.Dense(work.Stage1Dense, n, n, false)
	aw.CopyFrom(a)
	var d, e, tau []float64
	tc.Phase(trace.PhaseReduction, func() {
		d, e, tau = onestage.Sytrd(aw, o.NB, ws, tc)
	})
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	t := &matrix.Tridiagonal{D: d, E: e}
	es := s
	if o.DisableParallelTridiag {
		es = nil
	}
	vals, evecs, err := solveTridiagonal(ctx, t, &o, es, il, iu, ws, tc,
		func() *sched.Job { return phaseJob(es, ctx) })
	if err != nil {
		return nil, err
	}
	res := &Result{Values: vals}
	if !o.Vectors {
		return res, nil
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	tc.Phase(trace.PhaseBacktrans, func() {
		onestage.ApplyQ(aw, tau, blas.NoTrans, evecs, o.NB, ws, tc)
	})
	res.Vectors = evecs
	return res, nil
}

// tridiagWorks returns the arena's retained tridiag.WorkSet (one scratch
// pool per scheduler worker plus the sequential one), creating it on first
// use and growing it to the current pool width. Nil arena → nil set (plain
// allocation inside the solvers).
func tridiagWorks(ws *work.Arena, workers int) *tridiag.WorkSet {
	if ws == nil {
		return nil
	}
	if v := ws.Value(work.TridiagWork); v != nil {
		set := v.(*tridiag.WorkSet)
		set.Grow(workers)
		return set
	}
	set := tridiag.NewWorkSet(workers)
	ws.SetValue(work.TridiagWork, set)
	return set
}

// intoVectors materializes the n×k eigenvector block src into dst when dst
// has the right shape, else into a fresh matrix. The result never aliases
// arena- or pool-owned storage.
func intoVectors(dst *matrix.Dense, src *matrix.Dense) *matrix.Dense {
	if dst != nil && dst.Rows == src.Rows && dst.Cols == src.Cols {
		dst.CopyFrom(src)
		return dst
	}
	return src.Clone()
}

// solveTridiagonal dispatches to the selected tridiagonal eigensolver and
// returns the [il, iu] slice of the spectrum (and vectors when requested).
// The returned slices/matrices are caller-owned copies, never arena-backed.
//
// es is the scheduler the stage runs on: the solve's scheduler, or nil when
// the DisableParallelTridiag kill-switch forces the stage sequential. With
// a scheduler the stage runs its parallel entry points — concurrent D&C
// subtrees and tiled merges, chunked bisection, cluster-parallel inverse
// iteration — on a job obtained from newJob (which lets the phase plan
// route labeled/biased jobs through); results are bitwise identical to the
// sequential path at any worker count. Options.TridiagWorkers restricts the
// stage's tasks to a prefix of the pool, like Stage2Workers does for the
// bulge chasing.
func solveTridiagonal(ctx context.Context, t *matrix.Tridiagonal, o *Options, es *sched.Scheduler, il, iu int, ws *work.Arena, tc *trace.Collector, newJob func() *sched.Job) (vals []float64, evecs *matrix.Dense, err error) {
	n := t.N()
	k := iu - il + 1
	var aff uint64
	poolW := 1
	if es != nil {
		poolW = es.Workers()
		if o.TridiagWorkers > 0 && o.TridiagWorkers < poolW {
			aff = sched.AffinityMask(o.TridiagWorkers)
		}
	}
	set := tridiagWorks(ws, poolW)
	tc.Phase(trace.PhaseEigT, func() {
		job := newJob()
		// Scratch copies of (d, e): the solvers destroy their inputs.
		scratch := func() (d, e []float64) {
			d = ws.Floats(work.TridiagD, n, false)
			e = ws.Floats(work.TridiagE, max(0, n-1), false)
			copy(d, t.D)
			copy(e, t.E)
			return d, e
		}
		if !o.Vectors {
			switch o.Method {
			case MethodBI:
				d, e := scratch()
				vals = tridiag.StebzSched(d, e, il, iu, set, job, aff, tc)
				err = job.Err()
			default:
				d, e := scratch()
				if err = tridiag.Sterf(d, e); err == nil {
					vals = append([]float64(nil), d[il-1:iu]...)
				}
			}
			return
		}
		switch o.Method {
		case MethodDC:
			var dv []float64
			var q *matrix.Dense
			dv, q, err = tridiag.StedcSched(t.D, t.E, set, job, aff, tc)
			if err != nil {
				return
			}
			vals = append([]float64(nil), dv[il-1:iu]...)
			evecs = intoVectors(o.Dst, q.View(0, il-1, n, k))
			set.PutVec(dv)
			set.PutMat(q)
		case MethodBI:
			d, e := scratch()
			vals = tridiag.StebzSched(d, e, il, iu, set, job, aff, tc)
			if err = job.Err(); err != nil {
				return
			}
			var z *matrix.Dense
			z, err = tridiag.SteinSched(t.D, t.E, vals, set, job, aff, tc)
			if err == nil {
				evecs = intoVectors(o.Dst, z)
			}
			set.PutMat(z)
		case MethodQR:
			d, e := scratch()
			q := ws.Dense(work.VectorStage, n, n, true)
			for i := 0; i < n; i++ {
				q.Data[i+i*q.Stride] = 1
			}
			// QR accumulates rotations through one matrix: inherently
			// sequential, so it ignores the scheduler.
			if err = tridiag.SteqrWork(d, e, q, set.Seq()); err != nil {
				return
			}
			tc.AttributeFlops(trace.PhaseEigTRecurse, 6*int64(n)*int64(n)*int64(n))
			vals = append([]float64(nil), d[il-1:iu]...)
			evecs = intoVectors(o.Dst, q.View(0, il-1, n, k))
		default:
			err = fmt.Errorf("core: unknown method %v", o.Method)
		}
		if err == nil {
			err = job.Err()
		}
	})
	return vals, evecs, err
}
