// Package core assembles the full symmetric eigensolvers from the
// substrates: the paper's two-stage algorithm (tile reduction to band,
// bulge chasing to tridiagonal, tridiagonal eigensolver, diamond-blocked
// Q₂ and tile Q₁ back-transformations) and the classic one-stage LAPACK
// baseline it is benchmarked against. Both drivers share the tridiagonal
// solvers and report per-phase timings through a trace.Collector, which is
// how the paper's Figure 1 breakdowns and Figure 4 speedups are
// regenerated.
package core

import (
	"fmt"

	"repro/internal/backtransform"
	"repro/internal/band"
	"repro/internal/blas"
	"repro/internal/bulge"
	"repro/internal/matrix"
	"repro/internal/onestage"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/tridiag"
)

// Method selects the tridiagonal eigensolver, mirroring the three LAPACK
// drivers of the paper's Table 1.
type Method int

const (
	// MethodDC is divide & conquer (DSYEVD's approach).
	MethodDC Method = iota
	// MethodBI is bisection + inverse iteration, the subset-capable O(n²)
	// solver standing in for MRRR/DSYEVR (see DESIGN.md).
	MethodBI
	// MethodQR is implicit QL/QR iteration with accumulated rotations
	// (DSYEV's approach; ≈6n³ when all vectors are wanted).
	MethodQR
)

func (m Method) String() string {
	switch m {
	case MethodDC:
		return "D&C"
	case MethodBI:
		return "BI"
	case MethodQR:
		return "QR"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options configures the drivers. The zero value computes all eigenvalues
// and eigenvectors with D&C, default block sizes, and sequential execution.
type Options struct {
	// NB is the tile size / bandwidth for the two-stage driver and the
	// panel width for the one-stage driver (≤ 0 → defaults).
	NB int
	// Workers is the task-scheduler width; ≤ 1 runs sequentially.
	Workers int
	// Stage2Workers restricts the bulge-chasing tasks to this many workers
	// (the paper's core-restriction: the stage is memory-bound, and using
	// fewer cores improves locality). 0 means no restriction.
	Stage2Workers int
	// Stage2Static runs the bulge chasing under the static progress-table
	// runtime instead of the dynamic scheduler (the paper's hybrid
	// dynamic/static design); the results are bitwise identical.
	Stage2Static bool
	// Method selects the tridiagonal eigensolver.
	Method Method
	// Vectors requests eigenvectors.
	Vectors bool
	// IL, IU select the 1-based ascending index range of eigenpairs to
	// compute (inclusive); both zero means the full spectrum. Only MethodBI
	// computes strictly the subset; the other methods compute everything
	// and return the slice (matching LAPACK semantics, and the complexity
	// argument of the paper's fraction f).
	IL, IU int
	// Group is the diamond-group width for the Q₂ back-transformation
	// (≤ 0 → bandwidth).
	Group int
	// ColBlock is the eigenvector column-block width for per-core locality
	// (≤ 0 → default).
	ColBlock int
	// Collector receives flop counts and per-phase timings; may be nil.
	Collector *trace.Collector
}

// Result of an eigensolve.
type Result struct {
	// Values are the computed eigenvalues in ascending order (the requested
	// range).
	Values []float64
	// Vectors holds the corresponding eigenvectors in its columns when
	// requested, else nil.
	Vectors *matrix.Dense
}

func (o *Options) indexRange(n int) (il, iu int, err error) {
	il, iu = o.IL, o.IU
	if il == 0 && iu == 0 {
		return 1, n, nil
	}
	if il < 1 || iu > n || il > iu {
		return 0, 0, fmt.Errorf("core: invalid index range [%d, %d] for n=%d", il, iu, n)
	}
	return il, iu, nil
}

// SyevTwoStage computes eigenpairs of the dense symmetric matrix a (only
// symmetry is assumed; both triangles are read) with the paper's two-stage
// algorithm. a is not modified.
func SyevTwoStage(a *matrix.Dense, o Options) (*Result, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("core: matrix must be square, got %d×%d", n, a.Cols)
	}
	if n == 0 {
		return &Result{}, nil
	}
	il, iu, err := o.indexRange(n)
	if err != nil {
		return nil, err
	}
	tc := o.Collector

	var s *sched.Scheduler
	if o.Workers > 1 {
		s = sched.New(o.Workers)
		defer s.Shutdown()
	}
	var stage2Aff uint64
	if s != nil && o.Stage2Workers > 0 && o.Stage2Workers < o.Workers {
		stage2Aff = (uint64(1) << uint(o.Stage2Workers)) - 1
	}

	// Stage 1: dense → band.
	work := a.Clone()
	var f1 *band.Factor
	tc.Phase(trace.PhaseStage1, func() {
		f1 = band.Reduce(work, o.NB, s, tc)
	})

	// Stage 2: band → tridiagonal.
	var chase *bulge.Result
	tc.Phase(trace.PhaseStage2, func() {
		if o.Stage2Static {
			wkr := o.Stage2Workers
			if wkr <= 0 {
				wkr = max(1, o.Workers)
			}
			chase = bulge.ChaseStatic(f1.Band, wkr, tc)
		} else {
			chase = bulge.Chase(f1.Band, s, stage2Aff, tc)
		}
	})

	// Phase 2 of the eigensolver: eigenpairs of T.
	vals, evecs, err := solveTridiagonal(chase.T, o.Method, o.Vectors, il, iu, tc)
	if err != nil {
		return nil, err
	}
	res := &Result{Values: vals}
	if !o.Vectors {
		return res, nil
	}

	// Back-transformation: Z = Q₁·(Q₂·E).
	tc.Phase(trace.PhaseUpdateQ2, func() {
		plan := backtransform.NewPlan(chase, o.Group)
		plan.Apply(evecs, s, o.ColBlock, tc)
	})
	tc.Phase(trace.PhaseUpdateQ1, func() {
		f1.ApplyQ1(blas.NoTrans, evecs, s, o.ColBlock, tc)
	})
	res.Vectors = evecs
	return res, nil
}

// SyevOneStage computes the same eigenpairs with the classic one-stage
// algorithm (blocked SYTRD + back-transformation), the MKL-equivalent
// baseline of the paper's Figure 4. a is not modified.
func SyevOneStage(a *matrix.Dense, o Options) (*Result, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("core: matrix must be square, got %d×%d", n, a.Cols)
	}
	if n == 0 {
		return &Result{}, nil
	}
	il, iu, err := o.indexRange(n)
	if err != nil {
		return nil, err
	}
	tc := o.Collector

	work := a.Clone()
	var d, e, tau []float64
	tc.Phase(trace.PhaseReduction, func() {
		d, e, tau = onestage.Sytrd(work, o.NB, tc)
	})
	t := &matrix.Tridiagonal{D: d, E: e}
	vals, evecs, err := solveTridiagonal(t, o.Method, o.Vectors, il, iu, tc)
	if err != nil {
		return nil, err
	}
	res := &Result{Values: vals}
	if !o.Vectors {
		return res, nil
	}
	tc.Phase(trace.PhaseBacktrans, func() {
		onestage.ApplyQ(work, tau, blas.NoTrans, evecs, o.NB, tc)
	})
	res.Vectors = evecs
	return res, nil
}

// solveTridiagonal dispatches to the selected tridiagonal eigensolver and
// returns the [il, iu] slice of the spectrum (and vectors when requested).
func solveTridiagonal(t *matrix.Tridiagonal, m Method, vectors bool, il, iu int, tc *trace.Collector) (vals []float64, evecs *matrix.Dense, err error) {
	n := t.N()
	k := iu - il + 1
	tc.Phase(trace.PhaseEigT, func() {
		if !vectors {
			switch m {
			case MethodBI:
				d := append([]float64(nil), t.D...)
				e := append([]float64(nil), t.E...)
				vals = tridiag.Stebz(d, e, il, iu)
			default:
				d := append([]float64(nil), t.D...)
				e := append([]float64(nil), t.E...)
				if err = tridiag.Sterf(d, e); err == nil {
					vals = d[il-1 : iu]
				}
			}
			return
		}
		switch m {
		case MethodDC:
			var q *matrix.Dense
			vals, q, err = tridiag.Stedc(t.D, t.E)
			if err != nil {
				return
			}
			vals = vals[il-1 : iu]
			evecs = q.View(0, il-1, n, k).Clone()
		case MethodBI:
			d := append([]float64(nil), t.D...)
			e := append([]float64(nil), t.E...)
			vals = tridiag.Stebz(d, e, il, iu)
			evecs, err = tridiag.Stein(t.D, t.E, vals)
		case MethodQR:
			d := append([]float64(nil), t.D...)
			e := append([]float64(nil), t.E...)
			q := matrix.Eye(n)
			if err = tridiag.Steqr(d, e, q); err != nil {
				return
			}
			vals = d[il-1 : iu]
			evecs = q.View(0, il-1, n, k).Clone()
		default:
			err = fmt.Errorf("core: unknown method %v", m)
		}
	})
	return vals, evecs, err
}
