package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
	"repro/internal/testmat"
	"repro/internal/trace"
)

// residualBudget is the allowed normalized residual (units of n·ε·‖A‖).
const residualBudget = 200

func checkEigen(t *testing.T, label string, a *matrix.Dense, res *Result, wantVals []float64) {
	t.Helper()
	if wantVals != nil {
		if len(res.Values) != len(wantVals) {
			t.Fatalf("%s: got %d values, want %d", label, len(res.Values), len(wantVals))
		}
		if e := testmat.SpectrumError(res.Values, wantVals); e > residualBudget {
			t.Fatalf("%s: spectrum error %.1f nε", label, e)
		}
	}
	for i := 1; i < len(res.Values); i++ {
		if res.Values[i] < res.Values[i-1] {
			t.Fatalf("%s: eigenvalues not ascending", label)
		}
	}
	if res.Vectors != nil {
		if r := testmat.Residual(a, res.Values, res.Vectors); r > residualBudget {
			t.Fatalf("%s: residual %.1f nε", label, r)
		}
		if o := testmat.OrthoError(res.Vectors); o > residualBudget {
			t.Fatalf("%s: orthogonality %.1f nε", label, o)
		}
	}
}

func TestTwoStageAllMethodsPlantedSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := testmat.UniformSpectrum(60, -3, 7)
	a := testmat.WithSpectrum(rng, spec)
	want := append([]float64(nil), spec...)
	sort.Float64s(want)
	for _, m := range []Method{MethodDC, MethodBI, MethodQR} {
		res, err := SyevTwoStage(context.Background(), a, Options{Method: m, Vectors: true, NB: 8})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		checkEigen(t, "two-stage "+m.String(), a, res, want)
	}
}

func TestOneStageAllMethodsPlantedSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spec := testmat.GeometricSpectrum(50, 0.01, 100)
	a := testmat.WithSpectrum(rng, spec)
	want := append([]float64(nil), spec...)
	sort.Float64s(want)
	for _, m := range []Method{MethodDC, MethodBI, MethodQR} {
		res, err := SyevOneStage(context.Background(), a, Options{Method: m, Vectors: true, NB: 8})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		checkEigen(t, "one-stage "+m.String(), a, res, want)
	}
}

func TestTwoStageMatchesOneStage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := testmat.RandomSym(rng, 70)
	r1, err := SyevOneStage(context.Background(), a, Options{Method: MethodDC, NB: 8})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SyevTwoStage(context.Background(), a, Options{Method: MethodDC, NB: 8})
	if err != nil {
		t.Fatal(err)
	}
	if e := testmat.SpectrumError(r2.Values, r1.Values); e > residualBudget {
		t.Fatalf("two-stage vs one-stage spectrum error %.1f nε", e)
	}
}

func TestTwoStageParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := testmat.RandomSym(rng, 48)
	seq, err := SyevTwoStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SyevTwoStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: 8, Workers: 4, Stage2Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The reductions are bitwise deterministic under the scheduler; the
	// tridiagonal solve is sequential either way, so values must agree to
	// the last bit and vectors too.
	for i := range seq.Values {
		if seq.Values[i] != par.Values[i] {
			t.Fatalf("parallel eigenvalue %d differs", i)
		}
	}
	if !par.Vectors.Equalish(seq.Vectors, 0) {
		t.Fatal("parallel vectors differ from sequential")
	}
}

func TestSubsetBI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 60
	a := testmat.RandomSym(rng, n)
	full, err := SyevTwoStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: 8})
	if err != nil {
		t.Fatal(err)
	}
	// 20% of the spectrum — the paper's Figure 4d scenario.
	il, iu := 1, n/5
	sub, err := SyevTwoStage(context.Background(), a, Options{Method: MethodBI, Vectors: true, NB: 8, IL: il, IU: iu})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Values) != iu {
		t.Fatalf("subset returned %d values, want %d", len(sub.Values), iu)
	}
	if e := testmat.SpectrumError(sub.Values, full.Values[:iu]); e > residualBudget {
		t.Fatalf("subset spectrum error %.1f nε", e)
	}
	checkEigen(t, "subset BI", a, sub, nil)
	if sub.Vectors.Cols != iu {
		t.Fatalf("subset vectors have %d columns", sub.Vectors.Cols)
	}
}

func TestSubsetSliceMethods(t *testing.T) {
	// DC and QR compute everything and return the requested slice.
	rng := rand.New(rand.NewSource(6))
	n := 40
	a := testmat.RandomSym(rng, n)
	full, err := SyevOneStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: 8})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := SyevOneStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: 8, IL: 11, IU: 20})
	if err != nil {
		t.Fatal(err)
	}
	if e := testmat.SpectrumError(sub.Values, full.Values[10:20]); e > 1 {
		t.Fatalf("slice mismatch: %.2f", e)
	}
	checkEigen(t, "subset slice", a, sub, nil)
}

func TestValuesOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := testmat.RandomSym(rng, 50)
	for _, m := range []Method{MethodDC, MethodBI, MethodQR} {
		r1, err := SyevTwoStage(context.Background(), a, Options{Method: m, NB: 8})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Vectors != nil {
			t.Fatalf("%v: vectors returned without being requested", m)
		}
		r2, err := SyevTwoStage(context.Background(), a, Options{Method: m, Vectors: true, NB: 8})
		if err != nil {
			t.Fatal(err)
		}
		if e := testmat.SpectrumError(r1.Values, r2.Values); e > residualBudget {
			t.Fatalf("%v: values-only disagrees with full solve: %.1f nε", m, e)
		}
	}
}

func TestClusteredSpectrumOrthogonality(t *testing.T) {
	// Tight clusters stress D&C deflation and BI reorthogonalization
	// through the whole two-stage pipeline.
	rng := rand.New(rand.NewSource(8))
	spec := testmat.ClusteredSpectrum(48, 4, 1e-10)
	a := testmat.WithSpectrum(rng, spec)
	for _, m := range []Method{MethodDC, MethodBI} {
		res, err := SyevTwoStage(context.Background(), a, Options{Method: m, Vectors: true, NB: 8})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		checkEigen(t, "clustered "+m.String(), a, res, nil)
	}
}

func TestPhaseTimings(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := testmat.RandomSym(rng, 64)

	// Default (fused) path: one back-transformation phase, with the Q₂/Q₁
	// split preserved as attributed flops.
	tc := trace.New()
	if _, err := SyevTwoStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: 8, Collector: tc}); err != nil {
		t.Fatal(err)
	}
	for _, ph := range []string{trace.PhaseStage1, trace.PhaseStage2, trace.PhaseEigT, trace.PhaseBacktransFused} {
		if tc.PhaseTime(ph) <= 0 {
			t.Fatalf("phase %s not timed", ph)
		}
	}
	if tc.PhaseTime(trace.PhaseUpdateQ2) != 0 || tc.PhaseTime(trace.PhaseUpdateQ1) != 0 {
		t.Fatal("legacy back-transformation phases timed on the fused path")
	}
	if tc.AttributedFlops(trace.PhaseUpdateQ2) <= 0 || tc.AttributedFlops(trace.PhaseUpdateQ1) <= 0 {
		t.Fatal("fused phase did not attribute the Q2/Q1 flop split")
	}
	if tc.TotalFlops() == 0 {
		t.Fatal("no flops recorded")
	}

	// Kill-switch: the legacy two-phase sequence is timed under its old
	// names.
	tc = trace.New()
	if _, err := SyevTwoStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: 8, Collector: tc, FusedBacktrans: FuseOff}); err != nil {
		t.Fatal(err)
	}
	for _, ph := range []string{trace.PhaseUpdateQ2, trace.PhaseUpdateQ1} {
		if tc.PhaseTime(ph) <= 0 {
			t.Fatalf("legacy phase %s not timed with FuseOff", ph)
		}
	}
	if tc.PhaseTime(trace.PhaseBacktransFused) != 0 {
		t.Fatal("fused phase timed with FuseOff")
	}
}

// TestFusedBacktransBitwiseIdentity pins the tentpole invariant: the fused
// single-pass back-transformation produces exactly the same eigenvector
// matrix as the legacy two-phase sequence — per column block the two paths
// run the identical kernel stream, so the results must agree to the last
// bit, for inline jobs and under the dynamic scheduler alike.
func TestFusedBacktransBitwiseIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, workers := range []int{0, 3} {
		for _, shape := range []struct{ n, nb, colBlock int }{
			{40, 8, 7},
			{64, 16, 0}, // shared default colBlock
			{33, 8, 16},
			{50, 12, 5},
			{48, 48, 13}, // single tile column: Q1 sequence is empty
		} {
			base := Options{
				Method: MethodDC, Vectors: true,
				NB: shape.nb, ColBlock: shape.colBlock, Workers: workers,
			}
			a := testmat.RandomSym(rng, shape.n)
			legacy := base
			legacy.FusedBacktrans = FuseOff
			want, err := SyevTwoStage(context.Background(), a, legacy)
			if err != nil {
				t.Fatal(err)
			}
			fused := base
			fused.FusedBacktrans = FuseOn
			got, err := SyevTwoStage(context.Background(), a, fused)
			if err != nil {
				t.Fatal(err)
			}
			label := t.Name()
			for i := range want.Values {
				if want.Values[i] != got.Values[i] {
					t.Fatalf("workers=%d n=%d: eigenvalue %d differs", workers, shape.n, i)
				}
			}
			if !got.Vectors.Equalish(want.Vectors, 0) {
				t.Fatalf("workers=%d n=%d nb=%d colBlock=%d: fused vectors differ bitwise from legacy",
					workers, shape.n, shape.nb, shape.colBlock)
			}
			checkEigen(t, label, a, got, nil)
		}
	}
}

// TestFusedBacktransSubset covers the fused path on a partial-spectrum solve
// (thin E): the paper's f < 1 scenario.
func TestFusedBacktransSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 52
	a := testmat.RandomSym(rng, n)
	legacy, err := SyevTwoStage(context.Background(), a, Options{Method: MethodBI, Vectors: true, NB: 8, IL: 3, IU: 17, FusedBacktrans: FuseOff})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := SyevTwoStage(context.Background(), a, Options{Method: MethodBI, Vectors: true, NB: 8, IL: 3, IU: 17, FusedBacktrans: FuseOn})
	if err != nil {
		t.Fatal(err)
	}
	if !fused.Vectors.Equalish(legacy.Vectors, 0) {
		t.Fatal("fused subset vectors differ bitwise from legacy")
	}
	checkEigen(t, "fused subset", a, fused, nil)
}

func TestDegenerateSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		a := matrix.NewDense(n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, float64(i+1))
		}
		for _, m := range []Method{MethodDC, MethodBI, MethodQR} {
			res, err := SyevTwoStage(context.Background(), a, Options{Method: m, Vectors: n > 0, NB: 4})
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, m, err)
			}
			if len(res.Values) != n {
				t.Fatalf("n=%d %v: got %d values", n, m, len(res.Values))
			}
			for i := 0; i < n; i++ {
				if math.Abs(res.Values[i]-float64(i+1)) > 1e-12 {
					t.Fatalf("n=%d %v: diagonal eigenvalue wrong", n, m)
				}
			}
		}
	}
}

func TestBadInputs(t *testing.T) {
	a := matrix.NewDense(4, 3)
	if _, err := SyevTwoStage(context.Background(), a, Options{}); err == nil {
		t.Fatal("non-square matrix accepted")
	}
	b := matrix.NewDense(4, 4)
	if _, err := SyevTwoStage(context.Background(), b, Options{IL: 3, IU: 2}); err == nil {
		t.Fatal("inverted index range accepted")
	}
	if _, err := SyevOneStage(context.Background(), b, Options{IL: 0, IU: 9}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestNBRobustness(t *testing.T) {
	// The full pipeline must be correct for awkward nb/n combinations.
	rng := rand.New(rand.NewSource(10))
	for _, tc := range []struct{ n, nb int }{{30, 7}, {33, 32}, {33, 33}, {33, 40}, {16, 1}, {17, 2}} {
		a := testmat.RandomSym(rng, tc.n)
		res, err := SyevTwoStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: tc.nb})
		if err != nil {
			t.Fatalf("n=%d nb=%d: %v", tc.n, tc.nb, err)
		}
		checkEigen(t, "nb robustness", a, res, nil)
	}
}

func TestStage2StaticMatchesDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := testmat.RandomSym(rng, 44)
	dyn, err := SyevTwoStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: 8})
	if err != nil {
		t.Fatal(err)
	}
	st, err := SyevTwoStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: 8, Stage2Static: true, Stage2Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range dyn.Values {
		if dyn.Values[i] != st.Values[i] {
			t.Fatalf("static stage-2 value %d differs", i)
		}
	}
	if !st.Vectors.Equalish(dyn.Vectors, 0) {
		t.Fatal("static stage-2 vectors differ")
	}
}

func TestScalingRobustness(t *testing.T) {
	// The pipeline must be scale-invariant: eigenvalues of s·A are s·λ(A),
	// even for extreme s (exercises the Larfg rescaling guards and the
	// deflation thresholds).
	rng := rand.New(rand.NewSource(12))
	base := testmat.RandomSym(rng, 32)
	ref, err := SyevTwoStage(context.Background(), base, Options{Method: MethodDC, Vectors: true, NB: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{1e-100, 1e-8, 1e8, 1e100} {
		a := base.Clone()
		for i := range a.Data {
			a.Data[i] *= s
		}
		res, err := SyevTwoStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: 8})
		if err != nil {
			t.Fatalf("scale %g: %v", s, err)
		}
		for i := range res.Values {
			want := ref.Values[i] * s
			if math.Abs(res.Values[i]-want) > 1e-10*math.Abs(want)+1e-300 {
				t.Fatalf("scale %g: eigenvalue %d = %g, want %g", s, i, res.Values[i], want)
			}
		}
		if r := testmat.Residual(a, res.Values, res.Vectors); r > residualBudget {
			t.Fatalf("scale %g: residual %.1f nε", s, r)
		}
	}
}

func TestPipelinePropertyQuick(t *testing.T) {
	// Random (n, nb, method) triples through the full two-stage pipeline:
	// residual and orthogonality always within budget.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		nb := 1 + rng.Intn(n)
		m := []Method{MethodDC, MethodBI, MethodQR}[rng.Intn(3)]
		a := testmat.RandomSym(rng, n)
		res, err := SyevTwoStage(context.Background(), a, Options{Method: m, Vectors: true, NB: nb})
		if err != nil {
			t.Logf("seed %d (n=%d nb=%d %v): %v", seed, n, nb, m, err)
			return false
		}
		return testmat.Residual(a, res.Values, res.Vectors) <= residualBudget &&
			testmat.OrthoError(res.Vectors) <= residualBudget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRankDeficientAndSpecialMatrices(t *testing.T) {
	// Rank-1, identity-like and zero matrices through both drivers.
	n := 24
	rank1 := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rank1.Set(i, j, float64(i+1)*float64(j+1))
		}
	}
	// Rank-1 PSD: one eigenvalue Σ(i+1)², the rest zero.
	var want float64
	for i := 1; i <= n; i++ {
		want += float64(i) * float64(i)
	}
	for _, alg := range []bool{true, false} {
		var res *Result
		var err error
		if alg {
			res, err = SyevTwoStage(context.Background(), rank1, Options{Method: MethodDC, Vectors: true, NB: 6})
		} else {
			res, err = SyevOneStage(context.Background(), rank1, Options{Method: MethodDC, Vectors: true, NB: 6})
		}
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Values[n-1]-want) > 1e-9*want {
			t.Fatalf("rank-1 top eigenvalue %g, want %g", res.Values[n-1], want)
		}
		for i := 0; i < n-1; i++ {
			if math.Abs(res.Values[i]) > 1e-9*want {
				t.Fatalf("rank-1 null eigenvalue %d = %g", i, res.Values[i])
			}
		}
		if r := testmat.Residual(rank1, res.Values, res.Vectors); r > residualBudget {
			t.Fatalf("rank-1 residual %.1f nε", r)
		}
	}
}

// TestParallelTridiagBitwiseIdentity pins the eig_t tentpole invariant: the
// scheduler-parallel tridiagonal stage (D&C task DAG, chunked bisection,
// cluster-parallel inverse iteration) produces exactly the results of the
// sequential stage — for every method, at several worker counts, with and
// without a TridiagWorkers restriction. n exceeds the D&C parallel cutoff
// so the task DAG genuinely engages.
func TestParallelTridiagBitwiseIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 150
	a := testmat.RandomSym(rng, n)
	for _, m := range []Method{MethodDC, MethodBI, MethodQR} {
		seq := Options{Method: m, Vectors: true, NB: 8, Workers: 4, DisableParallelTridiag: true}
		want, err := SyevTwoStage(context.Background(), a, seq)
		if err != nil {
			t.Fatalf("%v sequential: %v", m, err)
		}
		for _, workers := range []int{2, 4} {
			for _, tw := range []int{0, 1, 3} {
				par := Options{Method: m, Vectors: true, NB: 8, Workers: workers, TridiagWorkers: tw}
				got, err := SyevTwoStage(context.Background(), a, par)
				if err != nil {
					t.Fatalf("%v workers=%d tridiagWorkers=%d: %v", m, workers, tw, err)
				}
				for i := range want.Values {
					if want.Values[i] != got.Values[i] {
						t.Fatalf("%v workers=%d tridiagWorkers=%d: eigenvalue %d differs", m, workers, tw, i)
					}
				}
				if !got.Vectors.Equalish(want.Vectors, 0) {
					t.Fatalf("%v workers=%d tridiagWorkers=%d: vectors differ bitwise from sequential eig_t", m, workers, tw)
				}
			}
		}
		checkEigen(t, "parallel eig_t "+m.String(), a, want, nil)
	}
}

// TestParallelTridiagOneStage: the one-stage driver now routes eig_t over a
// scheduler too; its results must not depend on the worker count either.
func TestParallelTridiagOneStage(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 140
	a := testmat.RandomSym(rng, n)
	want, err := SyevOneStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SyevOneStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Values {
		if want.Values[i] != got.Values[i] {
			t.Fatalf("eigenvalue %d differs", i)
		}
	}
	if !got.Vectors.Equalish(want.Vectors, 0) {
		t.Fatal("one-stage parallel eig_t vectors differ bitwise from sequential")
	}
}

// TestParallelTridiagSubset: the BI subset path (bisection chunks + inverse
// iteration clusters on a thin range) under the scheduler.
func TestParallelTridiagSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 130
	a := testmat.RandomSym(rng, n)
	base := Options{Method: MethodBI, Vectors: true, NB: 8, IL: 11, IU: 73}
	seq := base
	seq.Workers, seq.DisableParallelTridiag = 4, true
	want, err := SyevTwoStage(context.Background(), a, seq)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Workers = 4
	got, err := SyevTwoStage(context.Background(), a, par)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Values {
		if want.Values[i] != got.Values[i] {
			t.Fatalf("eigenvalue %d differs", i)
		}
	}
	if !got.Vectors.Equalish(want.Vectors, 0) {
		t.Fatal("subset parallel eig_t vectors differ bitwise from sequential")
	}
	checkEigen(t, "parallel eig_t subset", a, got, nil)
}

// TestParallelTridiagAttribution: a parallel DC solve must attribute eig_t
// sub-phase flops (side channel — never part of TotalFlops).
func TestParallelTridiagAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := testmat.RandomSym(rng, 150)
	tc := trace.New()
	_, err := SyevTwoStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: 8, Workers: 2, Collector: tc})
	if err != nil {
		t.Fatal(err)
	}
	if tc.AttributedFlops(trace.PhaseEigTRecurse) <= 0 || tc.AttributedFlops(trace.PhaseEigTMerge) <= 0 {
		t.Fatal("parallel DC solve did not attribute eig_t sub-phase flops")
	}
}

// TestStage1LookaheadBitwise: the look-ahead stage-1 schedule, the Sequenced
// kill-switch, and a sequential solve must produce bitwise-identical
// eigensystems at every tested worker count and depth — the priorities only
// reorder the scheduler's ready queue.
func TestStage1LookaheadBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := testmat.RandomSym(rng, 90)
	ref, err := SyevTwoStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := func(label string, res *Result) {
		t.Helper()
		for i := range ref.Values {
			if math.Float64bits(ref.Values[i]) != math.Float64bits(res.Values[i]) {
				t.Fatalf("%s: value %d differs", label, i)
			}
		}
		if !ref.Vectors.Equalish(res.Vectors, 0) {
			t.Fatalf("%s: vectors differ", label)
		}
	}
	for _, workers := range []int{2, 4, 7} {
		for _, o := range []Options{
			{Method: MethodDC, Vectors: true, NB: 8, Workers: workers, LookaheadDepth: 1},
			{Method: MethodDC, Vectors: true, NB: 8, Workers: workers, LookaheadDepth: 4},
			{Method: MethodDC, Vectors: true, NB: 8, Workers: workers, DisableLookahead: true},
		} {
			res, err := SyevTwoStage(context.Background(), a, o)
			if err != nil {
				t.Fatal(err)
			}
			same(fmt.Sprintf("workers=%d depth=%d seq=%v", workers, o.LookaheadDepth, o.DisableLookahead), res)
		}
	}
}

// TestStage1LookaheadAttribution: a scheduled two-stage solve records the
// stage-1 sub-phase split (panel/update busy time plus idle worker-time)
// under the wall-clock PhaseStage1.
func TestStage1LookaheadAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := testmat.RandomSym(rng, 120)
	tc := trace.New()
	_, err := SyevTwoStage(context.Background(), a, Options{Method: MethodDC, Vectors: true, NB: 8, Workers: 3, Collector: tc})
	if err != nil {
		t.Fatal(err)
	}
	if tc.PhaseTime(trace.PhaseStage1Panel) <= 0 || tc.PhaseTime(trace.PhaseStage1Update) <= 0 {
		t.Fatal("scheduled solve did not attribute stage-1 panel/update time")
	}
	if tc.PhaseTime(trace.PhaseStage1Stall) < 0 {
		t.Fatal("negative stage-1 stall")
	}
	if busy := tc.PhaseTime(trace.PhaseStage1Panel) + tc.PhaseTime(trace.PhaseStage1Update); busy < tc.PhaseTime(trace.PhaseStage1) {
		// 3 workers were held for the whole phase, so total worker-time
		// (busy + stall) must be at least the phase's wall time.
		if busy+tc.PhaseTime(trace.PhaseStage1Stall) < tc.PhaseTime(trace.PhaseStage1) {
			t.Fatal("stage-1 busy+stall below the phase wall time")
		}
	}
}
