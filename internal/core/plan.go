// The phase plan: the two-stage driver decomposed into resumable steps.
//
// SyevTwoStage used to be one straight-line function; it is now a thin loop
// over a Plan — a typed sequence of Phase values (Stage1, Stage2, Tridiag,
// Backtrans) advancing a SolveState that carries every cross-phase artifact
// (the band factor, the chase result, eigenvalues, the eigenvector staging
// matrix, the arena). The decomposition is what lets the batch layer
// interleave *different solves'* phases on one scheduler — the compute-bound
// stage 1 of item k+1 overlapping the memory-bound bulge chase of item k,
// the paper's hybrid static/dynamic core restriction applied *between*
// solves — and what makes a solve suspendable: a SolveState may be stopped
// after any phase and resumed later to a bitwise-identical result, the
// checkpointing surface the service layer needs.
//
// Ownership: a SolveState pins its Options.Arena for its whole lifetime.
// The arena must not serve another solve until the plan has completed (or
// been abandoned); suspending a state suspends the arena with it.
package core

import (
	"context"
	"fmt"

	"repro/internal/backtransform"
	"repro/internal/band"
	"repro/internal/blas"
	"repro/internal/bulge"
	"repro/internal/matrix"
	"repro/internal/sbr"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/work"
)

// PhaseClass tags a phase with the resource it is bound by. The batch
// pipeline steers on it: memory-bound phases are restricted to a prefix of
// the workers (sched.AffinityMask) so the compute-bound phases of other
// in-flight solves saturate the remaining cores — the paper's core
// restriction, applied across solves instead of within one.
type PhaseClass int

const (
	// ComputeBound phases (tile reduction, back-transformation) scale with
	// cores and may use the whole pool.
	ComputeBound PhaseClass = iota
	// MemoryBound phases (bulge chasing, the tridiagonal eigensolver's
	// Level-2-heavy kernels) are bandwidth-limited; restricting them to
	// fewer cores costs little time and frees the rest.
	MemoryBound
)

func (c PhaseClass) String() string {
	if c == MemoryBound {
		return "memory-bound"
	}
	return "compute-bound"
}

// Phase is one resumable step of the two-stage eigensolver. Running a phase
// reads and extends its SolveState; phases must execute in plan order, each
// at most once. Name doubles as the trace phase the step's wall time is
// attributed to.
type Phase interface {
	// Name is the phase's trace attribution name (trace.PhaseStage1, ...).
	Name() string
	// Class reports whether the phase is compute- or memory-bound.
	Class() PhaseClass
	// Run executes the phase, advancing st. A non-nil error aborts the
	// plan; the SolveState must then be abandoned.
	Run(ctx context.Context, st *SolveState) error
}

// Plan is the ordered phase sequence of one solve.
type Plan []Phase

// BuildPlan returns the two-stage phase sequence for the given options:
// Stage1 → SBR×k → Stage2 → Tridiag, plus Backtrans when eigenvectors are
// wanted. The SBR sweeps appear only for an active multi-sweep configuration
// (Options.WideBand/BandSweeps): each narrowing of the band is its own
// resumable phase with a distinct name, so per-sweep wall-clock is
// attributable and the pipelined batch executor can interleave sweeps of
// different items.
func BuildPlan(o *Options) Plan {
	p := Plan{Stage1{}}
	for i, b2 := range o.sbrSweeps(o.stage1NB()) {
		p = append(p, SBRSweep{Index: i, B2: b2})
	}
	p = append(p, Stage2{}, Tridiag{})
	if o.Vectors {
		p = append(p, Backtrans{})
	}
	return p
}

// SolveState carries one two-stage solve across phases: the input, the
// resolved execution parameters, and every cross-phase artifact. It is
// created by NewSolveState, advanced by Phase.Run in plan order (any pause
// between phases is fine — that is the suspend/resume surface), and
// finished by Result. A SolveState is not safe for concurrent use; one
// phase runs at a time.
type SolveState struct {
	// JobFactory, when non-nil, replaces the default per-phase job creation
	// for scheduler-backed phases. The batch pipeline uses it to label each
	// phase's job per item (trace attribution) and to bias late-phase tasks
	// above the early-phase tasks of newly admitted items (sched.Job.SetBias).
	// It is only consulted when the phase runs on a scheduler; sequential
	// phases share one inline job carrying the solve's cancellation state.
	JobFactory func(ph Phase, ctx context.Context) *sched.Job

	a *matrix.Dense
	o Options

	n, il, iu, nb int

	s         *sched.Scheduler
	ownSched  bool // transient scheduler created for this solve; Close shuts it down
	workers   int
	stage2Aff uint64

	ws *work.Arena
	tc *trace.Collector

	// inline is the shared schedulerless job: created lazily on the first
	// sequential phase and reused by every later one, so cancellation state
	// stays sticky across phases exactly as in the straight-line driver.
	inline    *sched.Job
	inlineSet bool

	// Cross-phase artifacts, owned by the state (arena-backed except for
	// vals/evecs, which are caller-owned copies).
	f1       *band.Factor
	sweeps   []*sbr.Factor // SBR narrowing factors, in execution order
	chase    *bulge.Result
	vals     []float64
	evecs    *matrix.Dense
	vecsDone bool

	trivial *Result // set for n == 0: the plan is empty and Result returns this
}

// NewSolveState validates the problem and builds its phase plan. The
// returned state must be advanced by running the plan's phases in order and
// released with Close (which only matters when the state owns a transient
// scheduler — Close is a no-op otherwise, and always idempotent). For n = 0
// the plan is empty and Result is immediately valid.
func NewSolveState(ctx context.Context, a *matrix.Dense, o Options) (*SolveState, Plan, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("core: matrix must be square, got %d×%d", n, a.Cols)
	}
	if n == 0 {
		return &SolveState{trivial: &Result{}}, Plan{}, nil
	}
	il, iu, err := o.indexRange(n)
	if err != nil {
		return nil, nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, nil, err
	}
	st := &SolveState{
		a:  a,
		o:  o,
		n:  n,
		il: il,
		iu: iu,
		ws: o.Arena,
		tc: o.Collector,
		s:  o.Sched,
	}
	if st.s == nil && o.Workers > 1 {
		st.s = sched.New(o.Workers)
		st.ownSched = true
	}
	st.workers = 1
	if st.s != nil {
		st.workers = st.s.Workers()
	}
	if st.s != nil && o.Stage2Workers > 0 && o.Stage2Workers < st.workers {
		st.stage2Aff = sched.AffinityMask(o.Stage2Workers)
	}
	st.nb = o.stage1NB()
	return st, BuildPlan(&o), nil
}

// Close releases resources owned by the state: the transient scheduler, when
// NewSolveState created one (Options.Sched nil, Options.Workers > 1). It is
// idempotent and never touches a caller-supplied scheduler or arena.
func (st *SolveState) Close() {
	if st.ownSched && st.s != nil {
		st.s.Shutdown()
		st.s = nil
		st.ownSched = false
	}
}

// Result assembles the solve's outcome. It is valid only after every phase
// of the plan has run (immediately, for the empty n = 0 plan); eigenvectors
// are present only when the plan included Backtrans and it completed.
func (st *SolveState) Result() *Result {
	if st.trivial != nil {
		return st.trivial
	}
	res := &Result{Values: st.vals}
	if st.vecsDone {
		res.Vectors = st.evecs
	}
	return res
}

// phaseJob returns the task stream a phase runs on. Scheduler-backed phases
// get a fresh job per phase (or whatever JobFactory supplies); sequential
// phases — including ones forced sequential by a kill-switch while the rest
// of the solve is scheduled — share the state's single inline job, which
// carries cancellation across phases exactly like the straight-line driver
// did. s is the scheduler the phase will use (nil for sequential).
func (st *SolveState) phaseJob(ctx context.Context, ph Phase, s *sched.Scheduler) *sched.Job {
	if s != nil {
		if st.JobFactory != nil {
			return st.JobFactory(ph, ctx)
		}
		return s.NewJob(ctx)
	}
	if !st.inlineSet {
		st.inlineSet = true
		if ctx != nil {
			st.inline = sched.Inline(ctx)
		}
	}
	return st.inline // may be nil (no ctx): a nil *Job is valid everywhere
}

// Stage1 reduces the dense working copy of A to band form (the tile DAG of
// the paper's first stage). Compute-bound: ~(4/3)n³ Level-3 flops.
type Stage1 struct{}

func (Stage1) Name() string      { return trace.PhaseStage1 }
func (Stage1) Class() PhaseClass { return ComputeBound }

func (p Stage1) Run(ctx context.Context, st *SolveState) error {
	aw := st.ws.Dense(work.Stage1Dense, st.n, st.n, false)
	aw.CopyFrom(st.a)
	job := st.phaseJob(ctx, p, st.s)
	cfg := band.Config{NB: st.nb, Lookahead: st.o.LookaheadDepth, Sequenced: st.o.DisableLookahead}
	st.tc.Phase(trace.PhaseStage1, func() {
		st.f1 = band.ReduceWith(aw, cfg, job, st.ws, st.tc)
	})
	return job.Err()
}

// SBRSweep is one band→band narrowing sweep of the multi-sweep stage 1
// (successive band reduction): it consumes the narrowest band produced so
// far and reduces it to bandwidth B2, recording the orthogonal factor for
// the back-transformation. Memory-bound like the bulge chase — the kernels
// stream the band — so it runs under the stage-2 core restriction.
type SBRSweep struct {
	Index int // 0-based sweep position; names the phase and its arena keys
	B2    int // target bandwidth of this sweep
}

func (s SBRSweep) Name() string    { return trace.PhaseSBRSweep(s.Index) }
func (SBRSweep) Class() PhaseClass { return MemoryBound }

func (s SBRSweep) Run(ctx context.Context, st *SolveState) error {
	job := st.phaseJob(ctx, s, st.s)
	cfg := sbr.Config{
		B2:        s.B2,
		Lookahead: st.o.LookaheadDepth,
		Sequenced: st.o.DisableLookahead,
		WantQ:     st.o.Vectors,
		Affinity:  st.stage2Aff,
		Keys:      sbr.KeysFor(s.Index),
	}
	st.tc.Phase(s.Name(), func() {
		st.sweeps = append(st.sweeps, sbr.Reduce(st.stage2Band(), cfg, job, st.ws, st.tc))
	})
	return job.Err()
}

// stage2Band returns the band the next narrowing sweep or the bulge chase
// consumes: the narrowest factor produced so far.
func (st *SolveState) stage2Band() *matrix.SymBand {
	if k := len(st.sweeps); k > 0 {
		return st.sweeps[k-1].Band
	}
	return st.f1.Band
}

// Stage2 chases the band down to tridiagonal form (bulge chasing).
// Memory-bound: the kernels stream the band with Level-2-like intensity,
// which is why the paper restricts this stage to fewer cores.
type Stage2 struct{}

func (Stage2) Name() string      { return trace.PhaseStage2 }
func (Stage2) Class() PhaseClass { return MemoryBound }

func (p Stage2) Run(ctx context.Context, st *SolveState) error {
	// Skip reflector accumulation when no vectors are wanted — the
	// back-transformation never runs.
	if st.o.Stage2Static {
		wkr := st.o.Stage2Workers
		if wkr <= 0 {
			wkr = max(1, st.workers)
		}
		var serr error
		st.tc.Phase(trace.PhaseStage2, func() {
			st.chase, serr = bulge.ChaseStatic(ctx, st.stage2Band(), wkr, st.o.Vectors, st.ws, st.tc)
		})
		return serr
	}
	job := st.phaseJob(ctx, p, st.s)
	st.tc.Phase(trace.PhaseStage2, func() {
		st.chase = bulge.Chase(st.stage2Band(), job, st.stage2Aff, st.o.Vectors, st.ws, st.tc)
	})
	return job.Err()
}

// Tridiag solves the tridiagonal eigenproblem (eig_t) with the selected
// method. Tagged memory-bound for pipeline steering: D&C merges carry
// Level-3 work, but the stage's bisection/inverse-iteration kernels and the
// small-n regimes the pipeline targets are bandwidth-limited, and keeping it
// off the full pool leaves cores for co-scheduled stage-1 DAGs.
type Tridiag struct{}

func (Tridiag) Name() string      { return trace.PhaseEigT }
func (Tridiag) Class() PhaseClass { return MemoryBound }

func (p Tridiag) Run(ctx context.Context, st *SolveState) error {
	es := st.s
	if st.o.DisableParallelTridiag {
		es = nil
	}
	vals, evecs, err := solveTridiagonal(ctx, st.chase.T, &st.o, es, st.il, st.iu, st.ws, st.tc,
		func() *sched.Job { return st.phaseJob(ctx, p, es) })
	if err != nil {
		return err
	}
	st.vals, st.evecs = vals, evecs
	return nil
}

// Backtrans accumulates the eigenvectors of A from the eigenvectors of T:
// Z = Q₁·S₁⋯S_k·(Q₂·E) — the SBR sweep factors Sᵢ slot between Q₂ and Q₁,
// applied in reverse sweep order (the last, narrowest sweep first) because
// the reconstruction nests as A = Q₁·S₁⋯S_k·Q₂·T·Q₂ᵀ·S_kᵀ⋯S₁ᵀ·Q₁ᵀ. Fused
// single pass by default, the legacy barrier-separated sequence under the
// FuseOff kill-switch. Compute-bound: 2n³·f Level-3 flops per factor.
type Backtrans struct{}

// sweepPlans builds the diamond plans of the SBR factors in application
// order for the back-transformation (innermost factor first, i.e. reverse
// sweep order). Each plan retains its own arena keys so all of them — plus
// the chase's fixed-key plan — coexist on one arena. Pass-through sweeps
// (no reflectors) are skipped.
func (st *SolveState) sweepPlans() []*backtransform.Plan {
	var plans []*backtransform.Plan
	for i := len(st.sweeps) - 1; i >= 0; i-- {
		f := st.sweeps[i]
		if len(f.Refs) == 0 {
			continue
		}
		plans = append(plans, backtransform.NewPlanKeyed(f.Result(), st.o.Group, st.ws,
			work.Key(fmt.Sprintf("sbr.btplan.%d", i)), work.Key(fmt.Sprintf("sbr.btslab.%d", i))))
	}
	return plans
}

func (Backtrans) Name() string      { return trace.PhaseBacktrans }
func (Backtrans) Class() PhaseClass { return ComputeBound }

func (p Backtrans) Run(ctx context.Context, st *SolveState) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	// Both paths share one column-block width so the fused and legacy
	// sweeps partition E identically (which is what makes them bitwise
	// comparable).
	colBlock := st.o.ColBlock
	if colBlock <= 0 {
		colBlock = DefaultColBlock(st.evecs.Cols, st.nb, st.workers)
	}
	if st.o.FusedBacktrans != FuseOff {
		// Fused single pass: one task per column block applies every Q₂
		// diamond and then the full Q₁ sequence while the block is hot —
		// no inter-phase barrier, one sweep over E instead of two.
		job := st.phaseJob(ctx, p, st.s)
		st.tc.Phase(trace.PhaseBacktransFused, func() {
			plan := backtransform.NewPlan(st.chase, st.o.Group, st.ws)
			plan.ApplyFusedWith(st.f1, st.sweepPlans(), st.evecs, job, colBlock, st.tc)
		})
		if err := job.Err(); err != nil {
			return err
		}
		st.vecsDone = true
		return nil
	}
	job := st.phaseJob(ctx, p, st.s)
	st.tc.Phase(trace.PhaseUpdateQ2, func() {
		plan := backtransform.NewPlan(st.chase, st.o.Group, st.ws)
		plan.Apply(st.evecs, job, colBlock, st.tc)
	})
	if err := job.Err(); err != nil {
		return err
	}
	// The SBR sweep factors, barrier-separated like the legacy Q₂/Q₁ split.
	for _, sp := range st.sweepPlans() {
		job = st.phaseJob(ctx, p, st.s)
		st.tc.Phase(trace.PhaseUpdateQ2, func() {
			sp.Apply(st.evecs, job, colBlock, st.tc)
		})
		if err := job.Err(); err != nil {
			return err
		}
	}
	job = st.phaseJob(ctx, p, st.s)
	st.tc.Phase(trace.PhaseUpdateQ1, func() {
		st.f1.ApplyQ1(blas.NoTrans, st.evecs, job, colBlock, st.tc)
	})
	if err := job.Err(); err != nil {
		return err
	}
	st.vecsDone = true
	return nil
}
