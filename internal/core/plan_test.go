package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/testmat"
	"repro/internal/work"
)

// sameSlice reports exact (bitwise) float equality.
func sameSlice(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// requireSameResult fails unless got matches want bitwise.
func requireSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !sameSlice(got.Values, want.Values) {
		t.Fatalf("%s: eigenvalues differ bitwise", label)
	}
	if (got.Vectors == nil) != (want.Vectors == nil) {
		t.Fatalf("%s: vectors presence mismatch", label)
	}
	if got.Vectors != nil {
		gd := got.Vectors
		wd := want.Vectors
		if gd.Rows != wd.Rows || gd.Cols != wd.Cols {
			t.Fatalf("%s: vectors shape mismatch", label)
		}
		for c := 0; c < gd.Cols; c++ {
			for r := 0; r < gd.Rows; r++ {
				if gd.At(r, c) != wd.At(r, c) {
					t.Fatalf("%s: vectors differ bitwise at (%d,%d)", label, r, c)
				}
			}
		}
	}
}

// TestBuildPlan pins the phase sequence and the resource classes the batch
// pipeline steers on.
func TestBuildPlan(t *testing.T) {
	p := BuildPlan(&Options{Vectors: true})
	wantNames := []string{"stage1", "stage2", "eig_t", "back_trans"}
	wantClass := []PhaseClass{ComputeBound, MemoryBound, MemoryBound, ComputeBound}
	if len(p) != len(wantNames) {
		t.Fatalf("plan has %d phases, want %d", len(p), len(wantNames))
	}
	for i, ph := range p {
		if ph.Name() != wantNames[i] {
			t.Fatalf("phase %d: name %q, want %q", i, ph.Name(), wantNames[i])
		}
		if ph.Class() != wantClass[i] {
			t.Fatalf("phase %d (%s): class %v, want %v", i, ph.Name(), ph.Class(), wantClass[i])
		}
	}
	if vp := BuildPlan(&Options{}); len(vp) != 3 || vp[len(vp)-1].Name() != "eig_t" {
		t.Fatalf("values-only plan = %v phases ending in %q", len(vp), vp[len(vp)-1].Name())
	}
}

// TestSolveStateSuspendResume is the resumability gate: for every prefix
// length k, run the plan's first k phases, suspend the SolveState, run a full
// unrelated solve in between (proving the suspended state holds all its
// artifacts privately), then resume with the remaining phases. Every split
// point must produce a result bitwise identical to the straight-through
// solve, sequentially and on a scheduler.
func TestSolveStateSuspendResume(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := testmat.WithSpectrum(rng, testmat.UniformSpectrum(48, -4, 6))
	distract := testmat.WithSpectrum(rng, testmat.UniformSpectrum(24, -1, 1))

	for _, workers := range []int{1, 3} {
		o := Options{Vectors: true, NB: 8, Workers: workers}
		want, err := SyevTwoStage(context.Background(), a, o)
		if err != nil {
			t.Fatal(err)
		}

		full := BuildPlan(&o)
		for k := 0; k <= len(full); k++ {
			st, plan, err := NewSolveState(context.Background(), a, o)
			if err != nil {
				t.Fatal(err)
			}
			for _, ph := range plan[:k] {
				if err := ph.Run(context.Background(), st); err != nil {
					t.Fatalf("workers=%d k=%d phase %s: %v", workers, k, ph.Name(), err)
				}
			}
			// Suspended. An unrelated solve runs to completion while the
			// state is parked — it must not disturb the held artifacts.
			if _, err := SyevTwoStage(context.Background(), distract, o); err != nil {
				t.Fatal(err)
			}
			for _, ph := range plan[k:] {
				if err := ph.Run(context.Background(), st); err != nil {
					t.Fatalf("workers=%d k=%d resume phase %s: %v", workers, k, ph.Name(), err)
				}
			}
			requireSameResult(t, "suspend point", st.Result(), want)
			st.Close()
		}
	}
}

// TestSolveStateSharedScheduler drives two SolveStates with interleaved
// phases over one caller-owned scheduler and arena pair — the exact shape the
// pipelined batch executor creates — and checks both land bitwise on the
// straight-through results.
func TestSolveStateSharedScheduler(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a1 := testmat.WithSpectrum(rng, testmat.UniformSpectrum(40, -2, 5))
	a2 := testmat.WithSpectrum(rng, testmat.UniformSpectrum(56, -6, 3))

	s := sched.New(3)
	defer s.Shutdown()
	mk := func(a *matrix.Dense) (Options, *Result) {
		o := Options{Vectors: true, NB: 8, Sched: s}
		want, err := SyevTwoStage(context.Background(), a, o)
		if err != nil {
			t.Fatal(err)
		}
		return o, want
	}
	o1, want1 := mk(a1)
	o2, want2 := mk(a2)
	o1.Arena, o2.Arena = work.NewArena(), work.NewArena()

	st1, plan1, err := NewSolveState(context.Background(), a1, o1)
	if err != nil {
		t.Fatal(err)
	}
	defer st1.Close()
	st2, plan2, err := NewSolveState(context.Background(), a2, o2)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()

	// Interleave: st1 runs one phase ahead, like a pipelined batch.
	for i := range plan1 {
		if err := plan1[i].Run(context.Background(), st1); err != nil {
			t.Fatalf("st1 %s: %v", plan1[i].Name(), err)
		}
		if i > 0 {
			if err := plan2[i-1].Run(context.Background(), st2); err != nil {
				t.Fatalf("st2 %s: %v", plan2[i-1].Name(), err)
			}
		}
	}
	if err := plan2[len(plan2)-1].Run(context.Background(), st2); err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "interleaved st1", st1.Result(), want1)
	requireSameResult(t, "interleaved st2", st2.Result(), want2)
}

// TestSolveStateJobFactory checks the batch pipeline's labeling hook: every
// scheduler-backed phase must route its job through the factory, and the
// biased jobs must not perturb results.
func TestSolveStateJobFactory(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := testmat.WithSpectrum(rng, testmat.UniformSpectrum(48, -3, 3))

	s := sched.New(3)
	defer s.Shutdown()
	o := Options{Vectors: true, NB: 8, Sched: s}
	want, err := SyevTwoStage(context.Background(), a, o)
	if err != nil {
		t.Fatal(err)
	}

	st, plan, err := NewSolveState(context.Background(), a, o)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	seen := map[string]int{}
	st.JobFactory = func(ph Phase, ctx context.Context) *sched.Job {
		seen[ph.Name()]++
		return s.NewJobNamed(ctx, "factory "+ph.Name()).SetBias(1 << 16)
	}
	for _, ph := range plan {
		if err := ph.Run(context.Background(), st); err != nil {
			t.Fatalf("%s: %v", ph.Name(), err)
		}
	}
	requireSameResult(t, "factory-labeled", st.Result(), want)
	for _, name := range []string{"stage1", "stage2", "eig_t", "back_trans"} {
		if seen[name] == 0 {
			t.Fatalf("phase %s never consulted the job factory (seen=%v)", name, seen)
		}
	}
}

// TestSolveStateTrivial pins the n = 0 fast path: an empty plan whose Result
// is immediately valid.
func TestSolveStateTrivial(t *testing.T) {
	st, plan, err := NewSolveState(context.Background(), &matrix.Dense{Stride: 1}, Options{Vectors: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 0 {
		t.Fatalf("n=0 plan has %d phases", len(plan))
	}
	res := st.Result()
	if res == nil || len(res.Values) != 0 || res.Vectors != nil {
		t.Fatalf("n=0 result = %+v", res)
	}
	st.Close()
}
