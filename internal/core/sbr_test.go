package core

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/testmat"
)

// sbrOptions are the multi-sweep plans the driver-level gates run: one
// single-narrowing plan and one two-level cascade, both small enough that the
// full matrix set stays fast under -race.
var sbrPlans = []struct {
	label    string
	wideBand int
	sweeps   []int
}{
	{"16->4", 16, []int{4}},
	{"24->8->4", 24, []int{8, 4}},
}

// TestBuildPlanSBR pins the multi-sweep phase sequence: each narrowing sweep
// is its own resumable phase between stage 1 and stage 2, the kill-switch
// and an empty sweep list both collapse to the classic plan, and non-sense
// sweep lists (non-decreasing, wider than the band) are filtered rather than
// scheduled.
func TestBuildPlanSBR(t *testing.T) {
	p := BuildPlan(&Options{Vectors: true, WideBand: 24, BandSweeps: []int{8, 4}})
	wantNames := []string{"stage1", "sbr_sweep0", "sbr_sweep1", "stage2", "eig_t", "back_trans"}
	if len(p) != len(wantNames) {
		t.Fatalf("plan has %d phases, want %d", len(p), len(wantNames))
	}
	for i, ph := range p {
		if ph.Name() != wantNames[i] {
			t.Fatalf("phase %d: name %q, want %q", i, ph.Name(), wantNames[i])
		}
	}
	for _, tc := range []struct {
		label string
		o     Options
		want  int
	}{
		{"kill-switch", Options{Vectors: true, WideBand: 24, BandSweeps: []int{8}, DisableMultiSweep: true}, 4},
		{"no sweeps", Options{Vectors: true, WideBand: 24}, 4},
		{"non-narrowing filtered", Options{Vectors: true, NB: 8, BandSweeps: []int{8, 16}}, 4},
		{"partial filter", Options{Vectors: true, WideBand: 16, BandSweeps: []int{32, 8, 8, 4}}, 6},
	} {
		if p := BuildPlan(&tc.o); len(p) != tc.want {
			names := make([]string, len(p))
			for i, ph := range p {
				names[i] = ph.Name()
			}
			t.Errorf("%s: plan %v, want %d phases", tc.label, names, tc.want)
		}
	}
}

// TestSBRMultiSweepSolve is the correctness gate: every multi-sweep plan must
// pass the planted-spectrum, residual and orthogonality budgets through both
// back-transformation paths (fused and two-phase) and both with and without a
// scheduler.
func TestSBRMultiSweepSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	spec := testmat.GeometricSpectrum(56, 0.1, 50)
	a := testmat.WithSpectrum(rng, spec)
	want := append([]float64(nil), spec...)
	sort.Float64s(want)
	for _, plan := range sbrPlans {
		for _, workers := range []int{0, 3} {
			for _, fuse := range []FuseMode{FuseAuto, FuseOff} {
				o := Options{
					Method: MethodDC, Vectors: true, Workers: workers,
					WideBand: plan.wideBand, BandSweeps: plan.sweeps, FusedBacktrans: fuse,
				}
				res, err := SyevTwoStage(context.Background(), a, o)
				if err != nil {
					t.Fatalf("%s workers=%d fuse=%v: %v", plan.label, workers, fuse, err)
				}
				checkEigen(t, plan.label, a, res, want)
			}
		}
	}
}

// TestSBRMultiSweepDeterministic is the determinism half of the acceptance
// gate: each multi-sweep plan must produce bitwise identical values and
// vectors at every worker count — the conservative block dependences
// serialize conflicting kernels in submission order, so only the schedule,
// never the arithmetic, may change.
func TestSBRMultiSweepDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := testmat.WithSpectrum(rng, testmat.UniformSpectrum(52, -5, 5))
	for _, plan := range sbrPlans {
		var want *Result
		for _, workers := range []int{1, 2, 4, 7} {
			o := Options{
				Method: MethodDC, Vectors: true, Workers: workers,
				WideBand: plan.wideBand, BandSweeps: plan.sweeps,
			}
			res, err := SyevTwoStage(context.Background(), a, o)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", plan.label, workers, err)
			}
			if want == nil {
				want = res
				continue
			}
			requireSameResult(t, plan.label, res, want)
		}
	}
}

// TestSBRKillSwitchBitwise is the other half of the acceptance gate: with
// DisableMultiSweep set, a solve configured with a full SBR plan must be
// bitwise identical to one that never heard of multi-sweep, at every worker
// count — the kill-switch restores the exact single-sweep factorization,
// WideBand included (it only applies when sweeps run).
func TestSBRKillSwitchBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := testmat.WithSpectrum(rng, testmat.UniformSpectrum(48, -3, 9))
	for _, workers := range []int{1, 2, 4, 7} {
		base := Options{Method: MethodDC, Vectors: true, Workers: workers, NB: 8}
		want, err := SyevTwoStage(context.Background(), a, base)
		if err != nil {
			t.Fatal(err)
		}
		killed := base
		killed.WideBand = 24
		killed.BandSweeps = []int{8, 4}
		killed.DisableMultiSweep = true
		got, err := SyevTwoStage(context.Background(), a, killed)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "kill-switch", got, want)
	}
}

// TestSBRSuspendResume extends the resumability gate to the per-sweep phases:
// suspending after any prefix of a multi-sweep plan — including between two
// narrowing sweeps — and resuming must reproduce the straight-through solve
// bitwise.
func TestSBRSuspendResume(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := testmat.WithSpectrum(rng, testmat.UniformSpectrum(44, -2, 6))
	o := Options{Vectors: true, Workers: 2, WideBand: 16, BandSweeps: []int{8, 4}}
	want, err := SyevTwoStage(context.Background(), a, o)
	if err != nil {
		t.Fatal(err)
	}
	full := BuildPlan(&o)
	for k := 0; k <= len(full); k++ {
		st, plan, err := NewSolveState(context.Background(), a, o)
		if err != nil {
			t.Fatal(err)
		}
		for _, ph := range plan[:k] {
			if err := ph.Run(context.Background(), st); err != nil {
				t.Fatalf("k=%d phase %s: %v", k, ph.Name(), err)
			}
		}
		for _, ph := range plan[k:] {
			if err := ph.Run(context.Background(), st); err != nil {
				t.Fatalf("k=%d resume phase %s: %v", k, ph.Name(), err)
			}
		}
		requireSameResult(t, "sbr suspend point", st.Result(), want)
		st.Close()
	}
}
