// Package householder implements the Householder reflector machinery the
// reductions are built from: reflector generation (Larfg), single-reflector
// application (Larf), and the compact WY blocked representation
// (Larft/Larfb) used to aggregate several reflectors so they can be applied
// with Level 3 BLAS — the core trick behind both reduction stages and both
// back-transformations in the paper.
package householder

import (
	"math"

	"repro/internal/blas"
)

// Larfg generates an elementary Householder reflector H of order n such
// that
//
//	H · [alpha; x] = [beta; 0],   H = I − tau·v·vᵀ,   v = [1; vTail]
//
// On return x is overwritten with vTail (the essential part of v). It
// returns beta and tau. When the input is already in the desired form
// (x = 0), tau = 0 and H = I. This mirrors LAPACK's DLARFG including the
// rescaling loop that guards against underflow of the norm.
func Larfg(n int, alpha float64, x []float64, incX int) (beta, tau float64) {
	if n <= 0 {
		return alpha, 0
	}
	if n == 1 {
		return alpha, 0
	}
	xnorm := blas.Dnrm2(n-1, x, incX)
	if xnorm == 0 {
		return alpha, 0
	}
	beta = -math.Copysign(lapy2(alpha, xnorm), alpha)
	const safmin = 0x1p-1022 / (2 * 0x1p-52) // smallest value whose reciprocal doesn't overflow
	var scaleCount int
	for math.Abs(beta) < safmin {
		// xnorm and beta may be inaccurate; scale x and recompute.
		blas.Dscal(n-1, 1/safmin, x, incX)
		beta /= safmin
		alpha /= safmin
		scaleCount++
		if scaleCount > 20 {
			break
		}
	}
	if scaleCount > 0 {
		xnorm = blas.Dnrm2(n-1, x, incX)
		beta = -math.Copysign(lapy2(alpha, xnorm), alpha)
	}
	tau = (beta - alpha) / beta
	blas.Dscal(n-1, 1/(alpha-beta), x, incX)
	for ; scaleCount > 0; scaleCount-- {
		beta *= safmin
	}
	return beta, tau
}

// lapy2 returns sqrt(x² + y²) without unnecessary overflow.
func lapy2(x, y float64) float64 {
	return math.Hypot(x, y)
}

// Larf applies the elementary reflector H = I − tau·v·vᵀ to the m×n matrix
// C from the given side. v has length m (side Left) or n (side Right), and
// is used as stored — callers that follow the "essential part" convention
// must pass a v whose first element is 1. work must have length ≥ n (Left)
// or ≥ m (Right).
func Larf(side blas.Side, m, n int, v []float64, incV int, tau float64, c []float64, ldc int, work []float64) {
	if tau == 0 {
		return
	}
	if side == blas.Left {
		// w = Cᵀ v ; C -= tau · v · wᵀ
		blas.Dgemv(blas.Trans, m, n, 1, c, ldc, v, incV, 0, work[:n], 1)
		blas.Dger(m, n, -tau, v, incV, work[:n], 1, c, ldc)
	} else {
		// w = C v ; C -= tau · w · vᵀ
		blas.Dgemv(blas.NoTrans, m, n, 1, c, ldc, v, incV, 0, work[:m], 1)
		blas.Dger(m, n, -tau, work[:m], 1, v, incV, c, ldc)
	}
}

// Larft forms the upper triangular factor T of the compact WY block
// reflector H = I − V·T·Vᵀ from k forward, column-stored elementary
// reflectors. V is m×k; only the strictly-below-diagonal part of V is read:
// reflector j is taken to be v_j = [0…0, 1, V[j+1:m, j]] regardless of what
// is stored on and above the diagonal. T is k×k with leading dimension ldt.
func Larft(m, k int, v []float64, ldv int, tau []float64, t []float64, ldt int) {
	for i := 0; i < k; i++ {
		if tau[i] == 0 {
			for j := 0; j <= i; j++ {
				t[j+i*ldt] = 0
			}
			continue
		}
		// T[0:i, i] = -tau[i] · V[:, 0:i]ᵀ · v_i, using the implicit
		// unit-diagonal structure: v_i is zero above row i and 1 at row i.
		for j := 0; j < i; j++ {
			// Row i contribution: V[i, j] * 1.
			sum := v[i+j*ldv]
			for r := i + 1; r < m; r++ {
				sum += v[r+j*ldv] * v[r+i*ldv]
			}
			t[j+i*ldt] = -tau[i] * sum
		}
		// T[0:i, i] = T[0:i, 0:i] · T[0:i, i] (triangular update).
		if i > 0 {
			blas.Dtrmv(blas.Upper, blas.NoTrans, blas.NonUnit, i, t, ldt, t[i*ldt:], 1)
		}
		t[i+i*ldt] = tau[i]
	}
}

// Larfb applies the block reflector H = I − V·T·Vᵀ (or its transpose) to
// the m×n matrix C:
//
//	side=Left:  C := op(H)·C      (V is m×k)
//	side=Right: C := C·op(H)      (V is n×k)
//
// V is stored column-wise, forward direction, with the implicit unit lower
// trapezoidal structure (entries on and above the diagonal of its leading
// k×k block are not referenced; the diagonal is taken as 1). work must have
// length ≥ k·n (Left) or k·m (Right).
func Larfb(side blas.Side, trans blas.Transpose, m, n, k int, v []float64, ldv int, t []float64, ldt int, c []float64, ldc int, work []float64) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	if side == blas.Left {
		// W (k×n) = VᵀC = V1ᵀ·C1 + V2ᵀ·C2 with V1 the unit lower
		// triangular k×k top of V and V2 the (m−k)×k remainder.
		w := work[:k*n]
		for j := 0; j < n; j++ {
			blas.Dcopy(k, c[j*ldc:], 1, w[j*k:], 1)
		}
		blas.Dtrmm(blas.Left, blas.Lower, blas.Trans, blas.Unit, k, n, 1, v, ldv, w, k)
		if m > k {
			blas.Dgemm(blas.Trans, blas.NoTrans, k, n, m-k, 1, v[k:], ldv, c[k:], ldc, 1, w, k)
		}
		// W := op(T)·W.
		tt := blas.NoTrans
		if trans == blas.Trans {
			tt = blas.Trans
		}
		blas.Dtrmm(blas.Left, blas.Upper, tt, blas.NonUnit, k, n, 1, t, ldt, w, k)
		// C := C − V·W: C2 −= V2·W, C1 −= V1·W.
		if m > k {
			blas.Dgemm(blas.NoTrans, blas.NoTrans, m-k, n, k, -1, v[k:], ldv, w, k, 1, c[k:], ldc)
		}
		blas.Dtrmm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, k, n, 1, v, ldv, w, k)
		for j := 0; j < n; j++ {
			blas.Daxpy(k, -1, w[j*k:], 1, c[j*ldc:], 1)
		}
		return
	}
	// side == Right: C := C − (C·V)·op(T)·Vᵀ. V is n×k.
	w := work[:m*k]
	// W (m×k) = C·V = C1·V1 + C2·V2 where C1 is the first k columns of C.
	for j := 0; j < k; j++ {
		blas.Dcopy(m, c[j*ldc:], 1, w[j*m:], 1)
	}
	blas.Dtrmm(blas.Right, blas.Lower, blas.NoTrans, blas.Unit, m, k, 1, v, ldv, w, m)
	if n > k {
		blas.Dgemm(blas.NoTrans, blas.NoTrans, m, k, n-k, 1, c[k*ldc:], ldc, v[k:], ldv, 1, w, m)
	}
	// W := W·op(T).
	tt := blas.NoTrans
	if trans == blas.Trans {
		tt = blas.Trans
	}
	blas.Dtrmm(blas.Right, blas.Upper, tt, blas.NonUnit, m, k, 1, t, ldt, w, m)
	// C := C − W·Vᵀ: C2 −= W·V2ᵀ, C1 −= W·V1ᵀ.
	if n > k {
		blas.Dgemm(blas.NoTrans, blas.Trans, m, n-k, k, -1, w, m, v[k:], ldv, 1, c[k*ldc:], ldc)
	}
	blas.Dtrmm(blas.Right, blas.Lower, blas.Trans, blas.Unit, m, k, 1, v, ldv, w, m)
	for j := 0; j < k; j++ {
		blas.Daxpy(m, -1, w[j*m:], 1, c[j*ldc:], 1)
	}
}
