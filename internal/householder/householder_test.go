package householder

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// applyHNaive builds H = I - tau v vᵀ densely and applies it to C.
func applyHNaive(side blas.Side, m, n int, v []float64, tau float64, c *matrix.Dense) *matrix.Dense {
	order := m
	if side == blas.Right {
		order = n
	}
	h := matrix.Eye(order)
	for i := 0; i < order; i++ {
		for j := 0; j < order; j++ {
			h.Set(i, j, h.At(i, j)-tau*v[i]*v[j])
		}
	}
	out := matrix.NewDense(m, n)
	if side == blas.Left {
		blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, m, 1, h.Data, h.Stride, c.Data, c.Stride, 0, out.Data, out.Stride)
	} else {
		blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, n, 1, c.Data, c.Stride, h.Data, h.Stride, 0, out.Data, out.Stride)
	}
	return out
}

func TestLarfgAnnihilates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 8, 33} {
		alpha := rng.NormFloat64()
		x := make([]float64, n-1)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		orig := append([]float64{alpha}, x...)
		beta, tau := Larfg(n, alpha, x, 1)
		// Apply H = I - tau v vᵀ to the original vector; result must be
		// [beta, 0, ..., 0].
		v := append([]float64{1}, x...)
		var vdotu float64
		for i := range v {
			vdotu += v[i] * orig[i]
		}
		got := make([]float64, n)
		for i := range got {
			got[i] = orig[i] - tau*v[i]*vdotu
		}
		if math.Abs(got[0]-beta) > 1e-13*(1+math.Abs(beta)) {
			t.Fatalf("n=%d: H·u[0] = %g, want beta = %g", n, got[0], beta)
		}
		for i := 1; i < n; i++ {
			if math.Abs(got[i]) > 1e-13*(1+math.Abs(beta)) {
				t.Fatalf("n=%d: H·u[%d] = %g, want 0", n, i, got[i])
			}
		}
		// Norm preservation: |beta| == ‖u‖₂.
		nrm := blas.Dnrm2(n, orig, 1)
		if math.Abs(math.Abs(beta)-nrm) > 1e-13*(1+nrm) {
			t.Fatalf("n=%d: |beta| = %g, want %g", n, math.Abs(beta), nrm)
		}
	}
}

func TestLarfgZeroTail(t *testing.T) {
	x := []float64{0, 0, 0}
	beta, tau := Larfg(4, 2.5, x, 1)
	if tau != 0 || beta != 2.5 {
		t.Fatalf("zero tail: beta=%v tau=%v, want 2.5, 0", beta, tau)
	}
}

func TestLarfgTinyValues(t *testing.T) {
	// Exercise the rescaling loop with subnormal-scale inputs.
	alpha := 1e-300
	x := []float64{3e-300, 4e-300}
	beta, tau := Larfg(3, alpha, x, 1)
	want := math.Sqrt(1+9+16) * 1e-300
	if math.Abs(math.Abs(beta)-want)/want > 1e-10 {
		t.Fatalf("tiny Larfg: |beta| = %g, want %g", math.Abs(beta), want)
	}
	if tau < 0 || tau > 2 {
		t.Fatalf("tau = %g outside [0,2]", tau)
	}
}

func TestLarfgProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		alpha := rng.NormFloat64()
		x := make([]float64, n-1)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		u := append([]float64{alpha}, x...)
		nrm := blas.Dnrm2(n, u, 1)
		beta, tau := Larfg(n, alpha, x, 1)
		// tau in [0, 2] for a real reflector and |beta| = ‖u‖.
		return tau >= 0 && tau <= 2 && math.Abs(math.Abs(beta)-nrm) <= 1e-12*(1+nrm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLarfAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n := 7, 5
	work := make([]float64, m+n)
	for _, side := range []blas.Side{blas.Left, blas.Right} {
		vlen := m
		if side == blas.Right {
			vlen = n
		}
		v := make([]float64, vlen)
		v[0] = 1
		for i := 1; i < vlen; i++ {
			v[i] = rng.NormFloat64()
		}
		tau := 2 / blas.Ddot(vlen, v, 1, v, 1) // makes H exactly orthogonal
		c := matrix.NewDense(m, n)
		for i := range c.Data {
			c.Data[i] = rng.NormFloat64()
		}
		want := applyHNaive(side, m, n, v, tau, c)
		Larf(side, m, n, v, 1, tau, c.Data, c.Stride, work)
		if !c.Equalish(want, 1e-12) {
			t.Fatalf("Larf side=%c mismatch", side)
		}
	}
}

// buildVT generates k random forward column reflectors in an m×k V (unit
// lower trapezoidal, essential parts stored below the diagonal) plus taus.
func buildVT(rng *rand.Rand, m, k int) (v []float64, tau []float64) {
	v = make([]float64, m*k)
	tau = make([]float64, k)
	for j := 0; j < k; j++ {
		// Garbage on/above diagonal to verify it is not referenced.
		for i := 0; i <= j && i < m; i++ {
			v[i+j*m] = rng.NormFloat64() * 100
		}
		vec := []float64{1}
		for i := j + 1; i < m; i++ {
			v[i+j*m] = rng.NormFloat64()
			vec = append(vec, v[i+j*m])
		}
		tau[j] = 2 / blas.Ddot(len(vec), vec, 1, vec, 1)
	}
	return v, tau
}

// denseH builds the full m×m matrix H = H_0·H_1⋯H_{k-1} from stored V, tau.
func denseH(m, k int, v []float64, tau []float64) *matrix.Dense {
	h := matrix.Eye(m)
	work := make([]float64, m)
	for j := 0; j < k; j++ {
		vj := make([]float64, m)
		vj[j] = 1
		for i := j + 1; i < m; i++ {
			vj[i] = v[i+j*m]
		}
		// h := h · H_j  (applying from the right accumulates the product in
		// order H_0 H_1 ... H_{k-1}).
		Larf(blas.Right, m, m, vj, 1, tau[j], h.Data, h.Stride, work)
	}
	return h
}

func TestLarftLarfbLeft(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][2]int{{6, 1}, {6, 3}, {9, 4}, {12, 12}} {
		m, k := dims[0], dims[1]
		n := 5
		v, tau := buildVT(rng, m, k)
		tm := make([]float64, k*k)
		Larft(m, k, v, m, tau, tm, k)
		h := denseH(m, k, v, tau)

		c := matrix.NewDense(m, n)
		for i := range c.Data {
			c.Data[i] = rng.NormFloat64()
		}
		// want = Hᵀ·C (trans) and H·C (notrans).
		for _, tr := range []blas.Transpose{blas.NoTrans, blas.Trans} {
			want := matrix.NewDense(m, n)
			blas.Dgemm(tr, blas.NoTrans, m, n, m, 1, h.Data, h.Stride, c.Data, c.Stride, 0, want.Data, want.Stride)
			got := c.Clone()
			work := make([]float64, k*n)
			Larfb(blas.Left, tr, m, n, k, v, m, tm, k, got.Data, got.Stride, work)
			if !got.Equalish(want, 1e-11) {
				t.Fatalf("Larfb Left trans=%c m=%d k=%d mismatch", tr, m, k)
			}
		}
	}
}

func TestLarftLarfbRight(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range [][2]int{{6, 2}, {10, 5}} {
		nv, k := dims[0], dims[1]
		m := 7
		v, tau := buildVT(rng, nv, k)
		tm := make([]float64, k*k)
		Larft(nv, k, v, nv, tau, tm, k)
		h := denseH(nv, k, v, tau)

		c := matrix.NewDense(m, nv)
		for i := range c.Data {
			c.Data[i] = rng.NormFloat64()
		}
		for _, tr := range []blas.Transpose{blas.NoTrans, blas.Trans} {
			want := matrix.NewDense(m, nv)
			blas.Dgemm(blas.NoTrans, tr, m, nv, nv, 1, c.Data, c.Stride, h.Data, h.Stride, 0, want.Data, want.Stride)
			got := c.Clone()
			work := make([]float64, k*m)
			Larfb(blas.Right, tr, m, nv, k, v, nv, tm, k, got.Data, got.Stride, work)
			if !got.Equalish(want, 1e-11) {
				t.Fatalf("Larfb Right trans=%c nv=%d k=%d mismatch", tr, nv, k)
			}
		}
	}
}

func TestBlockReflectorOrthogonal(t *testing.T) {
	// H from Larft/Larfb must be orthogonal: apply H then Hᵀ and recover C.
	rng := rand.New(rand.NewSource(5))
	m, k, n := 11, 4, 6
	v, tau := buildVT(rng, m, k)
	tm := make([]float64, k*k)
	Larft(m, k, v, m, tau, tm, k)
	c := matrix.NewDense(m, n)
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	got := c.Clone()
	work := make([]float64, k*n)
	Larfb(blas.Left, blas.NoTrans, m, n, k, v, m, tm, k, got.Data, got.Stride, work)
	Larfb(blas.Left, blas.Trans, m, n, k, v, m, tm, k, got.Data, got.Stride, work)
	if !got.Equalish(c, 1e-11) {
		t.Fatal("H·Hᵀ·C != C: block reflector not orthogonal")
	}
}

func TestLarfbZeroSizes(t *testing.T) {
	// Degenerate shapes must be no-ops, not panics.
	Larfb(blas.Left, blas.NoTrans, 0, 3, 2, nil, 1, nil, 2, nil, 1, nil)
	Larfb(blas.Right, blas.Trans, 3, 0, 2, nil, 1, nil, 2, nil, 3, nil)
	Larfb(blas.Left, blas.NoTrans, 3, 3, 0, nil, 1, nil, 1, make([]float64, 9), 3, nil)
}
