package matrix

import "fmt"

// SymBand is a symmetric band matrix stored in LAPACK lower band layout:
// only the main diagonal and KD subdiagonals are kept. Element (i, j) with
// j ≤ i ≤ j+KD is stored at Data[(i-j) + j*LDA] where LDA ≥ KD+1. The upper
// triangle is implied by symmetry.
type SymBand struct {
	N    int // matrix order
	KD   int // number of subdiagonals retained
	LDA  int // leading dimension of band storage (≥ KD+1)
	Data []float64
}

// NewSymBand allocates a zeroed n×n symmetric band matrix with kd
// subdiagonals.
func NewSymBand(n, kd int) *SymBand {
	if n < 0 || kd < 0 {
		panic("matrix: negative band dimension")
	}
	if kd >= n && n > 0 {
		kd = n - 1
	}
	return &SymBand{N: n, KD: kd, LDA: kd + 1, Data: make([]float64, (kd+1)*n)}
}

// NewSymBandFrom wraps existing band storage (length ≥ (kd+1)·n) without
// copying; used by pooled workspaces.
func NewSymBandFrom(n, kd int, data []float64) *SymBand {
	if n < 0 || kd < 0 {
		panic("matrix: negative band dimension")
	}
	if kd >= n && n > 0 {
		kd = n - 1
	}
	if len(data) < (kd+1)*n {
		panic("matrix: band data slice too short")
	}
	return &SymBand{N: n, KD: kd, LDA: kd + 1, Data: data[:(kd+1)*n]}
}

// InBand reports whether (i, j) lies within the stored band (including the
// symmetric upper part).
func (b *SymBand) InBand(i, j int) bool {
	d := i - j
	if d < 0 {
		d = -d
	}
	return d <= b.KD
}

// At returns element (i, j), using symmetry for the upper triangle and zero
// outside the band.
func (b *SymBand) At(i, j int) float64 {
	if i < 0 || i >= b.N || j < 0 || j >= b.N {
		panic(fmt.Sprintf("matrix: band index (%d,%d) out of range %d", i, j, b.N))
	}
	if i < j {
		i, j = j, i
	}
	if i-j > b.KD {
		return 0
	}
	return b.Data[(i-j)+j*b.LDA]
}

// Set assigns element (i, j) (and implicitly (j, i)). Setting an element
// outside the band panics.
func (b *SymBand) Set(i, j int, v float64) {
	if i < j {
		i, j = j, i
	}
	if i-j > b.KD || i >= b.N || j < 0 {
		panic(fmt.Sprintf("matrix: band set (%d,%d) outside band kd=%d n=%d", i, j, b.KD, b.N))
	}
	b.Data[(i-j)+j*b.LDA] = v
}

// Clone returns a deep copy of b.
func (b *SymBand) Clone() *SymBand {
	out := &SymBand{N: b.N, KD: b.KD, LDA: b.LDA, Data: make([]float64, len(b.Data))}
	copy(out.Data, b.Data)
	return out
}

// ToDense expands the band matrix to a full symmetric dense matrix.
func (b *SymBand) ToDense() *Dense {
	m := NewDense(b.N, b.N)
	for j := 0; j < b.N; j++ {
		for i := j; i <= min(b.N-1, j+b.KD); i++ {
			v := b.Data[(i-j)+j*b.LDA]
			m.Data[i+j*m.Stride] = v
			m.Data[j+i*m.Stride] = v
		}
	}
	return m
}

// SymBandFromDense extracts the lower band of width kd from a symmetric
// dense matrix (only the lower triangle of d is read).
func SymBandFromDense(d *Dense, kd int) *SymBand {
	if d.Rows != d.Cols {
		panic("matrix: SymBandFromDense requires a square matrix")
	}
	b := NewSymBand(d.Rows, kd)
	for j := 0; j < b.N; j++ {
		for i := j; i <= min(b.N-1, j+b.KD); i++ {
			b.Data[(i-j)+j*b.LDA] = d.Data[i+j*d.Stride]
		}
	}
	return b
}

// BandwidthOf returns the smallest kd such that all elements of symmetric
// dense matrix d with |i−j| > kd have magnitude at most tol.
func BandwidthOf(d *Dense, tol float64) int {
	kd := 0
	for j := 0; j < d.Cols; j++ {
		for i := j + 1; i < d.Rows; i++ {
			v := d.Data[i+j*d.Stride]
			if v > tol || v < -tol {
				if i-j > kd {
					kd = i - j
				}
			}
		}
	}
	return kd
}

// Tridiagonal holds the diagonal and subdiagonal of a symmetric tridiagonal
// matrix: D has length n, E has length n−1 (E[i] couples rows i and i+1).
type Tridiagonal struct {
	D []float64
	E []float64
}

// NewTridiagonal allocates a zero tridiagonal matrix of order n.
func NewTridiagonal(n int) *Tridiagonal {
	e := 0
	if n > 1 {
		e = n - 1
	}
	return &Tridiagonal{D: make([]float64, n), E: make([]float64, e)}
}

// N returns the matrix order.
func (t *Tridiagonal) N() int { return len(t.D) }

// Clone returns a deep copy.
func (t *Tridiagonal) Clone() *Tridiagonal {
	out := &Tridiagonal{D: append([]float64(nil), t.D...), E: append([]float64(nil), t.E...)}
	return out
}

// ToDense expands to a full dense symmetric tridiagonal matrix.
func (t *Tridiagonal) ToDense() *Dense {
	n := t.N()
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, t.D[i])
		if i+1 < n {
			m.Set(i+1, i, t.E[i])
			m.Set(i, i+1, t.E[i])
		}
	}
	return m
}

// TridiagonalFromBand extracts the tridiagonal part of a band matrix with
// KD ≥ 1 (or KD = 0, in which case E is zero).
func TridiagonalFromBand(b *SymBand) *Tridiagonal {
	t := NewTridiagonal(b.N)
	for i := 0; i < b.N; i++ {
		t.D[i] = b.At(i, i)
		if i+1 < b.N {
			t.E[i] = b.At(i+1, i)
		}
	}
	return t
}
