// Package matrix provides the storage containers the eigensolver operates
// on: column-major dense matrices, packed symmetric band matrices, and the
// tile layout used by the DAG-scheduled stage-1 reduction together with a
// Data Translation Layer (DTL) that converts between the standard LAPACK
// layout and tiles, mirroring the layout machinery of the PLASMA runtime
// the paper builds on.
package matrix

import (
	"fmt"
	"math"
)

// Dense is a column-major matrix view: element (i, j) is Data[i+j*Stride].
// A Dense may alias another matrix's storage (see View).
type Dense struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// NewDense allocates a zeroed r×c column-major matrix with Stride == r.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("matrix: negative dimension")
	}
	return &Dense{Rows: r, Cols: c, Stride: max(1, r), Data: make([]float64, r*c)}
}

// NewDenseFrom wraps existing column-major data without copying.
func NewDenseFrom(r, c, stride int, data []float64) *Dense {
	if stride < max(1, r) {
		panic("matrix: stride smaller than row count")
	}
	if c > 0 && len(data) < (c-1)*stride+r {
		panic("matrix: data slice too short")
	}
	return &Dense{Rows: r, Cols: c, Stride: stride, Data: data}
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i+i*m.Stride] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.Data[i+j*m.Stride]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.Data[i+j*m.Stride] = v
}

func (m *Dense) boundsCheck(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// View returns a view of the r×c submatrix whose top-left corner is (i, j).
// The view shares storage with m.
func (m *Dense) View(i, j, r, c int) *Dense {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic("matrix: view out of range")
	}
	return &Dense{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[i+j*m.Stride:]}
}

// Clone returns a compact deep copy of m (Stride == Rows).
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		copy(out.Data[j*out.Stride:j*out.Stride+m.Rows], m.Data[j*m.Stride:j*m.Stride+m.Rows])
	}
	return out
}

// CopyFrom copies the contents of src (same shape) into m.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("matrix: shape mismatch in CopyFrom")
	}
	for j := 0; j < m.Cols; j++ {
		copy(m.Data[j*m.Stride:j*m.Stride+m.Rows], src.Data[j*src.Stride:j*src.Stride+src.Rows])
	}
}

// Zero sets every element of m to zero.
func (m *Dense) Zero() {
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for i := range col {
			col[i] = 0
		}
	}
}

// Transpose returns a newly allocated mᵀ.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			out.Data[j+i*out.Stride] = m.Data[i+j*m.Stride]
		}
	}
	return out
}

// Symmetrize mirrors the lower triangle into the upper triangle in place,
// making m exactly symmetric. m must be square.
func (m *Dense) Symmetrize() {
	if m.Rows != m.Cols {
		panic("matrix: Symmetrize requires a square matrix")
	}
	for j := 0; j < m.Cols; j++ {
		for i := j + 1; i < m.Rows; i++ {
			m.Data[j+i*m.Stride] = m.Data[i+j*m.Stride]
		}
	}
}

// FrobeniusNorm returns ‖m‖_F.
func (m *Dense) FrobeniusNorm() float64 {
	scale, ssq := 0.0, 1.0
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for _, v := range col {
			if v == 0 {
				continue
			}
			av := math.Abs(v)
			if scale < av {
				r := scale / av
				ssq = 1 + ssq*r*r
				scale = av
			} else {
				r := av / scale
				ssq += r * r
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbs returns max |m_ij|.
func (m *Dense) MaxAbs() float64 {
	var best float64
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for _, v := range col {
			if av := math.Abs(v); av > best {
				best = av
			}
		}
	}
	return best
}

// Equalish reports whether all elements of m and b differ by at most tol.
func (m *Dense) Equalish(b *Dense, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			if math.Abs(m.Data[i+j*m.Stride]-b.Data[i+j*b.Stride]) > tol {
				return false
			}
		}
	}
	return true
}

// IsSymmetric reports whether |m_ij − m_ji| ≤ tol for all i, j.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for j := 0; j < m.Cols; j++ {
		for i := j + 1; i < m.Rows; i++ {
			if math.Abs(m.Data[i+j*m.Stride]-m.Data[j+i*m.Stride]) > tol {
				return false
			}
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Dense) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%10.4f ", m.Data[i+j*m.Stride])
		}
		s += "\n"
	}
	return s
}
