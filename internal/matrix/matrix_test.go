package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestDenseAtSetView(t *testing.T) {
	m := NewDense(4, 5)
	m.Set(2, 3, 7)
	if m.At(2, 3) != 7 {
		t.Fatal("At/Set mismatch")
	}
	v := m.View(1, 2, 3, 3)
	if v.At(1, 1) != 7 {
		t.Fatalf("view At = %v, want 7", v.At(1, 1))
	}
	v.Set(0, 0, -1)
	if m.At(1, 2) != -1 {
		t.Fatal("view does not alias parent")
	}
}

func TestDenseCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randDense(rng, 5, 4)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone shares storage")
	}
	if c.Stride != c.Rows {
		t.Fatal("Clone is not compact")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randDense(rng, 6, 3)
	tt := m.Transpose().Transpose()
	if !m.Equalish(tt, 0) {
		t.Fatal("transpose twice != identity")
	}
}

func TestSymmetrize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randDense(rng, 5, 5)
	m.Symmetrize()
	if !m.IsSymmetric(0) {
		t.Fatal("Symmetrize did not produce a symmetric matrix")
	}
}

func TestFrobeniusNormScaled(t *testing.T) {
	m := NewDense(2, 1)
	m.Set(0, 0, 3e200)
	m.Set(1, 0, 4e200)
	if got := m.FrobeniusNorm(); math.Abs(got-5e200)/5e200 > 1e-12 {
		t.Fatalf("FrobeniusNorm = %g, want 5e200", got)
	}
}

func TestEye(t *testing.T) {
	e := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Fatalf("Eye(3)[%d,%d] = %v", i, j, e.At(i, j))
			}
		}
	}
}

func TestSymBandRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct{ n, kd int }{{1, 0}, {5, 0}, {5, 1}, {8, 3}, {9, 8}, {6, 10}} {
		d := randDense(rng, tc.n, tc.n)
		d.Symmetrize()
		// Zero outside the band so extraction is lossless.
		kd := tc.kd
		if kd >= tc.n {
			kd = tc.n - 1
		}
		for j := 0; j < tc.n; j++ {
			for i := 0; i < tc.n; i++ {
				if abs(i-j) > kd {
					d.Set(i, j, 0)
				}
			}
		}
		b := SymBandFromDense(d, tc.kd)
		back := b.ToDense()
		if !d.Equalish(back, 0) {
			t.Fatalf("band round trip failed for n=%d kd=%d", tc.n, tc.kd)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestSymBandAtSymmetry(t *testing.T) {
	b := NewSymBand(6, 2)
	b.Set(3, 1, 5)
	if b.At(1, 3) != 5 || b.At(3, 1) != 5 {
		t.Fatal("SymBand.At symmetry broken")
	}
	if b.At(0, 5) != 0 {
		t.Fatal("outside band should read 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Set outside band should panic")
		}
	}()
	b.Set(5, 0, 1)
}

func TestBandwidthOf(t *testing.T) {
	d := NewDense(6, 6)
	d.Set(4, 1, 1e-3)
	d.Set(1, 4, 1e-3)
	if got := BandwidthOf(d, 0); got != 3 {
		t.Fatalf("BandwidthOf = %d, want 3", got)
	}
	if got := BandwidthOf(d, 1e-2); got != 0 {
		t.Fatalf("BandwidthOf with tol = %d, want 0", got)
	}
}

func TestTridiagonalRoundTrip(t *testing.T) {
	tr := NewTridiagonal(5)
	for i := range tr.D {
		tr.D[i] = float64(i + 1)
	}
	for i := range tr.E {
		tr.E[i] = -float64(i + 1)
	}
	d := tr.ToDense()
	if !d.IsSymmetric(0) {
		t.Fatal("tridiagonal ToDense not symmetric")
	}
	b := SymBandFromDense(d, 1)
	tr2 := TridiagonalFromBand(b)
	for i := range tr.D {
		if tr.D[i] != tr2.D[i] {
			t.Fatal("tridiagonal D round trip failed")
		}
	}
	for i := range tr.E {
		if tr.E[i] != tr2.E[i] {
			t.Fatal("tridiagonal E round trip failed")
		}
	}
}

func TestDTLRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		nb := 1 + rng.Intn(12)
		d := randDense(rng, n, n)
		tm := NewTileMatrix(n, nb)
		tm.FromLapack(d)
		back := tm.ToLapack()
		return d.Equalish(back, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTileMatrixAtSetMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, nb := 13, 4 // non-divisible: exercises edge tiles
	d := randDense(rng, n, n)
	tm := NewTileMatrix(n, nb)
	tm.FromLapack(d)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if tm.At(i, j) != d.At(i, j) {
				t.Fatalf("tile At(%d,%d) mismatch", i, j)
			}
		}
	}
	tm.Set(12, 12, 42)
	if tm.At(12, 12) != 42 {
		t.Fatal("tile Set failed on edge tile")
	}
}

func TestTileEdgeSizes(t *testing.T) {
	tm := NewTileMatrix(10, 4)
	if tm.NT != 3 {
		t.Fatalf("NT = %d, want 3", tm.NT)
	}
	if tm.TileRows(0) != 4 || tm.TileRows(2) != 2 {
		t.Fatalf("tile rows: %d, %d", tm.TileRows(0), tm.TileRows(2))
	}
	if len(tm.Tile(2, 2)) != 4 {
		t.Fatalf("corner tile len = %d, want 4", len(tm.Tile(2, 2)))
	}
}

func TestSymmetrizeFromLower(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, nb := 11, 4
	d := randDense(rng, n, n)
	tm := NewTileMatrix(n, nb)
	tm.FromLapack(d)
	tm.SymmetrizeFromLower()
	back := tm.ToLapack()
	if !back.IsSymmetric(0) {
		t.Fatal("SymmetrizeFromLower did not produce symmetric matrix")
	}
	// Lower triangle must be unchanged.
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if back.At(i, j) != d.At(i, j) {
				t.Fatalf("lower triangle changed at (%d,%d)", i, j)
			}
		}
	}
}

func TestTileIDUnique(t *testing.T) {
	tm := NewTileMatrix(12, 4)
	seen := map[int]bool{}
	for i := 0; i < tm.NT; i++ {
		for j := 0; j < tm.NT; j++ {
			id := tm.TileID(i, j)
			if seen[id] {
				t.Fatalf("duplicate tile ID %d", id)
			}
			seen[id] = true
		}
	}
}

func TestDenseAuxiliaries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randDense(rng, 4, 3)
	// CopyFrom + Zero.
	c := NewDense(4, 3)
	c.CopyFrom(m)
	if !c.Equalish(m, 0) {
		t.Fatal("CopyFrom mismatch")
	}
	c.Zero()
	if c.MaxAbs() != 0 {
		t.Fatal("Zero left nonzero entries")
	}
	// MaxAbs.
	m.Set(2, 1, -99)
	if m.MaxAbs() != 99 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	// String renders each element.
	if s := m.String(); len(s) == 0 {
		t.Fatal("String empty")
	}
	// NewDenseFrom wraps without copying.
	data := make([]float64, 12)
	w := NewDenseFrom(4, 3, 4, data)
	w.Set(1, 1, 5)
	if data[1+4] != 5 {
		t.Fatal("NewDenseFrom does not alias")
	}
	// Shape mismatch panics.
	mustPanic(t, func() { c.CopyFrom(NewDense(2, 2)) })
	mustPanic(t, func() { NewDenseFrom(4, 3, 2, data) })
	mustPanic(t, func() { NewDenseFrom(4, 3, 4, data[:5]) })
	mustPanic(t, func() { NewDense(-1, 2) })
	mustPanic(t, func() { m.View(3, 0, 4, 1) })
	mustPanic(t, func() { NewDense(2, 3).Symmetrize() })
	mustPanic(t, func() { m.At(-1, 0) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestBandAuxiliaries(t *testing.T) {
	b := NewSymBand(6, 2)
	if !b.InBand(3, 1) || b.InBand(4, 1) {
		t.Fatal("InBand wrong")
	}
	b.Set(2, 1, 7)
	c := b.Clone()
	c.Set(2, 1, 8)
	if b.At(2, 1) != 7 {
		t.Fatal("SymBand.Clone shares storage")
	}
	tr := NewTridiagonal(4)
	tr.D[0] = 3
	tc := tr.Clone()
	tc.D[0] = 4
	if tr.D[0] != 3 {
		t.Fatal("Tridiagonal.Clone shares storage")
	}
	// kd clamping for kd ≥ n.
	big := NewSymBand(3, 9)
	if big.KD != 2 {
		t.Fatalf("KD not clamped: %d", big.KD)
	}
	mustPanic(t, func() { NewSymBand(-1, 0) })
	mustPanic(t, func() { b.At(9, 0) })
}
