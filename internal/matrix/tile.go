package matrix

import "fmt"

// TileMatrix stores an n×n matrix as a grid of NB×NB tiles, each tile
// contiguous in memory in column-major order. This is the PLASMA "tile
// layout": it removes the strided accesses (and the cache/TLB misses they
// cause) that the standard LAPACK layout suffers from when a kernel works on
// a square block. Edge tiles (last row/column of the grid) may be smaller
// than NB when N is not a multiple of NB.
type TileMatrix struct {
	N  int // matrix order
	NB int // tile size
	NT int // number of tile rows/cols = ceil(N/NB)
	// tiles[i + j*NT] holds tile (i, j) as a column-major TileRows(i) ×
	// TileCols(j) block.
	tiles [][]float64
}

// NewTileMatrix allocates a zeroed n×n tile matrix with tile size nb.
func NewTileMatrix(n, nb int) *TileMatrix {
	if n < 0 || nb <= 0 {
		panic("matrix: bad tile matrix dimensions")
	}
	nt := (n + nb - 1) / nb
	t := &TileMatrix{N: n, NB: nb, NT: nt, tiles: make([][]float64, nt*nt)}
	for j := 0; j < nt; j++ {
		for i := 0; i < nt; i++ {
			t.tiles[i+j*nt] = make([]float64, t.TileRows(i)*t.TileCols(j))
		}
	}
	return t
}

// WorkspaceBytes reports the retained tile storage (for workspace-budget
// accounting; see work.WorkspaceSized).
func (t *TileMatrix) WorkspaceBytes() int64 {
	var b int64
	for _, tile := range t.tiles {
		b += int64(cap(tile)) * 8
	}
	return b
}

// TileRows returns the row count of tiles in tile-row i.
func (t *TileMatrix) TileRows(i int) int {
	if i < 0 || i >= t.NT {
		panic(fmt.Sprintf("matrix: tile row %d out of range %d", i, t.NT))
	}
	if i == t.NT-1 {
		return t.N - i*t.NB
	}
	return t.NB
}

// TileCols returns the column count of tiles in tile-column j.
func (t *TileMatrix) TileCols(j int) int { return t.TileRows(j) }

// Tile returns the contiguous storage of tile (i, j); its leading dimension
// is TileRows(i).
func (t *TileMatrix) Tile(i, j int) []float64 {
	if i < 0 || i >= t.NT || j < 0 || j >= t.NT {
		panic(fmt.Sprintf("matrix: tile (%d,%d) out of range %d", i, j, t.NT))
	}
	return t.tiles[i+j*t.NT]
}

// At returns matrix element (i, j) by locating its tile.
func (t *TileMatrix) At(i, j int) float64 {
	ti, tj := i/t.NB, j/t.NB
	return t.Tile(ti, tj)[(i-ti*t.NB)+(j-tj*t.NB)*t.TileRows(ti)]
}

// Set assigns matrix element (i, j).
func (t *TileMatrix) Set(i, j int, v float64) {
	ti, tj := i/t.NB, j/t.NB
	t.Tile(ti, tj)[(i-ti*t.NB)+(j-tj*t.NB)*t.TileRows(ti)] = v
}

// FromLapack fills the tile matrix from a column-major dense matrix. This is
// one direction of the Data Translation Layer (DTL).
func (t *TileMatrix) FromLapack(d *Dense) {
	if d.Rows != t.N || d.Cols != t.N {
		panic("matrix: DTL shape mismatch")
	}
	for tj := 0; tj < t.NT; tj++ {
		jc := t.TileCols(tj)
		for ti := 0; ti < t.NT; ti++ {
			ir := t.TileRows(ti)
			tile := t.Tile(ti, tj)
			for j := 0; j < jc; j++ {
				src := d.Data[(ti*t.NB)+(tj*t.NB+j)*d.Stride:]
				copy(tile[j*ir:j*ir+ir], src[:ir])
			}
		}
	}
}

// ToLapack converts the tile matrix back into a column-major dense matrix,
// the other direction of the DTL.
func (t *TileMatrix) ToLapack() *Dense {
	d := NewDense(t.N, t.N)
	for tj := 0; tj < t.NT; tj++ {
		jc := t.TileCols(tj)
		for ti := 0; ti < t.NT; ti++ {
			ir := t.TileRows(ti)
			tile := t.Tile(ti, tj)
			for j := 0; j < jc; j++ {
				dst := d.Data[(ti*t.NB)+(tj*t.NB+j)*d.Stride:]
				copy(dst[:ir], tile[j*ir:j*ir+ir])
			}
		}
	}
	return d
}

// TileID returns a stable integer identifier for tile (i, j), used as the
// resource key for dependence tracking in the task scheduler.
func (t *TileMatrix) TileID(i, j int) int { return i + j*t.NT }

// SymmetrizeFromLower mirrors tile (i,j), i>j, into (j,i) and the lower
// triangle of each diagonal tile into its upper triangle, producing an
// exactly symmetric tile matrix from lower-triangle data.
func (t *TileMatrix) SymmetrizeFromLower() {
	for tj := 0; tj < t.NT; tj++ {
		// Diagonal tile.
		d := t.Tile(tj, tj)
		nd := t.TileRows(tj)
		for j := 0; j < nd; j++ {
			for i := j + 1; i < nd; i++ {
				d[j+i*nd] = d[i+j*nd]
			}
		}
		for ti := tj + 1; ti < t.NT; ti++ {
			lo := t.Tile(ti, tj)
			up := t.Tile(tj, ti)
			r, c := t.TileRows(ti), t.TileCols(tj)
			for j := 0; j < c; j++ {
				for i := 0; i < r; i++ {
					up[j+i*c] = lo[i+j*r]
				}
			}
		}
	}
}
