package model

import (
	"time"

	"repro/internal/blas"
)

// MeasureAlpha benchmarks the blocked Dgemm kernel at a cache-friendly size
// and returns its rate in flop/s — the machine's α. The measurement is a
// handful of milliseconds.
func MeasureAlpha() float64 {
	const n = 192
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%7) * 0.25
		b[i] = float64(i%5) * 0.5
	}
	// Warm up.
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
	iters := 0
	start := time.Now()
	for time.Since(start) < 50*time.Millisecond {
		blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
		iters++
	}
	sec := time.Since(start).Seconds()
	return float64(iters) * 2 * float64(n) * float64(n) * float64(n) / sec
}

// betaSize is the matrix order used for the memory-bound kernel
// measurements: 4200² doubles = 141 MB, beyond even the 105 MiB L3 of large
// server parts, so the measured rate is genuinely the DRAM-streaming rate β
// that the one-stage reduction is stuck at for big matrices. (Measuring at
// an in-L3 size on a big-cache host silently reports a compute-like rate
// and inverts every model prediction — found the hard way; see
// EXPERIMENTS.md.)
const betaSize = 4200

// MeasureBeta benchmarks Dsymv on a matrix far larger than any cache level
// and returns its rate in flop/s — the machine's β.
func MeasureBeta() float64 {
	n := betaSize
	a := make([]float64, n*n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range a {
		a[i] = float64(i%9) * 0.125
	}
	for i := range x {
		x[i] = 1
	}
	iters := 0
	start := time.Now()
	for time.Since(start) < 100*time.Millisecond {
		blas.Dsymv(blas.Lower, n, 1, a, n, x, 1, 0, y, 1)
		iters++
	}
	sec := time.Since(start).Seconds()
	return float64(iters) * 2 * float64(n) * float64(n) / sec
}

// MeasureGemv benchmarks out-of-cache Dgemv (the BRD/HRD kernel of the
// paper's Table 2) at the same out-of-cache size as MeasureBeta.
func MeasureGemv() float64 {
	n := betaSize
	a := make([]float64, n*n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range a {
		a[i] = float64(i%9) * 0.125
	}
	for i := range x {
		x[i] = 1
	}
	iters := 0
	start := time.Now()
	for time.Since(start) < 100*time.Millisecond {
		blas.Dgemv(blas.NoTrans, n, n, 1, a, n, x, 1, 0, y, 1)
		iters++
	}
	sec := time.Since(start).Seconds()
	return float64(iters) * 2 * float64(n) * float64(n) / sec
}

// MeasureParams measures α and β on this machine and returns a Params with
// the given core count and a γ fitted so that the model's optimal n_b
// matches the empirically reasonable range for this substrate.
func MeasureParams(p int) Params {
	alpha := MeasureAlpha()
	beta := MeasureBeta()
	// γ is the latency coefficient of Eq. 10: the extra time charged per
	// band element when the working set misses cache, amortized over the
	// n_b-element reuse window (so γ/n_b is seconds per element). One
	// ~100 ns line miss per 8-element line gives the order of magnitude;
	// cmd/eigtune refines the resulting n_b* empirically.
	const gamma = 100e-9 * 8
	return Params{Alpha: alpha, Beta: beta, P: p, Gamma: gamma}
}
