// Package model implements the paper's execution-time and complexity models
// (§4, Eqs. 4–6) and the bulge-chasing tuning model (§7.1, Eqs. 9–10),
// together with micro-benchmarks that measure this machine's parameters
// (α = compute-bound xGEMM rate, β = memory-bound xGEMV/xSYMV rate) so the
// analytic figures can be regenerated for the hardware at hand, as Table 3
// does for the paper's two test machines.
package model

import "math"

// Params are the machine/algorithm parameters of Eqs. 4–6.
type Params struct {
	// Alpha is the compute-bound execution rate (xGEMM), flop/s per core.
	Alpha float64
	// Beta is the memory-bound execution rate (xGEMV/xSYMV), flop/s.
	// The one-stage reduction runs at this rate no matter how many cores
	// participate — that is the point of the paper's Eq. 4.
	Beta float64
	// P is the number of cores.
	P int
	// PPrime is the parallelism available in the bulge-chasing stage,
	// bounded by min(D, P); 0 means use that bound.
	PPrime int
	// Gamma is the memory-latency coefficient of Eq. 10 (flops-equivalent
	// per fetched element when the working set misses cache).
	Gamma float64
}

func (p Params) pPrime(d int) float64 {
	pp := p.PPrime
	if pp <= 0 {
		pp = min(d, p.P)
	}
	if pp < 1 {
		pp = 1
	}
	return float64(pp)
}

// TimeOneStage evaluates Eq. 4: the one-stage eigensolver time for matrix
// size n when a fraction f (0 < f ≤ 1) of the eigenvectors is wanted. The
// reduction term runs at the memory-bound rate β; the back-transformation
// is compute-bound.
func TimeOneStage(n float64, f float64, p Params) float64 {
	fn := n
	return 4.0/3.0*fn*fn*fn/p.Beta + 2*fn*fn*fn*f/(p.Alpha*float64(p.P))
}

// TimeTwoStage evaluates Eq. 5: the two-stage time with band width d. The
// first stage and the (doubled) back-transformation are compute-bound; the
// bulge chasing is the 6·D·n² term with limited parallelism p'.
func TimeTwoStage(n float64, d int, f float64, p Params) float64 {
	fn := n
	ap := p.Alpha * float64(p.P)
	return 4.0/3.0*fn*fn*fn/ap + 6*float64(d)*fn*fn/(p.Alpha*p.pPrime(d)) + 4*fn*fn*fn*f/ap
}

// Crossover evaluates Eq. 6: the matrix size at which the two approaches
// break even (two-stage is faster for larger n). It returns +Inf when the
// two-stage approach never wins (denominator ≤ 0, e.g. f ≈ 1 with αp ≈ β).
// Derived with p' = p, like the paper.
func Crossover(d int, f float64, p Params) float64 {
	den := 2*p.Alpha*float64(p.P) - 3*f*p.Beta - 2*p.Beta
	if den <= 0 {
		return math.Inf(1)
	}
	return 9 * p.Beta * float64(d) / den
}

// AsymptoticSpeedup evaluates lim_{n→∞} t₁ₛ/t₂ₛ = (αp/β + 3/2)/(1 + 3f)
// (§4): with plentiful cores the one-stage approach is slower by the full
// compute-to-memory rate ratio.
func AsymptoticSpeedup(f float64, p Params) float64 {
	return (p.Alpha*float64(p.P)/p.Beta + 1.5) / (1 + 3*f)
}

// BulgeComputeTime evaluates Eq. 9: t_x = n²·n_b/α.
func BulgeComputeTime(n float64, nb int, p Params) float64 {
	return n * n * float64(nb) / p.Alpha
}

// BulgeCommTime evaluates Eq. 10: t_c = n²·(n_b/β + γ/n_b).
func BulgeCommTime(n float64, nb int, p Params) float64 {
	return n * n * (float64(nb)/p.Beta + p.Gamma/float64(nb))
}

// OptimalNB minimizes t_x + t_c over n_b:
// d/dn_b [n_b/α + n_b/β + γ/n_b] = 0  ⇒  n_b* = sqrt(γ·αβ/(α+β)).
func OptimalNB(p Params) float64 {
	return math.Sqrt(p.Gamma * p.Alpha * p.Beta / (p.Alpha + p.Beta))
}

// Table1Row is one row of the paper's Table 1: leading-order flop counts of
// the three standard methods (coefficients of n³, except EigT for MRRR
// which is O(n²)).
type Table1Row struct {
	Routine string
	Method  string
	TRD     float64 // reduction to tridiagonal
	GenQ    float64 // explicit Q generation (QR method only)
	EigT    float64 // tridiagonal eigensolver (upper bound coefficient)
	UpdateZ float64 // back-transformation
}

// Table1 returns the complexity table for the one-stage methods
// (Q₂ ≡ I case of the paper's Table 1).
func Table1() []Table1Row {
	return []Table1Row{
		{Routine: "EVD", Method: "D&C", TRD: 4.0 / 3, GenQ: 0, EigT: 8.0 / 3, UpdateZ: 4}, // EigT is 4/3..8/3, deflation-dependent
		{Routine: "EVR", Method: "MRRR", TRD: 4.0 / 3, GenQ: 0, EigT: 0, UpdateZ: 4},      // EigT O(n²)
		{Routine: "EV", Method: "QR", TRD: 4.0 / 3, GenQ: 8.0 / 3, EigT: 6, UpdateZ: 0},
	}
}

// TwoStageFlops returns the leading-order flop model of the two-stage
// pipeline exactly as §4.1's Eq. 7 writes it:
// 4/3·n³ (stage 1) + O(n²) (stage 2) + 2n³ + 2n³ (the Q₂ and Q₁
// back-transformations of the eigenvectors, scaled by the fraction f).
// The tridiagonal eigensolver is not part of Eq. 7's accounting.
func TwoStageFlops(n int, f float64) (stage1, stage2, updQ2, updQ1 float64) {
	fn := float64(n)
	stage1 = 4.0 / 3 * fn * fn * fn
	stage2 = fn * fn // ×(1 + ib/nb) low-order
	updQ2 = 2 * fn * fn * fn * f
	updQ1 = 2 * fn * fn * fn * f
	return
}

// SVDFlops returns the corresponding model for the two-stage SVD of the
// authors' earlier work (§4.1, Eq. 8): 8/3·n³ + O(n²) + 4n³ + 4n³ — every
// cubic term doubles because the SVD lacks symmetry.
func SVDFlops(n int) (stage1, stage2, svdB, update float64) {
	fn := float64(n)
	stage1 = 8.0 / 3 * fn * fn * fn
	stage2 = fn * fn
	svdB = 4 * fn * fn * fn
	update = 4 * fn * fn * fn
	return
}

// AmdahlFractions compares the two pipelines of §4.1: the share of total
// work that is the memory-bound O(n²) bulge chasing (the "Amdahl fraction")
// for the symmetric eigenproblem (Eq. 7) versus the SVD (Eq. 8), with the
// bulge term scaled by stage2Factor (≈ 6·n_b in time units relative to the
// compute-bound terms). The eigenproblem's parallelizable workload is about
// half the SVD's, so its Amdahl fraction is roughly twice as large — the
// paper's argument for why the EVD is the more scheduling-sensitive of the
// two problems.
func AmdahlFractions(n int, stage2Factor float64) (evd, svd float64) {
	s1, s2, u2, u1 := TwoStageFlops(n, 1)
	evd = s2 * stage2Factor / (s1 + s2*stage2Factor + u2 + u1)
	g1, g2, sb, gu := SVDFlops(n)
	svd = g2 * stage2Factor / (g1 + g2*stage2Factor + sb + gu)
	return
}
