package model

import (
	"math"
	"testing"
	"testing/quick"
)

// paper's Table 3, AMD Magny-Cours column (β in the paper is listed in MB/s
// but used as a flop rate; values here are only exercised relationally).
var amd = Params{Alpha: 10e9, Beta: 40e6 * 8, P: 12, Gamma: 100}

func TestCrossoverMatchesNumericRoot(t *testing.T) {
	// The closed form (Eq. 6, derived with p' = p) must agree with a
	// numeric root of t1(n) − t2(n). Use a modest compute advantage so the
	// crossover lands at an interesting size.
	p := Params{Alpha: 5e9, Beta: 3e9, P: 2}
	p.PPrime = p.P
	d := 128
	f := 0.5
	nc := Crossover(d, f, p)
	if math.IsInf(nc, 1) {
		t.Fatal("unexpected no-crossover")
	}
	diff := func(n float64) float64 {
		return TimeOneStage(n, f, p) - TimeTwoStage(n, d, f, p)
	}
	// t1 − t2 changes sign at the crossover and is ~zero there.
	if !(diff(nc*0.99) < 0 && diff(nc*1.01) > 0) {
		t.Fatalf("closed-form crossover %.1f is not a sign change of t1−t2: %g %g",
			nc, diff(nc*0.99), diff(nc*1.01))
	}
}

func TestCrossoverNoWin(t *testing.T) {
	// With αp ≈ β (no compute advantage) the two-stage approach never wins
	// at f = 1.
	p := Params{Alpha: 1e9, Beta: 1e9, P: 1}
	if !math.IsInf(Crossover(64, 1.0, p), 1) {
		t.Fatal("expected +Inf crossover when compute rate equals memory rate")
	}
}

func TestAsymptoticSpeedupIsLimit(t *testing.T) {
	p := amd
	p.PPrime = p.P
	f := 0.3
	want := AsymptoticSpeedup(f, p)
	// Ratio approaches the limit from below as the O(n²) bulge term fades.
	gotSmall := TimeOneStage(1e7, f, p) / TimeTwoStage(1e7, 64, f, p)
	gotBig := TimeOneStage(1e10, f, p) / TimeTwoStage(1e10, 64, f, p)
	if !(gotSmall < gotBig && gotBig < want) {
		t.Fatalf("ratios %.4f, %.4f do not approach the limit %.4f from below", gotSmall, gotBig, want)
	}
	if math.Abs(gotBig-want)/want > 1e-2 {
		t.Fatalf("ratio at large n %.4f too far from limit %.4f", gotBig, want)
	}
}

func TestSpeedupDecreasesWithFraction(t *testing.T) {
	// More eigenvectors → more doubled back-transform work → less speedup.
	p := amd
	s1 := AsymptoticSpeedup(0.2, p)
	s2 := AsymptoticSpeedup(1.0, p)
	if s1 <= s2 {
		t.Fatalf("speedup should fall with f: f=0.2 → %.2f, f=1 → %.2f", s1, s2)
	}
}

func TestOptimalNBMinimizes(t *testing.T) {
	p := Params{Alpha: 5e9, Beta: 8e8, Gamma: 200}
	nbStar := OptimalNB(p)
	total := func(nb int) float64 {
		return BulgeComputeTime(1000, nb, p) + BulgeCommTime(1000, nb, p)
	}
	best := total(int(nbStar + 0.5))
	for _, nb := range []int{int(nbStar / 4), int(nbStar / 2), int(2 * nbStar), int(4 * nbStar)} {
		if nb < 1 {
			continue
		}
		if total(nb) < best {
			t.Fatalf("nb=%d beats the model optimum %.1f", nb, nbStar)
		}
	}
}

func TestModelMonotonicityProperty(t *testing.T) {
	// t decreases (weakly) with more cores; one-stage reduction term does
	// not (that is the non-scaling result of §4).
	f := func(seed int64) bool {
		n := float64(1000 + seed%5000)
		if n < 10 {
			n = 10
		}
		p1 := amd
		p1.P = 4
		p2 := amd
		p2.P = 48
		t2a := TimeTwoStage(n, 64, 1, p1)
		t2b := TimeTwoStage(n, 64, 1, p2)
		// More cores never hurt the two-stage model.
		if t2b > t2a {
			return false
		}
		// The one-stage time is dominated by the β term, which cores don't
		// help: the improvement must be bounded by the vector fraction.
		t1a := TimeOneStage(n, 1, p1)
		t1b := TimeOneStage(n, 1, p2)
		floor := 4.0 / 3.0 * n * n * n / amd.Beta
		return t1a >= floor && t1b >= floor
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("Table1 has %d rows", len(rows))
	}
	for _, r := range rows {
		if r.TRD != 4.0/3 {
			t.Fatalf("%s: TRD coefficient %.3f", r.Routine, r.TRD)
		}
	}
	// Only the QR method pays for explicit Q generation and no update.
	if rows[2].GenQ == 0 || rows[2].UpdateZ != 0 {
		t.Fatal("QR row malformed")
	}
}

func TestMeasureParamsSane(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-benchmarks skipped in -short")
	}
	p := MeasureParams(1)
	if p.Alpha <= 0 || p.Beta <= 0 {
		t.Fatalf("non-positive rates: %+v", p)
	}
	// The compute-bound kernel must beat the memory-bound one — the entire
	// premise of the paper; if this fails the substrate cannot reproduce
	// any of the figures.
	if p.Alpha <= p.Beta {
		t.Fatalf("gemm rate %.2e not above symv rate %.2e", p.Alpha, p.Beta)
	}
}

func TestEq7Eq8SVDComparison(t *testing.T) {
	// §4.1: the SVD pipeline has exactly twice the cubic flops of the EVD
	// pipeline, so the EVD's Amdahl (memory-bound) fraction is ~2x larger.
	s1, _, u2, u1 := TwoStageFlops(1000, 1)
	g1, _, sb, gu := SVDFlops(1000)
	if g1 != 2*s1 || sb+gu != 2*(u2+u1) {
		t.Fatalf("Eq 8 is not the doubled Eq 7: %v %v | %v %v", g1, s1, sb+gu, u2+u1)
	}
	evd, svd := AmdahlFractions(1000, 6*64)
	if evd <= svd {
		t.Fatalf("EVD Amdahl fraction %.5f should exceed SVD's %.5f", evd, svd)
	}
	if r := evd / svd; r < 1.5 || r > 2.5 {
		t.Fatalf("EVD/SVD Amdahl ratio %.2f, expected ≈2", r)
	}
	// The fraction vanishes as n grows (it is O(1/n)).
	evdBig, _ := AmdahlFractions(100000, 6*64)
	if evdBig >= evd {
		t.Fatal("Amdahl fraction should shrink with n")
	}
}
