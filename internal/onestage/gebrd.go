package onestage

import (
	"repro/internal/blas"
	"repro/internal/householder"
	"repro/internal/matrix"
	"repro/internal/trace"
)

// Gebrd reduces a square matrix to upper bidiagonal form A = Q·B·Pᵀ by
// alternating column and row Householder reflectors (LAPACK's GEBD2
// algorithm). It exists here because the paper's Table 2 contrasts the
// kernel mix of the three two-sided reductions — TRD (4×SYMV), BRD
// (4×GEMV), HRD (10×GEMV) — and the benchmark harness measures those rates
// from the real algorithms.
//
// On return d (length n) holds the diagonal of B, e (length n−1) its
// superdiagonal; the reflectors are packed in a (column reflectors below
// the diagonal, row reflectors right of the superdiagonal) with scales in
// tauQ and tauP, exactly LAPACK's convention. tc may be nil.
func Gebrd(a *matrix.Dense, tc *trace.Collector) (d, e, tauQ, tauP []float64) {
	n := a.Rows
	if a.Cols != n {
		panic("onestage: Gebrd requires a square matrix (reproduction scope)")
	}
	d = make([]float64, n)
	e = make([]float64, max(0, n-1))
	tauQ = make([]float64, n)
	tauP = make([]float64, max(0, n-1))
	if n == 0 {
		return
	}
	lda := a.Stride
	work := make([]float64, n)
	for i := 0; i < n; i++ {
		// Column reflector annihilating A[i+1:, i].
		beta, tq := householder.Larfg(n-i, a.Data[i+i*lda], a.Data[i+1+i*lda:], 1)
		d[i] = beta
		tauQ[i] = tq
		if i+1 < n {
			// Apply Hq from the left to A[i:, i+1:].
			aii := a.Data[i+i*lda]
			a.Data[i+i*lda] = 1
			householder.Larf(blas.Left, n-i, n-i-1, a.Data[i+i*lda:], 1, tq, a.Data[i+(i+1)*lda:], lda, work)
			a.Data[i+i*lda] = aii
			tc.AddFlops(trace.KGemv, 4*int64(n-i)*int64(n-i-1))
		}
		if i < n-1 {
			// Row reflector annihilating A[i, i+2:]. The tail slice is
			// empty at i = n−2; avoid forming an out-of-bounds expression.
			var tail []float64
			if i+2 < n {
				tail = a.Data[i+(i+2)*lda:]
			}
			beta, tp := householder.Larfg(n-i-1, a.Data[i+(i+1)*lda], tail, lda)
			e[i] = beta
			tauP[i] = tp
			if i+1 < n && tp != 0 {
				// Apply Hp from the right to A[i+1:, i+1:].
				aij := a.Data[i+(i+1)*lda]
				a.Data[i+(i+1)*lda] = 1
				householder.Larf(blas.Right, n-i-1, n-i-1, a.Data[i+(i+1)*lda:], lda, tp, a.Data[i+1+(i+1)*lda:], lda, work)
				a.Data[i+(i+1)*lda] = aij
				tc.AddFlops(trace.KGemv, 4*int64(n-i-1)*int64(n-i-1))
			}
		}
	}
	return
}

// Gehrd reduces a square matrix to upper Hessenberg form A = Q·H·Qᵀ
// (LAPACK's GEHD2 algorithm): reflector i annihilates A[i+2:, i] and is
// applied from both sides, costing the 10×GEMV-per-column mix of the
// paper's Table 2. The reflectors are packed below the first subdiagonal
// with scales in tau. tc may be nil.
func Gehrd(a *matrix.Dense, tc *trace.Collector) (tau []float64) {
	n := a.Rows
	if a.Cols != n {
		panic("onestage: Gehrd requires a square matrix")
	}
	tau = make([]float64, max(0, n-1))
	lda := a.Stride
	work := make([]float64, n)
	for i := 0; i < n-2; i++ {
		beta, t := householder.Larfg(n-i-1, a.Data[i+1+i*lda], a.Data[i+2+i*lda:], 1)
		tau[i] = t
		a.Data[i+1+i*lda] = 1
		v := a.Data[i+1+i*lda:]
		// Right: A[0:n, i+1:] := A·H.
		householder.Larf(blas.Right, n, n-i-1, v, 1, t, a.Data[(i+1)*lda:], lda, work)
		// Left: A[i+1:, i+1:] := H·A.
		householder.Larf(blas.Left, n-i-1, n-i-1, v, 1, t, a.Data[i+1+(i+1)*lda:], lda, work)
		// The subdiagonal entry of the Hessenberg form is the Larfg beta.
		a.Data[i+1+i*lda] = beta
		tc.AddFlops(trace.KGemv, 4*int64(n)*int64(n-i-1)+4*int64(n-i-1)*int64(n-i-1))
	}
	return
}
