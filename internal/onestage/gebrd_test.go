package onestage

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/householder"
	"repro/internal/matrix"
)

func randGeneral(rng *rand.Rand, n int) *matrix.Dense {
	a := matrix.NewDense(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	return a
}

// buildQFromColumns accumulates Q = H_0·H_1⋯ from column reflectors packed
// below diagonal offset off (off = 0 for Gebrd's Q, 1 for Gehrd's Q).
func buildQFromColumns(a *matrix.Dense, tau []float64, off int) *matrix.Dense {
	n := a.Rows
	q := matrix.Eye(n)
	work := make([]float64, n)
	for i := len(tau) - 1; i >= 0; i-- {
		if i+off >= n || tau[i] == 0 {
			continue
		}
		v := make([]float64, n)
		v[i+off] = 1
		for r := i + off + 1; r < n; r++ {
			v[r] = a.At(r, i)
		}
		// q := H_i·q applied for descending i accumulates H_0·(H_1·(…)).
		householder.Larf(blas.Left, n, n, v, 1, tau[i], q.Data, q.Stride, work)
	}
	return q
}

// buildPFromRows accumulates P = G_0·G_1⋯ from row reflectors packed right
// of the superdiagonal (Gebrd's P).
func buildPFromRows(a *matrix.Dense, tauP []float64) *matrix.Dense {
	n := a.Rows
	p := matrix.Eye(n)
	work := make([]float64, n)
	for i := len(tauP) - 1; i >= 0; i-- {
		if tauP[i] == 0 || i+1 >= n {
			continue
		}
		v := make([]float64, n)
		v[i+1] = 1
		for c := i + 2; c < n; c++ {
			v[c] = a.At(i, c)
		}
		householder.Larf(blas.Left, n, n, v, 1, tauP[i], p.Data, p.Stride, work)
	}
	return p
}

func TestGebrdReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 8, 20} {
		orig := randGeneral(rng, n)
		a := orig.Clone()
		d, e, tauQ, tauP := Gebrd(a, nil)
		// B from d, e.
		b := matrix.NewDense(n, n)
		for i := 0; i < n; i++ {
			b.Set(i, i, d[i])
			if i+1 < n {
				b.Set(i, i+1, e[i])
			}
		}
		q := buildQFromColumns(a, tauQ, 0)
		p := buildPFromRows(a, tauP)
		// Reconstruct Q·B·Pᵀ.
		tmp := matrix.NewDense(n, n)
		blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, q.Data, q.Stride, b.Data, b.Stride, 0, tmp.Data, tmp.Stride)
		rec := matrix.NewDense(n, n)
		blas.Dgemm(blas.NoTrans, blas.Trans, n, n, n, 1, tmp.Data, tmp.Stride, p.Data, p.Stride, 0, rec.Data, rec.Stride)
		if !rec.Equalish(orig, 1e-12*float64(n)*(orig.FrobeniusNorm()+1)) {
			t.Fatalf("n=%d: Q·B·Pᵀ != A", n)
		}
	}
}

func TestGebrdSingularValuesPreserved(t *testing.T) {
	// ‖A‖_F² = Σσ² = ‖B‖_F².
	rng := rand.New(rand.NewSource(2))
	n := 30
	orig := randGeneral(rng, n)
	a := orig.Clone()
	d, e, _, _ := Gebrd(a, nil)
	var fa, fb float64
	for _, v := range orig.Data {
		fa += v * v
	}
	for _, v := range d {
		fb += v * v
	}
	for _, v := range e {
		fb += v * v
	}
	if math.Abs(fa-fb) > 1e-10*fa {
		t.Fatalf("Frobenius changed: %g vs %g", fa, fb)
	}
}

func TestGehrdReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 9, 24} {
		orig := randGeneral(rng, n)
		a := orig.Clone()
		tau := Gehrd(a, nil)
		// H = upper Hessenberg part of the reduced a.
		h := matrix.NewDense(n, n)
		for j := 0; j < n; j++ {
			for i := 0; i <= min(j+1, n-1); i++ {
				h.Set(i, j, a.At(i, j))
			}
		}
		q := buildQFromColumns(a, tau, 1)
		// A = Q·H·Qᵀ.
		tmp := matrix.NewDense(n, n)
		blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, q.Data, q.Stride, h.Data, h.Stride, 0, tmp.Data, tmp.Stride)
		rec := matrix.NewDense(n, n)
		blas.Dgemm(blas.NoTrans, blas.Trans, n, n, n, 1, tmp.Data, tmp.Stride, q.Data, q.Stride, 0, rec.Data, rec.Stride)
		if !rec.Equalish(orig, 1e-12*float64(n)*(orig.FrobeniusNorm()+1)) {
			t.Fatalf("n=%d: Q·H·Qᵀ != A", n)
		}
		// Hessenberg structure: zero below the first subdiagonal.
		for j := 0; j < n; j++ {
			for i := j + 2; i < n; i++ {
				if h.At(i, j) != 0 {
					t.Fatalf("n=%d: H not Hessenberg at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestGehrdEigenInvariants(t *testing.T) {
	// Similarity preserves trace.
	rng := rand.New(rand.NewSource(4))
	n := 25
	orig := randGeneral(rng, n)
	a := orig.Clone()
	Gehrd(a, nil)
	var t1, t2 float64
	for i := 0; i < n; i++ {
		t1 += orig.At(i, i)
		t2 += a.At(i, i)
	}
	if math.Abs(t1-t2) > 1e-11*float64(n) {
		t.Fatalf("trace changed: %g vs %g", t1, t2)
	}
}
