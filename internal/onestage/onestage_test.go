package onestage

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/trace"
	"repro/internal/tridiag"
)

func randSym(rng *rand.Rand, n int) *matrix.Dense {
	a := matrix.NewDense(n, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

// reconstruct computes Q·T·Qᵀ from the packed Sytrd output and compares it
// to the original matrix.
func reconstructError(t *testing.T, orig *matrix.Dense, a *matrix.Dense, d, e, tau []float64, nb int) float64 {
	t.Helper()
	n := orig.Rows
	tm := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		tm.Set(i, i, d[i])
		if i+1 < n {
			tm.Set(i+1, i, e[i])
			tm.Set(i, i+1, e[i])
		}
	}
	// R = Q·T·Qᵀ: apply Qᵀ from the right via transposes — use ApplyQ on
	// columns: first W = Q·T, then R = (Q·Wᵀ)ᵀ.
	w := tm.Clone()
	ApplyQ(a, tau, blas.NoTrans, w, nb, nil, nil)
	wt := w.Transpose()
	ApplyQ(a, tau, blas.NoTrans, wt, nb, nil, nil)
	r := wt.Transpose()
	diff := 0.0
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if v := math.Abs(r.At(i, j) - orig.At(i, j)); v > diff {
				diff = v
			}
		}
	}
	return diff / (orig.FrobeniusNorm() + 1)
}

func TestSytrdReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, nb int }{{1, 4}, {2, 4}, {3, 2}, {8, 4}, {13, 4}, {32, 8}, {50, 16}, {64, 64}, {40, 1}} {
		orig := randSym(rng, tc.n)
		a := orig.Clone()
		d, e, tau := Sytrd(a, tc.nb, nil, nil)
		if err := reconstructError(t, orig, a, d, e, tau, tc.nb); err > 1e-13*float64(tc.n) {
			t.Fatalf("n=%d nb=%d: reconstruction error %g", tc.n, tc.nb, err)
		}
	}
}

func TestSytrdBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 33
	orig := randSym(rng, n)
	a1 := orig.Clone()
	d1, e1, _ := Sytrd(a1, 1, nil, nil)
	a2 := orig.Clone()
	d2, e2, _ := Sytrd(a2, 8, nil, nil)
	for i := 0; i < n; i++ {
		if math.Abs(d1[i]-d2[i]) > 1e-11 {
			t.Fatalf("d[%d] differs: %g vs %g", i, d1[i], d2[i])
		}
	}
	for i := 0; i < n-1; i++ {
		if math.Abs(math.Abs(e1[i])-math.Abs(e2[i])) > 1e-11 {
			t.Fatalf("|e[%d]| differs: %g vs %g", i, e1[i], e2[i])
		}
	}
}

func TestSytrdEigenvaluesPreserved(t *testing.T) {
	// Eigenvalues of T must equal eigenvalues of A (planted spectrum).
	rng := rand.New(rand.NewSource(3))
	n := 48
	a := randSym(rng, n)
	orig := a.Clone()
	// Reference spectrum via Jacobi-free approach: reduce with nb=1 (already
	// tested against reconstruction) is circular; instead compare Sytrd+
	// Steqr spectrum against the trace/Frobenius invariants of A.
	d, e, _ := Sytrd(a, 8, nil, nil)
	if err := tridiag.Steqr(d, e, nil); err != nil {
		t.Fatal(err)
	}
	var tr, fr float64
	for i := 0; i < n; i++ {
		tr += orig.At(i, i)
		for j := 0; j < n; j++ {
			fr += orig.At(i, j) * orig.At(i, j)
		}
	}
	var tr2, fr2 float64
	for _, v := range d {
		tr2 += v
		fr2 += v * v
	}
	if math.Abs(tr-tr2) > 1e-11*float64(n) {
		t.Fatalf("trace not preserved: %g vs %g", tr, tr2)
	}
	if math.Abs(fr-fr2) > 1e-9*fr {
		t.Fatalf("Frobenius² not preserved: %g vs %g", fr, fr2)
	}
}

func TestBuildQOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{2, 9, 31} {
		a := randSym(rng, n)
		_, _, tau := Sytrd(a, 8, nil, nil)
		q := BuildQ(a, tau, 8, nil)
		// QᵀQ = I.
		qtq := matrix.NewDense(n, n)
		blas.Dgemm(blas.Trans, blas.NoTrans, n, n, n, 1, q.Data, q.Stride, q.Data, q.Stride, 0, qtq.Data, qtq.Stride)
		if !qtq.Equalish(matrix.Eye(n), 1e-13*float64(n)) {
			t.Fatalf("n=%d: Q not orthogonal", n)
		}
	}
}

func TestApplyQTransIsInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, m := 21, 7
	a := randSym(rng, n)
	_, _, tau := Sytrd(a, 4, nil, nil)
	c := matrix.NewDense(n, m)
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	got := c.Clone()
	ApplyQ(a, tau, blas.NoTrans, got, 4, nil, nil)
	ApplyQ(a, tau, blas.Trans, got, 4, nil, nil)
	if !got.Equalish(c, 1e-12) {
		t.Fatal("Qᵀ·Q·C != C")
	}
}

func TestFullEigendecompositionResidual(t *testing.T) {
	// End-to-end one-stage: A z = λ z for every eigenpair.
	rng := rand.New(rand.NewSource(6))
	n := 40
	orig := randSym(rng, n)
	a := orig.Clone()
	d, e, tau := Sytrd(a, 8, nil, nil)
	z := matrix.Eye(n)
	if err := tridiag.Steqr(d, e, z); err != nil {
		t.Fatal(err)
	}
	// Z = Q·E.
	ApplyQ(a, tau, blas.NoTrans, z, 8, nil, nil)
	// Residuals.
	norm := orig.FrobeniusNorm()
	for k := 0; k < n; k++ {
		zk := z.Data[k*z.Stride : k*z.Stride+n]
		r := make([]float64, n)
		blas.Dgemv(blas.NoTrans, n, n, 1, orig.Data, orig.Stride, zk, 1, 0, r, 1)
		blas.Daxpy(n, -d[k], zk, 1, r, 1)
		if res := blas.Dnrm2(n, r, 1); res > 1e-12*norm*float64(n) {
			t.Fatalf("eigenpair %d residual %g", k, res)
		}
	}
	// Orthogonality of the final Z.
	ztz := matrix.NewDense(n, n)
	blas.Dgemm(blas.Trans, blas.NoTrans, n, n, n, 1, z.Data, z.Stride, z.Data, z.Stride, 0, ztz.Data, ztz.Stride)
	if !ztz.Equalish(matrix.Eye(n), 1e-12*float64(n)) {
		t.Fatal("final Z not orthogonal")
	}
}

func TestFlopAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 64
	a := randSym(rng, n)
	col := trace.New()
	Sytrd(a, 8, nil, col)
	// The reduction is 4/3·n³ + O(n²) flops; the accounting should land in
	// the right ballpark (within 2× on either side).
	want := 4.0 / 3.0 * float64(n) * float64(n) * float64(n)
	got := float64(col.TotalFlops())
	if got < want/2 || got > want*2 {
		t.Fatalf("flop count %g not within 2x of 4/3 n³ = %g", got, want)
	}
	// The symv share must dominate gemv in the one-stage reduction.
	if col.Flops(trace.KSymv) < col.Flops(trace.KGemm) {
		t.Fatal("one-stage reduction should be symv-dominated")
	}
}
