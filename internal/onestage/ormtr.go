package onestage

import (
	"repro/internal/blas"
	"repro/internal/householder"
	"repro/internal/matrix"
	"repro/internal/trace"
	"repro/internal/work"
)

// ApplyQ applies the orthogonal matrix Q from Sytrd (packed in the lower
// triangle of a, with scales tau) to the n×m matrix c from the left:
//
//	trans = NoTrans:  C := Q·C
//	trans = Trans:    C := Qᵀ·C
//
// Q = H_0·H_1⋯H_{n−3}, where reflector i acts on rows i+1..n−1. The
// application is blocked (Larft/Larfb) with panel width nb, which is what
// makes the one-stage back-transformation run at Level-3 speed (the "Update
// Z = 2n³·f" term in the paper's Eq. 4). This is the equivalent of LAPACK's
// DORMTR(side='L', uplo='L').
func ApplyQ(a *matrix.Dense, tau []float64, trans blas.Transpose, c *matrix.Dense, nb int, ws *work.Arena, tc *trace.Collector) {
	n := a.Rows
	if a.Cols != n {
		panic("onestage: ApplyQ requires square a")
	}
	if c.Rows != n {
		panic("onestage: ApplyQ dimension mismatch")
	}
	if nb <= 0 {
		nb = DefaultNB
	}
	if n <= 1 {
		return
	}
	m := c.Cols
	nr := n - 1 // number of reflector slots (tau has n−1 entries; last may be 0)
	// Larft writes only the upper triangle of T, so tmat must start zeroed.
	buf := ws.Floats(work.OneStageWork, nb*m+nb*nb, true)
	wk := buf[:nb*m]
	tmat := buf[nb*m:]

	// Panels of reflectors [i0, i0+pb). For Q·C apply the last panel first;
	// for Qᵀ·C apply in forward order.
	type panel struct{ i0, pb int }
	var panels []panel
	for i0 := 0; i0 < nr; i0 += nb {
		panels = append(panels, panel{i0, min(nb, nr-i0)})
	}
	if trans == blas.NoTrans {
		for i := 0; i < len(panels)/2; i++ {
			panels[i], panels[len(panels)-1-i] = panels[len(panels)-1-i], panels[i]
		}
	}
	for _, p := range panels {
		// Reflector i0+j has its implicit unit at row i0+j+1, so the V
		// submatrix for the panel is a[i0+1: , i0 : i0+pb].
		rows := n - p.i0 - 1
		v := a.Data[(p.i0+1)+p.i0*a.Stride:]
		householder.Larft(rows, p.pb, v, a.Stride, tau[p.i0:p.i0+p.pb], tmat, p.pb)
		csub := c.View(p.i0+1, 0, rows, m)
		householder.Larfb(blas.Left, trans, rows, m, p.pb, v, a.Stride, tmat, p.pb, csub.Data, csub.Stride, wk)
		tc.AddFlops(trace.KLarfb, 4*int64(rows)*int64(m)*int64(p.pb))
	}
}

// BuildQ forms the orthogonal matrix Q from Sytrd explicitly (the
// equivalent of DORGTR): it applies Q to the identity.
func BuildQ(a *matrix.Dense, tau []float64, nb int, tc *trace.Collector) *matrix.Dense {
	q := matrix.Eye(a.Rows)
	ApplyQ(a, tau, blas.NoTrans, q, nb, nil, tc)
	return q
}
