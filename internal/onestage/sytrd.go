// Package onestage implements the classic one-stage LAPACK algorithm the
// paper benchmarks against: blocked reduction of a dense symmetric matrix
// directly to tridiagonal form (DSYTRD with DLATRD panels) and the
// corresponding back-transformation (DORMTR/DORGTR). Each reflector requires
// a symmetric matrix–vector product with the entire trailing submatrix, so
// the algorithm streams the matrix from main memory once per column — the
// memory-bound behaviour that motivates the two-stage approach.
package onestage

import (
	"repro/internal/blas"
	"repro/internal/householder"
	"repro/internal/matrix"
	"repro/internal/trace"
	"repro/internal/work"
)

// DefaultNB is the default panel width for the blocked reduction.
const DefaultNB = 32

// Sytrd reduces the symmetric matrix held in the lower triangle of a to
// tridiagonal form: A = Q·T·Qᵀ. On return:
//
//   - d (length n) holds the diagonal of T,
//   - e (length n−1) holds the subdiagonal of T,
//   - tau (length n−1) holds the reflector scales,
//   - the columns of a below the first subdiagonal hold the essential parts
//     of the reflectors (reflector i occupies a[i+2:, i], with an implicit
//     leading 1 at row i+1), exactly LAPACK's packing.
//
// nb is the panel width (DefaultNB if ≤ 0). ws, which may be nil, supplies
// the DLATRD panel workspace. tc, which may be nil, receives flop
// accounting.
func Sytrd(a *matrix.Dense, nb int, ws *work.Arena, tc *trace.Collector) (d, e, tau []float64) {
	n := a.Rows
	if a.Cols != n {
		panic("onestage: Sytrd requires a square matrix")
	}
	if nb <= 0 {
		nb = DefaultNB
	}
	d = make([]float64, n)
	e = make([]float64, max(0, n-1))
	tau = make([]float64, max(0, n-1))
	if n == 0 {
		return
	}
	if n == 1 {
		d[0] = a.At(0, 0)
		return
	}

	lda := a.Stride
	w := ws.Dense(work.OneStagePanel, n, nb, false)
	scratch := ws.Floats(work.OneStageWork, nb, false)
	for i0 := 0; i0 < n-1; i0 += nb {
		pb := min(nb, n-1-i0) // reflectors in this panel
		remain := n - i0      // rows of the trailing part incl. panel
		latrd(a.View(i0, i0, remain, remain), pb, d[i0:], e[i0:], tau[i0:], w, scratch, tc)
		// Rank-2pb update of the trailing submatrix:
		// A[i0+pb:, i0+pb:] -= V·Wᵀ + W·Vᵀ where V is the panel's
		// reflectors and W the latrd workspace.
		t0 := i0 + pb
		nt := n - t0
		if nt > 0 {
			vsub := a.Data[t0+i0*lda:]
			wsub := w.Data[pb:]
			blas.Dsyr2k(blas.Lower, blas.NoTrans, nt, pb, -1, vsub, lda, wsub, w.Stride, 1, a.Data[t0+t0*lda:], lda)
			tc.AddFlops(trace.KSyrk, 2*int64(nt)*int64(nt+1)*int64(pb))
		}
	}
	// The diagonal of the fully reduced matrix is T's diagonal.
	for i := 0; i < n; i++ {
		d[i] = a.At(i, i)
	}
	return d, e, tau
}

// latrd reduces the first pb columns of the symmetric sub (order m, lower)
// to tridiagonal form, accumulating the update factors into w so the caller
// can apply a single rank-2pb update to the trailing submatrix. It mirrors
// LAPACK's DLATRD (uplo = 'L'). scratch must hold ≥ pb floats.
func latrd(sub *matrix.Dense, pb int, d, e, tau []float64, w *matrix.Dense, scratch []float64, tc *trace.Collector) {
	m := sub.Rows
	lda := sub.Stride
	ldw := w.Stride
	for i := 0; i < pb; i++ {
		rows := m - i // length of column i from the diagonal down
		// Update A[i:, i] with the previous panel columns:
		// A[i:, i] -= V[i:, :i]·W[i, :i]ᵀ + W[i:, :i]·V[i, :i]ᵀ.
		if i > 0 {
			col := sub.Data[i+i*lda:]
			blas.Dgemv(blas.NoTrans, rows, i, -1, sub.Data[i:], lda, w.Data[i:], ldw, 1, col, 1)
			blas.Dgemv(blas.NoTrans, rows, i, -1, w.Data[i:], ldw, sub.Data[i:], lda, 1, col, 1)
			tc.AddFlops(trace.KGemv, 4*int64(rows)*int64(i))
		}
		if i >= len(e) || m-i-1 == 0 {
			continue
		}
		// Generate the reflector annihilating A[i+2:, i].
		alpha := sub.At(i+1, i)
		beta, t := householder.Larfg(m-i-1, alpha, sub.Data[i+2+i*lda:], 1)
		e[i] = beta
		tau[i] = t
		sub.Set(i+1, i, 1) // store the implicit 1 so symv can use the column
		// w_i = tau · A[i+1:, i+1:]·v  (symmetric, trailing).
		vlen := m - i - 1
		v := sub.Data[i+1+i*lda:]
		wi := w.Data[i+1+i*ldw:]
		blas.Dsymv(blas.Lower, vlen, t, sub.Data[(i+1)+(i+1)*lda:], lda, v, 1, 0, wi, 1)
		tc.AddFlops(trace.KSymv, 2*int64(vlen)*int64(vlen))
		if i > 0 {
			// w_i -= tau·(V·(Wᵀv) + W·(Vᵀv)) restricted to rows i+1:.
			tmp := scratch[:i]
			blas.Dgemv(blas.Trans, vlen, i, 1, w.Data[i+1:], ldw, v, 1, 0, tmp, 1)
			blas.Dgemv(blas.NoTrans, vlen, i, -t, sub.Data[i+1:], lda, tmp, 1, 1, wi, 1)
			blas.Dgemv(blas.Trans, vlen, i, 1, sub.Data[i+1:], lda, v, 1, 0, tmp, 1)
			blas.Dgemv(blas.NoTrans, vlen, i, -t, w.Data[i+1:], ldw, tmp, 1, 1, wi, 1)
			tc.AddFlops(trace.KGemv, 8*int64(vlen)*int64(i))
		}
		// w_i -= (tau/2)·(w_iᵀ·v)·v.
		dot := blas.Ddot(vlen, wi, 1, v, 1)
		blas.Daxpy(vlen, -0.5*t*dot, v, 1, wi, 1)
		tc.AddFlops(trace.KOther, 4*int64(vlen))
	}
}
