// Package sbr implements successive band reduction: the band→band narrowing
// sweeps of a communication-avoiding stage 1 (Solomonik et al., PAPERS.md;
// Bischof/Lang/Sun's SBR toolbox). One Reduce call narrows a symmetric band
// matrix of bandwidth b₁ to bandwidth b₂ < b₁,  B₁ = S·B₂·Sᵀ, harvesting the
// Householder reflectors of S for the eigenvector back-transformation.
//
// The kernel walk generalizes the stage-2 bulge chase (internal/bulge) from
// its fixed b₂ = 1 to any target bandwidth:
//
//   - The sweep-starting kernel annihilates column sw below subdiagonal b₂
//     with one reflector of length ≤ b₁−b₂+1 rooted at row sw+b₂, and applies
//     it two-sidedly to the leading symmetric triangle plus the b₂−1 in-band
//     columns to its left.
//   - Each chase step applies the previous reflector from the right to the
//     off-diagonal block below it — the b₂−1 "pass-through" rows that stay
//     inside the band plus the bulge rows that spill below it — then
//     annihilates only the bulge's first column, keeping the band entry at
//     offset exactly b₁ (delayed annihilation: the rest of the bulge overlaps
//     later sweeps' bulges and is chased by them). Reflector roots therefore
//     hop b₁ rows per level: Row(sw, ℓ) = sw + b₂ + ℓ·b₁.
//   - The new reflector is applied from the left to the remaining bulge and
//     pass-through columns while they are hot in cache, then two-sidedly to
//     the next symmetric triangle.
//
// Transient bulges reach 2b₁−b₂ subdiagonals, so the matrix is kept in an
// extended band of that width. Because Row(sw, ℓ) shifts by exactly one row
// per consecutive sweep at fixed level, the reflectors satisfy the same
// diamond-lattice invariant as the stage-2 chase and the
// internal/backtransform aggregated applier consumes them unchanged.
package sbr

import (
	"repro/internal/bulge"
	"repro/internal/householder"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/work"
)

// emptyV marks a recorded identity reflector: the slot is filled (V non-nil)
// but the transformation is trivial. Distinct from an untouched lattice slot
// whose V is nil.
var emptyV = []float64{}

// extBand is the extended-band working storage for one narrowing sweep: the
// width-b₁ input band plus room for the transient bulges, which reach
// 2b₁−b₂ subdiagonals. Lower band layout: element (i, j), j ≤ i ≤ j+kd,
// lives at data[(i−j) + j·lda]. The kernels mirror internal/bulge's
// (Level-2, column-at-a-time) with the block geometry generalized; they are
// duplicated rather than shared so the stage-2 chase keeps its own invariant
// checks and arena keys.
type extBand struct {
	n    int
	b1   int // input bandwidth
	b2   int // target bandwidth
	kd   int // working bandwidth (≤ 2b₁−b₂)
	lda  int
	data []float64
}

func (w *extBand) init(b *matrix.SymBand, b2 int, key work.Key, ws *work.Arena) {
	kd := min(2*b.KD-b2, b.N-1)
	if kd < b.KD {
		kd = b.KD
	}
	*w = extBand{n: b.N, b1: b.KD, b2: b2, kd: kd, lda: kd + 1}
	w.data = ws.Floats(key, w.lda*b.N, true)
	for j := 0; j < b.N; j++ {
		for i := j; i <= min(b.N-1, j+b.KD); i++ {
			w.data[(i-j)+j*w.lda] = b.Data[(i-j)+j*b.LDA]
		}
	}
}

func (w *extBand) at(i, j int) float64 {
	if i < j {
		i, j = j, i
	}
	if i-j > w.kd {
		return 0
	}
	return w.data[(i-j)+j*w.lda]
}

// col returns the contiguous storage of column j for rows [r0, r0+len).
// The requested rows must lie inside the extended band — a violation would
// silently alias the next column's storage, so it is checked.
func (w *extBand) col(j, r0, length int) []float64 {
	if r0 < j || r0+length-1-j > w.kd {
		panic("sbr: access outside the extended band (delayed-annihilation invariant broken)")
	}
	off := (r0 - j) + j*w.lda
	return w.data[off : off+length]
}

// larfgColumn generates the reflector annihilating all but the first entry
// of B[r0 : r0+length, c], writes the annihilated column back (beta then
// zeros), and returns the essential part (carved from slab) and tau.
func (w *extBand) larfgColumn(c, r0, length int, slab *work.Slab, tc *trace.Collector) ([]float64, float64) {
	x := w.col(c, r0, length)
	beta, tau := householder.Larfg(length, x[0], x[1:], 1)
	v := slab.Take(length - 1)
	copy(v, x[1:])
	x[0] = beta
	for i := 1; i < length; i++ {
		x[i] = 0
	}
	tc.AddFlops(trace.KOther, 3*int64(length))
	return v, tau
}

// symTwoSided applies H = I − τ·u·uᵀ (u = [1; v]) two-sidedly to the
// symmetric block starting at index r0 with the given length:
// S := H·S·H via the standard rank-2 form S −= u·wᵀ + w·uᵀ,
// w = τ·S·u − (τ²/2)(uᵀSu)·u. scratch must hold ≥ length floats.
func (w *extBand) symTwoSided(r0, length int, v []float64, tau float64, scratch []float64, tc *trace.Collector) {
	if tau == 0 || length == 0 {
		return
	}
	p := scratch[:length]
	clear(p)
	for j := 0; j < length; j++ {
		uj := 1.0
		if j > 0 {
			uj = v[j-1]
		}
		cj := w.col(r0+j, r0+j, length-j)
		p[j] += cj[0] * uj
		for i := j + 1; i < length; i++ {
			s := cj[i-j]
			ui := v[i-1]
			p[i] += s * uj
			p[j] += s * ui
		}
	}
	for i := range p {
		p[i] *= tau
	}
	dot := p[0]
	for i := 1; i < length; i++ {
		dot += v[i-1] * p[i]
	}
	alpha := -0.5 * tau * dot
	p[0] += alpha
	for i := 1; i < length; i++ {
		p[i] += alpha * v[i-1]
	}
	for j := 0; j < length; j++ {
		uj := 1.0
		if j > 0 {
			uj = v[j-1]
		}
		cj := w.col(r0+j, r0+j, length-j)
		cj[0] -= 2 * uj * p[j]
		for i := j + 1; i < length; i++ {
			ui := v[i-1]
			cj[i-j] -= ui*p[j] + uj*p[i]
		}
	}
	tc.AddFlops(trace.KSymv, 4*int64(length)*int64(length))
}

// rightUpdate applies H from the right to the block
// G = B[r0 : r0+rlen, c0 : c0+clen]:  G := G·(I − τ·u·uᵀ), u = [1; v] over
// the columns. scratch must hold ≥ rlen floats.
func (w *extBand) rightUpdate(r0, rlen, c0, clen int, v []float64, tau float64, scratch []float64, tc *trace.Collector) {
	if tau == 0 || rlen <= 0 || clen <= 0 {
		return
	}
	t := scratch[:rlen]
	clear(t)
	for j := 0; j < clen; j++ {
		uj := 1.0
		if j > 0 {
			uj = v[j-1]
		}
		cj := w.col(c0+j, r0, rlen)
		for i := 0; i < rlen; i++ {
			t[i] += cj[i] * uj
		}
	}
	for j := 0; j < clen; j++ {
		uj := tau
		if j > 0 {
			uj = tau * v[j-1]
		}
		cj := w.col(c0+j, r0, rlen)
		for i := 0; i < rlen; i++ {
			cj[i] -= t[i] * uj
		}
	}
	tc.AddFlops(trace.KGemv, 4*int64(rlen)*int64(clen))
}

// leftUpdate applies H from the left to the block
// G = B[r0 : r0+rlen, c0 : c0+clen]:  G := (I − τ·u·uᵀ)·G, u over the rows.
func (w *extBand) leftUpdate(r0, rlen, c0, clen int, v []float64, tau float64, tc *trace.Collector) {
	if tau == 0 || rlen <= 0 || clen <= 0 {
		return
	}
	for j := 0; j < clen; j++ {
		cj := w.col(c0+j, r0, rlen)
		dot := cj[0]
		for i := 1; i < rlen; i++ {
			dot += v[i-1] * cj[i]
		}
		dot *= tau
		cj[0] -= dot
		for i := 1; i < rlen; i++ {
			cj[i] -= dot * v[i-1]
		}
	}
	tc.AddFlops(trace.KGemv, 4*int64(rlen)*int64(clen))
}

// extractBand reads the narrowed width-b₂ band off the fully swept storage.
func (w *extBand) extractBand(key work.Key, ws *work.Arena) *matrix.SymBand {
	out := ws.Band(key, w.n, w.b2)
	for j := 0; j < w.n; j++ {
		for i := j; i <= min(w.n-1, j+out.KD); i++ {
			out.Data[(i-j)+j*out.LDA] = w.at(i, j)
		}
	}
	return out
}

// forEachStep walks the kernel lattice of one narrowing pass in sequential
// order: fn(sw, 0) is the sweep-starting kernel, fn(sw, lvl) for lvl ≥ 1 the
// combined right-update/annihilate/left-update chase kernel. fn returning
// false stops the walk. Sweep sw runs iff column sw has entries below
// subdiagonal b₂; step lvl runs iff the previous reflector's block has rows
// below it (even when those are pass-through rows only — the tail case
// right-updates them without generating a reflector).
func forEachStep(n, b1, b2 int, fn func(sw, lvl int) bool) {
	for sw := 0; sw <= n-b2-2; sw++ {
		if !fn(sw, 0) {
			return
		}
		for lvl := 1; ; lvl++ {
			prevStart := sw + b2 + (lvl-1)*b1
			prevLen := min(b1-b2+1, n-prevStart)
			if prevStart+prevLen >= n {
				break // previous block reached the bottom
			}
			if !fn(sw, lvl) {
				return
			}
		}
	}
}

// KeySet names the arena storage of one Reduce call. Multi-sweep pipelines
// run several reductions whose factors must coexist on one arena, so each
// sweep uses its own set (KeysFor).
type KeySet struct {
	Work    work.Key // extended-band working storage
	Band    work.Key // narrowed output band
	Refs    work.Key // reflector lattice
	Slab    work.Key // reflector essentials
	Scratch work.Key // per-worker kernel scratch
	State   work.Key // retained reducer + Factor headers
}

// KeysFor returns the conventional key set of narrowing sweep i.
func KeysFor(i int) KeySet {
	s := itoa(i)
	return KeySet{
		Work:    work.Key("sbr.work." + s),
		Band:    work.Key("sbr.band." + s),
		Refs:    work.Key("sbr.refs." + s),
		Slab:    work.Key("sbr.slab." + s),
		Scratch: work.Key("sbr.scratch." + s),
		State:   work.Key("sbr.state." + s),
	}
}

// Config controls one band→band reduction.
type Config struct {
	// B2 is the target bandwidth, clamped to ≥ 1. A B2 ≥ the input bandwidth
	// makes Reduce a pass-through (the returned Factor aliases the input band
	// and carries no reflectors).
	B2 int
	// Lookahead grades chase-step priorities within this many levels of the
	// sweep-starting kernels (0 = default depth). Priorities only reorder the
	// ready queue; the conservative block dependences keep the result bitwise
	// identical at any worker count and depth.
	Lookahead int
	// Sequenced flattens all priorities (kill-switch for the graded order).
	Sequenced bool
	// WantQ selects whether the reflector sequence is accumulated.
	WantQ bool
	// Affinity restricts scheduled kernels to a subset of workers (0 = all).
	Affinity uint64
	// Keys names the arena storage; the zero value gets KeysFor(0).
	Keys KeySet
}

// DefaultLookahead is the priority-grading depth when Config.Lookahead is 0.
const DefaultLookahead = 2

// Factor is the outcome of one narrowing sweep: the narrowed band and the
// reflectors of the orthogonal S with  input = S·Band·Sᵀ. Arena-backed —
// valid until the arena is recycled.
type Factor struct {
	N  int
	B1 int // input bandwidth
	B2 int // output bandwidth
	// Band is the narrowed band matrix (bandwidth B2).
	Band *matrix.SymBand
	// Refs holds the S reflectors in generation order, on the same
	// (sweep, level) diamond lattice as a stage-2 chase with bandwidth B1.
	// Nil when the reduction ran with WantQ false or was a pass-through.
	Refs []bulge.Reflector
}

// Result adapts the factor for internal/backtransform's aggregated applier,
// which consumes the (N, B, Refs) lattice of a bulge chase. An SBR sweep's
// reflectors live on the same lattice with B = B1.
func (f *Factor) Result() *bulge.Result {
	return &bulge.Result{N: f.N, B: f.B1, Refs: f.Refs}
}

// reducer carries the kernel state of one Reduce call: the extended working
// band, the pre-planned reflector lattice (slot (s, ℓ) is known in advance so
// recording is race-free under the scheduler), the slab the reflector
// essentials are carved from, and per-worker scratch.
type reducer struct {
	w         extBand
	keys      KeySet
	ws        *work.Arena
	tc        *trace.Collector
	refs      []bulge.Reflector
	out       []bulge.Reflector // retained Factor.Refs storage
	f         Factor            // retained Factor header
	maxLevels int
	slab      *work.Slab
	scratch   [][]float64 // per worker, ≥ b1+1 floats
	prioChase func(lvl int) int
}

func stateFor(ws *work.Arena, key work.Key) *reducer {
	if r, ok := ws.Value(key).(*reducer); ok {
		return r
	}
	r := &reducer{}
	ws.SetValue(key, r)
	return r
}

func newReducer(b *matrix.SymBand, b2 int, cfg Config, workers int, ws *work.Arena, tc *trace.Collector) *reducer {
	r := stateFor(ws, cfg.Keys.State)
	r.w.init(b, b2, cfg.Keys.Work, ws)
	n, b1 := b.N, b.KD
	maxLevels := (n-1)/b1 + 2

	// Reflector lattice, retained across solves. Stale entries must be
	// cleared: the V slices point into the recycled slab.
	refs, _ := ws.Value(cfg.Keys.Refs).([]bulge.Reflector)
	if cap(refs) < n*maxLevels {
		refs = make([]bulge.Reflector, n*maxLevels)
		ws.SetValue(cfg.Keys.Refs, refs)
	} else {
		refs = refs[:n*maxLevels]
		clear(refs)
	}

	// Exact slab capacity for every reflector essential.
	capV := 0
	forEachStep(n, b1, b2, func(sw, lvl int) bool {
		_, length := refRow(n, b1, b2, sw, lvl)
		if length >= 2 {
			capV += length - 1
		}
		return true
	})

	r.keys, r.ws, r.tc, r.refs, r.maxLevels = cfg.Keys, ws, tc, refs, maxLevels
	r.slab = ws.SlabOf(cfg.Keys.Slab, capV)
	r.scratch = ws.PerWorker(cfg.Keys.Scratch, workers, b1+1)

	// Graded look-ahead priorities, mirroring stage 1's discipline: the
	// sweep-starting kernels are the critical path (every later sweep's start
	// waits on the band they touch), so they run at panel priority; chase
	// steps within the depth window are boosted by proximity so the blocks the
	// next start needs are released first. Sequenced flattens everything.
	depth := cfg.Lookahead
	if depth == 0 {
		depth = DefaultLookahead
	}
	if cfg.Sequenced {
		r.prioChase = func(int) int { return prioFlat }
	} else {
		r.prioChase = func(lvl int) int {
			if lvl == 0 {
				return prioStart
			}
			if boost := depth - lvl + 1; boost > 0 {
				return prioFlat + boost*64
			}
			return prioFlat
		}
	}
	return r
}

const (
	prioStart = 1 << 13 // sweep-starting kernels (critical path)
	prioFlat  = 10      // base chase priority (and everything when Sequenced)
)

// refRow returns the root row and block length of the reflector slot
// (sw, lvl); length < 1 means the step is a tail (pass-through rows only,
// no reflector recorded).
func refRow(n, b1, b2, sw, lvl int) (row, length int) {
	if lvl == 0 {
		r0 := sw + b2
		return r0, min(b1-b2+1, n-r0)
	}
	prevStart := sw + b2 + (lvl-1)*b1
	nextStart := prevStart + b1
	rowsEnd := min(prevStart+(b1-b2)+b1, n-1)
	return nextStart, rowsEnd - nextStart + 1
}

func (r *reducer) slot(sweep, level int) int { return sweep*r.maxLevels + level }

// startSweep annihilates column sw below subdiagonal b₂ and applies the
// reflector two-sidedly: to the b₂−1 in-band columns on its left and to the
// leading symmetric triangle.
func (r *reducer) startSweep(sw, worker int) {
	b2 := r.w.b2
	r0, len0 := refRow(r.w.n, r.w.b1, b2, sw, 0)
	v, tau := r.w.larfgColumn(sw, r0, len0, r.slab, r.tc)
	r.refs[r.slot(sw, 0)] = bulge.Reflector{Sweep: sw, Level: 0, Row: r0, V: v, Tau: tau}
	r.w.leftUpdate(r0, len0, sw+1, b2-1, v, tau, r.tc)
	r.w.symTwoSided(r0, len0, v, tau, r.scratch[worker], r.tc)
}

// chaseStep right-updates the block below the previous reflector — the b₂−1
// pass-through rows still inside the band plus the bulge rows that spilled
// below it — then annihilates the bulge's first column (keeping the band
// entry at offset exactly b₁) and applies the new reflector from the left
// and two-sidedly.
func (r *reducer) chaseStep(sw, lvl, worker int) {
	n, b1, b2 := r.w.n, r.w.b1, r.w.b2
	prevStart := sw + b2 + (lvl-1)*b1
	prevLen := b1 - b2 + 1 // full, by the walk invariant
	prevEnd := prevStart + prevLen
	nextStart, nextLen := refRow(n, b1, b2, sw, lvl)
	rowsEnd := min(prevEnd-1+b1, n-1)

	prev := &r.refs[r.slot(sw, lvl-1)]
	r.w.rightUpdate(prevEnd, rowsEnd-prevEnd+1, prevStart, prevLen, prev.V, prev.Tau, r.scratch[worker], r.tc)
	if nextLen < 1 {
		return // tail: only pass-through rows, nothing spilled below the band
	}
	var v []float64
	var tau float64
	if nextLen >= 2 {
		v, tau = r.w.larfgColumn(prevStart, nextStart, nextLen, r.slab, r.tc)
	} else {
		v, tau = emptyV, 0
	}
	r.refs[r.slot(sw, lvl)] = bulge.Reflector{Sweep: sw, Level: lvl, Row: nextStart, V: v, Tau: tau}
	if tau != 0 {
		// Remaining bulge columns and pass-through columns in one block.
		r.w.leftUpdate(nextStart, nextLen, prevStart+1, nextStart-prevStart-1, v, tau, r.tc)
		r.w.symTwoSided(nextStart, nextLen, v, tau, r.scratch[worker], r.tc)
	}
}

// deps returns the conservative access list of kernel (sw, lvl): one RW
// resource per b₁-aligned row block its footprint spans, which serializes
// exactly the kernels that can overlap — in submission order, making the
// scheduled execution bitwise identical to the sequential one.
func (r *reducer) deps(sw, lvl int) []sched.Dep {
	n, b1, b2 := r.w.n, r.w.b1, r.w.b2
	var lo, hi int
	if lvl == 0 {
		r0, len0 := refRow(n, b1, b2, sw, 0)
		lo, hi = sw/b1, (r0+len0-1)/b1
	} else {
		prevStart := sw + b2 + (lvl-1)*b1
		rowsEnd := min(prevStart+(b1-b2)+b1, n-1)
		lo, hi = prevStart/b1, rowsEnd/b1
	}
	deps := make([]sched.Dep, 0, hi-lo+1)
	for g := lo; g <= hi; g++ {
		deps = append(deps, sched.RW(g))
	}
	return deps
}

// runSeq executes the kernels in sequential order on the calling goroutine,
// checking for cancellation once per sweep.
func (r *reducer) runSeq(job *sched.Job) {
	forEachStep(r.w.n, r.w.b1, r.w.b2, func(sw, lvl int) bool {
		if lvl == 0 {
			if job.Canceled() {
				return false
			}
			r.startSweep(sw, 0)
		} else {
			r.chaseStep(sw, lvl, 0)
		}
		return true
	})
}

// schedule submits one task per kernel; the scheduler reproduces the
// sequential order through the conservative block dependences, while the
// graded priorities steer the ready queue toward the sweep-start chain.
func (r *reducer) schedule(job *sched.Job, affinity uint64) {
	forEachStep(r.w.n, r.w.b1, r.w.b2, func(sw, lvl int) bool {
		var name string
		var run func(int)
		if lvl == 0 {
			name = kname("SBRCEU", sw, 0)
			run = func(w int) { r.startSweep(sw, w) }
		} else {
			name = kname("SBRREL", sw, lvl)
			run = func(w int) { r.chaseStep(sw, lvl, w) }
		}
		job.Submit(sched.Task{
			Name:     name,
			Priority: r.prioChase(lvl),
			Affinity: affinity,
			Deps:     r.deps(sw, lvl),
			Run:      run,
		})
		return true
	})
}

// finish extracts the narrowed band and compacts the reflector lattice.
func (r *reducer) finish(wantQ bool) *Factor {
	f := &r.f
	*f = Factor{N: r.w.n, B1: r.w.b1, B2: r.w.b2}
	f.Band = r.w.extractBand(r.keys.Band, r.ws)
	if !wantQ {
		return f
	}
	nref := 0
	for i := range r.refs {
		if r.refs[i].V != nil {
			nref++
		}
	}
	if cap(r.out) < nref {
		r.out = make([]bulge.Reflector, 0, nref)
	}
	out := r.out[:0]
	for i := range r.refs {
		if r.refs[i].V != nil {
			out = append(out, r.refs[i])
		}
	}
	r.out = out
	f.Refs = out
	return f
}

// Reduce narrows the symmetric band matrix b (not modified) to bandwidth
// cfg.B2. A nil (or inline) job runs the kernels sequentially — the
// reference execution the scheduled one must match bit-for-bit — while a
// scheduler-backed job runs them as tasks whose dependences reproduce the
// sequential order exactly. If the job is canceled the Factor's contents are
// unspecified and the caller must check job.Err. ws may be nil; when non-nil
// the Factor borrows arena storage and is only valid until the arena is
// recycled. tc may be nil.
func Reduce(b *matrix.SymBand, cfg Config, job *sched.Job, ws *work.Arena, tc *trace.Collector) *Factor {
	if cfg.Keys == (KeySet{}) {
		cfg.Keys = KeysFor(0)
	}
	b2 := max(1, cfg.B2)
	if b.N == 0 || b2 >= b.KD {
		// Nothing to narrow: pass the input through untouched.
		r := stateFor(ws, cfg.Keys.State)
		r.f = Factor{N: b.N, B1: b.KD, B2: b.KD, Band: b}
		return &r.f
	}
	r := newReducer(b, b2, cfg, job.Workers(), ws, tc)
	if job.Parallel() {
		r.schedule(job, cfg.Affinity)
		job.Wait() // error, if any, surfaces through job.Err at the caller
	} else {
		r.runSeq(job)
	}
	return r.finish(cfg.WantQ)
}

// kname builds a task name without fmt to keep submission cheap.
func kname(kind string, s, l int) string {
	return kind + "#" + itoa(s) + "." + itoa(l)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	p := len(buf)
	for v > 0 {
		p--
		buf[p] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[p:])
}
