package sbr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bulge"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/work"
)

func randBand(rng *rand.Rand, n, kd int) *matrix.SymBand {
	b := matrix.NewSymBand(n, kd)
	for j := 0; j < n; j++ {
		for i := j; i <= min(n-1, j+b.KD); i++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	return b
}

// applyS computes S·X in place, S = H₁·H₂⋯ in generation order.
func applyS(refs []bulge.Reflector, x *matrix.Dense) {
	for k := len(refs) - 1; k >= 0; k-- {
		r := refs[k]
		if r.Tau == 0 {
			continue
		}
		l := len(r.V) + 1
		for c := 0; c < x.Cols; c++ {
			dot := x.At(r.Row, c)
			for i := 1; i < l; i++ {
				dot += r.V[i-1] * x.At(r.Row+i, c)
			}
			dot *= r.Tau
			x.Set(r.Row, c, x.At(r.Row, c)-dot)
			for i := 1; i < l; i++ {
				x.Set(r.Row+i, c, x.At(r.Row+i, c)-dot*r.V[i-1])
			}
		}
	}
}

func identity(n int) *matrix.Dense {
	d := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, 1)
	}
	return d
}

// frobDiff returns ‖X − Y‖_F / max(1, ‖X‖_F).
func frobDiff(x, y *matrix.Dense) float64 {
	var num, den float64
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < x.Cols; j++ {
			d := x.At(i, j) - y.At(i, j)
			num += d * d
			den += x.At(i, j) * x.At(i, j)
		}
	}
	return math.Sqrt(num) / math.Max(1, math.Sqrt(den))
}

// mulSym returns S·B·Sᵀ for dense S and symmetric dense B.
func mulSym(s, b *matrix.Dense) *matrix.Dense {
	n := s.Rows
	sb := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc += s.At(i, k) * b.At(k, j)
			}
			sb.Set(i, j, acc)
		}
	}
	out := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc += sb.At(i, k) * s.At(j, k)
			}
			out.Set(i, j, acc)
		}
	}
	return out
}

// TestSBRReduceSequential checks, for a grid of (n, b1, b2), that Reduce
// produces a genuinely narrowed band and an orthogonal S with
// A = S·B₂·Sᵀ to working accuracy.
func TestSBRReduceSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct{ n, b1, b2 int }{
		{30, 6, 2}, {40, 8, 3}, {37, 12, 5}, {25, 9, 8},
		{40, 10, 1}, {16, 15, 4}, {9, 5, 2}, {5, 4, 3},
	}
	for _, tc := range cases {
		b := randBand(rng, tc.n, tc.b1)
		a := b.ToDense()
		f := Reduce(b, Config{B2: tc.b2, WantQ: true}, nil, nil, nil)
		if f.Band.KD != tc.b2 {
			t.Fatalf("n=%d b1=%d b2=%d: output bandwidth %d", tc.n, tc.b1, tc.b2, f.Band.KD)
		}
		// The band output must be exactly banded (the extraction cannot have
		// truncated anything: the working storage outside b2 must be zero).
		s := identity(tc.n)
		applyS(f.Refs, s)
		// Orthogonality of S.
		ss := mulSym(s, identity(tc.n))
		if d := frobDiff(identity(tc.n), ss); d > 1e-13*float64(tc.n) {
			t.Fatalf("n=%d b1=%d b2=%d: S not orthogonal: %g", tc.n, tc.b1, tc.b2, d)
		}
		// Reconstruction A = S·B₂·Sᵀ.
		rec := mulSym(s, f.Band.ToDense())
		if d := frobDiff(a, rec); d > 1e-13*float64(tc.n) {
			t.Fatalf("n=%d b1=%d b2=%d: reconstruction error %g", tc.n, tc.b1, tc.b2, d)
		}
	}
}

// TestSBRLeavesNoFill checks that after the sweep the working band holds no
// entry below subdiagonal b₂ — i.e. the narrowing is real, not a truncation
// by extractBand.
func TestSBRLeavesNoFill(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, b1, b2 := 40, 8, 3
	b := randBand(rng, n, b1)
	rr := newReducer(b, b2, Config{B2: b2, WantQ: true, Keys: KeysFor(0)}, 1, work.NewArena(), nil)
	rr.runSeq(nil)
	for j := 0; j < n; j++ {
		for i := j + b2 + 1; i <= min(n-1, j+rr.w.kd); i++ {
			if v := rr.w.at(i, j); v != 0 {
				t.Fatalf("fill left at (%d,%d): %g", i, j, v)
			}
		}
	}
}

// TestSBRChainToTridiagonal narrows in two sweeps and chases the result,
// verifying the composed factorization A = S₁·S₂·Q₂·T·Q₂ᵀ·S₂ᵀ·S₁ᵀ.
func TestSBRChainToTridiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 45
	b := randBand(rng, n, 16)
	a := b.ToDense()
	f1 := Reduce(b, Config{B2: 8, WantQ: true, Keys: KeysFor(0)}, nil, nil, nil)
	f2 := Reduce(f1.Band, Config{B2: 3, WantQ: true, Keys: KeysFor(1)}, nil, nil, nil)
	res := bulge.Chase(f2.Band, nil, 0, true, nil, nil)

	q := identity(n)
	applyS(res.Refs, q)
	applyS(f2.Refs, q)
	applyS(f1.Refs, q)
	rec := mulSym(q, res.T.ToDense())
	if d := frobDiff(a, rec); d > 1e-13*float64(n) {
		t.Fatalf("composed reconstruction error %g", d)
	}
}

// TestSBRScheduledBitwise checks that the scheduled execution is bitwise
// identical to the sequential reference at several worker counts, lookahead
// depths, and under the Sequenced kill-switch.
func TestSBRScheduledBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, b1, b2 := 48, 9, 3
	b := randBand(rng, n, b1)
	ref := Reduce(b, Config{B2: b2, WantQ: true}, nil, nil, nil)
	for _, workers := range []int{1, 2, 4, 7} {
		for _, cfg := range []Config{
			{B2: b2, WantQ: true},
			{B2: b2, WantQ: true, Lookahead: 5},
			{B2: b2, WantQ: true, Sequenced: true},
		} {
			s := sched.New(workers)
			got := Reduce(b, cfg, s.NewJob(nil), nil, nil)
			s.Shutdown()
			if len(got.Refs) != len(ref.Refs) {
				t.Fatalf("workers=%d: reflector count %d vs %d", workers, len(got.Refs), len(ref.Refs))
			}
			for i := range ref.Refs {
				if ref.Refs[i].Tau != got.Refs[i].Tau || ref.Refs[i].Row != got.Refs[i].Row {
					t.Fatalf("workers=%d: reflector %d differs", workers, i)
				}
				for k := range ref.Refs[i].V {
					if ref.Refs[i].V[k] != got.Refs[i].V[k] {
						t.Fatalf("workers=%d: reflector %d V[%d] differs", workers, i, k)
					}
				}
			}
			for i := range ref.Band.Data {
				if ref.Band.Data[i] != got.Band.Data[i] {
					t.Fatalf("workers=%d: band data %d differs", workers, i)
				}
			}
		}
	}
}

// TestSBRArenaReuse runs two different problems through one arena and checks
// the second result against a fresh computation (stale lattice slots and
// slab storage must not leak through).
func TestSBRArenaReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ws := work.NewArena()
	big := randBand(rng, 50, 10)
	Reduce(big, Config{B2: 4, WantQ: true}, nil, ws, nil)
	small := randBand(rng, 30, 7)
	got := Reduce(small, Config{B2: 3, WantQ: true}, nil, ws, nil)
	ref := Reduce(small, Config{B2: 3, WantQ: true}, nil, nil, nil)
	if len(got.Refs) != len(ref.Refs) {
		t.Fatalf("reflector count %d vs %d", len(got.Refs), len(ref.Refs))
	}
	for i := range ref.Refs {
		if ref.Refs[i].Tau != got.Refs[i].Tau || ref.Refs[i].Row != got.Refs[i].Row {
			t.Fatalf("reflector %d differs after arena reuse", i)
		}
	}
	for i := range ref.Band.Data {
		if ref.Band.Data[i] != got.Band.Data[i] {
			t.Fatalf("band data %d differs after arena reuse", i)
		}
	}
}

// TestSBRPassThrough: a target bandwidth ≥ the input is a no-op that aliases
// the input band.
func TestSBRPassThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := randBand(rng, 20, 4)
	f := Reduce(b, Config{B2: 4, WantQ: true}, nil, nil, nil)
	if f.Band != b || f.Refs != nil {
		t.Fatal("pass-through must alias the input and carry no reflectors")
	}
	if f.B1 != 4 || f.B2 != 4 {
		t.Fatalf("pass-through bandwidths %d→%d", f.B1, f.B2)
	}
}
