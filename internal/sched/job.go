package sched

import (
	"context"
	"errors"
)

// ErrStopped is the sticky error of a job whose task was submitted after the
// scheduler shut down; the task is dropped rather than run (and rather than
// panicking the submitter).
var ErrStopped = errors.New("sched: scheduler is shut down")

// Job is one logical stream of tasks submitted to a (possibly shared)
// Scheduler: it carries its own dependence frontier, completion count, and
// cancellation context. Jobs are what make a Scheduler reusable across
// solves and safe to share between concurrent solves — two jobs never
// interfere through resource IDs, and each Wait drains only its own tasks.
//
// A Job also abstracts sequential execution: a job created with Inline (or
// a nil *Job) runs every task synchronously at Submit, so stage code is
// written once against the Job API and works in all three modes
// (sequential, scheduled, canceled).
type Job struct {
	s     *Scheduler // nil → inline execution
	ctx   context.Context
	label string // attribution label carried into TraceEvents ("" = anonymous)

	// bias is added to the Priority of every task submitted on the job. It
	// is the cross-job steering knob of the pipelined batch executor: a
	// solve in a late (drained) phase biases its tasks above the early-phase
	// tasks of newly admitted solves, so items near completion finish and
	// release their workspace before new items grab workers. Written before
	// the first Submit, read under s.mu afterwards.
	bias int

	// Scheduler-mode state, guarded by s.mu.
	resources map[int]*resourceState
	pending   int

	// canceled/err: in inline mode touched only by the submitting
	// goroutine; in scheduler mode guarded by s.mu.
	canceled bool
	err      error
}

// NewJob creates a job on the scheduler. ctx cancellation makes the job's
// remaining tasks no-ops: they drain through the DAG without running their
// bodies, Wait returns ctx's error, and the scheduler stays usable for
// other jobs. A nil ctx means no cancellation.
func (s *Scheduler) NewJob(ctx context.Context) *Job {
	return s.NewJobNamed(ctx, "")
}

// NewJobNamed is NewJob with an attribution label: every TraceEvent produced
// by the job's tasks carries it, so co-scheduled solves sharing one pool can
// be told apart in traces (the per-solve namespacing of the batch layer).
func (s *Scheduler) NewJobNamed(ctx context.Context, label string) *Job {
	return &Job{s: s, ctx: ctx, label: label, resources: make(map[int]*resourceState)}
}

// SetBias sets the priority bias added to every task subsequently submitted
// on the job (see the bias field). It must be called before the first Submit
// and returns the job for chaining. Inline jobs ignore the bias — they run
// tasks immediately, so ordering never arises.
func (j *Job) SetBias(bias int) *Job {
	if j != nil {
		j.bias = bias
	}
	return j
}

// Label returns the job's attribution label.
func (j *Job) Label() string {
	if j == nil {
		return ""
	}
	return j.label
}

// Inline creates a schedulerless job: Submit runs each task immediately on
// the calling goroutine, honoring ctx between tasks. Use a nil *Job instead
// when cancellation is not needed.
func Inline(ctx context.Context) *Job {
	return &Job{ctx: ctx}
}

// Parallel reports whether tasks run on a scheduler worker pool. Stage code
// uses it to pick the allocation-free sequential path.
func (j *Job) Parallel() bool { return j != nil && j.s != nil }

// Workers returns the width of the executing pool (1 for inline/nil jobs).
func (j *Job) Workers() int {
	if j == nil || j.s == nil {
		return 1
	}
	return j.s.workers
}

// Canceled reports whether the job's context has been canceled. It is the
// cheap check sequential stage loops make between kernels; once it returns
// true the job's error is sticky.
func (j *Job) Canceled() bool {
	if j == nil {
		return false
	}
	if j.s != nil {
		j.s.mu.Lock()
		defer j.s.mu.Unlock()
		j.observeCancelLocked()
		return j.canceled
	}
	j.observeCancelLocked()
	return j.canceled
}

// observeCancelLocked latches ctx cancellation into the job state. In
// scheduler mode the caller holds s.mu; in inline mode only the submitting
// goroutine touches the state.
func (j *Job) observeCancelLocked() {
	if j.canceled || j.ctx == nil {
		return
	}
	if err := j.ctx.Err(); err != nil {
		j.canceled = true
		j.err = err
	}
}

// Submit registers a task on the job. Inline jobs (and nil jobs) run it
// immediately; canceled jobs drop the body.
func (j *Job) Submit(t Task) {
	if t.Run == nil {
		panic("sched: task without body")
	}
	if j == nil {
		t.Run(0)
		return
	}
	if j.s == nil {
		j.observeCancelLocked()
		if j.canceled {
			return
		}
		t.Run(0)
		return
	}
	j.s.submit(j, t)
}

// Wait blocks until every task submitted on the job has finished (or been
// skipped due to cancellation) and returns the job's error: nil, or the
// context error if the job was canceled mid-DAG.
func (j *Job) Wait() error {
	if j == nil {
		return nil
	}
	if j.s == nil {
		return j.err
	}
	s := j.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		panic("sched: Wait on a deferred scheduler that was never started")
	}
	for j.pending > 0 {
		s.cond.Wait()
	}
	j.observeCancelLocked()
	return j.err
}

// Err returns the job's sticky error without waiting (nil while healthy).
func (j *Job) Err() error {
	if j == nil {
		return nil
	}
	if j.s == nil {
		j.observeCancelLocked()
		return j.err
	}
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	j.observeCancelLocked()
	return j.err
}
