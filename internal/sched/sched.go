// Package sched implements the task runtime the tile algorithms are built
// on. It provides the two execution strategies the paper combines:
//
//   - A dynamic scheduler in the style of PLASMA's QUARK: tasks are submitted
//     with their read/write sets over abstract resources (tile handles); the
//     runtime infers RAW/WAR/WAW dependences from the submission order,
//     builds the DAG implicitly, and executes ready tasks on a worker pool.
//     Tasks carry priorities (to push the critical path) and an optional
//     worker-affinity mask, which implements the paper's core restriction
//     for the memory-bound bulge-chasing stage.
//
//   - A static scheduler (see static.go) that replays a precomputed
//     per-worker order with a progress table, as PLASMA's static runtime
//     does for the second stage.
//
// Both honour the same dependence semantics: the execution is equivalent to
// executing the tasks sequentially in submission order.
package sched

import (
	"bytes"
	"container/heap"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"
)

// AccessMode describes how a task uses a resource.
type AccessMode uint8

const (
	// Read declares a read-only access.
	Read AccessMode = iota
	// Write declares a write-only access (the previous contents are not
	// read). Dependence-wise it behaves like ReadWrite.
	Write
	// ReadWrite declares an in-place update.
	ReadWrite
)

// Dep is one entry of a task's access list: the resource it touches and how.
// Resources are opaque integers; the caller (e.g. the tile layer) assigns
// them. Distinct resources are assumed not to alias.
type Dep struct {
	Resource int
	Mode     AccessMode
}

// R is shorthand for a read dependence.
func R(res int) Dep { return Dep{Resource: res, Mode: Read} }

// W is shorthand for a write dependence.
func W(res int) Dep { return Dep{Resource: res, Mode: Write} }

// RW is shorthand for a read-write dependence.
func RW(res int) Dep { return Dep{Resource: res, Mode: ReadWrite} }

// Task is a unit of work with its declared data accesses.
type Task struct {
	// Name labels the task in traces ("GEQRT(2,1)").
	Name string
	// Run executes the task body. worker is the index of the executing
	// worker in [0, Workers).
	Run func(worker int)
	// Deps is the access list used for dependence inference.
	Deps []Dep
	// Priority orders the ready queue: higher runs first. Use it to push
	// critical-path tasks (panel factorizations) ahead of trailing updates.
	Priority int
	// Affinity restricts execution to the workers whose bit is set. Zero
	// means any worker. This implements the paper's core restriction for
	// memory-bound stages.
	Affinity uint64
}

// TraceEvent records one executed task for post-mortem analysis (Gantt
// charts, per-kernel time accounting).
type TraceEvent struct {
	Name       string
	Worker     int
	Start, End time.Duration // relative to scheduler start
	Seq        int           // submission sequence number
	Job        string        // label of the job the task ran under ("" for the default job)
}

// node is the runtime state of a submitted task.
type node struct {
	task      Task
	job       *Job // the job the task belongs to
	seq       int
	prio      int     // effective priority: Task.Priority + the job's bias
	waitCount int     // unsatisfied dependences
	children  []*node // tasks that depend on this one
	done      bool
}

// resourceState tracks the last-writer/reader frontier per resource.
type resourceState struct {
	lastWriter *node
	readers    []*node // readers since lastWriter
}

// Scheduler is the dynamic dependence-tracking runtime. Create with New,
// submit tasks with Submit (from any goroutine, though dependence semantics
// follow the global submission order, so concurrent submitters must do their
// own ordering), and call Wait to drain.
//
// A Scheduler is designed to be long-lived: a persistent worker pool serves
// any number of Jobs (see NewJob), each with its own dependence frontier,
// completion tracking and cancellation context, so concurrent solves can
// share one pool without false dependences. Submit/Wait remain as the
// single-stream convenience API backed by an implicit default job.
type Scheduler struct {
	workers int
	trace   bool

	mu         sync.Mutex
	cond       *sync.Cond
	defaultJob *Job // backs the legacy Submit/Wait API
	ready      readyQueues
	pending    int // submitted but not finished, across all jobs
	started    bool
	stopped    bool
	seq        int
	startTime  time.Time
	events     []TraceEvent
	wg         sync.WaitGroup
}

// Option configures a Scheduler.
type Option func(*Scheduler)

// WithTrace enables recording of TraceEvents for every executed task.
func WithTrace() Option { return func(s *Scheduler) { s.trace = true } }

// Deferred creates the scheduler paused: no task runs until Start is called.
// Useful to build the whole DAG first (and in tests, to make priority order
// observable).
func Deferred() Option { return func(s *Scheduler) { s.started = false } }

// MaxWorkers is the widest pool New accepts: affinity masks are 64-bit, one
// bit per worker. Public entry points must clamp (or reject) user-supplied
// widths against this bound before reaching New — New itself panics, which is
// acceptable only for internal callers that pass validated values.
const MaxWorkers = 64

// AffinityMask returns the Task.Affinity mask selecting the first w workers
// (the paper's core-restriction shape, shared by the bulge-chasing and
// tridiagonal stages). w is clamped to [1, MaxWorkers]; w = MaxWorkers
// selects every worker explicitly.
func AffinityMask(w int) uint64 {
	if w < 1 {
		w = 1
	}
	if w >= MaxWorkers {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// New creates a dynamic scheduler with the given number of workers. Workers
// are goroutines; on a machine with fewer cores they time-share, which
// preserves the dependence semantics (and lets the scheduler logic be tested
// at any width).
func New(workers int, opts ...Option) *Scheduler {
	if workers < 1 {
		panic("sched: need at least one worker")
	}
	if workers > MaxWorkers {
		panic("sched: at most 64 workers (affinity masks are 64-bit)")
	}
	s := &Scheduler{
		workers: workers,
		started: true,
	}
	s.cond = sync.NewCond(&s.mu)
	for _, o := range opts {
		o(s)
	}
	s.startTime = time.Now()
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.worker(w)
	}
	return s
}

// Workers reports the worker pool width.
func (s *Scheduler) Workers() int { return s.workers }

// Submit registers a task on the scheduler's default job. Dependences are
// inferred against previously submitted tasks from the access list.
func (s *Scheduler) Submit(t Task) {
	if t.Run == nil {
		panic("sched: task without body")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.defaultJob == nil {
		s.defaultJob = &Job{s: s, resources: make(map[int]*resourceState)}
	}
	s.submitLocked(s.defaultJob, t)
}

// submit registers a task on an explicit job.
func (s *Scheduler) submit(j *Job, t Task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.submitLocked(j, t)
}

func (s *Scheduler) submitLocked(j *Job, t Task) {
	if s.stopped {
		// A submit that races Shutdown (a solve snapshotting the scheduler
		// just before Close) must not panic from library code: the task is
		// dropped and the job turns sticky-failed, so the solve's next
		// Err/Wait reports ErrStopped instead of crashing the process.
		if !j.canceled {
			j.canceled = true
			j.err = ErrStopped
		}
		return
	}
	n := &node{task: t, job: j, seq: s.seq, prio: t.Priority + j.bias}
	s.seq++
	s.pending++
	j.pending++

	// Infer dependences. A resource may appear more than once in the access
	// list (e.g. a two-sided kernel reading and writing the same tile); the
	// strongest mode wins.
	strongest := make(map[int]AccessMode, len(t.Deps))
	for _, d := range t.Deps {
		if cur, ok := strongest[d.Resource]; !ok || modeRank(d.Mode) > modeRank(cur) {
			strongest[d.Resource] = d.Mode
		}
	}
	for res, mode := range strongest {
		st := j.resources[res]
		if st == nil {
			st = &resourceState{}
			j.resources[res] = st
		}
		switch mode {
		case Read:
			if st.lastWriter != nil && !st.lastWriter.done {
				st.lastWriter.children = append(st.lastWriter.children, n)
				n.waitCount++
			}
			st.readers = append(st.readers, n)
		default: // Write, ReadWrite
			if st.lastWriter != nil && !st.lastWriter.done {
				st.lastWriter.children = append(st.lastWriter.children, n)
				n.waitCount++
			}
			for _, r := range st.readers {
				if r != n && !r.done {
					r.children = append(r.children, n)
					n.waitCount++
				}
			}
			st.lastWriter = n
			st.readers = st.readers[:0]
		}
	}
	if n.waitCount == 0 {
		s.ready.push(n)
		s.cond.Broadcast()
	}
}

func modeRank(m AccessMode) int {
	if m == Read {
		return 0
	}
	return 1
}

// Start releases a scheduler created with Deferred.
func (s *Scheduler) Start() {
	s.mu.Lock()
	s.started = true
	s.startTime = time.Now()
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Wait blocks until every submitted task has finished. The scheduler remains
// usable: more tasks may be submitted afterwards.
func (s *Scheduler) Wait() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		panic("sched: Wait on a deferred scheduler that was never started")
	}
	for s.pending > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Shutdown drains remaining work and stops the workers. The scheduler cannot
// be used afterwards.
func (s *Scheduler) Shutdown() {
	s.mu.Lock()
	if !s.started {
		s.started = true
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	s.Wait()
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// Trace returns the recorded events (only meaningful with WithTrace).
func (s *Scheduler) Trace() []TraceEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceEvent, len(s.events))
	copy(out, s.events)
	return out
}

// workerGoros maps the goroutine id of every live scheduler worker to its
// owning *Scheduler. It backs OnWorkerGoroutine, the re-entrance probe that
// lets blocking entry points (SolveBatch's admission gate, whole-phase task
// waits) refuse to run from inside one of their own tasks instead of
// deadlocking on workers that are already occupied by the caller.
var workerGoros sync.Map

// curGoroutineID extracts the calling goroutine's id from the first line of
// its stack trace ("goroutine N [running]:"). It is the standard trick for
// goroutine identity in the absence of goroutine-local storage; the cost is
// one runtime.Stack call, paid once per registration or probe — never per
// task.
func curGoroutineID() uint64 {
	var buf [64]byte
	b := buf[:runtime.Stack(buf[:], false)]
	b = bytes.TrimPrefix(b, []byte("goroutine "))
	if i := bytes.IndexByte(b, ' '); i >= 0 {
		b = b[:i]
	}
	id, _ := strconv.ParseUint(string(b), 10, 64)
	return id
}

// OnWorkerGoroutine reports whether the calling goroutine is one of this
// scheduler's workers — i.e. whether the caller is executing inside a task.
// Code that would block waiting for scheduler capacity (such as submitting
// work and waiting on it) must not do so from a worker goroutine; this probe
// makes that error detectable so it can surface as a typed error instead of
// a deadlock.
func (s *Scheduler) OnWorkerGoroutine() bool {
	owner, ok := workerGoros.Load(curGoroutineID())
	return ok && owner.(*Scheduler) == s
}

func (s *Scheduler) worker(id int) {
	defer s.wg.Done()
	gid := curGoroutineID()
	workerGoros.Store(gid, s)
	defer workerGoros.Delete(gid)
	mask := uint64(1) << uint(id)
	for {
		s.mu.Lock()
		var n *node
		for {
			if s.started {
				n = s.ready.popFor(mask)
				if n != nil {
					break
				}
			}
			if s.stopped {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
		}
		// Latch cancellation while still holding the lock; a canceled
		// job's tasks drain through the DAG without running their bodies.
		j := n.job
		j.observeCancelLocked()
		skip := j.canceled
		s.mu.Unlock()

		start := time.Since(s.startTime)
		if !skip {
			n.task.Run(id)
		}
		end := time.Since(s.startTime)

		s.mu.Lock()
		n.done = true
		if s.trace && !skip {
			s.events = append(s.events, TraceEvent{
				Name: n.task.Name, Worker: id, Start: start, End: end, Seq: n.seq,
				Job: n.job.label,
			})
		}
		for _, c := range n.children {
			c.waitCount--
			if c.waitCount == 0 {
				s.ready.push(c)
			}
		}
		n.children = nil
		s.pending--
		j.pending--
		s.mu.Unlock()
		s.cond.Broadcast()
	}
}

// readyQueues holds one priority heap per distinct affinity mask. The number
// of distinct masks in practice is tiny (everything, plus the restricted set
// used by the bulge-chasing stage), so a worker checks each heap whose mask
// includes it and takes the globally best candidate.
type readyQueues struct {
	heaps map[uint64]*taskHeap
}

func (q *readyQueues) push(n *node) {
	if q.heaps == nil {
		q.heaps = make(map[uint64]*taskHeap)
	}
	m := n.task.Affinity
	h := q.heaps[m]
	if h == nil {
		h = &taskHeap{}
		q.heaps[m] = h
	}
	heap.Push(h, n)
}

// popFor removes and returns the best ready task runnable by a worker with
// the given mask, or nil.
func (q *readyQueues) popFor(workerMask uint64) *node {
	var best *taskHeap
	for m, h := range q.heaps {
		if h.Len() == 0 {
			continue
		}
		if m != 0 && m&workerMask == 0 {
			continue
		}
		if best == nil || less((*h)[0], (*best)[0]) {
			best = h
		}
	}
	if best == nil {
		return nil
	}
	return heap.Pop(best).(*node)
}

// less orders the ready queue: higher effective priority (the task's own
// priority plus its job's bias) first, then submission order (FIFO) for
// determinism.
func less(a, b *node) bool {
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.seq < b.seq
}

type taskHeap []*node

func (h taskHeap) Len() int            { return len(h) }
func (h taskHeap) Less(i, j int) bool  { return less(h[i], h[j]) }
func (h taskHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *taskHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// String implements fmt.Stringer for debugging.
func (s *Scheduler) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("sched{workers=%d pending=%d submitted=%d}", s.workers, s.pending, s.seq)
}
