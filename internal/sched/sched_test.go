package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSequentialChain(t *testing.T) {
	// A chain of RW tasks on one resource must execute in submission order.
	s := New(4)
	defer s.Shutdown()
	var order []int
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		i := i
		s.Submit(Task{
			Name: "chain",
			Deps: []Dep{RW(1)},
			Run: func(int) {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			},
		})
	}
	s.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("chain executed out of order at %d: %v", i, order[:i+1])
		}
	}
}

func TestReadersRunConcurrentlyBetweenWriters(t *testing.T) {
	// writer; N readers; writer. The second writer must see all readers done.
	s := New(4)
	defer s.Shutdown()
	var stage int32 // 0 before w1, 1 after w1, 2 after w2
	var readersDone int32
	s.Submit(Task{Name: "w1", Deps: []Dep{W(7)}, Run: func(int) { atomic.StoreInt32(&stage, 1) }})
	const nr = 16
	for i := 0; i < nr; i++ {
		s.Submit(Task{Name: "r", Deps: []Dep{R(7)}, Run: func(int) {
			if atomic.LoadInt32(&stage) != 1 {
				t.Error("reader ran before first writer or after second")
			}
			atomic.AddInt32(&readersDone, 1)
		}})
	}
	s.Submit(Task{Name: "w2", Deps: []Dep{W(7)}, Run: func(int) {
		if atomic.LoadInt32(&readersDone) != nr {
			t.Errorf("second writer ran with %d/%d readers done", readersDone, nr)
		}
		atomic.StoreInt32(&stage, 2)
	}})
	s.Wait()
	if stage != 2 {
		t.Fatal("not all tasks ran")
	}
}

func TestIndependentTasksParallel(t *testing.T) {
	// With w workers and tasks that block on a shared barrier, all workers
	// must be used (proves tasks on distinct resources run concurrently).
	const w = 4
	s := New(w)
	defer s.Shutdown()
	var barrier sync.WaitGroup
	barrier.Add(w)
	workers := make(chan int, w)
	for i := 0; i < w; i++ {
		i := i
		s.Submit(Task{
			Name: "par",
			Deps: []Dep{W(100 + i)},
			Run: func(worker int) {
				barrier.Done()
				barrier.Wait() // deadlocks unless all w run simultaneously
				workers <- worker
			},
		})
	}
	donech := make(chan struct{})
	go func() { s.Wait(); close(donech) }()
	select {
	case <-donech:
	case <-time.After(10 * time.Second):
		t.Fatal("parallel tasks deadlocked: workers not running concurrently")
	}
	seen := map[int]bool{}
	for i := 0; i < w; i++ {
		seen[<-workers] = true
	}
	if len(seen) != w {
		t.Fatalf("expected %d distinct workers, got %d", w, len(seen))
	}
}

func TestPriorityOrder(t *testing.T) {
	// With a deferred scheduler and one worker, independent tasks must run
	// in priority order.
	s := New(1, Deferred())
	defer s.Shutdown()
	var order []int
	var mu sync.Mutex
	prios := []int{1, 5, 3, 9, 0}
	for i, p := range prios {
		i, p := i, p
		s.Submit(Task{
			Name:     "p",
			Priority: p,
			Deps:     []Dep{W(200 + i)},
			Run: func(int) {
				mu.Lock()
				order = append(order, p)
				mu.Unlock()
			},
		})
	}
	s.Start()
	s.Wait()
	for i := 1; i < len(order); i++ {
		if order[i-1] < order[i] {
			t.Fatalf("priority order violated: %v", order)
		}
	}
}

func TestAffinityRestriction(t *testing.T) {
	s := New(4)
	defer s.Shutdown()
	const target = 2
	for i := 0; i < 20; i++ {
		s.Submit(Task{
			Name:     "aff",
			Affinity: 1 << target,
			Deps:     []Dep{RW(1)},
			Run: func(worker int) {
				if worker != target {
					t.Errorf("affinity task ran on worker %d, want %d", worker, target)
				}
			},
		})
	}
	s.Wait()
}

func TestAffinityZeroMeansAny(t *testing.T) {
	s := New(3)
	defer s.Shutdown()
	var ran int32
	for i := 0; i < 30; i++ {
		i := i
		s.Submit(Task{Deps: []Dep{W(i)}, Run: func(int) { atomic.AddInt32(&ran, 1) }, Name: "any"})
	}
	s.Wait()
	if ran != 30 {
		t.Fatalf("ran %d/30", ran)
	}
}

func TestWaitThenReuse(t *testing.T) {
	s := New(2)
	defer s.Shutdown()
	var a, b int32
	s.Submit(Task{Name: "a", Deps: []Dep{W(1)}, Run: func(int) { atomic.AddInt32(&a, 1) }})
	s.Wait()
	if a != 1 {
		t.Fatal("first batch incomplete")
	}
	s.Submit(Task{Name: "b", Deps: []Dep{R(1)}, Run: func(int) { atomic.AddInt32(&b, 1) }})
	s.Wait()
	if b != 1 {
		t.Fatal("second batch incomplete")
	}
}

func TestTraceRecordsAllTasks(t *testing.T) {
	s := New(2, WithTrace())
	for i := 0; i < 10; i++ {
		s.Submit(Task{Name: "tr", Deps: []Dep{RW(5)}, Run: func(int) {}})
	}
	s.Wait()
	ev := s.Trace()
	s.Shutdown()
	if len(ev) != 10 {
		t.Fatalf("trace has %d events, want 10", len(ev))
	}
	for _, e := range ev {
		if e.End < e.Start {
			t.Fatalf("event %q ends before it starts", e.Name)
		}
	}
}

// TestSerializabilityProperty drives random task graphs and checks that the
// execution is equivalent to sequential submission order: every reader of a
// resource observes exactly the number of writes submitted before it, and
// the final write count matches the number of writers.
func TestSerializabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nRes = 6
		nTasks := 20 + rng.Intn(60)
		var counters [nRes]int64

		type expect struct {
			task     int
			resource int
			want     int64
			got      *int64
		}
		var expects []expect
		writesSoFar := [nRes]int64{}

		s := New(1 + rng.Intn(7))
		for i := 0; i < nTasks; i++ {
			nDeps := 1 + rng.Intn(3)
			var deps []Dep
			var reads, writes []int
			used := map[int]bool{}
			for d := 0; d < nDeps; d++ {
				res := rng.Intn(nRes)
				if used[res] {
					continue
				}
				used[res] = true
				if rng.Intn(2) == 0 {
					deps = append(deps, R(res))
					reads = append(reads, res)
				} else {
					deps = append(deps, RW(res))
					writes = append(writes, res)
				}
			}
			for _, res := range reads {
				e := expect{task: i, resource: res, want: writesSoFar[res], got: new(int64)}
				expects = append(expects, e)
				res := res
				got := e.got
				deps := deps
				s.Submit(Task{
					Name: "reader",
					Deps: deps,
					Run: func(int) {
						atomic.StoreInt64(got, atomic.LoadInt64(&counters[res]))
					},
				})
				// One submission per read expectation keeps bookkeeping
				// simple; writers get their own task below.
				deps = nil
				_ = deps
			}
			for _, res := range writes {
				res := res
				s.Submit(Task{
					Name: "writer",
					Deps: []Dep{RW(res)},
					Run: func(int) {
						atomic.AddInt64(&counters[res], 1)
					},
				})
				writesSoFar[res]++
			}
		}
		s.Wait()
		s.Shutdown()
		for _, e := range expects {
			if *e.got != e.want {
				t.Logf("seed %d: task %d read resource %d = %d, want %d", seed, e.task, e.resource, *e.got, e.want)
				return false
			}
		}
		for r := 0; r < nRes; r++ {
			if counters[r] != writesSoFar[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateResourceInDeps(t *testing.T) {
	// A task listing the same resource as Read and Write must behave as a
	// writer (strongest mode wins) and not deadlock on itself.
	s := New(2)
	defer s.Shutdown()
	var v int64
	s.Submit(Task{Name: "w", Deps: []Dep{W(3)}, Run: func(int) { atomic.StoreInt64(&v, 1) }})
	s.Submit(Task{Name: "rw", Deps: []Dep{R(3), W(3)}, Run: func(int) {
		if atomic.LoadInt64(&v) != 1 {
			t.Error("mixed-mode task ran before its writer dependence")
		}
		atomic.StoreInt64(&v, 2)
	}})
	s.Submit(Task{Name: "r", Deps: []Dep{R(3)}, Run: func(int) {
		if atomic.LoadInt64(&v) != 2 {
			t.Error("reader did not see mixed-mode writer")
		}
	}})
	s.Wait()
}

func TestStaticScheduleRespectsAfter(t *testing.T) {
	// Build a chain 0←1←2...←n across round-robin workers.
	const n = 40
	var order []int
	var mu sync.Mutex
	tasks := make([]StaticTask, n)
	for i := 0; i < n; i++ {
		i := i
		var after []int
		if i > 0 {
			after = []int{i - 1}
		}
		tasks[i] = StaticTask{
			Name:  "st",
			After: after,
			Run: func(int) {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			},
		}
	}
	RunStatic(RoundRobinSchedule(tasks, 4))
	if len(order) != n {
		t.Fatalf("ran %d/%d static tasks", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("static chain out of order: %v", order)
		}
	}
}

func TestStaticDiamond(t *testing.T) {
	// Diamond: 0 → {1,2} → 3.
	var seen [4]int32
	tasks := []StaticTask{
		{Name: "top", Run: func(int) { atomic.StoreInt32(&seen[0], 1) }},
		{Name: "l", After: []int{0}, Run: func(int) {
			if atomic.LoadInt32(&seen[0]) != 1 {
				panic("l before top")
			}
			atomic.StoreInt32(&seen[1], 1)
		}},
		{Name: "r", After: []int{0}, Run: func(int) {
			if atomic.LoadInt32(&seen[0]) != 1 {
				panic("r before top")
			}
			atomic.StoreInt32(&seen[2], 1)
		}},
		{Name: "bot", After: []int{1, 2}, Run: func(int) {
			if atomic.LoadInt32(&seen[1]) != 1 || atomic.LoadInt32(&seen[2]) != 1 {
				panic("bot before l/r")
			}
			atomic.StoreInt32(&seen[3], 1)
		}},
	}
	RunStatic(RoundRobinSchedule(tasks, 3))
	if seen[3] != 1 {
		t.Fatal("diamond did not complete")
	}
}

func TestSchedulerStress(t *testing.T) {
	// Hammer the scheduler with a wide mix of dependence patterns under the
	// race detector.
	s := New(8)
	defer s.Shutdown()
	var total int64
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		res := rng.Intn(32)
		mode := RW(res)
		if rng.Intn(3) == 0 {
			mode = R(res)
		}
		s.Submit(Task{
			Name: "stress",
			Deps: []Dep{mode, R(rng.Intn(32))},
			Run:  func(int) { atomic.AddInt64(&total, 1) },
		})
	}
	s.Wait()
	if total != 2000 {
		t.Fatalf("ran %d/2000", total)
	}
}

func TestWorkersAndString(t *testing.T) {
	s := New(3)
	defer s.Shutdown()
	if s.Workers() != 3 {
		t.Fatalf("Workers = %d", s.Workers())
	}
	if str := s.String(); str == "" {
		t.Fatal("String empty")
	}
	// Constructor guards.
	for _, bad := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d) should panic", bad)
				}
			}()
			New(bad)
		}()
	}
	// Task without body.
	defer func() {
		if recover() == nil {
			t.Fatal("Submit without Run should panic")
		}
	}()
	s.Submit(Task{Name: "empty"})
}

func TestJobLabelInTrace(t *testing.T) {
	// Per-job attribution: every trace event carries the label of the job
	// that submitted it, so co-scheduled solves can be told apart.
	s := New(2, WithTrace())
	defer s.Shutdown()
	ja := s.NewJobNamed(nil, "solve-a")
	jb := s.NewJobNamed(nil, "solve-b")
	if ja.Label() != "solve-a" {
		t.Fatalf("Label = %q", ja.Label())
	}
	for i := 0; i < 3; i++ {
		ja.Submit(Task{Name: "a", Run: func(int) {}})
		jb.Submit(Task{Name: "b", Run: func(int) {}})
	}
	s.Submit(Task{Name: "anon", Run: func(int) {}})
	ja.Wait()
	jb.Wait()
	s.Wait()
	counts := map[string]int{}
	for _, ev := range s.Trace() {
		counts[ev.Job]++
	}
	if counts["solve-a"] != 3 || counts["solve-b"] != 3 || counts[""] != 1 {
		t.Fatalf("job attribution counts: %v", counts)
	}
}

func TestNewRejectsTooManyWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(65) did not panic; public entry points rely on clamping against MaxWorkers")
		}
	}()
	New(MaxWorkers + 1)
}

func TestSubmitAfterShutdown(t *testing.T) {
	// A task submitted after Shutdown is dropped and the job's error is the
	// sticky ErrStopped — no panic, no hang.
	s := New(1)
	s.Shutdown()
	j := s.NewJob(nil)
	ran := false
	j.Submit(Task{Name: "late", Run: func(int) { ran = true }})
	if ran {
		t.Fatal("task ran after shutdown")
	}
	if err := j.Err(); err != ErrStopped {
		t.Fatalf("Err = %v, want ErrStopped", err)
	}
}

func TestJobBiasOrdersAcrossJobs(t *testing.T) {
	// Two jobs on a deferred one-worker scheduler: the biased job's tasks
	// must run before the unbiased job's, even though the unbiased tasks
	// carry a higher intrinsic Priority and were submitted first — the bias
	// is what lets a drained-phase pipeline item overtake fresh items whose
	// phases use large internal priorities.
	s := New(1, Deferred())
	defer s.Shutdown()
	fresh := s.NewJob(nil)
	drained := s.NewJob(nil).SetBias(1 << 16)
	var order []string
	var mu sync.Mutex
	record := func(tag string) func(int) {
		return func(int) {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
		}
	}
	for i := 0; i < 3; i++ {
		fresh.Submit(Task{Name: "fresh", Priority: 100, Deps: []Dep{W(i)}, Run: record("fresh")})
	}
	for i := 0; i < 3; i++ {
		drained.Submit(Task{Name: "drained", Priority: 10, Deps: []Dep{W(100 + i)}, Run: record("drained")})
	}
	s.Start()
	if err := fresh.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := drained.Wait(); err != nil {
		t.Fatal(err)
	}
	want := []string{"drained", "drained", "drained", "fresh", "fresh", "fresh"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want biased job first (%v)", order, want)
		}
	}
}

func TestOnWorkerGoroutine(t *testing.T) {
	s := New(2)
	defer s.Shutdown()
	other := New(1)
	defer other.Shutdown()

	if s.OnWorkerGoroutine() {
		t.Fatal("submitting goroutine misdetected as a worker")
	}
	var onS, onOther bool
	j := s.NewJob(nil)
	j.Submit(Task{Name: "probe", Run: func(int) {
		onS = s.OnWorkerGoroutine()
		onOther = other.OnWorkerGoroutine()
	}})
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if !onS {
		t.Fatal("task body not detected as running on its own scheduler's worker")
	}
	if onOther {
		t.Fatal("task body misattributed to a different scheduler's worker")
	}
}
