package sched

import (
	"context"
	"sync"
)

// StaticTask is one entry of a static schedule: a body plus the global
// indices of the tasks that must have completed before it may run. The
// indices refer to positions in the flat task array passed to RunStatic.
type StaticTask struct {
	Name string
	Run  func(worker int)
	// After lists global task indices that must complete first.
	After []int
}

// StaticSchedule is a precomputed assignment of tasks to workers. Tasks
// assigned to one worker run in list order; cross-worker ordering is
// enforced through the progress table, exactly like PLASMA's static runtime
// for the bulge-chasing stage.
type StaticSchedule struct {
	// PerWorker[w] lists global task indices in execution order for worker w.
	PerWorker [][]int
	// Tasks is the flat task array the indices refer to.
	Tasks []StaticTask
}

// RunStatic executes the schedule and blocks until every task completed.
func RunStatic(s StaticSchedule) {
	_ = RunStaticCtx(context.Background(), s)
}

// RunStaticCtx executes the schedule under a context and blocks until every
// task has completed or the context is canceled. On cancellation the
// workers stop at the next task boundary and the context error is
// returned; completed work is left as-is (the caller discards the result).
//
// The progress table is a condition-variable-guarded bitset: worker w,
// before running task t, waits until all of t.After are marked done.
func RunStaticCtx(ctx context.Context, s StaticSchedule) error {
	done := make([]bool, len(s.Tasks))
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	canceled := false

	if ctx != nil && ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			mu.Lock()
			canceled = true
			mu.Unlock()
			cond.Broadcast()
		})
		defer stop()
	}

	var wg sync.WaitGroup
	for w := range s.PerWorker {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, ti := range s.PerWorker[w] {
				t := &s.Tasks[ti]
				mu.Lock()
				for !allDone(done, t.After) && !canceled {
					cond.Wait()
				}
				if canceled {
					mu.Unlock()
					return
				}
				mu.Unlock()
				t.Run(w)
				mu.Lock()
				done[ti] = true
				mu.Unlock()
				cond.Broadcast()
			}
		}(w)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if canceled && ctx != nil {
		return ctx.Err()
	}
	return nil
}

func allDone(done []bool, deps []int) bool {
	for _, d := range deps {
		if !done[d] {
			return false
		}
	}
	return true
}

// RoundRobinSchedule builds a static schedule assigning tasks to workers
// round-robin in index order. It is the simplest legal static mapping when
// every cross-worker dependence is expressed in After.
func RoundRobinSchedule(tasks []StaticTask, workers int) StaticSchedule {
	per := make([][]int, workers)
	for i := range tasks {
		w := i % workers
		per[w] = append(per[w], i)
	}
	return StaticSchedule{PerWorker: per, Tasks: tasks}
}
