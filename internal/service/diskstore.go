package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// DiskStore is the restart-surviving Store: an append-only journal of JSON
// records, one per line, replayed into a map on open. Every Put appends a
// whole-job snapshot and every Delete appends a tombstone, so the journal is
// a pure log — no in-place rewrites, no index, crash-safe by construction (a
// torn trailing record is detected on replay and truncated away).
//
// Two consequences worth knowing:
//
//   - Jobs that were queued or running when the process died cannot be
//     resumed (the input matrix is never journaled), so replay marks them
//     failed with ErrCode "interrupted". Clients see a stable terminal state
//     instead of a job stuck in "running" forever.
//   - The journal only grows (later snapshots shadow earlier ones at read
//     time). A compaction pass is a natural follow-up; for the job sizes the
//     result payloads dominate and a line per transition is cheap.
type DiskStore struct {
	mu     sync.Mutex
	file   *os.File
	enc    *json.Encoder
	jobs   map[string]*Job
	closed bool
}

// diskRecord is one journal line: exactly one field is set.
type diskRecord struct {
	Job    *Job   `json:"job,omitempty"`
	Delete string `json:"delete,omitempty"`
}

// CodeInterrupted marks jobs found non-terminal during journal replay: the
// server died under them and their inputs are gone.
const CodeInterrupted = "interrupted"

// NewDiskStore opens (creating as needed) the journal at path and replays
// it. Parent directories are created. Non-terminal jobs found in the journal
// are marked failed/interrupted, durably (the markings are appended before
// NewDiskStore returns).
func NewDiskStore(path string) (*DiskStore, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("service: creating journal directory: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: opening journal: %w", err)
	}
	d := &DiskStore{file: f, jobs: make(map[string]*Job)}

	// Replay. A decode error means a torn trailing record (crash mid-append):
	// keep everything before it and truncate the tail so the journal is clean
	// for appending.
	dec := json.NewDecoder(f)
	var good int64
	for {
		var rec diskRecord
		if err := dec.Decode(&rec); err != nil {
			if err != io.EOF {
				if terr := f.Truncate(good); terr != nil {
					f.Close()
					return nil, fmt.Errorf("service: truncating torn journal tail: %w", terr)
				}
			}
			break
		}
		good = dec.InputOffset()
		switch {
		case rec.Job != nil:
			d.jobs[rec.Job.ID] = rec.Job
		case rec.Delete != "":
			delete(d.jobs, rec.Delete)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("service: seeking journal end: %w", err)
	}
	d.enc = json.NewEncoder(f)

	// Jobs interrupted by the previous process get a durable terminal state.
	for _, j := range d.jobs {
		if j.Status.Terminal() {
			continue
		}
		j.Status = StatusFailed
		j.ErrCode = CodeInterrupted
		j.ErrMsg = "service: server restarted before the job finished"
		if err := d.enc.Encode(diskRecord{Job: j}); err != nil {
			f.Close()
			return nil, fmt.Errorf("service: journaling interrupted job: %w", err)
		}
	}
	return d, nil
}

// Put implements Store.
func (d *DiskStore) Put(j *Job) error {
	c := j.Clone()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("service: store is closed")
	}
	if err := d.enc.Encode(diskRecord{Job: c}); err != nil {
		return fmt.Errorf("service: appending job record: %w", err)
	}
	d.jobs[c.ID] = c
	return nil
}

// Get implements Store.
func (d *DiskStore) Get(id string) (*Job, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.Clone(), nil
}

// List implements Store.
func (d *DiskStore) List() ([]*Job, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Job, 0, len(d.jobs))
	for _, j := range d.jobs {
		out = append(out, j.Clone())
	}
	return out, nil
}

// Delete implements Store: it appends a tombstone.
func (d *DiskStore) Delete(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("service: store is closed")
	}
	if _, ok := d.jobs[id]; !ok {
		return ErrNotFound
	}
	if err := d.enc.Encode(diskRecord{Delete: id}); err != nil {
		return fmt.Errorf("service: appending tombstone: %w", err)
	}
	delete(d.jobs, id)
	return nil
}

// Close implements Store.
func (d *DiskStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.file.Close()
}
