package service

import (
	"context"
	"errors"
	"net/http"

	eigen "repro"
)

// Wire error codes. These are part of the HTTP contract: clients switch on
// them, so they are stable strings, decoupled from Go error text. Each maps
// to exactly one HTTP status via HTTPStatus.
const (
	// CodeBadRequest: unparseable body, wrong payload length, or other
	// structural defects caught before the job exists.
	CodeBadRequest = "bad_request"
	// CodeUnauthorized: missing or wrong API key.
	CodeUnauthorized = "unauthorized"
	// CodeNotFound: no such job (never created, deleted, or TTL-evicted).
	CodeNotFound = "not_found"
	// CodePending: the result was requested before the job finished.
	CodePending = "pending"
	// CodeTooLarge: the request body exceeded the configured byte cap.
	CodeTooLarge = "too_large"
	// CodeOverBudget: the problem's workspace estimate exceeds the Solver's
	// entire MemoryBudget, so it can never be admitted alongside other work.
	CodeOverBudget = "over_budget"
	// CodeNotFinite: the input matrix contains NaN/±Inf (eigen.ErrNotFinite).
	CodeNotFinite = "not_finite"
	// CodeInvalidRange: a bad IL/IU eigenpair range (eigen.ErrInvalidRange).
	CodeInvalidRange = "invalid_range"
	// CodeNoConvergence: the iterative tridiagonal solver exceeded its
	// iteration budget (eigen.ErrNoConvergence) — a property of the input,
	// not a server fault.
	CodeNoConvergence = "no_convergence"
	// CodeSolverClosed: the backing Solver was shut down (eigen.ErrClosed).
	CodeSolverClosed = "solver_closed"
	// CodeCanceled: the job's context was canceled (DELETE endpoint or
	// server shutdown).
	CodeCanceled = "canceled"
	// CodeDeadlineExceeded: the job's context deadline expired mid-solve.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeInternal: everything else — the only code that maps to a 5xx for
	// a solve failure.
	CodeInternal = "internal"
)

// StatusClientClosedRequest is the nginx convention for "the client went
// away before the response": the stable status of a canceled job's result.
// There is no standard code for it; 499 is the de-facto one.
const StatusClientClosedRequest = 499

// ClassifyError maps a solve error to its stable wire code. This is the one
// place solver errors meet the HTTP surface: a typed input defect
// (*NotFiniteError, *RangeError) from a malformed network payload must come
// back as a 4xx with a machine-readable code, never as an anonymous 500.
func ClassifyError(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, eigen.ErrNotFinite):
		return CodeNotFinite
	case errors.Is(err, eigen.ErrInvalidRange):
		return CodeInvalidRange
	case errors.Is(err, eigen.ErrNoConvergence):
		return CodeNoConvergence
	case errors.Is(err, eigen.ErrClosed):
		return CodeSolverClosed
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadlineExceeded
	default:
		return CodeInternal
	}
}

// HTTPStatus maps a wire code to its HTTP status. Unknown codes (including
// the empty string) are 500: an unmapped error is by definition internal.
func HTTPStatus(code string) int {
	switch code {
	case CodeBadRequest, CodeNotFinite, CodeInvalidRange:
		return http.StatusBadRequest
	case CodeUnauthorized:
		return http.StatusUnauthorized
	case CodeNotFound:
		return http.StatusNotFound
	case CodePending:
		return http.StatusConflict
	case CodeTooLarge, CodeOverBudget:
		return http.StatusRequestEntityTooLarge
	case CodeNoConvergence:
		return http.StatusUnprocessableEntity
	case CodeSolverClosed:
		return http.StatusServiceUnavailable
	case CodeCanceled:
		return StatusClientClosedRequest
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}
