package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"

	eigen "repro"
)

// TestErrorMapping pins the typed error→code→HTTP-status mapping: every
// solver error class a network payload can provoke must land on a stable
// non-500 status (a malformed request is the client's fault), and only
// genuinely internal failures map to 500.
func TestErrorMapping(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		code   string
		status int
	}{
		{
			name:   "typed NotFiniteError",
			err:    &eigen.NotFiniteError{Row: 2, Col: 3, Value: 0},
			code:   CodeNotFinite,
			status: http.StatusBadRequest,
		},
		{
			name:   "wrapped ErrNotFinite",
			err:    fmt.Errorf("item 4: %w", eigen.ErrNotFinite),
			code:   CodeNotFinite,
			status: http.StatusBadRequest,
		},
		{
			name:   "typed RangeError",
			err:    &eigen.RangeError{IL: 0, IU: 9, N: 4},
			code:   CodeInvalidRange,
			status: http.StatusBadRequest,
		},
		{
			name:   "ErrInvalidRange sentinel",
			err:    eigen.ErrInvalidRange,
			code:   CodeInvalidRange,
			status: http.StatusBadRequest,
		},
		{
			name:   "ErrNoConvergence",
			err:    eigen.ErrNoConvergence,
			code:   CodeNoConvergence,
			status: http.StatusUnprocessableEntity,
		},
		{
			name:   "ErrClosed",
			err:    eigen.ErrClosed,
			code:   CodeSolverClosed,
			status: http.StatusServiceUnavailable,
		},
		{
			name:   "context.Canceled",
			err:    context.Canceled,
			code:   CodeCanceled,
			status: StatusClientClosedRequest,
		},
		{
			name:   "wrapped context.Canceled",
			err:    fmt.Errorf("solve: %w", context.Canceled),
			code:   CodeCanceled,
			status: StatusClientClosedRequest,
		},
		{
			name:   "context.DeadlineExceeded",
			err:    context.DeadlineExceeded,
			code:   CodeDeadlineExceeded,
			status: http.StatusGatewayTimeout,
		},
		{
			name:   "unknown error is internal",
			err:    errors.New("disk on fire"),
			code:   CodeInternal,
			status: http.StatusInternalServerError,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code := ClassifyError(tc.err)
			if code != tc.code {
				t.Fatalf("ClassifyError(%v) = %q, want %q", tc.err, code, tc.code)
			}
			if got := HTTPStatus(code); got != tc.status {
				t.Fatalf("HTTPStatus(%q) = %d, want %d", code, got, tc.status)
			}
		})
	}
	if ClassifyError(nil) != "" {
		t.Fatal("ClassifyError(nil) must be empty")
	}
}

// TestHTTPStatusEdgeCodes pins the request-level codes that never pass
// through ClassifyError, and the unknown-code fallback.
func TestHTTPStatusEdgeCodes(t *testing.T) {
	for code, want := range map[string]int{
		CodeBadRequest:   http.StatusBadRequest,
		CodeUnauthorized: http.StatusUnauthorized,
		CodeNotFound:     http.StatusNotFound,
		CodePending:      http.StatusConflict,
		CodeTooLarge:     http.StatusRequestEntityTooLarge,
		CodeOverBudget:   http.StatusRequestEntityTooLarge,
		"":               http.StatusInternalServerError,
		"future_code":    http.StatusInternalServerError,
	} {
		if got := HTTPStatus(code); got != want {
			t.Errorf("HTTPStatus(%q) = %d, want %d", code, got, want)
		}
	}
}
