// Package service is the eigensolver-as-a-service layer: a stdlib net/http
// JSON API (submit / poll / long-poll / result / cancel) over a shared
// eigen.Solver, with static API-key auth and a pluggable job store.
//
// The service deliberately owns no resource limiter of its own. Every job is
// submitted as a single-item Solver.SolveBatch call, so admission control is
// exactly the Solver's persistent gate — Options.BatchConcurrency slots plus
// Options.MemoryBudget byte reservations — shared with every other caller of
// the same Solver. The only policy the service adds at the edge is refusal:
// a request whose workspace estimate exceeds the Solver's entire memory
// budget would be clamped by the gate and run alone, which a multi-tenant
// server does not want, so it is rejected up front with a typed 413 (see
// Server.handleSubmit and eigen.Solver.EstimateWorkspaceBytes).
package service

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Status is the lifecycle state of a job. Transitions are strictly forward:
// queued → running → one of done/failed/canceled.
type Status string

const (
	// StatusQueued: accepted by the server, not yet handed to the solver (or
	// still waiting in the admission gate once handed over — the gate wait is
	// reported as running, since the solver owns the job from then on).
	StatusQueued Status = "queued"
	// StatusRunning: handed to Solver.SolveBatch.
	StatusRunning Status = "running"
	// StatusDone: solved; the result is attached to the job record.
	StatusDone Status = "done"
	// StatusFailed: the solve returned an error; ErrCode/ErrMsg describe it.
	StatusFailed Status = "failed"
	// StatusCanceled: the job's context was canceled (DELETE endpoint or
	// server shutdown) before the solve completed.
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Job is the stored record of one eigensolve request. It doubles as the wire
// shape of the status endpoints (with Values/Vectors stripped — results are
// served only by the result endpoint). The input matrix is deliberately not
// part of the record: it lives in server memory only for the lifetime of the
// solve, so the job store never journals O(n²) request payloads.
type Job struct {
	ID     string `json:"id"`
	Status Status `json:"status"`

	// Request parameters (the matrix itself is not retained).
	N          int  `json:"n"`
	ValuesOnly bool `json:"values_only,omitempty"`
	IL         int  `json:"il,omitempty"`
	IU         int  `json:"iu,omitempty"`

	// Lifecycle timestamps (UTC; zero until the transition happens).
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`

	// ErrCode/ErrMsg describe the failure of a failed or canceled job.
	// ErrCode is one of the stable Code* constants (see errmap.go) and is
	// what the result endpoint maps back to an HTTP status.
	ErrCode string `json:"err_code,omitempty"`
	ErrMsg  string `json:"err_msg,omitempty"`

	// Result payload, present once Status == StatusDone. Vectors is
	// column-major Rows×Cols (column k pairs with Values[k]).
	Values  []float64 `json:"values,omitempty"`
	Vectors []float64 `json:"vectors,omitempty"`
	Rows    int       `json:"rows,omitempty"`
	Cols    int       `json:"cols,omitempty"`
}

// Clone deep-copies the job so stores and callers never share slices.
func (j *Job) Clone() *Job {
	c := *j
	if j.Values != nil {
		c.Values = append([]float64(nil), j.Values...)
	}
	if j.Vectors != nil {
		c.Vectors = append([]float64(nil), j.Vectors...)
	}
	return &c
}

// infoView is the status-endpoint shape of a job: everything but the result
// payload, which can be megabytes and is served by the result endpoint only.
func infoView(j *Job) *Job {
	c := *j
	c.Values, c.Vectors = nil, nil
	return &c
}

// SubmitRequest is the body of POST /v1/jobs. The matrix is row-major n×n,
// in exactly one of two encodings: Data (a JSON number array — convenient,
// but JSON cannot carry NaN/±Inf) or DataB64 (base64 of little-endian IEEE
// float64 bits — compact and bit-exact for every value, which is why the
// typed not-finite rejection is reachable over the wire at all).
type SubmitRequest struct {
	N          int       `json:"n"`
	Data       []float64 `json:"data,omitempty"`
	DataB64    string    `json:"data_b64,omitempty"`
	ValuesOnly bool      `json:"values_only,omitempty"`
	IL         int       `json:"il,omitempty"`
	IU         int       `json:"iu,omitempty"`
}

// ResultResponse is the body of GET /v1/jobs/{id}/result for a done job.
// Values round-trip bit-exactly as JSON numbers (they are finite, and
// encoding/json uses shortest-round-trip formatting); the eigenvector block
// is base64 float64 bits, column-major Rows×Cols.
type ResultResponse struct {
	ID         string    `json:"id"`
	Values     []float64 `json:"values"`
	VectorsB64 string    `json:"vectors_b64,omitempty"`
	Rows       int       `json:"rows,omitempty"`
	Cols       int       `json:"cols,omitempty"`
}

// ErrorBody is the JSON shape of every non-2xx response.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo carries the stable machine-readable code (see errmap.go) and a
// human-readable message.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// EncodeFloats encodes a float64 slice as base64 little-endian IEEE bits —
// the wire encoding of matrix payloads. Bit-exact for every value including
// NaN and ±Inf (unlike JSON numbers).
func EncodeFloats(v []float64) string {
	buf := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(f))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// DecodeFloats reverses EncodeFloats.
func DecodeFloats(s string) ([]float64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("service: bad base64 float data: %w", err)
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("service: float data is %d bytes, not a multiple of 8", len(buf))
	}
	v := make([]float64, len(buf)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return v, nil
}
