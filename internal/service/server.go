package service

import (
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	eigen "repro"
)

// DefaultTTL is how long a MemStore built by New keeps finished jobs when
// the caller supplies no store of their own.
const DefaultTTL = 15 * time.Minute

// DefaultMaxWait caps the long-poll duration of GET /v1/jobs/{id}?wait=...
const DefaultMaxWait = 30 * time.Second

// DefaultMaxBodyBytes caps request bodies: a dense float64 matrix of order
// 8192 is 512 MiB row-major; the default admits up to roughly that order in
// the (4/3-inflating) base64 encoding.
const DefaultMaxBodyBytes = 768 << 20

// Config assembles a Server. Solver is the only required field.
type Config struct {
	// Solver executes the jobs. The server does not own it (Close leaves it
	// running): one Solver may back several servers or serve direct calls
	// concurrently — its admission gate arbitrates either way.
	Solver *eigen.Solver
	// Store persists job records; nil builds a MemStore with DefaultTTL.
	// The server does not close it.
	Store Store
	// APIKeys are the accepted static keys (header X-API-Key, or
	// "Authorization: Bearer <key>"). Empty disables authentication —
	// intended for tests and trusted-network deployments only; cmd/eigserve
	// refuses that configuration unless explicitly forced.
	APIKeys []string
	// MaxWait caps the wait parameter of the long-poll endpoint
	// (0 → DefaultMaxWait).
	MaxWait time.Duration
	// MaxBodyBytes caps request bodies (0 → DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// Logf, when non-nil, receives one line per job transition and per
	// refused request.
	Logf func(format string, args ...any)
}

// Server is the HTTP front of one eigen.Solver. It implements http.Handler:
//
//	POST   /v1/jobs             submit a problem        → 202 + job record
//	GET    /v1/jobs/{id}        poll (…?wait=10s long-polls until terminal)
//	GET    /v1/jobs/{id}/result fetch values/vectors    → 200, 409 pending,
//	                            or the mapped error status of a failed job
//	DELETE /v1/jobs/{id}        cancel                  → 202 + job record
//	GET    /v1/healthz          liveness (no auth)
//
// Every job runs as a single-item SolveBatch on the shared Solver, under a
// per-job context; admission (concurrency slots + memory budget) is the
// Solver's own persistent gate.
type Server struct {
	cfg Config
	mux *http.ServeMux

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup

	mu     sync.Mutex
	live   map[string]*liveJob
	closed bool
}

// liveJob is the in-memory control block of a non-terminal job: its cancel
// function and a channel closed when it reaches a terminal state (after the
// terminal record is in the store), which is what long-pollers wait on.
type liveJob struct {
	cancel context.CancelFunc
	done   chan struct{}
}

// New builds a Server from cfg. The returned server is ready to serve; call
// Close to cancel in-flight jobs and wait for them on shutdown.
func New(cfg Config) (*Server, error) {
	if cfg.Solver == nil {
		return nil, errors.New("service: Config.Solver is required")
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore(DefaultTTL)
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = DefaultMaxWait
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{
		cfg:  cfg,
		mux:  http.NewServeMux(),
		live: make(map[string]*liveJob),
	}
	s.baseCtx, s.cancelAll = context.WithCancel(context.Background())
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/jobs", s.auth(s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.auth(s.handleJob))
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.auth(s.handleResult))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.auth(s.handleCancel))
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close cancels every in-flight job and waits for their terminal records to
// land in the store. It does not close the Store or the Solver (the caller
// owns both), and the server refuses new submissions afterwards.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancelAll()
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// auth wraps a handler with static API-key verification. With no keys
// configured the wrapper is a pass-through.
func (s *Server) auth(next http.HandlerFunc) http.HandlerFunc {
	if len(s.cfg.APIKeys) == 0 {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get("X-API-Key")
		if key == "" {
			if bearer, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer "); ok {
				key = bearer
			}
		}
		for _, k := range s.cfg.APIKeys {
			if subtle.ConstantTimeCompare([]byte(k), []byte(key)) == 1 {
				next(w, r)
				return
			}
		}
		writeError(w, CodeUnauthorized, "missing or invalid API key")
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, CodeTooLarge, fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		writeError(w, CodeBadRequest, "malformed JSON body: "+err.Error())
		return
	}

	data, code, msg := decodeMatrixPayload(&req)
	if code != "" {
		writeError(w, code, msg)
		return
	}
	n := req.N
	// The same range predicate the solver enforces, checked at the edge so a
	// bad range is a synchronous 400, not a queued job that fails later.
	if req.IL != 0 || req.IU != 0 {
		if req.IL < 1 || req.IU > n || req.IL > req.IU {
			writeError(w, CodeInvalidRange,
				fmt.Sprintf("invalid eigenpair range [%d, %d] for n=%d (want 1 ≤ il ≤ iu ≤ n)", req.IL, req.IU, n))
			return
		}
	}

	// Admission pricing at the edge: the gate clamps over-budget costs so
	// oversized problems run alone, which is the right call inside one
	// caller's batch but the wrong one for a shared server — refuse instead.
	est := s.cfg.Solver.EstimateWorkspaceBytes(n, !req.ValuesOnly)
	if budget := s.cfg.Solver.MemoryBudget(); budget > 0 && est > budget {
		s.logf("service: refusing n=%d: estimated workspace %d bytes exceeds budget %d", n, est, budget)
		writeError(w, CodeOverBudget,
			fmt.Sprintf("problem needs an estimated %d bytes of workspace, over the server's %d-byte budget", est, budget))
		return
	}

	// Row-major wire order → the solver's column-major layout. Element-wise
	// (not a flat copy): the input must reach the solver exactly as the
	// client indexed it, so the symmetry check judges the client's matrix.
	a := eigen.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, data[i*n+j])
		}
	}

	id, err := newID()
	if err != nil {
		writeError(w, CodeInternal, "cannot generate job ID: "+err.Error())
		return
	}
	job := &Job{
		ID:         id,
		Status:     StatusQueued,
		N:          n,
		ValuesOnly: req.ValuesOnly,
		IL:         req.IL,
		IU:         req.IU,
		Created:    time.Now().UTC(),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, CodeSolverClosed, "server is shutting down")
		return
	}
	jctx, cancel := context.WithCancel(s.baseCtx)
	lj := &liveJob{cancel: cancel, done: make(chan struct{})}
	s.live[job.ID] = lj
	s.wg.Add(1)
	s.mu.Unlock()

	if err := s.cfg.Store.Put(job); err != nil {
		s.mu.Lock()
		delete(s.live, job.ID)
		s.mu.Unlock()
		s.wg.Done()
		cancel()
		writeError(w, CodeInternal, "storing job: "+err.Error())
		return
	}
	s.logf("service: job %s queued (n=%d, values_only=%v, range=[%d,%d])", job.ID, n, req.ValuesOnly, req.IL, req.IU)
	go s.run(jctx, job.Clone(), a, lj)

	writeJSON(w, http.StatusAccepted, infoView(job))
}

// run executes one job: a single-item SolveBatch on the shared Solver. The
// terminal record is stored before the done channel closes, so a woken
// long-poller always reads the final state.
func (s *Server) run(ctx context.Context, j *Job, a *eigen.Matrix, lj *liveJob) {
	defer s.wg.Done()
	j.Status = StatusRunning
	j.Started = time.Now().UTC()
	if err := s.cfg.Store.Put(j); err != nil {
		s.logf("service: job %s: storing running state: %v", j.ID, err)
	}

	res := s.cfg.Solver.SolveBatch(ctx, []eigen.BatchItem{{
		A:          a,
		ValuesOnly: j.ValuesOnly,
		IL:         j.IL,
		IU:         j.IU,
	}})[0]

	j.Finished = time.Now().UTC()
	if res.Err == nil {
		j.Status = StatusDone
		j.Values = res.Values
		if res.Vectors != nil {
			rows, cols := res.Vectors.Dims()
			j.Rows, j.Cols = rows, cols
			j.Vectors = make([]float64, 0, rows*cols)
			for c := 0; c < cols; c++ {
				j.Vectors = append(j.Vectors, res.Vectors.Col(c)...)
			}
		}
		s.logf("service: job %s done in %v", j.ID, j.Finished.Sub(j.Started))
	} else {
		j.ErrCode = ClassifyError(res.Err)
		j.ErrMsg = res.Err.Error()
		if j.ErrCode == CodeCanceled {
			j.Status = StatusCanceled
		} else {
			j.Status = StatusFailed
		}
		s.logf("service: job %s %s: %s (%s)", j.ID, j.Status, j.ErrMsg, j.ErrCode)
	}
	if err := s.cfg.Store.Put(j); err != nil {
		s.logf("service: job %s: storing terminal state: %v", j.ID, err)
	}

	s.mu.Lock()
	delete(s.live, j.ID)
	s.mu.Unlock()
	close(lj.done)
}

func (s *Server) liveFor(id string) *liveJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, err := s.cfg.Store.Get(id)
	if err != nil {
		writeError(w, CodeNotFound, "no job "+id)
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" && !j.Status.Terminal() {
		d, err := time.ParseDuration(waitStr)
		if err != nil || d < 0 {
			writeError(w, CodeBadRequest, "bad wait duration "+waitStr)
			return
		}
		if d > s.cfg.MaxWait {
			d = s.cfg.MaxWait
		}
		if lj := s.liveFor(id); lj != nil {
			t := time.NewTimer(d)
			select {
			case <-lj.done:
			case <-t.C:
			case <-r.Context().Done():
			}
			t.Stop()
		}
		if j, err = s.cfg.Store.Get(id); err != nil {
			writeError(w, CodeNotFound, "no job "+id)
			return
		}
	}
	writeJSON(w, http.StatusOK, infoView(j))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, err := s.cfg.Store.Get(id)
	if err != nil {
		writeError(w, CodeNotFound, "no job "+id)
		return
	}
	switch {
	case j.Status == StatusDone:
		resp := ResultResponse{ID: j.ID, Values: j.Values, Rows: j.Rows, Cols: j.Cols}
		if len(j.Vectors) > 0 {
			resp.VectorsB64 = EncodeFloats(j.Vectors)
		}
		writeJSON(w, http.StatusOK, resp)
	case j.Status.Terminal():
		// Failed or canceled: the stored code carries the stable HTTP status
		// (a NaN payload is a 400 here, never a 500 — see errmap.go).
		code := j.ErrCode
		if code == "" {
			code = CodeInternal
		}
		writeError(w, code, j.ErrMsg)
	default:
		writeError(w, CodePending, fmt.Sprintf("job %s is %s; poll or long-poll until it finishes", id, j.Status))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.cfg.Store.Get(id); err != nil {
		writeError(w, CodeNotFound, "no job "+id)
		return
	}
	if lj := s.liveFor(id); lj != nil {
		lj.cancel()
		s.logf("service: job %s cancel requested", id)
	}
	// Respond with the record as it stands; the transition to canceled is
	// asynchronous (the solver unwinds first), so clients long-poll for it.
	j, err := s.cfg.Store.Get(id)
	if err != nil {
		writeError(w, CodeNotFound, "no job "+id)
		return
	}
	writeJSON(w, http.StatusAccepted, infoView(j))
}

// decodeMatrixPayload extracts and validates the matrix of a submit request,
// returning the row-major entries or a wire error code and message.
func decodeMatrixPayload(req *SubmitRequest) (data []float64, code, msg string) {
	if req.N <= 0 {
		return nil, CodeBadRequest, fmt.Sprintf("n must be positive, got %d", req.N)
	}
	if (req.Data != nil) == (req.DataB64 != "") {
		return nil, CodeBadRequest, "exactly one of data and data_b64 must be set"
	}
	data = req.Data
	if req.DataB64 != "" {
		var err error
		if data, err = DecodeFloats(req.DataB64); err != nil {
			return nil, CodeBadRequest, err.Error()
		}
	}
	if len(data) != req.N*req.N {
		return nil, CodeBadRequest, fmt.Sprintf("matrix data has %d entries, want n²=%d", len(data), req.N*req.N)
	}
	return data, "", ""
}

// newID returns a 128-bit random hex job ID.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// writeJSON writes v with the given status. Encoding failures land in the
// log of the http.Server, not here: by then the status line is committed.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the standard error body for a wire code.
func writeError(w http.ResponseWriter, code, msg string) {
	writeJSON(w, HTTPStatus(code), ErrorBody{Error: ErrorInfo{Code: code, Message: msg}})
}
