package service

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	eigen "repro"
)

func testServer(t *testing.T, opts *eigen.Options, cfg Config) *Server {
	t.Helper()
	if opts == nil {
		opts = &eigen.Options{Workers: 2, DisableTuning: true}
	}
	solver := eigen.NewSolver(opts)
	t.Cleanup(func() { solver.Close() })
	cfg.Solver = solver
	if cfg.Store == nil {
		store := NewMemStore(0)
		t.Cleanup(func() { store.Close() })
		cfg.Store = store
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func decodeErr(t *testing.T, rr *httptest.ResponseRecorder) ErrorInfo {
	t.Helper()
	var eb ErrorBody
	if err := json.NewDecoder(rr.Body).Decode(&eb); err != nil {
		t.Fatalf("error body is not the standard shape: %v (body %q)", err, rr.Body.String())
	}
	return eb.Error
}

// TestServerAuth pins the auth wrapper: no key → 401, wrong key → 401,
// either accepted header form → through, and health stays unauthenticated.
func TestServerAuth(t *testing.T) {
	srv := testServer(t, nil, Config{APIKeys: []string{"open-sesame"}})

	cases := []struct {
		name   string
		header func(r *http.Request)
		status int
	}{
		{"no key", func(*http.Request) {}, http.StatusUnauthorized},
		{"wrong key", func(r *http.Request) { r.Header.Set("X-API-Key", "guess") }, http.StatusUnauthorized},
		{"wrong bearer", func(r *http.Request) { r.Header.Set("Authorization", "Bearer guess") }, http.StatusUnauthorized},
		{"header key", func(r *http.Request) { r.Header.Set("X-API-Key", "open-sesame") }, http.StatusNotFound},
		{"bearer key", func(r *http.Request) { r.Header.Set("Authorization", "Bearer open-sesame") }, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := httptest.NewRequest("GET", "/v1/jobs/xyz", nil)
			tc.header(r)
			rr := httptest.NewRecorder()
			srv.ServeHTTP(rr, r)
			if rr.Code != tc.status {
				t.Fatalf("status %d, want %d (body %s)", rr.Code, tc.status, rr.Body)
			}
			if tc.status == http.StatusUnauthorized {
				if e := decodeErr(t, rr); e.Code != CodeUnauthorized {
					t.Fatalf("code %q, want %q", e.Code, CodeUnauthorized)
				}
			}
		})
	}

	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("health without key: %d, want 200", rr.Code)
	}
}

// TestServerSubmitValidation walks the structural 4xx ladder of the submit
// endpoint: malformed JSON, bad n, missing/duplicate/mis-sized payloads, an
// invalid range, and an oversized body.
func TestServerSubmitValidation(t *testing.T) {
	srv := testServer(t, nil, Config{MaxBodyBytes: 4096})

	post := func(body string) *httptest.ResponseRecorder {
		r := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
		rr := httptest.NewRecorder()
		srv.ServeHTTP(rr, r)
		return rr
	}

	cases := []struct {
		name string
		body string
		code string
	}{
		{"malformed JSON", `{"n": 2,`, CodeBadRequest},
		{"zero n", `{"n": 0, "data": []}`, CodeBadRequest},
		{"negative n", `{"n": -3, "data": [1]}`, CodeBadRequest},
		{"no payload", `{"n": 2}`, CodeBadRequest},
		{"both payloads", `{"n": 1, "data": [1], "data_b64": "AAAAAAAA8D8="}`, CodeBadRequest},
		{"wrong length", `{"n": 2, "data": [1, 2, 3]}`, CodeBadRequest},
		{"bad base64", `{"n": 1, "data_b64": "!!!"}`, CodeBadRequest},
		{"invalid range", `{"n": 2, "data": [1, 0, 0, 2], "il": 2, "iu": 1}`, CodeInvalidRange},
		{"range beyond n", `{"n": 2, "data": [1, 0, 0, 2], "il": 1, "iu": 5}`, CodeInvalidRange},
		{"oversized body", `{"n": 2, "data": [` + strings.Repeat("1,", 4000) + `1]}`, CodeTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := post(tc.body)
			e := decodeErr(t, rr)
			if e.Code != tc.code {
				t.Fatalf("code %q (status %d, msg %q), want %q", e.Code, rr.Code, e.Message, tc.code)
			}
			if rr.Code < 400 || rr.Code >= 500 {
				t.Fatalf("status %d, want a 4xx", rr.Code)
			}
		})
	}
}

// TestServerJobEndpoints covers the non-solve paths of the job endpoints:
// unknown IDs are 404, a result requested too early is 409/pending, a bad
// wait duration is 400, and cancel of an unknown job is 404.
func TestServerJobEndpoints(t *testing.T) {
	srv := testServer(t, nil, Config{})

	req := func(method, path string, want int) *httptest.ResponseRecorder {
		t.Helper()
		rr := httptest.NewRecorder()
		srv.ServeHTTP(rr, httptest.NewRequest(method, path, nil))
		if rr.Code != want {
			t.Fatalf("%s %s: status %d, want %d (body %s)", method, path, rr.Code, want, rr.Body)
		}
		return rr
	}

	req("GET", "/v1/jobs/nope", http.StatusNotFound)
	req("GET", "/v1/jobs/nope/result", http.StatusNotFound)
	req("DELETE", "/v1/jobs/nope", http.StatusNotFound)

	// A real job, still queued/running: result must be 409 pending.
	r := httptest.NewRequest("POST", "/v1/jobs",
		strings.NewReader(`{"n": 2, "data": [4, 1, 1, 3]}`))
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, r)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", rr.Code, rr.Body)
	}
	var j Job
	if err := json.NewDecoder(rr.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	if j.ID == "" || j.Status != StatusQueued {
		t.Fatalf("submit returned %+v", j)
	}
	if len(j.Values) != 0 {
		t.Fatal("status view must not carry result payloads")
	}

	rr = req("GET", "/v1/jobs/"+j.ID+"?wait=banana", http.StatusBadRequest)
	if e := decodeErr(t, rr); e.Code != CodeBadRequest {
		t.Fatalf("bad wait: code %q", e.Code)
	}

	// Long-poll until done, then fetch the result.
	rr = req("GET", "/v1/jobs/"+j.ID+"?wait=10s", http.StatusOK)
	if err := json.NewDecoder(rr.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	if j.Status != StatusDone {
		t.Fatalf("after wait: status %s, want done", j.Status)
	}
	rr = req("GET", "/v1/jobs/"+j.ID+"/result", http.StatusOK)
	var res ResultResponse
	if err := json.NewDecoder(rr.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 || res.Rows != 2 || res.Cols != 2 {
		t.Fatalf("result shape: %+v", res)
	}

	// Cancel after terminal: a no-op 202 echo of the record.
	req("DELETE", "/v1/jobs/"+j.ID, http.StatusAccepted)
}

// TestServerNaNPayloadMapsTo400 is the end-to-end form of the errmap
// contract: a NaN smuggled in via the binary encoding fails the job with
// the solver's typed *NotFiniteError, and the result endpoint serves it as
// a stable 400/not_finite — not a 500.
func TestServerNaNPayloadMapsTo400(t *testing.T) {
	srv := testServer(t, nil, Config{})

	data := []float64{1, 0, 0, math.NaN()}
	body, err := json.Marshal(SubmitRequest{N: 2, DataB64: EncodeFloats(data)})
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(string(body))))
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", rr.Code, rr.Body)
	}
	var j Job
	if err := json.NewDecoder(rr.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}

	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+j.ID+"?wait=10s", nil))
	if err := json.NewDecoder(rr.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	if j.Status != StatusFailed || j.ErrCode != CodeNotFinite {
		t.Fatalf("NaN job: status=%s code=%s, want failed/not_finite", j.Status, j.ErrCode)
	}

	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+j.ID+"/result", nil))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("NaN result status %d, want 400 (body %s)", rr.Code, rr.Body)
	}
	if e := decodeErr(t, rr); e.Code != CodeNotFinite {
		t.Fatalf("NaN result code %q, want %q", e.Code, CodeNotFinite)
	}
}
