package service

import (
	"errors"
	"sync"
	"time"
)

// ErrNotFound is returned by Store.Get/Delete for an unknown job ID —
// including jobs that existed once but were deleted or TTL-evicted.
var ErrNotFound = errors.New("service: job not found")

// Store persists job records. The server writes whole-job snapshots on every
// status transition and reads them back for the status/result endpoints, so
// the interface is a plain keyed record store — deliberately small, so real
// backends (an SQL table, Redis, an object store) can slot in behind it
// later without touching the HTTP layer.
//
// Implementations must be safe for concurrent use. Get and List return
// private copies: mutating a returned job never changes the stored record.
type Store interface {
	// Put inserts or replaces the record with j.ID. The store keeps its own
	// copy; the caller may reuse j afterwards.
	Put(j *Job) error
	// Get returns a copy of the record, or ErrNotFound.
	Get(id string) (*Job, error)
	// List returns copies of every live record, in no particular order.
	List() ([]*Job, error)
	// Delete removes the record; deleting an unknown ID is ErrNotFound.
	Delete(id string) error
	// Close releases the store's resources. The store is unusable after.
	Close() error
}

// MemStore is the in-memory Store: a map with TTL eviction of finished
// jobs. Terminal records (done/failed/canceled) expire ttl after they enter
// the store; queued/running records never expire — eviction must not orphan
// a live solve. A background janitor sweeps on a fraction of the TTL, and
// reads double-check expiry so a record never outlives its TTL by more than
// a read.
type MemStore struct {
	ttl time.Duration

	mu     sync.Mutex
	jobs   map[string]*Job
	expiry map[string]time.Time
	stop   chan struct{}
	closed bool
}

// NewMemStore builds a MemStore evicting terminal jobs after ttl
// (ttl <= 0: keep forever, no janitor goroutine).
func NewMemStore(ttl time.Duration) *MemStore {
	m := &MemStore{
		ttl:    ttl,
		jobs:   make(map[string]*Job),
		expiry: make(map[string]time.Time),
		stop:   make(chan struct{}),
	}
	if ttl > 0 {
		interval := ttl / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		if interval > time.Minute {
			interval = time.Minute
		}
		go m.janitor(interval)
	}
	return m
}

func (m *MemStore) janitor(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-t.C:
			m.mu.Lock()
			for id, at := range m.expiry {
				if now.After(at) {
					delete(m.jobs, id)
					delete(m.expiry, id)
				}
			}
			m.mu.Unlock()
		}
	}
}

// Put implements Store.
func (m *MemStore) Put(j *Job) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("service: store is closed")
	}
	m.jobs[j.ID] = j.Clone()
	if m.ttl > 0 && j.Status.Terminal() {
		m.expiry[j.ID] = time.Now().Add(m.ttl)
	} else {
		delete(m.expiry, j.ID)
	}
	return nil
}

// Get implements Store.
func (m *MemStore) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if ok {
		if at, exp := m.expiry[id]; exp && time.Now().After(at) {
			delete(m.jobs, id)
			delete(m.expiry, id)
			ok = false
		}
	}
	if !ok {
		return nil, ErrNotFound
	}
	return j.Clone(), nil
}

// List implements Store.
func (m *MemStore) List() ([]*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	now := time.Now()
	for id, j := range m.jobs {
		if at, exp := m.expiry[id]; exp && now.After(at) {
			continue
		}
		out = append(out, j.Clone())
	}
	return out, nil
}

// Delete implements Store.
func (m *MemStore) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[id]; !ok {
		return ErrNotFound
	}
	delete(m.jobs, id)
	delete(m.expiry, id)
	return nil
}

// Close implements Store: it stops the janitor and drops every record.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	close(m.stop)
	m.jobs, m.expiry = nil, nil
	return nil
}
