package service

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func doneJob(id string) *Job {
	return &Job{
		ID:     id,
		Status: StatusDone,
		N:      2,
		Values: []float64{1, 2},
	}
}

// TestMemStoreBasics covers Put/Get/Delete round trips and the copy
// semantics of Get (mutating a returned job must not change the store).
func TestMemStoreBasics(t *testing.T) {
	m := NewMemStore(0)
	defer m.Close()

	if _, err := m.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(unknown) = %v, want ErrNotFound", err)
	}
	j := doneJob("a")
	if err := m.Put(j); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	got.Values[0] = 99
	got.Status = StatusFailed
	again, err := m.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if again.Values[0] != 1 || again.Status != StatusDone {
		t.Fatal("mutating a Get result leaked into the store")
	}
	if l, _ := m.List(); len(l) != 1 {
		t.Fatalf("List: %d jobs, want 1", len(l))
	}
	if err := m.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Delete = %v, want ErrNotFound", err)
	}
}

// TestMemStoreTTL pins the eviction contract: terminal jobs expire after
// the TTL, live (queued/running) jobs never do.
func TestMemStoreTTL(t *testing.T) {
	m := NewMemStore(40 * time.Millisecond)
	defer m.Close()

	if err := m.Put(doneJob("fin")); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(&Job{ID: "live", Status: StatusRunning, N: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("fin"); err != nil {
		t.Fatalf("fresh terminal job already gone: %v", err)
	}
	time.Sleep(120 * time.Millisecond)
	if _, err := m.Get("fin"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("terminal job survived its TTL: %v", err)
	}
	if _, err := m.Get("live"); err != nil {
		t.Fatalf("running job must never be evicted: %v", err)
	}
	// A live job turning terminal starts its TTL clock at that transition.
	j := doneJob("live")
	if err := m.Put(j); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if _, err := m.Get("live"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("job not evicted after turning terminal: %v", err)
	}
}

// TestDiskStoreRestart is the restart-survival contract: finished jobs (and
// tombstones) survive close + reopen, and jobs caught mid-flight by the
// restart come back terminal as failed/interrupted instead of being stuck
// in "running" forever.
func TestDiskStoreRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	d, err := NewDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	fin := doneJob("fin")
	fin.Vectors = []float64{1, 0, 0, 1}
	fin.Rows, fin.Cols = 2, 2
	for _, j := range []*Job{fin, {ID: "mid", Status: StatusRunning, N: 8}, doneJob("gone")} {
		if err := d.Put(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := NewDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err := d2.Get("fin")
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone || len(got.Values) != 2 || got.Values[1] != 2 || len(got.Vectors) != 4 {
		t.Fatalf("finished job did not survive restart intact: %+v", got)
	}
	mid, err := d2.Get("mid")
	if err != nil {
		t.Fatal(err)
	}
	if mid.Status != StatusFailed || mid.ErrCode != CodeInterrupted {
		t.Fatalf("mid-flight job after restart: status=%s code=%s, want failed/interrupted", mid.Status, mid.ErrCode)
	}
	if _, err := d2.Get("gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstoned job resurrected: %v", err)
	}

	// The interrupted marking is durable: a third open still sees it.
	d2.Close()
	d3, err := NewDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	mid, err = d3.Get("mid")
	if err != nil {
		t.Fatal(err)
	}
	if mid.Status != StatusFailed || mid.ErrCode != CodeInterrupted {
		t.Fatalf("interrupted marking not durable: %+v", mid)
	}
}

// TestDiskStoreTornTail simulates a crash mid-append: a truncated trailing
// record must be dropped on replay (keeping everything before it) and the
// journal must keep working for new appends.
func TestDiskStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	d, err := NewDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(doneJob("ok")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append half a record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"job":{"id":"torn","stat`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2, err := NewDiskStore(path)
	if err != nil {
		t.Fatalf("torn journal must open cleanly: %v", err)
	}
	defer d2.Close()
	if _, err := d2.Get("ok"); err != nil {
		t.Fatalf("intact record lost with the torn tail: %v", err)
	}
	if _, err := d2.Get("torn"); !errors.Is(err, ErrNotFound) {
		t.Fatal("torn record must not replay")
	}
	if err := d2.Put(doneJob("after")); err != nil {
		t.Fatalf("journal unusable after tail repair: %v", err)
	}
	d2.Close()
	d3, err := NewDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if _, err := d3.Get("after"); err != nil {
		t.Fatalf("post-repair append did not persist: %v", err)
	}
}
