// Package testmat generates the symmetric test matrices used by the test
// suite, the examples and the benchmark harness, and provides the
// first-principles verification metrics (residuals, orthogonality,
// planted-spectrum error) the reproduction is validated against.
package testmat

import (
	"math"
	"math/rand"

	"repro/internal/blas"
	"repro/internal/householder"
	"repro/internal/matrix"
)

// RandomSym returns an n×n symmetric matrix with N(0,1) entries.
func RandomSym(rng *rand.Rand, n int) *matrix.Dense {
	a := matrix.NewDense(n, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

// RandomSymBand returns an n×n symmetric band matrix of bandwidth kd with
// N(0,1) entries inside the band — the pre-banded inputs the stage-2 bulge
// chase and the SBR narrowing sweeps are property-tested on.
func RandomSymBand(rng *rand.Rand, n, kd int) *matrix.SymBand {
	b := matrix.NewSymBand(n, kd)
	for j := 0; j < n; j++ {
		for i := j; i <= min(n-1, j+kd); i++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	return b
}

// DiagDominantSymBand returns an n×n symmetric band matrix of bandwidth kd
// with N(0,1) off-diagonals and diagonal entries pushed past the row sum, so
// the matrix is strictly diagonally dominant: positive definite, well
// conditioned, with eigenvalues near the diagonal — a benign counterpart to
// RandomSymBand for property tests that want a controlled spectrum.
func DiagDominantSymBand(rng *rand.Rand, n, kd int) *matrix.SymBand {
	b := RandomSymBand(rng, n, kd)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := max(0, i-kd); j <= min(n-1, i+kd); j++ {
			if j != i {
				sum += math.Abs(b.At(i, j))
			}
		}
		b.Set(i, i, sum+1+rng.Float64())
	}
	return b
}

// WithSpectrum builds A = Q·diag(spec)·Qᵀ for a Haar-ish random orthogonal Q
// (product of n random Householder reflectors), so the exact eigenvalues of
// the result are known. Returns the matrix; the planted spectrum is the
// sorted copy of spec.
func WithSpectrum(rng *rand.Rand, spec []float64) *matrix.Dense {
	n := len(spec)
	a := matrix.NewDense(n, n)
	for i, v := range spec {
		a.Set(i, i, v)
	}
	work := make([]float64, n)
	v := make([]float64, n)
	for k := 0; k < n; k++ {
		// Random reflector H = I − τ·v·vᵀ with τ = 2/‖v‖².
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		tau := 2 / blas.Ddot(n, v, 1, v, 1)
		// A := H·A·H.
		householder.Larf(blas.Left, n, n, v, 1, tau, a.Data, a.Stride, work)
		householder.Larf(blas.Right, n, n, v, 1, tau, a.Data, a.Stride, work)
	}
	a.Symmetrize() // remove roundoff asymmetry
	return a
}

// UniformSpectrum returns n values equally spaced in [lo, hi].
func UniformSpectrum(n int, lo, hi float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		if n == 1 {
			s[i] = lo
			continue
		}
		s[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return s
}

// GeometricSpectrum returns n values lo·r^i reaching hi at i = n−1 — a
// wide-dynamic-range spectrum that stresses deflation and bisection.
func GeometricSpectrum(n int, lo, hi float64) []float64 {
	s := make([]float64, n)
	if n == 1 {
		s[0] = lo
		return s
	}
	r := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range s {
		s[i] = v
		v *= r
	}
	return s
}

// ClusteredSpectrum returns n values in k tight clusters — the classic
// stress test for deflation (D&C) and reorthogonalization (inverse
// iteration).
func ClusteredSpectrum(n, k int, spread float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		c := i % k
		s[i] = float64(c+1) + spread*float64(i/k)
	}
	return s
}

// GraphLaplacian returns the Laplacian of a random undirected graph with n
// vertices and average degree deg — the workload of the spectral-clustering
// example. Always symmetric positive semidefinite.
func GraphLaplacian(rng *rand.Rand, n int, deg float64) *matrix.Dense {
	a := matrix.NewDense(n, n)
	p := deg / float64(n-1)
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			if rng.Float64() < p {
				a.Set(i, j, -1)
				a.Set(j, i, -1)
			}
		}
	}
	for i := 0; i < n; i++ {
		var d float64
		for j := 0; j < n; j++ {
			if i != j {
				d -= a.At(i, j)
			}
		}
		a.Set(i, i, d)
	}
	return a
}

// Residual returns max_k ‖A·z_k − λ_k·z_k‖₂ / (‖A‖_F·n·ε) — the normalized
// eigenpair residual; values of order 1–100 indicate full backward
// stability.
func Residual(a *matrix.Dense, vals []float64, z *matrix.Dense) float64 {
	n := a.Rows
	norm := a.FrobeniusNorm()
	if norm == 0 {
		norm = 1
	}
	eps := 0x1p-52
	var worst float64
	r := make([]float64, n)
	for k := 0; k < z.Cols; k++ {
		zk := z.Data[k*z.Stride : k*z.Stride+n]
		blas.Dgemv(blas.NoTrans, n, n, 1, a.Data, a.Stride, zk, 1, 0, r, 1)
		blas.Daxpy(n, -vals[k], zk, 1, r, 1)
		if res := blas.Dnrm2(n, r, 1); res > worst {
			worst = res
		}
	}
	return worst / (norm * float64(n) * eps)
}

// OrthoError returns ‖ZᵀZ − I‖_max / (n·ε), normalized like Residual.
func OrthoError(z *matrix.Dense) float64 {
	n, k := z.Rows, z.Cols
	eps := 0x1p-52
	var worst float64
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			dot := blas.Ddot(n, z.Data[a*z.Stride:], 1, z.Data[b*z.Stride:], 1)
			want := 0.0
			if a == b {
				want = 1
			}
			if d := math.Abs(dot - want); d > worst {
				worst = d
			}
		}
	}
	return worst / (float64(n) * eps)
}

// SpectrumError returns max_i |got_i − want_i| / (‖want‖·n·ε) for two
// ascending spectra of equal length.
func SpectrumError(got, want []float64) float64 {
	eps := 0x1p-52
	var norm, worst float64
	for i := range want {
		if a := math.Abs(want[i]); a > norm {
			norm = a
		}
	}
	if norm == 0 {
		norm = 1
	}
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > worst {
			worst = d
		}
	}
	return worst / (norm * float64(len(want)) * eps)
}
