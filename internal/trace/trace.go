// Package trace provides the lightweight accounting layer used to
// regenerate the paper's Tables 1–2 and Figure 1 from measured data: flop
// counters per kernel class and wall-clock timers per solver phase. All
// counters are atomic so kernels running under the task scheduler can report
// concurrently; the cost is a few nanoseconds per kernel invocation, far
// below kernel granularity.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kernel classes whose flops are tracked separately. The split mirrors the
// paper's discussion: Level 3 (compute-bound) versus Level 2/1
// (memory-bound) work determines the achievable rate of each phase.
const (
	KGemm  = "gemm"  // general matrix multiply (Level 3)
	KSyrk  = "syr2k" // symmetric rank-2k update (Level 3)
	KTrmm  = "trmm"  // triangular multiply (Level 3)
	KSymv  = "symv"  // symmetric matrix-vector (Level 2, memory-bound)
	KGemv  = "gemv"  // general matrix-vector (Level 2, memory-bound)
	KLarf  = "larf"  // unblocked reflector application (Level 2)
	KLarfb = "larfb" // blocked reflector application (Level 3)
	KOther = "other" // Level 1 and scalar work
)

// Phase names used by the drivers.
const (
	PhaseReduction = "reduction"  // dense → tridiagonal (both stages)
	PhaseStage1    = "stage1"     // dense → band
	PhaseStage2    = "stage2"     // band → tridiagonal (bulge chasing)
	PhaseEigT      = "eig_t"      // tridiagonal eigensolver
	PhaseUpdateQ2  = "update_q2"  // apply Q2 to E (legacy two-phase path)
	PhaseUpdateQ1  = "update_q1"  // apply Q1 to (Q2 E) (legacy two-phase path)
	PhaseBacktrans = "back_trans" // total back-transformation

	// PhaseBacktransFused is the fused single-pass back-transformation:
	// Q₂ and Q₁ applied per column block of E with no inter-phase barrier.
	// The Q₂/Q₁ split inside it is recorded via AttributeFlops under the
	// legacy phase names, so the Figure 1 breakdown stays reconstructible.
	PhaseBacktransFused = "backtrans_fused"

	// PhaseBatchWait is the time a batch item spent blocked in SolveBatch's
	// admission gate (concurrency slots + memory-budget reservation) before
	// its first phase ran. It is recorded into the item's own collector, so
	// per-item traces through the pipelined executor separate queueing delay
	// from compute — without it, admission pressure would be invisible in
	// the per-phase breakdown and look like a slow stage 1.
	PhaseBatchWait = "batch_wait"

	// Attribution-only sub-phases of the stage-1 reduction. The stage runs
	// under one wall-clock phase (PhaseStage1); the reducer credits the busy
	// time of its kernels here, split by task class, plus the idle
	// worker-time of the scheduled run — which is how the look-ahead
	// restructure proves the panel factorization left the critical path
	// (look-ahead shrinks stall without changing panel/update work).
	PhaseStage1Panel  = "stage1_panel"  // GEQRT/TSQRT/SYRFB (panel factorization chain)
	PhaseStage1Update = "stage1_update" // trailing-update and mirror kernels
	// PhaseStage1Stall is workers·wall − busy for the stage: the worker-time
	// spent idle waiting for dependences (plus scheduler overhead). On an
	// oversubscribed host it also absorbs time-sharing noise, so compare
	// stall between runs of the same width, not across widths.
	PhaseStage1Stall = "stage1_stall"

	// Attribution-only sub-phases of the tridiagonal stage. eig_t runs
	// under one wall-clock phase; the solvers credit coarse flop estimates
	// of their kernels here via AttributeFlops (the same side-channel the
	// fused back-transformation uses), so the D&C recurse/merge and
	// bisection/inverse-iteration shares of the phase stay reconstructible
	// even when the stage executes as one task DAG.
	PhaseEigTRecurse = "eig_t_recurse" // QR base cases / sequential subtrees
	PhaseEigTMerge   = "eig_t_merge"   // secular solves + rank-one update GEMM
	PhaseEigTBisect  = "eig_t_bisect"  // Sturm-count bisection (Stebz)
	PhaseEigTStein   = "eig_t_stein"   // inverse iteration + cluster MGS

	// PhaseSBRPrefix prefixes the wall-clock phase of each successive-band-
	// reduction sweep ("sbr_sweep0", "sbr_sweep1", …). Each narrowing sweep
	// of a multi-sweep stage 1 is its own resumable driver phase, so its
	// wall-clock is attributed separately — see PhaseSBRSweep.
	PhaseSBRPrefix = "sbr_sweep"
)

// PhaseSBRSweep returns the wall-clock phase name of SBR narrowing sweep i.
// Distinct per index: the pipelined batch executor keys its drain bias by
// phase name, and per-sweep timings must stay attributable.
func PhaseSBRSweep(i int) string {
	if i < 10 {
		return PhaseSBRPrefix + string(rune('0'+i))
	}
	n := ""
	for i > 0 {
		n = string(rune('0'+i%10)) + n
		i /= 10
	}
	return PhaseSBRPrefix + n
}

// Collector accumulates flops per kernel class and durations per phase. The
// zero value is ready to use. A nil *Collector is valid everywhere and
// records nothing, so instrumented code needs no conditionals.
type Collector struct {
	mu     sync.Mutex
	flops  map[string]*int64
	attr   map[string]*int64
	phases map[string]time.Duration
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{flops: make(map[string]*int64), attr: make(map[string]*int64), phases: make(map[string]time.Duration)}
}

// AddFlops records n floating-point operations under the kernel class.
func (c *Collector) AddFlops(kernel string, n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.flops == nil {
		c.flops = make(map[string]*int64)
	}
	p, ok := c.flops[kernel]
	if !ok {
		p = new(int64)
		c.flops[kernel] = p
	}
	c.mu.Unlock()
	atomic.AddInt64(p, n)
}

// AttributeFlops credits n flops to a named phase. It is the accounting
// side-channel of fused phases: the fused back-transformation runs under one
// wall-clock phase but attributes its work to PhaseUpdateQ2/PhaseUpdateQ1 so
// phase breakdowns (Figure 1) can split the fused time by flop share.
// Attributed flops are bookkeeping only — they never add to TotalFlops (the
// kernels already counted them by class).
func (c *Collector) AttributeFlops(phase string, n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.attr == nil {
		c.attr = make(map[string]*int64)
	}
	p, ok := c.attr[phase]
	if !ok {
		p = new(int64)
		c.attr[phase] = p
	}
	c.mu.Unlock()
	atomic.AddInt64(p, n)
}

// AttributedFlops returns the flops credited to a phase via AttributeFlops.
func (c *Collector) AttributedFlops(phase string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.attr[phase]; ok {
		return atomic.LoadInt64(p)
	}
	return 0
}

// Flops returns the recorded count for a kernel class.
func (c *Collector) Flops(kernel string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.flops[kernel]; ok {
		return atomic.LoadInt64(p)
	}
	return 0
}

// TotalFlops sums all kernel classes.
func (c *Collector) TotalFlops() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, p := range c.flops {
		t += atomic.LoadInt64(p)
	}
	return t
}

// Phase runs fn and adds its wall time to the named phase.
func (c *Collector) Phase(name string, fn func()) {
	if c == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	d := time.Since(start)
	c.mu.Lock()
	c.phases[name] += d
	c.mu.Unlock()
}

// AddPhase adds a duration to a phase directly.
func (c *Collector) AddPhase(name string, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.phases[name] += d
	c.mu.Unlock()
}

// PhaseTime returns the accumulated time of a phase.
func (c *Collector) PhaseTime(name string) time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.phases[name]
}

// Phases returns a copy of all phase durations.
func (c *Collector) Phases() map[string]time.Duration {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Duration, len(c.phases))
	for k, v := range c.phases {
		out[k] = v
	}
	return out
}

// FlopReport formats the per-kernel flop counts, largest first.
func (c *Collector) FlopReport() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	type kv struct {
		k string
		v int64
	}
	var rows []kv
	for k, p := range c.flops {
		rows = append(rows, kv{k, atomic.LoadInt64(p)})
	}
	c.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
	s := ""
	for _, r := range rows {
		s += fmt.Sprintf("%-8s %14d flops\n", r.k, r.v)
	}
	return s
}

// Merge adds src's flop counters, attributed flops and phase durations into
// c. It is how the batch layer gives every co-scheduled solve its own
// collector (so per-solve timings stay attributable) while the Solver's
// caller-supplied collector still sees the aggregate. src is snapshotted
// under its own lock; concurrent recording into src during the merge may or
// may not be included.
func (c *Collector) Merge(src *Collector) {
	if c == nil || src == nil || c == src {
		return
	}
	src.mu.Lock()
	flops := make(map[string]int64, len(src.flops))
	for k, p := range src.flops {
		flops[k] = atomic.LoadInt64(p)
	}
	attr := make(map[string]int64, len(src.attr))
	for k, p := range src.attr {
		attr[k] = atomic.LoadInt64(p)
	}
	phases := make(map[string]time.Duration, len(src.phases))
	for k, v := range src.phases {
		phases[k] = v
	}
	src.mu.Unlock()
	for k, v := range flops {
		c.AddFlops(k, v)
	}
	for k, v := range attr {
		c.AttributeFlops(k, v)
	}
	for k, v := range phases {
		c.AddPhase(k, v)
	}
}

// Reset clears all counters and phases.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flops = make(map[string]*int64)
	c.attr = make(map[string]*int64)
	c.phases = make(map[string]time.Duration)
}
