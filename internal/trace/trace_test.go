package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.AddFlops(KGemm, 100)
	c.AddPhase(PhaseEigT, time.Second)
	ran := false
	c.Phase(PhaseStage1, func() { ran = true })
	if !ran {
		t.Fatal("nil collector did not run phase body")
	}
	if c.Flops(KGemm) != 0 || c.TotalFlops() != 0 || c.PhaseTime(PhaseEigT) != 0 {
		t.Fatal("nil collector returned nonzero counts")
	}
}

func TestFlopAccumulation(t *testing.T) {
	c := New()
	c.AddFlops(KGemm, 10)
	c.AddFlops(KGemm, 5)
	c.AddFlops(KSymv, 3)
	if c.Flops(KGemm) != 15 {
		t.Fatalf("gemm flops = %d, want 15", c.Flops(KGemm))
	}
	if c.TotalFlops() != 18 {
		t.Fatalf("total = %d, want 18", c.TotalFlops())
	}
}

func TestConcurrentAdds(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddFlops(KGemv, 1)
			}
		}()
	}
	wg.Wait()
	if c.Flops(KGemv) != 16000 {
		t.Fatalf("concurrent adds lost updates: %d", c.Flops(KGemv))
	}
}

func TestPhaseTiming(t *testing.T) {
	c := New()
	c.Phase(PhaseEigT, func() { time.Sleep(10 * time.Millisecond) })
	c.Phase(PhaseEigT, func() { time.Sleep(10 * time.Millisecond) })
	if got := c.PhaseTime(PhaseEigT); got < 15*time.Millisecond {
		t.Fatalf("phase time %v, want ≥ 15ms", got)
	}
	ph := c.Phases()
	if len(ph) != 1 {
		t.Fatalf("phases map has %d entries", len(ph))
	}
}

// TestAttributedFlops pins the fused-phase side channel: attribution is
// kept separately per phase, does not leak into the kernel totals, survives
// concurrent adds, works on nil and zero-value collectors, and is cleared
// by Reset.
func TestAttributedFlops(t *testing.T) {
	var nilC *Collector
	nilC.AttributeFlops(PhaseUpdateQ2, 10)
	if nilC.AttributedFlops(PhaseUpdateQ2) != 0 {
		t.Fatal("nil collector returned attribution")
	}

	var zero Collector // zero value, maps lazily initialized
	zero.AttributeFlops(PhaseUpdateQ1, 7)
	if zero.AttributedFlops(PhaseUpdateQ1) != 7 {
		t.Fatal("zero-value collector lost attribution")
	}

	c := New()
	c.AddFlops(KGemm, 100)
	c.AttributeFlops(PhaseUpdateQ2, 40)
	c.AttributeFlops(PhaseUpdateQ2, 2)
	c.AttributeFlops(PhaseUpdateQ1, 5)
	if got := c.AttributedFlops(PhaseUpdateQ2); got != 42 {
		t.Fatalf("Q2 attribution = %d, want 42", got)
	}
	if got := c.AttributedFlops(PhaseUpdateQ1); got != 5 {
		t.Fatalf("Q1 attribution = %d, want 5", got)
	}
	if c.AttributedFlops(PhaseStage1) != 0 {
		t.Fatal("unattributed phase nonzero")
	}
	if c.TotalFlops() != 100 {
		t.Fatalf("attribution leaked into kernel totals: %d", c.TotalFlops())
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AttributeFlops(PhaseUpdateQ2, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.AttributedFlops(PhaseUpdateQ2); got != 42+8000 {
		t.Fatalf("concurrent attribution lost updates: %d", got)
	}

	c.Reset()
	if c.AttributedFlops(PhaseUpdateQ2) != 0 {
		t.Fatal("reset did not clear attribution")
	}
}

func TestReportAndReset(t *testing.T) {
	c := New()
	c.AddFlops(KGemm, 1000)
	c.AddFlops(KSymv, 1)
	rep := c.FlopReport()
	if !strings.Contains(rep, "gemm") || !strings.Contains(rep, "symv") {
		t.Fatalf("report missing kernels: %q", rep)
	}
	if strings.Index(rep, "gemm") > strings.Index(rep, "symv") {
		t.Fatal("report not sorted by count")
	}
	c.Reset()
	if c.TotalFlops() != 0 {
		t.Fatal("reset did not clear flops")
	}
}

func TestMerge(t *testing.T) {
	dst, src := New(), New()
	dst.AddFlops(KGemm, 10)
	src.AddFlops(KGemm, 5)
	src.AddFlops(KLarfb, 7)
	src.AttributeFlops(PhaseStage1, 12)
	src.AddPhase(PhaseStage1, time.Second)
	dst.Merge(src)
	if dst.Flops(KGemm) != 15 || dst.Flops(KLarfb) != 7 {
		t.Fatalf("merged flops: gemm=%d geqrt=%d", dst.Flops(KGemm), dst.Flops(KLarfb))
	}
	if dst.AttributedFlops(PhaseStage1) != 12 {
		t.Fatal("attributed flops not merged")
	}
	if dst.PhaseTime(PhaseStage1) != time.Second {
		t.Fatal("phase time not merged")
	}
	// src is untouched and still usable.
	if src.Flops(KGemm) != 5 {
		t.Fatal("Merge mutated the source")
	}
	dst.Merge(nil) // no-op
	dst.Merge(dst) // self-merge guard
	if dst.Flops(KGemm) != 15 {
		t.Fatal("self/nil merge changed totals")
	}
	var nilC *Collector
	nilC.Merge(src) // nil receiver is a no-op
}
