package tridiag

import "math"

// SturmCount returns the number of eigenvalues of the symmetric tridiagonal
// matrix (d, e) that are strictly less than x, computed from the signs of
// the LDLᵀ pivots of T − x·I with the standard safeguard against zero
// pivots.
func SturmCount(d, e []float64, x float64) int {
	n := len(d)
	count := 0
	q := 1.0
	for i := 0; i < n; i++ {
		var e2 float64
		if i > 0 {
			e2 = e[i-1] * e[i-1]
		}
		q = d[i] - x - e2/q
		if q <= 0 {
			// An exactly zero pivot is counted as negative (tie-break: an
			// eigenvalue of a leading minor equal to x counts as below x)
			// and then replaced by a tiny negative value so the recurrence
			// never divides by zero. Counting before replacing keeps the
			// count monotone in x.
			count++
			if q == 0 {
				q = -Eps * (math.Abs(x) + 1)
			}
		}
	}
	return count
}

// stebzIval is one entry of the bisection work-stack: eigenvalues a..b
// (1-based) are known to lie in (lo, hi], which has been halved depth times.
type stebzIval struct {
	lo, hi float64
	a, b   int
	depth  int
}

// stebzMaxDepth bounds the halvings applied to any bracket (the former
// per-eigenvalue iteration guard: one halving per iteration).
const stebzMaxDepth = 20000

// stebzDone is the DSTEBZ-style convergence test on a bracket.
func stebzDone(lo, hi float64) bool {
	return hi-lo <= 2*Eps*(math.Abs(lo)+math.Abs(hi))+2*math.SmallestNonzeroFloat64
}

// stebzBracket returns the initial bracket strictly containing the spectrum.
func stebzBracket(d, e []float64) (lo, hi float64) {
	bound := maxAbsBound(d, e)
	return -bound - 1 - 2*Eps*bound, bound + 1 + 2*Eps*bound
}

// stebzInto computes eigenvalues a..b (1-based, ascending) of (d, e) into
// out[idx-off] for idx in [a, b] by bisection on the Sturm count, sharing
// each count between every eigenvalue in the bracket: the work-stack splits
// a bracket at its midpoint and routes index sub-ranges to the halves, so a
// count at depth g serves all eigenvalues still sharing that bracket
// instead of being recomputed once per eigenvalue from the global bracket.
//
// The midpoint sequence refining eigenvalue #idx depends only on (lo0, hi0)
// and the Sturm counts along its root path — never on which other indices
// are being computed — so the results are bitwise identical to the classic
// one-eigenvalue-at-a-time loop, and to any partition of [a, b] into
// sub-ranges (what the chunk-parallel StebzSched relies on). It returns the
// number of Sturm counts spent (for flop attribution).
func (w *Work) stebzInto(d, e []float64, a, b int, out []float64, off int) int {
	lo0, hi0 := stebzBracket(d, e)
	stack := w.stebzStackBuf()
	stack = append(stack, stebzIval{lo: lo0, hi: hi0, a: a, b: b})
	counts := 0
	for len(stack) > 0 {
		iv := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		mid := 0.5 * (iv.lo + iv.hi)
		if mid <= iv.lo || mid >= iv.hi || iv.depth >= stebzMaxDepth {
			// The bracket is exhausted to floating-point resolution (or the
			// guard tripped); every eigenvalue still in it gets its middle.
			for idx := iv.a; idx <= iv.b; idx++ {
				out[idx-off] = mid
			}
			continue
		}
		c := SturmCount(d, e, mid)
		counts++
		// Eigenvalues a..min(b, c) lie in (lo, mid], the rest in (mid, hi].
		// Push the right half first so the left (smaller eigenvalues) is
		// processed next — deterministic LIFO order, bounded stack depth.
		if a2 := max(iv.a, c+1); a2 <= iv.b {
			if stebzDone(mid, iv.hi) {
				for idx := a2; idx <= iv.b; idx++ {
					out[idx-off] = 0.5 * (mid + iv.hi)
				}
			} else {
				stack = append(stack, stebzIval{lo: mid, hi: iv.hi, a: a2, b: iv.b, depth: iv.depth + 1})
			}
		}
		if b2 := min(iv.b, c); iv.a <= b2 {
			if stebzDone(iv.lo, mid) {
				for idx := iv.a; idx <= b2; idx++ {
					out[idx-off] = 0.5 * (iv.lo + mid)
				}
			} else {
				stack = append(stack, stebzIval{lo: iv.lo, hi: mid, a: iv.a, b: b2, depth: iv.depth + 1})
			}
		}
	}
	w.putStebzStack(stack)
	return counts
}

// Stebz computes eigenvalues il..iu (1-based, inclusive, ascending order) of
// the symmetric tridiagonal matrix (d, e) by bisection on the Sturm count.
// Pass il=1, iu=n for the full spectrum. The returned slice has length
// iu−il+1. Each eigenvalue is refined until the bracket width is below
// 2·Eps·(|lo|+|hi|) + underflow guard, matching the DSTEBZ tolerance.
// Brackets are shared: one Sturm count at each bisection level serves every
// eigenvalue whose bracket still contains the midpoint, which cuts the
// count of O(n) Sturm evaluations by roughly the average bracket occupancy
// while producing bitwise identical eigenvalues (see stebzInto).
func Stebz(d, e []float64, il, iu int) []float64 {
	n := len(d)
	checkTE(d, e)
	if n == 0 {
		return nil
	}
	if il < 1 || iu > n || il > iu {
		panic("tridiag: Stebz index range out of bounds")
	}
	out := make([]float64, iu-il+1)
	(*Work)(nil).stebzInto(d, e, il, iu, out, il)
	return out
}

// StebzRange computes all eigenvalues in the half-open interval (vl, vu],
// returning them in ascending order together with the index (1-based) of the
// first one.
func StebzRange(d, e []float64, vl, vu float64) (vals []float64, first int) {
	nLess := SturmCount(d, e, vl)
	nLeq := SturmCount(d, e, vu)
	// Eigenvalues with index nLess+1 .. nLeq lie in (vl, vu].
	if nLeq <= nLess {
		return nil, nLess + 1
	}
	return Stebz(d, e, nLess+1, nLeq), nLess + 1
}
