package tridiag

import "math"

// SturmCount returns the number of eigenvalues of the symmetric tridiagonal
// matrix (d, e) that are strictly less than x, computed from the signs of
// the LDLᵀ pivots of T − x·I with the standard safeguard against zero
// pivots.
func SturmCount(d, e []float64, x float64) int {
	n := len(d)
	count := 0
	q := 1.0
	for i := 0; i < n; i++ {
		var e2 float64
		if i > 0 {
			e2 = e[i-1] * e[i-1]
		}
		q = d[i] - x - e2/q
		if q <= 0 {
			// An exactly zero pivot is counted as negative (tie-break: an
			// eigenvalue of a leading minor equal to x counts as below x)
			// and then replaced by a tiny negative value so the recurrence
			// never divides by zero. Counting before replacing keeps the
			// count monotone in x.
			count++
			if q == 0 {
				q = -Eps * (math.Abs(x) + 1)
			}
		}
	}
	return count
}

// Stebz computes eigenvalues il..iu (1-based, inclusive, ascending order) of
// the symmetric tridiagonal matrix (d, e) by bisection on the Sturm count.
// Pass il=1, iu=n for the full spectrum. The returned slice has length
// iu−il+1. Each eigenvalue is refined until the bracket width is below
// 2·Eps·(|lo|+|hi|) + underflow guard, matching the DSTEBZ tolerance.
func Stebz(d, e []float64, il, iu int) []float64 {
	n := len(d)
	checkTE(d, e)
	if n == 0 {
		return nil
	}
	if il < 1 || iu > n || il > iu {
		panic("tridiag: Stebz index range out of bounds")
	}
	bound := maxAbsBound(d, e)
	// Widen slightly so the outer brackets strictly contain the spectrum.
	lo0 := -bound - 1 - 2*Eps*bound
	hi0 := bound + 1 + 2*Eps*bound

	out := make([]float64, iu-il+1)
	for idx := il; idx <= iu; idx++ {
		// Find eigenvalue #idx: the smallest x with SturmCount(x) >= idx.
		lo, hi := lo0, hi0
		for iterGuard := 0; iterGuard < 20000; iterGuard++ {
			mid := 0.5 * (lo + hi)
			if mid <= lo || mid >= hi {
				break
			}
			if SturmCount(d, e, mid) >= idx {
				hi = mid
			} else {
				lo = mid
			}
			if hi-lo <= 2*Eps*(math.Abs(lo)+math.Abs(hi))+2*math.SmallestNonzeroFloat64 {
				break
			}
		}
		out[idx-il] = 0.5 * (lo + hi)
	}
	return out
}

// StebzRange computes all eigenvalues in the half-open interval (vl, vu],
// returning them in ascending order together with the index (1-based) of the
// first one.
func StebzRange(d, e []float64, vl, vu float64) (vals []float64, first int) {
	nLess := SturmCount(d, e, vl)
	nLeq := SturmCount(d, e, vu)
	// Eigenvalues with index nLess+1 .. nLeq lie in (vl, vu].
	if nLeq <= nLess {
		return nil, nLess + 1
	}
	return Stebz(d, e, nLess+1, nLeq), nLess + 1
}
