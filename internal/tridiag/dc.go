package tridiag

import (
	"math"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// dcBaseSize is the subproblem order below which divide & conquer falls back
// to QR iteration (LAPACK's SMLSIZ plays the same role).
const dcBaseSize = 32

// dcEnt is one eigenpair reference in the decoupled (block-diagonal) merge.
type dcEnt struct {
	val float64
	src int // 0: q1, 1: q2
	col int
}

// dcOut is one output column of the rank-one merge: either a secular-update
// column or a deflated column of the permuted basis.
type dcOut struct {
	val    float64
	secIdx int // ≥0: column of the secular update; −1: deflated column
	defIdx int
}

// Stedc computes all eigenvalues and eigenvectors of the symmetric
// tridiagonal matrix (d, e) by Cuppen's divide-and-conquer method with
// deflation and Gu–Eisenstat stabilized eigenvector construction (the
// "EVD/D&C" method of the paper's Table 1). Inputs are not modified.
//
// It returns the eigenvalues in ascending order and an orthogonal matrix Q
// with T = Q·diag(vals)·Qᵀ.
func Stedc(d, e []float64) (vals []float64, q *matrix.Dense, err error) {
	return StedcWork(d, e, nil)
}

// StedcWork is Stedc drawing every internal buffer from w (nil w → plain
// allocation). The returned slice and matrix are pool-owned: once the
// caller has copied what it needs it should hand them back via w.PutVec and
// w.PutMat so repeated solves reach an allocation-free steady state.
func StedcWork(d, e []float64, w *Work) ([]float64, *matrix.Dense, error) {
	checkTE(d, e)
	n := len(d)
	dd := w.vec(n)
	copy(dd, d)
	var ee []float64
	if n > 1 {
		ee = w.vec(n - 1)
		copy(ee, e[:n-1])
	}
	vals, q, err := dcRecurse(dd, ee, w)
	if err != nil {
		return nil, nil, err
	}
	// The recursion may return dd itself (base case) or a pool buffer; hand
	// the caller a buffer distinct from dd so both can be recycled safely.
	out := w.vec(n)
	copy(out, vals)
	if len(vals) > 0 && &vals[0] != &dd[0] {
		w.putVec(vals)
	}
	w.putVec(dd)
	w.putVec(ee)
	return out, q, nil
}

// dcRecurse solves the subproblem (d, e) destructively. The returned value
// slice is either d itself or a pool buffer; the returned matrix is always
// pool-owned.
func dcRecurse(d, e []float64, w *Work) ([]float64, *matrix.Dense, error) {
	n := len(d)
	if n == 0 {
		return nil, w.mat(0, 0), nil
	}
	if n <= dcBaseSize {
		z := w.eye(n)
		if err := steqrWork(d, e, z, w); err != nil {
			return nil, nil, err
		}
		return d, z, nil
	}
	m := n / 2
	rho := e[m-1]
	if rho == 0 {
		// The matrix is block diagonal: solve the halves and interleave.
		l1, q1, err := dcRecurse(d[:m], e[:m-1], w)
		if err != nil {
			return nil, nil, err
		}
		l2, q2, err := dcRecurse(d[m:], e[m:], w)
		if err != nil {
			return nil, nil, err
		}
		vals, q := dcDecoupled(l1, q1, l2, q2, w)
		recycleHalf(l1, d, w)
		recycleHalf(l2, d[m:], w)
		w.putMat(q1)
		w.putMat(q2)
		return vals, q, nil
	}
	rhoAbs := math.Abs(rho)
	theta := 1.0
	if rho < 0 {
		theta = -1
	}
	// Rank-one tear: T = diag(T1', T2') + |rho|·u·uᵀ with u[m−1] = 1,
	// u[m] = sign(rho).
	d[m-1] -= rhoAbs
	d[m] -= rhoAbs
	l1, q1, err := dcRecurse(d[:m], e[:m-1], w)
	if err != nil {
		return nil, nil, err
	}
	l2, q2, err := dcRecurse(d[m:], e[m:], w)
	if err != nil {
		return nil, nil, err
	}
	// z = [last row of Q1 ; theta · first row of Q2].
	z := w.vec(n)
	for j := 0; j < m; j++ {
		z[j] = q1.At(m-1, j)
	}
	for j := 0; j < n-m; j++ {
		z[m+j] = theta * q2.At(0, j)
	}
	dvals := w.vec(n)
	copy(dvals, l1)
	copy(dvals[m:], l2)
	// Block-diagonal accumulated basis.
	q := w.mat(n, n)
	for j := 0; j < m; j++ {
		copy(q.Data[j*q.Stride:j*q.Stride+m], q1.Data[j*q1.Stride:j*q1.Stride+m])
	}
	for j := 0; j < n-m; j++ {
		copy(q.Data[(m+j)*q.Stride+m:(m+j)*q.Stride+n], q2.Data[j*q2.Stride:j*q2.Stride+n-m])
	}
	recycleHalf(l1, d, w)
	recycleHalf(l2, d[m:], w)
	w.putMat(q1)
	w.putMat(q2)
	return dcMerge(dvals, z, rhoAbs, q, w)
}

// recycleHalf returns a child's value buffer to the pool unless it aliases
// the parent's d storage (the base case returns its input slice).
func recycleHalf(l, half []float64, w *Work) {
	if len(l) > 0 && &l[0] != &half[0] {
		w.putVec(l)
	}
}

// dcDecoupled builds the combined sorted decomposition for a block-diagonal
// matrix (exact-zero coupling between the halves).
func dcDecoupled(l1 []float64, q1 *matrix.Dense, l2 []float64, q2 *matrix.Dense, w *Work) ([]float64, *matrix.Dense) {
	m, n2 := len(l1), len(l2)
	n := m + n2
	ents := w.entsBuf(n)
	for j, v := range l1 {
		ents = append(ents, dcEnt{v, 0, j})
	}
	for j, v := range l2 {
		ents = append(ents, dcEnt{v, 1, j})
	}
	w.sortEnts(ents)
	vals := w.vec(n)
	q := w.mat(n, n)
	for j, en := range ents {
		vals[j] = en.val
		dst := q.Data[j*q.Stride : j*q.Stride+n]
		if en.src == 0 {
			copy(dst[:m], q1.Data[en.col*q1.Stride:en.col*q1.Stride+m])
		} else {
			copy(dst[m:], q2.Data[en.col*q2.Stride:en.col*q2.Stride+n2])
		}
	}
	return vals, q
}

// dcMergeState carries a rank-one merge across the GEMM split: dcMergePre
// computes everything up to (and excluding) the Level-3 eigenvector update,
// dcMergeGemm applies the update to a range of secular columns, and
// dcMergePost scatters them into their sorted output positions. The
// sequential dcMerge below runs the three steps back to back; the parallel
// D&C DAG runs dcMergeGemm as independent per-column-block tasks between
// the pre and post tasks. The split is arithmetic-free: the only float
// computation between pre and post is the GEMM itself, and q·S columns are
// computed independently per column, so any column partition produces
// bitwise identical results.
type dcMergeState struct {
	n, k int
	qsub *matrix.Dense // survivor basis columns (GEMM left factor)
	s    *matrix.Dense // secular eigenvector matrix (GEMM right factor)
	qsec *matrix.Dense // GEMM destination
	qout *matrix.Dense // output basis; deflated columns already in place
	vals []float64     // sorted output eigenvalues, complete after pre
	pos  []int         // output column of secular column j (len k, pooled)
}

// dcMerge solves the rank-one-updated diagonal eigenproblem
// M = diag(dvals) + rho·z·zᵀ (rho > 0) given the accumulated basis q
// (columns correspond to entries of dvals), performing deflation, the
// secular solves, the Löwner rebuild of z, and the Level-3 eigenvector
// update. It returns sorted eigenvalues and the updated basis, and consumes
// (recycles) dvals, z and q.
func dcMerge(dvals, z []float64, rho float64, q *matrix.Dense, w *Work) ([]float64, *matrix.Dense, error) {
	st := dcMergePre(dvals, z, rho, q, w)
	dcMergeGemm(&st, 0, st.k)
	vals, qout := dcMergePost(&st, w)
	return vals, qout, nil
}

// dcMergePre performs the merge through deflation, the secular solves, the
// Löwner rebuild, assembly of the GEMM factors, and output ordering (sorted
// eigenvalues, deflated columns copied into place, secular column placement
// recorded in pos). It consumes (recycles) dvals, z and q.
func dcMergePre(dvals, z []float64, rho float64, q *matrix.Dense, w *Work) dcMergeState {
	n := len(dvals)

	// Sort by dvals; gather z and the columns of q in permuted order.
	perm := w.permBuf(n)
	for i := range perm {
		perm[i] = i
	}
	w.sortPerm(perm, dvals)
	ds := w.vec(n)
	zs := w.vec(n)
	qp := w.mat(n, n)
	for j, p := range perm {
		ds[j] = dvals[p]
		zs[j] = z[p]
		copy(qp.Data[j*qp.Stride:j*qp.Stride+n], q.Data[p*q.Stride:p*q.Stride+n])
	}
	w.putVec(dvals)
	w.putVec(z)
	w.putMat(q)

	// Deflation thresholds, in the spirit of DLAED2.
	var dmax, zmax float64
	for i := 0; i < n; i++ {
		if a := math.Abs(ds[i]); a > dmax {
			dmax = a
		}
		if a := math.Abs(zs[i]); a > zmax {
			zmax = a
		}
	}
	tol := 8 * Eps * math.Max(dmax, rho*zmax)

	deflated := w.deflatedBuf(n)
	// Rule 1: negligible z component.
	for i := 0; i < n; i++ {
		if rho*math.Abs(zs[i]) <= tol {
			deflated[i] = true
		}
	}
	// Rule 2: close diagonal entries among survivors — rotate the later one
	// into the earlier and deflate it.
	last := -1
	for i := 0; i < n; i++ {
		if deflated[i] {
			continue
		}
		if last >= 0 && ds[i]-ds[last] <= tol {
			zl, zi := zs[last], zs[i]
			r := math.Hypot(zl, zi)
			c, s := zl/r, zi/r
			// Rotate z: survivor keeps r, the later entry deflates with 0.
			zs[last], zs[i] = r, 0
			// Diagonal drift stays inside [ds[last], ds[i]].
			dl, di := ds[last], ds[i]
			ds[last] = c*c*dl + s*s*di
			ds[i] = s*s*dl + c*c*di
			// Rotate the corresponding basis columns: Q ← Q·Gᵀ.
			colL := qp.Data[last*qp.Stride : last*qp.Stride+n]
			colI := qp.Data[i*qp.Stride : i*qp.Stride+n]
			for k := 0; k < n; k++ {
				l, ii := colL[k], colI[k]
				colL[k] = c*l + s*ii
				colI[k] = -s*l + c*ii
			}
			deflated[i] = true
			continue
		}
		last = i
	}

	// Collect survivors.
	sidx := w.sidxBuf(n)
	for i := 0; i < n; i++ {
		if !deflated[i] {
			sidx = append(sidx, i)
		}
	}
	k := len(sidx)

	outs := w.outsBuf(n)
	for i := 0; i < n; i++ {
		if deflated[i] {
			outs = append(outs, dcOut{val: ds[i], secIdx: -1, defIdx: i})
		}
	}

	st := dcMergeState{n: n, k: k}
	if k > 0 {
		dsec := w.vec(k)
		zsec := w.vec(k)
		for j, i := range sidx {
			dsec[j] = ds[i]
			zsec[j] = zs[i]
		}
		bases := w.basesBuf(k)
		mus := w.vec(k)
		for j := 0; j < k; j++ {
			bases[j], mus[j] = SecularRoot(dsec, zsec, rho, j)
		}
		// Gu–Eisenstat: rebuild ẑ from the computed roots via the Löwner
		// formula so the eigenvectors below are numerically orthogonal.
		// λ_j − d_i is always formed as (d[base_j] − d_i) + mu_j.
		zhat := w.vec(k)
		for i := 0; i < k; i++ {
			// ẑ_i² = (λ_i − d_i) · Π_{j≠i} (λ_j − d_i)/(d_j − d_i).
			prod := (dsec[bases[i]] - dsec[i]) + mus[i]
			for j := 0; j < k; j++ {
				if j == i {
					continue
				}
				num := (dsec[bases[j]] - dsec[i]) + mus[j]
				den := dsec[j] - dsec[i]
				prod *= num / den
			}
			if prod < 0 {
				// Roundoff near a heavily deflated configuration; clamp.
				prod = 0
			}
			zhat[i] = math.Copysign(math.Sqrt(prod), zsec[i])
		}
		// Eigenvector matrix in survivor coordinates: column j has entries
		// ẑ_i / (d_i − λ_j), normalized.
		s := w.mat(k, k)
		for j := 0; j < k; j++ {
			col := s.Data[j*s.Stride : j*s.Stride+k]
			for i := 0; i < k; i++ {
				den := (dsec[i] - dsec[bases[j]]) - mus[j]
				col[i] = zhat[i] / den
			}
			nrm := blas.Dnrm2(k, col, 1)
			blas.Dscal(k, 1/nrm, col, 1)
		}
		// Assemble the Level-3 update factors; the GEMM itself
		// (Qsec = Qp[:, sidx] · S) is dcMergeGemm's job.
		qsub := w.mat(n, k)
		for j, i := range sidx {
			copy(qsub.Data[j*qsub.Stride:j*qsub.Stride+n], qp.Data[i*qp.Stride:i*qp.Stride+n])
		}
		st.qsub, st.s, st.qsec = qsub, s, w.mat(n, k)
		for j := 0; j < k; j++ {
			outs = append(outs, dcOut{val: dsec[bases[j]] + mus[j], secIdx: j})
		}
		w.putVec(dsec)
		w.putVec(zsec)
		w.putVec(mus)
		w.putVec(zhat)
	}

	// Output ordering is fully determined here: the secular eigenvalues are
	// known before their vectors, so deflated columns can be placed now and
	// each secular column's destination recorded for dcMergePost.
	w.sortOuts(outs)
	st.vals = w.vec(n)
	st.qout = w.mat(n, n)
	st.pos = w.intVec(k)
	for j, oc := range outs {
		st.vals[j] = oc.val
		if oc.secIdx >= 0 {
			st.pos[oc.secIdx] = j
		} else {
			copy(st.qout.Data[j*st.qout.Stride:j*st.qout.Stride+n],
				qp.Data[oc.defIdx*qp.Stride:oc.defIdx*qp.Stride+n])
		}
	}
	w.putMat(qp)
	w.putVec(ds)
	w.putVec(zs)
	return st
}

// dcMergeGemm computes secular columns [j0, j1) of the rank-one update:
// Qsec[:, j0:j1] = Qsub · S[:, j0:j1]. Distinct column ranges touch
// disjoint output storage and each output column's accumulation order is
// internal to the column, so tiling this call is bitwise neutral.
func dcMergeGemm(st *dcMergeState, j0, j1 int) {
	if st.k == 0 || j0 >= j1 {
		return
	}
	blas.Dgemm(blas.NoTrans, blas.NoTrans, st.n, j1-j0, st.k, 1,
		st.qsub.Data, st.qsub.Stride,
		st.s.Data[j0*st.s.Stride:], st.s.Stride,
		0, st.qsec.Data[j0*st.qsec.Stride:], st.qsec.Stride)
}

// dcMergePost scatters the computed secular columns into their sorted
// output positions and recycles the merge factors, completing the merge.
func dcMergePost(st *dcMergeState, w *Work) ([]float64, *matrix.Dense) {
	n := st.n
	for j := 0; j < st.k; j++ {
		p := st.pos[j]
		copy(st.qout.Data[p*st.qout.Stride:p*st.qout.Stride+n],
			st.qsec.Data[j*st.qsec.Stride:j*st.qsec.Stride+n])
	}
	if st.k > 0 {
		w.putMat(st.qsec)
		w.putMat(st.qsub)
		w.putMat(st.s)
	}
	w.putIntVec(st.pos)
	vals, qout := st.vals, st.qout
	*st = dcMergeState{}
	return vals, qout
}
