package tridiag

import (
	"math"
	"sort"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// dcBaseSize is the subproblem order below which divide & conquer falls back
// to QR iteration (LAPACK's SMLSIZ plays the same role).
const dcBaseSize = 32

// Stedc computes all eigenvalues and eigenvectors of the symmetric
// tridiagonal matrix (d, e) by Cuppen's divide-and-conquer method with
// deflation and Gu–Eisenstat stabilized eigenvector construction (the
// "EVD/D&C" method of the paper's Table 1). Inputs are not modified.
//
// It returns the eigenvalues in ascending order and an orthogonal matrix Q
// with T = Q·diag(vals)·Qᵀ.
func Stedc(d, e []float64) (vals []float64, q *matrix.Dense, err error) {
	checkTE(d, e)
	dd := append([]float64(nil), d...)
	var ee []float64
	if len(d) > 1 {
		ee = append([]float64(nil), e[:len(d)-1]...)
	}
	return dcRecurse(dd, ee)
}

// dcRecurse solves the subproblem (d, e) destructively.
func dcRecurse(d, e []float64) ([]float64, *matrix.Dense, error) {
	n := len(d)
	if n == 0 {
		return nil, matrix.NewDense(0, 0), nil
	}
	if n <= dcBaseSize {
		z := matrix.Eye(n)
		if err := Steqr(d, e, z); err != nil {
			return nil, nil, err
		}
		return d, z, nil
	}
	m := n / 2
	rho := e[m-1]
	if rho == 0 {
		// The matrix is block diagonal: solve the halves and interleave.
		l1, q1, err := dcRecurse(d[:m], e[:m-1])
		if err != nil {
			return nil, nil, err
		}
		l2, q2, err := dcRecurse(d[m:], e[m:])
		if err != nil {
			return nil, nil, err
		}
		vals, q := dcDecoupled(l1, q1, l2, q2)
		return vals, q, nil
	}
	rhoAbs := math.Abs(rho)
	theta := 1.0
	if rho < 0 {
		theta = -1
	}
	// Rank-one tear: T = diag(T1', T2') + |rho|·u·uᵀ with u[m−1] = 1,
	// u[m] = sign(rho).
	d[m-1] -= rhoAbs
	d[m] -= rhoAbs
	l1, q1, err := dcRecurse(d[:m], e[:m-1])
	if err != nil {
		return nil, nil, err
	}
	l2, q2, err := dcRecurse(d[m:], e[m:])
	if err != nil {
		return nil, nil, err
	}
	// z = [last row of Q1 ; theta · first row of Q2].
	z := make([]float64, n)
	for j := 0; j < m; j++ {
		z[j] = q1.At(m-1, j)
	}
	for j := 0; j < n-m; j++ {
		z[m+j] = theta * q2.At(0, j)
	}
	dvals := make([]float64, n)
	copy(dvals, l1)
	copy(dvals[m:], l2)
	// Block-diagonal accumulated basis.
	q := matrix.NewDense(n, n)
	for j := 0; j < m; j++ {
		copy(q.Data[j*q.Stride:j*q.Stride+m], q1.Data[j*q1.Stride:j*q1.Stride+m])
	}
	for j := 0; j < n-m; j++ {
		copy(q.Data[(m+j)*q.Stride+m:(m+j)*q.Stride+n], q2.Data[j*q2.Stride:j*q2.Stride+n-m])
	}
	return dcMerge(dvals, z, rhoAbs, q)
}

// dcDecoupled builds the combined sorted decomposition for a block-diagonal
// matrix (exact-zero coupling between the halves).
func dcDecoupled(l1 []float64, q1 *matrix.Dense, l2 []float64, q2 *matrix.Dense) ([]float64, *matrix.Dense) {
	m, n2 := len(l1), len(l2)
	n := m + n2
	type ent struct {
		val  float64
		src  int // 0: q1, 1: q2
		col  int
	}
	ents := make([]ent, 0, n)
	for j, v := range l1 {
		ents = append(ents, ent{v, 0, j})
	}
	for j, v := range l2 {
		ents = append(ents, ent{v, 1, j})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].val < ents[j].val })
	vals := make([]float64, n)
	q := matrix.NewDense(n, n)
	for j, en := range ents {
		vals[j] = en.val
		dst := q.Data[j*q.Stride : j*q.Stride+n]
		if en.src == 0 {
			copy(dst[:m], q1.Data[en.col*q1.Stride:en.col*q1.Stride+m])
		} else {
			copy(dst[m:], q2.Data[en.col*q2.Stride:en.col*q2.Stride+n2])
		}
	}
	return vals, q
}

// dcMerge solves the rank-one-updated diagonal eigenproblem
// M = diag(dvals) + rho·z·zᵀ (rho > 0) given the accumulated basis q
// (columns correspond to entries of dvals), performing deflation, the
// secular solves, the Löwner rebuild of z, and the Level-3 eigenvector
// update. It returns sorted eigenvalues and the updated basis.
func dcMerge(dvals, z []float64, rho float64, q *matrix.Dense) ([]float64, *matrix.Dense, error) {
	n := len(dvals)

	// Sort by dvals; gather z and the columns of q in permuted order.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return dvals[perm[a]] < dvals[perm[b]] })
	ds := make([]float64, n)
	zs := make([]float64, n)
	qp := matrix.NewDense(n, n)
	for j, p := range perm {
		ds[j] = dvals[p]
		zs[j] = z[p]
		copy(qp.Data[j*qp.Stride:j*qp.Stride+n], q.Data[p*q.Stride:p*q.Stride+n])
	}

	// Deflation thresholds, in the spirit of DLAED2.
	var dmax, zmax float64
	for i := 0; i < n; i++ {
		if a := math.Abs(ds[i]); a > dmax {
			dmax = a
		}
		if a := math.Abs(zs[i]); a > zmax {
			zmax = a
		}
	}
	tol := 8 * Eps * math.Max(dmax, rho*zmax)

	deflated := make([]bool, n)
	// Rule 1: negligible z component.
	for i := 0; i < n; i++ {
		if rho*math.Abs(zs[i]) <= tol {
			deflated[i] = true
		}
	}
	// Rule 2: close diagonal entries among survivors — rotate the later one
	// into the earlier and deflate it.
	last := -1
	for i := 0; i < n; i++ {
		if deflated[i] {
			continue
		}
		if last >= 0 && ds[i]-ds[last] <= tol {
			zl, zi := zs[last], zs[i]
			r := math.Hypot(zl, zi)
			c, s := zl/r, zi/r
			// Rotate z: survivor keeps r, the later entry deflates with 0.
			zs[last], zs[i] = r, 0
			// Diagonal drift stays inside [ds[last], ds[i]].
			dl, di := ds[last], ds[i]
			ds[last] = c*c*dl + s*s*di
			ds[i] = s*s*dl + c*c*di
			// Rotate the corresponding basis columns: Q ← Q·Gᵀ.
			colL := qp.Data[last*qp.Stride : last*qp.Stride+n]
			colI := qp.Data[i*qp.Stride : i*qp.Stride+n]
			for k := 0; k < n; k++ {
				l, ii := colL[k], colI[k]
				colL[k] = c*l + s*ii
				colI[k] = -s*l + c*ii
			}
			deflated[i] = true
			continue
		}
		last = i
	}

	// Collect survivors.
	var sidx []int
	for i := 0; i < n; i++ {
		if !deflated[i] {
			sidx = append(sidx, i)
		}
	}
	k := len(sidx)

	type outCol struct {
		val    float64
		secIdx int // ≥0: column of the secular update; −1: deflated column
		defIdx int
	}
	outs := make([]outCol, 0, n)
	for i := 0; i < n; i++ {
		if deflated[i] {
			outs = append(outs, outCol{val: ds[i], secIdx: -1, defIdx: i})
		}
	}

	var qsec *matrix.Dense
	if k > 0 {
		dsec := make([]float64, k)
		zsec := make([]float64, k)
		for j, i := range sidx {
			dsec[j] = ds[i]
			zsec[j] = zs[i]
		}
		bases := make([]int, k)
		mus := make([]float64, k)
		for j := 0; j < k; j++ {
			bases[j], mus[j] = SecularRoot(dsec, zsec, rho, j)
		}
		// Gu–Eisenstat: rebuild ẑ from the computed roots via the Löwner
		// formula so the eigenvectors below are numerically orthogonal.
		// λ_j − d_i is always formed as (d[base_j] − d_i) + mu_j.
		zhat := make([]float64, k)
		for i := 0; i < k; i++ {
			// ẑ_i² = (λ_i − d_i) · Π_{j≠i} (λ_j − d_i)/(d_j − d_i).
			prod := (dsec[bases[i]] - dsec[i]) + mus[i]
			for j := 0; j < k; j++ {
				if j == i {
					continue
				}
				num := (dsec[bases[j]] - dsec[i]) + mus[j]
				den := dsec[j] - dsec[i]
				prod *= num / den
			}
			if prod < 0 {
				// Roundoff near a heavily deflated configuration; clamp.
				prod = 0
			}
			zhat[i] = math.Copysign(math.Sqrt(prod), zsec[i])
		}
		// Eigenvector matrix in survivor coordinates: column j has entries
		// ẑ_i / (d_i − λ_j), normalized.
		s := matrix.NewDense(k, k)
		for j := 0; j < k; j++ {
			col := s.Data[j*s.Stride : j*s.Stride+k]
			for i := 0; i < k; i++ {
				den := (dsec[i] - dsec[bases[j]]) - mus[j]
				col[i] = zhat[i] / den
			}
			nrm := blas.Dnrm2(k, col, 1)
			blas.Dscal(k, 1/nrm, col, 1)
		}
		// Level-3 update: Qsec = Qp[:, sidx] · S.
		qsub := matrix.NewDense(n, k)
		for j, i := range sidx {
			copy(qsub.Data[j*qsub.Stride:j*qsub.Stride+n], qp.Data[i*qp.Stride:i*qp.Stride+n])
		}
		qsec = matrix.NewDense(n, k)
		blas.Dgemm(blas.NoTrans, blas.NoTrans, n, k, k, 1,
			qsub.Data, qsub.Stride, s.Data, s.Stride, 0, qsec.Data, qsec.Stride)
		for j := 0; j < k; j++ {
			outs = append(outs, outCol{val: dsec[bases[j]] + mus[j], secIdx: j})
		}
	}

	sort.Slice(outs, func(a, b int) bool { return outs[a].val < outs[b].val })
	vals := make([]float64, n)
	qout := matrix.NewDense(n, n)
	for j, oc := range outs {
		vals[j] = oc.val
		dst := qout.Data[j*qout.Stride : j*qout.Stride+n]
		if oc.secIdx >= 0 {
			copy(dst, qsec.Data[oc.secIdx*qsec.Stride:oc.secIdx*qsec.Stride+n])
		} else {
			copy(dst, qp.Data[oc.defIdx*qp.Stride:oc.defIdx*qp.Stride+n])
		}
	}
	return vals, qout, nil
}
