// Scheduler-parallel entry points of the tridiagonal eigensolvers. Each
// *Sched function runs the same kernel bodies as its sequential counterpart
// and is bitwise identical to it at any worker count:
//
//   - StedcSched executes Cuppen's recursion as a flat task DAG: subtrees
//     below a cutoff are one sequential task each, and every rank-one merge
//     above it splits into a pre task (deflation, secular solves, Löwner
//     rebuild, output ordering), per-column-block GEMM tile tasks, and a
//     post task that scatters the secular columns. Determinism: the tree
//     shape and the rank-one tears depend only on the problem; tile widths
//     depend only on the node size; distinct tasks write disjoint outputs;
//     and the merge GEMM computes each output column independently, so any
//     column partition is bitwise neutral (pinned by tests against the
//     plain recursive StedcWork).
//
//   - StebzSched partitions the index range into fixed-width chunks; each
//     chunk refines its eigenvalues with the shared-Sturm-count bracket
//     splitting of stebzInto, whose per-eigenvalue midpoint sequence is
//     independent of the chunking.
//
//   - SteinSched runs one task per reorthogonalization cluster; clusters
//     are independent by construction (disjoint output columns, cluster-
//     local MGS and PRNG seed) and the within-cluster iteration stays
//     sequential.
//
// Task bodies draw scratch from per-worker Work pools (WorkSet), so the
// parallel paths preserve the allocation-free steady state of the pooled
// sequential solvers.
package tridiag

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
)

// DCParCutoff is the subtree size at or below which the parallel D&C runs
// the whole subtree as one sequential task (values below dcBaseSize are
// treated as dcBaseSize). It tunes task granularity only: the recursion
// tree — and therefore every floating-point operation — is unchanged, so
// any cutoff produces bitwise identical results.
var DCParCutoff = 64

// dcTileCols is the secular-update GEMM tile width of the parallel merge.
// It is a function of nothing — in particular not of the worker count —
// so the column partition (and the results) never depend on parallelism.
const dcTileCols = 64

// errLatch is the shared failure flag of a task DAG: the first error wins,
// later tasks observe failed() and skip their bodies.
type errLatch struct {
	flag atomic.Bool
	mu   sync.Mutex
	err  error
}

func (l *errLatch) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
		l.flag.Store(true)
	}
	l.mu.Unlock()
}

func (l *errLatch) failed() bool { return l.flag.Load() }

func (l *errLatch) get() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *errLatch) reset() {
	l.mu.Lock()
	l.err = nil
	l.flag.Store(false)
	l.mu.Unlock()
}

// dcNode is one node of the explicit recursion tree built above the cutoff.
// Leaves (left < 0) cover a whole subtree and run dcRecurse sequentially;
// internal nodes are decoupled (rho == 0) or rank-one merges.
type dcNode struct {
	lo, hi      int // half-open index range in (dd, ee)
	left, right int // child node indices; -1 at leaves
	depth       int
	rho         float64 // |e[mid-1]| of a rank-one tear, 0 if decoupled
	theta       float64 // sign(e[mid-1])

	vals []float64     // result eigenvalues (pool-owned)
	q    *matrix.Dense // result basis (pool-owned)
	st   dcMergeState  // rank-one merge state, live between pre and post
}

// dcRun is the per-solve state of the D&C DAG; it is retained inside the
// WorkSet so steady-state solves build the tree with zero allocations on
// the inline path.
type dcRun struct {
	ws     *WorkSet
	job    *sched.Job
	tc     *trace.Collector
	aff    uint64
	dd, ee []float64
	nodes  []dcNode
	latch  errLatch
}

func (r *dcRun) reset(ws *WorkSet, job *sched.Job, aff uint64, tc *trace.Collector) {
	r.ws, r.job, r.tc, r.aff = ws, job, tc, aff
	r.dd, r.ee = nil, nil
	r.nodes = r.nodes[:0]
	r.latch.reset()
}

// build constructs the tree over dd[lo:hi] and applies the rank-one tears of
// every above-cutoff node in pre-order — exactly the order the sequential
// recursion subtracts them, including when an ancestor tear and a deeper
// tear hit the same entry — so the leaf tasks see bitwise identical
// subproblems. Returns the node index.
func (r *dcRun) build(lo, hi, depth, cutoff int) int {
	i := len(r.nodes)
	r.nodes = append(r.nodes, dcNode{lo: lo, hi: hi, depth: depth, left: -1, right: -1})
	if hi-lo <= cutoff {
		return i
	}
	m := lo + (hi-lo)/2
	rho := r.ee[m-1]
	if rho != 0 {
		rhoAbs := math.Abs(rho)
		theta := 1.0
		if rho < 0 {
			theta = -1
		}
		// Rank-one tear (see dcRecurse): T = diag(T1', T2') + |rho|·u·uᵀ.
		r.dd[m-1] -= rhoAbs
		r.dd[m] -= rhoAbs
		r.nodes[i].rho, r.nodes[i].theta = rhoAbs, theta
	}
	l := r.build(lo, m, depth+1, cutoff)
	rt := r.build(m, hi, depth+1, cutoff)
	r.nodes[i].left, r.nodes[i].right = l, rt
	return i
}

// Resource IDs: node i's result is resource i; a rank-one node's merge
// state is resource len(nodes)+i. Tile tasks read the merge state; the post
// task read-writes it, which orders it after every tile (write-after-read).
func (r *dcRun) resNode(i int) int  { return i }
func (r *dcRun) resMerge(i int) int { return len(r.nodes) + i }

// leafBody solves a whole subtree sequentially with the plain recursion.
func (r *dcRun) leafBody(i int, wk *Work) {
	if r.latch.failed() {
		return
	}
	nd := &r.nodes[i]
	d := r.dd[nd.lo:nd.hi]
	e := r.ee[nd.lo : nd.hi-1]
	vals, q, err := dcRecurse(d, e, wk)
	if err != nil {
		r.latch.fail(err)
		return
	}
	nd.vals, nd.q = vals, q
	r.tc.AttributeFlops(trace.PhaseEigTRecurse, dcRecurseFlops(nd.hi-nd.lo))
}

// decoupledBody combines two children across an exact-zero coupling.
func (r *dcRun) decoupledBody(i int, wk *Work) {
	if r.latch.failed() {
		return
	}
	nd := &r.nodes[i]
	l, rt := &r.nodes[nd.left], &r.nodes[nd.right]
	vals, q := dcDecoupled(l.vals, l.q, rt.vals, rt.q, wk)
	recycleHalf(l.vals, r.dd[l.lo:], wk)
	recycleHalf(rt.vals, r.dd[rt.lo:], wk)
	wk.putMat(l.q)
	wk.putMat(rt.q)
	l.vals, l.q, rt.vals, rt.q = nil, nil, nil, nil
	nd.vals, nd.q = vals, q
}

// preBody combines the children of a rank-one node (the z vector, merged
// eigenvalues, block-diagonal basis — the same assembly dcRecurse performs)
// and runs dcMergePre.
func (r *dcRun) preBody(i int, wk *Work) {
	if r.latch.failed() {
		return
	}
	nd := &r.nodes[i]
	l, rt := &r.nodes[nd.left], &r.nodes[nd.right]
	n := nd.hi - nd.lo
	m := l.hi - l.lo
	// z = [last row of Q1 ; theta · first row of Q2].
	z := wk.vec(n)
	for j := 0; j < m; j++ {
		z[j] = l.q.At(m-1, j)
	}
	for j := 0; j < n-m; j++ {
		z[m+j] = nd.theta * rt.q.At(0, j)
	}
	dvals := wk.vec(n)
	copy(dvals, l.vals)
	copy(dvals[m:], rt.vals)
	// Block-diagonal accumulated basis.
	q := wk.mat(n, n)
	for j := 0; j < m; j++ {
		copy(q.Data[j*q.Stride:j*q.Stride+m], l.q.Data[j*l.q.Stride:j*l.q.Stride+m])
	}
	for j := 0; j < n-m; j++ {
		copy(q.Data[(m+j)*q.Stride+m:(m+j)*q.Stride+n], rt.q.Data[j*rt.q.Stride:j*rt.q.Stride+n-m])
	}
	recycleHalf(l.vals, r.dd[l.lo:], wk)
	recycleHalf(rt.vals, r.dd[rt.lo:], wk)
	wk.putMat(l.q)
	wk.putMat(rt.q)
	l.vals, l.q, rt.vals, rt.q = nil, nil, nil, nil
	nd.st = dcMergePre(dvals, z, nd.rho, q, wk)
	r.tc.AttributeFlops(trace.PhaseEigTMerge, dcSecularFlops(nd.st.k))
}

// tileBody computes one column block of the merge GEMM. Block t covers
// secular columns [t·dcTileCols, (t+1)·dcTileCols) ∩ [0, k); blocks beyond
// the (deflation-dependent) k are no-ops, so the task count can be fixed at
// submission time from the node size alone.
func (r *dcRun) tileBody(i, t int) {
	if r.latch.failed() {
		return
	}
	st := &r.nodes[i].st
	j0 := t * dcTileCols
	j1 := min(j0+dcTileCols, st.k)
	if j0 >= j1 {
		return
	}
	dcMergeGemm(st, j0, j1)
	r.tc.AttributeFlops(trace.PhaseEigTMerge, 2*int64(st.n)*int64(j1-j0)*int64(st.k))
}

// postBody scatters the secular columns and finishes the node.
func (r *dcRun) postBody(i int, wk *Work) {
	if r.latch.failed() {
		return
	}
	nd := &r.nodes[i]
	nd.vals, nd.q = dcMergePost(&nd.st, wk)
}

// tileCount is the fixed number of GEMM tile tasks of a node of size n
// (covering the worst case k = n; see tileBody).
func tileCount(n int) int { return (n + dcTileCols - 1) / dcTileCols }

// submitNode submits the subtree rooted at node i in post-order. The DAG is
// flat: every task is submitted up front from the calling goroutine and
// ordered purely by resource dependences, so no task ever blocks on another
// from inside a worker (which would deadlock the pool).
func (r *dcRun) submitNode(i int) {
	nd := &r.nodes[i]
	if nd.left < 0 {
		r.job.Submit(sched.Task{
			Name:     "dc.leaf",
			Priority: nd.depth,
			Affinity: r.aff,
			Deps:     []sched.Dep{sched.W(r.resNode(i))},
			Run:      func(worker int) { r.leafBody(i, r.ws.Worker(worker)) },
		})
		return
	}
	r.submitNode(nd.left)
	r.submitNode(nd.right)
	ldep := sched.R(r.resNode(nd.left))
	rdep := sched.R(r.resNode(nd.right))
	if nd.rho == 0 {
		r.job.Submit(sched.Task{
			Name:     "dc.decoupled",
			Priority: nd.depth,
			Affinity: r.aff,
			Deps:     []sched.Dep{ldep, rdep, sched.W(r.resNode(i))},
			Run:      func(worker int) { r.decoupledBody(i, r.ws.Worker(worker)) },
		})
		return
	}
	r.job.Submit(sched.Task{
		Name:     "dc.merge.pre",
		Priority: nd.depth,
		Affinity: r.aff,
		Deps:     []sched.Dep{ldep, rdep, sched.W(r.resMerge(i))},
		Run:      func(worker int) { r.preBody(i, r.ws.Worker(worker)) },
	})
	for t := 0; t < tileCount(nd.hi-nd.lo); t++ {
		r.job.Submit(sched.Task{
			Name:     "dc.merge.gemm",
			Priority: nd.depth,
			Affinity: r.aff,
			Deps:     []sched.Dep{sched.R(r.resMerge(i))},
			Run:      func(worker int) { r.tileBody(i, t) },
		})
	}
	r.job.Submit(sched.Task{
		Name:     "dc.merge.post",
		Priority: nd.depth,
		Affinity: r.aff,
		Deps:     []sched.Dep{sched.RW(r.resMerge(i)), sched.W(r.resNode(i))},
		Run:      func(worker int) { r.postBody(i, r.ws.Worker(worker)) },
	})
}

// runInline executes the same bodies in dependence order on the calling
// goroutine, checking cancellation between bodies. This closure-free path
// keeps sequential solves allocation-free (the Submit path allocates a task
// and deps per node, which is fine on a worker pool but would break the
// steady-state allocation gate of sequential Solver reuse).
func (r *dcRun) runInline(i int) {
	if r.job.Canceled() || r.latch.failed() {
		return
	}
	nd := &r.nodes[i]
	if nd.left < 0 {
		r.leafBody(i, r.ws.Seq())
		return
	}
	r.runInline(nd.left)
	r.runInline(nd.right)
	if r.job.Canceled() || r.latch.failed() {
		return
	}
	wk := r.ws.Seq()
	if nd.rho == 0 {
		r.decoupledBody(i, wk)
		return
	}
	r.preBody(i, wk)
	for t := 0; t < tileCount(nd.hi-nd.lo); t++ {
		if r.job.Canceled() {
			return
		}
		r.tileBody(i, t)
	}
	r.postBody(i, wk)
}

// dcRecurseFlops and dcSecularFlops are the coarse attribution models of
// the eig_t sub-phases (bookkeeping only — the kernels count real flops by
// class): a sequential subtree is bounded by QR-style 6n³, a merge's
// secular solves + Löwner rebuild + eigenvector-matrix build cost O(k²)
// with a constant dominated by the ~60-iteration root bisections.
func dcRecurseFlops(n int) int64 {
	nn := int64(n)
	return 6 * nn * nn * nn
}

func dcSecularFlops(k int) int64 {
	kk := int64(k)
	return 250 * kk * kk
}

// StedcSched is StedcWork executing over a scheduler job: the recursion's
// independent halves run as concurrent tasks down to DCParCutoff and every
// larger rank-one merge tiles its eigenvector-update GEMM into per-column-
// block tasks (see the package comment of this file for the determinism
// argument). With an inline (or nil) job the same bodies run sequentially
// on the calling goroutine, so there is exactly one code path to trust.
//
// Results are bitwise identical to StedcWork at any worker count. The
// returned slice and matrix are pool-owned (hand back via ws.PutVec /
// ws.PutMat); on error — including cancellation of the job — buffers held
// by unfinished nodes are abandoned to the garbage collector, which keeps
// the pools consistent. aff restricts the tasks' workers (0 = all); tc
// receives eig_t sub-phase flop attribution and may be nil.
func StedcSched(d, e []float64, ws *WorkSet, job *sched.Job, aff uint64, tc *trace.Collector) ([]float64, *matrix.Dense, error) {
	checkTE(d, e)
	if ws == nil {
		ws = NewWorkSet(job.Workers())
	}
	ws.Grow(job.Workers())
	n := len(d)
	cutoff := max(DCParCutoff, dcBaseSize)
	if n <= cutoff {
		// The whole problem is one leaf: identical to the sequential solver.
		if job.Canceled() {
			return nil, nil, job.Err()
		}
		vals, q, err := StedcWork(d, e, ws.Seq())
		if err == nil {
			tc.AttributeFlops(trace.PhaseEigTRecurse, dcRecurseFlops(n))
		}
		return vals, q, err
	}
	seq := ws.Seq()
	r := &ws.run
	r.reset(ws, job, aff, tc)
	r.dd = seq.vec(n)
	copy(r.dd, d)
	r.ee = seq.vec(n - 1)
	copy(r.ee, e[:n-1])
	root := r.build(0, n, 0, cutoff)

	var err error
	if job.Parallel() {
		r.submitNode(root)
		err = job.Wait()
	} else {
		r.runInline(root)
		err = job.Err()
	}
	if err == nil {
		err = r.latch.get()
	}
	seq.putVec(r.dd)
	seq.putVec(r.ee)
	r.dd, r.ee = nil, nil
	if err != nil {
		return nil, nil, err
	}
	rn := &r.nodes[root]
	out := seq.vec(n)
	copy(out, rn.vals)
	seq.putVec(rn.vals)
	q := rn.q
	rn.vals, rn.q = nil, nil
	return out, q, nil
}

// stebzChunkSize is the fixed index-chunk width of the parallel bisection;
// like dcTileCols it depends only on the problem, never on the workers.
const stebzChunkSize = 32

// StebzSched is Stebz over a scheduler job: the index range il..iu is
// partitioned into fixed contiguous chunks solved concurrently, each chunk
// sharing Sturm counts across its eigenvalues via the bracket-splitting
// stebzInto. Since every eigenvalue's refinement path is independent of the
// chunking, the result is bitwise identical to the sequential Stebz at any
// worker count. The returned slice is freshly allocated (caller-owned). On
// cancellation the unprocessed entries are zero — check job.Err().
func StebzSched(d, e []float64, il, iu int, ws *WorkSet, job *sched.Job, aff uint64, tc *trace.Collector) []float64 {
	n := len(d)
	checkTE(d, e)
	if n == 0 {
		return nil
	}
	if il < 1 || iu > n || il > iu {
		panic("tridiag: Stebz index range out of bounds")
	}
	ws.Grow(job.Workers())
	out := make([]float64, iu-il+1)
	attr := func(sturmCalls int) {
		tc.AttributeFlops(trace.PhaseEigTBisect, int64(sturmCalls)*4*int64(n))
	}
	if !job.Parallel() {
		wk := ws.Seq()
		for a := il; a <= iu; a += stebzChunkSize {
			if job.Canceled() {
				break
			}
			attr(wk.stebzInto(d, e, a, min(a+stebzChunkSize-1, iu), out, il))
		}
		return out
	}
	for a := il; a <= iu; a += stebzChunkSize {
		a, b := a, min(a+stebzChunkSize-1, iu)
		job.Submit(sched.Task{
			Name:     "stebz.chunk",
			Affinity: aff,
			Run: func(worker int) {
				attr(ws.Worker(worker).stebzInto(d, e, a, b, out, il))
			},
		})
	}
	job.Wait()
	return out
}

// SteinSched is SteinWork over a scheduler job: one task per
// reorthogonalization cluster (the independent unit of inverse iteration —
// disjoint output columns, cluster-local MGS and PRNG stream), bitwise
// identical to the sequential loop at any worker count. The returned matrix
// is pool-owned (hand back via ws.PutMat). A cluster that fails to converge
// latches ErrNoConvergence; remaining clusters still complete.
func SteinSched(d, e []float64, w []float64, ws *WorkSet, job *sched.Job, aff uint64, tc *trace.Collector) (*matrix.Dense, error) {
	n := len(d)
	checkTE(d, e)
	if ws == nil {
		ws = NewWorkSet(job.Workers())
	}
	ws.Grow(job.Workers())
	k := len(w)
	z := ws.Seq().mat(n, k)
	if n == 0 || k == 0 {
		return z, nil
	}
	if n == 1 {
		z.Set(0, 0, 1)
		return z, nil
	}
	ortol, eps3 := steinScales(d, e)
	var latch errLatch
	cluster := func(cs, ce int, wk *Work) {
		if latch.failed() {
			return
		}
		if err := steinCluster(d, e, w, z, cs, ce, eps3, wk); err != nil {
			latch.fail(err)
			return
		}
		tc.AttributeFlops(trace.PhaseEigTStein, steinClusterFlops(n, cs, ce))
	}
	if !job.Parallel() {
		for cs := 0; cs < k; {
			ce := steinClusterEnd(w, cs, ortol)
			if job.Canceled() {
				break
			}
			cluster(cs, ce, ws.Seq())
			cs = ce
		}
	} else {
		for cs := 0; cs < k; {
			ce := steinClusterEnd(w, cs, ortol)
			cs0, ce0 := cs, ce
			job.Submit(sched.Task{
				Name:     "stein.cluster",
				Affinity: aff,
				Run:      func(worker int) { cluster(cs0, ce0, ws.Worker(worker)) },
			})
			cs = ce
		}
		job.Wait()
	}
	return z, latch.get()
}
