package tridiag

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
)

// parTestWorkers are the scheduler widths the bitwise-identity tests sweep:
// degenerate (1), even, a power of two, and an odd width that does not
// divide typical task counts.
var parTestWorkers = []int{1, 2, 4, 7}

// parShapes are the tridiagonal families exercising distinct D&C regimes.
func parShapes(t *testing.T) map[string]struct{ d, e []float64 } {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	shapes := make(map[string]struct{ d, e []float64 })
	d, e := randTridiag(rng, 300)
	shapes["random300"] = struct{ d, e []float64 }{d, e}
	d, e = laplacian121(257)
	shapes["laplacian257"] = struct{ d, e []float64 }{d, e}
	d, e = wilkinson(21)
	shapes["wilkinson21"] = struct{ d, e []float64 }{d, e}
	d, e = wilkinson(201)
	shapes["wilkinson201"] = struct{ d, e []float64 }{d, e}
	// Rank-one perturbed identity: almost every merge eigenvalue deflates,
	// hitting the k≈0 merge path (empty GEMM tiles, pure deflation copies).
	n := 220
	d = make([]float64, n)
	e = make([]float64, n-1)
	for i := range d {
		d[i] = 1
	}
	e[n/2] = 1e-8
	e[3] = 0.5
	shapes["deflate220"] = struct{ d, e []float64 }{d, e}
	// Exact zeros in e: decoupled merges interleaved with rank-one ones.
	d, e = randTridiag(rng, 190)
	e[50], e[95], e[140] = 0, 0, 0
	shapes["decoupled190"] = struct{ d, e []float64 }{d, e}
	return shapes
}

func sameMat(a, b *matrix.Dense) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			// Bitwise: distinguishes ±0 and would catch any NaN drift.
			if math.Float64bits(a.At(i, j)) != math.Float64bits(b.At(i, j)) {
				return false
			}
		}
	}
	return true
}

func sameVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestStedcSchedBitwiseIdentity pins the tentpole determinism claim: the
// task-DAG D&C produces bitwise identical eigenvalues AND eigenvectors to
// the plain recursive StedcWork, at every worker count, on every shape —
// including the inline (nil-job) path, which must also match.
func TestStedcSchedBitwiseIdentity(t *testing.T) {
	for name, sh := range parShapes(t) {
		refVals, refQ, err := StedcWork(sh.d, sh.e, nil)
		if err != nil {
			t.Fatalf("%s: sequential Stedc failed: %v", name, err)
		}
		// Inline path (no scheduler).
		ws := NewWorkSet(1)
		vals, q, err := StedcSched(sh.d, sh.e, ws, nil, 0, nil)
		if err != nil {
			t.Fatalf("%s: inline StedcSched failed: %v", name, err)
		}
		if !sameVec(vals, refVals) || !sameMat(q, refQ) {
			t.Errorf("%s: inline StedcSched differs from StedcWork", name)
		}
		ws.PutVec(vals)
		ws.PutMat(q)
		for _, workers := range parTestWorkers {
			s := sched.New(workers)
			set := NewWorkSet(workers)
			// Two solves per pool: the second runs with warm (reused) pools,
			// catching stale-buffer contamination.
			for pass := 0; pass < 2; pass++ {
				job := s.NewJob(nil)
				vals, q, err := StedcSched(sh.d, sh.e, set, job, 0, nil)
				if err != nil {
					t.Fatalf("%s workers=%d pass=%d: %v", name, workers, pass, err)
				}
				if !sameVec(vals, refVals) {
					t.Errorf("%s workers=%d pass=%d: eigenvalues differ", name, workers, pass)
				}
				if !sameMat(q, refQ) {
					t.Errorf("%s workers=%d pass=%d: eigenvectors differ", name, workers, pass)
				}
				set.PutVec(vals)
				set.PutMat(q)
			}
			s.Shutdown()
		}
	}
}

// TestStedcSchedCutoffNeutral verifies the granularity tunable never leaks
// into the numbers: any DCParCutoff yields bitwise identical results.
func TestStedcSchedCutoffNeutral(t *testing.T) {
	defer func(c int) { DCParCutoff = c }(DCParCutoff)
	rng := rand.New(rand.NewSource(7))
	d, e := randTridiag(rng, 310)
	refVals, refQ, err := StedcWork(d, e, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(3)
	defer s.Shutdown()
	for _, cutoff := range []int{8, 33, 64, 150, 1000} {
		DCParCutoff = cutoff
		set := NewWorkSet(3)
		vals, q, err := StedcSched(d, e, set, s.NewJob(nil), 0, nil)
		if err != nil {
			t.Fatalf("cutoff=%d: %v", cutoff, err)
		}
		if !sameVec(vals, refVals) || !sameMat(q, refQ) {
			t.Errorf("cutoff=%d: results differ from sequential", cutoff)
		}
	}
}

// stebzNaive is the pre-sharing reference: one independent bisection per
// eigenvalue, restarted from the global bracket. It is the algorithm the
// shared-count stebzInto replaced and must still reproduce bitwise; it also
// reports its Sturm-count total so the test can pin the work reduction.
func stebzNaive(d, e []float64, il, iu int) (out []float64, counts int) {
	lo0, hi0 := stebzBracket(d, e)
	out = make([]float64, iu-il+1)
	for idx := il; idx <= iu; idx++ {
		lo, hi := lo0, hi0
		for iter := 0; iter < stebzMaxDepth; iter++ {
			mid := 0.5 * (lo + hi)
			if mid <= lo || mid >= hi {
				break
			}
			if c := SturmCount(d, e, mid); c >= idx {
				hi = mid
			} else {
				lo = mid
			}
			counts++
			if stebzDone(lo, hi) {
				break
			}
		}
		out[idx-il] = 0.5 * (lo + hi)
	}
	return out, counts
}

// TestStebzSharedCountsBitwise pins that bracket sharing is a pure work
// optimization: eigenvalues are bitwise identical to the naive
// one-at-a-time bisection, while the Sturm-count total drops by a large
// factor (each count near the root serves many eigenvalues).
func TestStebzSharedCountsBitwise(t *testing.T) {
	for name, sh := range parShapes(t) {
		n := len(sh.d)
		want, naive := stebzNaive(sh.d, sh.e, 1, n)
		got := Stebz(sh.d, sh.e, 1, n)
		if !sameVec(got, want) {
			t.Errorf("%s: shared-count Stebz differs from naive bisection", name)
		}
		wk := NewWork()
		out := make([]float64, n)
		shared := wk.stebzInto(sh.d, sh.e, 1, n, out, 1)
		if !sameVec(out, want) {
			t.Errorf("%s: pooled stebzInto differs from naive bisection", name)
		}
		// The saving is the shared top of the bisection tree — about log₂n of
		// the ~53 per-eigenvalue halvings for well-separated spectra (≈15%
		// here), and far more when eigenvalues cluster (deflate220's
		// near-identical spectrum shares almost every count). Pin a ≥5%
		// reduction so a regression to per-eigenvalue restarts fails loudly.
		if shared*20 > naive*19 {
			t.Errorf("%s: expected ≥5%% Sturm-count reduction, naive=%d shared=%d", name, naive, shared)
		}
		// Subset solves must agree with the corresponding full-solve slice.
		il, iu := n/3+1, 2*n/3
		sub := Stebz(sh.d, sh.e, il, iu)
		if !sameVec(sub, want[il-1:iu]) {
			t.Errorf("%s: subset Stebz differs from full-spectrum slice", name)
		}
	}
}

// TestStebzSchedBitwiseIdentity: chunk-parallel bisection ≡ sequential
// Stebz at every worker count, full spectrum and subsets.
func TestStebzSchedBitwiseIdentity(t *testing.T) {
	for name, sh := range parShapes(t) {
		n := len(sh.d)
		ranges := [][2]int{{1, n}, {1, 1}, {n/2 - 5, n/2 + 5}, {2, n - 1}}
		for _, r := range ranges {
			want := Stebz(sh.d, sh.e, r[0], r[1])
			set := NewWorkSet(1)
			got := StebzSched(sh.d, sh.e, r[0], r[1], set, nil, 0, nil)
			if !sameVec(got, want) {
				t.Errorf("%s [%d,%d]: inline StebzSched differs", name, r[0], r[1])
			}
			for _, workers := range parTestWorkers {
				s := sched.New(workers)
				set := NewWorkSet(workers)
				got := StebzSched(sh.d, sh.e, r[0], r[1], set, s.NewJob(nil), 0, nil)
				s.Shutdown()
				if !sameVec(got, want) {
					t.Errorf("%s [%d,%d] workers=%d: parallel Stebz differs", name, r[0], r[1], workers)
				}
			}
		}
	}
}

// TestSteinSchedBitwiseIdentity: cluster-parallel inverse iteration ≡ the
// sequential cluster loop at every worker count. Wilkinson matrices supply
// tight pairs (multi-eigenvalue clusters); the random shapes mostly
// singleton clusters.
func TestSteinSchedBitwiseIdentity(t *testing.T) {
	for name, sh := range parShapes(t) {
		n := len(sh.d)
		w := Stebz(sh.d, sh.e, 1, n)
		refZ, err := SteinWork(sh.d, sh.e, w, nil)
		if err != nil {
			t.Fatalf("%s: sequential Stein failed: %v", name, err)
		}
		set := NewWorkSet(1)
		z, err := SteinSched(sh.d, sh.e, w, set, nil, 0, nil)
		if err != nil {
			t.Fatalf("%s: inline SteinSched failed: %v", name, err)
		}
		if !sameMat(z, refZ) {
			t.Errorf("%s: inline SteinSched differs from SteinWork", name)
		}
		set.PutMat(z)
		for _, workers := range parTestWorkers {
			s := sched.New(workers)
			set := NewWorkSet(workers)
			for pass := 0; pass < 2; pass++ {
				z, err := SteinSched(sh.d, sh.e, w, set, s.NewJob(nil), 0, nil)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", name, workers, err)
				}
				if !sameMat(z, refZ) {
					t.Errorf("%s workers=%d pass=%d: parallel Stein differs", name, workers, pass)
				}
				set.PutMat(z)
			}
			s.Shutdown()
		}
	}
}

// TestStedcSchedNoConvergence forces the QL leaf iteration to fail inside a
// parallel solve: the error latch must surface ErrNoConvergence once, every
// sibling task must drain without deadlock, and the scheduler and pool must
// stay usable for a subsequent healthy solve.
func TestStedcSchedNoConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d, e := randTridiag(rng, 280)
	refVals, refQ, err := StedcWork(d, e, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(4)
	defer s.Shutdown()
	set := NewWorkSet(4)

	saved := MaxIterQL
	MaxIterQL = 0
	_, _, err = StedcSched(d, e, set, s.NewJob(nil), 0, nil)
	MaxIterQL = saved
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("forced failure: got %v, want ErrNoConvergence", err)
	}

	// Same WorkSet and scheduler, healthy settings: still bitwise correct.
	vals, q, err := StedcSched(d, e, set, s.NewJob(nil), 0, nil)
	if err != nil {
		t.Fatalf("solve after forced failure: %v", err)
	}
	if !sameVec(vals, refVals) || !sameMat(q, refQ) {
		t.Error("solve after forced failure differs from sequential reference")
	}
	set.PutVec(vals)
	set.PutMat(q)
}

// TestSteinSchedNoConvergence: the cluster error latch. A shift of
// −MaxFloat64 against d = +MaxFloat64 makes the factorization pivots +Inf,
// so every solve returns an exactly-zero iterate and the restart budget
// runs out deterministically; the healthy second cluster must still
// complete while the latch is set.
func TestSteinSchedNoConvergence(t *testing.T) {
	d := []float64{math.MaxFloat64, math.MaxFloat64}
	e := []float64{0}
	w := []float64{-math.MaxFloat64, 0}
	s := sched.New(3)
	defer s.Shutdown()
	set := NewWorkSet(3)
	z, err := SteinSched(d, e, w, set, s.NewJob(nil), 0, nil)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("got %v, want ErrNoConvergence", err)
	}
	set.PutMat(z)
}

// TestStedcSchedCancellation: canceling mid-solve must unwind cleanly (no
// deadlock, no race — this test is most valuable under -race) and leave the
// scheduler reusable. A pre-canceled context must fail deterministically.
func TestStedcSchedCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, e := randTridiag(rng, 350)
	refVals, refQ, err := StedcWork(d, e, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(4)
	defer s.Shutdown()
	set := NewWorkSet(4)

	// Pre-canceled: deterministic error, nothing runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := StedcSched(d, e, set, s.NewJob(ctx), 0, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled solve: got %v, want context.Canceled", err)
	}

	// Mid-flight: cancel from another goroutine at staggered delays. Either
	// the solve loses the race and reports ctx.Err(), or it wins and must be
	// bitwise correct.
	for _, delay := range []time.Duration{0, 50 * time.Microsecond, 500 * time.Microsecond} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		vals, q, err := StedcSched(d, e, set, s.NewJob(ctx), 0, nil)
		switch {
		case err == nil:
			if !sameVec(vals, refVals) || !sameMat(q, refQ) {
				t.Errorf("delay=%v: completed solve differs from reference", delay)
			}
			set.PutVec(vals)
			set.PutMat(q)
		case errors.Is(err, context.Canceled):
			// Expected loss; pools may have leaked buffers to GC, which is fine.
		default:
			t.Errorf("delay=%v: unexpected error %v", delay, err)
		}
		cancel()
	}

	// The same pool and scheduler still solve correctly afterwards.
	vals, q, err := StedcSched(d, e, set, s.NewJob(nil), 0, nil)
	if err != nil {
		t.Fatalf("solve after cancellations: %v", err)
	}
	if !sameVec(vals, refVals) || !sameMat(q, refQ) {
		t.Error("solve after cancellations differs from reference")
	}
	set.PutVec(vals)
	set.PutMat(q)
}

// TestSchedAffinityRestriction: restricting eig_t tasks to a worker prefix
// (the TridiagWorkers plumbing) must not change results.
func TestSchedAffinityRestriction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d, e := randTridiag(rng, 260)
	refVals, refQ, err := StedcWork(d, e, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(4)
	defer s.Shutdown()
	for _, tw := range []int{1, 2, 3} {
		set := NewWorkSet(4)
		aff := sched.AffinityMask(tw)
		vals, q, err := StedcSched(d, e, set, s.NewJob(nil), aff, nil)
		if err != nil {
			t.Fatalf("affinity %d: %v", tw, err)
		}
		if !sameVec(vals, refVals) || !sameMat(q, refQ) {
			t.Errorf("affinity %d: results differ", tw)
		}
		w := Stebz(d, e, 1, len(d))
		z, err := SteinSched(d, e, w, set, s.NewJob(nil), aff, nil)
		if err != nil {
			t.Fatalf("affinity %d stein: %v", tw, err)
		}
		set.PutMat(z)
	}
}

// TestSchedFlopAttribution: the eig_t sub-phases must be attributed (side
// channel only — AttributedFlops never contributes to TotalFlops).
func TestSchedFlopAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d, e := randTridiag(rng, 200)
	s := sched.New(2)
	defer s.Shutdown()
	set := NewWorkSet(2)
	tc := trace.New()
	vals, q, err := StedcSched(d, e, set, s.NewJob(nil), 0, tc)
	if err != nil {
		t.Fatal(err)
	}
	set.PutVec(vals)
	set.PutMat(q)
	if tc.AttributedFlops(trace.PhaseEigTRecurse) <= 0 {
		t.Error("no recurse flops attributed")
	}
	if tc.AttributedFlops(trace.PhaseEigTMerge) <= 0 {
		t.Error("no merge flops attributed")
	}
	w := StebzSched(d, e, 1, len(d), set, s.NewJob(nil), 0, tc)
	if tc.AttributedFlops(trace.PhaseEigTBisect) <= 0 {
		t.Error("no bisect flops attributed")
	}
	z, err := SteinSched(d, e, w, set, s.NewJob(nil), 0, tc)
	if err != nil {
		t.Fatal(err)
	}
	set.PutMat(z)
	if tc.AttributedFlops(trace.PhaseEigTStein) <= 0 {
		t.Error("no stein flops attributed")
	}
}

func BenchmarkStebzShared(b *testing.B) {
	d, e := laplacian121(1000)
	wk := NewWork()
	out := make([]float64, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wk.stebzInto(d, e, 1, 1000, out, 1)
	}
}

func BenchmarkStebzNaive(b *testing.B) {
	d, e := laplacian121(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stebzNaive(d, e, 1, 1000)
	}
}
