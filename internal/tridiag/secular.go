package tridiag

import "math"

// SecularRoot solves the secular equation arising in the divide-and-conquer
// merge step,
//
//	f(λ) = 1 + rho · Σ_i z[i]² / (d[i] − λ) = 0,
//
// for its k-th root (0-based), where d is strictly increasing and rho > 0.
// The roots interlace: d[k] < λ_k < d[k+1] for k < n−1 and
// d[n−1] < λ_{n−1} ≤ d[n−1] + rho·Σz².
//
// To avoid catastrophic cancellation the root is returned as a pair
// (base, mu): λ = d[base] + mu, where base is k or k+1, whichever is closer
// to the root. Downstream consumers (the Löwner rebuild of ẑ and the
// eigenvector assembly) must form differences λ − d[i] as
// (d[base] − d[i]) + mu, never by subtracting recomputed λ values.
//
// The root is found by bisection on the monotone branch between the two
// poles, run to floating-point exhaustion; with the shifted representation
// this is accurate to machine precision relative to the local gap, which is
// what the Gu–Eisenstat construction needs.
func SecularRoot(d, z []float64, rho float64, k int) (base int, mu float64) {
	n := len(d)
	if rho <= 0 {
		panic("tridiag: SecularRoot requires rho > 0")
	}
	if k < 0 || k >= n {
		panic("tridiag: SecularRoot index out of range")
	}
	var zsq float64
	for _, v := range z {
		zsq += v * v
	}

	// Choose the shift base: evaluate f at the interval midpoint; f is
	// increasing between poles, so its sign tells which half the root is in.
	if k < n-1 {
		gap := d[k+1] - d[k]
		fmid := secularEval(d, z, rho, k, gap/2) // f at d[k] + gap/2
		if fmid >= 0 {
			// Root in the left half: shift from d[k], mu ∈ (0, gap/2].
			return k, secularBisect(d, z, rho, k, 0, gap/2, true)
		}
		// Root in the right half: shift from d[k+1], mu ∈ [−gap/2, 0).
		return k + 1, secularBisect(d, z, rho, k+1, -gap/2, 0, false)
	}
	// Last root: in (d[n−1], d[n−1] + rho·Σz²].
	return n - 1, secularBisect(d, z, rho, n-1, 0, rho*zsq+math.SmallestNonzeroFloat64, true)
}

// secularEval computes f(d[base] + mu) with the shifted differences
// (d[i] − d[base]) − mu, which are exact near the pole at d[base].
func secularEval(d, z []float64, rho float64, base int, mu float64) float64 {
	sum := 1.0
	for i := range d {
		del := (d[i] - d[base]) - mu
		sum += rho * z[i] * z[i] / del
	}
	return sum
}

// secularBisect finds the root of mu ↦ f(d[base]+mu) in (lo, hi) by
// bisection to floating-point exhaustion. The caller guarantees f(lo⁺) < 0
// and f(hi⁻) > 0 in exact arithmetic (f is increasing between poles).
// poleAtLo records which endpoint coincides with the pole at mu = 0, so the
// returned value never lands exactly on it (downstream code divides by
// λ − d[base] = mu).
func secularBisect(d, z []float64, rho float64, base int, lo, hi float64, poleAtLo bool) float64 {
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if mid <= lo || mid >= hi {
			break
		}
		if secularEval(d, z, rho, base, mid) >= 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	// lo and hi are now adjacent floats (or the bracket was degenerate);
	// pick the endpoint away from the pole.
	if poleAtLo {
		if lo != 0 {
			return lo
		}
		return hi
	}
	if hi != 0 {
		return hi
	}
	return lo
}
