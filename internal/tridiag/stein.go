package tridiag

import (
	"math"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// Stein computes eigenvectors of the symmetric tridiagonal matrix (d, e)
// corresponding to the given eigenvalues (ascending order, e.g. from Stebz)
// by inverse iteration, reorthogonalizing vectors whose eigenvalues fall in
// the same cluster (separation below 10⁻³·‖T‖₁, as in LAPACK's DSTEIN).
// It returns an n×k matrix whose columns are the eigenvectors in the order
// of w.
func Stein(d, e []float64, w []float64) (*matrix.Dense, error) {
	return SteinWork(d, e, w, nil)
}

// SteinWork is Stein drawing every internal buffer — the LU factors, the
// pivot flags, the iterate, and the result matrix — from wk (nil wk → plain
// allocation). The returned matrix is pool-owned: hand it back via
// wk.PutMat once copied, so repeated MethodBI solves reach the same
// allocation-free steady state as the D&C path.
func SteinWork(d, e []float64, w []float64, wk *Work) (*matrix.Dense, error) {
	n := len(d)
	checkTE(d, e)
	k := len(w)
	z := wk.mat(n, k)
	if n == 0 || k == 0 {
		return z, nil
	}
	if n == 1 {
		z.Set(0, 0, 1)
		return z, nil
	}
	ortol, eps3 := steinScales(d, e)
	for cs := 0; cs < k; {
		ce := steinClusterEnd(w, cs, ortol)
		if err := steinCluster(d, e, w, z, cs, ce, eps3, wk); err != nil {
			return z, err
		}
		cs = ce
	}
	return z, nil
}

// steinScales computes the cluster separation threshold (10⁻³·‖T‖₁) and the
// perturbation scale eps3 used for repeated eigenvalues and zero pivots.
func steinScales(d, e []float64) (ortol, eps3 float64) {
	n := len(d)
	onenrm := math.Abs(d[0]) + math.Abs(e[0])
	for i := 1; i < n; i++ {
		t := math.Abs(d[i])
		if i > 0 {
			t += math.Abs(e[i-1])
		}
		if i < n-1 {
			t += math.Abs(e[i])
		}
		if t > onenrm {
			onenrm = t
		}
	}
	return 1e-3 * onenrm, Eps * onenrm
}

// steinClusterEnd returns the end (exclusive) of the reorthogonalization
// cluster starting at cs: consecutive eigenvalues closer than ortol.
func steinClusterEnd(w []float64, cs int, ortol float64) int {
	ce := cs + 1
	for ce < len(w) && w[ce]-w[ce-1] < ortol {
		ce++
	}
	return ce
}

// steinSeed derives the deterministic start-vector seed of the cluster
// beginning at eigenvalue index cs. Seeding per cluster (rather than
// advancing one stream across all eigenvalues) makes each cluster's
// computation self-contained, which is what lets SteinSched run clusters
// concurrently with results bitwise identical to the sequential loop.
func steinSeed(cs int) uint64 {
	return 0x9E3779B97F4A7C15 ^ (uint64(cs+1) * 0xBF58476D1CE4E5B9)
}

// steinCluster runs inverse iteration for eigenvalues [cs, ce), writing
// columns cs..ce-1 of z. Clusters touch disjoint columns, read only (d, e,
// w) and their own columns during MGS, and use a cluster-local PRNG, so
// distinct clusters are fully independent. Scratch is drawn from wk and
// returned before exit, so a cluster task leaves its worker's pool
// balanced. Returns ErrNoConvergence if reorthogonalization repeatedly
// annihilates an iterate.
func steinCluster(d, e, w []float64, z *matrix.Dense, cs, ce int, eps3 float64, wk *Work) error {
	n := len(d)
	// LU workspace for (T − λI) with partial pivoting: sub, diag, super,
	// super2 (fill-in), pivot flags, and the iterate.
	sub := wk.vec(n)
	diag := wk.vec(n)
	sup := wk.vec(n)
	sup2 := wk.vec(n)
	x := wk.vec(n)
	swapped := wk.deflatedBuf(n)
	put := func() {
		wk.putVec(sub)
		wk.putVec(diag)
		wk.putVec(sup)
		wk.putVec(sup2)
		wk.putVec(x)
	}

	rng := xorshift{s: steinSeed(cs) | 1}
	for j := cs; j < ce; j++ {
		// Perturb repeated eigenvalues slightly so the factorizations
		// differ (as DSTEIN does); j == cs adds exactly zero.
		lambda := w[j] + float64(j-cs)*eps3

		// Random start vector; the factorization is shift-dependent only,
		// so compute it once per eigenvalue.
		for i := 0; i < n; i++ {
			x[i] = rng.normLike()
		}
		luTridiag(d, e, lambda, sub, diag, sup, sup2, swapped, eps3)

		restarts := 0
		for iter := 0; iter < 5; iter++ {
			solveLU(n, sub, diag, sup, sup2, swapped, x)
			// Reorthogonalize against previously computed vectors of the
			// same cluster.
			for c := cs; c < j; c++ {
				col := z.Data[c*z.Stride : c*z.Stride+n]
				dot := blas.Ddot(n, x, 1, col, 1)
				blas.Daxpy(n, -dot, col, 1, x, 1)
			}
			nrm := blas.Dnrm2(n, x, 1)
			if nrm == 0 {
				// Orthogonalization annihilated the iterate; restart with a
				// fresh random vector.
				if restarts++; restarts > MaxSteinRestarts {
					put()
					return ErrNoConvergence
				}
				for i := 0; i < n; i++ {
					x[i] = rng.normLike()
				}
				iter = -1
				continue
			}
			blas.Dscal(n, 1/nrm, x, 1)
		}
		copy(z.Data[j*z.Stride:j*z.Stride+n], x)
	}
	put()
	return nil
}

// steinClusterFlops is the coarse attribution model of one cluster: per
// eigenvalue, the LU factorization and five solves (≈8n each) plus the MGS
// sweeps against the cluster's earlier columns (≈4n per column per sweep).
func steinClusterFlops(n, cs, ce int) int64 {
	span := int64(ce - cs)
	mgs := span * (span - 1) / 2 * 5 * 4 * int64(n)
	return span*48*int64(n) + mgs
}

// luTridiag factors T − λI with partial pivoting. The factors are stored in
// (sub, diag, sup, sup2); swapped[i] records whether rows i and i+1 were
// exchanged at step i. Zero pivots are replaced by ±eps3 so the subsequent
// solve never divides by zero (this is the standard inverse-iteration
// safeguard: the perturbation is below the eigenvalue error anyway).
func luTridiag(d, e []float64, lambda float64, sub, diag, sup, sup2 []float64, swapped []bool, eps3 float64) {
	n := len(d)
	for i := 0; i < n; i++ {
		diag[i] = d[i] - lambda
		if i < n-1 {
			sup[i] = e[i]
			sub[i] = e[i]
		}
		sup2[i] = 0
	}
	for i := 0; i < n-1; i++ {
		if math.Abs(sub[i]) > math.Abs(diag[i]) {
			// Swap rows i and i+1.
			swapped[i] = true
			diag[i], sub[i] = sub[i], diag[i]
			sup[i], diag[i+1] = diag[i+1], sup[i]
			if i < n-2 {
				sup2[i], sup[i+1] = sup[i+1], 0
			}
		} else {
			swapped[i] = false
		}
		if diag[i] == 0 {
			diag[i] = eps3
		}
		m := sub[i] / diag[i]
		sub[i] = m // store multiplier
		diag[i+1] -= m * sup[i]
		if i < n-2 {
			sup[i+1] -= m * sup2[i]
		}
	}
	if diag[n-1] == 0 {
		diag[n-1] = eps3
	}
}

// solveLU solves the factored system in place on b: forward elimination with
// the recorded row swaps, then back substitution through the two
// superdiagonals.
func solveLU(n int, sub, diag, sup, sup2 []float64, swapped []bool, b []float64) {
	for i := 0; i < n-1; i++ {
		if swapped[i] {
			b[i], b[i+1] = b[i+1], b[i]
		}
		b[i+1] -= sub[i] * b[i]
	}
	b[n-1] /= diag[n-1]
	if n >= 2 {
		b[n-2] = (b[n-2] - sup[n-2]*b[n-1]) / diag[n-2]
	}
	for i := n - 3; i >= 0; i-- {
		b[i] = (b[i] - sup[i]*b[i+1] - sup2[i]*b[i+2]) / diag[i]
	}
}

// xorshift is a tiny deterministic PRNG so Stein does not depend on
// math/rand ordering; inverse iteration only needs a start vector that is
// not orthogonal to the target eigenvector.
type xorshift struct{ s uint64 }

func newXorshift(seed uint64) *xorshift { return &xorshift{s: seed | 1} }

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

// normLike returns a roughly zero-mean value in [−1, 1).
func (x *xorshift) normLike() float64 {
	return float64(int64(x.next()))/(1<<63)*0.5 + float64(int64(x.next()))/(1<<63)*0.5
}
