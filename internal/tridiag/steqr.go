package tridiag

import (
	"math"

	"repro/internal/matrix"
)

// Steqr computes all eigenvalues, and optionally eigenvectors, of the
// symmetric tridiagonal matrix (d, e) by the implicit QL method with
// Wilkinson shifts (the classic imtql2 algorithm, the same family as
// LAPACK's DSTEQR).
//
// On return d holds the eigenvalues in ascending order and e is destroyed.
// If z is non-nil it must be an n×m matrix (m ≥ 1); the Givens rotations are
// accumulated into it, so passing the identity yields the eigenvectors of T
// in its columns, while passing an existing basis Q yields Q·E (the combined
// back-transformation). Columns of z are permuted together with d during the
// final sort.
func Steqr(d, e []float64, z *matrix.Dense) error {
	return steqrWork(d, e, z, nil)
}

// SteqrWork is Steqr drawing its scratch from w (nil w → plain allocation).
func SteqrWork(d, e []float64, z *matrix.Dense, w *Work) error {
	return steqrWork(d, e, z, w)
}

func steqrWork(d, e []float64, z *matrix.Dense, w *Work) error {
	n := len(d)
	checkTE(d, e)
	if z != nil && z.Rows != n {
		panic("tridiag: Steqr z must have n rows")
	}
	if n <= 1 {
		return nil
	}
	// The sweep uses e[m] with m up to n−1 as scratch, so work on an
	// n-length copy (the classic imtql2 convention); the caller's e is
	// still clobbered per the contract, but never read past n−2.
	ework := w.vec(n)
	copy(ework, e[:n-1])
	e = ework
	defer w.putVec(ework)
	maxIter := MaxIterQL

	for l := 0; l < n; l++ {
		iter := 0
		for {
			// Find the first negligible off-diagonal at or after l.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= Eps*dd {
					break
				}
			}
			if m == l {
				break // d[l] converged
			}
			iter++
			if iter > maxIter {
				return ErrNoConvergence
			}
			// Wilkinson shift from the leading 2×2 of the unreduced block.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			// Implicit QL sweep from m-1 down to l.
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					// Recover from underflow: split the matrix.
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				if z != nil {
					// Apply the rotation to columns i and i+1 of z.
					zi := z.Data[i*z.Stride : i*z.Stride+z.Rows]
					zi1 := z.Data[(i+1)*z.Stride : (i+1)*z.Stride+z.Rows]
					for k := range zi {
						fk := zi1[k]
						zi1[k] = s*zi[k] + c*fk
						zi[k] = c*zi[k] - s*fk
					}
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	sortEigen(d, z, w)
	return nil
}

// sortEigen sorts d ascending, applying the same permutation to the columns
// of z when z is non-nil. Insertion sort: the spectra produced by QL are
// already nearly sorted.
func sortEigen(d []float64, z *matrix.Dense, w *Work) {
	n := len(d)
	var tmp []float64
	for i := 1; i < n; i++ {
		dv := d[i]
		j := i - 1
		for j >= 0 && d[j] > dv {
			j--
		}
		j++
		if j == i {
			continue
		}
		// Rotate d[j..i] right by one.
		for k := i; k > j; k-- {
			d[k] = d[k-1]
		}
		d[j] = dv
		if z != nil {
			if tmp == nil {
				tmp = w.vec(z.Rows)
			}
			swapColRotate(z, j, i, tmp)
		}
	}
	w.putVec(tmp)
}

// swapColRotate rotates columns j..i of z right by one (column i moves to
// position j). tmp must hold z.Rows floats.
func swapColRotate(z *matrix.Dense, j, i int, tmp []float64) {
	copy(tmp, z.Data[i*z.Stride:i*z.Stride+z.Rows])
	for k := i; k > j; k-- {
		copy(z.Data[k*z.Stride:k*z.Stride+z.Rows], z.Data[(k-1)*z.Stride:(k-1)*z.Stride+z.Rows])
	}
	copy(z.Data[j*z.Stride:j*z.Stride+z.Rows], tmp)
}
