package tridiag

import "math"

// Sterf computes all eigenvalues of the symmetric tridiagonal matrix (d, e)
// by the implicit QL method without accumulating transformations (imtql1;
// same role as LAPACK's DSTERF). On return d holds the eigenvalues in
// ascending order and e is destroyed.
func Sterf(d, e []float64) error {
	n := len(d)
	checkTE(d, e)
	if n <= 1 {
		return nil
	}
	// Same scratch convention as Steqr: the sweep writes e[m] with m up to
	// n−1, so work on an n-length copy.
	ework := make([]float64, n)
	copy(ework, e[:n-1])
	e = ework
	maxIter := MaxIterQL
	for l := 0; l < n; l++ {
		iter := 0
		for {
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= Eps*dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > maxIter {
				return ErrNoConvergence
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	sortEigen(d, nil, nil)
	return nil
}
