// Package tridiag implements the symmetric tridiagonal eigensolvers that
// form phase 2 ("Eig of T") of the full eigensolver:
//
//   - Sterf: eigenvalues only, implicit QL/QR iteration.
//   - Steqr: eigenvalues and eigenvectors by implicit QL/QR iteration with
//     accumulated Givens rotations (the "EV/QR" method of the paper's
//     Table 1, ≈6n³ when vectors are accumulated).
//   - Stedc: Cuppen's divide & conquer with Gu–Eisenstat deflation and a
//     secular-equation solver (the "EVD/D&C" method, 4/3…8/3·n³).
//   - Stebz/Stein: bisection eigenvalues plus inverse-iteration vectors with
//     cluster reorthogonalization; supports computing only a subset (the
//     fraction f of Eqs. 4–5). This is our stand-in for MRRR ("EVR"); see
//     DESIGN.md for the substitution rationale — both are O(n²) with subset
//     capability, which is the property the paper's analysis uses.
//
// All solvers return eigenvalues in ascending order.
package tridiag

import (
	"errors"
	"math"
)

// Eps is the double-precision machine epsilon (unit roundoff ulp of 1.0).
const Eps = 0x1p-52

// ErrNoConvergence is returned when an iterative solver exceeds its
// iteration budget, which for these algorithms indicates a logic error or a
// pathological matrix rather than an expected runtime condition.
var ErrNoConvergence = errors.New("tridiag: eigenvalue iteration did not converge")

// MaxIterQL is the per-eigenvalue iteration budget of the implicit QL/QR
// solvers (Sterf, Steqr and the D&C base case). The default matches EISPACK
// practice and is far above what any matrix needs; it is a variable rather
// than a constant so tests can shrink it to force the ErrNoConvergence path
// deterministically (a diagonal matrix still converges with a budget of 0,
// so per-problem failure injection is possible even though the knob is
// package-global).
var MaxIterQL = 80

// MaxSteinRestarts bounds how many times one inverse-iteration vector may be
// restarted with a fresh random start after cluster reorthogonalization
// annihilates it (Stein's ErrNoConvergence trigger). A variable for the same
// test-seam reason as MaxIterQL.
var MaxSteinRestarts = 8

// maxAbsBound returns a Gershgorin-style bound on the spectral radius of the
// tridiagonal matrix (d, e): every eigenvalue lies in [-b, b].
func maxAbsBound(d, e []float64) float64 {
	n := len(d)
	var b float64
	for i := 0; i < n; i++ {
		r := math.Abs(d[i])
		if i > 0 {
			r += math.Abs(e[i-1])
		}
		if i < n-1 {
			r += math.Abs(e[i])
		}
		if r > b {
			b = r
		}
	}
	return b
}

// checkTE panics on inconsistent d/e lengths.
func checkTE(d, e []float64) {
	if len(d) > 0 && len(e) < len(d)-1 {
		panic("tridiag: e must have length at least len(d)-1")
	}
}
