package tridiag

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// laplacian121 returns the 1-2-1 tridiagonal matrix whose eigenvalues are
// known analytically: λ_k = 2 + 2·cos(kπ/(n+1)), k = 1..n.
func laplacian121(n int) (d, e []float64) {
	d = make([]float64, n)
	e = make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = 1
	}
	return
}

func analytic121(n int) []float64 {
	vals := make([]float64, n)
	for k := 1; k <= n; k++ {
		// Ascending order: cos decreasing in k, so reverse.
		vals[n-k] = 2 + 2*math.Cos(float64(k)*math.Pi/float64(n+1))
	}
	return vals
}

// wilkinson returns the Wilkinson W_n^+ matrix (n odd): d = |i − (n−1)/2|
// reversed shape, e = 1. Its upper eigenvalues come in notoriously close
// pairs — a classic stress test for deflation and orthogonality.
func wilkinson(n int) (d, e []float64) {
	d = make([]float64, n)
	e = make([]float64, n-1)
	m := (n - 1) / 2
	for i := range d {
		d[i] = math.Abs(float64(i - m))
	}
	for i := range e {
		e[i] = 1
	}
	return
}

func randTridiag(rng *rand.Rand, n int) (d, e []float64) {
	d = make([]float64, n)
	e = make([]float64, max(0, n-1))
	for i := range d {
		d[i] = rng.NormFloat64() * 3
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	return
}

// residualT computes max_k ‖T v_k − λ_k v_k‖₂ for the tridiagonal T.
func residualT(d, e, vals []float64, z *matrix.Dense) float64 {
	n := len(d)
	var worst float64
	for k := 0; k < z.Cols; k++ {
		col := z.Data[k*z.Stride : k*z.Stride+n]
		var ss float64
		for i := 0; i < n; i++ {
			r := d[i] * col[i]
			if i > 0 {
				r += e[i-1] * col[i-1]
			}
			if i < n-1 {
				r += e[i] * col[i+1]
			}
			r -= vals[k] * col[i]
			ss += r * r
		}
		if s := math.Sqrt(ss); s > worst {
			worst = s
		}
	}
	return worst
}

// orthoError returns ‖ZᵀZ − I‖_max.
func orthoError(z *matrix.Dense) float64 {
	n, k := z.Rows, z.Cols
	var worst float64
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			dot := blas.Ddot(n, z.Data[a*z.Stride:], 1, z.Data[b*z.Stride:], 1)
			want := 0.0
			if a == b {
				want = 1
			}
			if d := math.Abs(dot - want); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func scaleOf(d, e []float64) float64 {
	s := maxAbsBound(d, e)
	if s == 0 {
		return 1
	}
	return s
}

func TestSteqr121Analytic(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10, 50, 121} {
		d, e := laplacian121(n)
		z := matrix.Eye(n)
		if err := Steqr(d, e, z); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := analytic121(n)
		for i := range want {
			if math.Abs(d[i]-want[i]) > 1e-12*float64(n) {
				t.Fatalf("n=%d: eigenvalue %d = %.15g, want %.15g", n, i, d[i], want[i])
			}
		}
		d2, e2 := laplacian121(n)
		if r := residualT(d2, e2, d, z); r > 1e-12*float64(n) {
			t.Fatalf("n=%d: residual %g", n, r)
		}
		if o := orthoError(z); o > 1e-13*float64(n) {
			t.Fatalf("n=%d: orthogonality error %g", n, o)
		}
	}
}

func TestSteqrRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 7, 33, 100} {
		d, e := randTridiag(rng, n)
		d0 := append([]float64(nil), d...)
		e0 := append([]float64(nil), e...)
		z := matrix.Eye(n)
		if err := Steqr(d, e, z); err != nil {
			t.Fatal(err)
		}
		scale := scaleOf(d0, e0)
		if r := residualT(d0, e0, d, z); r > 1e-13*scale*float64(n) {
			t.Fatalf("n=%d: residual %g", n, r)
		}
		if o := orthoError(z); o > 1e-13*float64(n) {
			t.Fatalf("n=%d: ortho %g", n, o)
		}
		// Ascending order.
		for i := 1; i < n; i++ {
			if d[i] < d[i-1] {
				t.Fatalf("n=%d: eigenvalues not sorted", n)
			}
		}
	}
}

func TestSteqrTransformsExistingBasis(t *testing.T) {
	// Passing a non-identity basis B must yield B·E where E are the
	// eigenvectors computed from the identity start.
	rng := rand.New(rand.NewSource(12))
	n := 20
	d, e := randTridiag(rng, n)
	dA := append([]float64(nil), d...)
	eA := append([]float64(nil), e...)
	zI := matrix.Eye(n)
	if err := Steqr(dA, eA, zI); err != nil {
		t.Fatal(err)
	}
	b := matrix.NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	dB := append([]float64(nil), d...)
	eB := append([]float64(nil), e...)
	zB := b.Clone()
	if err := Steqr(dB, eB, zB); err != nil {
		t.Fatal(err)
	}
	want := matrix.NewDense(n, n)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, b.Data, b.Stride, zI.Data, zI.Stride, 0, want.Data, want.Stride)
	// Columns may differ by sign only if eigenvalues are distinct and the
	// rotation sequence is identical — it is, since d,e identical. Direct
	// comparison is valid.
	if !zB.Equalish(want, 1e-10) {
		t.Fatal("Steqr with basis B != B · Steqr with identity")
	}
}

func TestSterfMatchesSteqr(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 17, 64} {
		d, e := randTridiag(rng, n)
		d1 := append([]float64(nil), d...)
		e1 := append([]float64(nil), e...)
		d2 := append([]float64(nil), d...)
		e2 := append([]float64(nil), e...)
		if err := Sterf(d1, e1); err != nil {
			t.Fatal(err)
		}
		if err := Steqr(d2, e2, nil); err != nil {
			t.Fatal(err)
		}
		scale := scaleOf(d, e)
		for i := 0; i < n; i++ {
			if math.Abs(d1[i]-d2[i]) > 1e-12*scale*float64(n) {
				t.Fatalf("n=%d: Sterf[%d]=%g vs Steqr %g", n, i, d1[i], d2[i])
			}
		}
	}
}

func TestSturmCountMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d, e := randTridiag(rng, 40)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return SturmCount(d, e, a) <= SturmCount(d, e, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Count below the spectrum is 0, above is n.
	bound := maxAbsBound(d, e) + 1
	if SturmCount(d, e, -bound) != 0 {
		t.Fatal("count below spectrum != 0")
	}
	if SturmCount(d, e, bound) != 40 {
		t.Fatal("count above spectrum != n")
	}
}

func TestStebzMatchesSteqr(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{1, 5, 30, 80} {
		d, e := randTridiag(rng, n)
		dq := append([]float64(nil), d...)
		eq := append([]float64(nil), e...)
		if err := Steqr(dq, eq, nil); err != nil {
			t.Fatal(err)
		}
		w := Stebz(d, e, 1, n)
		scale := scaleOf(d, e)
		for i := 0; i < n; i++ {
			if math.Abs(w[i]-dq[i]) > 1e-11*scale {
				t.Fatalf("n=%d: Stebz[%d]=%.15g vs Steqr %.15g", n, i, w[i], dq[i])
			}
		}
	}
}

func TestStebzSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n := 50
	d, e := randTridiag(rng, n)
	all := Stebz(d, e, 1, n)
	sub := Stebz(d, e, 11, 20)
	for i := 0; i < 10; i++ {
		if math.Abs(sub[i]-all[10+i]) > 1e-12*scaleOf(d, e) {
			t.Fatalf("subset eigenvalue %d mismatch", i)
		}
	}
}

func TestStebzRange(t *testing.T) {
	d, e := laplacian121(30)
	vals, first := StebzRange(d, e, 1.0, 3.0)
	// All returned values must lie in (1, 3].
	for _, v := range vals {
		if v <= 1.0-1e-10 || v > 3.0+1e-10 {
			t.Fatalf("value %g outside (1,3]", v)
		}
	}
	// Cross-check count against the analytic spectrum.
	var want int
	firstWant := 1
	for _, v := range analytic121(30) {
		if v > 1 && v <= 3 {
			want++
		}
		if v <= 1 {
			firstWant++
		}
	}
	if len(vals) != want || first != firstWant {
		t.Fatalf("range: got %d values starting at %d, want %d at %d", len(vals), first, want, firstWant)
	}
}

func TestSteinResidualAndOrtho(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{2, 10, 60} {
		d, e := randTridiag(rng, n)
		w := Stebz(d, e, 1, n)
		z, err := Stein(d, e, w)
		if err != nil {
			t.Fatal(err)
		}
		scale := scaleOf(d, e)
		if r := residualT(d, e, w, z); r > 1e-10*scale*float64(n) {
			t.Fatalf("n=%d: Stein residual %g", n, r)
		}
		if o := orthoError(z); o > 1e-10*float64(n) {
			t.Fatalf("n=%d: Stein ortho %g", n, o)
		}
	}
}

func TestSteinWilkinsonClusters(t *testing.T) {
	// W21+ has eigenvalue pairs agreeing to ~1e-15; inverse iteration
	// without reorthogonalization would return parallel vectors.
	n := 21
	d, e := wilkinson(n)
	w := Stebz(d, e, 1, n)
	z, err := Stein(d, e, w)
	if err != nil {
		t.Fatal(err)
	}
	if o := orthoError(z); o > 1e-8 {
		t.Fatalf("Wilkinson ortho error %g: cluster reorthogonalization failed", o)
	}
	if r := residualT(d, e, w, z); r > 1e-10*float64(n) {
		t.Fatalf("Wilkinson residual %g", r)
	}
}

func TestSteinSubsetVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	n := 40
	d, e := randTridiag(rng, n)
	w := Stebz(d, e, 5, 14) // 10 eigenpairs from the interior
	z, err := Stein(d, e, w)
	if err != nil {
		t.Fatal(err)
	}
	if z.Cols != 10 {
		t.Fatalf("expected 10 vectors, got %d", z.Cols)
	}
	if r := residualT(d, e, w, z); r > 1e-10*scaleOf(d, e)*float64(n) {
		t.Fatalf("subset residual %g", r)
	}
}

func TestSecularRootInterlacing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		d := make([]float64, n)
		z := make([]float64, n)
		d[0] = rng.NormFloat64()
		for i := 1; i < n; i++ {
			d[i] = d[i-1] + 0.1 + rng.Float64() // strictly increasing
		}
		for i := range z {
			z[i] = rng.NormFloat64()
			if math.Abs(z[i]) < 1e-3 {
				z[i] = 1e-3
			}
		}
		rho := 0.1 + rng.Float64()
		var zsq float64
		for _, v := range z {
			zsq += v * v
		}
		for k := 0; k < n; k++ {
			base, mu := SecularRoot(d, z, rho, k)
			lam := d[base] + mu
			lo := d[k]
			hi := d[k] + rho*zsq + 1e-12
			if k < n-1 {
				hi = d[k+1]
			}
			if !(lam > lo && lam <= hi) {
				t.Logf("seed %d root %d: λ=%g not in (%g, %g]", seed, k, lam, lo, hi)
				return false
			}
			// Residual check: f(λ) ≈ 0.
			fval := secularEval(d, z, rho, base, mu)
			// f'(λ) ≥ rho·z_k²/gap² can be huge; just require the bisection
			// interval collapsed: |f| should change sign within a few ulps.
			next := math.Nextafter(mu, math.Inf(1))
			fnext := secularEval(d, z, rho, base, next)
			if fval != 0 && fnext != 0 && math.Signbit(fval) == math.Signbit(fnext) {
				// Allow: mu at the other side boundary.
				prev := math.Nextafter(mu, math.Inf(-1))
				fprev := secularEval(d, z, rho, base, prev)
				if math.Signbit(fprev) == math.Signbit(fval) {
					t.Logf("seed %d root %d: no sign change around root", seed, k)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStedcMatchesSteqr(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, n := range []int{1, 2, 16, 33, 64, 100, 150} {
		d, e := randTridiag(rng, n)
		vals, q, err := Stedc(d, e)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		dq := append([]float64(nil), d...)
		eq := append([]float64(nil), e...)
		if err := Steqr(dq, eq, nil); err != nil {
			t.Fatal(err)
		}
		scale := scaleOf(d, e)
		for i := 0; i < n; i++ {
			if math.Abs(vals[i]-dq[i]) > 1e-12*scale*float64(n) {
				t.Fatalf("n=%d: Stedc val[%d]=%.15g vs Steqr %.15g", n, i, vals[i], dq[i])
			}
		}
		if r := residualT(d, e, vals, q); r > 1e-12*scale*float64(n) {
			t.Fatalf("n=%d: Stedc residual %g", n, r)
		}
		if o := orthoError(q); o > 1e-12*float64(n) {
			t.Fatalf("n=%d: Stedc ortho %g", n, o)
		}
	}
}

func TestStedc121AndWilkinson(t *testing.T) {
	// 1-2-1: massive deflation candidates (uniform structure).
	n := 121
	d, e := laplacian121(n)
	vals, q, err := Stedc(d, e)
	if err != nil {
		t.Fatal(err)
	}
	want := analytic121(n)
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-11 {
			t.Fatalf("121 eigenvalue %d: %.15g want %.15g", i, vals[i], want[i])
		}
	}
	if o := orthoError(q); o > 1e-11 {
		t.Fatalf("121 ortho %g", o)
	}
	// Wilkinson: clustered pairs stress the deflation logic.
	wd, we := wilkinson(101)
	vals, q, err = Stedc(wd, we)
	if err != nil {
		t.Fatal(err)
	}
	if r := residualT(wd, we, vals, q); r > 1e-11*101 {
		t.Fatalf("Wilkinson residual %g", r)
	}
	if o := orthoError(q); o > 1e-11 {
		t.Fatalf("Wilkinson ortho %g", o)
	}
}

func TestStedcDecoupled(t *testing.T) {
	// Zero coupling in the middle exercises the block-diagonal path.
	n := 80
	rng := rand.New(rand.NewSource(20))
	d, e := randTridiag(rng, n)
	e[n/2-1] = 0
	e[10] = 0
	vals, q, err := Stedc(d, e)
	if err != nil {
		t.Fatal(err)
	}
	scale := scaleOf(d, e)
	if r := residualT(d, e, vals, q); r > 1e-12*scale*float64(n) {
		t.Fatalf("decoupled residual %g", r)
	}
	if o := orthoError(q); o > 1e-12*float64(n) {
		t.Fatalf("decoupled ortho %g", o)
	}
}

func TestStedcIdenticalDiagonal(t *testing.T) {
	// d constant, e constant: extreme deflation pressure in every merge.
	n := 90
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 5
	}
	for i := range e {
		e[i] = 1e-3
	}
	vals, q, err := Stedc(d, e)
	if err != nil {
		t.Fatal(err)
	}
	if r := residualT(d, e, vals, q); r > 1e-12*float64(n)*5 {
		t.Fatalf("residual %g", r)
	}
	if o := orthoError(q); o > 1e-12*float64(n) {
		t.Fatalf("ortho %g", o)
	}
}

func TestEigenSumInvariantsProperty(t *testing.T) {
	// Trace and Frobenius norm are preserved by every solver.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		d, e := randTridiag(rng, n)
		var trace, frob float64
		for _, v := range d {
			trace += v
			frob += v * v
		}
		for _, v := range e {
			frob += 2 * v * v
		}
		vals, _, err := Stedc(d, e)
		if err != nil {
			return false
		}
		var tr2, fr2 float64
		for _, v := range vals {
			tr2 += v
			fr2 += v * v
		}
		scale := scaleOf(d, e)
		return math.Abs(trace-tr2) <= 1e-11*scale*float64(n) &&
			math.Abs(frob-fr2) <= 1e-10*scale*scale*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroMatrix(t *testing.T) {
	n := 10
	d := make([]float64, n)
	e := make([]float64, n-1)
	vals, q, err := Stedc(d, e)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v != 0 {
			t.Fatalf("zero matrix eigenvalue %g", v)
		}
	}
	if o := orthoError(q); o > 1e-14 {
		t.Fatalf("zero matrix ortho %g", o)
	}
}

func TestGradedMatrix(t *testing.T) {
	// Strongly graded diagonal (d_i = 10^{-i}) — a classic accuracy stress:
	// trace/Frobenius invariants and cross-method agreement must survive.
	n := 24
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = math.Pow(10, -float64(i)/2)
	}
	for i := range e {
		e[i] = 1e-4 * d[i]
	}
	vals, q, err := Stedc(d, e)
	if err != nil {
		t.Fatal(err)
	}
	dq := append([]float64(nil), d...)
	eq := append([]float64(nil), e...)
	if err := Steqr(dq, eq, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(vals[i]-dq[i]) > 1e-13 {
			t.Fatalf("graded eigenvalue %d: D&C %g vs QR %g", i, vals[i], dq[i])
		}
	}
	if o := orthoError(q); o > 1e-12*float64(n) {
		t.Fatalf("graded ortho %g", o)
	}
}

func TestReversedAndNegativeSpectra(t *testing.T) {
	// Negating T negates and reverses the spectrum.
	rng := rand.New(rand.NewSource(21))
	n := 40
	d, e := randTridiag(rng, n)
	v1, _, err := Stedc(d, e)
	if err != nil {
		t.Fatal(err)
	}
	dneg := make([]float64, n)
	eneg := make([]float64, n-1)
	for i := range d {
		dneg[i] = -d[i]
	}
	for i := range e {
		eneg[i] = -e[i]
	}
	v2, _, err := Stedc(dneg, eneg)
	if err != nil {
		t.Fatal(err)
	}
	scale := scaleOf(d, e)
	for i := 0; i < n; i++ {
		if math.Abs(v2[i]+v1[n-1-i]) > 1e-12*scale*float64(n) {
			t.Fatalf("negated spectrum mismatch at %d: %g vs %g", i, v2[i], -v1[n-1-i])
		}
	}
}

func TestSteinDuplicateEigenvalueInputs(t *testing.T) {
	// Passing exactly equal eigenvalues (as bisection can produce for tight
	// clusters) must still give orthogonal vectors via the perturbation +
	// reorthogonalization path.
	n := 12
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = 1e-14
	}
	w := []float64{2, 2, 2} // three numerically identical eigenvalues
	z, err := Stein(d, e, w)
	if err != nil {
		t.Fatal(err)
	}
	if o := orthoError(z); o > 1e-8 {
		t.Fatalf("duplicate-eigenvalue ortho %g", o)
	}
}

func TestStebzDegenerate(t *testing.T) {
	if got := Stebz(nil, nil, 1, 0); got != nil {
		// n = 0 returns nil regardless of indices.
		t.Fatalf("empty Stebz returned %v", got)
	}
	d := []float64{5}
	if got := Stebz(d, nil, 1, 1); len(got) != 1 || math.Abs(got[0]-5) > 1e-12 {
		t.Fatalf("1x1 Stebz = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad range should panic")
		}
	}()
	Stebz([]float64{1, 2}, []float64{0}, 2, 1)
}
