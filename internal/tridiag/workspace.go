package tridiag

import (
	"sort"

	"repro/internal/matrix"
)

// Work is a retained scratch pool for the tridiagonal eigensolvers. The
// divide & conquer recursion allocates a deterministic population of
// vectors and matrices per problem size; pooling them (plus the sort and
// permutation scratch) makes repeated solves of the same size allocation-
// free in steady state, which is what the reusable Solver's workspace arena
// needs from this layer.
//
// A Work serves one solve at a time (the D&C recursion is sequential). A
// nil *Work is valid everywhere and falls back to plain allocation, so the
// public one-shot entry points need no conditionals.
type Work struct {
	vecs map[int][][]float64     // free float buffers, keyed by exact length
	mats map[int][]*matrix.Dense // free matrices, keyed by len(Data)
	ints map[int][][]int         // free int buffers, keyed by exact length

	// Per-merge scratch, reused across the sequential merge nodes.
	perm     []int
	sidx     []int
	bases    []int
	deflated []bool
	outs     []dcOut
	ents     []dcEnt
	stebz    []stebzIval // bisection interval work-stack

	permSort permSorter
	outSort  outSorter
	entSort  entSorter
}

// NewWork returns an empty pool.
func NewWork() *Work {
	return &Work{
		vecs: make(map[int][][]float64),
		mats: make(map[int][]*matrix.Dense),
		ints: make(map[int][][]int),
	}
}

// WorkspaceBytes reports the pool's retained float storage (for workspace-
// budget accounting; see work.WorkspaceSized). The D&C matrices dominate;
// the int/bool merge scratch is ignored.
func (w *Work) WorkspaceBytes() int64 {
	if w == nil {
		return 0
	}
	var b int64
	for _, l := range w.vecs {
		for _, v := range l {
			b += int64(cap(v)) * 8
		}
	}
	for _, l := range w.mats {
		for _, m := range l {
			b += int64(cap(m.Data)) * 8
		}
	}
	return b
}

// vec returns a zeroed float buffer of exactly length n.
func (w *Work) vec(n int) []float64 {
	if w == nil {
		return make([]float64, n)
	}
	if l := w.vecs[n]; len(l) > 0 {
		buf := l[len(l)-1]
		w.vecs[n] = l[:len(l)-1]
		clear(buf)
		return buf
	}
	return make([]float64, n)
}

// putVec returns a buffer obtained from vec to the pool. Never put a slice
// that aliases live data (e.g. a sub-slice of a caller's array).
func (w *Work) putVec(b []float64) {
	if w == nil || cap(b) == 0 {
		return
	}
	w.vecs[len(b)] = append(w.vecs[len(b)], b)
}

// mat returns a zeroed r×c matrix (Stride == r), reusing a pooled header
// and backing array of the same element count when available.
func (w *Work) mat(r, c int) *matrix.Dense {
	if w == nil || r*c == 0 {
		return matrix.NewDense(r, c)
	}
	key := r * c
	if l := w.mats[key]; len(l) > 0 {
		m := l[len(l)-1]
		w.mats[key] = l[:len(l)-1]
		m.Rows, m.Cols, m.Stride = r, c, r
		clear(m.Data)
		return m
	}
	return matrix.NewDense(r, c)
}

// putMat returns a matrix obtained from mat to the pool.
func (w *Work) putMat(m *matrix.Dense) {
	if w == nil || m == nil || len(m.Data) == 0 {
		return
	}
	w.mats[len(m.Data)] = append(w.mats[len(m.Data)], m)
}

// intVec returns a zeroed int buffer of exactly length n. Unlike the
// singleton permBuf/sidxBuf scratch, these buffers may be held across task
// boundaries (the D&C merge's secular-column placement map lives from the
// pre-task to the post-task), so they are pooled like vec/mat.
func (w *Work) intVec(n int) []int {
	if w == nil {
		return make([]int, n)
	}
	if w.ints == nil {
		w.ints = make(map[int][][]int)
	}
	if l := w.ints[n]; len(l) > 0 {
		buf := l[len(l)-1]
		w.ints[n] = l[:len(l)-1]
		clear(buf)
		return buf
	}
	return make([]int, n)
}

// putIntVec returns a buffer obtained from intVec to the pool.
func (w *Work) putIntVec(b []int) {
	if w == nil || cap(b) == 0 {
		return
	}
	if w.ints == nil {
		w.ints = make(map[int][][]int)
	}
	w.ints[len(b)] = append(w.ints[len(b)], b)
}

// stebzStackBuf returns the (empty) bisection work-stack; putStebzStack
// hands it back so its grown capacity is retained across solves.
func (w *Work) stebzStackBuf() []stebzIval {
	if w == nil {
		return make([]stebzIval, 0, 64)
	}
	if w.stebz == nil {
		w.stebz = make([]stebzIval, 0, 64)
	}
	return w.stebz[:0]
}

func (w *Work) putStebzStack(s []stebzIval) {
	if w != nil {
		w.stebz = s
	}
}

// PutVec hands a vector returned by a solver (e.g. StedcWork's eigenvalues)
// back to the pool once the caller has copied what it needs.
func (w *Work) PutVec(b []float64) { w.putVec(b) }

// PutMat hands a matrix returned by a solver (e.g. StedcWork's eigenvector
// basis) back to the pool once the caller has copied what it needs.
func (w *Work) PutMat(m *matrix.Dense) { w.putMat(m) }

// eye returns the n×n identity from the pool.
func (w *Work) eye(n int) *matrix.Dense {
	m := w.mat(n, n)
	for i := 0; i < n; i++ {
		m.Data[i+i*m.Stride] = 1
	}
	return m
}

// permBuf, sidxBuf, basesBuf, deflatedBuf, outsBuf and entsBuf return
// per-merge scratch with capacity n; the three int buffers are distinct
// because they are live simultaneously within one merge. Appending up to n
// elements to the [:0] variants never reallocates.

func (w *Work) permBuf(n int) []int {
	if w == nil {
		return make([]int, n)
	}
	if cap(w.perm) < n {
		w.perm = make([]int, n)
	}
	return w.perm[:n]
}

func (w *Work) sidxBuf(n int) []int {
	if w == nil {
		return make([]int, 0, n)
	}
	if cap(w.sidx) < n {
		w.sidx = make([]int, n)
	}
	return w.sidx[:0]
}

func (w *Work) basesBuf(n int) []int {
	if w == nil {
		return make([]int, n)
	}
	if cap(w.bases) < n {
		w.bases = make([]int, n)
	}
	return w.bases[:n]
}

func (w *Work) deflatedBuf(n int) []bool {
	if w == nil {
		return make([]bool, n)
	}
	if cap(w.deflated) < n {
		w.deflated = make([]bool, n)
	}
	b := w.deflated[:n]
	clear(b)
	return b
}

func (w *Work) outsBuf(n int) []dcOut {
	if w == nil {
		return make([]dcOut, 0, n)
	}
	if cap(w.outs) < n {
		w.outs = make([]dcOut, n)
	}
	return w.outs[:0]
}

func (w *Work) entsBuf(n int) []dcEnt {
	if w == nil {
		return make([]dcEnt, 0, n)
	}
	if cap(w.ents) < n {
		w.ents = make([]dcEnt, n)
	}
	return w.ents[:0]
}

// sortPerm sorts perm so that key[perm[i]] ascends. With a pool the sorter
// lives in the Work, so sort.Sort sees a pointer and nothing escapes.
func (w *Work) sortPerm(perm []int, key []float64) {
	if w == nil {
		sort.Slice(perm, func(a, b int) bool { return key[perm[a]] < key[perm[b]] })
		return
	}
	w.permSort.perm, w.permSort.key = perm, key
	sort.Sort(&w.permSort)
	w.permSort.perm, w.permSort.key = nil, nil
}

// sortOuts sorts merge output columns by eigenvalue.
func (w *Work) sortOuts(outs []dcOut) {
	if w == nil {
		sort.Slice(outs, func(a, b int) bool { return outs[a].val < outs[b].val })
		return
	}
	w.outSort.s = outs
	sort.Sort(&w.outSort)
	w.outSort.s = nil
}

// sortEnts sorts decoupled-merge entries by eigenvalue.
func (w *Work) sortEnts(ents []dcEnt) {
	if w == nil {
		sort.Slice(ents, func(a, b int) bool { return ents[a].val < ents[b].val })
		return
	}
	w.entSort.s = ents
	sort.Sort(&w.entSort)
	w.entSort.s = nil
}

// WorkSet is the parallel-solve extension of Work: one retained pool per
// scheduler worker plus one for the submitting goroutine (which builds the
// task DAG — and runs the whole solve in inline mode — concurrently with
// worker 0, so it must not share worker 0's pool). Task bodies draw scratch
// from Worker(id) with the id the scheduler hands them; everything outside
// a task body uses Seq().
//
// Buffers may migrate between member pools: a merge task recycles its
// children's buffers into the pool of whichever worker ran it. That is safe
// because each pool is only ever touched by the single goroutine currently
// running a task for that worker (or, for Seq, by the submitting goroutine
// outside the submit/Wait window), and the scheduler's lock orders a
// buffer's last write before its next reuse.
//
// A nil *WorkSet is valid and falls back to plain allocation, like a nil
// *Work.
type WorkSet struct {
	works []*Work // [0, workers) per scheduler worker; last entry = Seq
	run   dcRun   // retained D&C DAG state (nodes, latch), reused per solve
}

// NewWorkSet returns a pool set serving the given scheduler width.
func NewWorkSet(workers int) *WorkSet {
	s := &WorkSet{}
	s.Grow(workers)
	return s
}

// Grow ensures the set serves at least the given scheduler width. Existing
// pools (and their retained buffers) are kept; the Seq pool stays last.
func (s *WorkSet) Grow(workers int) {
	if s == nil || workers < 1 {
		return
	}
	for len(s.works) < workers+1 {
		s.works = append(s.works, NewWork())
	}
}

// Worker returns the pool owned by the given scheduler worker.
func (s *WorkSet) Worker(i int) *Work {
	if s == nil {
		return nil
	}
	return s.works[i]
}

// Seq returns the submitting goroutine's pool; it also serves the whole
// solve on the inline (sequential) path.
func (s *WorkSet) Seq() *Work {
	if s == nil {
		return nil
	}
	return s.works[len(s.works)-1]
}

// PutVec hands a solver-returned vector back to the set (the Seq pool).
func (s *WorkSet) PutVec(b []float64) { s.Seq().PutVec(b) }

// PutMat hands a solver-returned matrix back to the set (the Seq pool).
func (s *WorkSet) PutMat(m *matrix.Dense) { s.Seq().PutMat(m) }

// WorkspaceBytes sums the retained float storage of every member pool (see
// work.WorkspaceSized).
func (s *WorkSet) WorkspaceBytes() int64 {
	if s == nil {
		return 0
	}
	var b int64
	for _, w := range s.works {
		b += w.WorkspaceBytes()
	}
	return b
}

type permSorter struct {
	perm []int
	key  []float64
}

func (p *permSorter) Len() int           { return len(p.perm) }
func (p *permSorter) Less(i, j int) bool { return p.key[p.perm[i]] < p.key[p.perm[j]] }
func (p *permSorter) Swap(i, j int)      { p.perm[i], p.perm[j] = p.perm[j], p.perm[i] }

type outSorter struct{ s []dcOut }

func (o *outSorter) Len() int           { return len(o.s) }
func (o *outSorter) Less(i, j int) bool { return o.s[i].val < o.s[j].val }
func (o *outSorter) Swap(i, j int)      { o.s[i], o.s[j] = o.s[j], o.s[i] }

type entSorter struct{ s []dcEnt }

func (e *entSorter) Len() int           { return len(e.s) }
func (e *entSorter) Less(i, j int) bool { return e.s[i].val < e.s[j].val }
func (e *entSorter) Swap(i, j int)      { e.s[i], e.s[j] = e.s[j], e.s[i] }
