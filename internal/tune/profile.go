package tune

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sync"
)

// ProfileVersion is the schema version written by this build. Loading
// migrates known older versions forward (see migrate) and rejects the rest:
// the meaning of the fields (in particular which ones are numerically
// neutral) is part of the schema, so a profile from an unknown schema is
// worthless rather than approximately right.
//
// History: v1 was the original (gemm/nb/col_block); v2 added Lookahead, the
// swept stage-1 look-ahead depth; v3 added the multi-sweep SBR plan
// (WideBand + BandSweeps).
const ProfileVersion = 3

// RequiredKC is the one GEMM blocking parameter the schema pins (since v1): C is
// accumulated in KC-sized partial sums, so KC is the only blocking value that
// changes the rounding of every Level-3 result. Profiles must either leave it
// unset (0 → the default, which equals RequiredKC) or set it to exactly this
// value; anything else is rejected so that installing a tuned profile can
// never perturb solver output.
const RequiredKC = 128

// ProfileEnv names the environment variable that overrides the default
// on-disk profile location.
const ProfileEnv = "EIGEN_TUNE_PROFILE"

// kernelNames is the closed set of GEMM kernel spellings the schema
// admits. It mirrors blas.KernelFromString (tune is a leaf package and cannot
// import blas to ask).
var kernelNames = map[string]bool{
	"": true, "auto": true, "2x4": true, "4x4": true, "8x4": true, "seed": true,
}

// GemmConfig is the persisted GEMM blocking: cache block sizes and the
// accumulator-tile kernel, in the spelling blas.KernelFromString accepts.
// Zero fields mean "keep the built-in default".
type GemmConfig struct {
	MC     int    `json:"mc,omitempty"`
	KC     int    `json:"kc,omitempty"`
	NC     int    `json:"nc,omitempty"`
	Kernel string `json:"kernel,omitempty"`
}

// Profile is the persisted result of one cmd/eigtune run: the machine it was
// measured on, the winning knob settings, and the measured machine parameters
// that justify them (for the Eqs. 9–10 cross-check and for humans reading the
// file). All tuning fields are optional; a zero field defers to the built-in
// default for that knob.
//
// Numerics contract: every field a Solver applies automatically is
// numerically neutral — GEMM MC/NC and the kernel never reorder an
// accumulation chain (see internal/blas), and ColBlock only partitions
// independent eigenvector columns. The two exceptions are KC (pinned by
// Validate to RequiredKC) and NB, which selects a different — equally valid —
// factorization exactly like Options.NB does.
type Profile struct {
	Version int    `json:"version"`
	GOOS    string `json:"goos"`
	GOARCH  string `json:"goarch"`
	NumCPU  int    `json:"num_cpu"`
	// Created is an informational timestamp (RFC 3339); it is not validated.
	Created string `json:"created,omitempty"`

	// Gemm is the Level-3 blocking installed process-wide at Solver
	// construction.
	Gemm GemmConfig `json:"gemm"`
	// NB is the tuned stage-1 tile size / bandwidth (0 = keep the default).
	// Applied only when Options.NB is unset.
	NB int `json:"nb,omitempty"`
	// ColBlock is the tuned eigenvector column-block width (0 = keep the
	// ColBlock heuristic). Applied only when Options.ColBlock is unset.
	ColBlock int `json:"col_block,omitempty"`
	// Lookahead is the tuned stage-1 look-ahead depth (0 = keep the built-in
	// default, which is also what migrated v1 profiles report). Applied only
	// when Options.LookaheadDepth is unset. Numerically neutral: the depth
	// only steers task readiness, never an accumulation order.
	Lookahead int `json:"lookahead,omitempty"`

	// WideBand and BandSweeps are the tuned multi-sweep stage-1 plan (since
	// v3): reduce to bandwidth WideBand first, then narrow through the
	// strictly decreasing BandSweeps bandwidths via successive band reduction
	// before the bulge chase. Both unset (0 / empty) means the classic
	// single-sweep reduction won tuning. Applied only when the caller left
	// Options.WideBand and Options.BandSweeps unset and did not set
	// DisableMultiSweep. Like NB, these select a different — equally valid —
	// factorization rather than perturbing an existing one.
	WideBand   int   `json:"wide_band,omitempty"`
	BandSweeps []int `json:"band_sweeps,omitempty"`

	// Measured machine parameters (flop/s) and the model's analytic optimum,
	// recorded for the §7.1 cross-check; they are not consumed by the Solver.
	AlphaFlops float64 `json:"alpha_flops,omitempty"`
	BetaFlops  float64 `json:"beta_flops,omitempty"`
	ModelNB    int     `json:"model_nb,omitempty"`
}

// Equal reports whether two profiles carry identical settings. Profiles
// stopped being comparable with == when the schema grew a slice field
// (BandSweeps, v3); this is the replacement, used by tests and by callers
// deciding whether a re-tune changed anything.
func (p *Profile) Equal(q *Profile) bool {
	if p == nil || q == nil {
		return p == q
	}
	return p.Version == q.Version && p.GOOS == q.GOOS && p.GOARCH == q.GOARCH &&
		p.NumCPU == q.NumCPU && p.Created == q.Created && p.Gemm == q.Gemm &&
		p.NB == q.NB && p.ColBlock == q.ColBlock && p.Lookahead == q.Lookahead &&
		p.WideBand == q.WideBand && slices.Equal(p.BandSweeps, q.BandSweeps) &&
		p.AlphaFlops == q.AlphaFlops && p.BetaFlops == q.BetaFlops && p.ModelNB == q.ModelNB
}

// NewProfile returns an empty profile stamped with this build's schema
// version and this machine's identity.
func NewProfile() *Profile {
	return &Profile{
		Version: ProfileVersion,
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		NumCPU:  runtime.NumCPU(),
	}
}

// Validate reports whether the profile may be applied on this machine: the
// schema version must match, the hardware identity must match (a profile
// tuned elsewhere is at best useless and at worst pins pathological blocking),
// KC must be unset or RequiredKC, the kernel name must be known, and the
// numeric knobs must be non-negative.
func (p *Profile) Validate() error {
	if p == nil {
		return fmt.Errorf("tune: nil profile")
	}
	if p.Version != ProfileVersion {
		return fmt.Errorf("tune: profile schema v%d, this build reads v%d", p.Version, ProfileVersion)
	}
	if p.GOOS != runtime.GOOS || p.GOARCH != runtime.GOARCH {
		return fmt.Errorf("tune: profile tuned for %s/%s, running on %s/%s", p.GOOS, p.GOARCH, runtime.GOOS, runtime.GOARCH)
	}
	if p.NumCPU != runtime.NumCPU() {
		return fmt.Errorf("tune: profile tuned for %d CPUs, machine has %d", p.NumCPU, runtime.NumCPU())
	}
	if p.Gemm.KC != 0 && p.Gemm.KC != RequiredKC {
		return fmt.Errorf("tune: profile gemm kc=%d, schema v%d requires %d (kc changes rounding)", p.Gemm.KC, ProfileVersion, RequiredKC)
	}
	if !kernelNames[p.Gemm.Kernel] {
		return fmt.Errorf("tune: unknown gemm kernel %q", p.Gemm.Kernel)
	}
	if p.Gemm.MC < 0 || p.Gemm.NC < 0 || p.NB < 0 || p.ColBlock < 0 || p.Lookahead < 0 || p.WideBand < 0 {
		return fmt.Errorf("tune: negative tuning value in profile")
	}
	prev := p.WideBand
	for _, b := range p.BandSweeps {
		if b < 1 {
			return fmt.Errorf("tune: band_sweeps entry %d out of range (must be ≥ 1)", b)
		}
		if prev > 0 && b >= prev {
			return fmt.Errorf("tune: band_sweeps must narrow strictly (got %d after %d)", b, prev)
		}
		prev = b
	}
	return nil
}

// DefaultPath returns where profiles live on this machine: $EIGEN_TUNE_PROFILE
// when set, else <user cache dir>/eigen/tune.json.
func DefaultPath() (string, error) {
	if p := os.Getenv(ProfileEnv); p != "" {
		return p, nil
	}
	dir, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("tune: no cache dir (set %s): %w", ProfileEnv, err)
	}
	return filepath.Join(dir, "eigen", "tune.json"), nil
}

// Load reads and validates a profile. Both I/O and validation failures are
// errors; callers that merely prefer a profile (the Solver) use Cached, which
// maps every failure to "no profile".
func Load(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("tune: parsing %s: %w", path, err)
	}
	if err := p.migrate(); err != nil {
		return nil, fmt.Errorf("tune: rejecting %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("tune: rejecting %s: %w", path, err)
	}
	return &p, nil
}

// migrate upgrades a known older on-disk schema to ProfileVersion in place.
// Each hop is semantics-preserving because the fields the next schema added
// did not exist in the older one, and their zero values mean "keep the
// built-in default" — exactly how the older build behaved. That argument
// collapses if an old-versioned file carries a newer field with a non-zero
// value: the file was hand-edited or truncated by a version-unaware writer,
// and silently migrating it would apply settings no schema ever defined for
// it. Such files are rejected here, before migration. Unknown versions are
// left untouched for Validate to reject.
func (p *Profile) migrate() error {
	if p.Version < 2 && p.Lookahead != 0 {
		return fmt.Errorf("tune: profile schema v%d predates the lookahead field but sets lookahead=%d", p.Version, p.Lookahead)
	}
	if p.Version < 3 && (p.WideBand != 0 || len(p.BandSweeps) != 0) {
		return fmt.Errorf("tune: profile schema v%d predates the SBR fields but sets wide_band/band_sweeps", p.Version)
	}
	if p.Version == 1 {
		p.Version = 2
	}
	if p.Version == 2 {
		p.Version = 3
	}
	return nil
}

// Save validates the profile and writes it atomically (temp file + rename in
// the destination directory, so a crash or a concurrent reader never sees a
// torn profile). Parent directories are created as needed.
func (p *Profile) Save(path string) error {
	if err := p.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tune-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// cacheMu guards the once-per-process profile load that Cached serves to
// every Solver construction.
var cacheMu sync.Mutex
var cachedProfile *Profile
var cacheLoaded bool

// Cached returns the machine's persisted profile, loading it from DefaultPath
// on first use, or nil when there is none (missing file, unreadable file,
// schema or hardware mismatch — a Solver must never fail to construct because
// of a stale tuning file). The result is shared; callers must not mutate it.
func Cached() *Profile {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if !cacheLoaded {
		cacheLoaded = true
		if path, err := DefaultPath(); err == nil {
			if p, err := Load(path); err == nil {
				cachedProfile = p
			}
		}
	}
	return cachedProfile
}

// InvalidateCache drops the cached profile so the next Cached call re-reads
// the disk — used after eigtune writes a new profile in-process and by tests
// that repoint EIGEN_TUNE_PROFILE.
func InvalidateCache() {
	cacheMu.Lock()
	cachedProfile = nil
	cacheLoaded = false
	cacheMu.Unlock()
}
