package tune

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func validProfile() *Profile {
	p := NewProfile()
	p.Gemm = GemmConfig{MC: 192, KC: RequiredKC, NC: 768, Kernel: "2x4"}
	p.NB = 48
	p.ColBlock = 96
	p.AlphaFlops = 5e9
	p.BetaFlops = 1e9
	p.ModelNB = 44
	return p
}

func TestProfileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "tune.json")
	want := validProfile()
	if err := want.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !got.Equal(want) {
		t.Errorf("round trip changed profile:\n got %+v\nwant %+v", *got, *want)
	}
	// No temp litter left behind by the atomic write.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("profile dir has %d entries, want 1 (no temp files)", len(ents))
	}
}

func TestProfileValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"version", func(p *Profile) { p.Version = ProfileVersion + 1 }},
		{"goos", func(p *Profile) { p.GOOS = p.GOOS + "x" }},
		{"goarch", func(p *Profile) { p.GOARCH = "wasm" }},
		{"numcpu", func(p *Profile) { p.NumCPU = runtime.NumCPU() + 1 }},
		{"kc", func(p *Profile) { p.Gemm.KC = RequiredKC * 2 }},
		{"kernel", func(p *Profile) { p.Gemm.Kernel = "16x16" }},
		{"negative-nb", func(p *Profile) { p.NB = -1 }},
		{"negative-mc", func(p *Profile) { p.Gemm.MC = -5 }},
		{"negative-wideband", func(p *Profile) { p.WideBand = -8 }},
		{"zero-sweep", func(p *Profile) { p.BandSweeps = []int{8, 0} }},
		{"non-narrowing-sweeps", func(p *Profile) { p.WideBand = 64; p.BandSweeps = []int{32, 32} }},
		{"sweep-wider-than-band", func(p *Profile) { p.WideBand = 32; p.BandSweeps = []int{64} }},
	}
	for _, tc := range cases {
		p := validProfile()
		tc.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid profile %+v", tc.name, *p)
		}
		// Save must refuse to persist what Load would reject.
		if err := p.Save(filepath.Join(t.TempDir(), "tune.json")); err == nil {
			t.Errorf("%s: Save persisted an invalid profile", tc.name)
		}
	}
	p := validProfile()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	// Unset KC and kernel are valid (defer to defaults).
	p.Gemm.KC = 0
	p.Gemm.Kernel = ""
	if err := p.Validate(); err != nil {
		t.Errorf("zero KC/kernel rejected: %v", err)
	}
}

func TestLoadRejectsMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.json")
	p := validProfile()
	p.NumCPU = runtime.NumCPU() + 7
	// Bypass Save's validation to simulate a profile tuned on another box.
	if err := os.WriteFile(path, mustJSON(t, p), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := Load(path); err == nil {
		t.Errorf("Load accepted hardware-mismatched profile %+v", got)
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load accepted malformed JSON")
	}
}

// TestProfileMigrationV1 is the schema-migration gate named in
// scripts/check.sh: v1- and v2-era on-disk profiles (no lookahead / no SBR
// fields) must load in this build, come back stamped with the current version
// and zero values for the fields their schema predates (= keep the built-in
// defaults, exactly the old build's behaviour), and survive a Save → Load
// round trip unchanged. Files that claim an old version but set a field from
// a newer schema are corrupt, not old, and must be rejected — migrating them
// would silently apply settings their schema never defined (the v1+lookahead
// case used to slip through as a zero depth).
func TestProfileMigrationV1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.json")
	for _, oldV := range []int{1, 2} {
		old := validProfile()
		old.Version = oldV
		if oldV >= 2 {
			old.Lookahead = 3 // the v2 schema legitimately carries a depth
		}
		// Bypass Save's validation: this build would refuse to write old
		// versions, but it must still read profiles an older build wrote.
		if err := os.WriteFile(path, mustJSON(t, old), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("Load rejected a v%d profile: %v", oldV, err)
		}
		if got.Version != ProfileVersion {
			t.Fatalf("migrated v%d profile has version %d, want %d", oldV, got.Version, ProfileVersion)
		}
		if oldV < 2 && got.Lookahead != 0 {
			t.Fatalf("migrated v1 profile has Lookahead %d, want 0 (keep default)", got.Lookahead)
		}
		if got.WideBand != 0 || got.BandSweeps != nil {
			t.Fatalf("migrated v%d profile has SBR plan %d/%v, want zero (keep default)", oldV, got.WideBand, got.BandSweeps)
		}
		// Everything else must be carried over untouched.
		want := *old
		want.Version = ProfileVersion
		if !got.Equal(&want) {
			t.Fatalf("migration changed fields beyond the version:\n got %+v\nwant %+v", *got, want)
		}
		// A migrated profile re-saved by this build round-trips as the
		// current schema.
		if err := got.Save(path); err != nil {
			t.Fatalf("Save after migration: %v", err)
		}
		again, err := Load(path)
		if err != nil {
			t.Fatalf("reload after migration save: %v", err)
		}
		if !again.Equal(got) {
			t.Fatalf("migration save/load round trip changed profile:\n got %+v\nwant %+v", *again, *got)
		}
	}
	// Unknown future schemas are still rejected, not "migrated".
	v9 := validProfile()
	v9.Version = ProfileVersion + 7
	if err := os.WriteFile(path, mustJSON(t, v9), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a profile from an unknown future schema")
	}
}

// TestProfileMigrationRejectsNewerFields is the regression test for the
// silent-migration hole: an on-disk profile whose version predates a field it
// nevertheless sets must be rejected by Load, not migrated. Before the fix a
// v1 file carrying "lookahead" loaded fine and the depth was quietly
// interpreted under v2 semantics it was never written against.
func TestProfileMigrationRejectsNewerFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.json")
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"v1-with-lookahead", func(p *Profile) { p.Version = 1; p.Lookahead = 2 }},
		{"v1-with-wideband", func(p *Profile) { p.Version = 1; p.WideBand = 64 }},
		{"v2-with-wideband", func(p *Profile) { p.Version = 2; p.WideBand = 64 }},
		{"v2-with-sweeps", func(p *Profile) { p.Version = 2; p.BandSweeps = []int{8} }},
	}
	for _, tc := range cases {
		p := validProfile()
		tc.mut(p)
		if err := os.WriteFile(path, mustJSON(t, p), 0o644); err != nil {
			t.Fatal(err)
		}
		if got, err := Load(path); err == nil {
			t.Errorf("%s: Load migrated a version-inconsistent profile: %+v", tc.name, got)
		}
	}
}

func TestDefaultPathEnvOverride(t *testing.T) {
	t.Setenv(ProfileEnv, "/some/where/tune.json")
	got, err := DefaultPath()
	if err != nil || got != "/some/where/tune.json" {
		t.Errorf("DefaultPath with env = %q, %v", got, err)
	}
}

// TestDefaultPathWithoutHomeDir pins the degraded path for HOME-less
// containers: DefaultPath must return an error (not panic, not return a
// bogus path) and Cached must swallow it and report no profile.
func TestDefaultPathWithoutHomeDir(t *testing.T) {
	t.Setenv("HOME", "")
	t.Setenv("XDG_CACHE_HOME", "")
	t.Setenv(ProfileEnv, "")
	InvalidateCache()
	t.Cleanup(InvalidateCache)

	if path, err := DefaultPath(); err == nil {
		t.Fatalf("DefaultPath without HOME = %q, want error", path)
	}
	if p := Cached(); p != nil {
		t.Fatalf("Cached without HOME = %+v, want nil", p)
	}
}

func TestCachedUsesEnvPathAndInvalidate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.json")
	t.Setenv(ProfileEnv, path)
	InvalidateCache()
	t.Cleanup(InvalidateCache)

	if p := Cached(); p != nil {
		t.Fatalf("Cached returned %+v for a missing file", p)
	}
	want := validProfile()
	if err := want.Save(path); err != nil {
		t.Fatal(err)
	}
	// The negative result is cached until invalidated.
	if p := Cached(); p != nil {
		t.Fatalf("Cached re-read disk without InvalidateCache")
	}
	InvalidateCache()
	got := Cached()
	if !got.Equal(want) {
		t.Errorf("Cached after save = %+v, want %+v", got, want)
	}
}

func mustJSON(t *testing.T, p *Profile) []byte {
	t.Helper()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
