package tune

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func validProfile() *Profile {
	p := NewProfile()
	p.Gemm = GemmConfig{MC: 192, KC: RequiredKC, NC: 768, Kernel: "2x4"}
	p.NB = 48
	p.ColBlock = 96
	p.AlphaFlops = 5e9
	p.BetaFlops = 1e9
	p.ModelNB = 44
	return p
}

func TestProfileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "tune.json")
	want := validProfile()
	if err := want.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if *got != *want {
		t.Errorf("round trip changed profile:\n got %+v\nwant %+v", *got, *want)
	}
	// No temp litter left behind by the atomic write.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("profile dir has %d entries, want 1 (no temp files)", len(ents))
	}
}

func TestProfileValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"version", func(p *Profile) { p.Version = ProfileVersion + 1 }},
		{"goos", func(p *Profile) { p.GOOS = p.GOOS + "x" }},
		{"goarch", func(p *Profile) { p.GOARCH = "wasm" }},
		{"numcpu", func(p *Profile) { p.NumCPU = runtime.NumCPU() + 1 }},
		{"kc", func(p *Profile) { p.Gemm.KC = RequiredKC * 2 }},
		{"kernel", func(p *Profile) { p.Gemm.Kernel = "16x16" }},
		{"negative-nb", func(p *Profile) { p.NB = -1 }},
		{"negative-mc", func(p *Profile) { p.Gemm.MC = -5 }},
	}
	for _, tc := range cases {
		p := validProfile()
		tc.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid profile %+v", tc.name, *p)
		}
		// Save must refuse to persist what Load would reject.
		if err := p.Save(filepath.Join(t.TempDir(), "tune.json")); err == nil {
			t.Errorf("%s: Save persisted an invalid profile", tc.name)
		}
	}
	p := validProfile()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	// Unset KC and kernel are valid (defer to defaults).
	p.Gemm.KC = 0
	p.Gemm.Kernel = ""
	if err := p.Validate(); err != nil {
		t.Errorf("zero KC/kernel rejected: %v", err)
	}
}

func TestLoadRejectsMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.json")
	p := validProfile()
	p.NumCPU = runtime.NumCPU() + 7
	// Bypass Save's validation to simulate a profile tuned on another box.
	if err := os.WriteFile(path, mustJSON(t, p), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := Load(path); err == nil {
		t.Errorf("Load accepted hardware-mismatched profile %+v", got)
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load accepted malformed JSON")
	}
}

func TestDefaultPathEnvOverride(t *testing.T) {
	t.Setenv(ProfileEnv, "/some/where/tune.json")
	got, err := DefaultPath()
	if err != nil || got != "/some/where/tune.json" {
		t.Errorf("DefaultPath with env = %q, %v", got, err)
	}
}

func TestCachedUsesEnvPathAndInvalidate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.json")
	t.Setenv(ProfileEnv, path)
	InvalidateCache()
	t.Cleanup(InvalidateCache)

	if p := Cached(); p != nil {
		t.Fatalf("Cached returned %+v for a missing file", p)
	}
	want := validProfile()
	if err := want.Save(path); err != nil {
		t.Fatal(err)
	}
	// The negative result is cached until invalidated.
	if p := Cached(); p != nil {
		t.Fatalf("Cached re-read disk without InvalidateCache")
	}
	InvalidateCache()
	got := Cached()
	if got == nil || *got != *want {
		t.Errorf("Cached after save = %+v, want %+v", got, want)
	}
}

func mustJSON(t *testing.T, p *Profile) []byte {
	t.Helper()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
