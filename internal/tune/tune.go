// Package tune centralizes the small performance heuristics that more than
// one substrate package must agree on. It is a leaf package (no internal
// imports) so that internal/core, internal/band and internal/backtransform
// can all share one default without import cycles.
package tune

// colBlockFloor is the narrowest eigenvector column block worth scheduling:
// below this the Level-3 kernels degenerate toward Level 2 and task overhead
// dominates.
const colBlockFloor = 32

// colBlockMin is the hard lower bound (degenerate problems aside, a block is
// never empty).
const colBlockMin = 1

// blocksPerWorker is the target task surplus of the back-transformation:
// enough blocks per worker that the dynamic scheduler can load-balance the
// tail, few enough that each block still amortizes the full Q₂/Q₁ operator
// stream it applies.
const blocksPerWorker = 4

// ColBlock picks the eigenvector column-block width shared by the Q₂ and Q₁
// appliers (and the fused single-pass back-transformation): cols is the
// number of eigenvector columns being updated, nb the stage-1 tile size /
// bandwidth, workers the executing pool width. Sequential runs get a
// cache-friendly max(64, nb); parallel runs shrink the block until every
// worker owns at least blocksPerWorker blocks, but never below the Level-3
// floor.
func ColBlock(cols, nb, workers int) int {
	cb := 64
	if nb > cb {
		cb = nb
	}
	if workers > 1 && cols > 0 {
		if per := (cols + blocksPerWorker*workers - 1) / (blocksPerWorker * workers); per < cb {
			cb = per
		}
		if cb < colBlockFloor {
			cb = colBlockFloor
		}
	}
	if cols > 0 && cb > cols {
		cb = cols
	}
	if cb < colBlockMin {
		cb = colBlockMin
	}
	return cb
}
