package tune

import "testing"

func TestColBlock(t *testing.T) {
	for _, tc := range []struct {
		name                  string
		cols, nb, workers, cb int
	}{
		{"sequential default", 1000, 32, 1, 64},
		{"sequential wide nb", 1000, 100, 1, 100},
		{"clamped to cols", 10, 32, 1, 10},
		{"zero cols", 0, 32, 1, 64},
		{"parallel splits work", 256, 32, 4, 32}, // 256/(4·4) = 16 → floor 32
		{"parallel keeps floor", 128, 16, 8, 32},
		{"parallel large stays 64", 4096, 32, 4, 64},
		{"nb dominates in parallel", 4096, 96, 2, 96}, // 4096/8=512 ≥ 96
		{"tiny problem", 3, 8, 4, 3},
	} {
		if got := ColBlock(tc.cols, tc.nb, tc.workers); got != tc.cb {
			t.Errorf("%s: ColBlock(%d,%d,%d)=%d, want %d",
				tc.name, tc.cols, tc.nb, tc.workers, got, tc.cb)
		}
	}
}

func TestColBlockInvariants(t *testing.T) {
	for cols := 1; cols <= 200; cols += 13 {
		for _, nb := range []int{1, 8, 40, 150} {
			for workers := 1; workers <= 9; workers++ {
				cb := ColBlock(cols, nb, workers)
				if cb < 1 || cb > cols {
					t.Fatalf("ColBlock(%d,%d,%d)=%d out of [1,%d]", cols, nb, workers, cb, cols)
				}
			}
		}
	}
}
