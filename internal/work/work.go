// Package work provides the size-keyed workspace arena that makes the
// solve path reusable: every scratch buffer the pipeline needs — the dense
// working copy of A, the stage-1 tile storage and kernel scratch, the
// extended workband of the bulge chase, the Q₂ reflector and diamond
// slabs, the tridiagonal d/e/work arrays and the eigenvector staging
// matrix — is obtained from an Arena instead of the garbage collector.
//
// An Arena serves exactly one solve at a time; a Pool hands out Arenas to
// concurrent solves and recycles them, so a long-lived Solver reaches a
// steady state in which repeated solves of the same size perform near-zero
// allocations (the workspace-reuse discipline of PLASMA's runtime that the
// paper's two-stage pipeline is built on).
//
// Ownership rule: buffers returned by an Arena are valid only until the
// Arena is released back to its Pool. Results that outlive the solve
// (eigenvalues, eigenvector matrices handed to the caller) must never be
// arena-backed.
package work

import (
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// Key names one workspace slot of an Arena. Each (Key, size) pair maps to
// one retained buffer; requesting a larger size grows the buffer, a smaller
// size reslices it.
type Key string

// The workspace slots used by the solve pipeline.
const (
	Stage1Dense     Key = "stage1.dense"     // dense working copy of A
	Stage1Tiles     Key = "stage1.tiles"     // V₁ tile storage (the reduced A)
	Stage1Scratch   Key = "stage1.scratch"   // per-worker tile-kernel scratch
	Stage1Slab      Key = "stage1.slab"      // Tge/Tts block-reflector factors
	Stage2Band      Key = "stage2.band"      // extracted symmetric band matrix
	Stage2Work      Key = "stage2.workband"  // extended band (bulge) storage
	Stage2Slab      Key = "stage2.slab"      // Q₂ reflector essentials
	Stage2Scratch   Key = "stage2.scratch"   // per-worker bulge-kernel scratch
	Stage2Refs      Key = "stage2.refs"      // reflector lattice slots
	Stage2Out       Key = "stage2.out"       // chase output (Result + Tridiagonal)
	Stage2OutD      Key = "stage2.out.d"     // tridiagonal output diagonal
	Stage2OutE      Key = "stage2.out.e"     // tridiagonal output off-diagonal
	Stage2Chaser    Key = "stage2.chaser"    // chaser state (refs output list)
	Stage1Factor    Key = "stage1.factor"    // band factorization header + T lists
	TridiagD        Key = "tridiag.d"        // diagonal scratch copy
	TridiagE        Key = "tridiag.e"        // off-diagonal scratch copy
	BacktransSlab   Key = "backtrans.slab"   // diamond V/T aggregate storage
	BacktransPlan   Key = "backtrans.plan"   // diamond lattice index + block list
	BacktransApply  Key = "backtrans.apply"  // sequential Apply column-block scratch
	BacktransWorker Key = "backtrans.worker" // per-worker parallel Apply scratch
	FusedApply      Key = "backtrans.fused"  // fused Q₂+Q₁ column-block scratch
	Q1Apply         Key = "stage1.q1apply"   // sequential ApplyQ1 column-block scratch
	Q1Worker        Key = "stage1.q1worker"  // per-worker parallel ApplyQ1 scratch
	TridiagWork     Key = "tridiag.work"     // tridiag.WorkSet: per-worker solver scratch pools
	VectorStage     Key = "vectors.stage"    // eigenvector staging matrix
	OneStagePanel   Key = "onestage.panel"   // DLATRD W panel
	OneStageWork    Key = "onestage.work"    // ORMTR work + T factor
)

// Arena is a per-solve workspace. It is NOT safe for concurrent use by
// multiple solves; the only concurrency it supports is multiple scheduler
// workers of one solve calling Slab.Take and using their own PerWorker
// slots. A nil *Arena is valid everywhere and simply allocates fresh
// buffers, so one-shot code paths need no conditionals.
//
// With the phase-plan driver a "solve" may span dormant time: a
// core.SolveState pins its arena from NewSolveState until the plan
// completes or is abandoned, including any suspension between phases. An
// arena handed to a SolveState (or held by a pipelined batch item mid-plan)
// must therefore not return to a Pool or serve another solve until that
// state is finished — suspending a state suspends the arena with it.
type Arena struct {
	floats    map[Key][]float64
	perWorker map[Key][][]float64
	slabs     map[Key]*Slab
	values    map[Key]any
	denses    map[Key]*matrix.Dense
	bands     map[Key]*matrix.SymBand

	// Pool bookkeeping: the size class of the solve the arena last served
	// and, while idle under a budgeted pool, its counted footprint.
	class       int
	pooledBytes int64
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{
		floats:    make(map[Key][]float64),
		perWorker: make(map[Key][][]float64),
		slabs:     make(map[Key]*Slab),
		values:    make(map[Key]any),
		denses:    make(map[Key]*matrix.Dense),
		bands:     make(map[Key]*matrix.SymBand),
	}
}

// Floats returns a float64 buffer of length n for the slot. With zero set
// the buffer is cleared; otherwise its contents are unspecified and the
// caller must overwrite every element it reads.
func (a *Arena) Floats(k Key, n int, zero bool) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	buf := a.floats[k]
	if cap(buf) < n {
		buf = make([]float64, n)
		a.floats[k] = buf
		return buf
	}
	buf = buf[:n]
	if zero {
		clear(buf)
	}
	return buf
}

// Dense returns an r×c column-major matrix (Stride == r) backed by the
// slot's buffer. Both the header and the backing array are retained, so a
// steady-state request costs zero allocations.
func (a *Arena) Dense(k Key, r, c int, zero bool) *matrix.Dense {
	data := a.Floats(k, max(1, r)*c, zero)
	if a == nil {
		return matrix.NewDenseFrom(r, c, max(1, r), data)
	}
	d := a.denses[k]
	if d == nil {
		d = &matrix.Dense{}
		a.denses[k] = d
	}
	d.Rows, d.Cols, d.Stride, d.Data = r, c, max(1, r), data
	return d
}

// Band returns an order-n symmetric band matrix with bandwidth kd backed by
// the slot's buffer, cleared (band extraction writes sparsely).
func (a *Arena) Band(k Key, n, kd int) *matrix.SymBand {
	if kd >= n && n > 0 {
		kd = n - 1
	}
	if a == nil {
		return matrix.NewSymBand(n, kd)
	}
	b := a.bands[k]
	if b == nil {
		b = &matrix.SymBand{}
		a.bands[k] = b
	}
	b.N, b.KD, b.LDA, b.Data = n, kd, kd+1, a.Floats(k, (kd+1)*n, true)
	return b
}

// PerWorker returns workers buffers of the given size for the slot, one per
// scheduler worker. Buffer contents are unspecified.
func (a *Arena) PerWorker(k Key, workers, size int) [][]float64 {
	if a == nil {
		bufs := make([][]float64, workers)
		for i := range bufs {
			bufs[i] = make([]float64, size)
		}
		return bufs
	}
	bufs := a.perWorker[k]
	if len(bufs) < workers {
		grown := make([][]float64, workers)
		copy(grown, bufs)
		bufs = grown
		a.perWorker[k] = bufs
	}
	for i := 0; i < workers; i++ {
		if cap(bufs[i]) < size {
			bufs[i] = make([]float64, size)
		} else {
			bufs[i] = bufs[i][:size]
		}
	}
	return bufs[:workers]
}

// slabAlign is the worker-slab stride granularity in float64s (64 bytes =
// one cache line), so adjacent workers never write the same line.
const slabAlign = 8

// WorkerSlabs is the per-worker scratch of one parallel phase: equal-size
// slices carved at cache-line-aligned strides out of a single retained slab,
// indexed by the worker id that sched.Task.Run receives. Obtaining the slabs
// happens on the submitting goroutine; each worker then touches only its own
// slice, so the phase performs no per-task allocation and no false sharing.
type WorkerSlabs struct {
	buf    []float64
	stride int
	size   int
}

// For returns worker w's buffer (length = the size the slabs were built
// with). Contents are unspecified.
func (s WorkerSlabs) For(w int) []float64 {
	off := w * s.stride
	return s.buf[off : off+s.size : off+s.stride]
}

// WorkerSlabs returns per-worker buffers of the given size for the slot,
// backed by one slab (a single allocation even on first use; zero in steady
// state). A nil arena allocates a fresh slab.
func (a *Arena) WorkerSlabs(k Key, workers, size int) WorkerSlabs {
	stride := (size + slabAlign - 1) &^ (slabAlign - 1)
	if stride == 0 {
		stride = slabAlign
	}
	return WorkerSlabs{buf: a.Floats(k, workers*stride, false), stride: stride, size: size}
}

// SlabOf resets and returns the slot's slab with at least the given
// capacity. The slab hands out zeroed sub-slices via Take and may be used
// concurrently by scheduler workers.
func (a *Arena) SlabOf(k Key, capacity int) *Slab {
	if a == nil {
		return &Slab{buf: make([]float64, capacity)}
	}
	s := a.slabs[k]
	if s == nil {
		s = &Slab{}
		a.slabs[k] = s
	}
	if cap(s.buf) < capacity {
		s.buf = make([]float64, capacity)
	} else {
		s.buf = s.buf[:cap(s.buf)]
	}
	s.off.Store(0)
	return s
}

// Tiles returns a retained n×n tile matrix with tile size nb. Contents are
// unspecified; the caller is expected to overwrite every tile (the DTL's
// FromLapack does). A dimension change reallocates.
func (a *Arena) Tiles(k Key, n, nb int) *matrix.TileMatrix {
	if a == nil {
		return matrix.NewTileMatrix(n, nb)
	}
	if tm, ok := a.values[k].(*matrix.TileMatrix); ok && tm.N == n && tm.NB == nb {
		return tm
	}
	tm := matrix.NewTileMatrix(n, nb)
	a.values[k] = tm
	return tm
}

// Value returns the opaque cached value for a slot (nil if absent). Stage
// packages use it to retain typed caches (e.g. the reflector lattice)
// without this package importing them.
func (a *Arena) Value(k Key) any {
	if a == nil {
		return nil
	}
	return a.values[k]
}

// SetValue caches an opaque value under a slot.
func (a *Arena) SetValue(k Key, v any) {
	if a != nil {
		a.values[k] = v
	}
}

// Slab is a bump allocator over one retained buffer. Take is safe for
// concurrent use; everything else follows Arena's single-solve rule.
type Slab struct {
	buf []float64
	off atomic.Int64
}

// Take returns a zeroed slice of length n carved from the slab, falling
// back to the heap when the slab is exhausted (correct, just not pooled).
func (s *Slab) Take(n int) []float64 {
	if n == 0 {
		return nil
	}
	end := s.off.Add(int64(n))
	if end > int64(len(s.buf)) {
		return make([]float64, n)
	}
	out := s.buf[end-int64(n) : end : end]
	clear(out)
	return out
}

// WorkspaceSized is implemented by opaque values cached on an Arena (via
// SetValue) that want their retained storage counted by Arena.Bytes. Values
// that do not implement it are counted as zero — the budget is a bound on
// the dominant buffers, not an exact heap audit.
type WorkspaceSized interface {
	WorkspaceBytes() int64
}

// Bytes reports the arena's retained workspace footprint: the capacity of
// every float slot, per-worker buffer and slab, plus whatever cached opaque
// values report through WorkspaceSized. Dense/band headers alias the float
// slots and are not double-counted.
func (a *Arena) Bytes() int64 {
	if a == nil {
		return 0
	}
	var b int64
	for _, v := range a.floats {
		b += int64(cap(v)) * 8
	}
	for _, bufs := range a.perWorker {
		for _, v := range bufs {
			b += int64(cap(v)) * 8
		}
	}
	for _, s := range a.slabs {
		b += int64(cap(s.buf)) * 8
	}
	for _, v := range a.values {
		if sz, ok := v.(WorkspaceSized); ok {
			b += sz.WorkspaceBytes()
		}
	}
	return b
}

// sizeClass buckets a problem order n for the pool's free lists: arenas are
// recycled to solves of similar size, so a batch mixing n=64 and n=1024
// problems does not hand a 24 MB arena to a 32 KB solve (nor grow every
// pooled arena to the largest size seen). Classes are powers of two.
func sizeClass(n int) int {
	if n <= 0 {
		return 0
	}
	c := 0
	for (1 << c) < n {
		c++
	}
	return c
}

// Pool is a concurrency-safe pool of Arenas, size-keyed: Get takes the order
// of the problem the arena will serve and prefers an arena last used for a
// similar size (exact class first, then the next larger classes, then any).
// An optional budget bounds the total bytes retained by idle arenas: a Put
// that would exceed it drops the arena to the garbage collector instead.
type Pool struct {
	mu       sync.Mutex
	budget   int64 // 0 = unlimited
	retained int64 // bytes held by idle arenas (tracked only when budget > 0)
	buckets  map[int][]*Arena
}

// NewPool returns an empty pool with no budget.
func NewPool() *Pool {
	return &Pool{buckets: make(map[int][]*Arena)}
}

// SetBudget bounds the bytes retained by idle arenas (0 = unlimited). It
// only affects future Puts; arenas already pooled stay.
func (pl *Pool) SetBudget(bytes int64) {
	if pl == nil {
		return
	}
	pl.mu.Lock()
	pl.budget = bytes
	pl.mu.Unlock()
}

// Retained reports the bytes currently held by idle arenas. It is tracked
// only when a budget is set; without one it reports 0.
func (pl *Pool) Retained() int64 {
	if pl == nil {
		return 0
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.retained
}

// Get takes an arena suitable for an order-n solve from the pool, or returns
// a fresh one. The class preference is best-effort: any arena works for any
// size (buffers grow on demand).
func (pl *Pool) Get(n int) *Arena {
	if pl == nil {
		return nil
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	class := sizeClass(n)
	take := func(c int) *Arena {
		bucket := pl.buckets[c]
		if len(bucket) == 0 {
			return nil
		}
		a := bucket[len(bucket)-1]
		bucket[len(bucket)-1] = nil
		pl.buckets[c] = bucket[:len(bucket)-1]
		if pl.budget > 0 {
			pl.retained -= a.pooledBytes
		}
		a.pooledBytes = 0
		a.class = sizeClass(n)
		return a
	}
	// Exact class, then the next larger ones (no growth needed), then any.
	for c := class; c <= class+2; c++ {
		if a := take(c); a != nil {
			return a
		}
	}
	for c := range pl.buckets {
		if a := take(c); a != nil {
			return a
		}
	}
	a := NewArena()
	a.class = class
	return a
}

// Put returns an arena to the pool. The caller must not touch any buffer
// obtained from it afterwards. With a budget set, an arena that would push
// retained bytes past it is dropped instead of pooled.
func (pl *Pool) Put(a *Arena) {
	if pl == nil || a == nil {
		return
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.budget > 0 {
		b := a.Bytes()
		if pl.retained+b > pl.budget {
			return // drop: the GC reclaims it
		}
		a.pooledBytes = b
		pl.retained += b
	}
	pl.buckets[a.class] = append(pl.buckets[a.class], a)
}
