package work

import (
	"testing"
	"unsafe"
)

func TestFloatsReuseAndZeroing(t *testing.T) {
	a := NewArena()
	b1 := a.Floats("k", 10, true)
	for i := range b1 {
		if b1[i] != 0 {
			t.Fatal("fresh buffer not zeroed")
		}
		b1[i] = 1
	}
	b2 := a.Floats("k", 8, false)
	if &b1[0] != &b2[0] {
		t.Fatal("smaller request did not reuse the buffer")
	}
	if b2[0] != 1 {
		t.Fatal("zero=false cleared the buffer")
	}
	b3 := a.Floats("k", 8, true)
	if b3[0] != 0 {
		t.Fatal("zero=true did not clear the buffer")
	}
	b4 := a.Floats("k", 20, false)
	if len(b4) != 20 {
		t.Fatal("grow failed")
	}
}

func TestNilArena(t *testing.T) {
	var a *Arena
	if got := a.Floats("k", 5, true); len(got) != 5 {
		t.Fatal("nil arena Floats")
	}
	if d := a.Dense("k", 3, 4, true); d.Rows != 3 || d.Cols != 4 {
		t.Fatal("nil arena Dense")
	}
	if b := a.Band("k", 6, 2); b.N != 6 || b.KD != 2 || b.LDA != 3 {
		t.Fatal("nil arena Band")
	}
	if s := a.SlabOf("k", 10); len(s.Take(4)) != 4 {
		t.Fatal("nil arena Slab")
	}
	if v := a.Value("k"); v != nil {
		t.Fatal("nil arena Value")
	}
	a.SetValue("k", 1) // must not panic
	if bufs := a.PerWorker("k", 2, 3); len(bufs) != 2 || len(bufs[0]) != 3 {
		t.Fatal("nil arena PerWorker")
	}
}

func TestDenseHeaderReuse(t *testing.T) {
	a := NewArena()
	d1 := a.Dense("k", 4, 4, true)
	d1.Data[0] = 7
	d2 := a.Dense("k", 4, 4, false)
	if d1 != d2 {
		t.Fatal("Dense header not retained")
	}
	if d2.Data[0] != 7 {
		t.Fatal("Dense backing not retained")
	}
	d3 := a.Dense("k", 2, 3, true)
	if d3 != d1 || d3.Rows != 2 || d3.Cols != 3 || d3.Stride != 2 {
		t.Fatal("Dense reshape broken")
	}
}

func TestBandHeaderReuse(t *testing.T) {
	a := NewArena()
	b1 := a.Band("k", 8, 3)
	if b1.LDA != 4 || len(b1.Data) != 4*8 {
		t.Fatalf("band layout: LDA=%d len=%d", b1.LDA, len(b1.Data))
	}
	b1.Data[0] = 5
	b2 := a.Band("k", 8, 3)
	if b1 != b2 {
		t.Fatal("Band header not retained")
	}
	if b2.Data[0] != 0 {
		t.Fatal("Band not cleared on reuse")
	}
	if b3 := a.Band("k", 4, 9); b3.KD != 3 {
		t.Fatal("bandwidth not clamped to n-1")
	}
}

func TestSlab(t *testing.T) {
	a := NewArena()
	s := a.SlabOf("k", 8)
	x := s.Take(5)
	x[0] = 3
	y := s.Take(3)
	if &y[0] != &s.buf[5] {
		t.Fatal("slab did not bump sequentially")
	}
	// Exhausted: heap fallback, still usable.
	z := s.Take(4)
	if len(z) != 4 {
		t.Fatal("heap fallback failed")
	}
	if s.Take(0) != nil {
		t.Fatal("Take(0) must return nil")
	}
	// Reset via SlabOf: same backing, zeroed handouts.
	s2 := a.SlabOf("k", 8)
	if s2 != s {
		t.Fatal("slab not retained")
	}
	w := s2.Take(5)
	if &w[0] != &x[0] {
		t.Fatal("reset slab did not restart at the base")
	}
	if w[0] != 0 {
		t.Fatal("Take did not zero")
	}
}

func TestPerWorker(t *testing.T) {
	a := NewArena()
	bufs := a.PerWorker("k", 3, 4)
	if len(bufs) != 3 {
		t.Fatal("worker count")
	}
	bufs[2][0] = 9
	grown := a.PerWorker("k", 5, 2)
	if len(grown) != 5 || len(grown[0]) != 2 {
		t.Fatal("grow")
	}
	if &grown[2][0] != &bufs[2][0] {
		t.Fatal("existing worker buffers not retained across growth")
	}
}

func TestWorkerSlabs(t *testing.T) {
	a := NewArena()
	s := a.WorkerSlabs("ws", 3, 10)
	for w := 0; w < 3; w++ {
		buf := s.For(w)
		if len(buf) != 10 {
			t.Fatalf("worker %d: len %d", w, len(buf))
		}
		for i := range buf {
			buf[i] = float64(w)
		}
	}
	// Disjointness: each worker's writes survived the others'.
	for w := 0; w < 3; w++ {
		for i, v := range s.For(w) {
			if v != float64(w) {
				t.Fatalf("worker %d elem %d overwritten: %g", w, i, v)
			}
		}
	}
	// Cache-line alignment: strides are multiples of 8 float64s (64 bytes),
	// so adjacent workers never share a line.
	if off := &s.For(1)[0]; (uintptr(unsafe.Pointer(off))-uintptr(unsafe.Pointer(&s.For(0)[0])))%(8*8) != 0 {
		t.Fatal("worker stride not cache-line aligned")
	}
	// Steady state: a same-shape request reuses the retained slab.
	s2 := a.WorkerSlabs("ws", 3, 10)
	if &s2.For(0)[0] != &s.For(0)[0] {
		t.Fatal("slab not retained across requests")
	}
	// Appending to one worker's slice must not bleed into the next worker
	// (full-slice-expression cap).
	b0 := s.For(0)
	b0 = append(b0, 99)
	if s.For(1)[0] == 99 {
		t.Fatal("append crossed into the next worker's slab")
	}
	// Zero-size request still hands out distinct (empty) slots.
	z := a.WorkerSlabs("z", 2, 0)
	if len(z.For(0)) != 0 || len(z.For(1)) != 0 {
		t.Fatal("zero-size slabs not empty")
	}
	// Nil arena allocates fresh but keeps the same layout guarantees.
	var nilA *Arena
	ns := nilA.WorkerSlabs("x", 2, 5)
	ns.For(0)[4] = 1
	if ns.For(1)[4] == 1 {
		t.Fatal("nil-arena slabs alias")
	}
}

func TestPool(t *testing.T) {
	p := NewPool()
	a := p.Get(64)
	if a == nil {
		t.Fatal("pool returned nil arena")
	}
	a.Floats("k", 100, false)
	p.Put(a)
	if p.Get(64) != a {
		t.Fatal("same-size Get did not recycle the arena")
	}
	p.Put(a)
	// A nil pool degrades to nil arenas.
	var np *Pool
	if np.Get(64) != nil {
		t.Fatal("nil pool Get")
	}
	np.Put(nil)
}

func TestPoolSizeClasses(t *testing.T) {
	p := NewPool()
	small := p.Get(64)
	big := p.Get(1024)
	small.Floats("k", 64*64, false)
	big.Floats("k", 1024*1024, false)
	p.Put(small)
	p.Put(big)
	// A small request prefers the small arena even though the big one was
	// pooled more recently.
	if got := p.Get(64); got != small {
		t.Fatal("size-keyed Get did not prefer the matching class")
	}
	if got := p.Get(1024); got != big {
		t.Fatal("big arena lost")
	}
	// With its class empty, any arena is better than none.
	p.Put(big)
	if got := p.Get(64); got != big {
		t.Fatal("cross-class fallback failed")
	}
}

func TestPoolBudget(t *testing.T) {
	p := NewPool()
	p.SetBudget(1000 * 8)
	a := p.Get(8)
	a.Floats("k", 600, false)
	b := p.Get(8)
	b.Floats("k", 600, false)
	p.Put(a)
	if got := p.Retained(); got != 600*8 {
		t.Fatalf("retained = %d, want %d", got, 600*8)
	}
	// b would push retained past the budget: dropped, not pooled.
	p.Put(b)
	if got := p.Retained(); got != 600*8 {
		t.Fatalf("over-budget Put was retained: %d bytes", got)
	}
	if got := p.Get(8); got != a {
		t.Fatal("surviving arena not recycled")
	}
	if p.Retained() != 0 {
		t.Fatal("retained not released on Get")
	}
}

func TestArenaBytes(t *testing.T) {
	a := NewArena()
	if a.Bytes() != 0 {
		t.Fatal("empty arena has nonzero footprint")
	}
	a.Floats("f", 100, false)
	a.PerWorker("w", 2, 50)
	a.SlabOf("s", 30)
	want := int64(100+2*50+30) * 8
	if got := a.Bytes(); got != want {
		t.Fatalf("Bytes = %d, want %d", got, want)
	}
	// Opaque values are counted only through WorkspaceSized.
	a.SetValue("v", 42)
	if got := a.Bytes(); got != want {
		t.Fatalf("non-sized value changed footprint: %d", got)
	}
	a.SetValue("sized", sizedVal(64))
	if got := a.Bytes(); got != want+64 {
		t.Fatalf("WorkspaceSized not counted: %d, want %d", got, want+64)
	}
	if (*Arena)(nil).Bytes() != 0 {
		t.Fatal("nil arena Bytes")
	}
}

type sizedVal int64

func (s sizedVal) WorkspaceBytes() int64 { return int64(s) }

func TestTilesAndValue(t *testing.T) {
	a := NewArena()
	tm := a.Tiles("k", 16, 4)
	if a.Tiles("k", 16, 4) != tm {
		t.Fatal("tile matrix not retained")
	}
	if a.Tiles("k", 16, 8) == tm {
		t.Fatal("dimension change must reallocate")
	}
	a.SetValue("v", 42)
	if a.Value("v").(int) != 42 {
		t.Fatal("Value roundtrip")
	}
}
