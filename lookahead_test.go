package eigen

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// bitwiseEqual compares two float slices for exact bit equality (so that
// -0.0 vs 0.0 or differently-rounded results fail, not just large drifts).
func bitwiseEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestLookaheadSolverBitwise is the solver-level half of the stage-1
// look-ahead gate (the DAG-level half lives in internal/band): for both solve
// shapes — full Eig (vectors) and values-only EigValues — every worker count,
// every look-ahead depth, and the DisableLookahead kill-switch must produce
// results bitwise identical to the sequential solve. The look-ahead
// priorities only reorder the scheduler's ready queue; they never change
// which floating-point operations run or in what per-tile order.
func TestLookaheadSolverBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 48
	a := randSymMatrix(rng, n)

	ref, err := Eig(a, &Options{NB: 8})
	if err != nil {
		t.Fatal(err)
	}
	refVals, err := EigValues(a, &Options{NB: 8})
	if err != nil {
		t.Fatal(err)
	}

	check := func(label string, opts *Options) {
		t.Helper()
		res, err := Eig(a, opts)
		if err != nil {
			t.Fatalf("%s: Eig: %v", label, err)
		}
		if !bitwiseEqual(ref.Values, res.Values) {
			t.Fatalf("%s: eigenvalues differ from sequential reference", label)
		}
		if !bitwiseEqual(ref.Vectors.data, res.Vectors.data) {
			t.Fatalf("%s: eigenvectors differ from sequential reference", label)
		}
		vals, err := EigValues(a, opts)
		if err != nil {
			t.Fatalf("%s: EigValues: %v", label, err)
		}
		if !bitwiseEqual(refVals, vals) {
			t.Fatalf("%s: values-only solve differs from sequential reference", label)
		}
	}

	for _, w := range []int{1, 2, 4, 7} {
		for _, d := range []int{1, 2, 4} {
			check(fmt.Sprintf("workers=%d depth=%d", w, d),
				&Options{NB: 8, Workers: w, LookaheadDepth: d})
		}
		check(fmt.Sprintf("workers=%d sequenced", w),
			&Options{NB: 8, Workers: w, DisableLookahead: true})
	}
}

// TestLookaheadDepthNormalize pins the Options-level contract of the depth
// knob: negative depths normalize to 0 ("use the default"), and an absurdly
// large depth is clamped inside stage 1 rather than rejected — the solve
// still succeeds and still matches the sequential reference bitwise.
func TestLookaheadDepthNormalize(t *testing.T) {
	o := &Options{LookaheadDepth: -5}
	o.normalize()
	if o.LookaheadDepth != 0 {
		t.Fatalf("negative LookaheadDepth normalized to %d, want 0", o.LookaheadDepth)
	}

	rng := rand.New(rand.NewSource(8))
	a := randSymMatrix(rng, 32)
	ref, err := Eig(a, &Options{NB: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{-9, 1 << 30} {
		res, err := Eig(a, &Options{NB: 8, Workers: 3, LookaheadDepth: d})
		if err != nil {
			t.Fatalf("depth=%d: %v", d, err)
		}
		if !bitwiseEqual(ref.Values, res.Values) || !bitwiseEqual(ref.Vectors.data, res.Vectors.data) {
			t.Fatalf("depth=%d: result differs from sequential reference", d)
		}
	}
}
