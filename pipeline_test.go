package eigen

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/tridiag"
)

// soloReference solves every item alone on a sequential Solver with the same
// numerical options, giving the bitwise ground truth the pipelined batch must
// reproduce at any worker count.
func soloReference(t *testing.T, opts Options, items []BatchItem) []BatchResult {
	t.Helper()
	opts.Workers = 0
	ref := NewSolver(&opts)
	defer ref.Close()
	out := make([]BatchResult, len(items))
	for i, it := range items {
		var res *Result
		var err error
		if it.ValuesOnly {
			var vals []float64
			if it.IL != 0 || it.IU != 0 {
				vals, err = ref.EigValuesRange(it.A, it.IL, it.IU)
			} else {
				vals, err = ref.EigValues(it.A)
			}
			res = &Result{Values: vals}
		} else if it.IL != 0 || it.IU != 0 {
			res, err = ref.EigRange(it.A, it.IL, it.IU)
		} else {
			res, err = ref.Eig(it.A)
		}
		if err != nil {
			t.Fatalf("solo reference item %d: %v", i, err)
		}
		out[i] = BatchResult{Values: res.Values, Vectors: res.Vectors}
	}
	return out
}

// pipelineItems is the mixed batch the pipelined-equivalence tests sweep:
// assorted sizes, a values-only item, and a range item.
func pipelineItems(rng *rand.Rand) []BatchItem {
	return []BatchItem{
		{A: randSymMatrix(rng, 48)},
		{A: randSymMatrix(rng, 32)},
		{A: randSymMatrix(rng, 64)},
		{A: randSymMatrix(rng, 24), ValuesOnly: true},
		{A: randSymMatrix(rng, 40), IL: 2, IU: 9},
		{A: randSymMatrix(rng, 56)},
	}
}

// TestSolveBatchPipelinedMatchesSolo is the pipeline's bitwise-identity gate:
// at every worker count the pipelined batch (phases of different items
// interleaved on one scheduler, memory-bound phases core-restricted,
// late-phase tasks drain-biased) must reproduce the sequential solo solves
// exactly. Run under -race by scripts/check.sh.
func TestSolveBatchPipelinedMatchesSolo(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	items := pipelineItems(rng)
	want := soloReference(t, Options{}, items)

	for _, workers := range []int{1, 2, 4, 7} {
		s := NewSolver(&Options{Workers: workers})
		results := s.SolveBatch(context.Background(), items)
		for i, r := range results {
			requireBitwise(t, t.Name(), r, want[i].Values, want[i].Vectors)
		}
		s.Close()
	}
}

// TestSolveBatchPipelinedFanout forces the per-tile fan-out shape (every
// phase expands into its task DAG under a per-item labeled, drain-biased job)
// and checks bitwise identity there too.
func TestSolveBatchPipelinedFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	items := pipelineItems(rng)
	want := soloReference(t, Options{}, items)

	for _, workers := range []int{2, 4, 7} {
		s := NewSolver(&Options{Workers: workers, BatchFanout: 1})
		results := s.SolveBatch(context.Background(), items)
		for i, r := range results {
			requireBitwise(t, t.Name(), r, want[i].Values, want[i].Vectors)
		}
		s.Close()
	}
}

// TestSolveBatchPipelineDepthAndDisable sweeps the two new knobs: every
// PipelineDepth (including the clamped extremes) and the DisablePipeline
// kill-switch must leave results bitwise identical — the pipeline only moves
// work between workers, never changes what is computed.
func TestSolveBatchPipelineDepthAndDisable(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	items := pipelineItems(rng)
	want := soloReference(t, Options{}, items)

	for _, opts := range []Options{
		{Workers: 4, PipelineDepth: 1},
		{Workers: 4, PipelineDepth: 2},
		{Workers: 4, PipelineDepth: -3},      // clamps to 0 → scheduler width
		{Workers: 4, PipelineDepth: 1 << 20}, // clamps to MaxWorkers, then width
		{Workers: 4, DisablePipeline: true},
		{Workers: 4, DisablePipeline: true, BatchFanout: 1},
		{Workers: 4, PipelineDepth: 2, BatchConcurrency: 3},
		{Workers: 4, PipelineDepth: 2, MemoryBudget: 1 << 20},
	} {
		opts := opts
		s := NewSolver(&opts)
		results := s.SolveBatch(context.Background(), items)
		for i, r := range results {
			requireBitwise(t, t.Name(), r, want[i].Values, want[i].Vectors)
		}
		s.Close()
	}
}

// TestSolveBatchPipelineStage2Options checks the pipeline composes with the
// stage-2 tuning knobs (explicit core restriction, static scheduling, the
// parallel-tridiagonal kill-switch) without perturbing results.
func TestSolveBatchPipelineStage2Options(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	items := pipelineItems(rng)

	for _, opts := range []Options{
		{Workers: 4, Stage2Workers: 2},
		{Workers: 4, Stage2Static: true, Stage2Workers: 2},
		{Workers: 4, DisableParallelTridiag: true},
		{Workers: 4, Method: BisectionInverseIteration},
	} {
		opts := opts
		want := soloReference(t, opts, items)
		s := NewSolver(&opts)
		results := s.SolveBatch(context.Background(), items)
		for i, r := range results {
			requireBitwise(t, t.Name(), r, want[i].Values, want[i].Vectors)
		}
		s.Close()
	}
}

// TestPipelineDepthNormalize pins the clamp: negatives collapse to 0 (auto =
// scheduler width) and absurd depths cap at the scheduler's hard worker
// limit, mirroring the Workers/Stage2Workers clamps.
func TestPipelineDepthNormalize(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 0},
		{-5, 0},
		{3, 3},
		{sched.MaxWorkers, sched.MaxWorkers},
		{sched.MaxWorkers + 9, sched.MaxWorkers},
		{1 << 30, sched.MaxWorkers},
	} {
		o := Options{PipelineDepth: tc.in}
		o.normalize()
		if o.PipelineDepth != tc.want {
			t.Fatalf("PipelineDepth %d normalized to %d, want %d", tc.in, o.PipelineDepth, tc.want)
		}
	}
}

// TestSolveBatchPipelineCancel cancels a batch mid-flight: items must come
// back either complete (bitwise correct) or with the context's error — never
// wedged, never corrupt — and the Solver must stay usable.
func TestSolveBatchPipelineCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	s := NewSolver(&Options{Workers: 4, PipelineDepth: 2})
	defer s.Close()

	items := make([]BatchItem, 12)
	for i := range items {
		items[i].A = randSymMatrix(rng, 72)
	}
	want := soloReference(t, Options{}, items)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond) // land mid-pipeline, not before admission
		cancel()
	}()
	results := s.SolveBatch(ctx, items)
	for i, r := range results {
		if r.Err != nil {
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("item %d: err=%v, want context.Canceled", i, r.Err)
			}
			continue
		}
		requireBitwise(t, t.Name(), r, want[i].Values, want[i].Vectors)
	}

	// The canceled pipeline released its slots and workspaces: a fresh batch
	// on the same Solver runs clean.
	for i, r := range s.SolveBatch(context.Background(), items[:3]) {
		requireBitwise(t, t.Name(), r, want[i].Values, want[i].Vectors)
	}
}

// TestSolveBatchPipelineNonConverging routes a non-converging item through
// the pipelined executor: its typed error must stay item-local while the
// surrounding items complete bitwise intact.
func TestSolveBatchPipelineNonConverging(t *testing.T) {
	oldQL := tridiag.MaxIterQL
	tridiag.MaxIterQL = 0
	defer func() { tridiag.MaxIterQL = oldQL }()

	rng := rand.New(rand.NewSource(26))
	opts := Options{Workers: 4, Method: QRIteration}

	// Diagonal items converge under a zero iteration budget; the dense one
	// cannot.
	d1 := make([]float64, 32)
	d2 := make([]float64, 48)
	for i := range d1 {
		d1[i] = rng.NormFloat64()
	}
	for i := range d2 {
		d2[i] = rng.NormFloat64()
	}
	items := []BatchItem{
		{A: diagMatrix(d1)},
		{A: randSymMatrix(rng, 40)}, // fails convergence
		{A: diagMatrix(d2)},
	}
	want := soloReference(t, opts, []BatchItem{items[0], items[2]})

	s := NewSolver(&opts)
	defer s.Close()
	results := s.SolveBatch(context.Background(), items)
	requireBitwise(t, "pre-failure item", results[0], want[0].Values, want[0].Vectors)
	if results[1].Err != ErrNoConvergence {
		t.Fatalf("non-converging item: err=%v, want ErrNoConvergence", results[1].Err)
	}
	requireBitwise(t, "post-failure item", results[2], want[1].Values, want[1].Vectors)
}

// TestSolveBatchReentrant calls SolveBatch from inside one of the Solver's
// own scheduler tasks: every item must be refused with ErrReentrantBatch (the
// call could only deadlock waiting for the worker it occupies). The same call
// aimed at a different Solver is legal and must succeed.
func TestSolveBatchReentrant(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	a := randSymMatrix(rng, 16)

	s := NewSolver(&Options{Workers: 2})
	defer s.Close()
	other := NewSolver(&Options{Workers: 2})
	defer other.Close()

	var reentrant []BatchResult
	var crossRes []BatchResult
	job := s.sched.NewJobNamed(context.Background(), "reentrant-test")
	job.Submit(sched.Task{
		Name: "REENTER",
		Run: func(int) {
			reentrant = s.SolveBatch(context.Background(), []BatchItem{{A: a}, {A: a}})
			crossRes = other.SolveBatch(context.Background(), []BatchItem{{A: a}})
		},
	})
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}

	if len(reentrant) != 2 {
		t.Fatalf("got %d results", len(reentrant))
	}
	for i, r := range reentrant {
		if !errors.Is(r.Err, ErrReentrantBatch) {
			t.Fatalf("re-entrant item %d: err=%v, want ErrReentrantBatch", i, r.Err)
		}
	}
	if len(crossRes) != 1 || crossRes[0].Err != nil {
		t.Fatalf("cross-solver call from a task must succeed, got %+v", crossRes)
	}

	// Outside any task the same Solver accepts batches as usual.
	for _, r := range s.SolveBatch(context.Background(), []BatchItem{{A: a}}) {
		if r.Err != nil {
			t.Fatalf("non-reentrant batch after refusal: %v", r.Err)
		}
	}
}

// TestPipelineTraceAttribution checks the per-item collectors that come back
// from a pipelined batch: every solve's phases must be attributed (stage1,
// stage2, eig_t, back-transformation) plus the admission-wait phase, and the
// Solver-level collector must hold the merged aggregate.
func TestPipelineTraceAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	agg := trace.New()
	s := NewSolver(&Options{Workers: 4, Collector: agg})
	defer s.Close()

	items := []BatchItem{
		{A: randSymMatrix(rng, 48)},
		{A: randSymMatrix(rng, 64)},
		{A: randSymMatrix(rng, 32)},
	}
	results := s.SolveBatch(context.Background(), items)
	var itemStage1 time.Duration
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Trace == nil {
			t.Fatalf("item %d: no per-item trace", i)
		}
		ph := r.Trace.Phases()
		for _, name := range []string{"stage1", "stage2", "eig_t"} {
			if ph[name] <= 0 {
				t.Fatalf("item %d: phase %q not attributed (got %v)", i, name, ph)
			}
		}
		if _, ok := ph["batch_wait"]; !ok {
			t.Fatalf("item %d: admission wait not recorded", i)
		}
		itemStage1 += ph["stage1"]
	}
	if got := agg.PhaseTime("stage1"); got < itemStage1 {
		t.Fatalf("aggregate stage1 %v < sum of per-item %v", got, itemStage1)
	}
}

// TestPipelineConcurrentBatches throws several pipelined batches at one
// Solver from concurrent goroutines (run under -race): the shared scheduler,
// gate, and pool must keep every item isolated and correct.
func TestPipelineConcurrentBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a1 := randSymMatrix(rng, 40)
	a2 := randSymMatrix(rng, 56)
	want := soloReference(t, Options{}, []BatchItem{{A: a1}, {A: a2}})

	s := NewSolver(&Options{Workers: 4, PipelineDepth: 2})
	defer s.Close()

	var failures atomic.Int64
	done := make(chan struct{})
	for g := 0; g < 3; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			results := s.SolveBatch(context.Background(), []BatchItem{{A: a1}, {A: a2}})
			for i, r := range results {
				if r.Err != nil || !sameFloats(r.Values, want[i].Values) ||
					r.Vectors == nil || !sameFloats(r.Vectors.data, want[i].Vectors.data) {
					failures.Add(1)
				}
			}
		}()
	}
	for g := 0; g < 3; g++ {
		<-done
	}
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d item results diverged across concurrent batches", n)
	}
}
