//go:build !race

package eigen

const raceEnabled = false
