//go:build race

package eigen

// raceEnabled reports whether the race detector is active; its allocation
// instrumentation invalidates alloc-count assertions.
const raceEnabled = true
