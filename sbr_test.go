package eigen

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// TestMultiSweepSolve exercises the multi-sweep stage 1 through the public
// API: a solve under an SBR plan must agree with the direct single-sweep
// solve to residual scale (the plans are different factorizations, so the
// gate is eigenvalue agreement, not bitwise identity) and return orthonormal
// vectors that diagonalize A.
func TestMultiSweepSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	n := 72
	a := randSymMatrix(rng, n)
	direct, err := Eig(a, &Options{DisableTuning: true, DisableMultiSweep: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range []struct {
		label    string
		wideBand int
		sweeps   []int
	}{
		{"16->4", 16, []int{4}},
		{"24->8->4", 24, []int{8, 4}},
	} {
		res, err := Eig(a, &Options{DisableTuning: true, WideBand: plan.wideBand, BandSweeps: plan.sweeps, Workers: 3})
		if err != nil {
			t.Fatalf("%s: %v", plan.label, err)
		}
		for i := range res.Values {
			if d := math.Abs(res.Values[i] - direct.Values[i]); d > 1e-11*float64(n) {
				t.Fatalf("%s: eigenvalue %d drifted %g from the direct solve", plan.label, i, d)
			}
		}
		// Spot-check the vectors: A·z ≈ λ·z for the extremal pairs.
		for _, k := range []int{0, n - 1} {
			var worst float64
			for i := 0; i < n; i++ {
				av := 0.0
				for j := 0; j < n; j++ {
					av += a.At(i, j) * res.Vectors.At(j, k)
				}
				if d := math.Abs(av - res.Values[k]*res.Vectors.At(i, k)); d > worst {
					worst = d
				}
			}
			if worst > 1e-10*float64(n) {
				t.Fatalf("%s: eigenpair %d residual %g", plan.label, k, worst)
			}
		}
	}
}

// TestMultiSweepBatchPipeline runs the pipelined batch executor with a
// multi-sweep plan: the per-sweep phases (distinct names, so the drain bias
// keys correctly) must interleave across items and still reproduce the
// sequential solo solves bitwise at every worker count.
func TestMultiSweepBatchPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	items := []BatchItem{
		{A: randSymMatrix(rng, 48)},
		{A: randSymMatrix(rng, 64)},
		{A: randSymMatrix(rng, 32), ValuesOnly: true},
		{A: randSymMatrix(rng, 56)},
	}
	opts := Options{DisableTuning: true, WideBand: 16, BandSweeps: []int{4}}
	want := soloReference(t, opts, items)
	for _, workers := range []int{2, 5} {
		o := opts
		o.Workers = workers
		s := NewSolver(&o)
		results := s.SolveBatch(context.Background(), items)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d item %d: %v", workers, i, r.Err)
			}
			requireBitwise(t, t.Name(), r, want[i].Values, want[i].Vectors)
		}
		s.Close()
	}
}

// TestMultiSweepOptionClamps pins normalize: negative WideBand and negative
// sweep entries are clamped to zero (= inert) rather than reaching the core
// driver, and the clamped options still solve.
func TestMultiSweepOptionClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := randSymMatrix(rng, 20)
	res, err := Eig(a, &Options{DisableTuning: true, WideBand: -4, BandSweeps: []int{-1, 8, -3}})
	if err != nil {
		t.Fatalf("clamped options failed to solve: %v", err)
	}
	if len(res.Values) != 20 {
		t.Fatalf("got %d values", len(res.Values))
	}
}
