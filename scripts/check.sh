#!/bin/sh
# Pre-merge gate: everything must build, vet clean, and pass the test suite
# under the race detector (the Solver is documented as safe for concurrent
# use, so -race is part of the baseline, not an extra).
set -eux

go build ./...
go vet ./...
go test -race ./...

# The fused back-transformation's concurrency surface, exercised explicitly:
# worker-slab sharing, mid-phase cancellation, and the bitwise identity of the
# fused and two-phase paths. Redundant with the full -race sweep above, but
# kept as a named gate so a future test-pruning pass cannot silently drop it.
go test -race -run 'TestApplyFused|TestFusedBacktrans|TestSolverCancelDuringBacktrans' ./internal/backtransform ./internal/core .

# The concurrent-batch surface, exercised explicitly under -race: a mixed-size
# batch sharing one scheduler, with one injected non-convergent problem and one
# NaN problem (typed, item-local errors; no cross-item poisoning), plus the
# validation and degenerate-shape bugfix tests.
go test -race -run 'TestSolveBatch|TestBatchIsolationMixed|TestNotFiniteError|TestNoConvergencePropagation|TestOptionsClamp|TestDegenerateShapes' .

# The pipelined batch executor, exercised explicitly under -race: bitwise
# identity of the phase-interleaved pipeline against solo solves across worker
# counts and both execution shapes (phase-as-one-task and per-tile fan-out),
# the PipelineDepth/DisablePipeline knobs, mid-pipeline cancellation, an
# injected non-convergent item, the re-entrant-call refusal, and the
# suspend/resume round-trip of the underlying phase plan.
go test -race -run 'TestSolveBatchPipeline|TestSolveBatchReentrant|TestPipeline|TestSolveState|TestBuildPlan' ./internal/core .

# The parallel tridiagonal stage, exercised explicitly under -race: bitwise
# identity of the D&C task DAG / chunked bisection / cluster-parallel inverse
# iteration against their sequential forms, injected forced non-convergence
# (MaxIterQL=0 leaves, infinite-pivot Stein clusters) through the error latch,
# mid-solve cancellation, and the driver-level worker sweeps.
go test -race -run 'TestStedcSched|TestStebzSched|TestSteinSched|TestSchedAffinity|TestParallelTridiag' ./internal/tridiag ./internal/core

# The stage-1 look-ahead reduction, exercised explicitly under -race: bitwise
# identity of the look-ahead and sequenced schedules against the sequential
# reference across worker counts and depths, depth clamping, mid-stage-1
# cancellation, and the solver-level knob/kill-switch sweeps.
go test -race -run 'TestReduceLookahead|TestLookahead|TestStage1' ./internal/band ./internal/core .

# The GEMM kernel rework, under BOTH build-tag configurations: the portable
# kernels (default build) and the assembly kernel (-tags blasasm, inert on
# non-AVX2 hosts where it falls back to the portable 8x4). The suite pins the
# packed kernels against naiveGemm on fringe shapes and checks every kernel —
# including the assembly one when active — bitwise against the frozen seed
# kernel.
go test ./internal/blas
go test -tags blasasm ./internal/blas

# The multi-sweep SBR stage 1, exercised explicitly under -race: bitwise
# determinism of every sweep plan across worker counts {1,2,4,7}, the
# DisableMultiSweep kill-switch restoring the exact single-sweep
# factorization bitwise, per-sweep phase suspend/resume, the correctness
# budgets through both back-transformation paths, the sbr package's
# scheduled-vs-sequential identity, and the pipelined batch with per-sweep
# phases interleaved.
go test -race -run 'TestSBR|TestMultiSweep|TestChaseBanded' ./internal/sbr ./internal/core ./internal/bulge .

# The tune-profile round trip (save -> load at Solver construction ->
# bitwise-identical solve), the Options override/kill-switch ladder, the
# schema/hardware validation that rejects stale or foreign profiles, and the
# v1/v2 -> v3 schema migration: old profiles load with the newer fields
# defaulting sanely, and version-inconsistent files (an old version claiming
# a newer schema's field, e.g. v1 with lookahead set) are rejected instead of
# silently migrated.
go test -run 'TestTuneProfileRoundTripSolve|TestTuning' .
go test ./internal/tune
go test -run 'TestProfileMigration' ./internal/tune

# The eigensolver service, exercised explicitly under -race: the HTTP handler
# ladder (auth, validation 4xx, typed error->status mapping incl. the
# NaN->400/not_finite contract), both job stores (TTL eviction, disk-journal
# restart/torn-tail recovery), and the client integration suite against a real
# loopback server — submit/poll/result bitwise-equal to a direct Solver.Eig,
# mid-solve cancel freeing its admission slot, over-budget 413 refusal, and
# concurrent clients sharing one solver gate. Plus the admission-gate clamp
# and the no-Dst range-validation regressions at the batch layer.
go build ./cmd/eigserve
go test -race ./internal/service ./client
go test -race -run 'TestBatchRangeValidatedWithoutDst|TestBatchGateOverBudgetClamp|TestSolveBatchOversizedItemsRunAlone|TestSolverGateSharedAcrossBatchCalls' .

# Container robustness: Solver construction (tune-profile auto-load) must
# degrade silently when $HOME / $XDG_CACHE_HOME are unset, as in minimal
# containers.
go test -run 'TestNewSolverWithoutHomeDir' .
go test -run 'TestDefaultPathWithoutHomeDir' ./internal/tune
