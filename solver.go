package eigen

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/work"
)

// ErrClosed is returned by a Solver whose Close has been called.
var ErrClosed = errors.New("eigen: solver is closed")

// solverHdrKey is the arena slot holding the retained matrix.Dense headers
// that wrap caller-owned input/destination storage for one solve.
const solverHdrKey work.Key = "solver.hdrs"

type denseHdrs struct {
	a, dst matrix.Dense
}

// Solver is a reusable eigensolver: it owns a persistent scheduler (when
// Workers > 1) and a pool of workspace arenas, so repeated solves skip both
// the worker spin-up and almost all workspace allocation. A Solver is safe
// for concurrent use — simultaneous solves draw distinct arenas from the
// pool and independent task streams (jobs) from the shared scheduler.
//
//	s := eigen.NewSolver(&eigen.Options{Workers: 4})
//	defer s.Close()
//	for _, a := range problems {
//		res, err := s.Eig(a)
//		...
//	}
//
// Close releases the workers; it must be called when the Solver is no
// longer needed (a Solver with Workers ≤ 1 has no goroutines, but calling
// Close is still correct and idempotent). The *Ctx variants accept a
// context; cancellation abandons the solve mid-pipeline and returns the
// context's error while the Solver stays usable.
//
// For many independent problems, SolveBatch runs them concurrently over the
// same scheduler and workspace pool; see batch.go.
type Solver struct {
	opts Options
	pool *work.Pool

	// gate is the Solver's admission controller: BatchConcurrency slots plus
	// MemoryBudget byte reservations. It is persistent — every SolveBatch
	// call on this Solver (including single-item calls made on behalf of
	// network jobs by internal/service) draws from the same slots and budget,
	// so concurrent callers cannot multiply the Solver's footprint.
	gate *batchGate

	mu     sync.Mutex
	sched  *sched.Scheduler
	closed bool
}

// NewSolver creates a Solver with the given options (nil → defaults: the
// two-stage algorithm, divide & conquer, sequential execution). Out-of-range
// option values are clamped per the Options field docs rather than causing a
// panic deep in the scheduler.
func NewSolver(opts *Options) *Solver {
	s := &Solver{pool: work.NewPool()}
	if opts != nil {
		s.opts = *opts
	}
	applyTuning(&s.opts)
	s.opts.normalize()
	if s.opts.MemoryBudget > 0 {
		s.pool.SetBudget(s.opts.MemoryBudget)
	}
	if s.opts.Workers > 1 {
		s.sched = sched.New(s.opts.Workers)
	}
	slots := 1
	if s.opts.Workers > 1 {
		slots = s.opts.Workers
	}
	if s.opts.BatchConcurrency > 0 {
		slots = s.opts.BatchConcurrency
	}
	s.gate = newBatchGate(slots, s.opts.MemoryBudget)
	return s
}

// EstimateWorkspaceBytes reports the workspace footprint the Solver would
// reserve for one order-n solve (with or without eigenvectors) under its
// configured tile size — the exact cost the admission gate charges against
// Options.MemoryBudget. Serving layers use it to price requests up front:
// a request whose estimate exceeds the budget would be clamped and run
// alone (see batchGate), so a service that wants to refuse such requests
// outright compares this estimate against MemoryBudget before admitting.
func (s *Solver) EstimateWorkspaceBytes(n int, vectors bool) int64 {
	return core.EstimateWorkspaceBytes(n, s.opts.NB, vectors)
}

// MemoryBudget reports the byte budget the Solver admits concurrent solves
// against (0 = unlimited), after option normalization. Together with
// EstimateWorkspaceBytes it lets a caller decide whether a problem fits
// without duplicating the admission arithmetic.
func (s *Solver) MemoryBudget() int64 { return s.opts.MemoryBudget }

// Close shuts the Solver's worker pool down and marks it unusable. It is
// idempotent and safe to call concurrently with (failing) solves.
func (s *Solver) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.sched != nil {
		s.sched.Shutdown()
		s.sched = nil
	}
	return nil
}

// Eig computes all eigenvalues and eigenvectors of a.
func (s *Solver) Eig(a *Matrix) (*Result, error) {
	return s.EigCtx(context.Background(), a)
}

// EigCtx is Eig with cancellation.
func (s *Solver) EigCtx(ctx context.Context, a *Matrix) (*Result, error) {
	return s.solve(ctx, a, true, 0, 0, nil)
}

// EigValues computes all eigenvalues of a (no vectors).
func (s *Solver) EigValues(a *Matrix) ([]float64, error) {
	return s.EigValuesCtx(context.Background(), a)
}

// EigValuesCtx is EigValues with cancellation.
func (s *Solver) EigValuesCtx(ctx context.Context, a *Matrix) ([]float64, error) {
	res, err := s.solve(ctx, a, false, 0, 0, nil)
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}

// EigRange computes eigenpairs il through iu (1-based, ascending,
// inclusive). An invalid range (il < 1, iu < il, or iu beyond the matrix
// order) yields a *RangeError matching ErrInvalidRange.
func (s *Solver) EigRange(a *Matrix, il, iu int) (*Result, error) {
	return s.EigRangeCtx(context.Background(), a, il, iu)
}

// EigRangeCtx is EigRange with cancellation.
func (s *Solver) EigRangeCtx(ctx context.Context, a *Matrix, il, iu int) (*Result, error) {
	if il < 1 || iu < il {
		return nil, &RangeError{IL: il, IU: iu, N: rangeN(a)}
	}
	return s.solve(ctx, a, true, il, iu, nil)
}

// EigValuesRange computes eigenvalues il through iu only.
func (s *Solver) EigValuesRange(a *Matrix, il, iu int) ([]float64, error) {
	return s.EigValuesRangeCtx(context.Background(), a, il, iu)
}

// EigValuesRangeCtx is EigValuesRange with cancellation.
func (s *Solver) EigValuesRangeCtx(ctx context.Context, a *Matrix, il, iu int) ([]float64, error) {
	if il < 1 || iu < il {
		return nil, &RangeError{IL: il, IU: iu, N: rangeN(a)}
	}
	res, err := s.solve(ctx, a, false, il, iu, nil)
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}

// rangeN reports the order a range request was made against, or -1 when the
// matrix is absent or not square (those errors are reported separately).
func rangeN(a *Matrix) int {
	if a == nil || a.r != a.c {
		return -1
	}
	return a.r
}

// EigTo computes all eigenpairs of the n×n matrix a, writing the
// eigenvectors directly into the caller-supplied n×n matrix dst (column k
// pairs with the k-th returned value). No eigenvector matrix is allocated:
// with a recycled workspace arena this is the steady-state allocation-free
// entry point.
func (s *Solver) EigTo(ctx context.Context, a *Matrix, dst *Matrix) ([]float64, error) {
	if dst == nil {
		return nil, fmt.Errorf("eigen: EigTo requires a destination matrix")
	}
	if a != nil && (dst.r != a.r || dst.c != a.c) {
		return nil, fmt.Errorf("eigen: EigTo destination is %d×%d, want %d×%d", dst.r, dst.c, a.r, a.c)
	}
	res, err := s.solve(ctx, a, true, 0, 0, dst)
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}

// solve checks liveness and runs the pipeline under the Solver's own
// scheduler and trace collector.
func (s *Solver) solve(ctx context.Context, a *Matrix, vectors bool, il, iu int, dst *Matrix) (*Result, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	scheduler := s.sched
	s.mu.Unlock()

	return s.runSolve(ctx, scheduler, s.opts.Collector, a, dst, vectors, il, iu)
}

// prepared is one validated solve, ready to execute: the arena it will run
// on (owned by the caller, who must return it to the pool), the arena-backed
// headers over the caller's input/destination storage, and the assembled
// core options. It is the shared setup of runSolve (which executes the whole
// plan in one call) and the pipelined batch executor (which advances the
// plan phase by phase).
type prepared struct {
	ws  *work.Arena
	ad  *matrix.Dense
	dst *matrix.Dense // nil unless a destination matrix was supplied
	co  core.Options
}

// prepare validates the input, borrows a size-matched arena, and assembles
// the headers and core options of one solve. On success the caller owns
// prep.ws and must Put it back; on error nothing is held.
func (s *Solver) prepare(scheduler *sched.Scheduler, tc *trace.Collector, a, dst *Matrix, vectors bool, il, iu int) (*prepared, error) {
	if a == nil {
		return nil, fmt.Errorf("eigen: nil matrix")
	}
	if a.r != a.c {
		return nil, fmt.Errorf("eigen: matrix must be square, got %d×%d", a.r, a.c)
	}
	n := a.r
	if il != 0 || iu != 0 {
		if il < 1 || iu > n || il > iu {
			return nil, &RangeError{IL: il, IU: iu, N: n}
		}
	}
	if !s.opts.SkipFiniteCheck {
		if err := checkFinite(a.data, max(1, n)); err != nil {
			return nil, err
		}
	}

	ws := s.pool.Get(n)

	// Headers over caller-owned data live on the arena, so steady-state
	// solves do not allocate them. The arena is private to this solve, which
	// keeps header writes race-free even when the same input matrix is
	// solved concurrently.
	hs, _ := ws.Value(solverHdrKey).(*denseHdrs)
	if hs == nil {
		hs = &denseHdrs{}
		ws.SetValue(solverHdrKey, hs)
	}
	ad := &hs.a
	*ad = matrix.Dense{Rows: a.r, Cols: a.c, Stride: max(1, a.r), Data: a.data}

	if !s.opts.SkipSymmetryCheck {
		if !ad.IsSymmetric(symTol * ad.MaxAbs()) {
			s.pool.Put(ws)
			return nil, fmt.Errorf("eigen: matrix is not symmetric (tolerance %g·max|a|)", symTol)
		}
	}

	prep := &prepared{ws: ws, ad: ad}
	prep.co = s.opts.toCore(vectors, il, iu)
	prep.co.Workers = 0 // the persistent scheduler replaces per-solve workers
	prep.co.Sched = scheduler
	prep.co.Arena = ws
	prep.co.Collector = tc
	if dst != nil {
		prep.dst = &hs.dst
		*prep.dst = matrix.Dense{Rows: dst.r, Cols: dst.c, Stride: max(1, dst.r), Data: dst.data}
		prep.co.Dst = prep.dst
	}
	return prep, nil
}

// finish maps a core result/error pair to the public surface: scheduler
// shutdown surfaces as ErrClosed, and solver-owned result storage is
// adopted or copied out (never arena-backed).
func (s *Solver) finish(prep *prepared, dst *Matrix, cres *core.Result, err error) (*Result, error) {
	if err != nil {
		if errors.Is(err, sched.ErrStopped) {
			// The shared scheduler was shut down under this solve.
			return nil, ErrClosed
		}
		return nil, err
	}
	res := &Result{Values: cres.Values}
	if cres.Vectors != nil {
		if dst != nil && cres.Vectors == prep.dst {
			res.Vectors = dst
		} else {
			res.Vectors = fromDense(cres.Vectors)
		}
	}
	return res, nil
}

// runSolve validates the input, borrows a size-matched arena, and runs the
// selected pipeline on the given scheduler (nil → inline execution on the
// calling goroutine). It is the shared core of the one-at-a-time entry
// points and of SolveBatch's whole-solve path; the pipelined batch executor
// shares prepare/finish but advances the phase plan itself (see batch.go).
func (s *Solver) runSolve(ctx context.Context, scheduler *sched.Scheduler, tc *trace.Collector, a, dst *Matrix, vectors bool, il, iu int) (*Result, error) {
	prep, err := s.prepare(scheduler, tc, a, dst, vectors, il, iu)
	if err != nil {
		return nil, err
	}
	defer s.pool.Put(prep.ws)

	var cres *core.Result
	if s.opts.Algorithm == OneStage {
		cres, err = core.SyevOneStage(ctx, prep.ad, prep.co)
	} else {
		cres, err = core.SyevTwoStage(ctx, prep.ad, prep.co)
	}
	return s.finish(prep, dst, cres, err)
}
