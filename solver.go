package eigen

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/work"
)

// ErrClosed is returned by a Solver whose Close has been called.
var ErrClosed = errors.New("eigen: solver is closed")

// solverHdrKey is the arena slot holding the retained matrix.Dense headers
// that wrap caller-owned input/destination storage for one solve.
const solverHdrKey work.Key = "solver.hdrs"

type denseHdrs struct {
	a, dst matrix.Dense
}

// Solver is a reusable eigensolver: it owns a persistent scheduler (when
// Workers > 1) and a pool of workspace arenas, so repeated solves skip both
// the worker spin-up and almost all workspace allocation. A Solver is safe
// for concurrent use — simultaneous solves draw distinct arenas from the
// pool and independent task streams (jobs) from the shared scheduler.
//
//	s := eigen.NewSolver(&eigen.Options{Workers: 4})
//	defer s.Close()
//	for _, a := range problems {
//		res, err := s.Eig(a)
//		...
//	}
//
// Close releases the workers; it must be called when the Solver is no
// longer needed (a Solver with Workers ≤ 1 has no goroutines, but calling
// Close is still correct and idempotent). The *Ctx variants accept a
// context; cancellation abandons the solve mid-pipeline and returns the
// context's error while the Solver stays usable.
type Solver struct {
	opts Options
	pool *work.Pool

	mu     sync.Mutex
	sched  *sched.Scheduler
	closed bool
}

// NewSolver creates a Solver with the given options (nil → defaults: the
// two-stage algorithm, divide & conquer, sequential execution).
func NewSolver(opts *Options) *Solver {
	s := &Solver{pool: work.NewPool()}
	if opts != nil {
		s.opts = *opts
	}
	if s.opts.Workers > 1 {
		s.sched = sched.New(s.opts.Workers)
	}
	return s
}

// Close shuts the Solver's worker pool down and marks it unusable. It is
// idempotent and safe to call concurrently with (failing) solves.
func (s *Solver) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.sched != nil {
		s.sched.Shutdown()
		s.sched = nil
	}
	return nil
}

// Eig computes all eigenvalues and eigenvectors of a.
func (s *Solver) Eig(a *Matrix) (*Result, error) {
	return s.EigCtx(context.Background(), a)
}

// EigCtx is Eig with cancellation.
func (s *Solver) EigCtx(ctx context.Context, a *Matrix) (*Result, error) {
	return s.solve(ctx, a, true, 0, 0, nil)
}

// EigValues computes all eigenvalues of a (no vectors).
func (s *Solver) EigValues(a *Matrix) ([]float64, error) {
	return s.EigValuesCtx(context.Background(), a)
}

// EigValuesCtx is EigValues with cancellation.
func (s *Solver) EigValuesCtx(ctx context.Context, a *Matrix) ([]float64, error) {
	res, err := s.solve(ctx, a, false, 0, 0, nil)
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}

// EigRange computes eigenpairs il through iu (1-based, ascending,
// inclusive).
func (s *Solver) EigRange(a *Matrix, il, iu int) (*Result, error) {
	return s.EigRangeCtx(context.Background(), a, il, iu)
}

// EigRangeCtx is EigRange with cancellation.
func (s *Solver) EigRangeCtx(ctx context.Context, a *Matrix, il, iu int) (*Result, error) {
	if il < 1 || iu < il {
		return nil, fmt.Errorf("eigen: invalid range [%d, %d]", il, iu)
	}
	return s.solve(ctx, a, true, il, iu, nil)
}

// EigValuesRange computes eigenvalues il through iu only.
func (s *Solver) EigValuesRange(a *Matrix, il, iu int) ([]float64, error) {
	return s.EigValuesRangeCtx(context.Background(), a, il, iu)
}

// EigValuesRangeCtx is EigValuesRange with cancellation.
func (s *Solver) EigValuesRangeCtx(ctx context.Context, a *Matrix, il, iu int) ([]float64, error) {
	if il < 1 || iu < il {
		return nil, fmt.Errorf("eigen: invalid range [%d, %d]", il, iu)
	}
	res, err := s.solve(ctx, a, false, il, iu, nil)
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}

// EigTo computes all eigenpairs of the n×n matrix a, writing the
// eigenvectors directly into the caller-supplied n×n matrix dst (column k
// pairs with the k-th returned value). No eigenvector matrix is allocated:
// with a recycled workspace arena this is the steady-state allocation-free
// entry point.
func (s *Solver) EigTo(ctx context.Context, a *Matrix, dst *Matrix) ([]float64, error) {
	if dst == nil {
		return nil, fmt.Errorf("eigen: EigTo requires a destination matrix")
	}
	if a != nil && (dst.r != a.r || dst.c != a.c) {
		return nil, fmt.Errorf("eigen: EigTo destination is %d×%d, want %d×%d", dst.r, dst.c, a.r, a.c)
	}
	res, err := s.solve(ctx, a, true, 0, 0, dst)
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}

// solve validates, borrows an arena, and runs the selected pipeline.
func (s *Solver) solve(ctx context.Context, a *Matrix, vectors bool, il, iu int, dst *Matrix) (*Result, error) {
	if a == nil {
		return nil, fmt.Errorf("eigen: nil matrix")
	}
	if a.r != a.c {
		return nil, fmt.Errorf("eigen: matrix must be square, got %d×%d", a.r, a.c)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	pool, scheduler := s.pool, s.sched
	s.mu.Unlock()

	ws := pool.Get()
	defer pool.Put(ws)

	// Headers over caller-owned data live on the arena, so steady-state
	// solves do not allocate them. The arena is private to this solve, which
	// keeps header writes race-free even when the same input matrix is
	// solved concurrently.
	hs, _ := ws.Value(solverHdrKey).(*denseHdrs)
	if hs == nil {
		hs = &denseHdrs{}
		ws.SetValue(solverHdrKey, hs)
	}
	ad := &hs.a
	*ad = matrix.Dense{Rows: a.r, Cols: a.c, Stride: max(1, a.r), Data: a.data}

	if !s.opts.SkipSymmetryCheck {
		if !ad.IsSymmetric(symTol * ad.MaxAbs()) {
			return nil, fmt.Errorf("eigen: matrix is not symmetric (tolerance %g·max|a|)", symTol)
		}
	}

	co := s.opts.toCore(vectors, il, iu)
	co.Workers = 0 // the persistent scheduler replaces per-solve workers
	co.Sched = scheduler
	co.Arena = ws
	var dstDense *matrix.Dense
	if dst != nil {
		dstDense = &hs.dst
		*dstDense = matrix.Dense{Rows: dst.r, Cols: dst.c, Stride: max(1, dst.r), Data: dst.data}
		co.Dst = dstDense
	}

	var cres *core.Result
	var err error
	if s.opts.Algorithm == OneStage {
		cres, err = core.SyevOneStage(ctx, ad, co)
	} else {
		cres, err = core.SyevTwoStage(ctx, ad, co)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{Values: cres.Values}
	if cres.Vectors != nil {
		if dst != nil && cres.Vectors == dstDense {
			res.Vectors = dst
		} else {
			res.Vectors = fromDense(cres.Vectors)
		}
	}
	return res, nil
}
