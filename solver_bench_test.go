package eigen

import (
	"context"
	"math/rand"
	"testing"
)

// BenchmarkSolverReuse measures the steady-state cost of repeated solves on
// a long-lived Solver: the arena pool retains every workspace and the
// eigenvectors land in a caller-supplied matrix, so allocs/op should be
// near zero (compare with BenchmarkEigOneShot).
func BenchmarkSolverReuse(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 256
	a := randSymMatrix(rng, n)
	s := NewSolver(&Options{NB: 32, SkipSymmetryCheck: true})
	defer s.Close()
	dst := NewMatrix(n)
	ctx := context.Background()
	for i := 0; i < 2; i++ { // reach workspace steady state
		if _, err := s.EigTo(ctx, a, dst); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EigTo(ctx, a, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEigOneShot is the baseline: every call builds and tears down a
// transient Solver, so all workspace is allocated from scratch.
func BenchmarkEigOneShot(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 256
	a := randSymMatrix(rng, n)
	opts := &Options{NB: 32, SkipSymmetryCheck: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eig(a, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSolverReuseAllocRatio gates the workspace-reuse discipline: a warmed
// Solver must allocate at least 10× less per solve than one-shot Eig.
func TestSolverReuseAllocRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation skews allocation counts")
	}
	rng := rand.New(rand.NewSource(7))
	n := 256
	a := randSymMatrix(rng, n)
	opts := &Options{NB: 32, SkipSymmetryCheck: true}

	oneShot := testing.AllocsPerRun(2, func() {
		if _, err := Eig(a, opts); err != nil {
			t.Fatal(err)
		}
	})

	s := NewSolver(opts)
	defer s.Close()
	dst := NewMatrix(n)
	ctx := context.Background()
	for i := 0; i < 2; i++ { // warm the arena
		if _, err := s.EigTo(ctx, a, dst); err != nil {
			t.Fatal(err)
		}
	}
	reuse := testing.AllocsPerRun(3, func() {
		if _, err := s.EigTo(ctx, a, dst); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("one-shot %.0f allocs/solve, reuse %.0f allocs/solve", oneShot, reuse)
	if reuse*10 > oneShot {
		t.Fatalf("steady-state solve allocates too much: one-shot %.0f, reuse %.0f (want ≥ 10× reduction)", oneShot, reuse)
	}
	// Absolute gate: with the fused back-transformation and worker slabs, a
	// steady-state vector solve must not allocate per task or per block.
	if reuse > 10 {
		t.Fatalf("steady-state solve allocates %.0f times/solve, want ≤ 10", reuse)
	}
}
